"""Unit tests for instrumentation packaging (repro.engine.instrument)."""

import numpy as np

from repro.engine import InputSpec, collect_trace, load_bundle, save_bundle


def test_bundle_shapes_and_names(tiny_module):
    bundle = collect_trace(tiny_module, InputSpec("test", seed=1, max_blocks=3000))
    assert bundle.program == "tiny"
    assert bundle.input_name == "test"
    assert bundle.n_static_blocks == tiny_module.n_blocks
    assert bundle.bb_trace.shape == bundle.func_trace.shape
    assert len(bundle.block_names) == tiny_module.n_blocks
    assert bundle.function_names == [f.name for f in tiny_module.functions]


def test_func_trace_consistent_with_mapping(tiny_module):
    bundle = collect_trace(tiny_module, InputSpec("test", seed=2, max_blocks=2000))
    assert np.array_equal(
        bundle.func_trace, bundle.func_of_gid[bundle.bb_trace]
    )
    # every block name is "function:block" with a matching function index.
    for gid, name in enumerate(bundle.block_names):
        func = name.split(":", 1)[0]
        assert bundle.function_names[bundle.func_of_gid[gid]] == func


def test_save_load_roundtrip(tiny_module, tmp_path):
    bundle = collect_trace(tiny_module, InputSpec("ref", seed=3, max_blocks=1500))
    path = tmp_path / "trace.npz"
    save_bundle(bundle, path)
    loaded = load_bundle(path)
    assert loaded.program == bundle.program
    assert loaded.input_name == bundle.input_name
    assert np.array_equal(loaded.bb_trace, bundle.bb_trace)
    assert np.array_equal(loaded.func_trace, bundle.func_trace)
    assert loaded.block_names == bundle.block_names
    assert loaded.function_names == bundle.function_names
    assert loaded.instr_count == bundle.instr_count
    assert loaded.natural_exit == bundle.natural_exit
