"""Edge-case interpreter tests: recursion, degenerate programs, budgets."""

import numpy as np
import pytest

from repro.engine import InputSpec, run
from repro.ir import ModuleBuilder


def test_direct_recursion_bounded_by_budget():
    b = ModuleBuilder("rec")
    f = b.function("main")
    f.block("entry", 1).branch("dive", "out", taken_prob=0.9)
    f.block("dive", 1).call("main", return_to="out")
    f.block("out", 1).ret()
    m = b.build()
    res = run(m, InputSpec("t", seed=5, max_blocks=10_000))
    # recursion terminates either naturally (root return) or by budget.
    assert 0 < res.n_blocks <= 10_000


def test_recursive_loop_counters_are_per_frame():
    # each recursive activation gets fresh loop counters.
    b = ModuleBuilder("recloop")
    f = b.function("main")
    f.block("entry", 1).loop("body", "done", trips=3)
    f.block("body", 1).branch("recurse", "entry", taken_prob=0.5)
    f.block("recurse", 1).call("main", return_to="entry")
    f.block("done", 1).ret()
    m = b.build()
    res = run(m, InputSpec("t", seed=1, max_blocks=5_000))
    entry = m.function("main").entry.gid
    done = m.function("main").block("done").gid
    trace = res.bb_trace.tolist()
    # every completed activation executed 'entry' exactly 3 times.
    assert trace.count(done) >= 1
    assert trace.count(entry) >= 3 * trace.count(done)


def test_immediate_exit_program():
    b = ModuleBuilder("null")
    b.function("main").block("entry", 1).exit()
    m = b.build()
    res = run(m, InputSpec("t", seed=0, max_blocks=100))
    assert res.n_blocks == 1
    assert res.instr_count == 1
    assert res.natural_exit


def test_root_return_terminates():
    b = ModuleBuilder("retmain")
    b.function("main").block("entry", 2).ret()
    m = b.build()
    res = run(m, InputSpec("t", seed=0, max_blocks=100))
    assert res.n_blocks == 1
    assert res.natural_exit


def test_single_target_switch():
    b = ModuleBuilder("sw1")
    f = b.function("main")
    f.block("entry", 1).loop("sel", "done", trips=10)
    f.block("sel", 1).switch(["back"], [1.0])
    f.block("back", 1).jump("entry")
    f.block("done", 1).exit()
    m = b.build()
    res = run(m, InputSpec("t", seed=9, max_blocks=1000))
    assert res.natural_exit
    back = m.function("main").block("back").gid
    assert res.bb_trace.tolist().count(back) == 9


def test_budget_of_one():
    b = ModuleBuilder("one")
    f = b.function("main")
    f.block("entry", 7).jump("entry")
    m = b.build()
    res = run(m, InputSpec("t", seed=0, max_blocks=1))
    assert res.n_blocks == 1
    assert res.instr_count == 7
    assert not res.natural_exit


def test_mutual_recursion():
    b = ModuleBuilder("mutual")
    f = b.function("main")
    f.block("entry", 1).call("ping", return_to="out")
    f.block("out", 1).exit()
    g = b.function("ping")
    g.block("e", 1).branch("go", "stop", taken_prob=0.8)
    g.block("go", 1).call("pong", return_to="stop")
    g.block("stop", 1).ret()
    h = b.function("pong")
    h.block("e", 1).branch("go", "stop", taken_prob=0.8)
    h.block("go", 1).call("ping", return_to="stop")
    h.block("stop", 1).ret()
    m = b.build()
    res = run(m, InputSpec("t", seed=3, max_blocks=50_000))
    gids = set(res.bb_trace.tolist())
    assert m.function("ping").entry.gid in gids
    assert m.function("pong").entry.gid in gids
    # calls and returns stay balanced: trace ends back in main if natural.
    if res.natural_exit:
        assert res.bb_trace[-1] == m.function("main").block("out").gid
