"""Unit and property tests for the fetch model (repro.engine.fetch)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import fetch_line_count, fetch_lines, line_spans
from repro.ir import ModuleBuilder, baseline_layout


def chain_module(sizes):
    b = ModuleBuilder("m")
    f = b.function("main")
    names = [f"b{i}" for i in range(len(sizes))]
    for i, n in enumerate(sizes):
        if i + 1 < len(sizes):
            f.block(names[i], n).jump(names[i + 1])
        else:
            f.block(names[i], n).exit()
    return b.build()


def test_line_expansion_exact():
    # block0: 16 instr = 64B = line 0; block1: 24 instr = 96B spans lines 1-2.
    m = chain_module([16, 24])
    amap = baseline_layout(m).address_map
    trace = np.array([0, 1, 0])
    lines = fetch_lines(trace, amap, 64)
    assert lines.tolist() == [0, 1, 2, 0]


def test_sub_line_blocks_share_lines():
    m = chain_module([4, 4, 4, 4])  # 16B each, four per 64B line
    amap = baseline_layout(m).address_map
    lines = fetch_lines(np.array([0, 1, 2, 3]), amap, 64)
    assert lines.tolist() == [0, 0, 0, 0]


def test_straddling_block():
    m = chain_module([8, 16])  # block1 at byte 32..96: lines 0 and 1
    amap = baseline_layout(m).address_map
    lines = fetch_lines(np.array([1]), amap, 64)
    assert lines.tolist() == [0, 1]


def test_empty_trace():
    m = chain_module([4])
    amap = baseline_layout(m).address_map
    assert fetch_lines(np.empty(0, dtype=np.int64), amap, 64).shape == (0,)


def test_rejects_bad_line_size():
    m = chain_module([4])
    amap = baseline_layout(m).address_map
    with pytest.raises(ValueError):
        line_spans(amap, 48)
    with pytest.raises(ValueError):
        line_spans(amap, 0)


def test_rejects_multidim_trace():
    m = chain_module([4])
    amap = baseline_layout(m).address_map
    with pytest.raises(ValueError):
        fetch_lines(np.zeros((2, 2), dtype=np.int64), amap, 64)


@settings(max_examples=30, deadline=None)
@given(
    sizes=st.lists(st.integers(1, 40), min_size=1, max_size=6),
    trace=st.lists(st.integers(0, 5), min_size=0, max_size=50),
    line_bytes=st.sampled_from([16, 32, 64, 128]),
)
def test_expansion_matches_reference(sizes, trace, line_bytes):
    m = chain_module(sizes)
    amap = baseline_layout(m).address_map
    t = np.array([g % len(sizes) for g in trace], dtype=np.int64)
    lines = fetch_lines(t, amap, line_bytes)
    assert lines.shape[0] == fetch_line_count(t, amap, line_bytes)
    # reference: per execution, lines from start to end.
    expected = []
    for g in t.tolist():
        start, end = amap.span(g)
        expected.extend(range(start // line_bytes, (end - 1) // line_bytes + 1))
    assert lines.tolist() == expected
