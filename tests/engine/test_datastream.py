"""Unit tests for data-access streams (repro.engine.datastream)."""

import numpy as np
import pytest

from repro.engine import InputSpec, collect_trace, data_lines, fetch_lines, merged_stream
from repro.engine.datastream import DATA_SPACE_BASE, SHARED_REGION_BASE
from repro.ir import DataAccess, ModuleBuilder, baseline_layout


def data_module():
    b = ModuleBuilder("dm")
    f = b.function("main")
    f.block("entry", 2).loop("w", "done", trips=50)
    f.block("w", 4, data=DataAccess("stream", 1, region_lines=8)).jump("l")
    f.block("l", 4, data=DataAccess("local", 2, region_lines=4)).jump("s")
    f.block("s", 4, data=DataAccess("shared", 1, region_lines=2)).jump("entry")
    f.block("done", 1).exit()
    g = b.function("other")
    g.block("e", 3, data=DataAccess("local", 1, region_lines=4)).ret()
    return b.build()


@pytest.fixture
def dm():
    module = data_module()
    bundle = collect_trace(module, InputSpec("t", seed=0, max_blocks=500))
    return module, bundle


def test_data_mode_validation():
    with pytest.raises(ValueError):
        DataAccess("weird")
    with pytest.raises(ValueError):
        DataAccess("local", 0)


def test_counts_match_descriptors(dm):
    module, bundle = dm
    lines = data_lines(bundle.bb_trace, module)
    per_gid = {b.gid: (b.data.n_lines if b.data else 0) for b in module.iter_blocks()}
    expected = sum(per_gid[g] for g in bundle.bb_trace.tolist())
    assert lines.shape[0] == expected


def test_data_lines_live_in_data_space(dm):
    module, bundle = dm
    lines = data_lines(bundle.bb_trace, module)
    assert (lines >= SHARED_REGION_BASE).all()


def test_stream_advances_and_wraps(dm):
    module, bundle = dm
    lines = data_lines(bundle.bb_trace, module)
    w = module.function("main").block("w")
    # extract w's accesses: occurrences in order, region 8 -> occ % 8.
    mask = np.repeat(
        bundle.bb_trace == w.gid,
        [module.block_by_gid(g).data.n_lines if module.block_by_gid(g).data else 0
         for g in bundle.bb_trace.tolist()],
    )
    w_lines = lines[mask]
    offsets = (w_lines - w_lines.min()).tolist()
    n = len(offsets)
    assert offsets[:8] == list(range(8))[: min(8, n)]
    if n > 8:
        assert offsets[8] == 0  # wrapped


def test_shared_mode_hits_fixed_lines(dm):
    module, bundle = dm
    lines = data_lines(bundle.bb_trace, module)
    shared = lines[lines >= SHARED_REGION_BASE]
    shared = shared[shared < DATA_SPACE_BASE]
    assert len(set(shared.tolist())) == 1  # n_lines=1, fixed


def test_functions_get_disjoint_regions():
    module = data_module()
    bundle_like = np.array(
        [module.function("main").block("l").gid, module.function("other").block("e").gid]
    )
    lines = data_lines(bundle_like, module)
    # main's local region differs from other's.
    assert lines[0] // (1 << 14) != lines[2] // (1 << 14)


def test_merged_stream_interleaves_i_and_d(dm):
    module, bundle = dm
    amap = baseline_layout(module).address_map
    lines, is_data = merged_stream(bundle.bb_trace, amap, 64, module)
    # total = fetch lines + data lines.
    ilines = fetch_lines(bundle.bb_trace, amap, 64)
    dlines = data_lines(bundle.bb_trace, module)
    assert lines.shape[0] == ilines.shape[0] + dlines.shape[0]
    assert int(is_data.sum()) == dlines.shape[0]
    # the instruction sub-stream is exactly fetch_lines, in order.
    assert np.array_equal(lines[~is_data], ilines)
    # the data sub-stream is exactly data_lines, in order.
    assert np.array_equal(lines[is_data], dlines)
    # code and data spaces never alias.
    assert lines[~is_data].max() < SHARED_REGION_BASE


def test_blocks_without_descriptors_contribute_nothing(tiny_module, tiny_bundle):
    lines = data_lines(tiny_bundle.bb_trace, tiny_module)
    assert lines.shape[0] == 0
    amap = baseline_layout(tiny_module).address_map
    merged, is_data = merged_stream(tiny_bundle.bb_trace, amap, 64, tiny_module)
    assert not is_data.any()
    assert np.array_equal(merged, fetch_lines(tiny_bundle.bb_trace, amap, 64))
