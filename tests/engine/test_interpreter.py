"""Unit tests for the deterministic interpreter (repro.engine.interpreter)."""

import numpy as np
import pytest

from repro.engine import InputSpec, run
from repro.ir import ModuleBuilder


def loop_module(trips=5, body_instr=3):
    b = ModuleBuilder("loop")
    f = b.function("main")
    f.block("head", 1).loop("body", "done", trips=trips)
    f.block("body", body_instr).jump("head")
    f.block("done", 1).exit()
    return b.build()


def test_determinism_same_seed(tiny_module):
    a = run(tiny_module, InputSpec("t", seed=5, max_blocks=2000))
    b = run(tiny_module, InputSpec("t", seed=5, max_blocks=2000))
    assert np.array_equal(a.bb_trace, b.bb_trace)
    assert a.instr_count == b.instr_count


def test_different_seeds_differ(tiny_module):
    a = run(tiny_module, InputSpec("t", seed=5, max_blocks=2000))
    b = run(tiny_module, InputSpec("t", seed=6, max_blocks=2000))
    assert not np.array_equal(a.bb_trace, b.bb_trace)


def test_loop_trip_count_exact():
    m = loop_module(trips=7)
    res = run(m, InputSpec("t", seed=0, max_blocks=10_000))
    head = m.function("main").block("head").gid
    body = m.function("main").block("body").gid
    done = m.function("main").block("done").gid
    trace = res.bb_trace.tolist()
    assert trace.count(body) == 6  # back edge taken trips-1 times
    assert trace.count(head) == 7
    assert trace.count(done) == 1
    assert res.natural_exit


def test_loop_counter_resets_between_visits():
    b = ModuleBuilder("nested")
    f = b.function("main")
    f.block("outer", 1).loop("inner_head", "done", trips=3)
    f.block("inner_head", 1).loop("inner_body", "outer", trips=4)
    f.block("inner_body", 2).jump("inner_head")
    f.block("done", 1).exit()
    m = b.build()
    res = run(m, InputSpec("t", seed=0, max_blocks=10_000))
    inner_body = m.function("main").block("inner_body").gid
    # outer takes its back edge twice (trips=3), entering the inner loop
    # twice; each inner visit takes 3 back edges (trips=4).
    assert res.bb_trace.tolist().count(inner_body) == 6


def test_block_budget_truncates():
    m = loop_module(trips=10_000)
    res = run(m, InputSpec("t", seed=0, max_blocks=50))
    assert res.n_blocks == 50
    assert not res.natural_exit


def test_instruction_count_matches_trace():
    m = loop_module(trips=4, body_instr=5)
    res = run(m, InputSpec("t", seed=0, max_blocks=10_000))
    n_instr = {b.gid: b.n_instr for b in m.iter_blocks()}
    assert res.instr_count == sum(n_instr[g] for g in res.bb_trace.tolist())


def test_branch_probability_statistics():
    b = ModuleBuilder("p")
    f = b.function("main")
    f.block("head", 1).loop("br", "done", trips=4000)
    f.block("br", 1).branch("t", "f", taken_prob=0.25)
    f.block("t", 1).jump("head")
    f.block("f", 1).jump("head")
    f.block("done", 1).exit()
    m = b.build()
    res = run(m, InputSpec("t", seed=123, max_blocks=100_000))
    trace = res.bb_trace.tolist()
    taken = trace.count(m.function("main").block("t").gid)
    total = taken + trace.count(m.function("main").block("f").gid)
    assert total > 3000
    assert abs(taken / total - 0.25) < 0.03


def test_phase_modulated_branch_flips():
    b = ModuleBuilder("ph")
    f = b.function("main")
    f.block("head", 1).loop("br", "done", trips=100_000)
    f.block("br", 1).branch("t", "f", taken_prob=1.0, phase_prob=0.0, phase_period=100)
    f.block("t", 1).jump("head")
    f.block("f", 1).jump("head")
    f.block("done", 1).exit()
    m = b.build()
    res = run(m, InputSpec("t", seed=1, max_blocks=1000))
    t_gid = m.function("main").block("t").gid
    f_gid = m.function("main").block("f").gid
    trace = res.bb_trace
    # both halves must appear (phases alternate).
    assert (trace == t_gid).any()
    assert (trace == f_gid).any()


def test_phase_offset_shifts_behaviour():
    b = ModuleBuilder("ph2")
    f = b.function("main")
    f.block("head", 1).loop("br", "done", trips=100_000)
    f.block("br", 1).branch("t", "f", taken_prob=1.0, phase_prob=0.0, phase_period=64)
    f.block("t", 1).jump("head")
    f.block("f", 1).jump("head")
    f.block("done", 1).exit()
    m = b.build()
    a = run(m, InputSpec("t", seed=1, max_blocks=500, phase_offset=0))
    c = run(m, InputSpec("t", seed=1, max_blocks=500, phase_offset=64))
    assert not np.array_equal(a.bb_trace, c.bb_trace)


def test_switch_weights_respected():
    b = ModuleBuilder("sw")
    f = b.function("main")
    f.block("head", 1).loop("sel", "done", trips=100_000)
    f.block("sel", 1).switch(["a", "b"], [3.0, 1.0])
    f.block("a", 1).jump("head")
    f.block("b", 1).jump("head")
    f.block("done", 1).exit()
    m = b.build()
    res = run(m, InputSpec("t", seed=77, max_blocks=40_000))
    trace = res.bb_trace.tolist()
    a = trace.count(m.function("main").block("a").gid)
    bcount = trace.count(m.function("main").block("b").gid)
    assert abs(a / (a + bcount) - 0.75) < 0.03


def test_call_and_return_resume_correctly(tiny_module):
    res = run(tiny_module, InputSpec("t", seed=3, max_blocks=5000))
    gid_of = {
        (blk.func, blk.name): blk.gid for blk in tiny_module.iter_blocks()
    }
    trace = res.bb_trace.tolist()
    # every x-entry is preceded by main:callx.
    for i, g in enumerate(trace):
        if g == gid_of[("x", "e")]:
            assert trace[i - 1] == gid_of[("main", "callx")]
    # after a leaf half, control returns to the corresponding call site's
    # return block.
    for i, g in enumerate(trace[:-1]):
        if g in (gid_of[("x", "a")], gid_of[("x", "b")]):
            assert trace[i + 1] == gid_of[("main", "cally")]


def test_unsealed_module_rejected():
    from repro.ir.module import BasicBlock, Exit, Function, Module

    m = Module("m", [Function("main", [BasicBlock("e", 1, Exit())])], entry="main")
    with pytest.raises(ValueError):
        run(m, InputSpec("t", seed=0, max_blocks=10))
