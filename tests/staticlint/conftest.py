"""Hand-built modules with known CFG structure for the static-analysis
tests: a diamond with a loop, a call chain, and mutual recursion."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.config import CacheConfig
from repro.engine.instrument import TraceBundle
from repro.ir import (
    BasicBlock,
    Branch,
    Call,
    Exit,
    Function,
    Jump,
    LoopBranch,
    Module,
    Return,
)

#: 1 KB, 2-way, 64 B lines -> 16 lines, 8 sets (same geometry as the
#: trace-lint tests: lines 8 apart in index collide in the same set).
TINY_CACHE = CacheConfig(size_bytes=1024, assoc=2, line_bytes=64)


def make_bundle(module: Module, trace) -> TraceBundle:
    """Fabricate a TraceBundle with an exact, hand-chosen block trace."""
    function_names = [f.name for f in module.functions]
    fidx = {n: i for i, n in enumerate(function_names)}
    func_of_gid = np.array(
        [fidx[n] for n in module.function_of_gid()], dtype=np.int32
    )
    bb = np.asarray(trace, dtype=np.int64)
    instr = int(sum(module.block_by_gid(int(g)).n_instr for g in bb))
    return TraceBundle(
        program=module.name,
        input_name="synthetic",
        bb_trace=bb,
        func_trace=func_of_gid[bb] if bb.shape[0] else bb.astype(np.int32),
        block_names=[
            f"{b.func}:{b.name}"
            for b in (module.block_by_gid(g) for g in range(module.n_blocks))
        ],
        function_names=function_names,
        func_of_gid=func_of_gid,
        instr_count=instr,
        natural_exit=True,
    )


def chained_module(n: int, n_instr: int = 16, name: str = "chain") -> Module:
    """``n`` 64-byte blocks strung together by jumps; each executes once."""
    blocks = [
        BasicBlock(f"b{i}", n_instr, Jump(f"b{i + 1}")) for i in range(n - 1)
    ]
    blocks.append(BasicBlock(f"b{n - 1}", n_instr, Exit()))
    return Module(name, [Function("main", blocks)], entry="main").seal()


def heat_module() -> Module:
    """Four one-line blocks with known frequencies a=1, b=4, c=1, d=1.

    Blocks are 15 instructions (60 bytes) so that the 4-byte jump
    ``place_blocks`` charges for a non-adjacent fall-through still fits
    in a single 64-byte cache line — every block spans exactly one line
    wherever it is placed.
    """
    main = Function(
        "main",
        [
            BasicBlock("a", 15, Jump("b")),
            BasicBlock("b", 15, LoopBranch("b", "c", trips=4)),
            BasicBlock("c", 15, Jump("d")),
            BasicBlock("d", 15, Exit()),
        ],
    )
    return Module("heat", [main], entry="main").seal()


def diamond_loop_module() -> Module:
    """main: entry -> {left,right} -> join -> loop(x3) -> exit.

    One reducible loop with a compile-time trip count, one two-way
    branch, no calls.
    """
    main = Function(
        "main",
        [
            BasicBlock("entry", 4, Branch("left", "right", taken_prob=0.5)),
            BasicBlock("left", 4, Jump("join")),
            BasicBlock("right", 4, Jump("join")),
            BasicBlock("join", 4, Jump("body")),
            BasicBlock("body", 8, LoopBranch("body", "done", trips=3)),
            BasicBlock("done", 4, Exit()),
        ],
    )
    return Module("diamond", [main], entry="main").seal()


def call_chain_module() -> Module:
    """main calls helper twice; helper calls leaf once; cold is unreachable."""
    main = Function(
        "main",
        [
            BasicBlock("entry", 4, Call("helper", "mid")),
            BasicBlock("mid", 4, Call("helper", "end")),
            BasicBlock("end", 4, Exit()),
        ],
    )
    helper = Function(
        "helper",
        [
            BasicBlock("entry", 4, Call("leaf", "out")),
            BasicBlock("out", 4, Return()),
        ],
    )
    leaf = Function("leaf", [BasicBlock("entry", 4, Return())])
    cold = Function("cold", [BasicBlock("entry", 4, Return())])
    return Module("chain", [main, helper, leaf, cold], entry="main").seal()


def recursive_module() -> Module:
    """a and b call each other (a recursive SCC below main)."""
    main = Function(
        "main", [BasicBlock("entry", 4, Call("a", "end")), BasicBlock("end", 4, Exit())]
    )
    a = Function(
        "a",
        [
            BasicBlock("entry", 4, Branch("rec", "base", taken_prob=0.3)),
            BasicBlock("rec", 4, Call("b", "out")),
            BasicBlock("base", 4, Return()),
            BasicBlock("out", 4, Return()),
        ],
    )
    b = Function(
        "b", [BasicBlock("entry", 4, Call("a", "out")), BasicBlock("out", 4, Return())]
    )
    return Module("rec", [main, a, b], entry="main").seal()


@pytest.fixture
def diamond():
    return diamond_loop_module()


@pytest.fixture
def chain():
    return call_chain_module()


@pytest.fixture
def recursive():
    return recursive_module()
