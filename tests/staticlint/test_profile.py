"""Synthetic trace bundles: interpreter parity, determinism, budgets."""

import numpy as np
import pytest

from repro.engine.instrument import collect_trace
from repro.engine.state import InputSpec
from repro.ir import (
    BasicBlock,
    Call,
    Exit,
    Function,
    Jump,
    LoopBranch,
    Module,
    Return,
)
from repro.staticlint.profile import STATIC_INPUT_NAME, synthesize_bundle

from .conftest import diamond_loop_module


def _deterministic_module() -> Module:
    """Only Jump/LoopBranch/Call/Return/Exit: zero randomness in any walk."""
    main = Function(
        "main",
        [
            BasicBlock("entry", 4, Jump("loop")),
            BasicBlock("loop", 2, LoopBranch("loop", "call", trips=3)),
            BasicBlock("call", 4, Call("leaf", "end")),
            BasicBlock("end", 4, Exit()),
        ],
    )
    leaf = Function("leaf", [BasicBlock("entry", 8, Return())])
    return Module("det", [main, leaf], entry="main").seal()


def test_deterministic_walk_matches_interpreter_exactly():
    m = _deterministic_module()
    synth = synthesize_bundle(m, max_blocks=100, seed=0)
    real = collect_trace(m, InputSpec(name="t", seed=123, max_blocks=100))
    assert np.array_equal(synth.bb_trace, real.bb_trace)
    assert synth.instr_count == real.instr_count
    assert synth.natural_exit and real.natural_exit
    assert np.array_equal(synth.func_trace, real.func_trace)


def test_bundle_structure_is_valid():
    m = _deterministic_module()
    b = synthesize_bundle(m, max_blocks=100, seed=0)
    assert b.program == "det"
    assert b.input_name == STATIC_INPUT_NAME
    assert len(b.block_names) == m.n_blocks
    assert b.function_names == [f.name for f in m.functions]
    # Every traced gid is a real block; instr_count is the trace's sum.
    assert b.bb_trace.min() >= 0 and b.bb_trace.max() < m.n_blocks
    assert b.instr_count == sum(
        m.block_by_gid(int(g)).n_instr for g in b.bb_trace
    )
    assert np.array_equal(b.func_trace, b.func_of_gid[b.bb_trace])


def test_loop_trips_and_call_semantics():
    m = _deterministic_module()
    b = synthesize_bundle(m, max_blocks=100, seed=0)
    names = [b.block_names[g] for g in b.bb_trace]
    assert names == [
        "main:entry",
        "main:loop",
        "main:loop",
        "main:loop",  # trips=3: body runs 3 times per loop visit
        "main:call",
        "leaf:entry",
        "main:end",
    ]


def test_same_seed_reproduces_branchy_walk():
    m = diamond_loop_module()
    a = synthesize_bundle(m, max_blocks=64, seed=7)
    b = synthesize_bundle(m, max_blocks=64, seed=7)
    assert np.array_equal(a.bb_trace, b.bb_trace)
    assert a.instr_count == b.instr_count
    assert a.natural_exit == b.natural_exit
    # The diamond always terminates in exactly 7 dynamic blocks.
    assert len(a.bb_trace) == 7
    assert a.natural_exit


def test_block_budget_truncates_walk():
    m = _deterministic_module()
    b = synthesize_bundle(m, max_blocks=3, seed=0)
    assert len(b.bb_trace) == 3
    assert not b.natural_exit


def test_return_from_root_frame_is_natural_exit():
    main = Function("main", [BasicBlock("entry", 4, Return())])
    m = Module("ret", [main], entry="main").seal()
    b = synthesize_bundle(m, max_blocks=10, seed=0)
    assert len(b.bb_trace) == 1
    assert b.natural_exit


def test_invalid_inputs_rejected():
    m = _deterministic_module()
    with pytest.raises(ValueError, match="max_blocks"):
        synthesize_bundle(m, max_blocks=0, seed=0)
    unsealed = Module(
        "u", [Function("main", [BasicBlock("entry", 4, Exit())])], entry="main"
    )
    with pytest.raises(ValueError, match="sealed"):
        synthesize_bundle(unsealed, max_blocks=10, seed=0)
