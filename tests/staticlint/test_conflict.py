"""StaticLintContext: line heat, set mapping, conflict scores, footprint."""

import pytest

from repro.ir.codegen import place_blocks
from repro.staticlint.conflict import StaticLintContext
from repro.staticlint.frequency import estimate_frequencies

from .conftest import TINY_CACHE, heat_module


def _ctx(starts_by_gid, hot_coverage=0.9):
    m = heat_module()
    amap = place_blocks(m, starts_by_gid)
    profile = estimate_frequencies(m)
    return StaticLintContext(
        m, amap, TINY_CACHE, profile, hot_coverage=hot_coverage
    )


#: a=1, b=4, c=1, d=1 expected executions (see conftest.heat_module);
#: bytes 512 apart collide in the same set of the tiny cache.
CONFLICT_PLACEMENT = {0: 0, 1: 512, 2: 1024, 3: 64}  # lines 0, 8, 16, 1


def test_line_heat_is_frequency_weighted():
    ctx = _ctx(CONFLICT_PLACEMENT)
    assert ctx.line_heat == pytest.approx({0: 1.0, 8: 4.0, 16: 1.0, 1: 1.0})
    assert ctx.image_lines == [0, 1, 8, 16]


def test_warm_lines_grouped_by_set():
    ctx = _ctx(CONFLICT_PLACEMENT)
    # Lines 0, 8, 16 all map to set 0 (8 sets); line 1 to set 1.
    assert ctx.warm_lines_by_set == {0: [0, 8, 16], 1: [1]}


def test_conflict_scores_charge_unservable_heat_fraction():
    ctx = _ctx(CONFLICT_PLACEMENT)
    scores = ctx.conflict_scores
    # Set 0: heats [4, 1, 1] over 2 ways -> overflow fraction 1/6.
    assert scores[0] == pytest.approx(1 / 6)
    assert scores[8] == pytest.approx(4 / 6)
    assert scores[16] == pytest.approx(1 / 6)
    # Calm set scores 0; every image line has an entry.
    assert scores[1] == 0.0
    assert set(scores) == set(ctx.image_lines)


def test_no_conflict_when_sets_are_spread():
    ctx = _ctx({0: 0, 1: 64, 2: 128, 3: 192})  # sets 0..3
    assert all(v == 0.0 for v in ctx.conflict_scores.values())
    assert all(len(ls) <= TINY_CACHE.assoc for ls in ctx.warm_lines_by_set.values())


def test_set_at_exactly_assoc_is_calm():
    # Two warm lines in set 0 == assoc: LRU keeps both resident.
    ctx = _ctx({0: 0, 1: 512, 2: 64, 3: 128})
    assert ctx.conflict_scores[0] == 0.0
    assert ctx.conflict_scores[8] == 0.0


def test_footprint_bound():
    ctx = _ctx(CONFLICT_PLACEMENT)
    # Heat curve [4, 1, 1, 1], total 7: half the fetches fit in 1 line.
    assert ctx.lines_for_coverage(0.5) == 1
    assert ctx.lines_for_coverage(1.0) == 4
    with pytest.raises(ValueError):
        ctx.lines_for_coverage(0.0)
    with pytest.raises(ValueError):
        ctx.lines_for_coverage(1.5)


def test_hot_projections_follow_coverage():
    ctx = _ctx(CONFLICT_PLACEMENT, hot_coverage=0.55)
    # 0.55 of 7 = 3.85 <= 4: block b alone is the hot set.
    assert ctx.hot_gids == [1]
    assert ctx.hot_lines == [8]
    assert ctx.is_hot(1) and not ctx.is_hot(0)
    assert ctx.hot_line_blocks == {8: [1]}
    assert ctx.hot_lines_by_set == {0: [8]}


def test_profile_module_identity_enforced():
    m1, m2 = heat_module(), heat_module()
    amap = place_blocks(m1, CONFLICT_PLACEMENT)
    profile = estimate_frequencies(m2)
    with pytest.raises(ValueError, match="different module"):
        StaticLintContext(m1, amap, TINY_CACHE, profile)


def test_hot_coverage_validated():
    m = heat_module()
    amap = place_blocks(m, CONFLICT_PLACEMENT)
    profile = estimate_frequencies(m)
    with pytest.raises(ValueError, match="hot_coverage"):
        StaticLintContext(m, amap, TINY_CACHE, profile, hot_coverage=0.0)
