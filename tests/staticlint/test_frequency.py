"""Static frequency estimation: heuristics, Markov solve, interprocedural."""

import numpy as np
import pytest

from repro.ir import (
    BasicBlock,
    Branch,
    Call,
    Exit,
    Function,
    Jump,
    LoopBranch,
    Module,
    Return,
    Switch,
)
from repro.staticlint.dataflow import FunctionCFG
from repro.staticlint.frequency import (
    FrequencyConfig,
    edge_probabilities,
    estimate_frequencies,
)


def gid(module, func, name):
    return next(
        b.gid for b in module.iter_blocks() if b.func == func and b.name == name
    )


# -- edge heuristics ----------------------------------------------------------


def test_loopbranch_trip_count_gives_exact_split(diamond):
    cfg = FunctionCFG(diamond.function("main"))
    probs = edge_probabilities(cfg, FrequencyConfig())
    body = cfg.index["body"]
    done = cfg.index["done"]
    # trips=3: stay 2/3, exit 1/3 — exact, not heuristic.
    assert probs[body][body] == pytest.approx(2 / 3)
    assert probs[body][done] == pytest.approx(1 / 3)


def test_fallthrough_heuristic_prefers_else_side(diamond):
    cfg = FunctionCFG(diamond.function("main"))
    probs = edge_probabilities(cfg, FrequencyConfig())
    entry = cfg.index["entry"]
    # No loop/exit signal on either arm: fall-through (orelse) gets 0.7.
    assert probs[entry][cfg.index["left"]] == pytest.approx(0.3)
    assert probs[entry][cfg.index["right"]] == pytest.approx(0.7)


def test_backedge_heuristic():
    main = Function(
        "main",
        [
            BasicBlock("entry", 4, Jump("head")),
            BasicBlock("head", 4, Branch("head", "out", taken_prob=0.5)),
            BasicBlock("out", 4, Exit()),
        ],
    )
    m = Module("be", [main], entry="main").seal()
    cfg = FunctionCFG(m.function("main"))
    probs = edge_probabilities(cfg, FrequencyConfig())
    head = cfg.index["head"]
    assert probs[head][head] == pytest.approx(0.88)
    assert probs[head][cfg.index["out"]] == pytest.approx(0.12)
    # Markov: expected head visits = 1 / (1 - 0.88).
    profile = estimate_frequencies(m)
    assert profile.block_freq[gid(m, "main", "head")] == pytest.approx(1 / 0.12)


def test_exit_avoidance_heuristic():
    main = Function(
        "main",
        [
            BasicBlock("entry", 4, Branch("cont", "halt", taken_prob=0.5)),
            BasicBlock("cont", 4, Jump("halt")),
            BasicBlock("halt", 4, Exit()),
        ],
    )
    m = Module("noexit", [main], entry="main").seal()
    cfg = FunctionCFG(m.function("main"))
    probs = edge_probabilities(cfg, FrequencyConfig())
    entry = cfg.index["entry"]
    assert probs[entry][cfg.index["cont"]] == pytest.approx(0.9)
    assert probs[entry][cfg.index["halt"]] == pytest.approx(0.1)


def test_switch_is_uniform_over_case_slots():
    main = Function(
        "main",
        [
            BasicBlock("entry", 4, Switch(("a", "a", "b"), (100.0, 1.0, 1.0))),
            BasicBlock("a", 4, Exit()),
            BasicBlock("b", 4, Exit()),
        ],
    )
    m = Module("sw", [main], entry="main").seal()
    cfg = FunctionCFG(m.function("main"))
    probs = edge_probabilities(cfg, FrequencyConfig())
    entry = cfg.index["entry"]
    # A target listed twice gets 2/3 regardless of the runtime weights.
    assert probs[entry][cfg.index["a"]] == pytest.approx(2 / 3)
    assert probs[entry][cfg.index["b"]] == pytest.approx(1 / 3)


def _branchy(taken_prob, weights):
    main = Function(
        "main",
        [
            BasicBlock("entry", 4, Branch("sw", "side", taken_prob=taken_prob)),
            BasicBlock("side", 4, Jump("sw")),
            BasicBlock("sw", 4, Switch(("x", "y"), weights)),
            BasicBlock("x", 4, Exit()),
            BasicBlock("y", 4, Exit()),
        ],
    )
    return Module("rt", [main], entry="main").seal()


def test_runtime_profile_fields_are_never_read():
    a = estimate_frequencies(_branchy(0.01, (9.0, 1.0)))
    b = estimate_frequencies(_branchy(0.99, (1.0, 9.0)))
    assert np.array_equal(a.block_freq, b.block_freq)


# -- Markov solve -------------------------------------------------------------


def test_diamond_frequencies_match_hand_computation(diamond):
    profile = estimate_frequencies(diamond)
    f = profile.block_freq
    assert f[gid(diamond, "main", "entry")] == pytest.approx(1.0)
    assert f[gid(diamond, "main", "left")] == pytest.approx(0.3)
    assert f[gid(diamond, "main", "right")] == pytest.approx(0.7)
    assert f[gid(diamond, "main", "join")] == pytest.approx(1.0)
    # trips=3 self-loop: expected visits = 1 / (1/3) = 3.
    assert f[gid(diamond, "main", "body")] == pytest.approx(3.0)
    assert f[gid(diamond, "main", "done")] == pytest.approx(1.0)


def test_inescapable_cycle_survives_via_damping():
    main = Function(
        "main",
        [
            BasicBlock("entry", 4, Jump("spin")),
            BasicBlock("spin", 4, Jump("entry")),
        ],
    )
    m = Module("spin", [main], entry="main").seal()
    profile = estimate_frequencies(m)
    assert np.all(np.isfinite(profile.block_freq))
    assert np.all(profile.block_freq >= 0.0)
    assert profile.block_freq.max() > 0.0


# -- interprocedural propagation ----------------------------------------------


def test_call_chain_propagates_entry_counts(chain):
    profile = estimate_frequencies(chain)
    assert profile.func_freq["main"] == pytest.approx(1.0)
    # main calls helper at two sites, each executed once.
    assert profile.func_freq["helper"] == pytest.approx(2.0)
    assert profile.func_freq["leaf"] == pytest.approx(2.0)
    # Unreachable functions are cold.
    assert profile.func_freq["cold"] == 0.0
    assert profile.block_freq[gid(chain, "cold", "entry")] == 0.0
    assert profile.block_freq[gid(chain, "helper", "out")] == pytest.approx(2.0)


def test_recursive_scc_converges_finite(recursive):
    profile = estimate_frequencies(recursive)
    assert np.all(np.isfinite(profile.block_freq))
    assert profile.func_freq["a"] >= 1.0
    assert profile.func_freq["b"] > 0.0
    assert profile.func_freq["a"] <= profile.config.max_function_freq


def test_call_site_freq_reports_call_blocks_only(chain):
    profile = estimate_frequencies(chain)
    sites = profile.call_site_freq()
    expected = {
        gid(chain, "main", "entry"): 1.0,
        gid(chain, "main", "mid"): 1.0,
        gid(chain, "helper", "entry"): 2.0,
    }
    assert set(sites) == set(expected)
    for g, v in expected.items():
        assert sites[g] == pytest.approx(v)


# -- StaticProfile projections ------------------------------------------------


def test_weight_normalises_to_one(diamond):
    w = estimate_frequencies(diamond).weight()
    assert w.sum() == pytest.approx(1.0)
    assert np.all(w >= 0.0)


def test_hot_gids_coverage_prefix(diamond):
    profile = estimate_frequencies(diamond)
    # Total 7: body(3) alone covers 3 < 3.5, so 0.5 coverage needs 2 blocks.
    half = profile.hot_gids(0.5)
    assert half == [
        gid(diamond, "main", "body"),
        gid(diamond, "main", "entry"),
    ]
    # 0.9 coverage (6.3 of 7) excludes only the coldest arm.
    hot = profile.hot_gids(0.9)
    assert gid(diamond, "main", "left") not in hot
    assert len(hot) == 5
    # Full coverage includes everything with nonzero frequency.
    assert len(profile.hot_gids(1.0)) == 6
