"""The ``python -m repro.staticlint`` CLI: output schema and exit codes."""

import json

import pytest

from repro.staticlint.__main__ import DEFAULT_CERTIFY_PROGRAMS, main


def run(capsys, *argv):
    rc = main(list(argv))
    return rc, capsys.readouterr().out


# -- list-rules ---------------------------------------------------------------


def test_list_rules_prints_catalog(capsys):
    rc, out = run(capsys, "list-rules")
    assert rc == 0
    for rule_id in ("S001", "S002", "S003", "S004", "S005"):
        assert rule_id in out


# -- lint ---------------------------------------------------------------------


def test_lint_json_has_report_schema(capsys):
    rc, out = run(capsys, "lint", "syn-mcf", "--scale", "0.05", "--format", "json")
    assert rc == 0  # no ERROR diagnostics on a well-formed baseline
    payload = json.loads(out)
    assert payload["program"] == "syn-mcf"
    assert payload["layout"] == "baseline"
    assert list(payload["rules"]) == ["S001", "S002", "S003", "S004", "S005"]
    assert set(payload["summary"]["by_rule"]) == set(payload["rules"])
    assert payload["summary"]["errors"] == 0
    for d in payload["diagnostics"]:
        assert d["rule"].startswith("S")


def test_lint_disable_skips_rule(capsys):
    rc, out = run(
        capsys,
        "lint", "syn-mcf", "--scale", "0.05", "--format", "json",
        "--disable", "S003", "--disable", "S004",
    )
    assert rc == 0
    payload = json.loads(out)
    assert list(payload["rules"]) == ["S001", "S002", "S005"]


def test_lint_usage_errors_exit_2(capsys):
    for argv in (
        ["lint", "syn-mcf", "--scale", "0"],
        ["lint", "syn-mcf", "--hot-coverage", "2"],
        ["lint", "syn-mcf", "--disable", "S999"],
        ["lint", "no-such-program"],
        ["lint", "syn-mcf", "--layout", "no-such-layout"],
    ):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2
        capsys.readouterr()


# -- certify ------------------------------------------------------------------


def test_default_gate_programs():
    assert DEFAULT_CERTIFY_PROGRAMS == ("syn-gcc", "syn-gobmk")


@pytest.fixture(scope="module")
def certify_json(tmp_path_factory):
    """One cheap certify run shared by the CLI tests (degenerate program,
    thresholds disabled: exercises plumbing, not calibration)."""
    bench = tmp_path_factory.mktemp("bench") / "BENCH_perf.json"
    return bench


def test_certify_json_and_bench_merge(capsys, certify_json):
    rc, out = run(
        capsys,
        "certify",
        "--programs", "syn-mcf",
        "--scale", "0.05",
        "--min-conflict-rho", "-1",
        "--format", "json",
        "--bench", str(certify_json),
    )
    assert rc == 0
    # stdout: the JSON payload followed by the bench-merge note line.
    payload = json.loads(out[: out.rindex("}") + 1])
    assert payload["ok"] is True
    assert payload["min_conflict_rho"] == -1.0
    (result,) = payload["results"]
    assert result["program"] == "syn-mcf"
    assert result["layout"] == "baseline"
    assert result["n_lines"] > 0

    bench = json.loads(certify_json.read_text())
    section = bench["staticlint"]
    assert section["ok"] is True
    assert section["certified"] == 1
    assert section["certify"][0]["program"] == "syn-mcf"
    assert {"diagnostics", "seconds", "diagnostics_per_s"} <= set(section)


def test_certify_threshold_failure_exits_1(capsys):
    # syn-mcf has no oversubscribed set: conflict_rho is pinned at 0, so
    # any positive threshold fails.
    rc = main(
        [
            "certify",
            "--programs", "syn-mcf",
            "--scale", "0.05",
            "--min-conflict-rho", "0.5",
        ]
    )
    capsys.readouterr()
    assert rc == 1


def test_certify_usage_errors_exit_2(capsys):
    for argv in (
        ["certify", "--scale", "0"],
        ["certify", "--programs", "no-such-program", "--scale", "0.05"],
        ["certify", "--layout", "no-such-layout"],
    ):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2
        capsys.readouterr()
