"""S-pack rules on hand-built modules with planted defects."""

import pytest

from repro.ir import (
    AddressMap,
    BasicBlock,
    Branch,
    Call,
    Exit,
    Function,
    Module,
    Return,
    baseline_layout,
    layout_blocks,
)
from repro.ir.codegen import place_blocks
from repro.lint import Severity, run_lint
from repro.lint.integrity import audit_address_map
from repro.staticlint.rulepack import (
    StaticLintConfig,
    all_static_rules,
    run_static_lint,
)

from .conftest import TINY_CACHE, chained_module, heat_module, make_bundle


def test_rule_catalog_is_complete():
    assert [r.id for r in all_static_rules()] == [
        "S001",
        "S002",
        "S003",
        "S004",
        "S005",
    ]


# -- S001 static-set-conflict -------------------------------------------------


def test_s001_flags_warm_lines_piled_on_one_set():
    m = heat_module()
    amap = place_blocks(m, {0: 0, 1: 512, 2: 1024, 3: 64})
    report = run_static_lint(m, amap, TINY_CACHE)
    diags = [d for d in report.by_rule("S001") if d.severity is Severity.WARNING]
    assert len(diags) == 1
    d = diags[0]
    assert d.location == "set 0"
    assert d.measured["warm_lines"] == 3
    assert d.measured["assoc"] == 2
    # Charged heat of set 0: (4 + 1 + 1) * overflow 1/6 = 1.0 fetches.
    assert d.measured["predicted_conflict_fetches"] == pytest.approx(1.0)
    assert report.metrics["S001"]["n_conflict_sets"] == 1


def test_s001_clean_when_spread_over_sets():
    m = heat_module()
    amap = place_blocks(m, {0: 0, 1: 64, 2: 128, 3: 192})
    report = run_static_lint(m, amap, TINY_CACHE)
    assert report.by_rule("S001") == []
    assert report.metrics["S001"]["n_conflict_sets"] == 0
    assert report.metrics["S001"]["conflict_score"] == 0.0


# -- S002 static-footprint-bound ----------------------------------------------


def test_s002_warns_when_bound_exceeds_capacity():
    m = chained_module(18)  # 18 warm 64B lines vs 16-line tiny cache
    report = run_static_lint(m, baseline_layout(m), TINY_CACHE)
    diags = report.by_rule("S002")
    assert [d.severity for d in diags] == [Severity.WARNING]
    assert diags[0].measured["bound_lines"] >= diags[0].measured["capacity_lines"]


def test_s002_info_when_bound_exceeds_half_capacity():
    m = chained_module(16)
    report = run_static_lint(m, baseline_layout(m), TINY_CACHE)
    diags = report.by_rule("S002")
    assert [d.severity for d in diags] == [Severity.INFO]


def test_s002_clean_for_small_footprint():
    m = chained_module(4)
    report = run_static_lint(m, baseline_layout(m), TINY_CACHE)
    assert report.by_rule("S002") == []


# -- S003 hot-fallthrough-break -----------------------------------------------


def _branchy():
    main = Function(
        "main",
        [
            BasicBlock("entry", 16, Branch("a", "b", taken_prob=0.5)),
            BasicBlock("a", 16, Exit()),
            BasicBlock("b", 16, Exit()),
        ],
    )
    return Module("ft", [main], entry="main").seal()


def test_s003_flags_broken_hot_fallthrough():
    m = _branchy()
    # Declaration order entry,a,b: entry's fall-through (b) is not adjacent.
    report = run_static_lint(m, layout_blocks(m, [0, 1, 2]), TINY_CACHE)
    diags = [d for d in report.by_rule("S003") if d.severity is Severity.WARNING]
    assert [d.location for d in diags] == ["main:entry"]
    # Charged the estimated frequency times the edge probability (1 * 0.7).
    assert diags[0].measured["expected_jumps"] == pytest.approx(0.7)
    assert diags[0].measured["target"] == "main:b"
    assert report.metrics["S003"]["n_broken_total"] == 1


def test_s003_clean_when_fallthrough_adjacent():
    m = _branchy()
    report = run_static_lint(m, layout_blocks(m, [0, 2, 1]), TINY_CACHE)
    assert report.by_rule("S003") == []
    assert report.metrics["S003"]["n_broken_total"] == 0


# -- S004 far-hot-call --------------------------------------------------------


def _caller(callee_start):
    main = Function(
        "main",
        [
            BasicBlock("entry", 16, Call("far", "end")),
            BasicBlock("end", 16, Exit()),
        ],
    )
    far = Function("far", [BasicBlock("entry", 16, Return())])
    m = Module("call", [main, far], entry="main").seal()
    return m, place_blocks(m, {0: 0, 1: 64, 2: callee_start})


def test_s004_flags_call_beyond_cache_span():
    m, amap = _caller(2048)  # > 1024B tiny-cache span
    report = run_static_lint(m, amap, TINY_CACHE)
    diags = [d for d in report.by_rule("S004") if d.severity is Severity.WARNING]
    assert len(diags) == 1
    assert diags[0].location == "main:entry"
    assert diags[0].measured["callee"] == "far"
    assert diags[0].measured["distance_bytes"] == 2048
    assert report.metrics["S004"]["n_far_calls"] == 1


def test_s004_clean_for_near_call():
    m, amap = _caller(512)
    report = run_static_lint(m, amap, TINY_CACHE)
    assert report.by_rule("S004") == []
    assert report.metrics["S004"]["n_far_calls"] == 0


# -- S005 static-layout-integrity ---------------------------------------------


def test_s005_parity_with_trace_driven_l006():
    m = chained_module(3)
    good = baseline_layout(m).address_map
    starts = good.starts.copy()
    starts[1] = starts[0] + 1  # plant an overlap
    broken = AddressMap(
        order=list(good.order), starts=starts, sizes=good.sizes.copy(), added_jumps=0
    )

    s_diags = run_static_lint(m, broken, TINY_CACHE).by_rule("S005")
    l_report = run_lint(m, broken, make_bundle(m, [0, 1, 2]), TINY_CACHE)
    l_diags = l_report.by_rule("L006")
    assert s_diags, "planted overlap must be detected"
    # Identical findings, only the rule id differs.
    assert [
        (d.severity, d.location, d.message, d.measured) for d in s_diags
    ] == [(d.severity, d.location, d.message, d.measured) for d in l_diags]
    # And both delegate to the shared audit.
    audit = audit_address_map(m, broken)
    assert len(audit) == len(s_diags)


def test_s005_clean_layout_has_no_errors():
    m = chained_module(3)
    report = run_static_lint(m, baseline_layout(m), TINY_CACHE)
    assert report.by_rule("S005") == []
    assert report.ok


# -- config: disable + severity overrides -------------------------------------


def test_disabled_rules_are_skipped():
    m = heat_module()
    amap = place_blocks(m, {0: 0, 1: 512, 2: 1024, 3: 64})
    cfg = StaticLintConfig(disabled=frozenset({"S001", "S002", "S003", "S004"}))
    report = run_static_lint(m, amap, TINY_CACHE, cfg)
    assert report.rules_run == ["S005"]
    assert report.by_rule("S001") == []


def test_severity_override_escalates_to_error():
    m = heat_module()
    amap = place_blocks(m, {0: 0, 1: 512, 2: 1024, 3: 64})
    cfg = StaticLintConfig(severity_overrides={"S001": Severity.ERROR})
    report = run_static_lint(m, amap, TINY_CACHE, cfg)
    diags = report.by_rule("S001")
    assert diags and all(d.severity is Severity.ERROR for d in diags)
    assert not report.ok
