"""Dataflow framework: RPO, dominators, natural loops, call-graph SCCs."""

from repro.ir import BasicBlock, Exit, Function, Jump, Module, Return
from repro.staticlint.dataflow import CallGraph, FunctionCFG, build_cfgs


def idx(cfg, name):
    return cfg.index[name]


# -- reverse postorder / reachability ----------------------------------------


def test_rpo_starts_at_entry_and_respects_topology(diamond):
    cfg = FunctionCFG(diamond.function("main"))
    rpo = cfg.rpo
    assert rpo[0] == idx(cfg, "entry")
    pos = {node: k for k, node in enumerate(rpo)}
    # Acyclic edges go forward in RPO.
    assert pos[idx(cfg, "entry")] < pos[idx(cfg, "left")]
    assert pos[idx(cfg, "entry")] < pos[idx(cfg, "right")]
    assert pos[idx(cfg, "left")] < pos[idx(cfg, "join")]
    assert pos[idx(cfg, "join")] < pos[idx(cfg, "body")]
    assert pos[idx(cfg, "body")] < pos[idx(cfg, "done")]
    assert len(rpo) == 6  # every block reachable


def test_unreachable_block_excluded_from_rpo_and_dominators():
    main = Function(
        "main",
        [
            BasicBlock("entry", 4, Jump("end")),
            BasicBlock("dead", 4, Return()),
            BasicBlock("end", 4, Exit()),
        ],
    )
    m = Module("dead", [main], entry="main").seal()
    cfg = FunctionCFG(m.function("main"))
    assert idx(cfg, "dead") not in cfg.rpo
    assert cfg.idom[idx(cfg, "dead")] == -1
    assert not cfg.dominates(idx(cfg, "entry"), idx(cfg, "dead"))


# -- dominators ---------------------------------------------------------------


def test_dominators_of_diamond(diamond):
    cfg = FunctionCFG(diamond.function("main"))
    e, le, r, j, b, d = (idx(cfg, n) for n in ("entry", "left", "right", "join", "body", "done"))
    assert cfg.idom[e] == e
    assert cfg.idom[le] == e
    assert cfg.idom[r] == e
    # join is reached via both arms, so neither arm dominates it.
    assert cfg.idom[j] == e
    assert cfg.idom[b] == j
    assert cfg.idom[d] == b
    assert cfg.dominates(e, d)
    assert cfg.dominates(j, b)
    assert not cfg.dominates(le, j)
    assert not cfg.dominates(r, j)


# -- natural loops ------------------------------------------------------------


def test_self_loop_detected(diamond):
    cfg = FunctionCFG(diamond.function("main"))
    b, d = idx(cfg, "body"), idx(cfg, "done")
    assert len(cfg.loops) == 1
    loop = cfg.loops[0]
    assert loop.header == b
    assert loop.body == frozenset({b})
    assert loop.back_edges == ((b, b),)
    assert loop.exits == ((b, d),)
    assert cfg.loop_depth[b] == 1
    assert cfg.loop_depth[d] == 0
    assert cfg.is_back_edge(b, b)
    assert not cfg.is_back_edge(b, d)
    assert cfg.is_loop_exit_edge(b, d)
    assert cfg.innermost_loop(b) is loop
    assert cfg.innermost_loop(d) is None


def test_multi_block_loop():
    from repro.ir import LoopBranch

    main = Function(
        "main",
        [
            BasicBlock("entry", 4, Jump("head")),
            BasicBlock("head", 4, Jump("tail")),
            BasicBlock("tail", 4, LoopBranch("head", "out", trips=2)),
            BasicBlock("out", 4, Exit()),
        ],
    )
    m = Module("loop2", [main], entry="main").seal()
    cfg = FunctionCFG(m.function("main"))
    h, t, o = idx(cfg, "head"), idx(cfg, "tail"), idx(cfg, "out")
    assert len(cfg.loops) == 1
    loop = cfg.loops[0]
    assert loop.header == h
    assert loop.body == frozenset({h, t})
    assert loop.back_edges == ((t, h),)
    assert (t, o) in loop.exits
    assert cfg.loop_depth[h] == cfg.loop_depth[t] == 1


# -- call graph ---------------------------------------------------------------


def test_call_graph_edges_and_topo_order(chain):
    g = CallGraph.build(chain)
    assert g.edges["main"] == ["helper"]
    assert g.edges["helper"] == ["leaf"]
    assert g.edges["leaf"] == []
    assert g.edges["cold"] == []
    assert all(len(c) == 1 for c in g.sccs)
    assert not any(g.is_recursive(f.name) for f in chain.functions)
    pos = {comp[0]: k for k, comp in enumerate(g.topo_sccs)}
    # Callers before callees.
    assert pos["main"] < pos["helper"] < pos["leaf"]
    assert g.callers_of("helper") == ["main"]
    assert g.callers_of("leaf") == ["helper"]
    assert g.callers_of("main") == []


def test_mutual_recursion_forms_one_scc(recursive):
    g = CallGraph.build(recursive)
    comp = g.sccs[g.scc_of["a"]]
    assert set(comp) == {"a", "b"}
    assert g.is_recursive("a") and g.is_recursive("b")
    assert not g.is_recursive("main")
    pos = {name: k for k, comp in enumerate(g.topo_sccs) for name in comp}
    assert pos["main"] < pos["a"]
    assert pos["a"] == pos["b"]


def test_self_recursion_is_recursive():
    from repro.ir import Call

    main = Function(
        "main",
        [BasicBlock("entry", 4, Call("s", "end")), BasicBlock("end", 4, Exit())],
    )
    s = Function(
        "s",
        [BasicBlock("entry", 4, Call("s", "out")), BasicBlock("out", 4, Return())],
    )
    m = Module("selfrec", [main, s], entry="main").seal()
    g = CallGraph.build(m)
    assert g.is_recursive("s")
    assert not g.is_recursive("main")


def test_build_cfgs_covers_every_function(chain):
    cfgs = build_cfgs(chain)
    assert set(cfgs) == {"main", "helper", "leaf", "cold"}
    assert all(cfgs[f.name].n == len(f.blocks) for f in chain.functions)
