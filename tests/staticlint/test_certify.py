"""Certification: Spearman, per-line miss parity, and the acceptance gate.

The suite-level tests here pin the PR's acceptance criteria: on at least
two synthetic workloads the static conflict scores must rank-correlate
with simulated per-line misses at Spearman >= 0.6, and a profile-free
``Lab`` must produce structurally valid optimized layouts.
"""

import numpy as np
import pytest

from repro.cache.fastsim import per_line_misses, stack_distance_histogram
from repro.lint import run_lint
from repro.lint.integrity import audit_address_map
from repro.staticlint.certify import certify_suite, spearman
from repro.staticlint.rulepack import run_static_lint

from .conftest import TINY_CACHE

#: scale used for the expensive end-to-end certifications below; the CI
#: smoke gate runs the same two programs at the same scale.
CERT_SCALE = 0.25
CERT_PROGRAMS = ("syn-gcc", "syn-gobmk")


# -- spearman -----------------------------------------------------------------


def test_spearman_perfect_monotone():
    assert spearman([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)
    # Rank correlation ignores the shape of the monotone map.
    assert spearman([1, 2, 3, 4], [1, 100, 101, 1000]) == pytest.approx(1.0)


def test_spearman_reversed_is_minus_one():
    assert spearman([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)


def test_spearman_handles_ties():
    assert spearman([1, 1, 2], [5, 5, 9]) == pytest.approx(1.0)
    # Tie-aware: matches the textbook value for one tied pair.
    rho = spearman([1, 1, 2, 3], [1, 2, 3, 4])
    assert 0.8 < rho < 1.0


def test_spearman_degenerate_inputs_are_zero():
    assert spearman([], []) == 0.0
    assert spearman([1], [2]) == 0.0
    assert spearman([3, 3, 3], [1, 2, 3]) == 0.0


def test_spearman_shape_mismatch_raises():
    with pytest.raises(ValueError, match="shape"):
        spearman([1, 2], [1, 2, 3])


# -- per-line miss attribution ------------------------------------------------


def test_per_line_misses_sums_to_histogram_misses():
    rng = np.random.default_rng(42)
    lines = rng.integers(0, 48, size=4000).astype(np.int64)
    per_line = per_line_misses(lines, TINY_CACHE)
    hist = stack_distance_histogram(lines, TINY_CACHE.n_sets)
    assert sum(per_line.values()) == hist.misses(TINY_CACHE.assoc)
    # Every touched line pays at least its cold miss.
    assert set(per_line) == set(np.unique(lines).tolist())
    assert all(v >= 1 for v in per_line.values())


# -- acceptance: static predictions certify against the simulator -------------


@pytest.fixture(scope="module")
def cert_results():
    return {
        r.program: r for r in certify_suite(CERT_PROGRAMS, scale=CERT_SCALE)
    }


@pytest.mark.parametrize("program", CERT_PROGRAMS)
def test_conflict_scores_correlate_with_simulated_misses(cert_results, program):
    r = cert_results[program]
    assert r.n_conflict_lines > 0, "gate program must have oversubscribed sets"
    assert r.measured_misses > 0
    assert r.conflict_rho >= 0.6
    assert r.passes(min_conflict_rho=0.6)


@pytest.mark.parametrize("program", CERT_PROGRAMS)
def test_hotness_estimates_correlate_with_traced_counts(cert_results, program):
    assert cert_results[program].hotness_rho >= 0.6


def test_certify_result_round_trips_to_dict(cert_results):
    d = cert_results["syn-gcc"].to_dict()
    assert d["program"] == "syn-gcc"
    assert d["layout"] == "baseline"
    assert set(d) == {
        "program",
        "layout",
        "conflict_rho",
        "hotness_rho",
        "n_lines",
        "n_conflict_lines",
        "measured_misses",
        "diagnostics",
        "static_seconds",
        "sim_seconds",
    }


# -- acceptance: profile-free optimization produces valid layouts -------------


def test_static_profile_drives_optimizer_to_valid_layout():
    from repro.experiments.pipeline import Lab

    lab = Lab(scale=0.1, profile_source="static")
    prepared = lab.program("syn-sjeng")
    layout = lab.layout("syn-sjeng", "bb-affinity")
    module = prepared.module
    # Structurally sound: the shared audit finds nothing...
    assert audit_address_map(module, layout.address_map) == []
    assert sorted(layout.address_map.order) == list(range(module.n_blocks))
    # ...and both integrity lints agree (parity between S005 and L006).
    s_report = run_static_lint(module, layout, lab.cache_cfg)
    l_report = run_lint(
        module, layout, prepared.test_bundle, lab.cache_cfg
    )
    assert s_report.by_rule("S005") == []
    assert l_report.by_rule("L006") == []
    # The profile that drove the build really was synthetic.
    assert prepared.test_bundle.input_name == "static-synthetic"
