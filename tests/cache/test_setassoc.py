"""Unit and property tests for the solo cache simulator (repro.cache.setassoc)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import CacheConfig, CacheState, PAPER_L1I, simulate, warm_cache
from repro.locality import COLD, reuse_distances


def test_direct_mapped_conflicts():
    cfg = CacheConfig(size_bytes=128, assoc=1, line_bytes=64)  # 2 sets
    # lines 0 and 2 both map to set 0 and evict each other; line 1 -> set 1.
    st_ = simulate(np.array([0, 2, 0, 2, 1, 1]), cfg)
    assert st_.misses == 5
    assert st_.accesses == 6
    assert st_.hits == 1


def test_two_way_absorbs_the_same_pattern():
    cfg = CacheConfig(size_bytes=256, assoc=2, line_bytes=64)  # 2 sets, 2-way
    st_ = simulate(np.array([0, 2, 0, 2, 1, 1]), cfg)
    assert st_.misses == 3  # only cold misses


def test_lru_replacement_within_set():
    cfg = CacheConfig(size_bytes=128, assoc=2, line_bytes=64)  # 1 set, 2-way
    # access 0,1 (cold), touch 0 (now MRU), insert 2 -> evicts 1 not 0.
    st_ = simulate(np.array([0, 1, 0, 2, 0, 1]), cfg)
    # misses: 0,1,2 cold + final 1 (evicted) = 4
    assert st_.misses == 4


def test_fully_associative_equals_reuse_distance_model():
    rng = np.random.default_rng(0)
    lines = rng.integers(0, 24, 800)
    cfg = CacheConfig(size_bytes=8 * 64, assoc=8, line_bytes=64)  # 1 set, 8-way
    st_ = simulate(lines, cfg)
    d = reuse_distances(lines)
    expected = int(((d == COLD) | (d > 8)).sum())
    assert st_.misses == expected


def test_prefetch_helps_sequential_stream():
    lines = np.tile(np.arange(600), 3)  # sequential sweeps, > capacity
    plain = simulate(lines, PAPER_L1I)
    pref = simulate(lines, PAPER_L1I, prefetch=True)
    assert pref.misses < plain.misses
    assert pref.prefetches > 0
    assert pref.prefetch_hits > 0


def test_warm_start_state():
    lines = np.arange(16)
    state = warm_cache(lines, PAPER_L1I)
    again = simulate(lines, PAPER_L1I, state=state)
    assert again.misses == 0  # everything resident
    assert state.resident_lines() >= set(range(16))


def test_state_config_mismatch_rejected():
    state = CacheState(PAPER_L1I)
    other = CacheConfig(size_bytes=16 * 1024, assoc=4, line_bytes=64)
    with pytest.raises(ValueError):
        simulate(np.array([1]), other, state=state)


@settings(max_examples=40, deadline=None)
@given(
    lines=st.lists(st.integers(0, 40), min_size=0, max_size=400),
    assoc=st.sampled_from([1, 2, 4]),
)
def test_miss_count_matches_per_set_lru_reference(lines, assoc):
    cfg = CacheConfig(size_bytes=4 * assoc * 64, assoc=assoc, line_bytes=64)
    arr = np.array(lines, dtype=np.int64)
    st_ = simulate(arr, cfg)
    # reference: independent LRU list per set.
    sets = {}
    misses = 0
    for line in lines:
        s = sets.setdefault(line % cfg.n_sets, [])
        if line in s:
            s.remove(line)
        else:
            misses += 1
            if len(s) >= assoc:
                s.pop()
        s.insert(0, line)
    assert st_.misses == misses
    assert st_.accesses == len(lines)


def test_cache_inclusion_monotonicity():
    """More ways never increases misses (LRU inclusion property per set
    holds when sets are identical)."""
    rng = np.random.default_rng(7)
    lines = rng.integers(0, 64, 2000)
    m = []
    for assoc in (1, 2, 4, 8):
        cfg = CacheConfig(size_bytes=8 * assoc * 64, assoc=assoc, line_bytes=64)
        m.append(simulate(lines, cfg).misses)
    assert all(a >= b for a, b in zip(m, m[1:]))
