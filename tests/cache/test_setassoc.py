"""Unit and property tests for the solo cache simulator (repro.cache.setassoc)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import (
    CacheConfig,
    CacheState,
    PAPER_L1I,
    simulate,
    simulate_policy,
    simulate_shared,
    warm_cache,
)
from repro.locality import COLD, reuse_distances


def test_direct_mapped_conflicts():
    cfg = CacheConfig(size_bytes=128, assoc=1, line_bytes=64)  # 2 sets
    # lines 0 and 2 both map to set 0 and evict each other; line 1 -> set 1.
    st_ = simulate(np.array([0, 2, 0, 2, 1, 1]), cfg)
    assert st_.misses == 5
    assert st_.accesses == 6
    assert st_.hits == 1


def test_two_way_absorbs_the_same_pattern():
    cfg = CacheConfig(size_bytes=256, assoc=2, line_bytes=64)  # 2 sets, 2-way
    st_ = simulate(np.array([0, 2, 0, 2, 1, 1]), cfg)
    assert st_.misses == 3  # only cold misses


def test_lru_replacement_within_set():
    cfg = CacheConfig(size_bytes=128, assoc=2, line_bytes=64)  # 1 set, 2-way
    # access 0,1 (cold), touch 0 (now MRU), insert 2 -> evicts 1 not 0.
    st_ = simulate(np.array([0, 1, 0, 2, 0, 1]), cfg)
    # misses: 0,1,2 cold + final 1 (evicted) = 4
    assert st_.misses == 4


def test_fully_associative_equals_reuse_distance_model():
    rng = np.random.default_rng(0)
    lines = rng.integers(0, 24, 800)
    cfg = CacheConfig(size_bytes=8 * 64, assoc=8, line_bytes=64)  # 1 set, 8-way
    st_ = simulate(lines, cfg)
    d = reuse_distances(lines)
    expected = int(((d == COLD) | (d > 8)).sum())
    assert st_.misses == expected


def test_prefetch_helps_sequential_stream():
    lines = np.tile(np.arange(600), 3)  # sequential sweeps, > capacity
    plain = simulate(lines, PAPER_L1I)
    pref = simulate(lines, PAPER_L1I, prefetch=True)
    assert pref.misses < plain.misses
    assert pref.prefetches > 0
    assert pref.prefetch_hits > 0


class TestDegeneratePrefetchGeometry:
    """PR 3 bugfix pin: a tagged prefetch must never evict its own trigger.

    With n_sets == 1 and assoc == 1 the prefetch target L+1 maps to the
    demand line L's own (only) set and L occupies the only (LRU) way, so
    the old code evicted L immediately after fetching it — every re-access
    missed.  The prefetch is suppressed in exactly that geometry.
    """

    ONE_SET_DIRECT = CacheConfig(size_bytes=64, assoc=1, line_bytes=64)

    def test_trigger_line_survives_its_own_prefetch(self):
        st_ = simulate(np.array([0, 0]), self.ONE_SET_DIRECT, prefetch=True)
        assert st_.misses == 1  # second access must hit
        assert st_.prefetches == 0  # the self-evicting prefetch is dropped

    def test_two_way_single_set_still_prefetches(self):
        cfg = CacheConfig(size_bytes=128, assoc=2, line_bytes=64)  # 1 set, 2-way
        st_ = simulate(np.array([0, 0]), cfg, prefetch=True)
        assert st_.misses == 1
        assert st_.prefetches == 1  # line 1 fits in the other way

    def test_multi_set_geometry_unchanged(self):
        """The guard cannot fire when the target maps to a different set:
        direct-mapped multi-set prefetching still works as before."""
        lines = np.tile(np.arange(40), 3)
        cfg = CacheConfig(size_bytes=16 * 64, assoc=1, line_bytes=64)  # 16 sets
        pref = simulate(lines, cfg, prefetch=True)
        plain = simulate(lines, cfg)
        assert pref.prefetches > 0
        assert pref.prefetch_hits > 0
        assert pref.misses < plain.misses

    def test_shared_simulator_has_the_same_guard(self):
        [st_] = simulate_shared(
            [np.array([0, 0])], self.ONE_SET_DIRECT, prefetch=True
        )
        assert st_.misses == 1
        assert st_.prefetches == 0


class TestSimulatePolicyUnsupportedOptions:
    """PR 3 bugfix pin: simulate_policy used to silently ignore prefetch
    and warm-start state; both now raise instead of simulating the wrong
    thing."""

    def test_lru_policy_still_matches_simulate(self):
        rng = np.random.default_rng(11)
        lines = rng.integers(0, 48, 1500)
        assert simulate_policy(lines, PAPER_L1I).misses == simulate(
            lines, PAPER_L1I
        ).misses

    def test_prefetch_rejected(self):
        with pytest.raises(ValueError, match="prefetch"):
            simulate_policy(np.array([0, 1]), PAPER_L1I, prefetch=True)

    def test_warm_state_rejected(self):
        state = CacheState(PAPER_L1I)
        with pytest.raises(ValueError, match="state"):
            simulate_policy(np.array([0, 1]), PAPER_L1I, state=state)


def test_warm_start_state():
    lines = np.arange(16)
    state = warm_cache(lines, PAPER_L1I)
    again = simulate(lines, PAPER_L1I, state=state)
    assert again.misses == 0  # everything resident
    assert state.resident_lines() >= set(range(16))


def test_state_config_mismatch_rejected():
    state = CacheState(PAPER_L1I)
    other = CacheConfig(size_bytes=16 * 1024, assoc=4, line_bytes=64)
    with pytest.raises(ValueError):
        simulate(np.array([1]), other, state=state)


@settings(max_examples=40, deadline=None)
@given(
    lines=st.lists(st.integers(0, 40), min_size=0, max_size=400),
    assoc=st.sampled_from([1, 2, 4]),
)
def test_miss_count_matches_per_set_lru_reference(lines, assoc):
    cfg = CacheConfig(size_bytes=4 * assoc * 64, assoc=assoc, line_bytes=64)
    arr = np.array(lines, dtype=np.int64)
    st_ = simulate(arr, cfg)
    # reference: independent LRU list per set.
    sets = {}
    misses = 0
    for line in lines:
        s = sets.setdefault(line % cfg.n_sets, [])
        if line in s:
            s.remove(line)
        else:
            misses += 1
            if len(s) >= assoc:
                s.pop()
        s.insert(0, line)
    assert st_.misses == misses
    assert st_.accesses == len(lines)


def test_cache_inclusion_monotonicity():
    """More ways never increases misses (LRU inclusion property per set
    holds when sets are identical)."""
    rng = np.random.default_rng(7)
    lines = rng.integers(0, 64, 2000)
    m = []
    for assoc in (1, 2, 4, 8):
        cfg = CacheConfig(size_bytes=8 * assoc * 64, assoc=assoc, line_bytes=64)
        m.append(simulate(lines, cfg).misses)
    assert all(a >= b for a, b in zip(m, m[1:]))
