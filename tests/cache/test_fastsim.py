"""Parity and property tests for the stack-distance kernel
(repro.cache.fastsim).

The contract under test: on its supported domain — cold cache, no
prefetch, true LRU — the kernel is **bit-identical** to the event-driven
simulator for every (n_sets, assoc) geometry, from one histogram per
n_sets.  Outside that domain it must refuse loudly, never silently
diverge.
"""

import numpy as np
import pytest

from repro.cache import (
    CacheConfig,
    DistanceHistogram,
    simulate,
    simulate_fast,
    stack_distance_histogram,
    sweep_stats,
    warm_cache,
)

N_SETS = (1, 2, 64, 128)
ASSOCS = (1, 2, 4, 8)


def cfg_for(n_sets: int, assoc: int) -> CacheConfig:
    return CacheConfig(
        size_bytes=n_sets * assoc * 64, assoc=assoc, line_bytes=64
    )


def _streams():
    """Named streams covering the shapes real fetch traces produce."""
    rng = np.random.default_rng(20140731)
    tile = np.arange(300)
    return {
        "random": rng.integers(0, 700, 6000),
        "random-wide": rng.integers(0, 100_000, 6000),
        "tiled-wraps": np.tile(tile, 12),  # loop that wraps the cache
        "duplicates": np.repeat(rng.integers(0, 500, 1500), 4),
        "tiny-hot": rng.integers(0, 8, 4000),  # everything in few sets
        "single-value": np.full(1000, 42),
        "empty": np.array([], dtype=np.int64),
    }


@pytest.mark.parametrize("stream_name", sorted(_streams()))
@pytest.mark.parametrize("n_sets", N_SETS)
def test_parity_with_scalar_simulator(stream_name, n_sets):
    """One histogram answers every associativity, bit-identically."""
    lines = _streams()[stream_name]
    hist = stack_distance_histogram(lines, n_sets)
    for assoc in ASSOCS:
        cfg = cfg_for(n_sets, assoc)
        assert hist.stats(assoc) == simulate(lines, cfg, prefetch=False), (
            stream_name,
            n_sets,
            assoc,
        )


@pytest.mark.parametrize("n_sets", N_SETS)
def test_randomized_geometry_matrix(n_sets):
    """Seeded random streams across the full geometry matrix."""
    rng = np.random.default_rng(1000 + n_sets)
    for trial in range(3):
        lines = rng.integers(0, rng.integers(10, 5000), rng.integers(1, 3000))
        hist = stack_distance_histogram(lines, n_sets)
        for assoc in ASSOCS:
            assert hist.stats(assoc) == simulate(lines, cfg_for(n_sets, assoc))


def test_single_set_degenerate_geometry():
    """The fully-associative single-set case (PR 3's prefetch fix covered
    the scalar side of this geometry; the kernel must match it)."""
    rng = np.random.default_rng(7)
    lines = rng.integers(0, 10, 2000)
    for assoc in (1, 2, 4, 8):
        cfg = CacheConfig(size_bytes=assoc * 64, assoc=assoc, line_bytes=64)
        assert cfg.n_sets == 1
        assert simulate_fast(lines, cfg) == simulate(lines, cfg)


@pytest.mark.parametrize("stream_name", sorted(_streams()))
@pytest.mark.parametrize("n_sets", N_SETS)
def test_histogram_constructions_agree(stream_name, n_sets):
    """All three constructions — the per-set MTF walk, the Fenwick pass,
    and the offline dominance-count sweep — are bit-identical."""
    lines = _streams()[stream_name]
    mtf = stack_distance_histogram(lines, n_sets, method="mtf")
    bit = stack_distance_histogram(lines, n_sets, method="bit")
    sweep = stack_distance_histogram(lines, n_sets, method="sweep")
    assert mtf == bit
    assert mtf == sweep


@pytest.mark.parametrize("n_sets", (1, 4, 128))
def test_per_line_misses_pinned_against_naive_walk(n_sets):
    """The hot-setup rewrite of per_line_misses (shared d0 strip + set
    bounds, no per-set id rebuilds) changes no behavior: counts match a
    naive per-set LRU stack walk, and their sum matches the histogram.
    Geometries with empty sets included (ids drawn from few values)."""
    from repro.cache.fastsim import per_line_misses

    rng = np.random.default_rng(4242 + n_sets)
    streams = [
        rng.integers(0, 9, 3000),  # most sets empty at n_sets=128
        np.repeat(rng.integers(0, 400, 800), 3),  # d0 repeats stripped
        rng.integers(0, 5000, 4000),
        np.array([], dtype=np.int64),
    ]
    for assoc in (1, 4):
        cfg = cfg_for(n_sets, assoc)
        for lines in streams:
            expected: dict[int, int] = {}
            stacks: dict[int, list[int]] = {}
            for line in np.asarray(lines, dtype=np.int64).tolist():
                stack = stacks.setdefault(line & (n_sets - 1), [])
                if line in stack:
                    d = stack.index(line)
                    stack.insert(0, stack.pop(d))
                    if d >= assoc:
                        expected[line] = expected.get(line, 0) + 1
                else:
                    expected[line] = expected.get(line, 0) + 1
                    stack.insert(0, line)
            got = per_line_misses(lines, cfg)
            assert got == expected
            hist = stack_distance_histogram(lines, n_sets)
            assert sum(got.values()) == hist.misses(assoc)


def test_histogram_invariants():
    rng = np.random.default_rng(99)
    lines = rng.integers(0, 900, 5000)
    for n_sets in N_SETS:
        hist = stack_distance_histogram(lines, n_sets)
        # Every access is either cold or lands in some histogram bucket.
        assert hist.cold + int(hist.hist.sum()) == hist.accesses == len(lines)
        # A line maps to one set, so cold == distinct lines.
        assert hist.cold == len(np.unique(lines))
        # Misses are monotonically non-increasing in associativity...
        miss_curve = [hist.misses(a) for a in range(1, 40)]
        assert all(a >= b for a, b in zip(miss_curve, miss_curve[1:]))
        # ...and bottom out at the compulsory misses.
        assert hist.misses(10**6) == hist.cold


def test_empty_stream():
    hist = stack_distance_histogram(np.array([], dtype=np.int64), 64)
    assert hist.accesses == 0 and hist.cold == 0
    assert hist.misses(4) == 0
    assert simulate_fast(np.array([], dtype=np.int64), cfg_for(64, 4)) == simulate(
        np.array([], dtype=np.int64), cfg_for(64, 4)
    )


def test_sweep_stats_matches_scalar_sweep():
    rng = np.random.default_rng(11)
    lines = rng.integers(0, 2000, 4000)
    stats = sweep_stats(lines, 128, (1, 2, 4, 8, 16))
    for assoc, st in stats.items():
        assert st == simulate(lines, cfg_for(128, assoc))


def test_refuses_prefetch():
    with pytest.raises(ValueError, match="prefetch"):
        simulate_fast(np.arange(10), cfg_for(64, 4), prefetch=True)


def test_refuses_warm_state():
    cfg = cfg_for(64, 4)
    state = warm_cache(np.arange(100), cfg)
    with pytest.raises(ValueError, match="cold"):
        simulate_fast(np.arange(10), cfg, state=state)


def test_rejects_bad_geometry_and_method():
    with pytest.raises(ValueError, match="power of two"):
        stack_distance_histogram(np.arange(10), 96)
    with pytest.raises(ValueError, match="power of two"):
        stack_distance_histogram(np.arange(10), 0)
    with pytest.raises(ValueError, match="unknown method"):
        stack_distance_histogram(np.arange(10), 64, method="magic")
    with pytest.raises(ValueError, match="one-dimensional"):
        stack_distance_histogram(np.zeros((3, 3)), 64)
    with pytest.raises(ValueError, match="assoc"):
        stack_distance_histogram(np.arange(10), 64).misses(0)


def test_histogram_round_trip_and_equality():
    rng = np.random.default_rng(3)
    lines = rng.integers(0, 300, 2000)
    hist = stack_distance_histogram(lines, 64)
    clone = DistanceHistogram.from_dict(hist.to_dict())
    assert clone == hist
    assert clone.misses(4) == hist.misses(4)
    other = stack_distance_histogram(lines[:-1], 64)
    assert hist != other
    assert hist.__eq__(object()) is NotImplemented
