"""Unit tests for cache geometry (repro.cache.config)."""

import pytest

from repro.cache import PAPER_L1I, CacheConfig


def test_paper_configuration():
    assert PAPER_L1I.size_bytes == 32 * 1024
    assert PAPER_L1I.assoc == 4
    assert PAPER_L1I.line_bytes == 64
    assert PAPER_L1I.n_lines == 512
    assert PAPER_L1I.n_sets == 128


def test_set_mapping():
    cfg = CacheConfig(size_bytes=1024, assoc=2, line_bytes=64)  # 8 sets
    assert cfg.n_sets == 8
    assert cfg.set_of_line(0) == 0
    assert cfg.set_of_line(8) == 0
    assert cfg.set_of_line(13) == 5


def test_describe():
    assert "32KB" in PAPER_L1I.describe()
    assert "4-way" in PAPER_L1I.describe()


def test_validation():
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=1000, assoc=4, line_bytes=64)  # not multiple
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=1024, assoc=0, line_bytes=64)
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=1024, assoc=2, line_bytes=48)  # not pow2
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=384 * 64, assoc=1, line_bytes=64)  # 384 sets
