"""Unit and property tests for replacement policies (repro.cache.policies)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import (
    CacheConfig,
    FIFOSet,
    LRUSet,
    PAPER_L1I,
    RandomSet,
    TreePLRUSet,
    make_policy,
    simulate,
    simulate_policy,
)


class TestLRUSet:
    def test_matches_fast_simulator(self):
        rng = np.random.default_rng(0)
        lines = rng.integers(0, 700, 5000)
        fast = simulate(lines, PAPER_L1I)
        slow = simulate_policy(lines, PAPER_L1I, "lru")
        assert fast.misses == slow.misses
        assert fast.accesses == slow.accesses


class TestFIFO:
    def test_hit_does_not_promote(self):
        s = FIFOSet(assoc=2)
        assert not s.lookup(1)
        assert not s.lookup(2)
        assert s.lookup(1)        # hit, but 1 stays oldest
        assert not s.lookup(3)    # evicts 1 (FIFO), not 2
        assert not s.lookup(1)
        assert s.lookup(2) is False or True  # 2 may or may not survive

    def test_lru_would_differ(self):
        # Same access pattern where LRU keeps 1 but FIFO evicts it.
        pattern = [1, 2, 1, 3, 1]
        lru, fifo = LRUSet(2), FIFOSet(2)
        lru_hits = [lru.lookup(x) for x in pattern]
        fifo_hits = [fifo.lookup(x) for x in pattern]
        assert lru_hits[-1] is True
        assert fifo_hits[-1] is False


class TestTreePLRU:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            TreePLRUSet(assoc=3)

    def test_assoc2_equals_lru(self):
        # with two ways, tree-PLRU degenerates to true LRU.
        rng = np.random.default_rng(1)
        pattern = rng.integers(0, 5, 300).tolist()
        plru, lru = TreePLRUSet(2), LRUSet(2)
        for x in pattern:
            assert plru.lookup(x) == lru.lookup(x)

    def test_fills_empty_ways_first(self):
        s = TreePLRUSet(4)
        for line in (10, 11, 12, 13):
            assert not s.lookup(line)
        assert s.contents() == {10, 11, 12, 13}
        # all resident lines hit.
        for line in (10, 11, 12, 13):
            assert s.lookup(line)

    def test_victim_is_not_most_recent(self):
        s = TreePLRUSet(4)
        for line in (1, 2, 3, 4):
            s.lookup(line)
        s.lookup(4)  # make 4 clearly recent
        s.lookup(99)  # insert -> evicts someone
        assert 4 in s.contents()


class TestRandom:
    def test_deterministic_with_seed(self):
        a, b = RandomSet(2, seed=7), RandomSet(2, seed=7)
        pattern = [1, 2, 3, 1, 4, 2, 5]
        assert [a.lookup(x) for x in pattern] == [b.lookup(x) for x in pattern]

    def test_capacity_respected(self):
        s = RandomSet(2, seed=0)
        for x in range(10):
            s.lookup(x)
        assert len(s.contents()) == 2


def test_make_policy_names():
    for name in ("lru", "fifo", "plru", "random"):
        assert make_policy(name, 4).assoc == 4
    with pytest.raises(ValueError):
        make_policy("belady", 4)


@settings(max_examples=40, deadline=None)
@given(
    lines=st.lists(st.integers(0, 30), min_size=0, max_size=300),
    policy=st.sampled_from(["lru", "fifo", "plru", "random"]),
)
def test_policies_bounded_by_compulsory_and_total(lines, policy):
    cfg = CacheConfig(size_bytes=4 * 4 * 64, assoc=4, line_bytes=64)
    arr = np.array(lines, dtype=np.int64)
    stats = simulate_policy(arr, cfg, policy)
    distinct = len(set(lines))
    assert distinct <= stats.misses <= len(lines) or not lines
    assert stats.accesses == len(lines)


@settings(max_examples=30, deadline=None)
@given(lines=st.lists(st.integers(0, 40), min_size=1, max_size=300))
def test_lru_never_worse_than_fifo_on_single_set(lines):
    """Within one fully-associative set, LRU dominates FIFO for stack-
    friendly traces is NOT a theorem (Belady anomalies exist for FIFO
    capacity changes, not LRU-vs-FIFO) — so only check both stay within
    the compulsory/total band and LRU matches the reference simulator."""
    cfg = CacheConfig(size_bytes=8 * 64, assoc=8, line_bytes=64)
    arr = np.array(lines, dtype=np.int64)
    lru = simulate_policy(arr, cfg, "lru")
    fifo = simulate_policy(arr, cfg, "fifo")
    assert lru.misses == simulate(arr, cfg).misses
    assert fifo.misses >= len(set(lines))
