"""Unit tests for the two-level hierarchy (repro.cache.hierarchy)."""

import numpy as np
import pytest

from repro.cache import (
    CacheConfig,
    HierarchyConfig,
    PAPER_HIERARCHY,
    simulate,
    simulate_hierarchy,
    simulate_hierarchy_shared,
)

SMALL = HierarchyConfig(
    l1i=CacheConfig(512, 2, 64),
    l1d=CacheConfig(512, 2, 64),
    l2=CacheConfig(2048, 4, 64),
)


def make_stream(i_lines, d_lines):
    lines = np.array(list(i_lines) + list(d_lines), dtype=np.int64)
    is_data = np.array([False] * len(i_lines) + [True] * len(d_lines))
    return lines, is_data


def test_paper_hierarchy_geometry():
    assert PAPER_HIERARCHY.l1i.size_bytes == 32 * 1024
    assert PAPER_HIERARCHY.l1d.assoc == 8
    assert PAPER_HIERARCHY.l2.size_bytes == 256 * 1024


def test_routing_by_access_kind():
    lines, is_data = make_stream([1, 2, 1], [100, 100])
    stats = simulate_hierarchy(lines, is_data, SMALL)
    assert stats.l1i.accesses == 3
    assert stats.l1d.accesses == 2
    assert stats.l1i.misses == 2  # 1, 2 cold; 1 hits
    assert stats.l1d.misses == 1


def test_l2_sees_only_l1_misses():
    lines, is_data = make_stream([1, 1, 1, 2], [])
    stats = simulate_hierarchy(lines, is_data, SMALL)
    assert stats.l2.accesses == stats.l1i.misses + stats.l1d.misses == 2
    assert stats.l2.misses == 2  # both cold in L2 as well


def test_l2_absorbs_l1_conflicts():
    # two lines conflicting in a 1-set L1 but co-resident in L2.
    cfg = HierarchyConfig(
        l1i=CacheConfig(64, 1, 64),  # 1 line total
        l1d=CacheConfig(64, 1, 64),
        l2=CacheConfig(512, 8, 64),
    )
    pattern = [1, 2] * 20
    lines, is_data = make_stream(pattern, [])
    stats = simulate_hierarchy(lines, is_data, cfg)
    assert stats.l1i.misses == 40  # every access conflicts in L1
    assert stats.l2.misses == 2  # but L2 holds both


def test_instruction_side_matches_flat_simulator():
    rng = np.random.default_rng(0)
    ilines = rng.integers(0, 30, 2000)
    lines, is_data = make_stream(ilines.tolist(), [])
    stats = simulate_hierarchy(lines, is_data, SMALL)
    flat = simulate(ilines, SMALL.l1i)
    assert stats.l1i.misses == flat.misses


def test_shape_validation():
    with pytest.raises(ValueError):
        simulate_hierarchy(np.array([1, 2]), np.array([True]), SMALL)


def test_shared_hierarchy_contention():
    # each thread's data fits L2 alone; together they thrash it.
    a = make_stream([], list(range(1000, 1024)) * 10)
    b = make_stream([], list(range(2000, 2024)) * 10)
    solo = simulate_hierarchy(*a, SMALL)
    both = simulate_hierarchy_shared([a, b], SMALL, quantum=4)
    assert both[0].l1d.misses >= solo.l1d.misses
    # per-thread stats attribute accesses correctly.
    assert both[0].l1d.accesses >= a[0].shape[0]
    assert both[1].l1d.accesses >= b[0].shape[0]


def test_shared_empty_and_validation():
    assert simulate_hierarchy_shared([], SMALL) == []
    with pytest.raises(ValueError):
        simulate_hierarchy_shared([make_stream([1], [])], SMALL, quantum=0)


def test_l2_miss_ratio_per_access():
    lines, is_data = make_stream([1, 2, 3], [100])
    stats = simulate_hierarchy(lines, is_data, SMALL)
    assert stats.l2_miss_ratio_per_access == pytest.approx(stats.l2.misses / 4)
