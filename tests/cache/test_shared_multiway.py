"""N-thread shared-cache tests (the SMT-width extension's substrate)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import CacheConfig, PAPER_L1I, simulate, simulate_shared


def disjoint_streams(n_threads, per_thread, working_set, seed=0):
    rng = np.random.default_rng(seed)
    return [
        rng.integers(t * 10_000, t * 10_000 + working_set, per_thread)
        for t in range(n_threads)
    ]


def test_four_threads_all_measured():
    streams = disjoint_streams(4, 2000, 200)
    stats = simulate_shared(streams, PAPER_L1I)
    assert len(stats) == 4
    for st_, stream in zip(stats, streams):
        assert st_.accesses >= stream.shape[0]


def test_contention_grows_with_thread_count():
    """Each thread's working set is ~0.6x capacity: one fits, four thrash."""
    per_thread_ws = 300  # lines, vs 512 capacity
    ratios = []
    for width in (1, 2, 4):
        streams = disjoint_streams(width, 4000, per_thread_ws)
        if width == 1:
            ratios.append(simulate(streams[0], PAPER_L1I).miss_ratio)
        else:
            stats = simulate_shared(streams, PAPER_L1I, wrap=False)
            ratios.append(stats[0].misses / streams[0].shape[0])
    assert ratios[0] <= ratios[1] <= ratios[2]
    assert ratios[2] > ratios[0]


def test_no_wrap_four_threads_conserves_accesses():
    streams = disjoint_streams(4, 1500, 100, seed=3)
    stats = simulate_shared(streams, PAPER_L1I, wrap=False)
    for st_, stream in zip(stats, streams):
        assert st_.accesses == stream.shape[0]


@settings(max_examples=20, deadline=None)
@given(
    n_threads=st.integers(2, 4),
    quantum=st.sampled_from([1, 4, 16]),
    seed=st.integers(0, 100),
)
def test_no_wrap_matches_merged_reference(n_threads, quantum, seed):
    """N-thread generalization of the merged-stream equivalence."""
    rng = np.random.default_rng(seed)
    streams = [
        rng.integers(t * 1000, t * 1000 + 60, 300) for t in range(n_threads)
    ]
    cfg = CacheConfig(size_bytes=4 * 1024, assoc=4, line_bytes=64)
    shared = simulate_shared(streams, cfg, quantum=quantum, wrap=False)
    merged = []
    cursors = [0] * n_threads
    while any(c < 300 for c in cursors):
        for t in range(n_threads):
            chunk = streams[t][cursors[t] : cursors[t] + quantum]
            merged.extend(chunk.tolist())
            cursors[t] += quantum
    solo = simulate(np.array(merged), cfg)
    assert sum(s.misses for s in shared) == solo.misses
    assert sum(s.accesses for s in shared) == solo.accesses
