"""Unit tests for the shared-cache co-run simulator (repro.cache.shared)."""

import numpy as np
import pytest

from repro.cache import (
    CacheConfig,
    PAPER_L1I,
    SharedCacheStats,
    simulate,
    simulate_shared,
)


def test_single_thread_equals_solo():
    rng = np.random.default_rng(1)
    lines = rng.integers(0, 600, 5000)
    solo = simulate(lines, PAPER_L1I)
    shared = simulate_shared([lines], PAPER_L1I)
    assert shared[0].misses == solo.misses
    assert shared[0].accesses == solo.accesses


def test_empty_streams():
    assert simulate_shared([], PAPER_L1I) == []
    stats = simulate_shared([np.empty(0, dtype=np.int64)], PAPER_L1I)
    assert stats[0].accesses == 0


def test_quantum_validation():
    with pytest.raises(ValueError):
        simulate_shared([np.array([1])], PAPER_L1I, quantum=0)


def test_corun_increases_misses_under_contention():
    rng = np.random.default_rng(2)
    # two disjoint working sets, each ~0.8x capacity: fits alone, thrashes
    # together.
    a = np.tile(np.arange(0, 400), 20)
    b = np.tile(np.arange(1000, 1400), 20)
    solo_a = simulate(a, PAPER_L1I).misses
    shared = simulate_shared([a, b], PAPER_L1I, wrap=False)
    # normalize to one pass.
    assert shared[0].misses > solo_a


def test_wrap_restarts_shorter_stream():
    a = np.arange(0, 100)           # short
    b = np.arange(1000, 1000 + 4000)  # long
    shared = simulate_shared([a, b], PAPER_L1I, wrap=True)
    # thread 0 must have issued more than one pass.
    assert shared[0].accesses > a.shape[0]
    # thread 1 completes exactly one pass.
    assert shared[1].accesses == b.shape[0]


def test_no_wrap_lets_thread_exit():
    a = np.arange(0, 64)
    b = np.arange(1000, 1000 + 2048)
    shared = simulate_shared([a, b], PAPER_L1I, wrap=False)
    assert shared[0].accesses == a.shape[0]
    assert shared[1].accesses == b.shape[0]


def test_total_conservation_against_merged_reference():
    """With quantum q and no wrap, the shared sim must equal a solo sim of
    the explicitly interleaved stream."""
    rng = np.random.default_rng(3)
    a = rng.integers(0, 300, 1000)
    b = rng.integers(500, 800, 1000)
    q = 8
    shared = simulate_shared([a, b], PAPER_L1I, quantum=q, wrap=False)
    merged = []
    ia = ib = 0
    while ia < len(a) or ib < len(b):
        merged.extend(a[ia : ia + q])
        ia += q
        merged.extend(b[ib : ib + q])
        ib += q
    solo = simulate(np.array(merged), PAPER_L1I)
    assert shared[0].misses + shared[1].misses == solo.misses


def test_deterministic():
    rng = np.random.default_rng(4)
    a = rng.integers(0, 700, 3000)
    b = rng.integers(0, 700, 2500)
    r1 = simulate_shared([a, b], PAPER_L1I)
    r2 = simulate_shared([a, b], PAPER_L1I)
    assert r1[0].misses == r2[0].misses
    assert r1[1].misses == r2[1].misses


def test_shared_prefetch_counts():
    a = np.tile(np.arange(0, 512), 4)
    b = np.tile(np.arange(1000, 1512), 4)
    stats = simulate_shared([a, b], PAPER_L1I, prefetch=True)
    assert stats[0].prefetches > 0 or stats[1].prefetches > 0


def test_cross_thread_prefetch_attributed_to_issuer():
    """Only thread 0 misses (even lines), so only thread 0 issues
    prefetches — of the odd lines thread 1 then consumes.  The
    accounting must attribute those hits as *cross* help on thread 1,
    not conflate them with self-help; pre-fix, the per-line issuer was
    not tracked at all.
    """
    cfg = CacheConfig(size_bytes=64 * 4 * 64, assoc=4, line_bytes=64)
    t0 = np.arange(0, 400, 2)  # even lines: all cold misses
    t1 = np.arange(1, 400, 2)  # odd lines: exactly the prefetched ones
    stats = simulate_shared([t0, t1], cfg, prefetch=True)

    # Thread 1 never missed, so it never issued a single prefetch...
    assert stats[1].misses == 0
    assert stats[1].prefetches == 0
    # ...yet it consumed prefetched lines — all of them peer-issued.
    assert stats[1].prefetch_hits > 0
    assert stats[1].prefetch_hits_cross == stats[1].prefetch_hits
    assert stats[1].prefetch_hits_self == 0
    # Thread 0's own stream never touches a prefetched (odd) line.
    assert stats[0].prefetch_hits == 0


def test_prefetch_hit_split_invariant():
    """prefetch_hits == self + cross on every thread, for arbitrary
    contending streams."""
    rng = np.random.default_rng(12)
    a = rng.integers(0, 900, 4000)
    b = rng.integers(400, 1300, 4000)
    for st in simulate_shared([a, b], PAPER_L1I, prefetch=True):
        assert isinstance(st, SharedCacheStats)
        assert st.prefetch_hits == st.prefetch_hits_self + st.prefetch_hits_cross


def test_self_prefetch_still_counted_as_self():
    """A solo thread consuming its own prefetches reports only self-help."""
    lines = np.tile(np.arange(0, 256), 4)
    st = simulate_shared([lines], PAPER_L1I, prefetch=True)[0]
    assert st.prefetch_hits > 0
    assert st.prefetch_hits_self == st.prefetch_hits
    assert st.prefetch_hits_cross == 0
