"""Vectorized footprint composition (repro.fleet.compose).

The load-bearing contract: the vectorized path answers **bit-identically**
to the scalar oracles ``shared_fill_time_scalar`` /
``shared_miss_ratios_scalar`` kept in :mod:`repro.locality.hotl` — exact
``==``, no tolerance — on arbitrary curve sets, unequal trace lengths,
and capacities around the no-contention boundary.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.compose import ComposedGroup, CurveSet
from repro.locality import (
    compose_curves,
    footprint_curve,
    shared_fill_time,
    shared_fill_time_scalar,
    shared_miss_ratios,
    shared_miss_ratios_scalar,
)


def random_curves(seed, k=None):
    rng = np.random.default_rng(seed)
    k = k if k is not None else int(rng.integers(2, 6))
    return [
        footprint_curve(
            rng.integers(0, int(rng.integers(4, 40)), size=int(rng.integers(8, 300)))
        )
        for _ in range(k)
    ]


def boundary_caps(curves, seed):
    rng = np.random.default_rng(seed)
    total_m = sum(c.m for c in curves)
    return np.concatenate(
        [
            rng.uniform(0.5, max(total_m * 1.2, 2.0), size=8),
            [float(total_m), total_m + 1e-10, total_m * 2.0],
        ]
    )


@pytest.mark.parametrize("seed", range(12))
def test_vectorized_matches_scalar_oracles_exactly(seed):
    """fill_times and miss_ratio_matrix == the scalar binary-search
    oracles, bit for bit, on randomized curve sets and capacities."""
    curves = random_curves(seed)
    caps = boundary_caps(curves, seed + 1000)
    group = CurveSet(curves).group(range(len(curves)))
    ws = group.fill_times(caps)
    grid = group.miss_ratio_matrix(caps)
    for ci, cap in enumerate(caps):
        assert int(ws[ci]) == shared_fill_time_scalar(curves, float(cap))
        ref = shared_miss_ratios_scalar(curves, float(cap))
        assert [float(x) for x in grid[:, ci]] == ref


@pytest.mark.parametrize("seed", range(6))
def test_module_level_shared_functions_match_scalar(seed):
    """The public shared_fill_time / shared_miss_ratios now route
    through compose_curves and must still equal their scalar twins."""
    curves = random_curves(seed)
    for cap in boundary_caps(curves, seed + 2000):
        cap = float(cap)
        assert shared_fill_time(curves, cap) == shared_fill_time_scalar(curves, cap)
        assert shared_miss_ratios(curves, cap) == shared_miss_ratios_scalar(
            curves, cap
        )


def test_unequal_trace_lengths_clamp():
    """A short program past its trace end contributes its whole footprint
    (constant m) and zero growth — the scalar convention, vectorized."""
    short = footprint_curve(np.array([1, 2, 3]))
    long = footprint_curve(np.tile(np.arange(20), 30))
    composed = compose_curves([short, long])
    assert composed.n == long.n
    assert composed.m == short.m + long.m
    # Beyond short.n the composed curve is long.fp + short.m exactly.
    w = short.n + 5
    assert float(composed(w)) == float(long(w)) + float(short.m)
    # Shared fill time past the short trace: short's ratio is 0.0.
    cap = float(short.m + long.m) * 0.9
    w_star = shared_fill_time([short, long], cap)
    if w_star > short.n:
        assert shared_miss_ratios([short, long], cap)[0] == 0.0


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.lists(st.integers(0, 9), min_size=2, max_size=60),
        min_size=2,
        max_size=4,
    ),
    st.floats(0.5, 40.0),
)
def test_composition_permutation_invariant(traces, cap):
    """Eq. 1's window is symmetric in the co-runners: any ordering of the
    curve list yields the same shared fill time, and each program's own
    ratio follows it around the permutation."""
    curves = [footprint_curve(np.array(t, dtype=np.int64)) for t in traces]
    w0 = shared_fill_time(curves, cap)
    r0 = shared_miss_ratios(curves, cap)
    for perm in itertools.permutations(range(len(curves))):
        permuted = [curves[i] for i in perm]
        assert shared_fill_time(permuted, cap) == w0
        got = shared_miss_ratios(permuted, cap)
        assert got == pytest.approx([r0[i] for i in perm], abs=1e-12)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.lists(st.integers(0, 9), min_size=2, max_size=60),
        min_size=2,
        max_size=4,
    ),
    st.floats(1.0, 40.0),
)
def test_shared_fill_time_bounded_by_solo(traces, cap):
    """Contention only shortens the window: peers add footprint, so the
    shared cache fills no later than any member's solo fill time.  (The
    stronger "co-run ratio >= solo ratio" claim needs a concave curve —
    growth non-increasing — which pathological traces can violate; the
    realistic-trace version lives in tests/locality/test_hotl.py.)"""
    curves = [footprint_curve(np.array(t, dtype=np.int64)) for t in traces]
    w_star = shared_fill_time(curves, cap)
    ratios = shared_miss_ratios(curves, cap)
    assert len(ratios) == len(curves)
    for c, r in zip(curves, ratios):
        assert 0.0 <= r <= 1.0 + 1e-12
        if cap <= c.m:  # above m the solo curve never fills (n + 1)
            assert w_star <= c.fill_time(cap)


def test_curve_set_cell_accounting():
    curves = random_curves(7, k=3)
    cs = CurveSet(curves)
    assert len(cs) == 3
    assert cs.cells == 0
    caps = np.array([4.0, 8.0, 16.0])
    grid = cs.group([0, 1]).miss_ratio_matrix(caps)
    assert grid.shape == (2, 3)
    assert cs.cells == 6
    cs.group([0, 1, 2]).miss_ratio_matrix(caps)
    assert cs.cells == 6 + 9


def test_group_with_duplicate_members():
    """Replicas of one model compose as independent co-runners."""
    c = footprint_curve(np.tile(np.arange(10), 20))
    grp = CurveSet([c]).group([0, 0])
    assert grp.composed.m == 2 * c.m
    cap = float(c.m)  # fits solo, thrashes with a twin
    assert grp.fill_time(cap) == shared_fill_time_scalar([c, c], cap)
    assert grp.miss_ratios(cap) == shared_miss_ratios_scalar([c, c], cap)


def test_validation_errors():
    c = footprint_curve(np.array([1, 2, 3]))
    with pytest.raises(ValueError):
        CurveSet([])
    with pytest.raises(ValueError):
        ComposedGroup(CurveSet([c]), [])
    grp = CurveSet([c]).group([0])
    for bad in (np.nan, np.inf, -np.inf, 0.0, -1.0):
        with pytest.raises(ValueError):
            grp.fill_times(np.array([4.0, bad]))
    with pytest.raises(ValueError):
        grp.fill_times(np.array([]))
