"""The ``python -m repro.fleet`` CLI and its bench gate."""

import json

import pytest

from repro.fleet.__main__ import _parity_gate, main

# The aware-beats-oblivious gate is a fleet-scale claim: tiny fleets can
# legitimately prefer segregating replicas, so the bench test runs the
# full 29-model suite at a small trace scale rather than a 2-program toy.
FULL_BENCH_ARGS = [
    "--scale", "0.02",
    "--matrix-capacities", "8",
    "--min-cells", "5000",
    "--max-curve-passes", "29",
    "--parity-trials", "3",
]


def test_parity_gate_clean():
    assert _parity_gate(seed=0, trials=5) == []


def test_parity_gate_catches_divergence(monkeypatch, capsys, tmp_path):
    """A corrupted scalar oracle must fail the bench before any fleet
    work runs (exit 1, divergences on stderr)."""
    import repro.locality.hotl as hotl

    monkeypatch.setattr(hotl, "shared_fill_time_scalar", lambda curves, cap: -1)
    rc = main(["bench", "--parity-trials", "2",
               "--out", str(tmp_path / "never.json")])
    assert rc == 1
    captured = capsys.readouterr()
    assert "parity FAILED" in captured.err
    assert not (tmp_path / "never.json").exists()


def test_run_subcommand_prints_comparison(capsys):
    rc = main([
        "run", "--programs", "syn-gcc,syn-mcf", "--instances", "4",
        "--sockets", "2", "--scale", "0.02", "--matrix-capacities", "2",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "fleet: 4 instances on 2 sockets" in out
    assert "pair matrix: 3 pairs x 2 capacities" in out
    for policy in ("round-robin", "random", "worst-fit", "score-aware"):
        assert policy in out


@pytest.mark.slow
def test_bench_gate_end_to_end(tmp_path, capsys):
    """The real fleet-bench gate at reduced trace scale: parity clean,
    cells/passes thresholds hold, aware beats oblivious, and the
    BENCH_fleet.json report carries the fleet + fleet_bench sections."""
    from repro.perf import BENCH_SCHEMA

    out = tmp_path / "BENCH_fleet.json"
    merge = tmp_path / "BENCH_perf.json"
    # A previous-version merge target must still be accepted (COMPAT).
    merge.write_text(json.dumps({"schema": "repro.perf/bench.v7", "keep": 1}))
    rc = main(["bench", *FULL_BENCH_ARGS, "--memo-dir", str(tmp_path / "memo"),
               "--out", str(out), "--bench", str(merge)])
    captured = capsys.readouterr()
    assert rc == 0, captured.err
    assert "fleet composition parity OK" in captured.out
    assert "fleet gate OK" in captured.out

    report = json.loads(out.read_text())
    assert report["schema"] == BENCH_SCHEMA
    fleet = report["fleet"]
    assert fleet["cells"] >= 5000
    assert fleet["curve_passes"] <= 29
    assert fleet["cells_per_curve"] > 1.0
    section = report["fleet_bench"]
    assert section["instances"] == 116
    assert section["sockets"] == 29
    assert section["models"] == 29
    assert section["aware_total_misses"] < section["oblivious_total_misses"]
    assert section["aware_policy"] in ("worst-fit", "score-aware")
    assert section["oblivious_policy"] in ("round-robin", "random")

    merged = json.loads(merge.read_text())
    assert merged["keep"] == 1  # existing report fields survive the merge
    assert merged["fleet_bench"] == section


def test_bench_threshold_failure(tmp_path, capsys):
    """An unreachable --min-cells fails the gate with a clear error."""
    rc = main([
        "bench", "--programs", "syn-gcc,syn-mcf", "--instances", "4",
        "--sockets", "2", "--scale", "0.02", "--matrix-capacities", "2",
        "--parity-trials", "1", "--min-cells", "10000000",
        "--max-curve-passes", "29",
    ])
    assert rc == 1
    assert "below required" in capsys.readouterr().err
