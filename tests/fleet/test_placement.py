"""Placement policies and scoring (repro.fleet.placement)."""

import numpy as np
import pytest

from repro.fleet.compose import CurveSet
from repro.fleet.placement import (
    AWARE_POLICIES,
    OBLIVIOUS_POLICIES,
    POLICIES,
    Instance,
    evaluate_placement,
    matched_pairs,
)
from repro.locality import footprint_curve
from repro.locality.hotl import shared_miss_ratios_scalar
from repro.machine.scheduler import best_pairing


def make_fleet(seed=3, n_models=4, replicas=3):
    rng = np.random.default_rng(seed)
    curves = [
        footprint_curve(
            rng.integers(0, int(rng.integers(6, 30)), size=int(rng.integers(40, 200)))
        )
        for _ in range(n_models)
    ]
    instances = [
        Instance(
            name=f"prog{m}",
            layout="baseline",
            curve_id=m,
            weight=float(curves[m].n),
        )
        for m in range(n_models)
        for _ in range(replicas)
    ]
    return CurveSet(curves), instances


def test_policy_registry_families():
    assert set(POLICIES) == set(OBLIVIOUS_POLICIES) | set(AWARE_POLICIES)
    assert not set(OBLIVIOUS_POLICIES) & set(AWARE_POLICIES)


@pytest.mark.parametrize("name", sorted(POLICIES))
def test_every_policy_is_a_partition(name):
    curve_set, instances = make_fleet()
    n_sockets = 5
    groups = POLICIES[name](
        instances, n_sockets, curve_set=curve_set, capacity=24.0, seed=1
    )
    assert len(groups) == n_sockets
    placed = sorted(i for g in groups for i in g)
    assert placed == list(range(len(instances)))


@pytest.mark.parametrize("name", sorted(POLICIES))
def test_policies_deterministic(name):
    curve_set, instances = make_fleet()
    kw = dict(curve_set=curve_set, capacity=24.0, seed=7)
    a = POLICIES[name](instances, 3, **kw)
    b = POLICIES[name](instances, 3, **kw)
    assert a == b


@pytest.mark.parametrize("name", sorted(AWARE_POLICIES))
def test_aware_policies_input_order_invariant(name):
    """The aware policies sort by (pressure, instance key), so permuting
    the instance list permutes only the indices: each socket holds the
    same multiset of (program, layout) keys."""
    curve_set, instances = make_fleet()
    perm = list(np.random.default_rng(11).permutation(len(instances)))
    shuffled = [instances[i] for i in perm]
    kw = dict(curve_set=curve_set, capacity=24.0, seed=0)
    base = POLICIES[name](instances, 4, **kw)
    moved = POLICIES[name](shuffled, 4, **kw)
    key_groups_a = sorted(sorted(instances[i].key for i in g) for g in base)
    key_groups_b = sorted(sorted(shuffled[i].key for i in g) for g in moved)
    assert key_groups_a == key_groups_b


def test_random_policy_seed_sensitivity():
    curve_set, instances = make_fleet(n_models=6, replicas=4)
    kw = dict(curve_set=curve_set, capacity=24.0)
    assert POLICIES["random"](instances, 4, seed=1, **kw) != POLICIES["random"](
        instances, 4, seed=2, **kw
    )


def test_evaluate_placement_matches_scalar_model():
    """The vectorized scorer equals a by-hand scalar computation using
    the shared_miss_ratios_scalar oracle and the timing model."""
    from repro.machine.timing import TimingParams

    curve_set, instances = make_fleet(n_models=3, replicas=2)
    capacity = 20.0
    groups = [[0, 3, 4], [1, 2], [5], []]
    placement = evaluate_placement(
        curve_set, instances, groups, capacity, policy="manual"
    )
    timing = TimingParams()
    total = 0.0
    makespan = 0.0
    for members in groups:
        if not members:
            continue
        curves = [curve_set.curves[instances[i].curve_id] for i in members]
        ratios = shared_miss_ratios_scalar(curves, capacity)
        socket = 0.0
        for i, r in zip(members, ratios):
            misses = r * instances[i].weight
            total += misses
            socket = max(
                socket,
                instances[i].weight * timing.base_cpi
                + misses * timing.icache_miss_penalty,
            )
        makespan = max(makespan, socket)
    assert placement.policy == "manual"
    assert placement.total_misses == total
    assert placement.makespan == makespan
    assert placement.groups == ((0, 3, 4), (1, 2), (5,), ())


def test_matched_pairs_agrees_with_best_pairing():
    """matched_pairs is a thin bridge: same optimum as calling
    best_pairing directly with the composed-miss cost."""
    curve_set, instances = make_fleet(n_models=3, replicas=2)
    capacity = 18.0

    def cost(a, b):
        grp = curve_set.group(
            [instances[int(a)].curve_id, instances[int(b)].curve_id]
        )
        ra, rb = grp.miss_ratios(capacity)
        return ra * instances[int(a)].weight + rb * instances[int(b)].weight

    items = [str(i) for i in range(len(instances))]
    direct = best_pairing(items, cost)
    bridged = matched_pairs(curve_set, instances, capacity, exact=True)
    assert bridged.cost == direct.cost
    assert bridged.pairs == direct.pairs
    greedy = matched_pairs(curve_set, instances, capacity, exact=False)
    assert greedy.cost >= bridged.cost - 1e-12


def test_score_aware_separates_bully_from_victims():
    """One thrashing bully plus sensitive victims: score-aware must not
    stack the bully with a victim while an empty socket exists."""
    bully = footprint_curve(np.tile(np.arange(50), 10))  # huge footprint
    victim = footprint_curve(np.tile(np.arange(8), 40))  # fits, sensitive
    curve_set = CurveSet([bully, victim])
    instances = [
        Instance(name="bully", layout="baseline", curve_id=0, weight=500.0),
        Instance(name="victim-a", layout="baseline", curve_id=1, weight=320.0),
        Instance(name="victim-b", layout="baseline", curve_id=1, weight=320.0),
    ]
    groups = POLICIES["score-aware"](
        instances, 2, curve_set=curve_set, capacity=16.0
    )
    bully_socket = next(s for s, g in enumerate(groups) if 0 in g)
    assert groups[bully_socket] == [0]  # the bully runs alone
