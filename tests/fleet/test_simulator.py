"""End-to-end fleet runs (repro.fleet.simulator)."""

import math

import pytest

from repro.experiments.pipeline import Lab
from repro.fleet.simulator import FleetResult, run_fleet
from repro.perf import SimMemo

PROGRAMS = ["syn-gcc", "syn-mcf"]


@pytest.fixture(scope="module")
def small_result():
    lab = Lab(scale=0.02)
    result = run_fleet(
        lab,
        n_instances=8,
        n_sockets=4,
        programs=PROGRAMS,
        matrix_capacities=5,
    )
    return lab, result


def test_matrix_accounting(small_result):
    lab, result = small_result
    n_models = len(PROGRAMS)
    n_pairs = n_models * (n_models + 1) // 2
    assert result.matrix_pairs == n_pairs
    assert result.matrix_capacities == 5
    # Every pair cell is two members x the capacity sweep.
    assert result.matrix_cells == n_pairs * 5 * 2
    assert result.models == (("syn-gcc", "baseline"), ("syn-mcf", "baseline"))
    assert 0.0 <= result.mean_corun_ratio <= 1.0
    assert result.worst_pair_ratio >= result.mean_corun_ratio
    assert all(p for p in result.worst_pair)


def test_curve_counters_and_lab_telemetry(small_result):
    lab, result = small_result
    # One fresh curve pass per model, no memo dir -> no hits.
    assert result.curve_passes == len(PROGRAMS)
    assert result.curve_memo_hits == 0
    assert lab.counters["curve_passes"] == len(PROGRAMS)
    # fleet_cells includes the placement-scoring cells on top of the
    # matrix sweep, never fewer.
    assert lab.counters["fleet_cells"] >= result.matrix_cells
    assert lab.counters["fleet_seconds"] > 0.0
    assert result.seconds > 0.0


def test_placements_complete_and_gated(small_result):
    _, result = small_result
    assert set(result.placements) == {
        "round-robin",
        "random",
        "worst-fit",
        "score-aware",
    }
    for placement in result.placements.values():
        placed = sorted(i for g in placement.groups for i in g)
        assert placed == list(range(result.n_instances))
        assert placement.total_misses >= 0.0
        assert placement.makespan > 0.0
    # Both family bests resolve; the gate is their strict comparison.
    assert result.best_aware is not None
    assert result.best_oblivious is not None
    assert result.gate == (result.aware_total < result.oblivious_total)


def test_result_to_dict_round_trips(small_result):
    import json

    _, result = small_result
    raw = json.loads(json.dumps(result.to_dict()))
    assert raw["n_instances"] == result.n_instances
    assert raw["matrix"]["cells"] == result.matrix_cells
    assert raw["gate"] == result.gate
    assert set(raw["placements"]) == set(result.placements)
    assert raw["curve_passes"] == result.curve_passes


def test_persistent_memo_replays_curves(tmp_path):
    """A second lab over the same memo directory recomputes nothing:
    zero curve passes, one memo hit per model."""
    first = Lab(scale=0.02, memo=SimMemo(tmp_path))
    run_fleet(first, n_instances=4, n_sockets=2, programs=PROGRAMS,
              matrix_capacities=2)
    assert first.counters["curve_passes"] == len(PROGRAMS)

    second = Lab(scale=0.02, memo=SimMemo(tmp_path))
    result = run_fleet(second, n_instances=4, n_sockets=2, programs=PROGRAMS,
                       matrix_capacities=2)
    assert result.curve_passes == 0
    assert result.curve_memo_hits == len(PROGRAMS)
    assert second.counters["curve_passes"] == 0


def test_replicated_instances_share_curves(small_result):
    _, result = small_result
    # 8 instances of 2 models: replicas alternate round-robin.
    names = [m[0] for m in result.models]
    placement = result.placements["round-robin"]
    seen = sorted(i for g in placement.groups for i in g)
    assert len(seen) == 8
    assert len(names) == 2


def test_validation_errors():
    lab = Lab(scale=0.02)
    with pytest.raises(ValueError):
        run_fleet(lab, n_instances=0, n_sockets=1)
    with pytest.raises(ValueError):
        run_fleet(lab, n_instances=1, n_sockets=0)
    with pytest.raises(ValueError):
        run_fleet(lab, n_instances=1, n_sockets=1, matrix_capacities=0)
    with pytest.raises(ValueError):
        run_fleet(lab, n_instances=1, n_sockets=1, policies=["no-such-policy"])


def test_empty_family_totals_are_nan():
    result = FleetResult(n_instances=1, n_sockets=1, capacity=8.0, models=())
    assert result.best_aware is None
    assert result.best_oblivious is None
    assert math.isnan(result.aware_total)
    assert not result.gate
