"""Small-scale structural tests of every experiment driver.

These run the real drivers against a 5%-scale Lab: the point is shape
(row counts, N/A placement, summary keys, metric sanity), not the numbers
— full-scale numbers live in EXPERIMENTS.md.
"""

import pytest

from repro.experiments import Lab
from repro.experiments.runner import run_experiment
from repro.workloads import ALL_PROGRAMS, STUDY_PROGRAMS


@pytest.fixture(scope="module")
def lab():
    return Lab(scale=0.05, noise_sigma=0.0)


def test_intro_table(lab):
    result = run_experiment("intro-table", lab)
    assert len(result.rows) == 3
    assert result.summary["n_nontrivial_programs"] >= 1
    # co-run averages exceed the solo average.
    assert result.summary["avg_corun1"] > result.summary["avg_solo"]
    assert result.summary["avg_corun2"] > result.summary["avg_solo"]


def test_table1(lab):
    result = run_experiment("table1", lab)
    assert [r[0] for r in result.rows] == STUDY_PROGRAMS
    # mcf: tiny solo ratio, big inflation under probes.
    assert result.summary["syn-mcf/solo"] < 0.002
    assert result.summary["syn-mcf/corun_gcc"] > result.summary["syn-mcf/solo"]


def test_fig4(lab):
    result = run_experiment("fig4", lab)
    assert len(result.rows) == len(ALL_PROGRAMS) == 29
    # rows sorted by descending solo ratio.
    solos = [float(r[1].rstrip("%")) for r in result.rows]
    assert solos == sorted(solos, reverse=True)


def test_table2(lab):
    result = run_experiment("table2", lab)
    assert len(result.rows) == 8
    by_program = {r[0]: r for r in result.rows}
    # N/A columns for the two BB-unsupported programs.
    assert by_program["syn-perlbench"][4] == "N/A"
    assert by_program["syn-povray"][4] == "N/A"
    # every supported entry produced all three optimizers' stats.
    assert "syn-gcc/bb-affinity/speedup" in result.summary
    assert "syn-gcc/function-trg/sim_reduction" in result.summary


def test_fig6(lab):
    result = run_experiment("fig6", lab)
    # 3 optimizers x 8 targets.
    assert len(result.rows) == 24
    # probe columns: 8 probes + avg.
    assert len(result.headers) == 2 + 8 + 1


def test_fig7(lab):
    result = run_experiment("fig7", lab)
    assert result.summary["n_pairs"] == 28.0
    # baseline hyper-threading always helps.
    base = [v for k, v in result.summary.items() if k.endswith("base_throughput")]
    assert all(v > 0 for v in base)


def test_optopt(lab):
    result = run_experiment("optopt", lab)
    assert len(result.rows) == 6  # ordered pairs of the top 3
    assert "avg_extra_speedup" in result.summary


def test_ablation_trg_window(lab):
    result = run_experiment("ablation-trg-window", lab)
    assert "spread" in result.summary
    assert len(result.rows) == 6


def test_ablation_affinity_windows(lab):
    result = run_experiment("ablation-affinity-windows", lab)
    assert len(result.rows) == 7


def test_ablation_pruning(lab):
    result = run_experiment("ablation-pruning", lab)
    # keep ratio grows with the budget.
    ratios = [v for k, v in result.summary.items() if k.endswith("keep_ratio")]
    assert ratios == sorted(ratios)
    assert result.summary["k10000/keep_ratio"] == pytest.approx(1.0)


def test_comparators(lab):
    result = run_experiment("comparators", lab)
    assert len(result.rows) == 8
    assert "avg/bb-affinity" in result.summary
    assert "avg/function-coloring" in result.summary
    by_program = {r[0]: r for r in result.rows}
    assert by_program["syn-perlbench"][1] == "N/A"  # bb column


def test_unified(lab):
    result = run_experiment("unified", lab)
    # 4 programs x 3 layouts.
    assert len(result.rows) == 12
    # L1I miss ratio drops (or at worst holds) under function affinity.
    for name in ("syn-gcc", "syn-sjeng"):
        base = result.summary[f"{name}/baseline/l1i"]
        opt = result.summary[f"{name}/function-affinity/l1i"]
        assert opt <= base * 1.05


def test_model_validation(lab):
    result = run_experiment("model-validation", lab)
    assert len(result.rows) == 8
    s = result.summary
    # the footprint model must track the simulator's co-run ordering.
    assert s["corun_correlation"] > 0.0
    # co-run ratios exceed solo ratios in both channels on average.
    model_solo = [v for k, v in s.items() if k.endswith("model_solo")]
    model_corun = [v for k, v in s.items() if k.endswith("model_corun")]
    assert sum(model_corun) > sum(model_solo)


def test_smt_width(lab):
    result = run_experiment("smt-width", lab)
    assert len(result.rows) == 4
    s = result.summary
    # contention grows with width; optimizing all copies never hurts vs
    # optimizing one.
    assert s["w8/none"] >= s["w2/none"]
    for w in (2, 4, 8):
        assert s[f"w{w}/all"] <= s[f"w{w}/one_sided"] * 1.05


def test_cache_sweep(lab):
    result = run_experiment("cache-sweep", lab)
    assert len(result.rows) == 16
    s = result.summary
    # bigger caches shrink the baseline solo miss ratio.
    assert s["128kb/syn-gcc/solo_base"] <= s["16kb/syn-gcc/solo_base"]


def test_scheduling(lab):
    result = run_experiment("scheduling", lab)
    s = result.summary
    assert s["base_best_cost"] <= s["base_greedy_cost"] + 1e-9
    assert s["base_best_cost"] <= s["base_worst_cost"]
    assert len(result.rows) == 4


def test_fleet(lab):
    result = run_experiment("fleet", lab)
    s = result.summary
    assert result.exp_id == "fleet"
    assert len(result.rows) == 4  # one row per placement policy
    assert {r[1] for r in result.rows} == {"aware", "oblivious"}
    assert s["models"] == len(ALL_PROGRAMS)
    assert s["instances"] == 4 * len(ALL_PROGRAMS)
    # The reuse claim: one curve pass (or memo hit) per model, hundreds
    # of matrix cells derived from them.
    assert s["curve_passes"] + s["curve_memo_hits"] >= len(ALL_PROGRAMS)
    assert s["matrix_cells"] > 10 * s["models"]
    # Full-suite fleets are where aware placement pays off.
    assert s["aware_beats_oblivious"]
    assert s["aware_total_misses"] < s["oblivious_total_misses"]
    # Greedy aware placement can't beat the certified optimum.
    assert s["greedy_vs_exact_gap"] >= -1e-9
    assert 0.0 <= s["mean_corun_ratio"] <= 1.0
