"""Unit tests for the experiment Lab (repro.experiments.pipeline).

These run at a very small scale so the whole file stays in seconds.
"""

import numpy as np
import pytest

from repro.experiments import BASELINE, Lab

SCALE = 0.05


@pytest.fixture(scope="module")
def lab():
    return Lab(scale=SCALE, noise_sigma=0.0)


def test_scale_validation():
    with pytest.raises(ValueError):
        Lab(scale=0.0)
    with pytest.raises(ValueError):
        Lab(scale=1.5)


def test_program_memoized(lab):
    p1 = lab.program("syn-mcf")
    p2 = lab.program("syn-mcf")
    assert p1 is p2
    assert p1.prog.name == "syn-mcf"
    assert p1.instr_count > 0


def test_scale_shrinks_budgets(lab):
    p = lab.program("syn-mcf")
    from repro.workloads import SUITE

    assert p.ref_bundle.n_dynamic_blocks <= SUITE["syn-mcf"].spec.ref_blocks * SCALE + 1


def test_layout_memoized_and_kinds(lab):
    base = lab.layout("syn-mcf", BASELINE)
    assert base is lab.layout("syn-mcf", BASELINE)
    opt = lab.layout("syn-mcf", "function-affinity")
    assert opt.kind.value == "function-reorder"


def test_supports_reflects_suite_metadata(lab):
    assert not lab.supports("syn-perlbench", "bb-affinity")
    assert not lab.supports("syn-povray", "bb-trg")
    assert lab.supports("syn-perlbench", "function-affinity")
    assert lab.supports("syn-gcc", "bb-affinity")


def test_lines_cached_and_int32(lab):
    lines = lab.lines("syn-mcf", BASELINE)
    assert lines.dtype == np.int32
    assert lines is lab.lines("syn-mcf", BASELINE)


def test_solo_miss_channels(lab):
    sim = lab.solo_miss("syn-mcf", BASELINE, channel="sim")
    hw = lab.solo_miss("syn-mcf", BASELINE, channel="hw")
    assert sim.instructions == hw.instructions
    assert sim.ratio >= 0
    with pytest.raises(ValueError):
        lab.solo_miss("syn-mcf", BASELINE, channel="bogus")


def test_corun_symmetric_cache(lab):
    a = ("syn-mcf", BASELINE)
    b = ("syn-sjeng", BASELINE)
    r1 = lab.corun_miss(a, b)
    r2 = lab.corun_miss(b, a)
    assert r1[0] == r2[1]
    assert r1[1] == r2[0]


def test_corun_contention_visible(lab):
    solo = lab.solo_miss("syn-mcf", BASELINE, channel="sim").ratio
    corun = lab.corun_miss(
        ("syn-mcf", BASELINE), ("syn-gamess", BASELINE), channel="sim"
    )[0].ratio
    assert corun > solo


def test_corun_speedup_sane(lab):
    s = lab.corun_speedup("syn-mcf", "function-affinity", "syn-sjeng")
    assert 0.8 < s < 1.3


def test_timing_pieces(lab):
    cost = lab.solo_cost("syn-mcf", BASELINE)
    assert cost.total_cycles > cost.compute_cycles
    timing = lab.corun_timing(("syn-mcf", BASELINE), ("syn-sjeng", BASELINE))
    assert timing.makespan <= timing.solo_cycles[0] + timing.solo_cycles[1]
    assert timing.corun_slowdown(0) >= 1.0
