"""Unit tests for the experiment Lab (repro.experiments.pipeline).

These run at a very small scale so the whole file stays in seconds.
"""

import numpy as np
import pytest

from repro.experiments import BASELINE, Lab

SCALE = 0.05


@pytest.fixture(scope="module")
def lab():
    return Lab(scale=SCALE, noise_sigma=0.0)


def test_scale_validation():
    with pytest.raises(ValueError):
        Lab(scale=0.0)
    with pytest.raises(ValueError):
        Lab(scale=1.5)


def test_program_memoized(lab):
    p1 = lab.program("syn-mcf")
    p2 = lab.program("syn-mcf")
    assert p1 is p2
    assert p1.prog.name == "syn-mcf"
    assert p1.instr_count > 0


def test_scale_shrinks_budgets(lab):
    p = lab.program("syn-mcf")
    from repro.workloads import SUITE

    assert p.ref_bundle.n_dynamic_blocks <= SUITE["syn-mcf"].spec.ref_blocks * SCALE + 1


def test_layout_memoized_and_kinds(lab):
    base = lab.layout("syn-mcf", BASELINE)
    assert base is lab.layout("syn-mcf", BASELINE)
    opt = lab.layout("syn-mcf", "function-affinity")
    assert opt.kind.value == "function-reorder"


def test_supports_reflects_suite_metadata(lab):
    assert not lab.supports("syn-perlbench", "bb-affinity")
    assert not lab.supports("syn-povray", "bb-trg")
    assert lab.supports("syn-perlbench", "function-affinity")
    assert lab.supports("syn-gcc", "bb-affinity")


def test_lines_cached_and_int32(lab):
    lines = lab.lines("syn-mcf", BASELINE)
    assert lines.dtype == np.int32
    assert lines is lab.lines("syn-mcf", BASELINE)


def test_solo_miss_channels(lab):
    sim = lab.solo_miss("syn-mcf", BASELINE, channel="sim")
    hw = lab.solo_miss("syn-mcf", BASELINE, channel="hw")
    assert sim.instructions == hw.instructions
    assert sim.ratio >= 0
    with pytest.raises(ValueError):
        lab.solo_miss("syn-mcf", BASELINE, channel="bogus")


def test_corun_symmetric_cache(lab):
    a = ("syn-mcf", BASELINE)
    b = ("syn-sjeng", BASELINE)
    r1 = lab.corun_miss(a, b)
    r2 = lab.corun_miss(b, a)
    assert r1[0] == r2[1]
    assert r1[1] == r2[0]


def test_corun_contention_visible(lab):
    solo = lab.solo_miss("syn-mcf", BASELINE, channel="sim").ratio
    corun = lab.corun_miss(
        ("syn-mcf", BASELINE), ("syn-gamess", BASELINE), channel="sim"
    )[0].ratio
    assert corun > solo


def test_corun_speedup_sane(lab):
    s = lab.corun_speedup("syn-mcf", "function-affinity", "syn-sjeng")
    assert 0.8 < s < 1.3


def test_timing_pieces(lab):
    cost = lab.solo_cost("syn-mcf", BASELINE)
    assert cost.total_cycles > cost.compute_cycles
    timing = lab.corun_timing(("syn-mcf", BASELINE), ("syn-sjeng", BASELINE))
    assert timing.makespan <= timing.solo_cycles[0] + timing.solo_cycles[1]
    assert timing.corun_slowdown(0) >= 1.0


class TestKernelRouting:
    """The sim channel rides the stack-distance kernel by default and
    must be bit-identical to the scalar oracle (use_kernel=False)."""

    CELLS = [
        (name, layout, channel)
        for name in ("syn-mcf", "syn-sjeng")
        for layout in (BASELINE, "function-affinity")
        for channel in ("sim", "hw")
    ]

    def test_solo_miss_parity_with_scalar_oracle(self):
        fast = Lab(scale=SCALE, noise_sigma=0.0)
        oracle = Lab(scale=SCALE, noise_sigma=0.0, use_kernel=False)
        for cell in self.CELLS:
            assert fast.solo_miss(*cell) == oracle.solo_miss(*cell), cell
        assert fast.counters["kernel_cells"] > 0
        assert fast.counters["kernel_passes"] > 0
        assert oracle.counters["kernel_cells"] == 0

    def test_precompute_solo_kernel_fanout_parity(self):
        from repro.perf import SimMemo

        batched = Lab(scale=SCALE, noise_sigma=0.0, memo=SimMemo())
        batched.precompute_solo(self.CELLS, jobs=2)
        lazy = Lab(scale=SCALE, noise_sigma=0.0, use_kernel=False)
        for cell in self.CELLS:
            assert batched.solo_miss(*cell) == lazy.solo_miss(*cell), cell
        # The second precompute replays histograms from the memo.
        again = Lab(scale=SCALE, noise_sigma=0.0, memo=batched.memo)
        again.precompute_solo(self.CELLS, jobs=2)
        assert again.counters["kernel_passes"] == 0
        assert again.counters["kernel_cells"] > 0

    def test_histogram_shared_across_assoc_family(self):
        lab = Lab(scale=SCALE, noise_sigma=0.0)
        h4 = lab.histogram("syn-mcf", BASELINE)
        assert lab.histogram("syn-mcf", BASELINE) is h4
        assert lab.counters["kernel_passes"] == 1
        # One histogram answers other associativities of the family.
        assert h4.misses(1) >= h4.misses(8)

    def test_spawn_config_carries_use_kernel(self):
        assert Lab(scale=SCALE).spawn_config()["use_kernel"] is True
        assert Lab(scale=SCALE, use_kernel=False).spawn_config()["use_kernel"] is False

    def test_hw_channel_never_uses_kernel(self):
        lab = Lab(scale=SCALE, noise_sigma=0.0)
        lab.solo_miss("syn-mcf", BASELINE, channel="hw")
        assert lab.counters["kernel_cells"] == 0
        assert lab.counters["sim_accesses"] > 0


class TestAnalysisRouting:
    """Locality-model kernel routing: bit-identical layouts, counter
    accounting, and the batch precompute path."""

    LAYOUTS = ("function-affinity", "function-trg", "bb-affinity", "bb-trg")

    @staticmethod
    def _same_layout(a, b):
        am, bm = a.address_map, b.address_map
        return (
            am.order == bm.order
            and np.array_equal(am.starts, bm.starts)
            and np.array_equal(am.sizes, bm.sizes)
            and am.added_jumps == bm.added_jumps
        )

    def test_layout_parity_fast_vs_scalar(self):
        fast = Lab(scale=SCALE, noise_sigma=0.0)
        scalar = Lab(scale=SCALE, noise_sigma=0.0, use_fast_analysis=False)
        for layout_name in self.LAYOUTS:
            assert self._same_layout(
                fast.layout("syn-mcf", layout_name),
                scalar.layout("syn-mcf", layout_name),
            ), layout_name
        assert fast.counters["analysis_cells"] == len(self.LAYOUTS)
        assert fast.counters["analysis_passes"] == len(self.LAYOUTS)
        assert fast.counters["analysis_accesses"] > 0
        # The scalar path runs the original oracles: no kernel counters.
        assert scalar.counters["analysis_cells"] == 0

    def test_lab_optimize_inherits_fast_analysis_override(self):
        from repro.core.optimizers import Model, OptimizerConfig
        from repro.core.layout import Granularity

        cfg = OptimizerConfig(w_max=8)
        fast = Lab(scale=SCALE, noise_sigma=0.0)
        scalar = Lab(scale=SCALE, noise_sigma=0.0, use_fast_analysis=False)
        a = fast.optimize("syn-mcf", Granularity.FUNCTION, Model.AFFINITY, cfg)
        b = scalar.optimize("syn-mcf", Granularity.FUNCTION, Model.AFFINITY, cfg)
        assert self._same_layout(a, b)
        assert fast.counters["analysis_cells"] == 1
        assert scalar.counters["analysis_cells"] == 0

    def test_repeated_layout_config_hits_analysis_memo(self):
        """Two optimizers sharing one analysis (same trace + params)
        compute it once and replay it the second time."""
        from repro.core.optimizers import Model, OptimizerConfig
        from repro.core.layout import Granularity

        lab = Lab(scale=SCALE, noise_sigma=0.0)
        cfg = OptimizerConfig(w_max=8)
        lab.optimize("syn-mcf", Granularity.FUNCTION, Model.AFFINITY, cfg)
        assert lab.counters["analysis_memo_hits"] == 0
        lab.optimize("syn-mcf", Granularity.FUNCTION, Model.AFFINITY, cfg)
        assert lab.counters["analysis_memo_hits"] == 1
        assert lab.counters["analysis_passes"] == 1  # only the first ran

    def test_precompute_layouts_parity_and_memo(self, tmp_path):
        from repro.perf import SimMemo

        cells = [("syn-mcf", layout_name) for layout_name in self.LAYOUTS]
        batched = Lab(
            scale=SCALE, noise_sigma=0.0, memo=SimMemo(tmp_path / "memo")
        )
        batched.precompute_layouts(cells, jobs=2)
        assert batched.counters["analysis_passes"] == len(self.LAYOUTS)
        lazy = Lab(scale=SCALE, noise_sigma=0.0, use_fast_analysis=False)
        for cell in cells:
            assert self._same_layout(
                batched.layout(*cell), lazy.layout(*cell)
            ), cell
        # Consumption replayed every batch-built artifact from the memo.
        assert batched.counters["analysis_memo_hits"] == len(self.LAYOUTS)
        # A fresh lab on the same memo dir replays without any pass.
        again = Lab(
            scale=SCALE, noise_sigma=0.0, memo=SimMemo(tmp_path / "memo")
        )
        again.precompute_layouts(cells, jobs=2)
        assert again.counters["analysis_passes"] == 0
        assert again.counters["analysis_memo_hits"] == len(self.LAYOUTS)

    def test_precompute_layouts_serial_and_scalar_fallbacks(self):
        """jobs=1 or the scalar path must still build every layout."""
        serial = Lab(scale=SCALE, noise_sigma=0.0)
        serial.precompute_layouts([("syn-mcf", "function-trg")], jobs=1)
        scalar = Lab(scale=SCALE, noise_sigma=0.0, use_fast_analysis=False)
        scalar.precompute_layouts(
            [("syn-mcf", "function-trg"), ("syn-mcf", "bb-trg")], jobs=2
        )
        assert self._same_layout(
            serial.layout("syn-mcf", "function-trg"),
            scalar.layout("syn-mcf", "function-trg"),
        )

    def test_spawn_config_carries_use_fast_analysis(self):
        cfg = Lab(scale=SCALE, use_fast_analysis=False).spawn_config()
        assert cfg["optimizer_config"].use_fast_analysis is False
        cfg = Lab(scale=SCALE).spawn_config()
        assert cfg["optimizer_config"].use_fast_analysis is True
