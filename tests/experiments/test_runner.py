"""Unit tests for the experiment registry and self-contained drivers."""

import pytest

from repro.experiments import Lab
from repro.experiments.runner import EXPERIMENTS, run_experiment


def test_registry_covers_every_paper_artifact():
    expected = {
        "intro-table",
        "table1",
        "fig4",
        "fig5",
        "table2",
        "fig6",
        "fig7",
        "optopt",
        "comparators",
        "unified",
        "model-validation",
        "smt-width",
        "cache-sweep",
        "scheduling",
        "ablation-trg-window",
        "ablation-affinity-windows",
        "ablation-pruning",
        "ablation-optimal-gap",
        "ablation-seeds",
        "staticlint-certify",
        "fleet",
    }
    assert set(EXPERIMENTS) == expected


def test_unknown_experiment_rejected():
    with pytest.raises(KeyError, match="unknown experiment"):
        run_experiment("fig99", Lab(scale=0.05))


def test_optimal_gap_is_self_contained():
    result = run_experiment("ablation-optimal-gap", Lab(scale=0.05))
    assert result.exp_id == "ablation-optimal-gap"
    s = result.summary
    # heuristics can't beat the exhaustive optimum.
    assert s["affinity"] >= s["optimal"]
    assert s["trg"] >= s["optimal"]
    assert s["worst"] >= s["optimal"]


def test_fig5_structure_small_scale():
    lab = Lab(scale=0.05, noise_sigma=0.0)
    result = run_experiment("fig5", lab)
    assert result.exp_id == "fig5"
    assert len(result.rows) == 8
    # perlbench/povray report N/A for BB reordering.
    by_program = {r[0]: r for r in result.rows}
    assert by_program["syn-perlbench"][3] == "N/A"
    assert by_program["syn-povray"][3] == "N/A"
    assert by_program["syn-gcc"][3] != "N/A"


def test_main_cli_runs_one_experiment(capsys):
    from repro.experiments.runner import main

    rc = main(["--scale", "0.05", "--only", "ablation-optimal-gap"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "ablation-optimal-gap" in out
    assert "optimal" in out


def test_main_rejects_unknown_experiment(capsys):
    """A bad --only id exits 2 with the known-ids message, no traceback."""
    from repro.experiments.runner import main

    rc = main(["--scale", "0.05", "--only", "fig99"])
    assert rc == 2
    err = capsys.readouterr().err
    assert "unknown experiment id(s): fig99" in err
    assert "known ids:" in err
    assert "ablation-seeds" in err


def test_main_rejects_out_of_range_scale(capsys):
    from repro.experiments.runner import main

    for bad in ("0", "1.5", "-0.1", "banana"):
        with pytest.raises(SystemExit) as exc:
            main(["--scale", bad, "--only", "ablation-optimal-gap"])
        assert exc.value.code == 2
    assert "scale must be" in capsys.readouterr().err


def test_run_all_with_subset():
    from repro.experiments.runner import run_all

    lab = Lab(scale=0.05)
    results = run_all(lab, only=["ablation-optimal-gap"])
    assert len(results) == 1
    assert results[0].exp_id == "ablation-optimal-gap"
