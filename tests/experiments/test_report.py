"""Unit tests for reporting utilities (repro.experiments.report)."""

from repro.experiments import ExperimentResult, format_table, pct, ratio


def test_pct_formatting():
    assert pct(0.0722) == "+7.22%"
    assert pct(-0.0113) == "-1.13%"
    assert pct(0.015, signed=False) == "1.50%"
    assert pct(0.5, digits=0) == "+50%"


def test_ratio_formatting():
    assert ratio(1.23456) == "1.2346"
    assert ratio(2.0, digits=1) == "2.0"


def test_format_table_alignment():
    text = format_table(["a", "bbbb"], [["x", "1"], ["yy", "22"]])
    lines = text.splitlines()
    assert lines[0].startswith("a")
    assert set(lines[1]) <= {"-", " "}
    assert len(lines) == 4
    # columns aligned: 'bbbb' starts at the same offset in every row.
    offset = lines[0].index("bbbb")
    assert lines[2][offset] == "1"


def test_experiment_result_to_text():
    result = ExperimentResult(
        exp_id="x1",
        title="demo",
        headers=["col"],
        rows=[["v"]],
        summary={"metric": 0.5},
        notes=["hello"],
    )
    text = result.to_text()
    assert "== x1: demo ==" in text
    assert "metric = 0.5000" in text
    assert "note: hello" in text


def test_experiment_result_minimal():
    result = ExperimentResult(exp_id="y", title="t")
    assert "== y: t ==" in result.to_text()


def test_ascii_bars_alignment_and_negatives():
    from repro.experiments import ExperimentResult
    from repro.experiments.report import ascii_bars

    chart = ascii_bars([("up", 0.2), ("down", -0.1)], width=20)
    lines = chart.splitlines()
    assert len(lines) == 2
    # shared zero axis: the '|' column is identical across rows.
    assert lines[0].index("|") == lines[1].index("|")
    # positive bars extend right of the axis, negative bars end at it.
    assert lines[0].split("|")[1].lstrip().startswith("#")
    assert lines[1].split("|")[0].rstrip().endswith("#")


def test_ascii_bars_empty():
    from repro.experiments.report import ascii_bars

    assert ascii_bars([]) == "(no data)"


def test_experiment_result_renders_charts():
    from repro.experiments import ExperimentResult
    from repro.experiments.report import ascii_bars

    result = ExperimentResult(
        "id", "title", charts=[("my chart", ascii_bars([("x", 1.0)], width=5))]
    )
    text = result.to_text()
    assert "-- my chart --" in text
    assert "#####" in text
