"""Unit and property tests for all-window footprint (repro.locality.footprint)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.locality import average_footprint, footprint_brute, footprint_curve

traces = st.lists(st.integers(0, 7), min_size=1, max_size=120).map(
    lambda xs: np.array(xs, dtype=np.int64)
)


def test_constant_trace():
    c = footprint_curve(np.zeros(10, dtype=np.int64))
    assert c.m == 1
    assert c(1) == 1.0
    assert c(10) == 1.0


def test_all_distinct_trace():
    c = footprint_curve(np.arange(6))
    # every window of length w contains w distinct symbols.
    for w in range(1, 7):
        assert c(w) == pytest.approx(w)


def test_curve_endpoints():
    t = np.array([1, 2, 1, 3])
    c = footprint_curve(t)
    assert c(0) == 0.0
    assert c(4) == 3.0  # m distinct symbols
    assert c.n == 4


@settings(max_examples=120, deadline=None)
@given(traces, st.data())
def test_formula_matches_brute_force(t, data):
    w = data.draw(st.integers(1, t.shape[0]))
    assert footprint_curve(t)(w) == pytest.approx(footprint_brute(t, w))
    assert average_footprint(t, w) == pytest.approx(footprint_brute(t, w))


@settings(max_examples=80, deadline=None)
@given(traces)
def test_curve_monotone_nondecreasing(t):
    c = footprint_curve(t)
    assert (np.diff(c.fp) >= -1e-9).all()
    assert c.fp[0] == 0.0
    assert c.fp[-1] == pytest.approx(c.m)


def test_fill_time_and_growth():
    t = np.array([1, 2, 3, 1, 2, 3, 1, 2, 3])
    c = footprint_curve(t)
    assert c.fill_time(1.0) == 1
    assert c.fill_time(3.0) <= c.n
    # capacity above total footprint is never filled.
    assert c.fill_time(10.0) == c.n + 1
    assert c.growth(c.n) == 0.0
    assert c.growth(1) == pytest.approx(float(c.fp[2] - c.fp[1]))


def test_brute_force_validates_input():
    t = np.array([1, 2])
    with pytest.raises(ValueError):
        footprint_brute(t, 0)
    with pytest.raises(ValueError):
        footprint_brute(t, 3)


def test_empty_trace():
    c = footprint_curve(np.empty(0, dtype=np.int64))
    assert c.n == 0
    assert c.m == 0
    assert c(0) == 0.0
