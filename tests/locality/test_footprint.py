"""Unit and property tests for all-window footprint (repro.locality.footprint)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.locality import average_footprint, footprint_brute, footprint_curve

traces = st.lists(st.integers(0, 7), min_size=1, max_size=120).map(
    lambda xs: np.array(xs, dtype=np.int64)
)


def test_constant_trace():
    c = footprint_curve(np.zeros(10, dtype=np.int64))
    assert c.m == 1
    assert c(1) == 1.0
    assert c(10) == 1.0


def test_all_distinct_trace():
    c = footprint_curve(np.arange(6))
    # every window of length w contains w distinct symbols.
    for w in range(1, 7):
        assert c(w) == pytest.approx(w)


def test_curve_endpoints():
    t = np.array([1, 2, 1, 3])
    c = footprint_curve(t)
    assert c(0) == 0.0
    assert c(4) == 3.0  # m distinct symbols
    assert c.n == 4


@settings(max_examples=120, deadline=None)
@given(traces, st.data())
def test_formula_matches_brute_force(t, data):
    w = data.draw(st.integers(1, t.shape[0]))
    assert footprint_curve(t)(w) == pytest.approx(footprint_brute(t, w))
    assert average_footprint(t, w) == pytest.approx(footprint_brute(t, w))


@settings(max_examples=80, deadline=None)
@given(traces)
def test_curve_monotone_nondecreasing(t):
    c = footprint_curve(t)
    assert (np.diff(c.fp) >= -1e-9).all()
    assert c.fp[0] == 0.0
    assert c.fp[-1] == pytest.approx(c.m)


def test_fill_time_and_growth():
    t = np.array([1, 2, 3, 1, 2, 3, 1, 2, 3])
    c = footprint_curve(t)
    assert c.fill_time(1.0) == 1
    assert c.fill_time(3.0) <= c.n
    # capacity above total footprint is never filled.
    assert c.fill_time(10.0) == c.n + 1
    assert c.growth(c.n) == 0.0
    assert c.growth(1) == pytest.approx(float(c.fp[2] - c.fp[1]))


def test_brute_force_validates_input():
    t = np.array([1, 2])
    with pytest.raises(ValueError):
        footprint_brute(t, 0)
    with pytest.raises(ValueError):
        footprint_brute(t, 3)


def test_empty_trace():
    c = footprint_curve(np.empty(0, dtype=np.int64))
    assert c.n == 0
    assert c.m == 0
    assert c(0) == 0.0


def test_numpy_scalar_input_returns_float():
    """The old ``np.isscalar`` check leaked 0-d ndarrays for NumPy
    scalar inputs it does not recognize (``np.isscalar(np.array(3))``
    is False, and NumPy integer scalars are version-dependent); the
    ``np.ndim(w) == 0`` discriminator must return a plain float for
    every scalar kind."""
    c = footprint_curve(np.array([1, 2, 3, 1, 2, 3]))
    for w in (3, np.int64(3), np.int32(3), np.array(3)):
        value = c(w)
        assert type(value) is float, type(value)
        assert value == pytest.approx(float(c.fp[3]))
    # Array inputs still vectorize.
    arr = c(np.array([1, 2, 3]))
    assert isinstance(arr, np.ndarray) and arr.shape == (3,)


def test_fill_time_capacity_boundary_tolerance():
    """fp[n] == m exactly, but float capacities drift: a hair above m
    must behave like m itself (pre-fix, the strict c > m comparison
    returned n + 1 for fill_time(m + 1e-9) while fill_time(float(m))
    found a valid window)."""
    c = footprint_curve(np.array([1, 2, 3, 1, 2, 3, 1, 2, 3]))
    at_m = c.fill_time(float(c.m))
    assert at_m <= c.n
    assert c.fill_time(c.m + 1e-9) == at_m
    assert c.fill_time(c.m * (1 + 1e-12)) == at_m
    # Meaningfully above m is still "never fills".
    assert c.fill_time(c.m * 1.01) == c.n + 1
    assert c.fill_time(c.m + 1.0) == c.n + 1


def test_fill_time_rejects_non_finite_capacity():
    """NaN compares False against c > m and fell straight into the
    searchsorted pre-fix; non-finite capacities must raise instead."""
    c = footprint_curve(np.array([1, 2, 3, 1, 2, 3]))
    for bad in (float("nan"), float("inf"), float("-inf")):
        with pytest.raises(ValueError):
            c.fill_time(bad)


def test_fill_time_nonpositive_capacity_is_zero():
    """Pinned: a capacity of zero (or below) is filled by the empty
    window — fill_time returns 0, it does not raise."""
    c = footprint_curve(np.array([1, 2, 3, 1, 2, 3]))
    assert c.fill_time(0.0) == 0
    assert c.fill_time(-1.0) == 0


def test_curve_dict_round_trip_bit_identical():
    """to_dict/from_dict is the curve-memo wire format: every fp value,
    n, and m must survive JSON exactly (float64 repr is shortest-exact,
    so the round trip preserves bits)."""
    import json

    from repro.locality.footprint import FootprintCurve

    rng = np.random.default_rng(23)
    t = rng.integers(0, 40, 500)
    c = footprint_curve(t)
    raw = json.loads(json.dumps(c.to_dict()))
    back = FootprintCurve.from_dict(raw)
    assert back.n == c.n
    assert back.m == c.m
    assert (back.fp == c.fp).all()  # exact, no tolerance
    assert back.fill_time(float(c.m) * 0.7) == c.fill_time(float(c.m) * 0.7)


def test_curve_from_dict_rejects_malformed():
    from repro.locality.footprint import FootprintCurve

    c = footprint_curve(np.array([1, 2, 3]))
    raw = c.to_dict()
    short = dict(raw, fp=raw["fp"][:-1])  # length no longer n + 1
    with pytest.raises(ValueError):
        FootprintCurve.from_dict(short)
    with pytest.raises((KeyError, TypeError, ValueError)):
        FootprintCurve.from_dict({"fp": raw["fp"]})
