"""Unit and property tests for window-footprint distributions
(repro.locality.windowstats)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.locality.footprint import footprint_brute, footprint_curve
from repro.locality.windowstats import (
    miss_probability,
    prob_sum_exceeds,
    window_footprint_distribution,
)

traces = st.lists(st.integers(0, 7), min_size=2, max_size=120).map(
    lambda xs: np.array(xs, dtype=np.int64)
)


def test_simple_distribution():
    # windows of length 2 over a b a b: all have 2 distinct symbols.
    d = window_footprint_distribution(np.array([1, 2, 1, 2]), 2)
    assert d.n_windows == 3
    assert d.pmf[2] == pytest.approx(1.0)
    assert d.mean == pytest.approx(2.0)
    assert d.max_footprint == 2


def test_mixed_distribution():
    # a a b: windows of 2 -> {a,a}=1 distinct, {a,b}=2 distinct.
    d = window_footprint_distribution(np.array([1, 1, 2]), 2)
    assert d.pmf[1] == pytest.approx(0.5)
    assert d.pmf[2] == pytest.approx(0.5)
    assert d.prob_at_least(2) == pytest.approx(0.5)
    assert d.prob_at_least(3) == 0.0
    assert d.prob_at_least(0) == pytest.approx(1.0)


def test_window_validation():
    with pytest.raises(ValueError):
        window_footprint_distribution(np.array([1, 2]), 0)
    with pytest.raises(ValueError):
        window_footprint_distribution(np.array([1, 2]), 3)


@settings(max_examples=80, deadline=None)
@given(traces, st.data())
def test_mean_matches_average_footprint(t, data):
    """The distribution's mean must equal the all-window average footprint
    — the two modules measure the same population."""
    w = data.draw(st.integers(1, t.shape[0]))
    d = window_footprint_distribution(t, w)
    assert d.mean == pytest.approx(footprint_brute(t, w))
    assert d.mean == pytest.approx(float(footprint_curve(t)(w)))


@settings(max_examples=60, deadline=None)
@given(traces, st.data())
def test_pmf_is_a_distribution(t, data):
    w = data.draw(st.integers(1, t.shape[0]))
    d = window_footprint_distribution(t, w)
    assert d.pmf.sum() == pytest.approx(1.0)
    assert (d.pmf >= 0).all()
    assert d.max_footprint <= min(w, len(set(t.tolist())))


def test_prob_sum_exceeds_convolution():
    # two fair coins over footprints {1, 2}: sum >= 4 with prob 1/4.
    d = window_footprint_distribution(np.array([1, 1, 2]), 2)  # 50/50 over 1,2
    assert prob_sum_exceeds(d, d, 4) == pytest.approx(0.25)
    assert prob_sum_exceeds(d, d, 2) == pytest.approx(1.0)
    assert prob_sum_exceeds(d, d, 5) == 0.0


def test_miss_probability_monotone_in_capacity():
    rng = np.random.default_rng(0)
    a = rng.integers(0, 30, 2000)
    b = rng.integers(100, 140, 2000)
    probs = [miss_probability(a, b, c, window=64) for c in (10, 30, 50, 80)]
    assert all(x >= y - 1e-12 for x, y in zip(probs, probs[1:]))
    assert 0.0 <= probs[-1] <= probs[0] <= 1.0


def test_miss_probability_rises_with_peer_pressure():
    rng = np.random.default_rng(1)
    me = rng.integers(0, 20, 2000)
    light_peer = rng.integers(100, 104, 2000)
    heavy_peer = rng.integers(100, 160, 2000)
    c = 40
    p_light = miss_probability(me, light_peer, c, window=64)
    p_heavy = miss_probability(me, heavy_peer, c, window=64)
    assert p_heavy >= p_light
