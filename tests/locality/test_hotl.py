"""Unit tests for HOTL conversions (repro.locality.hotl)."""

import numpy as np
import pytest

from repro.locality import (
    footprint_curve,
    miss_ratio,
    miss_ratio_curve,
    shared_fill_time,
    shared_miss_ratios,
)


def cyclic_trace(n_symbols, repeats):
    return np.tile(np.arange(n_symbols), repeats)


def test_fits_in_cache_no_misses():
    c = footprint_curve(cyclic_trace(4, 50))
    assert miss_ratio(c, 10) == 0.0


def test_thrashing_cycle_misses():
    # cycling 20 symbols in a 10-capacity LRU-like model: growth stays 1
    # until the cycle is covered.
    c = footprint_curve(cyclic_trace(20, 20))
    assert miss_ratio(c, 10) == pytest.approx(1.0, abs=0.05)


def test_miss_ratio_monotone_in_capacity():
    rng = np.random.default_rng(5)
    t = rng.integers(0, 50, 2000)
    c = footprint_curve(t)
    caps = [2, 4, 8, 16, 32, 64]
    curve = miss_ratio_curve(c, caps)
    assert (np.diff(curve) <= 1e-9).all()


def test_capacity_validation():
    c = footprint_curve(np.array([1, 2, 3]))
    with pytest.raises(ValueError):
        miss_ratio(c, 0)


def test_shared_fill_time_earlier_than_solo():
    a = footprint_curve(cyclic_trace(12, 30))
    b = footprint_curve(cyclic_trace(12, 30))
    shared = shared_fill_time([a, b], 10)
    solo = a.fill_time(10)
    assert shared <= solo


def test_shared_fill_time_no_contention():
    a = footprint_curve(cyclic_trace(2, 10))
    b = footprint_curve(cyclic_trace(2, 10))
    assert shared_fill_time([a, b], 100) == max(a.n, b.n) + 1
    assert shared_miss_ratios([a, b], 100) == [0.0, 0.0]


def test_corun_miss_at_least_solo():
    rng = np.random.default_rng(6)
    t1 = rng.integers(0, 40, 3000)
    t2 = rng.integers(0, 40, 3000)
    a, b = footprint_curve(t1), footprint_curve(t2)
    cap = 30.0
    solo = miss_ratio(a, cap)
    shared = shared_miss_ratios([a, b], cap)[0]
    assert shared >= solo - 1e-12


def test_shared_validation():
    a = footprint_curve(np.array([1, 2]))
    with pytest.raises(ValueError):
        shared_fill_time([], 4)
    with pytest.raises(ValueError):
        shared_fill_time([a], 0)


def test_shared_fill_time_capacity_boundary_tolerance():
    """shared_fill_time follows FootprintCurve.fill_time's boundary: a
    capacity within 1e-9 of the combined total footprint behaves like
    the total itself rather than flipping to max_n + 1."""
    a = footprint_curve(cyclic_trace(6, 20))
    b = footprint_curve(cyclic_trace(6, 20))
    total_m = a.m + b.m
    at_total = shared_fill_time([a, b], float(total_m))
    assert at_total <= max(a.n, b.n)
    assert shared_fill_time([a, b], total_m + 1e-9) == at_total
    # Meaningfully above the total stays "no contention".
    assert shared_fill_time([a, b], total_m * 1.01) == max(a.n, b.n) + 1


def test_compose_curves_properties():
    """compose_curves aligns unequal lengths: n = max, m = sum, short
    curves contribute their constant total footprint past their end."""
    from repro.locality import compose_curves

    a = footprint_curve(np.array([1, 2, 3]))
    b = footprint_curve(cyclic_trace(8, 10))
    composed = compose_curves([a, b])
    assert composed.n == max(a.n, b.n)
    assert composed.m == a.m + b.m
    for w in range(composed.n + 1):
        expect = float(a(min(w, a.n))) + float(b(min(w, b.n)))
        assert float(composed(w)) == expect
    # The aligned endpoint is the exact combined footprint.
    assert float(composed.fp[-1]) == float(a.m + b.m)
    with pytest.raises(ValueError):
        compose_curves([])


def test_shared_vectorized_matches_scalar_oracle():
    """The composed-curve fast path must answer exactly what the
    per-probe scalar oracle answers — same binary search, same sums."""
    from repro.locality import (
        shared_fill_time_scalar,
        shared_miss_ratios_scalar,
    )

    rng = np.random.default_rng(17)
    for _ in range(20):
        k = int(rng.integers(2, 5))
        curves = [
            footprint_curve(rng.integers(0, 30, int(rng.integers(5, 200))))
            for _ in range(k)
        ]
        total_m = sum(c.m for c in curves)
        for cap in (*rng.uniform(0.5, total_m * 1.2, size=4),
                    float(total_m), total_m + 1e-10):
            cap = float(cap)
            assert shared_fill_time(curves, cap) == shared_fill_time_scalar(
                curves, cap
            )
            assert shared_miss_ratios(curves, cap) == shared_miss_ratios_scalar(
                curves, cap
            )


def test_shared_fill_time_rejects_non_finite_capacity():
    """NaN compares False against every threshold, so pre-fix a NaN
    capacity silently fell through to the binary search; both paths must
    raise instead."""
    from repro.locality import shared_fill_time_scalar

    a = footprint_curve(cyclic_trace(4, 10))
    for bad in (float("nan"), float("inf"), float("-inf")):
        with pytest.raises(ValueError):
            shared_fill_time([a, a], bad)
        with pytest.raises(ValueError):
            shared_fill_time_scalar([a, a], bad)
