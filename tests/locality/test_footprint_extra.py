"""Additional footprint properties: cross-model consistency checks.

These tie the locality-theory pieces to each other: the footprint curve,
reuse distances, and the cache simulator must agree on the structural
facts they share.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import CacheConfig, simulate
from repro.locality import (
    COLD,
    footprint_curve,
    lru_miss_ratio_curve,
    miss_ratio,
    reuse_distances,
)

traces = st.lists(st.integers(0, 9), min_size=2, max_size=150).map(
    lambda xs: np.array(xs, dtype=np.int64)
)


@settings(max_examples=60, deadline=None)
@given(traces)
def test_footprint_bounded_by_window_and_alphabet(t):
    c = footprint_curve(t)
    for w in (1, 2, 3, len(t)):
        assert c(w) <= min(w, c.m) + 1e-9


@settings(max_examples=60, deadline=None)
@given(traces)
def test_fill_time_inverse_of_curve(t):
    c = footprint_curve(t)
    for cap in (1.0, 1.5, 2.0, float(c.m)):
        w = c.fill_time(cap)
        if w <= c.n:
            assert c(w) >= cap - 1e-9
            if w > 0:
                assert c(w - 1) < cap


@settings(max_examples=40, deadline=None)
@given(traces)
def test_hotl_prediction_is_a_probability_and_vanishes_when_fitting(t):
    """The HOTL miss prediction is a valid probability and zero once the
    program's total footprint fits the capacity.  (Pointwise monotonicity
    in capacity is NOT a theorem — the footprint curve need not be concave
    on arbitrary traces, so the growth rate can wiggle; see
    repro.locality.footprint's docstring.)"""
    c = footprint_curve(t)
    for cap in (1, 2, 4, 8, c.m + 1):
        hotl = miss_ratio(c, cap)
        assert 0.0 <= hotl <= 1.0
    assert miss_ratio(c, c.m + 1) == 0.0


@settings(max_examples=30, deadline=None)
@given(traces)
def test_fully_associative_simulator_vs_reuse_distance(t):
    """Structural agreement between the event simulator and the theory:
    in a fully-associative LRU cache of capacity k, misses == cold
    accesses + accesses with reuse distance > k."""
    cfg = CacheConfig(size_bytes=8 * 64, assoc=8, line_bytes=64)
    lines = t % 64  # all map into existing tag space
    stats = simulate(lines, cfg)
    d = reuse_distances(lines)
    expected = int(((d == COLD) | (d > 8)).sum())
    assert stats.misses == expected


def test_footprint_of_two_interleaved_programs_superadditive():
    """fp_{A interleaved B}(w) <= fp_A(w/2) + fp_B(w/2) + boundary slack —
    the intuition behind Eq. 2's composition; checked on a concrete pair."""
    rng = np.random.default_rng(0)
    a = rng.integers(0, 20, 2000)
    b = rng.integers(100, 120, 2000)
    inter = np.empty(4000, dtype=np.int64)
    inter[0::2] = a
    inter[1::2] = b
    ci = footprint_curve(inter)
    ca, cb = footprint_curve(a), footprint_curve(b)
    for w in (10, 50, 200):
        combined = ca(w // 2) + cb(w // 2)
        assert ci(w) <= combined + 2.0
        # and interleaving cannot shrink footprints below either part.
        assert ci(w) >= max(ca(w // 2), cb(w // 2)) - 1e-9
