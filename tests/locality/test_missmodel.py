"""Unit tests for the formal benefit classification (repro.locality.missmodel)."""

import numpy as np

from repro.locality import classify_benefits, corun_miss_ratios, footprint_curve


def cyclic(n_symbols, repeats, stride=1):
    return np.tile(np.arange(0, n_symbols * stride, stride), repeats)


def test_smaller_footprint_is_defensive_and_polite():
    # "before": program cycles 30 blocks; "after": optimization shrank the
    # footprint to 18 blocks; the peer cycles 20.
    before = footprint_curve(cyclic(30, 40))
    after = footprint_curve(cyclic(18, 40))
    peer = footprint_curve(cyclic(20, 40))
    cap = 40.0
    report = classify_benefits(before, after, peer, cap)
    assert report.locality >= 0.0
    assert report.defensiveness > 0.0
    assert report.politeness >= 0.0
    # the raw ratios back the deltas.
    assert report.defensiveness == (
        report.self_corun_before - report.self_corun_after
    )


def test_identical_layouts_no_benefit():
    c = footprint_curve(cyclic(25, 30))
    peer = footprint_curve(cyclic(10, 30))
    report = classify_benefits(c, c, peer, 30.0)
    assert report.locality == 0.0
    assert report.defensiveness == 0.0
    assert report.politeness == 0.0


def test_corun_miss_ratios_symmetric_roles():
    a = footprint_curve(cyclic(22, 30))
    b = footprint_curve(cyclic(14, 30))
    cap = 30.0
    self_mr, peer_mr = corun_miss_ratios(a, b, cap)
    peer_mr2, self_mr2 = corun_miss_ratios(b, a, cap)
    assert self_mr == self_mr2
    assert peer_mr == peer_mr2


def test_defensiveness_without_locality():
    # Both layouts fit solo (no locality benefit at cap), but the smaller
    # footprint saturates below the shared fill point and so stops missing
    # under co-run pressure: the paper's headline case.
    before = footprint_curve(cyclic(24, 40))
    after = footprint_curve(cyclic(14, 40))
    peer = footprint_curve(cyclic(24, 40))
    cap = 30.0
    report = classify_benefits(before, after, peer, cap)
    assert report.locality == 0.0  # both fit solo
    assert report.defensiveness > 0.0
