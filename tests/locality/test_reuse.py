"""Unit and property tests for reuse distance (repro.locality.reuse)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.locality import (
    COLD,
    distance_histogram,
    lru_miss_ratio_curve,
    reuse_distances,
    reuse_distances_naive,
)

traces = st.lists(st.integers(0, 8), min_size=0, max_size=250).map(
    lambda xs: np.array(xs, dtype=np.int64)
)


def test_simple_example():
    # a b a: a's second access sees {b, a} -> distance 2.
    d = reuse_distances(np.array([1, 2, 1]))
    assert d.tolist() == [COLD, COLD, 2]


def test_immediate_repeat_distance_one():
    d = reuse_distances(np.array([7, 7, 7]))
    assert d.tolist() == [COLD, 1, 1]


def test_all_distinct_all_cold():
    d = reuse_distances(np.arange(10))
    assert (d == COLD).all()


@settings(max_examples=100, deadline=None)
@given(traces)
def test_fenwick_matches_naive(t):
    assert np.array_equal(reuse_distances(t), reuse_distances_naive(t))


def test_histogram_counts():
    d = reuse_distances(np.array([1, 2, 1, 2, 1]))
    hist, cold = distance_histogram(d)
    assert cold == 2
    assert hist[2] == 3


def test_miss_ratio_curve_monotone_nonincreasing():
    rng = np.random.default_rng(3)
    t = rng.integers(0, 30, 500)
    d = reuse_distances(t)
    caps = np.array([1, 2, 4, 8, 16, 32, 64])
    curve = lru_miss_ratio_curve(d, caps)
    assert (np.diff(curve) <= 1e-12).all()
    # at infinite capacity only cold misses remain.
    _, cold = distance_histogram(d)
    assert curve[-1] == pytest.approx(cold / len(t))


def test_miss_ratio_curve_small_capacity():
    # capacity 1: hit only on immediate repeats.
    t = np.array([1, 1, 2, 1])
    d = reuse_distances(t)
    curve = lru_miss_ratio_curve(d, np.array([1]))
    assert curve[0] == pytest.approx(3 / 4)


def test_empty_trace_curve():
    curve = lru_miss_ratio_curve(np.empty(0, dtype=np.int64), np.array([4]))
    assert curve.tolist() == [0.0]
