"""Unit and property tests for popularity pruning (repro.trace.prune)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace import popularity, prune_top_k

traces = st.lists(st.integers(0, 9), min_size=1, max_size=300).map(
    lambda xs: np.array(xs, dtype=np.int64)
)


def test_popularity_orders_by_frequency_then_symbol():
    t = np.array([3, 1, 1, 2, 2, 2, 5, 5, 5])
    symbols, counts = popularity(t)
    assert symbols.tolist() == [2, 5, 1, 3]  # ties 2/5 broken by value
    assert counts.tolist() == [3, 3, 2, 1]


def test_prune_keeps_only_top_k():
    t = np.array([0, 0, 0, 1, 1, 2])
    res = prune_top_k(t, 2)
    assert res.kept_symbols.tolist() == [0, 1]
    assert res.trace.tolist() == [0, 0, 0, 1, 1]
    assert res.keep_ratio == 5 / 6
    assert res.n_symbols_before == 3
    assert res.n_symbols_after == 2


def test_prune_k_larger_than_alphabet_keeps_everything():
    t = np.array([4, 4, 7])
    res = prune_top_k(t, 100)
    assert np.array_equal(res.trace, t)
    assert res.keep_ratio == 1.0


def test_prune_empty_trace():
    res = prune_top_k(np.empty(0, dtype=np.int64), 5)
    assert res.trace.shape == (0,)
    assert res.keep_ratio == 1.0


def test_prune_rejects_nonpositive_k():
    import pytest

    with pytest.raises(ValueError):
        prune_top_k(np.array([1]), 0)


@settings(max_examples=100, deadline=None)
@given(traces, st.integers(1, 12))
def test_pruned_trace_contains_only_kept_symbols(t, k):
    res = prune_top_k(t, k)
    kept = set(res.kept_symbols.tolist())
    assert set(res.trace.tolist()) <= kept
    assert len(kept) == min(k, len(set(t.tolist())))
    # keep ratio is exact.
    assert res.keep_ratio == res.trace.shape[0] / t.shape[0]
    # relative order of kept occurrences preserved.
    expected = [x for x in t.tolist() if x in kept]
    assert res.trace.tolist() == expected


@settings(max_examples=50, deadline=None)
@given(traces)
def test_pruning_monotone_in_k(t):
    ratios = [prune_top_k(t, k).keep_ratio for k in (1, 2, 4, 8)]
    assert all(a <= b + 1e-12 for a, b in zip(ratios, ratios[1:]))
