"""Unit and property tests for trace trimming (repro.trace.trim)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace import is_trimmed, trim, trim_with_counts

traces = st.lists(st.integers(0, 6), min_size=0, max_size=200).map(
    lambda xs: np.array(xs, dtype=np.int64)
)


def test_example_from_definition():
    assert trim(np.array([1, 1, 2, 2, 2, 1])).tolist() == [1, 2, 1]


def test_empty_and_singleton():
    assert trim(np.empty(0, dtype=np.int64)).shape == (0,)
    assert trim(np.array([5])).tolist() == [5]


def test_rejects_multidim():
    with pytest.raises(ValueError):
        trim(np.zeros((2, 2), dtype=np.int64))


def test_counts_example():
    symbols, counts = trim_with_counts(np.array([1, 1, 2, 2, 2, 1]))
    assert symbols.tolist() == [1, 2, 1]
    assert counts.tolist() == [2, 3, 1]


@settings(max_examples=100, deadline=None)
@given(traces)
def test_trim_has_no_consecutive_duplicates(t):
    assert is_trimmed(trim(t))


@settings(max_examples=100, deadline=None)
@given(traces)
def test_trim_idempotent(t):
    once = trim(t)
    assert np.array_equal(trim(once), once)


@settings(max_examples=100, deadline=None)
@given(traces)
def test_trim_preserves_symbol_set_and_order(t):
    trimmed = trim(t)
    assert set(trimmed.tolist()) == set(t.tolist())
    # trimmed is a subsequence of the original.
    it = iter(t.tolist())
    assert all(any(x == y for y in it) for x in trimmed.tolist())


@settings(max_examples=100, deadline=None)
@given(traces)
def test_counts_sum_to_length(t):
    symbols, counts = trim_with_counts(t)
    assert counts.sum() == t.shape[0]
    assert np.array_equal(symbols, trim(t))
    # expanding runs reconstructs the original.
    rebuilt = np.repeat(symbols, counts)
    assert np.array_equal(rebuilt, t)
