"""Unit tests for phase detection (repro.trace.phases)."""

import numpy as np
import pytest

from repro.trace.phases import Phase, detect_phases, phase_distance


def test_distance_properties():
    a = np.array([0.5, 0.5])
    b = np.array([0.5, 0.5])
    assert phase_distance(a, b) == 0.0
    c = np.array([1.0, 0.0])
    d = np.array([0.0, 1.0])
    assert phase_distance(c, d) == pytest.approx(1.0)
    # different lengths are padded.
    assert phase_distance(np.array([1.0]), np.array([0.0, 1.0])) == pytest.approx(1.0)


def test_two_clean_phases():
    trace = np.array([1, 2] * 500 + [7, 8] * 500)
    phases = detect_phases(trace, window=100, threshold=0.5)
    assert len(phases) == 2
    assert phases[0].start == 0
    assert phases[0].end == 1000
    assert phases[1].end == 2000
    assert set(phases[0].hot_symbols) == {1, 2}
    assert set(phases[1].hot_symbols) == {7, 8}


def test_uniform_trace_is_one_phase():
    rng = np.random.default_rng(0)
    trace = rng.integers(0, 10, 4000)
    phases = detect_phases(trace, window=200, threshold=0.5)
    assert len(phases) == 1
    assert phases[0].length == 4000


def test_three_phases_and_coverage():
    trace = np.array([0] * 600 + [1] * 600 + [2] * 600)
    phases = detect_phases(trace, window=150, threshold=0.5)
    assert len(phases) == 3
    # phases tile the trace exactly.
    assert phases[0].start == 0
    for a, b in zip(phases, phases[1:]):
        assert a.end == b.start
    assert phases[-1].end == trace.shape[0]


def test_boundary_resolution_is_window():
    # the switch at 500 straddles a window; the straddling window may
    # surface as its own short transition phase between the stable ones.
    trace = np.array([0] * 500 + [1] * 1500)
    phases = detect_phases(trace, window=200, threshold=0.4)
    assert 2 <= len(phases) <= 3
    # boundaries sit on window multiples, and the first stable phase ends
    # within one window of the true switch point.
    assert phases[0].end % 200 == 0
    assert abs(phases[0].end - 500) <= 200
    # the last phase is the pure-1 region.
    assert phases[-1].hot_symbols == (1,)


def test_threshold_extremes():
    trace = np.array([0] * 300 + [1] * 300)
    # threshold 1.0: nothing exceeds it strictly except disjoint windows —
    # here the two halves ARE disjoint, so distance == 1.0 is not > 1.0.
    assert len(detect_phases(trace, window=100, threshold=1.0)) == 1
    # threshold 0: every fluctuation splits; with clean windows the two
    # halves split once.
    assert len(detect_phases(trace, window=100, threshold=0.0)) == 2


def test_generator_phase_split_detected():
    from repro.engine import collect_trace
    from repro.workloads.generator import WorkloadSpec, build_program

    spec = WorkloadSpec(
        name="p",
        seed=3,
        n_stages=6,
        leaves_per_stage=4,
        phase_stage_split=True,
        phase_period=2000,
        ref_blocks=12_000,
    )
    module = build_program(spec)
    bundle = collect_trace(module, spec.ref_input())
    phases = detect_phases(bundle.func_trace, window=500, threshold=0.4)
    # the stage-split program flips working sets: multiple phases.
    assert len(phases) >= 2


def test_validation_and_empty():
    assert detect_phases(np.empty(0, dtype=np.int64)) == []
    with pytest.raises(ValueError):
        detect_phases(np.array([1]), window=0)
    with pytest.raises(ValueError):
        detect_phases(np.array([1]), threshold=2.0)


def test_phase_dataclass():
    p = Phase(10, 30, (1, 2))
    assert p.length == 20
