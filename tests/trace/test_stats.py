"""Unit tests for trace statistics (repro.trace.stats)."""

import numpy as np
import pytest

from repro.trace import summarize


def test_uniform_entropy():
    t = np.repeat(np.arange(8), 10)
    stats = summarize(t)
    assert stats.entropy_bits == pytest.approx(3.0)
    assert stats.n_symbols == 8
    assert stats.length == 80
    # 8 runs after trimming.
    assert stats.trimmed_length == 8
    assert stats.trim_ratio == pytest.approx(0.1)


def test_single_symbol():
    stats = summarize(np.zeros(10, dtype=np.int64))
    assert stats.entropy_bits == pytest.approx(0.0)
    assert stats.top_decile_coverage == 1.0


def test_empty_trace():
    stats = summarize(np.empty(0, dtype=np.int64))
    assert stats.length == 0
    assert stats.trim_ratio == 1.0


def test_top_decile_coverage_skewed():
    # symbol 0 dominates: top 10% of 10 symbols = 1 symbol = 0.
    t = np.array([0] * 91 + list(range(1, 10)))
    stats = summarize(t)
    assert stats.top_decile_coverage == pytest.approx(0.91)
