"""Unit tests for trace sampling (repro.trace.sample)."""

import numpy as np
import pytest

from repro.trace import iter_sample_windows, sample_ratio, window_sample


def test_window_sample_exact():
    t = np.arange(10)
    out = window_sample(t, window=2, period=5)
    assert out.tolist() == [0, 1, 5, 6]


def test_window_equals_period_keeps_everything():
    t = np.arange(9)
    assert np.array_equal(window_sample(t, 3, 3), t)


def test_trailing_partial_window():
    t = np.arange(7)
    out = window_sample(t, window=3, period=5)
    assert out.tolist() == [0, 1, 2, 5, 6]


def test_iter_windows_do_not_stitch():
    t = np.arange(10)
    windows = list(iter_sample_windows(t, 2, 5))
    assert [w.tolist() for w in windows] == [[0, 1], [5, 6]]


def test_sample_ratio_matches_actual():
    t = np.arange(23)
    for window, period in [(2, 5), (3, 7), (5, 5)]:
        assert sample_ratio(len(t), window, period) == pytest.approx(
            window_sample(t, window, period).shape[0] / len(t)
        )
    assert sample_ratio(0, 2, 5) == 1.0


def test_validation():
    t = np.arange(5)
    with pytest.raises(ValueError):
        window_sample(t, 0, 5)
    with pytest.raises(ValueError):
        window_sample(t, 6, 5)
    with pytest.raises(ValueError):
        sample_ratio(10, 3, 2)


def test_empty_trace():
    t = np.empty(0, dtype=np.int64)
    assert window_sample(t, 2, 4).shape == (0,)
    assert list(iter_sample_windows(t, 2, 4)) == []
