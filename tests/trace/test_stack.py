"""Unit and property tests for the LRU stack (repro.trace.stack)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace import LRUStack


class NaiveStack:
    """Reference implementation: a plain list, MRU first."""

    def __init__(self, capacity=None):
        self.items = []
        self.capacity = capacity

    def access(self, key):
        try:
            i = self.items.index(key)
        except ValueError:
            self.items.insert(0, key)
            if self.capacity is not None and len(self.items) > self.capacity:
                self.items.pop()
            return None
        self.items.pop(i)
        self.items.insert(0, key)
        return i + 1


def test_basic_depths():
    s = LRUStack()
    assert s.access("a") is None
    assert s.access("b") is None
    assert s.access("a") == 2
    assert s.access("a") == 1
    assert s.as_list() == ["a", "b"]


def test_capacity_evicts_lru():
    s = LRUStack(capacity=2)
    s.access(1)
    s.access(2)
    s.access(3)  # evicts 1
    assert 1 not in s
    assert s.access(1) is None  # cold again
    assert len(s) == 2


def test_capacity_validation():
    with pytest.raises(ValueError):
        LRUStack(capacity=0)


def test_top_iteration_limit():
    s = LRUStack()
    for x in (1, 2, 3, 4):
        s.access(x)
    assert list(s.top(2)) == [4, 3]
    assert list(s.top()) == [4, 3, 2, 1]


def test_walk_until():
    s = LRUStack()
    for x in (1, 2, 3):
        s.access(x)
    assert s.walk_until(1) == [3, 2]
    assert s.walk_until(3) == []
    assert s.walk_until(99) is None
    assert s.walk_until(1, limit=1) is None  # deeper than limit


def test_touch_does_not_report_depth():
    s = LRUStack()
    assert s.touch("x") is False
    assert s.touch("x") is True
    assert s.as_list() == ["x"]


def test_depth_query():
    s = LRUStack()
    for x in "abc":
        s.access(x)
    assert s.depth("c") == 1
    assert s.depth("a") == 3
    assert s.depth("zz") is None


@settings(max_examples=100, deadline=None)
@given(
    ops=st.lists(st.integers(0, 7), min_size=1, max_size=200),
    capacity=st.one_of(st.none(), st.integers(1, 5)),
)
def test_matches_naive_model(ops, capacity):
    fast = LRUStack(capacity=capacity)
    slow = NaiveStack(capacity=capacity)
    for x in ops:
        assert fast.access(x) == slow.access(x)
    assert fast.as_list() == slow.items
