"""Unit tests for the affinity hierarchy (repro.core.hierarchy)."""

import numpy as np
import pytest

from repro.core import AffinityAnalysis, build_hierarchy, hierarchy_levels, layout_order

FIG1 = np.array([1, 4, 2, 4, 2, 3, 5, 1, 4])


def fig1_forest(w_max=6):
    return build_hierarchy(AffinityAnalysis(FIG1, w_max=w_max))


def test_figure1_layout_sequence():
    # The paper's published output sequence: B1 B4 B2 B3 B5.
    assert layout_order(fig1_forest()) == [1, 4, 2, 3, 5]


def test_figure1_levels():
    levels = hierarchy_levels(fig1_forest())
    assert levels[2] == [[1], [4], [2], [3, 5]]
    assert levels[3] == [[1, 4], [2], [3, 5]]
    assert levels[4] == [[1, 4], [2, 3, 5]]
    assert levels[5] == [[1, 4, 2, 3, 5]]


def test_levels_are_nested_coarsenings():
    levels = hierarchy_levels(fig1_forest())
    ws = sorted(levels)
    for w_small, w_big in zip(ws, ws[1:]):
        fine = [set(g) for g in levels[w_small]]
        for group in levels[w_big]:
            gset = set(group)
            # every coarse group is a union of fine groups.
            covered = [f for f in fine if f <= gset]
            assert set().union(*covered) == gset


def test_layout_is_permutation_of_symbols():
    rng = np.random.default_rng(1)
    t = rng.integers(0, 12, 300)
    analysis = AffinityAnalysis(t, w_max=8)
    order = layout_order(build_hierarchy(analysis))
    assert sorted(order) == sorted(set(t.tolist()))


def test_deterministic():
    rng = np.random.default_rng(2)
    t = rng.integers(0, 10, 200)
    a1 = layout_order(build_hierarchy(AffinityAnalysis(t, w_max=6)))
    a2 = layout_order(build_hierarchy(AffinityAnalysis(t, w_max=6)))
    assert a1 == a2


def test_custom_w_values_shows_precedence_effect():
    # Without the w=2 pass, (B2,B3) forms at w=3 instead of (B3,B5) —
    # the paper's remark that lower-level groups take precedence, and the
    # partition is otherwise not unique.
    analysis = AffinityAnalysis(FIG1, w_max=6)
    forest = build_hierarchy(analysis, w_values=[3])
    levels = hierarchy_levels(forest)
    assert list(levels) == [3]
    assert levels[3] == [[1, 4], [2, 3], [5]]
    # with the full sweep, w=3 instead keeps (B3,B5) (cf. Fig. 1).
    full = hierarchy_levels(build_hierarchy(analysis))
    assert full[3] == [[1, 4], [2], [3, 5]]


def test_w_values_validation():
    analysis = AffinityAnalysis(FIG1, w_max=4)
    with pytest.raises(ValueError):
        build_hierarchy(analysis, w_values=[3, 3])
    with pytest.raises(ValueError):
        build_hierarchy(analysis, w_values=[2, 10])


def test_single_symbol_trace():
    analysis = AffinityAnalysis(np.array([7, 7, 7]), w_max=3)
    forest = build_hierarchy(analysis)
    assert layout_order(forest) == [7]
    assert forest[0].is_leaf
