"""Edge-case and internals tests for the affinity analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AffinityAnalysis, affine_pairs_naive


def test_forward_coverage_through_intervening_occurrence():
    """The case that distinguishes the exact algorithm from the stack-top
    approximation (see the analysis module docstring): B2@3's coverage by
    B3@6 must be found even though B2@5 intervenes."""
    trace = np.array([1, 4, 2, 4, 2, 3, 5, 1, 4])  # paper Fig. 1
    analysis = AffinityAnalysis(trace, w_max=6)
    # covered(2, 3, 3): both occurrences of B2 have B3 within fp<=3.
    assert analysis.covered(2, 3, 3) == 2


def test_two_symbol_alternation():
    t = np.tile([7, 9], 50)
    analysis = AffinityAnalysis(t, w_max=4)
    assert analysis.affine_pairs(2) == {(7, 9)}
    assert analysis.occurrences(7) == 50


def test_long_loop_then_new_symbol():
    """A block first occurring long after a small loop still has small
    *footprint* windows to the loop blocks — Definition 3 is volume-based,
    not time-based."""
    t = np.concatenate([np.tile([0, 1, 2], 200), np.array([3, 0, 1, 2])])
    analysis = AffinityAnalysis(t, w_max=6)
    # symbol 3 occurs once; every loop symbol has an occurrence within a
    # footprint-4 window of it (the windows are long in time, short in
    # volume), and 3's own occurrence sees them adjacently.
    assert analysis.is_affine(3, 0, 4)
    assert analysis.is_affine(3, 2, 4)
    # cross-check against the oracle.
    assert analysis.affine_pairs(4) == affine_pairs_naive(t, 4)


def test_time_horizon_breaks_long_window_coverage():
    t = np.concatenate([np.tile([0, 1, 2], 200), np.array([3, 0, 1, 2])])
    capped = AffinityAnalysis(t, w_max=6, time_horizon=10)
    # with a 10-step horizon, 0's early occurrences cannot be covered by 3.
    assert not capped.is_affine(3, 0, 4)


def test_single_occurrence_pairs():
    t = np.array([1, 2])
    analysis = AffinityAnalysis(t, w_max=4)
    assert analysis.is_affine(1, 2, 2)
    assert analysis.occurrences(1) == 1


def test_symbols_absent_from_trace():
    analysis = AffinityAnalysis(np.array([5, 6, 5]), w_max=3)
    assert analysis.covered(5, 99, 3) == 0
    assert not analysis.is_affine(5, 99, 3)


@settings(max_examples=40, deadline=None)
@given(
    trace=st.lists(st.integers(0, 3), min_size=2, max_size=40),
    horizon=st.integers(1, 50),
)
def test_horizon_is_sound_approximation(trace, horizon):
    """A time horizon may only *lose* coverage, never invent it, at every
    (pair, w) — stronger than the pairs-subset check."""
    t = np.array(trace, dtype=np.int64)
    exact = AffinityAnalysis(t, w_max=4)
    capped = AffinityAnalysis(t, w_max=4, time_horizon=horizon)
    for x in exact.symbols:
        for y in exact.symbols:
            if x == y:
                continue
            for w in (2, 3, 4):
                assert capped.covered(x, y, w) <= exact.covered(x, y, w)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 4), min_size=1, max_size=60))
def test_occurrence_counts_match_trimmed_trace(trace):
    from repro.trace import trim

    t = np.array(trace, dtype=np.int64)
    analysis = AffinityAnalysis(t, w_max=3)
    trimmed = trim(t)
    for s in set(trimmed.tolist()):
        assert analysis.occurrences(s) == int((trimmed == s).sum())


# -- coverage-threshold and horizon-finalization cross-checks --------------
#
# affine_pairs_naive implements the strict Definition 3 (coverage 1.0, no
# horizon).  These references extend it: per-occurrence minimal footprints
# by direct window scanning, then the threshold/horizon rules applied on
# top — an independent derivation of exactly what ``_analyze`` computes.


def _covered_count_naive(t, x, y, w, horizon=None):
    """Occurrences of x with a y-occurrence within footprint w, under the
    optional horizon: a *forward* partner (j > i) only counts while the
    occurrence is still pending, i.e. j - i <= horizon + 1."""
    from repro.core.affinity import window_footprint

    xs = np.flatnonzero(t == x).tolist()
    ys = np.flatnonzero(t == y).tolist()
    count = 0
    for i in xs:
        ok = False
        for j in ys:
            if horizon is not None and j > i and j - i > horizon + 1:
                continue
            if window_footprint(t, i, j) <= w:
                ok = True
                break
        count += ok
    return count


def _affine_pairs_ref(t, w, w_max, coverage, horizon=None):
    symbols = sorted(set(t.tolist()))
    pairs = set()
    for a, x in enumerate(symbols):
        for y in symbols[a + 1 :]:
            need_x = coverage * int((t == x).sum())
            need_y = coverage * int((t == y).sum())
            if (
                _covered_count_naive(t, x, y, w, horizon) >= need_x
                and _covered_count_naive(t, y, x, w, horizon) >= need_y
            ):
                pairs.add((x, y))
    return pairs


@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("coverage", [1.0, 0.9, 0.75, 0.5])
def test_coverage_threshold_against_naive(seed, coverage):
    rng = np.random.default_rng(100 + seed)
    t = rng.integers(0, 6, size=90)
    from repro.trace import trim

    t = trim(t)
    w_max = 5
    analysis = AffinityAnalysis(t, w_max=w_max, coverage=coverage)
    for w in (2, 3, 5):
        assert analysis.affine_pairs(w) == _affine_pairs_ref(
            t, w, w_max, coverage
        ), (seed, coverage, w)


def test_coverage_one_matches_strict_naive():
    rng = np.random.default_rng(11)
    t = rng.integers(0, 5, size=70)
    analysis = AffinityAnalysis(t, w_max=4, coverage=1.0)
    for w in (2, 4):
        assert analysis.affine_pairs(w) == affine_pairs_naive(t, w)


@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("horizon", [0, 2, 5, 15])
def test_finite_horizon_finalization_against_naive(seed, horizon):
    """Every covered() count — not just the pair set — matches the direct
    per-occurrence derivation under mid-trace pending finalization."""
    rng = np.random.default_rng(200 + seed)
    t = rng.integers(0, 5, size=80)
    from repro.trace import trim

    t = trim(t)
    w_max = 4
    analysis = AffinityAnalysis(t, w_max=w_max, time_horizon=horizon)
    symbols = sorted(set(t.tolist()))
    for x in symbols:
        for y in symbols:
            if x == y:
                continue
            for w in (2, 3, 4):
                assert analysis.covered(x, y, w) == _covered_count_naive(
                    t, x, y, w, horizon
                ), (seed, horizon, x, y, w)


def test_horizon_with_coverage_threshold_combined():
    rng = np.random.default_rng(3)
    t = rng.integers(0, 5, size=80)
    from repro.trace import trim

    t = trim(t)
    analysis = AffinityAnalysis(t, w_max=4, coverage=0.75, time_horizon=4)
    for w in (2, 4):
        assert analysis.affine_pairs(w) == _affine_pairs_ref(
            t, w, 4, 0.75, horizon=4
        )
