"""Edge-case and internals tests for the affinity analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AffinityAnalysis, affine_pairs_naive


def test_forward_coverage_through_intervening_occurrence():
    """The case that distinguishes the exact algorithm from the stack-top
    approximation (see the analysis module docstring): B2@3's coverage by
    B3@6 must be found even though B2@5 intervenes."""
    trace = np.array([1, 4, 2, 4, 2, 3, 5, 1, 4])  # paper Fig. 1
    analysis = AffinityAnalysis(trace, w_max=6)
    # covered(2, 3, 3): both occurrences of B2 have B3 within fp<=3.
    assert analysis.covered(2, 3, 3) == 2


def test_two_symbol_alternation():
    t = np.tile([7, 9], 50)
    analysis = AffinityAnalysis(t, w_max=4)
    assert analysis.affine_pairs(2) == {(7, 9)}
    assert analysis.occurrences(7) == 50


def test_long_loop_then_new_symbol():
    """A block first occurring long after a small loop still has small
    *footprint* windows to the loop blocks — Definition 3 is volume-based,
    not time-based."""
    t = np.concatenate([np.tile([0, 1, 2], 200), np.array([3, 0, 1, 2])])
    analysis = AffinityAnalysis(t, w_max=6)
    # symbol 3 occurs once; every loop symbol has an occurrence within a
    # footprint-4 window of it (the windows are long in time, short in
    # volume), and 3's own occurrence sees them adjacently.
    assert analysis.is_affine(3, 0, 4)
    assert analysis.is_affine(3, 2, 4)
    # cross-check against the oracle.
    assert analysis.affine_pairs(4) == affine_pairs_naive(t, 4)


def test_time_horizon_breaks_long_window_coverage():
    t = np.concatenate([np.tile([0, 1, 2], 200), np.array([3, 0, 1, 2])])
    capped = AffinityAnalysis(t, w_max=6, time_horizon=10)
    # with a 10-step horizon, 0's early occurrences cannot be covered by 3.
    assert not capped.is_affine(3, 0, 4)


def test_single_occurrence_pairs():
    t = np.array([1, 2])
    analysis = AffinityAnalysis(t, w_max=4)
    assert analysis.is_affine(1, 2, 2)
    assert analysis.occurrences(1) == 1


def test_symbols_absent_from_trace():
    analysis = AffinityAnalysis(np.array([5, 6, 5]), w_max=3)
    assert analysis.covered(5, 99, 3) == 0
    assert not analysis.is_affine(5, 99, 3)


@settings(max_examples=40, deadline=None)
@given(
    trace=st.lists(st.integers(0, 3), min_size=2, max_size=40),
    horizon=st.integers(1, 50),
)
def test_horizon_is_sound_approximation(trace, horizon):
    """A time horizon may only *lose* coverage, never invent it, at every
    (pair, w) — stronger than the pairs-subset check."""
    t = np.array(trace, dtype=np.int64)
    exact = AffinityAnalysis(t, w_max=4)
    capped = AffinityAnalysis(t, w_max=4, time_horizon=horizon)
    for x in exact.symbols:
        for y in exact.symbols:
            if x == y:
                continue
            for w in (2, 3, 4):
                assert capped.covered(x, y, w) <= exact.covered(x, y, w)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 4), min_size=1, max_size=60))
def test_occurrence_counts_match_trimmed_trace(trace):
    from repro.trace import trim

    t = np.array(trace, dtype=np.int64)
    analysis = AffinityAnalysis(t, w_max=3)
    trimmed = trim(t)
    for s in set(trimmed.tolist()):
        assert analysis.occurrences(s) == int((trimmed == s).sum())
