"""Unit tests for the original link-based reference affinity
(repro.core.linkaffinity)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.linkaffinity import is_link_affinity_group, link_affinity_partition


def test_tight_pair_is_a_group():
    t = np.array([1, 2, 9, 9, 1, 2, 8, 1, 2])
    assert is_link_affinity_group(t, {1, 2}, k=2)


def test_chained_affinity_through_middle_member():
    # A and C never co-occur tightly, but both link to B: with B in the
    # group the chain A-B-C satisfies the definition; without B it fails.
    # Pattern: A B ... B C, repeated.
    t = np.array([1, 2, 7, 2, 3, 7, 1, 2, 8, 2, 3, 8])
    assert is_link_affinity_group(t, {1, 2, 3}, k=2)
    assert not is_link_affinity_group(t, {1, 3}, k=2)


def test_singletons_and_unknowns():
    t = np.array([1, 2, 3])
    assert is_link_affinity_group(t, {1}, k=1)
    assert not is_link_affinity_group(t, {1, 99}, k=5)


def test_every_occurrence_matters():
    # 1 and 2 co-occur once, but 1's second occurrence is isolated.
    t = np.array([1, 2, 7, 8, 9, 1])
    assert not is_link_affinity_group(t, {1, 2}, k=2)


def test_partition_separates_unrelated_groups():
    # (1,2) and (6,7) are tight pairs; single-occurrence fillers between
    # them keep the cross-group windows above k, so chains cannot form.
    t = np.array([1, 2, 90, 6, 7, 91, 1, 2, 92, 6, 7, 93, 1, 2, 94, 6, 7])
    parts = link_affinity_partition(t, k=2)
    assert {1, 2} in parts
    assert {6, 7} in parts
    # every symbol appears in exactly one group.
    flat = sorted(x for g in parts for x in g)
    assert flat == sorted(set(t.tolist()))


def test_partition_at_large_k_merges_everything():
    t = np.array([1, 2, 3, 1, 2, 3])
    parts = link_affinity_partition(t, k=10)
    assert parts == [{1, 2, 3}]


def test_partition_at_k1_is_singletons():
    t = np.array([1, 2, 3, 1, 2, 3])
    parts = link_affinity_partition(t, k=1)
    assert parts == [{1}, {2}, {3}]


@settings(max_examples=30, deadline=None)
@given(
    trace=st.lists(st.integers(0, 4), min_size=2, max_size=25),
    k=st.integers(1, 4),
)
def test_partition_covers_alphabet_disjointly(trace, k):
    t = np.array(trace, dtype=np.int64)
    parts = link_affinity_partition(t, k)
    flat = [x for g in parts for x in g]
    assert sorted(flat) == sorted(set(trace))
    assert len(flat) == len(set(flat))
    # every reported group satisfies the definition.
    for g in parts:
        assert is_link_affinity_group(t, g, k)


@settings(max_examples=30, deadline=None)
@given(
    trace=st.lists(st.integers(0, 4), min_size=2, max_size=20),
)
def test_w_window_affinity_pairs_are_link_affine(trace):
    """A w-affine pair is k-link-affine at k=w: the direct window is a
    one-link chain."""
    from repro.core import AffinityAnalysis

    t = np.array(trace, dtype=np.int64)
    analysis = AffinityAnalysis(t, w_max=4)
    for w in (2, 3, 4):
        for (x, y) in analysis.affine_pairs(w):
            assert is_link_affinity_group(t, {x, y}, k=w)
