"""Unit tests for goal scoring (repro.core.goals)."""

import pytest

from repro.core import GoalScores, relative_reduction, score_goals


def test_relative_reduction():
    assert relative_reduction(0.04, 0.03) == pytest.approx(0.25)
    assert relative_reduction(0.04, 0.05) == pytest.approx(-0.25)
    assert relative_reduction(0.0, 0.1) == 0.0


def test_score_goals_composition():
    scores = score_goals(
        solo_self_before=0.020,
        solo_self_after=0.018,
        corun_self_before=0.040,
        corun_self_after=0.028,
        corun_peer_before=0.030,
        corun_peer_after=0.027,
    )
    assert scores.locality == pytest.approx(0.10)
    assert scores.defensiveness == pytest.approx(0.30)
    assert scores.politeness == pytest.approx(0.10)
    assert scores.defensive_beyond_locality == pytest.approx(0.20)


def test_headline_case_no_solo_benefit():
    scores = GoalScores(locality=0.0, defensiveness=0.25, politeness=0.05)
    assert scores.defensive_beyond_locality == pytest.approx(0.25)
