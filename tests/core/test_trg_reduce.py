"""Unit and property tests for TRG reduction (repro.core.trg_reduce).

The Figure 2 instance reconstructs the paper's worked example: edge
weights chosen so the published narrative replays exactly — <A,B> reduced
first, then <E,F> with E taking the empty third slot and F merging with A
(removing E<B,F>), then C merging with E — and the emitted sequence is
``A B E F C`` with slots [A,F], [B], [E,C].
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TRG, build_trg, reduce_trg

A, B, C, E, F = 0, 1, 2, 3, 4


def fig2_trg():
    trg = TRG(nodes=[A, B, C, E, F])
    for (x, y), w in {
        (A, B): 40,
        (E, F): 31,
        (C, E): 30,
        (B, E): 20,
        (B, F): 15,
        (A, F): 10,
    }.items():
        trg.add_conflict(x, y, w)
    return trg


def test_figure2_slots_and_sequence():
    res = reduce_trg(fig2_trg(), 3)
    assert res.slots == [[A, F], [B], [E, C]]
    assert res.order == [A, B, E, F, C]
    assert res.unconstrained == []


def test_single_slot_emits_by_edge_order():
    res = reduce_trg(fig2_trg(), 1)
    # everything lands in the one slot; emission order = placement order.
    assert sorted(res.order) == [A, B, C, E, F]
    assert res.order[0] == A
    assert res.order[1] == B


def test_isolated_nodes_appended():
    trg = TRG(nodes=[1, 2, 3, 4])
    trg.add_conflict(1, 2, 5)
    res = reduce_trg(trg, 2)
    assert sorted(res.order) == [1, 2, 3, 4]
    assert set(res.unconstrained) == {3, 4}


def test_empty_graph():
    trg = TRG(nodes=[7, 8])
    res = reduce_trg(trg, 3)
    assert sorted(res.order) == [7, 8]
    assert set(res.unconstrained) == {7, 8}


def test_slot_validation():
    with pytest.raises(ValueError):
        reduce_trg(fig2_trg(), 0)


@settings(max_examples=60, deadline=None)
@given(
    trace=st.lists(st.integers(0, 9), min_size=1, max_size=120),
    n_slots=st.integers(1, 6),
)
def test_every_block_emitted_exactly_once(trace, n_slots):
    trg = build_trg(np.array(trace, dtype=np.int64))
    res = reduce_trg(trg, n_slots)
    assert sorted(res.order) == sorted(set(trace))


@settings(max_examples=40, deadline=None)
@given(
    trace=st.lists(st.integers(0, 7), min_size=2, max_size=80),
    n_slots=st.integers(1, 4),
)
def test_reduction_deterministic(trace, n_slots):
    t = np.array(trace, dtype=np.int64)
    r1 = reduce_trg(build_trg(t), n_slots)
    r2 = reduce_trg(build_trg(t), n_slots)
    assert r1.order == r2.order
    assert r1.slots == r2.slots
