"""Unit tests for TRG construction (repro.core.trg)."""

import numpy as np
import pytest

from repro.cache import PAPER_L1I
from repro.core import TRG, build_trg, trg_window_blocks, uniform_block_slots


def test_simple_interleaving_counts():
    # a b a: one reuse of a interleaved by b -> w(a,b) = 1.
    trg = build_trg(np.array([1, 2, 1]))
    assert trg.weight(1, 2) == 1
    # symmetric lookup.
    assert trg.weight(2, 1) == 1


def test_repeated_interleavings_accumulate():
    # a b a b a: reuses of a see b twice; reuses of b see a once.
    trg = build_trg(np.array([1, 2, 1, 2, 1]))
    assert trg.weight(1, 2) == 3


def test_multiple_distinct_interleavers():
    # a b c a: a's reuse is interleaved by both b and c.
    trg = build_trg(np.array([1, 2, 3, 1]))
    assert trg.weight(1, 2) == 1
    assert trg.weight(1, 3) == 1
    assert trg.weight(2, 3) == 0


def test_trimming_applied():
    trg = build_trg(np.array([1, 1, 2, 2, 1, 1]))
    assert trg.weight(1, 2) == 1


def test_window_bound_drops_long_reuses():
    # with a window of 2 blocks, a's reuse across {b, c} is beyond reach.
    t = np.array([1, 2, 3, 1])
    unbounded = build_trg(t)
    bounded = build_trg(t, window_blocks=2)
    assert unbounded.weight(1, 2) == 1
    assert bounded.weight(1, 2) == 0
    assert bounded.weight(1, 3) == 0


def test_nodes_in_first_occurrence_order():
    trg = build_trg(np.array([5, 2, 5, 9]))
    assert trg.nodes == [5, 2, 9]


def test_edges_by_weight_deterministic_order():
    trg = TRG()
    trg.add_conflict(1, 2, 5)
    trg.add_conflict(3, 4, 5)
    trg.add_conflict(1, 3, 9)
    edges = trg.edges_by_weight()
    assert edges[0] == (1, 3, 9)
    assert edges[1] == (1, 2, 5)  # tie broken by node pair
    assert edges[2] == (3, 4, 5)
    assert trg.n_edges == 3


def test_window_blocks_and_slots_paper_config():
    # uniform block size 256B: window = 2*32768/256 = 256 blocks.
    assert trg_window_blocks(PAPER_L1I, 256) == 256
    # slots: sets=128 chunks of 256B; block occupies ceil(256/256)=1 -> 128.
    assert uniform_block_slots(PAPER_L1I, 256) == 128
    # a 1KB block occupies 4 set-chunks -> 32 slots.
    assert uniform_block_slots(PAPER_L1I, 1024) == 32


def test_size_validation():
    with pytest.raises(ValueError):
        trg_window_blocks(PAPER_L1I, 0)
    with pytest.raises(ValueError):
        uniform_block_slots(PAPER_L1I, -1)


def test_add_conflict_rejects_nonpositive_amount():
    """Regression (ISSUE 5 satellite): a zero or negative amount would
    silently corrupt edge weights under batched accumulation."""
    trg = TRG()
    with pytest.raises(ValueError):
        trg.add_conflict(1, 2, 0)
    with pytest.raises(ValueError):
        trg.add_conflict(1, 2, -3)
    assert trg.weights == {}  # nothing recorded by the failed calls
    trg.add_conflict(1, 2, 2)
    assert trg.weight(1, 2) == 2


def test_edges_by_weight_insertion_order_invariant():
    """The reduction's tie-break contract: edges_by_weight depends only on
    the edge *set*, never on the order conflicts were recorded."""
    import itertools
    import random

    from repro.core.trg_reduce import reduce_trg

    conflicts = [(1, 2, 5), (3, 4, 5), (1, 3, 9), (2, 4, 5), (1, 4, 1)]
    baseline = None
    reduced_baseline = None
    rng = random.Random(42)
    orders = list(itertools.permutations(conflicts))
    rng.shuffle(orders)
    for perm in orders[:24]:
        trg = TRG(nodes=[1, 2, 3, 4])
        for x, y, w in perm:
            # split the weight across calls to vary accumulation order too
            trg.add_conflict(x, y, max(1, w - 1))
            if w > 1:
                trg.add_conflict(y, x, 1)
        edges = trg.edges_by_weight()
        reduced = reduce_trg(trg, 2)
        if baseline is None:
            baseline = edges
            reduced_baseline = (reduced.order, reduced.slots)
        else:
            assert edges == baseline
            assert (reduced.order, reduced.slots) == reduced_baseline
