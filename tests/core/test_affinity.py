"""Unit and property tests for w-window affinity (repro.core.affinity).

The headline checks: the efficient one-pass algorithm matches the naive
Definition-3 oracle on random traces, and the paper's Figure 1 example
reproduces exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AffinityAnalysis, affine_pairs_naive, window_footprint

#: paper Fig. 1: B1 B4 B2 B4 B2 B3 B5 B1 B4
FIG1 = np.array([1, 4, 2, 4, 2, 3, 5, 1, 4])

traces = st.lists(st.integers(0, 6), min_size=1, max_size=60).map(
    lambda xs: np.array(xs, dtype=np.int64)
)


class TestWindowFootprint:
    def test_definition_example(self):
        # paper: trace B1 B3 B2 B3 B4, fp<B1, B2> = 3.
        t = np.array([1, 3, 2, 3, 4])
        assert window_footprint(t, 0, 2) == 3

    def test_symmetric(self):
        t = np.array([1, 2, 3, 1])
        assert window_footprint(t, 0, 3) == window_footprint(t, 3, 0)

    def test_single_position(self):
        assert window_footprint(np.array([9]), 0, 0) == 1


class TestFigure1:
    @pytest.fixture
    def analysis(self):
        return AffinityAnalysis(FIG1, w_max=6)

    def test_w2_groups(self, analysis):
        assert analysis.affine_pairs(2) == {(3, 5)}

    def test_w3_groups(self, analysis):
        assert analysis.affine_pairs(3) == {(1, 4), (2, 3), (3, 5)}

    def test_w4_includes_b2_b5(self, analysis):
        pairs = analysis.affine_pairs(4)
        assert (2, 5) in pairs
        assert (2, 3) in pairs
        assert (1, 4) in pairs

    def test_w5_everything_affine(self, analysis):
        assert len(analysis.affine_pairs(5)) == 10  # C(5, 2)

    def test_w1_nothing_affine(self, analysis):
        assert analysis.affine_pairs(1) == set()


class TestAnalysisAPI:
    def test_trims_internally(self):
        a = AffinityAnalysis(np.array([1, 1, 2, 2, 1]), w_max=3)
        b = AffinityAnalysis(np.array([1, 2, 1]), w_max=3)
        assert a.occurrences(1) == b.occurrences(1) == 2

    def test_symbols_by_first_occurrence(self):
        a = AffinityAnalysis(FIG1, w_max=4)
        assert a.symbols == [1, 4, 2, 3, 5]
        assert a.first_occurrence(4) == 1

    def test_self_affinity(self):
        a = AffinityAnalysis(FIG1, w_max=4)
        assert a.is_affine(1, 1, 2)

    def test_unknown_symbol_not_affine(self):
        a = AffinityAnalysis(FIG1, w_max=4)
        assert not a.is_affine(1, 99, 4)

    def test_w_beyond_analysis_rejected(self):
        a = AffinityAnalysis(FIG1, w_max=4)
        with pytest.raises(ValueError):
            a.is_affine(1, 4, 5)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            AffinityAnalysis(FIG1, w_max=0)
        with pytest.raises(ValueError):
            AffinityAnalysis(FIG1, coverage=0.0)
        with pytest.raises(ValueError):
            AffinityAnalysis(FIG1, coverage=1.5)

    def test_coverage_threshold_relaxes(self):
        # B2 wrt B4: occurrence B2@5 (0-based 4) has B4 nearby, but with
        # strict coverage B2-B4 only become affine at larger w; a low
        # threshold admits more pairs at small w.
        strict = AffinityAnalysis(FIG1, w_max=6, coverage=1.0)
        loose = AffinityAnalysis(FIG1, w_max=6, coverage=0.5)
        for w in range(1, 7):
            assert strict.affine_pairs(w) <= loose.affine_pairs(w)

    def test_time_horizon_only_removes_pairs(self):
        rng = np.random.default_rng(0)
        t = rng.integers(0, 5, 80)
        exact = AffinityAnalysis(t, w_max=5)
        capped = AffinityAnalysis(t, w_max=5, time_horizon=6)
        for w in range(1, 6):
            assert capped.affine_pairs(w) <= exact.affine_pairs(w)


@settings(max_examples=120, deadline=None)
@given(traces, st.integers(1, 6))
def test_efficient_matches_naive_oracle(t, w):
    analysis = AffinityAnalysis(t, w_max=6)
    assert analysis.affine_pairs(w) == affine_pairs_naive(t, w)


@settings(max_examples=60, deadline=None)
@given(traces)
def test_affinity_monotone_in_w(t):
    analysis = AffinityAnalysis(t, w_max=6)
    prev: set = set()
    for w in range(1, 7):
        cur = analysis.affine_pairs(w)
        assert prev <= cur
        prev = cur
