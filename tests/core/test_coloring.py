"""Unit tests for cache-line coloring placement (repro.core.coloring)."""

import numpy as np
import pytest

from repro.cache import CacheConfig
from repro.core.coloring import color_functions
from repro.core.optimizers import OptimizerConfig
from repro.engine import InputSpec, collect_trace
from repro.ir import LayoutKind, baseline_layout


SMALL_CACHE = CacheConfig(size_bytes=1024, assoc=1, line_bytes=64)  # 16 sets


def test_layout_is_legal(tiny_module, tiny_bundle):
    layout = color_functions(tiny_module, tiny_bundle, cache=SMALL_CACHE)
    amap = layout.address_map
    assert layout.kind is LayoutKind.FUNCTION
    assert sorted(amap.order) == list(range(tiny_module.n_blocks))
    assert not amap.overlaps()
    assert "coloring" in layout.note


def test_gaps_allowed_but_bounded(tiny_module, tiny_bundle):
    layout = color_functions(tiny_module, tiny_bundle, cache=SMALL_CACHE)
    dense = baseline_layout(tiny_module)
    # coloring may pad, but by at most ~one cache of lines per hot function.
    n_hot_funcs = 3  # main, x, y all execute
    max_pad = n_hot_funcs * SMALL_CACHE.size_bytes
    assert dense.address_map.end <= layout.address_map.end <= dense.address_map.end + max_pad


def test_functions_stay_contiguous(tiny_module, tiny_bundle):
    layout = color_functions(tiny_module, tiny_bundle, cache=SMALL_CACHE)
    amap = layout.address_map
    for func in tiny_module.functions:
        gids = [b.gid for b in func.blocks]
        starts = [int(amap.starts[g]) for g in gids]
        # blocks in declaration order at increasing addresses, densely
        # (up to their own jump budgets).
        assert starts == sorted(starts)
        span = max(
            int(amap.starts[g]) + int(amap.sizes[g]) for g in gids
        ) - min(starts)
        assert span <= func.size_bytes + 4 * len(gids)


def test_accepts_optimizer_config(tiny_module, tiny_bundle):
    cfg = OptimizerConfig(cache=SMALL_CACHE)
    layout = color_functions(tiny_module, tiny_bundle, cfg)
    assert "16 sets" in layout.note


def test_avoids_conflicting_hot_functions():
    """Two conflicting hot functions must get different colors."""
    from repro.ir import ModuleBuilder

    b = ModuleBuilder("m")
    f = b.function("main")
    f.block("entry", 2).loop("c1", "done", trips=500)
    f.block("c1", 1).call("a", return_to="c2")
    f.block("c2", 1).call("b", return_to="entry")
    f.block("done", 1).exit()
    for name in ("a", "b"):
        g = b.function(name)
        g.block("e", 32).ret()  # two lines each
    module = b.build()
    bundle = collect_trace(module, InputSpec("t", seed=0, max_blocks=4000))
    cache = CacheConfig(size_bytes=256, assoc=1, line_bytes=64)  # 4 sets
    layout = color_functions(module, bundle, cache=cache)
    amap = layout.address_map
    a_set = (int(amap.starts[module.function("a").entry.gid]) // 64) % 4
    b_set = (int(amap.starts[module.function("b").entry.gid]) // 64) % 4
    # each function spans 2 of the 4 sets; non-overlap means colors differ
    # by exactly 2.
    assert a_set != b_set


def test_cold_functions_packed_densely(tiny_module):
    # a bundle in which nothing from leaf y executes.
    bundle = collect_trace(tiny_module, InputSpec("t", seed=0, max_blocks=2))
    layout = color_functions(tiny_module, bundle, cache=SMALL_CACHE)
    assert sorted(layout.address_map.order) == list(range(tiny_module.n_blocks))
