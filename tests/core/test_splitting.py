"""Unit tests for hot/cold splitting (repro.core.splitting)."""

import numpy as np
import pytest

from repro.core import hot_cold_order, hot_cold_split
from repro.engine import InputSpec, collect_trace


def test_cold_blocks_exiled(tiny_module, tiny_bundle):
    order = hot_cold_order(tiny_module, tiny_bundle)
    counts = np.bincount(tiny_bundle.bb_trace, minlength=tiny_module.n_blocks)
    executed = [g for g in order if counts[g] > 0]
    never = [g for g in order if counts[g] == 0]
    # all executed blocks precede all never-executed blocks.
    assert order == executed + never
    assert sorted(order) == list(range(tiny_module.n_blocks))


def test_hot_fraction_moves_threshold(tiny_module, tiny_bundle):
    counts = np.bincount(tiny_bundle.bb_trace, minlength=tiny_module.n_blocks)

    def hot_set(fraction):
        order = hot_cold_order(tiny_module, tiny_bundle, hot_fraction=fraction)
        threshold = max(1, int(np.ceil(fraction * counts.sum())))
        return {g for g in order if counts[g] >= threshold}

    lax = hot_set(0.0)
    strict = hot_set(0.3)
    assert strict <= lax
    assert len(strict) < len(lax)  # execution counts vary across blocks


def test_hot_fraction_validation(tiny_module, tiny_bundle):
    with pytest.raises(ValueError):
        hot_cold_order(tiny_module, tiny_bundle, hot_fraction=1.5)


def test_split_layout_is_legal(tiny_module, tiny_bundle):
    layout = hot_cold_split(tiny_module, tiny_bundle)
    assert sorted(layout.address_map.order) == list(range(tiny_module.n_blocks))
    assert "hotcold-split" in layout.note
    # entry stubs charged, like any BB reordering.
    assert layout.added_jumps >= tiny_module.n_functions


def test_declaration_order_preserved_within_classes(tiny_module):
    bundle = collect_trace(tiny_module, InputSpec("t", seed=3, max_blocks=1500))
    order = hot_cold_order(tiny_module, bundle)
    counts = np.bincount(bundle.bb_trace, minlength=tiny_module.n_blocks)
    hot = [g for g in order if counts[g] > 0]
    assert hot == sorted(hot)  # declaration order inside the hot region
