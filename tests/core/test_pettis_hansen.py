"""Unit and property tests for Pettis-Hansen ordering
(repro.core.pettis_hansen)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import pettis_hansen_order, transition_graph

traces = st.lists(st.integers(0, 8), min_size=0, max_size=200).map(
    lambda xs: np.array(xs, dtype=np.int64)
)


def test_transition_graph_counts():
    g = transition_graph(np.array([1, 2, 1, 3, 1, 2]))
    assert g[(1, 2)] == 3
    assert g[(1, 3)] == 2
    assert (2, 3) not in g


def test_transition_graph_trims():
    g = transition_graph(np.array([1, 1, 2, 2]))
    assert g == {(1, 2): 1}


def test_hot_chain_packed_adjacent():
    # a<->b alternate constantly; c appears rarely.
    t = np.array([1, 2] * 50 + [3] + [1, 2] * 50)
    order = pettis_hansen_order(t)
    assert abs(order.index(1) - order.index(2)) == 1
    # the heavy chain leads.
    assert order.index(3) == 2


def test_chain_merging_transitive():
    # a-b heavy, b-c medium: expect a single chain a b c (or reversed).
    t = np.array([1, 2] * 20 + [2, 3] * 10)
    order = pettis_hansen_order(t)
    ia, ib, ic = order.index(1), order.index(2), order.index(3)
    assert abs(ia - ib) == 1
    assert abs(ib - ic) == 1


def test_mid_chain_nodes_not_rejoined():
    # chain x-a-y forms first; a is then interior, so a-b cannot join and
    # b stays in its own chain.
    t = np.array(([7, 1, 8] * 30) + [1, 2] * 5)
    order = pettis_hansen_order(t)
    # 1's neighbours in the layout are from its heavy chain, not b=2.
    i1 = order.index(1)
    neighbours = {order[i1 - 1] if i1 > 0 else None, order[i1 + 1] if i1 + 1 < len(order) else None}
    assert 2 not in neighbours


def test_empty_and_singleton():
    assert pettis_hansen_order(np.empty(0, dtype=np.int64)) == []
    assert pettis_hansen_order(np.array([5, 5, 5])) == [5]


@settings(max_examples=100, deadline=None)
@given(traces)
def test_order_is_permutation_of_symbols(t):
    order = pettis_hansen_order(t)
    assert sorted(order) == sorted(set(t.tolist()))


@settings(max_examples=50, deadline=None)
@given(traces)
def test_deterministic(t):
    assert pettis_hansen_order(t) == pettis_hansen_order(t)
