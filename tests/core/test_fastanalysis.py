"""Parity matrix: repro.core.fastanalysis kernels vs the scalar oracles.

The contract being pinned (ISSUE 5 acceptance): kernel outputs are
**bit-identical** to ``AffinityAnalysis`` / ``build_trg`` — same coverage
histograms, same affine-pair sets at every w and coverage threshold, same
TRG edge weights and node order — across trace shapes, ``w_max``, time
horizons, and stack capacities.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.affinity import AffinityAnalysis, affine_pairs_naive
from repro.core.fastanalysis import (
    AffinityCoverage,
    affinity_coverage,
    analysis_from_coverage,
    build_trg_fast,
    coverage_from_analysis,
    trg_from_payload,
    trg_to_payload,
)
from repro.core.trg import build_trg

FIG1 = np.array([1, 4, 2, 4, 2, 3, 5, 1, 4])


def random_trace(seed: int, n: int, n_syms: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    if rng.random() < 0.5:
        # loop-heavy: repeated phase blocks interleaved with noise
        phase = rng.integers(0, n_syms, size=max(2, n_syms // 3))
        reps = int(np.ceil(n / phase.shape[0]))
        base = np.tile(phase, reps)[:n]
        noise = rng.integers(0, n_syms, size=n)
        mask = rng.random(n) < 0.3
        return np.where(mask, noise, base)
    return rng.integers(0, n_syms, size=n)


def assert_coverage_equal(kernel: AffinityCoverage, oracle: AffinityAnalysis):
    assert kernel.n_occ == oracle._n_occ
    assert kernel.first_occ == oracle._first_occ
    # The oracle keeps zero histograms for pairs whose every record was
    # later improved; both sides must agree on nonzero content exactly,
    # and on the key set.
    assert set(kernel.cov) == set(oracle._cov)
    for key, hist in kernel.cov.items():
        assert hist.dtype == np.int64
        np.testing.assert_array_equal(hist, oracle._cov[key], err_msg=str(key))


class TestAffinityParity:
    def test_fig1_trace(self):
        oracle = AffinityAnalysis(FIG1, w_max=4)
        kernel = affinity_coverage(FIG1, w_max=4)
        assert_coverage_equal(kernel, oracle)

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize(
        "n,n_syms", [(60, 5), (200, 12), (400, 30), (1000, 8)]
    )
    @pytest.mark.parametrize("w_max", [1, 2, 3, 8, 20])
    def test_randomized_matrix(self, seed, n, n_syms, w_max):
        t = random_trace(seed * 1000 + n, n, n_syms)
        oracle = AffinityAnalysis(t, w_max=w_max)
        kernel = affinity_coverage(t, w_max=w_max)
        assert_coverage_equal(kernel, oracle)

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("horizon", [0, 1, 3, 10, 50])
    def test_time_horizon(self, seed, horizon):
        t = random_trace(77 + seed, 300, 14)
        oracle = AffinityAnalysis(t, w_max=6, time_horizon=horizon)
        kernel = affinity_coverage(t, w_max=6, time_horizon=horizon)
        assert_coverage_equal(kernel, oracle)

    @pytest.mark.parametrize("seed", range(6))
    def test_affine_pairs_all_w_and_coverages(self, seed):
        t = random_trace(31 + seed, 250, 10)
        w_max = 12
        oracle = AffinityAnalysis(t, w_max=w_max)
        covg = affinity_coverage(t, w_max=w_max)
        for coverage in (1.0, 0.9, 0.5):
            o = AffinityAnalysis(t, w_max=w_max, coverage=coverage)
            k = analysis_from_coverage(t, covg, coverage=coverage)
            for w in range(2, w_max + 1):
                assert k.affine_pairs(w) == o.affine_pairs(w), (coverage, w)
        assert covg == coverage_from_analysis(oracle)

    @pytest.mark.parametrize("seed", range(3))
    def test_against_naive_definition(self, seed):
        t = random_trace(500 + seed, 80, 6)
        covg = affinity_coverage(t, w_max=6)
        k = analysis_from_coverage(t, covg)
        for w in (2, 4, 6):
            assert k.affine_pairs(w) == affine_pairs_naive(t, w)

    def test_queries_through_wrapper(self):
        t = random_trace(9, 150, 7)
        oracle = AffinityAnalysis(t, w_max=5)
        k = analysis_from_coverage(t, affinity_coverage(t, w_max=5))
        assert k.symbols == oracle.symbols
        for x in oracle.symbols:
            assert k.occurrences(x) == oracle.occurrences(x)
            assert k.first_occurrence(x) == oracle.first_occurrence(x)
            for y in oracle.symbols:
                for w in (2, 5):
                    assert k.covered(x, y, w) == oracle.covered(x, y, w)
                    assert k.is_affine(x, y, w) == oracle.is_affine(x, y, w)

    def test_degenerate_traces(self):
        for t in ([], [3], [3, 3, 3], [1, 2], [5, 5, 7, 7, 5]):
            arr = np.asarray(t, dtype=np.int64)
            oracle = AffinityAnalysis(arr, w_max=4) if len(t) else None
            kernel = affinity_coverage(arr, w_max=4)
            if oracle is not None:
                assert_coverage_equal(kernel, oracle)
            else:
                assert kernel.cov == {} and kernel.n_occ == {}

    def test_w_max_validation(self):
        with pytest.raises(ValueError):
            affinity_coverage(FIG1, w_max=0)

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("horizon", [None, 7])
    def test_sort_fallback_parity(self, seed, horizon, monkeypatch):
        """The sort-based merge (used when the linear-join scratch tables
        would not fit) is exact too — force it by shrinking the caps."""
        import repro.core.fastanalysis as fa

        t = random_trace(900 + seed, 250, 11)
        want = affinity_coverage(t, w_max=9, time_horizon=horizon)
        monkeypatch.setattr(fa, "_JOIN_TABLE_MAX", 0)
        monkeypatch.setattr(fa, "_PAIR_TABLE_MAX", 0)
        got = affinity_coverage(t, w_max=9, time_horizon=horizon)
        assert got == want
        oracle = AffinityAnalysis(t, w_max=9, time_horizon=horizon)
        assert_coverage_equal(got, oracle)

    def test_roundtrip_payload(self):
        t = random_trace(3, 200, 9)
        covg = affinity_coverage(t, w_max=7, time_horizon=25)
        back = AffinityCoverage.from_dict(covg.to_dict())
        assert back == covg
        # corruption raises, never silently misparses
        bad = covg.to_dict()
        bad["kind"] = "trg"
        with pytest.raises(ValueError):
            AffinityCoverage.from_dict(bad)
        short = covg.to_dict()
        for key in short["cov"]:
            short["cov"][key] = short["cov"][key][:-1]
        if short["cov"]:
            with pytest.raises(ValueError):
                AffinityCoverage.from_dict(short)


class TestTRGParity:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("n,n_syms", [(80, 6), (300, 15), (800, 40)])
    @pytest.mark.parametrize("window", [None, 1, 2, 3, 8, 64])
    def test_randomized_matrix(self, seed, n, n_syms, window):
        t = random_trace(seed * 7 + n, n, n_syms)
        oracle = build_trg(t, window_blocks=window)
        kernel = build_trg_fast(t, window_blocks=window)
        assert kernel.weights == oracle.weights
        assert kernel.nodes == oracle.nodes
        assert kernel.edges_by_weight() == oracle.edges_by_weight()

    def test_fig1_trace(self):
        for window in (None, 2, 3):
            oracle = build_trg(FIG1, window_blocks=window)
            kernel = build_trg_fast(FIG1, window_blocks=window)
            assert kernel.weights == oracle.weights
            assert kernel.nodes == oracle.nodes

    def test_degenerate_traces(self):
        for t in ([], [3], [3, 3, 3]):
            arr = np.asarray(t, dtype=np.int64)
            oracle = build_trg(arr)
            kernel = build_trg_fast(arr)
            assert kernel.weights == oracle.weights
            assert kernel.nodes == oracle.nodes

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            build_trg_fast(FIG1, window_blocks=0)

    @pytest.mark.parametrize("seed", range(3))
    def test_bincount_fallback_parity(self, seed, monkeypatch):
        """TRG edge aggregation via unique (pair table too large) matches
        the bincount fast path."""
        import repro.core.fastanalysis as fa

        t = random_trace(300 + seed, 400, 20)
        want = build_trg_fast(t, window_blocks=16)
        monkeypatch.setattr(fa, "_PAIR_TABLE_MAX", 0)
        got = build_trg_fast(t, window_blocks=16)
        assert got.weights == want.weights
        assert got.nodes == want.nodes

    def test_payload_roundtrip(self):
        t = random_trace(11, 200, 12)
        trg = build_trg_fast(t, window_blocks=8)
        back = trg_from_payload(trg_to_payload(trg, 8))
        assert back.weights == trg.weights
        assert back.nodes == trg.nodes
        assert back is not trg and back.weights is not trg.weights
        with pytest.raises(ValueError):
            trg_from_payload({"kind": "affinity"})
