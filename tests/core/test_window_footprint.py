"""window_footprint: parity with the sort-based definition + timing smoke.

The set-based rewrite (ISSUE 5 satellite) must count exactly what
``np.unique`` counted, and must not reintroduce a per-window sort — the
naive affinity oracle calls it per occurrence pair, so an O(n log n)
window cost makes the oracle unusable on the traces it exists to check.
"""

import time

import numpy as np
import pytest

from repro.core.affinity import window_footprint


def footprint_unique(trace: np.ndarray, i: int, j: int) -> int:
    lo, hi = (i, j) if i <= j else (j, i)
    return int(np.unique(trace[lo : hi + 1]).shape[0])


@pytest.mark.parametrize("seed", range(5))
def test_parity_with_unique(seed):
    rng = np.random.default_rng(seed)
    t = rng.integers(0, 12, size=120)
    idx = rng.integers(0, 120, size=(60, 2))
    for i, j in idx.tolist():
        assert window_footprint(t, i, j) == footprint_unique(t, i, j)


def test_order_of_endpoints_irrelevant():
    t = np.array([1, 4, 2, 4, 2, 3, 5, 1, 4])
    assert window_footprint(t, 0, 8) == window_footprint(t, 8, 0) == 5


def test_single_element_window():
    t = np.array([3, 3, 7])
    assert window_footprint(t, 1, 1) == 1


def test_timing_smoke():
    """Many small-window calls stay cheap (the oracle's access pattern).

    Pure smoke: generous bound, only catches a regression back to
    per-call sorting or similar pathology.
    """
    rng = np.random.default_rng(7)
    t = rng.integers(0, 50, size=5000)
    start = time.perf_counter()
    total = 0
    for i in range(0, 4900, 7):
        total += window_footprint(t, i, i + 40)
    elapsed = time.perf_counter() - start
    assert total > 0
    assert elapsed < 2.0
