"""Unit tests for the four optimizers (repro.core.optimizers)."""

import numpy as np
import pytest

from repro.cache import CacheConfig, PAPER_L1I, simulate
from repro.core import (
    OPTIMIZERS,
    Granularity,
    Model,
    OptimizerConfig,
    optimize,
)
from repro.engine import fetch_lines
from repro.ir import LayoutKind, baseline_layout


def test_registry_contains_the_four(tiny_module, tiny_bundle):
    assert set(OPTIMIZERS) == {
        "function-affinity",
        "bb-affinity",
        "function-trg",
        "bb-trg",
    }
    for name, optimizer in OPTIMIZERS.items():
        layout = optimizer(tiny_module, tiny_bundle, OptimizerConfig(w_max=8))
        expected = (
            LayoutKind.FUNCTION if name.startswith("function") else LayoutKind.BASIC_BLOCK
        )
        assert layout.kind is expected
        assert sorted(layout.address_map.order) == list(range(tiny_module.n_blocks))
        assert name.split("-")[1][:3] in layout.note[:12] or layout.note


def test_function_layout_keeps_functions_contiguous(tiny_module, tiny_bundle):
    layout = OPTIMIZERS["function-affinity"](tiny_module, tiny_bundle, OptimizerConfig(w_max=8))
    order = layout.address_map.order
    func_of = tiny_module.function_of_gid()
    runs = [func_of[g] for g in order]
    # each function name appears as one contiguous run.
    seen = set()
    prev = None
    for name in runs:
        if name != prev:
            assert name not in seen, f"function {name} split in layout"
            seen.add(name)
        prev = name


def test_optimizers_deterministic(tiny_module, tiny_bundle):
    cfg = OptimizerConfig(w_max=8)
    for name, optimizer in OPTIMIZERS.items():
        o1 = optimizer(tiny_module, tiny_bundle, cfg)
        o2 = optimizer(tiny_module, tiny_bundle, cfg)
        assert o1.address_map.order == o2.address_map.order


def test_unknown_model_rejected(tiny_module, tiny_bundle):
    with pytest.raises(ValueError):
        optimize(tiny_module, tiny_bundle, Granularity.BASIC_BLOCK, "magic")


def test_affinity_groups_phase_correlated_halves(tiny_module, tiny_bundle):
    """Figure 3 scenario: the phase-correlated halves of leaves x and y
    must land adjacently under BB affinity, unlike in declaration order."""
    cfg = OptimizerConfig(w_max=8)
    layout = optimize(tiny_module, tiny_bundle, Granularity.BASIC_BLOCK, Model.AFFINITY, cfg)
    order = layout.address_map.order
    pos = {g: i for i, g in enumerate(order)}
    xa = tiny_module.function("x").block("a").gid
    ya = tiny_module.function("y").block("a").gid
    xb = tiny_module.function("x").block("b").gid
    yb = tiny_module.function("y").block("b").gid
    # the hot 'a' halves cluster and the cold 'b' halves cluster; the two
    # clusters are not interleaved.
    da = abs(pos[xa] - pos[ya])
    db = abs(pos[xb] - pos[yb])
    cross = abs(pos[xa] - pos[yb])
    assert da < cross or db < cross


def test_bb_affinity_reduces_misses_on_structured_workload():
    from repro.workloads.generator import WorkloadSpec, build_program
    from repro.engine import collect_trace

    spec = WorkloadSpec(
        name="t",
        seed=9,
        n_stages=10,
        leaves_per_stage=8,
        hot_block_instr=(4, 14),
        test_blocks=30_000,
        ref_blocks=60_000,
        phase_stage_split=True,
    )
    module = build_program(spec)
    test = collect_trace(module, spec.test_input())
    ref = collect_trace(module, spec.ref_input())
    cache = CacheConfig(size_bytes=8 * 1024, assoc=4, line_bytes=64)
    base = baseline_layout(module)
    base_misses = simulate(
        fetch_lines(ref.bb_trace, base.address_map, 64), cache
    ).misses
    cfg = OptimizerConfig(cache=cache)
    layout = OPTIMIZERS["bb-affinity"](module, test, cfg)
    opt_misses = simulate(
        fetch_lines(ref.bb_trace, layout.address_map, 64), cache
    ).misses
    assert opt_misses < base_misses


def test_prune_k_limits_model_input(tiny_module, tiny_bundle):
    # prune_k=1 keeps only the most popular block; the rest fall back to
    # declaration order, still a legal full layout.
    cfg = OptimizerConfig(w_max=4, prune_k=1)
    layout = optimize(
        tiny_module, tiny_bundle, Granularity.BASIC_BLOCK, Model.AFFINITY, cfg
    )
    assert sorted(layout.address_map.order) == list(range(tiny_module.n_blocks))


def test_config_w_values():
    cfg = OptimizerConfig(w_min=3, w_max=5)
    assert list(cfg.w_values()) == [3, 4, 5]
    assert cfg.cache == PAPER_L1I
