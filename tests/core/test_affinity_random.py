"""Seeded randomized cross-check of the one-pass affinity analysis.

Satellite of PR 3: :meth:`AffinityAnalysis.affine_pairs` must agree with
the direct Definition-3 oracle ``affine_pairs_naive`` on arbitrary
traces, not just the handcrafted ones in test_affinity.py.  Seeds are
fixed so a disagreement is a deterministic, bisectable failure.
"""

import numpy as np
import pytest

from repro.core import AffinityAnalysis, affine_pairs_naive

SEEDS = (0, 1, 7, 42, 1234)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("w", (2, 4, 6))
def test_affine_pairs_match_naive_on_random_traces(seed, w):
    rng = np.random.default_rng(seed)
    trace = rng.integers(0, 8, 120)
    analysis = AffinityAnalysis(trace, w_max=8)
    assert analysis.affine_pairs(w) == affine_pairs_naive(trace, w)


@pytest.mark.parametrize("seed", SEEDS)
def test_affine_pairs_match_naive_on_skewed_traces(seed):
    """Zipf-ish block popularity — hot pairs plus a long rare tail."""
    rng = np.random.default_rng(seed)
    blocks = np.arange(10)
    weights = 1.0 / (blocks + 1.0)
    trace = rng.choice(blocks, size=150, p=weights / weights.sum())
    analysis = AffinityAnalysis(trace, w_max=8)
    for w in (2, 3, 5, 8):
        assert analysis.affine_pairs(w) == affine_pairs_naive(trace, w), (seed, w)


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_affine_pairs_match_naive_with_phase_changes(seed):
    """Two phases touching disjoint block sets, concatenated — exercises
    occurrence streaks that start and stop."""
    rng = np.random.default_rng(seed)
    phase_a = rng.integers(0, 4, 60)
    phase_b = rng.integers(4, 8, 60)
    trace = np.concatenate([phase_a, phase_b, phase_a])
    analysis = AffinityAnalysis(trace, w_max=8)
    for w in (2, 4, 6):
        assert analysis.affine_pairs(w) == affine_pairs_naive(trace, w), (seed, w)
