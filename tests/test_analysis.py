"""Unit tests for layout quality analysis (repro.analysis)."""

import numpy as np
import pytest

from repro.analysis import analyze_layout, hot_blocks
from repro.cache import CacheConfig, PAPER_L1I
from repro.core import OptimizerConfig, bb_affinity
from repro.engine import InputSpec, collect_trace
from repro.ir import baseline_layout


def test_hot_blocks_threshold(tiny_module, tiny_bundle):
    all_executed = hot_blocks(tiny_module, tiny_bundle, hot_fraction=0.0)
    counts = np.bincount(tiny_bundle.bb_trace, minlength=tiny_module.n_blocks)
    assert set(all_executed) == set(np.flatnonzero(counts > 0).tolist())
    few = hot_blocks(tiny_module, tiny_bundle, hot_fraction=0.3)
    assert set(few) <= set(all_executed)
    assert len(few) < len(all_executed)


def test_quality_fields_sane(tiny_module, tiny_bundle):
    q = analyze_layout(
        tiny_module, tiny_bundle, baseline_layout(tiny_module).address_map, PAPER_L1I
    )
    assert 0 < q.line_utilization <= 1.0
    assert q.n_hot_blocks > 0
    assert q.n_hot_lines > 0
    assert q.set_imbalance >= 0.0
    assert 0.0 <= q.overcommitted_fraction <= 1.0


def test_no_hot_blocks_degenerate(tiny_module, tiny_bundle):
    q = analyze_layout(
        tiny_module,
        tiny_bundle,
        baseline_layout(tiny_module).address_map,
        PAPER_L1I,
        hot_fraction=1.0,  # nothing covers 100% of executions
    )
    assert q.n_hot_blocks == 0
    assert q.line_utilization == 1.0


def test_optimizer_improves_utilization_on_suite_program():
    from repro.workloads import build

    prog, module = build("syn-sjeng", ref_blocks=20_000, test_blocks=15_000)
    bundle = collect_trace(module, prog.spec.test_input())
    cache = PAPER_L1I
    base_q = analyze_layout(
        module, bundle, baseline_layout(module).address_map, cache
    )
    opt = bb_affinity(module, bundle, OptimizerConfig())
    opt_q = analyze_layout(module, bundle, opt.address_map, cache)
    # packing hot blocks must raise line utilization.
    assert opt_q.line_utilization > base_q.line_utilization
    # and the footprint (touched hot lines) must shrink.
    assert opt_q.n_hot_lines <= base_q.n_hot_lines


def test_set_imbalance_detects_pathological_placement():
    """Blocks placed a full cache apart land in the same set."""
    from repro.ir import ModuleBuilder, reorder_basic_blocks

    cache = CacheConfig(size_bytes=1024, assoc=1, line_bytes=64)  # 16 sets
    b = ModuleBuilder("m")
    f = b.function("main")
    # 17 hot blocks of exactly one line each.
    for i in range(17):
        nxt = f"b{i + 1}" if i < 16 else None
        if nxt:
            f.block(f"b{i}", 16).jump(nxt)
        else:
            f.block(f"b{i}", 16).exit()
    module = b.build()
    trace = np.tile(np.arange(17), 50).astype(np.int32)

    class FakeBundle:
        bb_trace = trace

    dense = baseline_layout(module).address_map
    q = analyze_layout(module, FakeBundle, dense, cache)
    # 17 one-line blocks over 16 sets: nearly perfectly balanced.
    assert q.set_imbalance < 0.5
    assert q.line_utilization == 1.0
