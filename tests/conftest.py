"""Shared fixtures: small IR modules and traces used across test packages."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import InputSpec, collect_trace
from repro.ir import ModuleBuilder


def build_tiny_module():
    """main loops calling two leaf functions; leaves have two halves each.

    This is the paper's Fig. 3 shape: per invocation only one half of each
    leaf executes, and the halves are phase-correlated across leaves.
    """
    b = ModuleBuilder("tiny")
    f = b.function("main")
    f.block("entry", 3).loop("callx", "done", trips=300)
    f.block("callx", 2).call("x", return_to="cally")
    f.block("cally", 2).call("y", return_to="entry")
    f.block("done", 1).exit()
    for fname in ("x", "y"):
        g = b.function(fname)
        g.block("e", 4).branch(
            "a", "b", taken_prob=0.97, phase_prob=0.03, phase_period=128
        )
        g.block("a", 6).ret()
        g.block("b", 6).ret()
    return b.build()


def build_branchy_module():
    """A single function with a switch and nested loops (CFG variety)."""
    b = ModuleBuilder("branchy")
    f = b.function("main")
    f.block("entry", 2).loop("sel", "end", trips=200)
    f.block("sel", 3).switch(["p", "q", "r"], [0.6, 0.3, 0.1])
    f.block("p", 5).jump("entry")
    f.block("q", 7).branch("q2", "entry", taken_prob=0.5)
    f.block("q2", 4).jump("entry")
    f.block("r", 9).jump("entry")
    f.block("end", 1).exit()
    return b.build()


@pytest.fixture
def tiny_module():
    return build_tiny_module()


@pytest.fixture
def branchy_module():
    return build_branchy_module()


@pytest.fixture
def tiny_bundle(tiny_module):
    return collect_trace(tiny_module, InputSpec("test", seed=7, max_blocks=4000))


@pytest.fixture
def branchy_bundle(branchy_module):
    return collect_trace(branchy_module, InputSpec("test", seed=9, max_blocks=3000))


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
