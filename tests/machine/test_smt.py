"""Unit tests for the SMT co-run model (repro.machine.smt)."""

import pytest

from repro.machine import ThreadCost, TimingParams, corun_pair


def cost(compute, stall, icache=0.0):
    return ThreadCost(
        instructions=1000,
        compute_cycles=compute,
        stall_cycles=stall,
        icache_cycles=icache,
    )


NO_COUPLING = TimingParams(smt_contention=1.0, smt_fetch_coupling=0.0)


def test_pure_compute_pair_has_no_throughput_gain():
    # no stalls to overlap: the core-capacity floor makes the co-run take
    # as long as running both back to back.
    a = cost(1000.0, 0.0)
    timing = corun_pair((a, a), (a, a), NO_COUPLING)
    assert timing.makespan == pytest.approx(2000.0)
    assert timing.throughput_improvement == pytest.approx(0.0, abs=1e-6)


def test_stall_heavy_pair_overlaps_well():
    a = cost(200.0, 800.0)
    timing = corun_pair((a, a), (a, a), NO_COUPLING)
    assert timing.throughput_improvement > 0.5
    assert timing.corun_slowdown(0) < 1.3


def test_corun_slowdown_at_least_one():
    a = cost(500.0, 500.0)
    b = cost(700.0, 300.0)
    timing = corun_pair((a, b), (a, b), NO_COUPLING)
    assert timing.corun_slowdown(0) >= 1.0
    assert timing.corun_slowdown(1) >= 1.0


def test_makespan_with_asymmetric_lengths():
    short = cost(100.0, 100.0)
    long_ = cost(1000.0, 1000.0)
    timing = corun_pair((short, long_), (short, long_), NO_COUPLING)
    # makespan at least the longer solo time, at most the serial sum.
    assert timing.makespan >= long_.total_cycles
    assert timing.makespan <= short.total_cycles + long_.total_cycles


def test_fetch_coupling_slows_peer():
    params = TimingParams(smt_contention=1.0, smt_fetch_coupling=1.0)
    a = cost(500.0, 500.0, icache=400.0)
    b = cost(500.0, 500.0, icache=0.0)
    with_coupling = corun_pair((a, b), (a, b), params)
    without = corun_pair((a, b), (a, b), NO_COUPLING)
    # b pays for a's instruction misses only when coupling is on.
    assert with_coupling.corun_cycles[1] > without.corun_cycles[1]


def test_throughput_metric_against_hand_computation():
    a = cost(500.0, 500.0)
    timing = corun_pair((a, a), (a, a), NO_COUPLING)
    # symmetric: T = 500(1+u) + 500, u = 500/T -> T^2 = 1000T - ... solve:
    # T = 500 + 250000/T + 500 -> T^2 - 1000T - 250000 = 0
    import math

    t = (1000 + math.sqrt(1000**2 + 4 * 250000)) / 2
    assert timing.corun_cycles[0] == pytest.approx(t, rel=1e-6)
    assert timing.makespan == pytest.approx(t, rel=1e-6)
    assert timing.throughput_improvement == pytest.approx(2000 / t - 1, rel=1e-6)
