"""Unit tests for the PAPI substitute (repro.machine.counters)."""

import numpy as np
import pytest

from repro.cache import PAPER_L1I, simulate
from repro.machine import measure_corun, measure_solo


def stream(seed, lo, hi, n=4000):
    return np.random.default_rng(seed).integers(lo, hi, n)


def test_noiseless_solo_matches_prefetch_simulation():
    lines = stream(1, 0, 700)
    reading = measure_solo(lines, 100_000, PAPER_L1I, noise_sigma=0.0)
    expected = simulate(lines, PAPER_L1I, prefetch=True).misses
    assert reading.icache_misses == expected
    assert reading.instructions == 100_000
    assert reading.miss_ratio == pytest.approx(expected / 100_000)


def test_measurement_deterministic():
    lines = stream(2, 0, 700)
    r1 = measure_solo(lines, 50_000, PAPER_L1I, measurement_id="x")
    r2 = measure_solo(lines, 50_000, PAPER_L1I, measurement_id="x")
    assert r1 == r2


def test_noise_is_small_and_id_dependent():
    lines = stream(3, 0, 700)
    base = measure_solo(lines, 50_000, PAPER_L1I, noise_sigma=0.0)
    a = measure_solo(lines, 50_000, PAPER_L1I, noise_sigma=0.02, measurement_id="a")
    b = measure_solo(lines, 50_000, PAPER_L1I, noise_sigma=0.02, measurement_id="b")
    assert a != b
    for reading in (a, b):
        assert abs(reading.icache_misses - base.icache_misses) < 0.2 * base.icache_misses


def test_corun_readings_normalize_to_one_pass():
    a = stream(4, 0, 500, 1000)
    b = stream(5, 1000, 1500, 5000)
    readings = measure_corun(
        [a, b], [10_000, 50_000], PAPER_L1I, noise_sigma=0.0
    )
    assert len(readings) == 2
    assert readings[0].instructions == 10_000
    # thread 0 wrapped several times; misses scaled back to one pass must
    # stay below one miss per stream entry.
    assert readings[0].icache_misses <= a.shape[0]


def test_corun_validation():
    with pytest.raises(ValueError):
        measure_corun([np.array([1])], [1, 2], PAPER_L1I)


def test_zero_instruction_ratio():
    from repro.machine import CounterReading

    assert CounterReading(0, 0).miss_ratio == 0.0
