"""Unit tests for the CPI model (repro.machine.timing)."""

import pytest

from repro.machine import ThreadCost, TimingParams, speedup, thread_cost


def test_cycle_accounting():
    params = TimingParams(base_cpi=1.0, icache_miss_penalty=10.0)
    cost = thread_cost(1000, icache_misses=50, data_cpi=0.5, params=params)
    assert cost.compute_cycles == 1000.0
    assert cost.icache_cycles == 500.0
    assert cost.stall_cycles == 500.0 + 500.0
    assert cost.total_cycles == 2000.0
    assert cost.cpi == pytest.approx(2.0)
    assert cost.compute_fraction == pytest.approx(0.5)


def test_zero_instructions():
    cost = ThreadCost(instructions=0, compute_cycles=0, stall_cycles=0)
    assert cost.cpi == 0.0
    assert cost.compute_fraction == 0.0


def test_validation():
    with pytest.raises(ValueError):
        thread_cost(-1, 0, 0.5)
    with pytest.raises(ValueError):
        thread_cost(10, -1, 0.5)
    with pytest.raises(ValueError):
        thread_cost(10, 0, -0.5)


def test_miss_reduction_gives_small_speedup_when_data_bound():
    """The paper's headline relationship: halving instruction misses moves
    end-to-end time by only a few percent on a data-bound program."""
    params = TimingParams()
    base = thread_cost(1_000_000, 10_000, data_cpi=1.0, params=params)
    opt = thread_cost(1_000_000, 5_000, data_cpi=1.0, params=params)
    s = speedup(base.total_cycles, opt.total_cycles)
    assert 1.0 < s < 1.05


def test_speedup_validation():
    with pytest.raises(ValueError):
        speedup(10.0, 0.0)
    assert speedup(110.0, 100.0) == pytest.approx(1.1)
