"""Unit and property tests for co-scheduling (repro.machine.scheduler)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.scheduler import all_pairings, best_pairing, greedy_pairing


def test_all_pairings_count():
    # (2k-1)!! matchings.
    assert len(list(all_pairings(list("abcd")))) == 3
    assert len(list(all_pairings(list("abcdef")))) == 15
    assert len(list(all_pairings(list("abcdefgh")))) == 105
    assert list(all_pairings([])) == [()]


def test_all_pairings_are_matchings():
    items = list("abcdef")
    for pairing in all_pairings(items):
        used = [x for pair in pairing for x in pair]
        assert sorted(used) == sorted(items)


def test_odd_input_rejected():
    with pytest.raises(ValueError):
        list(all_pairings(["a", "b", "c"]))
    with pytest.raises(ValueError):
        greedy_pairing(["a"], lambda a, b: 1.0)


def test_best_pairing_exact_on_known_instance():
    # costs designed so the optimum is (a,b) + (c,d) = 1 + 1 = 2.
    cost_table = {
        frozenset("ab"): 1.0,
        frozenset("cd"): 1.0,
        frozenset("ac"): 10.0,
        frozenset("bd"): 10.0,
        frozenset("ad"): 3.0,
        frozenset("bc"): 3.0,
    }

    def cost(a, b):
        return cost_table[frozenset((a, b))]

    best = best_pairing(list("abcd"), cost)
    assert best.cost == pytest.approx(2.0)
    assert {frozenset(p) for p in best.pairs} == {frozenset("ab"), frozenset("cd")}


def test_greedy_can_be_suboptimal_but_valid():
    # greedy takes (a,b)=0 then is stuck with (c,d)=10; optimal is 1+1=2.
    cost_table = {
        frozenset("ab"): 0.0,
        frozenset("cd"): 10.0,
        frozenset("ac"): 1.0,
        frozenset("bd"): 1.0,
        frozenset("ad"): 5.0,
        frozenset("bc"): 5.0,
    }

    def cost(a, b):
        return cost_table[frozenset((a, b))]

    greedy = greedy_pairing(list("abcd"), cost)
    exact = best_pairing(list("abcd"), cost)
    assert greedy.cost == pytest.approx(10.0)
    assert exact.cost == pytest.approx(2.0)
    assert greedy.cost >= exact.cost


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.floats(0.1, 100.0), min_size=15, max_size=15)
)
def test_greedy_never_beats_exact(costs):
    items = list("abcdef")
    table = {}
    it = iter(costs)
    for a, b in itertools.combinations(items, 2):
        table[frozenset((a, b))] = next(it)

    def cost(a, b):
        return table[frozenset((a, b))]

    exact = best_pairing(items, cost)
    greedy = greedy_pairing(items, cost)
    assert greedy.cost >= exact.cost - 1e-9
    # both produce valid matchings.
    for pairing in (exact, greedy):
        used = [x for pair in pairing.pairs for x in pair]
        assert sorted(used) == items


def _shuffles(items, n=6):
    import random

    out = []
    for seed in range(n):
        rng = random.Random(seed)
        perm = items[:]
        rng.shuffle(perm)
        out.append(perm)
    return out


def test_best_pairing_shuffle_invariant():
    """Input order must not change the answer: the canonical tie-break
    makes best_pairing a pure function of the item *set* and costs."""
    items = list("abcdef")
    table = {}
    import random

    rng = random.Random(99)
    for a, b in itertools.combinations(items, 2):
        table[frozenset((a, b))] = rng.choice([1.0, 2.0, 3.0])  # many ties

    def cost(a, b):
        return table[frozenset((a, b))]

    reference = best_pairing(items, cost)
    for perm in _shuffles(items):
        got = best_pairing(perm, cost)
        assert got.pairs == reference.pairs
        assert got.cost == reference.cost


def test_greedy_pairing_shuffle_invariant():
    items = list("abcdefgh")
    table = {}
    import random

    rng = random.Random(7)
    for a, b in itertools.combinations(items, 2):
        table[frozenset((a, b))] = rng.choice([1.0, 2.0])

    def cost(a, b):
        return table[frozenset((a, b))]

    reference = greedy_pairing(items, cost)
    for perm in _shuffles(items):
        got = greedy_pairing(perm, cost)
        assert got.pairs == reference.pairs
        assert got.cost == reference.cost


def test_constant_cost_tie_breaks_canonical():
    """All matchings cost the same: both matchers must emit the unique
    lexicographically-smallest canonical pairing, not an input-order
    artifact."""
    items = list("dcba")
    expected = (("a", "b"), ("c", "d"))
    for match in (best_pairing, greedy_pairing):
        result = match(items, lambda a, b: 1.0)
        assert result.pairs == expected
        # pairs are internally sorted and globally sorted.
        assert all(a < b for a, b in result.pairs)
        assert list(result.pairs) == sorted(result.pairs)
