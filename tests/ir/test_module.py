"""Unit tests for the IR type layer (repro.ir.module)."""

import pytest

from repro.ir import (
    INSTRUCTION_BYTES,
    BasicBlock,
    BlockRef,
    Branch,
    Call,
    Exit,
    Function,
    Jump,
    LoopBranch,
    Module,
    Return,
    Switch,
)


def make_module():
    f = Function(
        "main",
        [
            BasicBlock("entry", 4, Jump("body")),
            BasicBlock("body", 6, Call("helper", "entry")),
        ],
    )
    g = Function(
        "helper",
        [
            BasicBlock("e", 2, Branch("a", "b", 0.3)),
            BasicBlock("a", 3, Return()),
            BasicBlock("b", 5, Return()),
        ],
    )
    return Module("m", [f, g], entry="main").seal()


class TestTerminators:
    def test_jump_targets_and_fallthrough(self):
        t = Jump("x")
        assert t.local_targets() == ("x",)
        assert t.fallthrough_target() == "x"
        assert t.callee() is None

    def test_branch_fallthrough_is_else(self):
        t = Branch("then", "els", 0.5)
        assert set(t.local_targets()) == {"then", "els"}
        assert t.fallthrough_target() == "els"

    def test_switch_requires_aligned_weights(self):
        with pytest.raises(ValueError):
            Switch(("a", "b"), (1.0,))
        with pytest.raises(ValueError):
            Switch((), ())
        assert Switch(("a",), (1.0,)).fallthrough_target() is None

    def test_call_carries_callee_and_return(self):
        t = Call("f", "after")
        assert t.callee() == "f"
        assert t.local_targets() == ("after",)
        assert t.fallthrough_target() == "after"

    def test_return_and_exit_have_no_targets(self):
        assert Return().local_targets() == ()
        assert Exit().local_targets() == ()

    def test_loop_trips_validated(self):
        with pytest.raises(ValueError):
            LoopBranch("b", "e", trips=0)
        t = LoopBranch("b", "e", trips=3)
        assert t.fallthrough_target() == "e"


class TestBasicBlock:
    def test_requires_at_least_terminator(self):
        with pytest.raises(ValueError):
            BasicBlock("x", 0, Return())

    def test_size_bytes(self):
        assert BasicBlock("x", 5, Return()).size_bytes == 5 * INSTRUCTION_BYTES


class TestFunction:
    def test_rejects_duplicate_block_names(self):
        with pytest.raises(ValueError):
            Function("f", [BasicBlock("x", 1, Return()), BasicBlock("x", 1, Return())])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Function("f", [])

    def test_entry_is_first_block(self):
        m = make_module()
        assert m.function("main").entry.name == "entry"

    def test_sizes_aggregate(self):
        m = make_module()
        main = m.function("main")
        assert main.n_instr == 10
        assert main.size_bytes == 40
        assert len(main) == 2


class TestModule:
    def test_seal_assigns_dense_gids_in_declaration_order(self):
        m = make_module()
        gids = [b.gid for b in m.iter_blocks()]
        assert gids == list(range(m.n_blocks))
        assert m.block_by_gid(0).name == "entry"
        assert m.block_by_gid(2).func == "helper"

    def test_seal_is_idempotent(self):
        m = make_module()
        before = [b.gid for b in m.iter_blocks()]
        m.seal()
        assert [b.gid for b in m.iter_blocks()] == before

    def test_rejects_duplicate_functions(self):
        f1 = Function("f", [BasicBlock("e", 1, Return())])
        f2 = Function("f", [BasicBlock("e", 1, Return())])
        with pytest.raises(ValueError):
            Module("m", [f1, f2], entry="f")

    def test_rejects_missing_entry(self):
        f = Function("f", [BasicBlock("e", 1, Return())])
        with pytest.raises(ValueError):
            Module("m", [f], entry="main")

    def test_unsealed_use_raises(self):
        f = Function("f", [BasicBlock("e", 1, Exit())])
        m = Module("m", [f], entry="f")
        with pytest.raises(RuntimeError):
            m.block_by_gid(0)

    def test_block_lookup_by_ref(self):
        m = make_module()
        blk = m.block(BlockRef("helper", "a"))
        assert blk.n_instr == 3
        assert str(BlockRef("helper", "a")) == "helper:a"

    def test_metrics(self):
        m = make_module()
        assert m.n_functions == 2
        assert m.n_blocks == 5
        assert m.n_instr == 20
        assert m.size_bytes == 80
        assert m.block_sizes() == [16, 24, 8, 12, 20]
        assert m.function_of_gid() == ["main", "main", "helper", "helper", "helper"]
