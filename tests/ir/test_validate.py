"""Unit tests for the IR verifier (repro.ir.validate)."""

import pytest

from repro.ir import (
    BasicBlock,
    Branch,
    Call,
    Exit,
    Function,
    Jump,
    Module,
    Return,
    Switch,
    ValidationError,
    validate_module,
)


def build(blocks_main, extra_functions=()):
    funcs = [Function("main", blocks_main), *extra_functions]
    return Module("m", funcs, entry="main").seal()


def test_valid_module_passes():
    m = build([BasicBlock("e", 1, Exit())])
    assert validate_module(m) == []


def test_unsealed_module_rejected():
    m = Module("m", [Function("main", [BasicBlock("e", 1, Exit())])], entry="main")
    with pytest.raises(ValidationError):
        validate_module(m)


def test_unknown_local_target():
    m = build([BasicBlock("e", 1, Jump("missing"))])
    with pytest.raises(ValidationError, match="unknown block"):
        validate_module(m)


def test_unknown_callee():
    m = build([
        BasicBlock("e", 1, Call("ghost", "out")),
        BasicBlock("out", 1, Exit()),
    ])
    with pytest.raises(ValidationError, match="unknown function"):
        validate_module(m)


def test_branch_probability_range():
    m = build([
        BasicBlock("e", 1, Branch("a", "b", taken_prob=1.5)),
        BasicBlock("a", 1, Exit()),
        BasicBlock("b", 1, Exit()),
    ])
    with pytest.raises(ValidationError, match="probability"):
        validate_module(m)


def test_phase_prob_requires_period():
    m = build([
        BasicBlock("e", 1, Branch("a", "b", 0.5, phase_prob=0.9, phase_period=0)),
        BasicBlock("a", 1, Exit()),
        BasicBlock("b", 1, Exit()),
    ])
    with pytest.raises(ValidationError, match="phase_period"):
        validate_module(m)


def test_switch_weights_validated():
    m = build([
        BasicBlock("e", 1, Switch(("a", "b"), (0.0, 0.0))),
        BasicBlock("a", 1, Exit()),
        BasicBlock("b", 1, Exit()),
    ])
    with pytest.raises(ValidationError, match="weights"):
        validate_module(m)


def test_duplicate_function_names_rejected():
    # Function/Module constructors catch duplicates at build time; the
    # verifier must also catch modules mutated after construction.
    m = build([BasicBlock("e", 1, Exit())])
    m.functions.append(Function("main", [BasicBlock("e2", 1, Exit())]))
    m._sealed = False
    m.seal()
    with pytest.raises(ValidationError, match="duplicate function name"):
        validate_module(m)


def test_duplicate_block_names_rejected():
    m = build([BasicBlock("e", 1, Exit())])
    m.function("main").blocks.append(BasicBlock("e", 1, Exit()))
    m._sealed = False
    m.seal()
    with pytest.raises(ValidationError, match="duplicate block name"):
        validate_module(m)


def test_unreachable_blocks_are_warnings_not_errors():
    m = build([
        BasicBlock("e", 1, Exit()),
        BasicBlock("island", 2, Exit()),
    ])
    warnings = validate_module(m)
    assert any("island" in w for w in warnings)
