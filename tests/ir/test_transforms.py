"""Unit tests for layout transformations (repro.ir.transforms)."""

import pytest

from repro.ir import (
    LayoutError,
    LayoutKind,
    ModuleBuilder,
    baseline_layout,
    reorder_basic_blocks,
    reorder_functions,
)
from repro.lint.integrity import audit_function_order, audit_gid_order


def make_module():
    b = ModuleBuilder("m")
    f = b.function("main")
    f.block("entry", 2).call("f1", return_to="next")
    f.block("next", 3).call("f2", return_to="end")
    f.block("end", 1).exit()
    for name in ("f1", "f2", "f3"):
        g = b.function(name)
        g.block("e", 4).branch("a", "b", 0.5)
        g.block("a", 5).ret()
        g.block("b", 6).ret()
    return b.build()


def test_baseline_kind_and_coverage():
    m = make_module()
    lay = baseline_layout(m)
    assert lay.kind is LayoutKind.ORIGINAL
    assert sorted(lay.address_map.order) == list(range(m.n_blocks))


def test_function_reorder_keeps_blocks_contiguous():
    m = make_module()
    lay = reorder_functions(m, ["f2", "main"])
    order = lay.address_map.order
    # f2's blocks lead.
    f2_gids = [blk.gid for blk in m.function("f2").blocks]
    assert order[: len(f2_gids)] == f2_gids
    # unmentioned functions appended in declaration order.
    assert set(order) == set(range(m.n_blocks))
    assert lay.kind is LayoutKind.FUNCTION


def test_function_reorder_rejects_duplicates():
    m = make_module()
    with pytest.raises(ValueError):
        reorder_functions(m, ["f1", "f1"])


def test_bb_reorder_partial_order_appends_cold_blocks():
    m = make_module()
    hot = [m.function("f1").block("a").gid, m.function("f2").block("b").gid]
    lay = reorder_basic_blocks(m, hot, note="test")
    order = lay.address_map.order
    assert order[:2] == hot
    assert sorted(order) == list(range(m.n_blocks))
    assert lay.kind is LayoutKind.BASIC_BLOCK
    assert lay.note == "test"


def test_bb_reorder_validates_gids():
    m = make_module()
    with pytest.raises(ValueError):
        reorder_basic_blocks(m, [999])
    with pytest.raises(ValueError):
        reorder_basic_blocks(m, [1, 1])


def test_bb_reorder_charges_entry_stubs():
    m = make_module()
    base = baseline_layout(m)
    moved = reorder_basic_blocks(m, list(base.address_map.order))
    # identical order, but BB reordering pays one stub per function.
    assert moved.added_jumps >= base.added_jumps + m.n_functions


def test_transform_errors_are_layout_errors_with_diagnostics():
    # Transforms and the L006 linter rule share the same audits, so the
    # eager rejection carries the identical diagnostic the linter reports.
    m = make_module()
    with pytest.raises(LayoutError) as exc:
        reorder_basic_blocks(m, [999])
    expected = audit_gid_order(m, [999])
    assert [d.message for d in exc.value.diagnostics] == [d.message for d in expected]
    # the diagnostic text leads; taxonomy context tags ride behind it.
    assert exc.value.message == expected[0].message
    assert str(exc.value).startswith(expected[0].message)

    with pytest.raises(LayoutError) as exc:
        reorder_functions(m, ["f1", "f1"])
    expected = audit_function_order(m, ["f1", "f1"])
    assert [d.message for d in exc.value.diagnostics] == [d.message for d in expected]


def test_function_reorder_rejects_unknown_function():
    m = make_module()
    with pytest.raises(LayoutError, match="not defined"):
        reorder_functions(m, ["ghost"])


def test_layout_error_is_value_error():
    # Compatibility: callers that caught the transforms' original bare
    # ValueError keep working.
    assert issubclass(LayoutError, ValueError)


def test_total_bytes_consistency():
    m = make_module()
    lay = baseline_layout(m)
    assert lay.total_bytes == lay.address_map.total_bytes
    assert lay.added_jumps == lay.address_map.added_jumps
