"""Unit tests for gap-capable placement (repro.ir.codegen.place_blocks)."""

import pytest

from repro.ir import INSTRUCTION_BYTES, ModuleBuilder
from repro.ir.codegen import place_blocks


def chain_module(sizes=(4, 6, 2)):
    b = ModuleBuilder("m")
    f = b.function("main")
    names = [f"b{i}" for i in range(len(sizes))]
    for i, n in enumerate(sizes):
        if i + 1 < len(sizes):
            f.block(names[i], n).jump(names[i + 1])
        else:
            f.block(names[i], n).exit()
    return b.build()


def test_dense_placement_matches_chain():
    m = chain_module()
    starts = {0: 0, 1: 16, 2: 40}
    amap = place_blocks(m, starts)
    # b0 falls through to b1 at exactly its end (16): no jump.
    assert int(amap.sizes[0]) == 16
    # b1 ends at 16+24=40 where b2 starts: no jump either.
    assert int(amap.sizes[1]) == 24
    assert amap.added_jumps == 0
    assert amap.order == [0, 1, 2]


def test_gap_breaks_fallthrough_and_charges_jump():
    m = chain_module()
    starts = {0: 0, 1: 100, 2: 200}
    amap = place_blocks(m, starts)
    assert amap.added_jumps == 2  # both fall-throughs broken
    assert int(amap.sizes[0]) == 16 + INSTRUCTION_BYTES
    assert not amap.overlaps()
    assert amap.end == 200 + int(amap.sizes[2])


def test_entry_stub_charged():
    m = chain_module((4,))
    amap = place_blocks(m, {0: 0}, entry_stubs=True)
    assert amap.added_jumps == 1
    assert int(amap.sizes[0]) == 16 + INSTRUCTION_BYTES


def test_overlap_rejected():
    m = chain_module()
    with pytest.raises(ValueError, match="overlap"):
        place_blocks(m, {0: 0, 1: 8, 2: 100})


def test_coverage_validated():
    m = chain_module()
    with pytest.raises(ValueError):
        place_blocks(m, {0: 0, 1: 100})
    with pytest.raises(ValueError):
        place_blocks(m, {0: 0, 1: 100, 2: 200, 3: 300})
    with pytest.raises(ValueError, match="negative"):
        place_blocks(m, {0: -4, 1: 100, 2: 200})


def test_order_sorted_by_address():
    m = chain_module()
    amap = place_blocks(m, {0: 200, 1: 0, 2: 100})
    assert amap.order == [1, 2, 0]
    assert amap.base == 0
