"""Unit and property tests for address assignment (repro.ir.codegen)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import (
    INSTRUCTION_BYTES,
    ModuleBuilder,
    function_order_gids,
    layout_blocks,
    original_gid_order,
)


def straightline_module(sizes=(4, 6, 2, 3, 5)):
    """One function, blocks in fall-through chain entry->b1->...->exit."""
    b = ModuleBuilder("m")
    f = b.function("main")
    names = [f"b{i}" for i in range(len(sizes))]
    for i, n in enumerate(sizes):
        if i + 1 < len(sizes):
            f.block(names[i], n).jump(names[i + 1])
        else:
            f.block(names[i], n).exit()
    return b.build()


def test_original_order_chain_needs_no_jumps():
    m = straightline_module()
    amap = layout_blocks(m, original_gid_order(m))
    assert amap.added_jumps == 0
    assert amap.total_bytes == m.size_bytes


def test_reversed_order_charges_fallthrough_jumps():
    m = straightline_module()
    order = original_gid_order(m)[::-1]
    amap = layout_blocks(m, order)
    # every block except the exit block falls through somewhere no longer
    # adjacent: 4 jumps.
    assert amap.added_jumps == 4
    assert amap.total_bytes == m.size_bytes + 4 * INSTRUCTION_BYTES


def test_entry_stubs_charged_per_function():
    m = straightline_module()
    amap = layout_blocks(m, original_gid_order(m), entry_stubs=True)
    assert amap.added_jumps == 1  # one function
    assert amap.total_bytes == m.size_bytes + INSTRUCTION_BYTES


def test_addresses_follow_layout_order():
    m = straightline_module((4, 6, 2))
    order = [2, 0, 1]
    amap = layout_blocks(m, order)
    starts = [int(amap.starts[g]) for g in order]
    assert starts == sorted(starts)
    assert starts[0] == 0
    # block 2 first: size 2 instr = 8 bytes, then block 0 at 8.
    assert int(amap.starts[0]) == int(amap.sizes[2])


def test_rejects_non_permutations():
    m = straightline_module((4, 6, 2))
    with pytest.raises(ValueError):
        layout_blocks(m, [0, 1])
    with pytest.raises(ValueError):
        layout_blocks(m, [0, 1, 1])


def test_span_and_line_span():
    m = straightline_module((16, 16))
    amap = layout_blocks(m, original_gid_order(m))
    start, end = amap.span(1)
    assert (start, end) == (64, 128)
    assert amap.line_span(1, 64) == (1, 1)
    assert amap.line_span(0, 32) == (0, 1)


def test_function_order_gids_appends_missing():
    b = ModuleBuilder("m")
    for name in ("main", "f1", "f2"):
        fb = b.function(name)
        fb.block("e", 2).exit()
    m = b.build()
    gids = function_order_gids(m, ["f2"])
    # f2 first, then main and f1 in declaration order.
    assert gids == [2, 0, 1]
    with pytest.raises(ValueError):
        function_order_gids(m, ["f1", "f1"])


@settings(max_examples=30, deadline=None)
@given(
    sizes=st.lists(st.integers(1, 30), min_size=2, max_size=8),
    seed=st.integers(0, 2**32 - 1),
)
def test_any_permutation_produces_disjoint_dense_image(sizes, seed):
    m = straightline_module(tuple(sizes))
    rng = np.random.default_rng(seed)
    order = list(rng.permutation(m.n_blocks))
    amap = layout_blocks(m, [int(g) for g in order], entry_stubs=bool(seed % 2))
    assert not amap.overlaps()
    # dense: total bytes equals last end.
    assert amap.end == amap.base + int(amap.sizes.sum())
    # every block's span is within the image.
    for g in range(m.n_blocks):
        s, e = amap.span(g)
        assert 0 <= s < e <= amap.end
