"""Unit tests for the fluent builder (repro.ir.builder)."""

import pytest

from repro.ir import Branch, Jump, ModuleBuilder


def test_builds_and_seals():
    b = ModuleBuilder("m")
    f = b.function("main")
    f.block("entry", 2).jump("next")
    f.block("next", 1).exit()
    m = b.build()
    assert m.sealed
    assert m.n_blocks == 2
    assert isinstance(m.function("main").entry.terminator, Jump)


def test_straightline_shorthand():
    b = ModuleBuilder("m")
    f = b.function("main")
    f.straightline("entry", 3, "end")
    f.block("end", 1).exit()
    m = b.build()
    assert isinstance(m.function("main").entry.terminator, Jump)


def test_unterminated_block_rejected():
    b = ModuleBuilder("m")
    f = b.function("main")
    f.block("entry", 2)  # never terminated
    with pytest.raises(RuntimeError):
        b.build()


def test_double_termination_rejected():
    b = ModuleBuilder("m")
    f = b.function("main")
    setter = f.block("entry", 2)
    setter.exit()
    with pytest.raises(RuntimeError):
        setter.jump("entry")


def test_declaring_block_while_pending_rejected():
    b = ModuleBuilder("m")
    f = b.function("main")
    f.block("entry", 2)
    with pytest.raises(RuntimeError):
        f.block("other", 1)


def test_branch_parameters_forwarded():
    b = ModuleBuilder("m")
    f = b.function("main")
    f.block("entry", 2).branch("a", "b", taken_prob=0.25, phase_prob=0.75, phase_period=64)
    f.block("a", 1).exit()
    f.block("b", 1).exit()
    m = b.build()
    term = m.function("main").entry.terminator
    assert isinstance(term, Branch)
    assert term.taken_prob == 0.25
    assert term.phase_prob == 0.75
    assert term.phase_period == 64


def test_switch_and_loop_and_call():
    b = ModuleBuilder("m")
    f = b.function("main")
    f.block("entry", 1).loop("sw", "done", trips=5)
    f.block("sw", 1).switch(["c1", "c2"], [2.0, 1.0])
    f.block("c1", 1).call("leaf", return_to="entry")
    f.block("c2", 1).jump("entry")
    f.block("done", 1).exit()
    g = b.function("leaf")
    g.block("e", 1).ret()
    m = b.build()
    assert m.n_functions == 2
    assert m.function("main").block("c1").terminator.callee() == "leaf"


def test_validation_runs_by_default():
    b = ModuleBuilder("m")
    f = b.function("main")
    f.block("entry", 1).jump("nope")
    with pytest.raises(Exception):
        b.build()
    # but can be skipped
    b2 = ModuleBuilder("m")
    f2 = b2.function("main")
    f2.block("entry", 1).jump("nope")
    m = b2.build(validate=False)
    assert m.sealed
