"""Unit tests for CFG queries (repro.ir.cfg)."""

from repro.ir import ModuleBuilder
from repro.ir.cfg import (
    block_successor_gids,
    call_graph,
    intra_successors,
    iter_fallthrough_pairs,
    reachable_blocks,
    static_call_sites,
    topological_functions,
)


def make_module():
    b = ModuleBuilder("m")
    f = b.function("main")
    f.block("entry", 1).branch("work", "done", 0.9)
    f.block("work", 2).call("helper", return_to="entry")
    f.block("done", 1).exit()
    f.block("orphan", 3).jump("done")  # deliberately unreachable
    g = b.function("helper")
    g.block("e", 1).call("leafy", return_to="out")
    g.block("out", 1).ret()
    h = b.function("leafy")
    h.block("e", 2).ret()
    b.function("dead").block("e", 1).ret()  # never called
    return b.build()


def test_intra_successors_include_return_to_not_callee():
    m = make_module()
    work = m.function("main").block("work")
    succ_names = [blk.name for blk in intra_successors(m, work)]
    assert succ_names == ["entry"]


def test_successor_gids_include_call_edges():
    m = make_module()
    succs = block_successor_gids(m)
    work = m.function("main").block("work")
    helper_entry = m.function("helper").entry
    assert helper_entry.gid in succs[work.gid]


def test_reachability_excludes_orphan_and_dead():
    m = make_module()
    reach = reachable_blocks(m)
    orphan = m.function("main").block("orphan")
    dead = m.function("dead").entry
    assert orphan.gid not in reach
    assert dead.gid not in reach
    assert m.function("leafy").entry.gid in reach


def test_call_graph_and_sites():
    m = make_module()
    cg = call_graph(m)
    assert cg["main"] == {"helper"}
    assert cg["helper"] == {"leafy"}
    assert cg["leafy"] == set()
    sites = static_call_sites(m, "helper")
    assert [s.name for s in sites] == ["work"]


def test_topological_functions_bottom_up():
    m = make_module()
    order = topological_functions(m)
    assert order.index("leafy") < order.index("helper") < order.index("main")
    assert set(order) == {f.name for f in m.functions}


def test_fallthrough_pairs():
    m = make_module()
    pairs = dict(iter_fallthrough_pairs(m))
    entry = m.function("main").entry
    done = m.function("main").block("done")
    # branch falls through to its else side.
    assert pairs[entry.gid] == done.gid
    # exit/ret blocks have no fallthrough.
    assert done.gid not in pairs


def test_topological_handles_recursion():
    b = ModuleBuilder("rec")
    f = b.function("main")
    f.block("e", 1).call("main", return_to="out")
    f.block("out", 1).exit()
    m = b.build()
    assert topological_functions(m) == ["main"]
