"""Integration: artifact round-trips and cross-module consistency."""

import numpy as np
import pytest

from repro.analysis import analyze_layout
from repro.cache import PAPER_L1I, simulate
from repro.compiler import Driver, load_layout
from repro.engine import InputSpec, collect_trace, fetch_lines, load_bundle, save_bundle
from repro.ir import baseline_layout
from repro.workloads import build


@pytest.fixture(scope="module")
def small_build(tmp_path_factory):
    prog, module = build("syn-mcf", ref_blocks=15_000, test_blocks=8_000)
    driver = Driver(optimizers=["bb-affinity", "function-affinity"])
    out = tmp_path_factory.mktemp("build")
    result = driver.build(
        module, prog.spec.test_input(), prog.spec.ref_input(), build_dir=out
    )
    return prog, module, result, out


def test_saved_profile_drives_same_optimization(small_build, tmp_path):
    """trace.npz -> load -> re-optimize must reproduce the layout."""
    prog, module, result, out = small_build
    loaded = load_bundle(out / "trace.npz")
    from repro.core import OPTIMIZERS, OptimizerConfig

    relayout = OPTIMIZERS["bb-affinity"](module, loaded, OptimizerConfig())
    assert relayout.address_map.order == result.layouts["bb-affinity"].address_map.order


def test_saved_layout_reproduces_miss_count(small_build):
    prog, module, result, out = small_build
    ref = collect_trace(module, prog.spec.ref_input())
    for name in ("baseline", "bb-affinity"):
        loaded = load_layout(out / f"layout-{name}.json")
        lines = fetch_lines(ref.bb_trace, loaded.address_map, 64)
        mr = simulate(lines, PAPER_L1I).misses / ref.instr_count
        assert mr == pytest.approx(result.miss_ratios[name], rel=1e-12)


def test_quality_metrics_track_miss_ratios(small_build):
    """On the same profile, a layout with (strictly) better utilization and
    fewer hot lines should not have a much worse miss ratio — the analysis
    lens agrees directionally with the simulator."""
    prog, module, result, out = small_build
    profile = result.profile
    q = {}
    for name, layout in result.layouts.items():
        q[name] = analyze_layout(module, profile, layout.address_map, PAPER_L1I)
    if q["bb-affinity"].line_utilization > q["baseline"].line_utilization:
        assert result.miss_ratios["bb-affinity"] <= result.miss_ratios["baseline"] * 1.5


def test_bundle_roundtrip_preserves_everything(small_build, tmp_path):
    prog, module, result, out = small_build
    path = tmp_path / "again.npz"
    save_bundle(result.profile, path)
    again = load_bundle(path)
    assert np.array_equal(again.bb_trace, result.profile.bb_trace)
    assert again.block_names == result.profile.block_names
    assert again.instr_count == result.profile.instr_count
