"""Smoke-run the fast example scripts: the documented entry points must
keep working.

The two heaviest walkthroughs (hyperthreading_throughput, defensiveness_
politeness) run multi-minute co-run matrices and are exercised indirectly
through the experiment drivers instead.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = [
    "affinity_hierarchy_demo.py",
    "interprocedural_reordering.py",
    "adopt_external_profile.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()  # every example prints a report


def test_affinity_demo_asserts_paper_sequences(capsys):
    # this example contains its own fidelity assertions; reaching the end
    # means Fig. 1 and Fig. 2 reproduced.
    runpy.run_path(str(EXAMPLES / "affinity_hierarchy_demo.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "B1 B4 B2 B3 B5" in out
    assert "A B E F C" in out


def test_interprocedural_example_improves(capsys):
    runpy.run_path(
        str(EXAMPLES / "interprocedural_reordering.py"), run_name="__main__"
    )
    out = capsys.readouterr().out
    lines = [l for l in out.splitlines() if "icache misses" in l]
    assert len(lines) == 2
    original = int(lines[0].split(":")[1].split("(")[0])
    optimized = int(lines[1].split(":")[1].split("(")[0])
    assert optimized < original
