"""Integration tests: the full pipeline on hand-built programs.

These exercise build -> instrument -> model -> transform -> fetch ->
simulate end to end, including the paper's Figure 3 scenario.
"""

import numpy as np

from repro.cache import CacheConfig, simulate
from repro.core import OPTIMIZERS, OptimizerConfig, bb_affinity
from repro.engine import InputSpec, collect_trace, fetch_lines
from repro.ir import ModuleBuilder, baseline_layout
from repro.locality import footprint_curve


def build_figure3_module():
    """The paper's Fig. 3 program: main loops calling X then Y; each call
    executes only one half of the callee, and the halves correlate through
    the shared global (modeled by a phase-locked branch)."""
    b = ModuleBuilder("fig3")
    f = b.function("main")
    f.block("entry", 2).loop("cx", "done", trips=500)
    f.block("cx", 1).call("X", return_to="cy")
    f.block("cy", 1).call("Y", return_to="entry")
    f.block("done", 1).exit()
    for name in ("X", "Y"):
        g = b.function(name)
        # phase-locked: both X and Y take the same side within a phase.
        g.block("x1", 2).branch("x2", "x3", taken_prob=1.0, phase_prob=0.0, phase_period=64)
        g.block("x2", 14).ret()
        g.block("x3", 14).ret()
    return b.build()


def test_figure3_interprocedural_grouping():
    module = build_figure3_module()
    bundle = collect_trace(module, InputSpec("test", seed=1, max_blocks=4000))
    layout = bb_affinity(module, bundle, OptimizerConfig(w_max=8))
    pos = {g: i for i, g in enumerate(layout.address_map.order)}
    x2 = module.function("X").block("x2").gid
    y2 = module.function("Y").block("x2").gid
    x3 = module.function("X").block("x3").gid
    y3 = module.function("Y").block("x3").gid
    # co-executed halves are adjacent-ish; opposite halves are not between
    # them (the paper's (X2 Y2)(X3 Y3) pairing).
    assert abs(pos[x2] - pos[y2]) <= 2
    assert abs(pos[x3] - pos[y3]) <= 2
    assert abs(pos[x2] - pos[x3]) > 1


def test_figure3_layout_reduces_footprint_and_misses():
    module = build_figure3_module()
    profile = collect_trace(module, InputSpec("test", seed=1, max_blocks=4000))
    ref = collect_trace(module, InputSpec("ref", seed=2, max_blocks=6000))
    cache = CacheConfig(size_bytes=128, assoc=2, line_bytes=32)
    base = baseline_layout(module)
    opt = bb_affinity(module, profile, OptimizerConfig(w_max=8, cache=cache))

    base_lines = fetch_lines(ref.bb_trace, base.address_map, 32)
    opt_lines = fetch_lines(ref.bb_trace, opt.address_map, 32)
    # short-window footprint shrinks: co-executed halves share lines.
    w = 64
    assert footprint_curve(opt_lines)(w) < footprint_curve(base_lines)(w)
    assert simulate(opt_lines, cache).misses < simulate(base_lines, cache).misses


def test_all_optimizers_end_to_end_on_suite_program():
    from repro.workloads import build

    prog, module = build("syn-sjeng", ref_blocks=20_000, test_blocks=10_000)
    test = collect_trace(module, prog.spec.test_input())
    ref = collect_trace(module, prog.spec.ref_input())
    base = baseline_layout(module)
    from repro.cache import PAPER_L1I

    base_misses = simulate(
        fetch_lines(ref.bb_trace, base.address_map, 64), PAPER_L1I
    ).misses
    for name, optimizer in OPTIMIZERS.items():
        layout = optimizer(module, test)
        lines = fetch_lines(ref.bb_trace, layout.address_map, 64)
        stats = simulate(lines, PAPER_L1I)
        # at this scale every optimizer should at least roughly hold the
        # line; none may blow the program up catastrophically.
        assert stats.misses < base_misses * 2.0
        assert lines.shape[0] > 0


def test_trace_roundtrip_through_layouts(tiny_module, tiny_bundle):
    """Any layout leaves the dynamic behaviour unchanged: same trace, same
    instruction count, only addresses differ."""
    opt = OPTIMIZERS["bb-affinity"](tiny_module, tiny_bundle, OptimizerConfig(w_max=6))
    base = baseline_layout(tiny_module)
    lines_base = fetch_lines(tiny_bundle.bb_trace, base.address_map, 64)
    lines_opt = fetch_lines(tiny_bundle.bb_trace, opt.address_map, 64)
    # different placement, same amount of code executed (up to the added
    # explicit jumps, which only ever increase sizes).
    assert lines_opt.shape[0] >= lines_base.shape[0] * 0.8
    assert not np.array_equal(lines_base, lines_opt)
