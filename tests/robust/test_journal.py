"""Unit tests for the JSONL run journal (repro.robust.journal)."""

import json

import pytest

from repro.robust import ArtifactError, RunJournal


def test_record_and_read_back(tmp_path):
    journal = RunJournal(tmp_path / "run.jsonl")
    journal.record("fig5", "ok", elapsed_s=1.5, attempts=1)
    journal.record("fig6", "failed", error={"type": "SimulationError", "message": "x"})
    entries = journal.entries()
    assert [e.exp_id for e in entries] == ["fig5", "fig6"]
    assert entries[0].status == "ok"
    assert entries[1].error["type"] == "SimulationError"


def test_completed_uses_latest_status(tmp_path):
    journal = RunJournal(tmp_path / "run.jsonl")
    journal.record("fig5", "failed")
    journal.record("fig5", "ok")
    journal.record("fig6", "ok")
    journal.record("fig6", "failed")  # later failure invalidates
    assert journal.completed() == {"fig5"}


def test_missing_journal_is_empty(tmp_path):
    journal = RunJournal(tmp_path / "absent.jsonl")
    assert journal.entries() == []
    assert journal.completed() == set()


def test_rejects_bad_status(tmp_path):
    journal = RunJournal(tmp_path / "run.jsonl")
    with pytest.raises(ValueError, match="status"):
        journal.record("fig5", "exploded")


def test_torn_final_line_is_dropped(tmp_path):
    """A crash mid-append leaves a truncated last line; reading must shrug
    it off, not die."""
    path = tmp_path / "run.jsonl"
    journal = RunJournal(path)
    journal.record("fig5", "ok")
    journal.record("fig6", "ok")
    with path.open("a") as fh:
        fh.write('{"exp_id": "fig7", "sta')  # torn mid-crash
    entries = journal.entries()
    assert [e.exp_id for e in entries] == ["fig5", "fig6"]
    assert journal.completed() == {"fig5", "fig6"}


def test_garbled_interior_line_is_a_real_corruption(tmp_path):
    path = tmp_path / "run.jsonl"
    journal = RunJournal(path)
    journal.record("fig5", "ok")
    with path.open("a") as fh:
        fh.write("NOT JSON\n")
    journal.record("fig6", "ok")
    with pytest.raises(ArtifactError) as exc:
        journal.entries()
    assert exc.value.path == str(path)
    assert "line 2" in str(exc.value)


def test_lines_are_valid_json_objects(tmp_path):
    path = tmp_path / "run.jsonl"
    RunJournal(path).record("table1", "skipped", attempts=0)
    raw = json.loads(path.read_text().strip())
    assert raw["exp_id"] == "table1"
    assert raw["status"] == "skipped"
    assert raw["error"] is None
