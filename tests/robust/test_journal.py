"""Unit tests for the JSONL run journal (repro.robust.journal)."""

import json

import pytest

from repro.robust import ArtifactError, RunJournal


def test_record_and_read_back(tmp_path):
    journal = RunJournal(tmp_path / "run.jsonl")
    journal.record("fig5", "ok", elapsed_s=1.5, attempts=1)
    journal.record("fig6", "failed", error={"type": "SimulationError", "message": "x"})
    entries = journal.entries()
    assert [e.exp_id for e in entries] == ["fig5", "fig6"]
    assert entries[0].status == "ok"
    assert entries[1].error["type"] == "SimulationError"


def test_completed_uses_latest_status(tmp_path):
    journal = RunJournal(tmp_path / "run.jsonl")
    journal.record("fig5", "failed")
    journal.record("fig5", "ok")
    journal.record("fig6", "ok")
    journal.record("fig6", "failed")  # later failure invalidates
    assert journal.completed() == {"fig5"}


def test_missing_journal_is_empty(tmp_path):
    journal = RunJournal(tmp_path / "absent.jsonl")
    assert journal.entries() == []
    assert journal.completed() == set()


def test_rejects_bad_status(tmp_path):
    journal = RunJournal(tmp_path / "run.jsonl")
    with pytest.raises(ValueError, match="status"):
        journal.record("fig5", "exploded")


def test_torn_final_line_is_dropped(tmp_path):
    """A crash mid-append leaves a truncated last line; reading must shrug
    it off, not die."""
    path = tmp_path / "run.jsonl"
    journal = RunJournal(path)
    journal.record("fig5", "ok")
    journal.record("fig6", "ok")
    with path.open("a") as fh:
        fh.write('{"exp_id": "fig7", "sta')  # torn mid-crash
    entries = journal.entries()
    assert [e.exp_id for e in entries] == ["fig5", "fig6"]
    assert journal.completed() == {"fig5", "fig6"}


def test_garbled_interior_line_is_a_real_corruption(tmp_path):
    path = tmp_path / "run.jsonl"
    journal = RunJournal(path)
    journal.record("fig5", "ok")
    with path.open("a") as fh:
        fh.write("NOT JSON\n")
    journal.record("fig6", "ok")
    with pytest.raises(ArtifactError) as exc:
        journal.entries()
    assert exc.value.path == str(path)
    assert "line 2" in str(exc.value)


def test_lines_are_valid_json_objects(tmp_path):
    path = tmp_path / "run.jsonl"
    RunJournal(path).record("table1", "skipped", attempts=0)
    raw = json.loads(path.read_text().strip())
    assert raw["exp_id"] == "table1"
    assert raw["status"] == "skipped"
    assert raw["error"] is None


def test_append_after_hard_kill_repairs_torn_tail(tmp_path):
    """Recording after a kill mid-append must truncate the torn line first.

    Without the write-time repair, the new record would be appended onto
    the torn fragment, merging both into one garbled *interior* line —
    turning a survivable crash signature into a resume-blocking
    corruption.  This is the regression the fix pins down.
    """
    path = tmp_path / "run.jsonl"
    journal = RunJournal(path)
    journal.record("fig5", "ok")
    with path.open("a") as fh:
        fh.write('{"exp_id": "fig6", "sta')  # hard kill mid-append
    journal.record("fig7", "ok")  # resume appends after the kill
    entries = journal.entries()  # no ArtifactError: tail was repaired
    assert [e.exp_id for e in entries] == ["fig5", "fig7"]
    assert journal.completed() == {"fig5", "fig7"}


def test_silent_interior_corruption_is_detected_by_checksum(tmp_path):
    """A bit flip that keeps the line valid JSON must still be caught."""
    path = tmp_path / "run.jsonl"
    journal = RunJournal(path)
    journal.record("fig5", "ok")
    journal.record("fig6", "ok")
    lines = path.read_text().splitlines()
    # Flip an outcome without touching the stored checksum: still
    # perfectly parseable JSON, just silently wrong.
    lines[0] = lines[0].replace('"ok"', '"failed"')
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(ArtifactError) as exc:
        journal.entries()
    assert "line 1" in str(exc.value)
    assert "checksum" in str(exc.value)


def test_corrupt_final_checksum_is_dropped_like_a_torn_tail(tmp_path):
    path = tmp_path / "run.jsonl"
    journal = RunJournal(path)
    journal.record("fig5", "ok")
    journal.record("fig6", "ok")
    lines = path.read_text().splitlines()
    lines[-1] = lines[-1].replace('"ok"', '"failed"')
    path.write_text("\n".join(lines) + "\n")
    assert [e.exp_id for e in journal.entries()] == ["fig5"]


def test_checkless_records_from_older_versions_still_read(tmp_path):
    path = tmp_path / "run.jsonl"
    with path.open("w") as fh:
        fh.write(json.dumps({"exp_id": "fig5", "status": "ok"}) + "\n")
    journal = RunJournal(path)
    journal.record("fig6", "ok")
    assert [e.exp_id for e in journal.entries()] == ["fig5", "fig6"]
