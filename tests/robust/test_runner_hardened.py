"""The hardened experiment runner: isolation, --keep-going, --resume,
retries, and the fault-injection drill — the acceptance scenario of the
robustness work."""

import io

import pytest

from repro.experiments import Lab
from repro.experiments.runner import (
    EXPERIMENTS,
    UnknownExperimentError,
    main,
    run_suite,
)
from repro.robust import ReproError, RunJournal, SimulationError

FAST = "ablation-optimal-gap"  # self-contained, cheapest experiment
FAST2 = "ablation-pruning"


@pytest.fixture
def lab():
    return Lab(scale=0.05, noise_sigma=0.0)


def test_run_suite_isolates_injected_failure(lab, tmp_path):
    journal = RunJournal(tmp_path / "run.jsonl")
    outcomes = run_suite(
        lab,
        [FAST, FAST2],
        keep_going=True,
        journal=journal,
        inject_fault=FAST,
        out=io.StringIO(),
    )
    by_id = {o.exp_id: o for o in outcomes}
    assert by_id[FAST].status == "failed"
    assert isinstance(by_id[FAST].error, SimulationError)
    assert by_id[FAST].error.to_dict()["defect"] == "injected fault"
    assert by_id[FAST2].status == "ok"
    assert by_id[FAST2].result is not None
    statuses = {e.exp_id: e.status for e in journal.entries()}
    assert statuses == {FAST: "failed", FAST2: "ok"}


def test_run_suite_stops_at_first_failure_without_keep_going(lab, tmp_path):
    outcomes = run_suite(
        lab,
        [FAST, FAST2],
        keep_going=False,
        journal=RunJournal(tmp_path / "run.jsonl"),
        inject_fault=FAST,
        out=io.StringIO(),
    )
    assert [o.exp_id for o in outcomes] == [FAST]
    assert outcomes[0].status == "failed"


def test_resume_skips_completed_experiments(lab, tmp_path):
    journal = RunJournal(tmp_path / "run.jsonl")
    first = run_suite(
        lab, [FAST, FAST2], keep_going=True, journal=journal,
        inject_fault=FAST2, out=io.StringIO(),
    )
    assert {o.exp_id: o.status for o in first} == {FAST: "ok", FAST2: "failed"}

    second = run_suite(
        lab, [FAST, FAST2], keep_going=True, journal=journal, resume=True,
        out=io.StringIO(),
    )
    by_id = {o.exp_id: o for o in second}
    assert by_id[FAST].status == "skipped"
    assert by_id[FAST].attempts == 0  # never re-ran
    assert by_id[FAST2].status == "ok"  # failed last time, re-ran now
    assert journal.completed() == {FAST, FAST2}


def test_retries_rerun_failed_experiments(lab, monkeypatch):
    calls = {"n": 0}
    real_driver = EXPERIMENTS[FAST]

    def flaky(_lab):
        calls["n"] += 1
        if calls["n"] < 3:
            raise RuntimeError("seed-sensitive flake")
        return real_driver(_lab)

    monkeypatch.setitem(EXPERIMENTS, FAST, flaky)
    outcomes = run_suite(lab, [FAST], retries=2, out=io.StringIO())
    assert outcomes[0].status == "ok"
    assert outcomes[0].attempts == 3


def test_foreign_exceptions_are_typed(lab, monkeypatch):
    monkeypatch.setitem(
        EXPERIMENTS, FAST, lambda _lab: (_ for _ in ()).throw(KeyError("boom"))
    )
    outcomes = run_suite(lab, [FAST], keep_going=True, out=io.StringIO())
    err = outcomes[0].error
    assert isinstance(err, ReproError)
    assert err.to_dict()["defect"] == "KeyError"


def test_run_suite_rejects_unknown_id_upfront(lab):
    with pytest.raises(UnknownExperimentError):
        run_suite(lab, [FAST, "fig99"], out=io.StringIO())


# -- CLI acceptance scenario -------------------------------------------------

def test_cli_keep_going_then_resume(tmp_path, capsys):
    """The acceptance criterion end to end: a suite with one forced
    failure completes under --keep-going, summarizes, exits nonzero; the
    follow-up --resume run skips what the journal shows complete."""
    journal_path = tmp_path / "journal.jsonl"
    argv = [
        "--scale", "0.05",
        "--only", FAST, FAST2,
        "--keep-going",
        "--journal", str(journal_path),
        "--inject-fault", FAST2,
    ]
    rc = main(argv)
    out = capsys.readouterr().out
    assert rc == 1
    assert "suite: 1 ok, 1 failed, 0 skipped" in out
    assert f"FAILED {FAST2}" in out
    assert "injected fault" in out

    rc2 = main([
        "--scale", "0.05",
        "--only", FAST, FAST2,
        "--keep-going", "--resume",
        "--journal", str(journal_path),
    ])
    out2 = capsys.readouterr().out
    assert rc2 == 0
    assert f"{FAST}: skipped (journal: already complete)" in out2
    assert "suite: 1 ok, 0 failed, 1 skipped" in out2

    # the journal recorded all three attempts.
    entries = RunJournal(journal_path).entries()
    assert [(e.exp_id, e.status) for e in entries] == [
        (FAST, "ok"), (FAST2, "failed"), (FAST2, "ok"),
    ]


def test_cli_inject_fault_validated(capsys):
    rc = main(["--inject-fault", "fig99", "--only", FAST])
    assert rc == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_cli_negative_retries_rejected(capsys):
    rc = main(["--retries", "-1", "--only", FAST])
    assert rc == 2
    assert "--retries" in capsys.readouterr().err
