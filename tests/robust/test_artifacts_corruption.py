"""Artifact round-trips under corruption and injected crashes.

Every corrupted on-disk artifact must surface as ArtifactError — never as
JSONDecodeError / BadZipFile / KeyError — and the atomic writers must
leave either the old artifact or none when killed mid-persist.
"""

import json

import numpy as np
import pytest

from repro.compiler import load_layout, load_report, save_layout, save_report
from repro.engine import InputSpec, collect_trace, load_bundle, save_bundle
from repro.ir import baseline_layout
from repro.robust import ArtifactError, atomic_write_text
from repro.robust import faults
from repro.robust.faults import (
    ATOMIC_MID_WRITE,
    ATOMIC_PRE_RENAME,
    InjectedCrash,
    crash_at,
)


@pytest.fixture
def layout_file(tiny_module, tmp_path):
    path = tmp_path / "layout-baseline.json"
    save_layout(baseline_layout(tiny_module), path)
    return path


@pytest.fixture
def bundle_file(tiny_module, tmp_path):
    bundle = collect_trace(tiny_module, InputSpec("test", seed=1, max_blocks=2000))
    path = tmp_path / "trace.npz"
    save_bundle(bundle, path)
    return path


# -- layout json -------------------------------------------------------------

def test_truncated_layout_json(layout_file):
    faults.truncate_file(layout_file, keep_fraction=0.5)
    with pytest.raises(ArtifactError) as exc:
        load_layout(layout_file)
    assert exc.value.path == str(layout_file)
    assert "JSON" in str(exc.value)


def test_missing_layout_file(tmp_path):
    with pytest.raises(ArtifactError, match="does not exist"):
        load_layout(tmp_path / "layout-nope.json")


def test_layout_missing_key(layout_file):
    faults.drop_json_key(layout_file, "order")
    with pytest.raises(ArtifactError, match="missing key"):
        load_layout(layout_file)


def test_layout_array_length_mismatch(layout_file):
    faults.misalign_json_array(layout_file, "starts")
    with pytest.raises(ArtifactError, match="not parallel"):
        load_layout(layout_file)


@pytest.mark.parametrize(
    "defect, match",
    [
        ("drop-kind", "missing key"),
        ("bad-kind", "unknown kind"),
        ("duplicate-gid", "not a permutation"),
        ("length-mismatch", "not parallel"),
        ("negative-start", "negative"),
    ],
)
def test_layout_payload_defects(layout_file, defect, match):
    payload = json.loads(layout_file.read_text())
    bad = faults.corrupt_layout_payload(payload, defect)
    layout_file.write_text(json.dumps(bad))
    with pytest.raises(ArtifactError, match=match):
        load_layout(layout_file)


def test_intact_layout_roundtrips(layout_file, tiny_module):
    loaded = load_layout(layout_file)
    original = baseline_layout(tiny_module)
    assert loaded.address_map.order == list(original.address_map.order)
    assert np.array_equal(loaded.address_map.starts, original.address_map.starts)


# -- report json -------------------------------------------------------------

def test_truncated_report(tmp_path):
    path = tmp_path / "report.json"
    save_report({"program": "x", "layouts": {}}, path)
    faults.truncate_file(path, keep_fraction=0.4)
    with pytest.raises(ArtifactError) as exc:
        load_report(path)
    assert exc.value.path == str(path)


def test_report_must_be_object(tmp_path):
    path = tmp_path / "report.json"
    path.write_text("[1, 2, 3]")
    with pytest.raises(ArtifactError, match="JSON object"):
        load_report(path)


def test_missing_report(tmp_path):
    with pytest.raises(ArtifactError, match="does not exist"):
        load_report(tmp_path / "report.json")


# -- trace bundle ------------------------------------------------------------

def test_truncated_bundle(bundle_file):
    faults.truncate_file(bundle_file, keep_fraction=0.5)
    with pytest.raises(ArtifactError) as exc:
        load_bundle(bundle_file)
    assert exc.value.path == str(bundle_file)


def test_bitflipped_bundle(bundle_file):
    faults.flip_bits(bundle_file, seed=11, count=64)
    with pytest.raises(ArtifactError):
        load_bundle(bundle_file)


def test_missing_bundle(tmp_path):
    with pytest.raises(ArtifactError, match="does not exist"):
        load_bundle(tmp_path / "trace.npz")


def test_bundle_not_an_archive(tmp_path):
    path = tmp_path / "trace.npz"
    path.write_text("this is not a zip file at all")
    with pytest.raises(ArtifactError, match="npz"):
        load_bundle(path)


def test_bundle_missing_array(tiny_module, tmp_path):
    path = tmp_path / "trace.npz"
    np.savez_compressed(path, bb_trace=np.array([0, 1, 2]))
    with pytest.raises(ArtifactError, match="missing array"):
        load_bundle(path)


def test_bundle_out_of_range_gids(bundle_file, tmp_path):
    good = load_bundle(bundle_file)
    bad_path = tmp_path / "bad.npz"
    np.savez_compressed(
        bad_path,
        program=np.array(good.program),
        input_name=np.array(good.input_name),
        bb_trace=faults.out_of_range_gids(good.bb_trace, good.n_static_blocks),
        func_of_gid=good.func_of_gid,
        block_names=np.array(good.block_names),
        function_names=np.array(good.function_names),
        instr_count=np.array(good.instr_count),
        natural_exit=np.array(good.natural_exit),
    )
    with pytest.raises(ArtifactError, match="out of range"):
        load_bundle(bad_path)


def test_bundle_float_trace_rejected(bundle_file, tmp_path):
    good = load_bundle(bundle_file)
    bad_path = tmp_path / "bad.npz"
    np.savez_compressed(
        bad_path,
        program=np.array(good.program),
        input_name=np.array(good.input_name),
        bb_trace=faults.float_trace(good.bb_trace),
        func_of_gid=good.func_of_gid,
        block_names=np.array(good.block_names),
        function_names=np.array(good.function_names),
        instr_count=np.array(good.instr_count),
        natural_exit=np.array(good.natural_exit),
    )
    with pytest.raises(ArtifactError, match="non-integer"):
        load_bundle(bad_path)


# -- atomic persistence under injected crashes -------------------------------

def _dir_entries(path):
    return sorted(p.name for p in path.iterdir())


def test_crash_before_rename_keeps_old_artifact(tmp_path):
    path = tmp_path / "artifact.json"
    atomic_write_text(path, '{"version": 1}')
    with crash_at(ATOMIC_PRE_RENAME):
        with pytest.raises(InjectedCrash):
            atomic_write_text(path, '{"version": 2}')
    assert json.loads(path.read_text()) == {"version": 1}
    assert _dir_entries(tmp_path) == ["artifact.json"]  # no temp litter


def test_crash_mid_write_leaves_no_file(tmp_path):
    path = tmp_path / "artifact.json"
    with crash_at(ATOMIC_MID_WRITE):
        with pytest.raises(InjectedCrash):
            atomic_write_text(path, '{"version": 1}')
    assert _dir_entries(tmp_path) == []


def test_crashed_save_layout_never_leaves_truncated_file(tiny_module, tmp_path):
    """The acceptance scenario: kill a persisting build mid-write; the old
    layout must load byte-identically afterwards."""
    layout = baseline_layout(tiny_module)
    path = tmp_path / "layout-baseline.json"
    save_layout(layout, path)
    before = path.read_bytes()
    for point in (ATOMIC_MID_WRITE, ATOMIC_PRE_RENAME):
        with crash_at(point):
            with pytest.raises(InjectedCrash):
                save_layout(layout, path)
        assert path.read_bytes() == before
        load_layout(path)  # still a valid artifact
        assert _dir_entries(tmp_path) == ["layout-baseline.json"]


def test_crashed_save_bundle_keeps_old_archive(tiny_module, tmp_path):
    bundle = collect_trace(tiny_module, InputSpec("test", seed=1, max_blocks=2000))
    path = tmp_path / "trace.npz"
    save_bundle(bundle, path)
    before = path.read_bytes()
    with crash_at(ATOMIC_PRE_RENAME):
        with pytest.raises(InjectedCrash):
            save_bundle(bundle, path)
    assert path.read_bytes() == before
    loaded = load_bundle(path)
    assert np.array_equal(loaded.bb_trace, bundle.bb_trace)
    assert _dir_entries(tmp_path) == ["trace.npz"]
