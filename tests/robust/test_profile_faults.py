"""Profile-ingestion fault injection: every malformed external profile
surfaces as ProfileError naming the defect — never a KeyError, an int()
ValueError, or a numpy error."""

import numpy as np
import pytest

from repro.robust import ProfileError
from repro.robust import faults
from repro.workloads.external import from_profile, load_profile_csv


def sample_profile():
    block_bytes = [16, 32, 8, 64, 24]
    func_of_block = [0, 0, 0, 1, 1]
    names = ["main", "helper"]
    rng = np.random.default_rng(0)
    trace = rng.choice([0, 1, 3, 4], size=500, p=[0.4, 0.3, 0.2, 0.1])
    return trace, block_bytes, func_of_block, names


GOOD_BLOCKS = (
    "block_id,function,bytes\n"
    "0,main,40\n"
    "1,main,24\n"
    "2,util,64\n"
)


def write_csvs(tmp_path, blocks=GOOD_BLOCKS, trace="0\n1\n2\n0\n"):
    blocks_path = tmp_path / "blocks.csv"
    blocks_path.write_text(blocks)
    trace_path = tmp_path / "trace.txt"
    trace_path.write_text(trace)
    return blocks_path, trace_path


# -- from_profile ------------------------------------------------------------

def test_float_trace_rejected_not_truncated():
    trace, sizes, fob, names = sample_profile()
    with pytest.raises(ProfileError, match="non-integer dtype"):
        from_profile("x", faults.float_trace(trace), sizes, fob, names)


def test_out_of_range_trace_rejected():
    trace, sizes, fob, names = sample_profile()
    bad = faults.out_of_range_gids(trace, len(sizes), seed=2)
    with pytest.raises(ProfileError, match="unknown block"):
        from_profile("x", bad, sizes, fob, names)


def test_negative_trace_rejected():
    trace, sizes, fob, names = sample_profile()
    with pytest.raises(ProfileError, match="unknown block"):
        from_profile("x", faults.negative_gids(trace, seed=2), sizes, fob, names)


def test_non_contiguous_functions_rejected():
    trace, sizes, fob, names = sample_profile()
    bad = faults.non_contiguous_functions(fob)
    with pytest.raises(ProfileError) as exc:
        from_profile("x", trace, sizes, bad, names)
    assert exc.value.stage == "ingest"
    assert exc.value.program == "x"


def test_errors_carry_machine_readable_context():
    trace, sizes, fob, names = sample_profile()
    with pytest.raises(ProfileError) as exc:
        from_profile("myapp", faults.float_trace(trace), sizes, fob, names)
    d = exc.value.to_dict()
    assert d["type"] == "ProfileError"
    assert d["program"] == "myapp"
    assert "float64" in d["defect"]


def test_empty_trace_still_allowed_in_from_profile():
    """from_profile keeps accepting empty arrays (programmatic callers may
    assemble bundles incrementally); only the CSV loader treats an empty
    profile as a defect."""
    _, sizes, fob, names = sample_profile()
    _, bundle = from_profile("x", faults.empty_trace(), sizes, fob, names)
    assert bundle.n_dynamic_blocks == 0


# -- load_profile_csv --------------------------------------------------------

def test_missing_column_named(tmp_path):
    blocks, trace = write_csvs(
        tmp_path, blocks="block_id,function,size\n0,main,40\n"
    )
    with pytest.raises(ProfileError, match="missing column.*bytes"):
        load_profile_csv("x", blocks, trace)


def test_renamed_columns_all_named(tmp_path):
    blocks, trace = write_csvs(tmp_path, blocks="id,fn,sz\n0,main,40\n")
    with pytest.raises(ProfileError) as exc:
        load_profile_csv("x", blocks, trace)
    message = str(exc.value)
    for col in ("block_id", "function", "bytes"):
        assert col in message


def test_non_integer_bytes(tmp_path):
    blocks, trace = write_csvs(
        tmp_path, blocks="block_id,function,bytes\n0,main,forty\n"
    )
    with pytest.raises(ProfileError, match="line 2.*not an integer"):
        load_profile_csv("x", blocks, trace)


@pytest.mark.parametrize("value", ["0", "-8"])
def test_non_positive_bytes(tmp_path, value):
    blocks, trace = write_csvs(
        tmp_path, blocks=f"block_id,function,bytes\n0,main,{value}\n"
    )
    with pytest.raises(ProfileError, match="must be positive"):
        load_profile_csv("x", blocks, trace)


def test_non_integer_block_id(tmp_path):
    blocks, trace = write_csvs(
        tmp_path, blocks="block_id,function,bytes\nzero,main,40\n"
    )
    with pytest.raises(ProfileError, match="block_id.*not an integer"):
        load_profile_csv("x", blocks, trace)


def test_non_integer_trace_line(tmp_path):
    blocks, trace = write_csvs(tmp_path, trace="0\n1\n2.5\n")
    with pytest.raises(ProfileError, match="line 3.*not an integer"):
        load_profile_csv("x", blocks, trace)


def test_empty_trace_file(tmp_path):
    blocks, trace = write_csvs(tmp_path, trace="\n\n")
    with pytest.raises(ProfileError, match="empty profile"):
        load_profile_csv("x", blocks, trace)


def test_missing_files_are_typed(tmp_path):
    blocks, trace = write_csvs(tmp_path)
    with pytest.raises(ProfileError, match="unreadable"):
        load_profile_csv("x", tmp_path / "nope.csv", trace)
    with pytest.raises(ProfileError, match="unreadable"):
        load_profile_csv("x", blocks, tmp_path / "nope.txt")


def test_error_names_the_offending_path(tmp_path):
    blocks, trace = write_csvs(tmp_path, trace="0\nbad\n")
    with pytest.raises(ProfileError) as exc:
        load_profile_csv("x", blocks, trace)
    assert exc.value.path == str(trace)


def test_good_csv_still_loads(tmp_path):
    blocks, trace = write_csvs(tmp_path)
    module, bundle = load_profile_csv("x", blocks, trace)
    assert module.n_blocks == 3
    assert bundle.bb_trace.tolist() == [0, 1, 2, 0]
