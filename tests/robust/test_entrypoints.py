"""Typed degradation at every public entry point.

Injected corruption at Driver.build and Lab must surface as a ReproError
subclass with stage/program context — never a raw KeyError / IndexError /
TypeError from pipeline internals."""

import pytest

from repro.compiler import Driver
from repro.engine import InputSpec
from repro.experiments import BASELINE, Lab
from repro.robust import ProfileError, ReproError, SimulationError
from repro.robust import faults
from tests.conftest import build_tiny_module


def test_driver_build_on_corrupt_module_raises_profile_error(tmp_path):
    module = build_tiny_module()
    faults.break_module_terminator(module, gid=0)
    driver = Driver(optimizers=["function-trg"])
    with pytest.raises(ProfileError) as exc:
        driver.build(module, InputSpec("test", seed=1, max_blocks=1000))
    assert exc.value.stage == "instrument"
    assert exc.value.program == "tiny"
    assert exc.value.cause is not None


def test_driver_optimizer_blowup_is_simulation_error(tiny_module, monkeypatch):
    from repro.core import optimizers as core_optimizers

    def exploding(_module, _profile, _config):
        raise IndexError("index 999 is out of bounds")

    driver = Driver(optimizers=["function-trg"])
    monkeypatch.setitem(core_optimizers.OPTIMIZERS, "function-trg", exploding)
    with pytest.raises(SimulationError) as exc:
        driver.build(tiny_module, InputSpec("test", seed=1, max_blocks=1000))
    assert exc.value.stage == "optimize"
    assert exc.value.layout == "function-trg"
    assert isinstance(exc.value.cause, IndexError)


def test_lab_unknown_program_is_profile_error():
    lab = Lab(scale=0.05)
    with pytest.raises(ProfileError) as exc:
        lab.program("syn-does-not-exist")
    assert exc.value.stage == "prepare"
    assert exc.value.program == "syn-does-not-exist"


def test_lab_unknown_layout_is_simulation_error():
    lab = Lab(scale=0.05, noise_sigma=0.0)
    with pytest.raises(SimulationError) as exc:
        lab.layout("syn-mcf", "no-such-optimizer")
    assert exc.value.stage == "optimize"
    assert exc.value.layout == "no-such-optimizer"
    assert isinstance(exc.value.cause, KeyError)


def test_lab_channel_validation_stays_value_error():
    """Config mistakes (not corruption) keep their original ValueError."""
    lab = Lab(scale=0.05, noise_sigma=0.0)
    with pytest.raises(ValueError, match="unknown channel"):
        lab.solo_miss("syn-mcf", BASELINE, channel="bogus")


def test_lab_measurements_still_work_after_typed_failure():
    """Isolation: one bad request must not poison the lab's caches."""
    lab = Lab(scale=0.05, noise_sigma=0.0)
    with pytest.raises(ReproError):
        lab.layout("syn-mcf", "no-such-optimizer")
    miss = lab.solo_miss("syn-mcf", BASELINE, channel="sim")
    assert miss.ratio >= 0
