"""Property tests for the fault taxonomy and the retry schedule.

The schedule's contract (see :class:`repro.robust.supervisor.RetryPolicy`):

* deterministic per ``(seed, key)`` — identical across runs and across
  processes (SHA-256 seeded, never the salted builtin ``hash``);
* every delay bounded to ``[base_s, cap_s]``;
* jittered within the decorrelated envelope
  ``d_i <= min(cap_s, 3 * d_{i-1})`` with ``d_0`` drawn from
  ``[base_s, 3 * base_s]``;
* transient fault classes retry, permanent ones never do — one case per
  taxonomy class below.
"""

import pytest

from repro.robust import (
    PERMANENT,
    TRANSIENT,
    ArtifactError,
    ProfileError,
    RetryPolicy,
    SimulationError,
    WorkerCrashError,
    WorkerHangError,
    fault_class,
)
from repro.experiments.runner import UnknownExperimentError
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.integrity import LayoutError


def _layout_error(message: str) -> LayoutError:
    return LayoutError(
        [Diagnostic("L006", Severity.ERROR, "layout", message)]
    )


class TestSchedule:
    def test_deterministic_per_seed_and_key(self):
        a = RetryPolicy(max_retries=8, seed=3).schedule("fig5")
        b = RetryPolicy(max_retries=8, seed=3).schedule("fig5")
        assert a == b
        assert RetryPolicy(max_retries=8, seed=4).schedule("fig5") != a
        assert RetryPolicy(max_retries=8, seed=3).schedule("fig6") != a

    def test_bounded_by_base_and_cap(self):
        policy = RetryPolicy(max_retries=64, base_s=0.1, cap_s=1.0, seed=1)
        for key in ("fig4", "fig5", "table1"):
            delays = policy.schedule(key)
            assert len(delays) == 64
            assert all(0.1 <= d <= 1.0 for d in delays)

    def test_decorrelated_envelope(self):
        policy = RetryPolicy(max_retries=32, base_s=0.05, cap_s=30.0, seed=9)
        for key in ("a", "b", "c"):
            delays = policy.schedule(key)
            prev = policy.base_s
            for d in delays:
                assert d <= min(policy.cap_s, 3 * prev) + 1e-12
                prev = d

    def test_delays_actually_jitter(self):
        # A degenerate implementation returning base_s everywhere would
        # satisfy the bounds; demand real spread.
        delays = RetryPolicy(max_retries=16, seed=0).schedule("fig5")
        assert len(set(delays)) > 8

    def test_delay_s_matches_schedule_prefixes(self):
        policy = RetryPolicy(max_retries=5, seed=2)
        delays = policy.schedule("fig7")
        for attempt in range(1, 6):
            assert policy.delay_s("fig7", attempt) == delays[attempt - 1]

    def test_sleep_before_retry_uses_injected_sleep(self):
        slept = []
        policy = RetryPolicy(max_retries=2, seed=5)
        delay = policy.sleep_before_retry("fig5", 1, sleep=slept.append)
        assert slept == [delay] and delay == policy.delay_s("fig5", 1)

    def test_zero_retries_schedule_is_empty(self):
        assert RetryPolicy().schedule("fig5") == []


class TestTaxonomy:
    """One classification case per taxonomy class."""

    @pytest.mark.parametrize(
        "err",
        [
            WorkerCrashError("worker died"),
            WorkerHangError("worker hung"),
            SimulationError("flaky run"),
            OSError("disk hiccup"),
            ArtifactError("write failed", cause=OSError("no space")),
        ],
        ids=lambda e: type(e).__name__,
    )
    def test_transient_classes(self, err):
        assert fault_class(err) == TRANSIENT

    @pytest.mark.parametrize(
        "err",
        [
            ProfileError("negative count"),
            _layout_error("duplicated symbol"),
            UnknownExperimentError("no-such-exp"),
            ValueError("bad argument"),
            KeyError("missing"),
            RuntimeError("unclassified"),
            ArtifactError("schema mismatch"),
        ],
        ids=lambda e: type(e).__name__,
    )
    def test_permanent_classes(self, err):
        assert fault_class(err) == PERMANENT

    def test_artifact_error_io_cause_survives_pickling_boundary(self):
        # Across a process boundary the cause exception is lost but its
        # rendered form survives in context; classification must agree.
        err = ArtifactError("write failed", cause=OSError("no space"))
        rebuilt = ArtifactError("write failed")
        rebuilt.context["cause"] = err.to_dict()["cause"]
        assert fault_class(rebuilt) == TRANSIENT

    @pytest.mark.parametrize(
        "err, attempts_allowed",
        [
            (SimulationError("flaky"), True),
            (ProfileError("bad input"), False),
            (_layout_error("broken invariant"), False),
            (WorkerCrashError("died"), True),
            (WorkerHangError("hung"), True),
        ],
        ids=lambda v: type(v).__name__ if isinstance(v, BaseException) else str(v),
    )
    def test_should_retry_consults_the_taxonomy(self, err, attempts_allowed):
        policy = RetryPolicy(max_retries=3)
        assert policy.should_retry(err, 1) is attempts_allowed
        # The budget still caps transient retries.
        assert policy.should_retry(err, 4) is False

    def test_never_retries_with_zero_budget(self):
        assert not RetryPolicy().should_retry(SimulationError("x"), 1)
