"""Unit tests for the fault-injection harness itself (repro.robust.faults).

The harness must be deterministic — same seed, same corruption — or the
robustness suite would be flaky by construction.
"""

import json

import numpy as np
import pytest

from repro.robust import faults
from repro.robust.faults import InjectedCrash


def test_out_of_range_gids_deterministic():
    trace = np.arange(100) % 10
    a = faults.out_of_range_gids(trace, 10, seed=3)
    b = faults.out_of_range_gids(trace, 10, seed=3)
    assert np.array_equal(a, b)
    assert (a >= 10).sum() >= 1
    # original untouched.
    assert trace.max() < 10


def test_negative_gids():
    trace = np.arange(50)
    bad = faults.negative_gids(trace, seed=1)
    assert (bad < 0).any()


def test_float_trace_has_fractional_entry():
    bad = faults.float_trace(np.arange(10))
    assert bad.dtype == np.float64
    assert not np.array_equal(bad, np.floor(bad))


def test_empty_trace():
    assert faults.empty_trace().size == 0


def test_non_contiguous_functions():
    table = faults.non_contiguous_functions([0, 0, 0, 1, 1])
    assert table != [0, 0, 0, 1, 1]
    assert table[0] == 0 and 0 in table[2:]
    with pytest.raises(ValueError):
        faults.non_contiguous_functions([0, 0, 0])


def test_truncate_file(tmp_path):
    p = tmp_path / "f.bin"
    p.write_bytes(b"x" * 100)
    kept = faults.truncate_file(p, keep_fraction=0.3)
    assert kept == 30
    assert p.stat().st_size == 30


def test_flip_bits_deterministic(tmp_path):
    p1, p2 = tmp_path / "a", tmp_path / "b"
    payload = bytes(range(256))
    p1.write_bytes(payload)
    p2.write_bytes(payload)
    off1 = faults.flip_bits(p1, seed=5)
    off2 = faults.flip_bits(p2, seed=5)
    assert off1 == off2
    assert p1.read_bytes() == p2.read_bytes()
    assert p1.read_bytes() != payload


def test_json_surgery(tmp_path):
    p = tmp_path / "layout.json"
    p.write_text(json.dumps({"kind": "function", "starts": [0, 8, 16]}))
    faults.misalign_json_array(p, "starts")
    assert json.loads(p.read_text())["starts"] == [0, 8]
    faults.drop_json_key(p, "kind")
    assert "kind" not in json.loads(p.read_text())
    with pytest.raises(KeyError):
        faults.drop_json_key(p, "kind")


def test_corrupt_layout_payload_defects():
    payload = {
        "kind": "function",
        "note": "",
        "order": [0, 1, 2],
        "starts": [0, 8, 16],
        "sizes": [8, 8, 8],
        "added_jumps": 0,
        "base": 0,
        "input_order": [0, 1, 2],
    }
    assert "kind" not in faults.corrupt_layout_payload(payload, "drop-kind")
    dup = faults.corrupt_layout_payload(payload, "duplicate-gid")["order"]
    assert len(dup) == 3 and len(set(dup)) < 3
    assert len(faults.corrupt_layout_payload(payload, "length-mismatch")["starts"]) == 2
    assert faults.corrupt_layout_payload(payload, "negative-start")["starts"][0] < 0
    with pytest.raises(ValueError):
        faults.corrupt_layout_payload(payload, "no-such-defect")
    # the input payload is never mutated.
    assert payload["order"] == [0, 1, 2] and len(payload["starts"]) == 3


def test_crash_points_arm_and_disarm():
    point = "unit-test:point"
    faults.maybe_crash(point)  # disarmed: no-op
    with faults.crash_at(point):
        assert point in faults.armed_crash_points()
        with pytest.raises(InjectedCrash) as exc:
            faults.maybe_crash(point, "mid-write")
        assert exc.value.point == point
    assert point not in faults.armed_crash_points()
    faults.maybe_crash(point)


def test_injected_crash_is_not_an_exception():
    """Must sail past `except Exception` like a real SIGKILL."""
    assert not issubclass(InjectedCrash, Exception)
    assert issubclass(InjectedCrash, BaseException)
