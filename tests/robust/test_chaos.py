"""Tests for the process-level chaos harness (repro.robust.faults).

Covers the deterministic plan builder, the armed I/O fault budget the
memo tier consults, mid-run memo corruption, and the end-to-end soak
gate: a chaos run's journal outcomes must match a clean serial run.
"""

import io
import json
import multiprocessing

import pytest

from repro.experiments import Lab
from repro.experiments.report import ExperimentResult
from repro.experiments.runner import EXPERIMENTS, run_suite
from repro.perf import SimMemo, compare_journal_outcomes
from repro.robust import ChaosPlan, RunJournal
from repro.robust.faults import (
    MEMO_READ,
    MEMO_WRITE,
    arm_io_faults,
    arm_io_slow,
    chaos_corrupt_memo,
    clear_io_faults,
    maybe_io_fault,
)


@pytest.fixture(autouse=True)
def _clean_fault_state():
    clear_io_faults()
    yield
    clear_io_faults()


class TestChaosPlan:
    def test_deterministic_per_seed(self):
        ids = ["fig4", "fig5", "fig6", "fig7", "table1"]
        assert ChaosPlan.from_seed(7, ids) == ChaosPlan.from_seed(7, ids)
        assert ChaosPlan.from_seed(7, ids) != ChaosPlan.from_seed(8, ids)

    def test_targets_are_disjoint_and_in_range(self):
        ids = ["a", "b", "c", "d", "e"]
        for seed in range(20):
            plan = ChaosPlan.from_seed(seed, ids)
            assert set(plan.kill_exp_ids) <= set(ids)
            assert set(plan.hang_exp_ids) <= set(ids)
            assert not set(plan.kill_exp_ids) & set(plan.hang_exp_ids)
            assert plan.memo_read_faults >= 1
            assert plan.memo_write_faults >= 1
            assert 1 <= plan.corrupt_after < len(ids)

    def test_two_experiment_suite_still_gets_kill_and_hang(self):
        plan = ChaosPlan.from_seed(42, ["x", "y"])
        assert len(plan.kill_exp_ids) == 1
        assert len(plan.hang_exp_ids) == 1

    def test_describe_mentions_the_victims(self):
        plan = ChaosPlan.from_seed(1, ["a", "b", "c"])
        text = plan.describe()
        assert str(plan.seed) in text
        for victim in (*plan.kill_exp_ids, *plan.hang_exp_ids):
            assert victim in text


class TestIoFaultBudget:
    def test_armed_faults_fire_then_exhaust(self):
        arm_io_faults(MEMO_READ, 2)
        with pytest.raises(OSError):
            maybe_io_fault(MEMO_READ)
        with pytest.raises(OSError):
            maybe_io_fault(MEMO_READ)
        maybe_io_fault(MEMO_READ)  # budget spent: no-op

    def test_points_are_independent(self):
        arm_io_faults(MEMO_WRITE, 1)
        maybe_io_fault(MEMO_READ)  # unarmed point never raises
        with pytest.raises(OSError):
            maybe_io_fault(MEMO_WRITE)

    def test_slow_io_delays_without_raising(self):
        arm_io_slow(MEMO_READ, 1, 0.0)
        maybe_io_fault(MEMO_READ)  # consumed the slow budget, no error

    def test_clear_disarms_everything(self):
        arm_io_faults(MEMO_READ, 5)
        clear_io_faults()
        maybe_io_fault(MEMO_READ)


class TestMemoUnderFaults:
    def test_read_faults_strike_the_breaker_and_degrade(self, tmp_path):
        import numpy as np

        lines = np.arange(4000, dtype=np.int64) % 600
        from repro.cache import PAPER_L1I

        memo = SimMemo(tmp_path)
        first = memo.simulate(lines, PAPER_L1I)
        arm_io_faults(MEMO_READ, 3)
        reread = SimMemo(tmp_path)
        # Three strikes trip the (default threshold 3) breaker; every
        # lookup still answers correctly by recomputing.
        for _ in range(4):
            assert SimMemo(tmp_path).simulate(lines, PAPER_L1I) == first
        assert reread.breaker.trips == 0  # each memo owns its breaker

    def test_chaos_corrupt_memo_garbles_one_entry(self, tmp_path):
        (tmp_path / "aa.json").write_text(json.dumps({"schema": "x"}))
        (tmp_path / "bb.json").write_text(json.dumps({"schema": "y"}))
        victim = chaos_corrupt_memo(tmp_path, seed=3)
        assert victim is not None and victim.exists()
        with pytest.raises(ValueError):
            json.loads(victim.read_text())
        # Deterministic victim choice per seed.
        assert victim.name == chaos_corrupt_memo(tmp_path, seed=3).name

    def test_chaos_corrupt_memo_empty_dir_is_a_noop(self, tmp_path):
        assert chaos_corrupt_memo(tmp_path, seed=1) is None
        assert chaos_corrupt_memo(tmp_path / "absent", seed=1) is None

    def test_scrub_drops_the_corrupted_entry(self, tmp_path):
        import numpy as np

        from repro.cache import PAPER_L1I

        lines = np.arange(4000, dtype=np.int64) % 600
        memo = SimMemo(tmp_path)
        memo.simulate(lines, PAPER_L1I)
        memo.simulate(lines * 2 % 600, PAPER_L1I)
        chaos_corrupt_memo(tmp_path, seed=5)
        kept, dropped = SimMemo(tmp_path).scrub()
        assert (kept, dropped) == (1, 1)
        for path in tmp_path.iterdir():
            json.loads(path.read_text())  # everything left is valid


def _toy_a(lab):
    return ExperimentResult("chaos-a", "toy a", summary={"v": 1.0})


def _toy_b(lab):
    return ExperimentResult("chaos-b", "toy b", summary={"v": 2.0})


def _toy_c(lab):
    return ExperimentResult("chaos-c", "toy c", summary={"v": 3.0})


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="soak test patches the experiment registry and relies on fork",
)
class TestChaosSoak:
    """The in-tree miniature of the CI soak gate: chaos journal outcomes
    must equal the clean serial run's."""

    IDS = ["chaos-a", "chaos-b", "chaos-c"]

    @pytest.fixture(autouse=True)
    def toy_registry(self, monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "chaos-a", _toy_a)
        monkeypatch.setitem(EXPERIMENTS, "chaos-b", _toy_b)
        monkeypatch.setitem(EXPERIMENTS, "chaos-c", _toy_c)

    def test_outcome_parity_with_clean_run(self, tmp_path):
        from repro.perf.telemetry import Telemetry

        clean = RunJournal(tmp_path / "clean.jsonl")
        run_suite(
            Lab(scale=0.05, noise_sigma=0.0),
            self.IDS,
            journal=clean,
            keep_going=True,
            out=io.StringIO(),
        )

        memo_dir = tmp_path / "memo"
        chaos = ChaosPlan.from_seed(42, self.IDS)
        chaotic = RunJournal(tmp_path / "chaos.jsonl")
        telemetry = Telemetry(jobs=2)
        outcomes = run_suite(
            Lab(scale=0.05, noise_sigma=0.0, memo=SimMemo(memo_dir)),
            self.IDS,
            journal=chaotic,
            keep_going=True,
            out=io.StringIO(),
            jobs=2,
            telemetry=telemetry,
            chaos=chaos,
            hang_timeout_s=1.0,
        )
        assert all(o.status == "ok" for o in outcomes)
        # At least one worker was killed and one hang detected.
        assert telemetry.resilience["worker_crashes"] >= 1
        assert telemetry.resilience["worker_hangs"] >= 1
        assert telemetry.resilience["partial"] is False
        diffs = compare_journal_outcomes(
            [vars(e) for e in clean.entries()],
            [vars(e) for e in chaotic.entries()],
            ignore=("attempts",),
        )
        assert diffs == []
