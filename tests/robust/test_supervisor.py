"""Unit and integration tests for the self-healing execution runtime
(repro.robust.supervisor): circuit breaker, supervised pool, chaos-driven
worker kill/hang recovery, and the graceful partial-result exit.

The pool tests register toy experiment drivers at module scope — fork
workers inherit the patched registry, so no real (slow) paper experiment
needs to run to exercise supervision.
"""

import multiprocessing
import time

import pytest

from repro.experiments import Lab
from repro.experiments.report import ExperimentResult
from repro.experiments.runner import EXPERIMENTS
from repro.robust import (
    ChaosPlan,
    CircuitBreaker,
    SupervisedPool,
    WorkerCrashError,
    WorkerHangError,
)
from repro.perf.parallel import rebuild_error

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="pool tests patch the experiment registry and rely on fork",
)


def _toy_driver(lab):
    return ExperimentResult("toy", "toy experiment", summary={"x": 1.0})


def _toy_driver_2(lab):
    return ExperimentResult("toy2", "second toy", summary={"y": 2.0})


@pytest.fixture
def toy_registry(monkeypatch):
    monkeypatch.setitem(EXPERIMENTS, "toy", _toy_driver)
    monkeypatch.setitem(EXPERIMENTS, "toy2", _toy_driver_2)


def _lab_config():
    return Lab(scale=0.05, noise_sigma=0.0).spawn_config()


def _quiet_chaos(**overrides) -> ChaosPlan:
    """A ChaosPlan with no ambient faults unless a test asks for them."""
    fields = dict(
        seed=0,
        kill_exp_ids=(),
        hang_exp_ids=(),
        memo_read_faults=0,
        memo_write_faults=0,
        slow_io_count=0,
        slow_io_s=0.0,
        corrupt_after=0,
    )
    fields.update(overrides)
    return ChaosPlan(**fields)


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        b = CircuitBreaker(failure_threshold=3, reset_after_s=60.0)
        b.record_failure()
        b.record_failure()
        assert b.state == b.CLOSED and b.allow()
        b.record_failure()
        assert b.state == b.OPEN and not b.allow()
        assert b.trips == 1

    def test_success_resets_the_consecutive_count(self):
        b = CircuitBreaker(failure_threshold=2, reset_after_s=60.0)
        for _ in range(5):
            b.record_failure()
            b.record_success()
        assert b.state == b.CLOSED and b.trips == 0

    def test_half_open_probe_success_is_a_recovery(self):
        clock = [0.0]
        b = CircuitBreaker(
            failure_threshold=1, reset_after_s=10.0, clock=lambda: clock[0]
        )
        b.record_failure()
        assert not b.allow()
        clock[0] = 10.0
        assert b.state == b.HALF_OPEN and b.allow()
        b.record_success()
        assert b.state == b.CLOSED and b.recoveries == 1

    def test_half_open_probe_failure_retrips(self):
        clock = [0.0]
        b = CircuitBreaker(
            failure_threshold=3, reset_after_s=5.0, clock=lambda: clock[0]
        )
        for _ in range(3):
            b.record_failure()
        clock[0] = 5.0
        assert b.state == b.HALF_OPEN
        b.record_failure()  # one strike suffices while half-open
        assert b.state == b.OPEN and b.trips == 2

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_after_s=-1.0)


class TestSupervisedPool:
    def test_happy_path_payload_shape(self, toy_registry):
        with SupervisedPool(2, _lab_config()) as pool:
            payloads = [
                pool.submit("toy").result(timeout=60),
                pool.submit("toy2").result(timeout=60),
            ]
        assert [p["exp_id"] for p in payloads] == ["toy", "toy2"]
        assert all(p["status"] == "ok" for p in payloads)
        assert all(p["error"] is None for p in payloads)
        assert payloads[0]["result"].summary == {"x": 1.0}
        assert pool.stats.workers_spawned == 2
        assert pool.stats.partial is False

    def test_killed_worker_is_replaced_and_task_redispatched(self, toy_registry):
        chaos = _quiet_chaos(kill_exp_ids=("toy",))
        with SupervisedPool(1, _lab_config(), chaos=chaos) as pool:
            payload = pool.submit("toy").result(timeout=60)
        # The kill directive fired on the first dispatch only; the
        # replacement worker ran the task cleanly to the same result.
        assert payload["status"] == "ok"
        assert payload["result"].summary == {"x": 1.0}
        assert pool.stats.worker_crashes == 1
        assert pool.stats.workers_replaced == 1
        assert pool.stats.redispatches == 1

    def test_hung_worker_hits_the_deadline_and_is_replaced(self, toy_registry):
        chaos = _quiet_chaos(hang_exp_ids=("toy2",))
        with SupervisedPool(
            1, _lab_config(), hang_timeout_s=1.0, chaos=chaos
        ) as pool:
            payload = pool.submit("toy2").result(timeout=60)
        assert payload["status"] == "ok"
        assert pool.stats.worker_hangs == 1
        assert pool.stats.workers_replaced == 1

    def test_respawn_budget_exhaustion_is_a_partial_exit(self, toy_registry):
        # Every dispatch of "toy" kills its worker and the budget allows
        # no replacements: the pool must resolve the future as a typed
        # failure instead of deadlocking the consumer.
        chaos = _quiet_chaos(kill_exp_ids=("toy",))
        with SupervisedPool(
            1, _lab_config(), respawn_budget=0, chaos=chaos
        ) as pool:
            payload = pool.submit("toy").result(timeout=60)
        assert payload["status"] == "failed"
        err = rebuild_error(payload["error"])
        assert isinstance(err, WorkerCrashError)
        assert pool.stats.partial is True

    def test_queued_work_fails_fast_once_budget_is_gone(self, toy_registry):
        chaos = _quiet_chaos(kill_exp_ids=("toy",))
        with SupervisedPool(
            1, _lab_config(), respawn_budget=0, chaos=chaos
        ) as pool:
            first = pool.submit("toy")
            second = pool.submit("toy2")
            p1 = first.result(timeout=60)
            p2 = second.result(timeout=60)
        assert p1["status"] == "failed"
        assert p2["status"] == "failed"
        assert "respawn budget" in p2["error"]["rendered"]
        assert pool.stats.partial is True

    def test_shutdown_cancels_pending_futures(self, toy_registry):
        pool = SupervisedPool(1, _lab_config())
        done = pool.submit("toy")
        done.result(timeout=60)
        pool.shutdown(cancel=True)
        with pytest.raises(RuntimeError):
            pool.submit("toy")

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="jobs"):
            SupervisedPool(0, {})
        with pytest.raises(ValueError, match="hang_timeout_s"):
            SupervisedPool(1, {}, hang_timeout_s=0.0)
        with pytest.raises(ValueError, match="respawn_budget"):
            SupervisedPool(1, {}, respawn_budget=-1)


class TestFailurePayloadContract:
    """Supervisor-synthesized failures rebuild like worker failures."""

    def test_rendered_error_round_trips(self):
        from repro.robust.supervisor import _failure_payload

        err = WorkerHangError(
            "worker running 'fig5' stopped heartbeating",
            stage="experiment",
            defect="worker stall",
        )
        payload = _failure_payload("fig5", err, attempts=2)
        rebuilt = rebuild_error(payload["error"])
        assert isinstance(rebuilt, WorkerHangError)
        assert str(rebuilt) == str(err)
        assert payload["attempts"] == 2
        assert payload["status"] == "failed"
