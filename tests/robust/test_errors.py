"""Unit tests for the error taxonomy (repro.robust.errors)."""

import pytest

from repro.lint import LayoutError
from repro.lint.diagnostics import Diagnostic, Severity
from repro.robust import (
    ArtifactError,
    ProfileError,
    ReproError,
    SimulationError,
    error_context,
)


def test_taxonomy_roots():
    assert issubclass(ProfileError, ReproError)
    assert issubclass(SimulationError, ReproError)
    assert issubclass(ArtifactError, ReproError)
    assert issubclass(LayoutError, ReproError)
    # backward compatibility: pre-taxonomy callers caught ValueError.
    assert issubclass(ProfileError, ValueError)
    assert issubclass(LayoutError, ValueError)


def test_context_attributes_and_rendering():
    err = ProfileError(
        "bad column", stage="ingest", program="app", path="/tmp/x.csv",
        defect="missing column 'bytes'",
    )
    assert err.stage == "ingest"
    assert err.program == "app"
    assert err.path == "/tmp/x.csv"
    assert err.defect == "missing column 'bytes'"
    text = str(err)
    assert "bad column" in text
    assert "stage=ingest" in text
    assert "missing column 'bytes'" in text


def test_to_dict_is_machine_readable():
    cause = KeyError("bytes")
    err = ArtifactError("truncated", path="/tmp/a.json", defect="eof", cause=cause)
    d = err.to_dict()
    assert d["type"] == "ArtifactError"
    assert d["message"] == "truncated"
    assert d["path"] == "/tmp/a.json"
    assert d["defect"] == "eof"
    assert "KeyError" in d["cause"]


def test_ensure_context_fills_only_missing_keys():
    err = SimulationError("boom", stage="optimize")
    err.ensure_context(stage="experiment", program="syn-mcf")
    assert err.stage == "optimize"  # inner context wins
    assert err.program == "syn-mcf"
    assert "program=syn-mcf" in str(err)


def test_error_context_wraps_foreign_exceptions():
    with pytest.raises(SimulationError) as exc:
        with error_context("simulate", program="p", layout="l"):
            raise IndexError("index 9 is out of bounds")
    err = exc.value
    assert err.stage == "simulate"
    assert err.program == "p"
    assert err.layout == "l"
    assert isinstance(err.cause, IndexError)
    assert isinstance(err.__cause__, IndexError)


def test_error_context_annotates_repro_errors_without_rewrapping():
    inner = ProfileError("bad trace", defect="float dtype")
    with pytest.raises(ProfileError) as exc:
        with error_context("instrument", program="p"):
            raise inner
    assert exc.value is inner
    assert exc.value.stage == "instrument"
    assert exc.value.defect == "float dtype"


def test_error_context_passes_base_exceptions_through():
    with pytest.raises(KeyboardInterrupt):
        with error_context("simulate"):
            raise KeyboardInterrupt()


def test_layout_error_carries_diagnostics_in_context():
    diag = Diagnostic("L006", Severity.ERROR, "layout", "gid 7 appears twice")
    err = LayoutError([diag])
    assert err.stage == "layout"
    assert err.defect == "L006"
    assert err.diagnostics == [diag]
    assert err.to_dict()["diagnostics"][0]["message"] == "gid 7 appears twice"
