"""Analysis-artifact memo entries (repro.perf.memo, analysis.v1 schema).

The contract under test: a memoized locality-model analysis returns an
artifact identical to a fresh kernel run; keys are sensitive to every
result-relevant parameter (and only those); disk entries survive process
turnover, tolerate corruption — including *targeted* corruption where a
valid payload lands under the wrong key — and can be invalidated.
"""

import json

import numpy as np
import pytest

from repro.cache import PAPER_L1I
from repro.core import AffinityAnalysis, affinity_coverage, build_trg
from repro.core.fastanalysis import coverage_from_analysis
from repro.perf import (
    ANALYSIS_SCHEMA,
    SimMemo,
    affinity_key,
    histogram_key,
    memo_key,
    trg_key,
)


@pytest.fixture
def trace():
    rng = np.random.default_rng(7)
    return rng.integers(0, 40, 3000).astype(np.int64)


class TestAnalysisKeys:
    def test_deterministic_and_dtype_canonicalized(self, trace):
        key = affinity_key(trace, w_max=12)
        assert key == affinity_key(trace.copy(), w_max=12)
        assert key == affinity_key(trace.astype(np.int32), w_max=12)

    def test_sensitive_to_trace_and_parameters(self, trace):
        other = trace.copy()
        other[11] += 1
        keys = {
            affinity_key(trace, w_max=12),
            affinity_key(other, w_max=12),
            affinity_key(trace, w_max=13),
            affinity_key(trace, w_max=12, time_horizon=50),
            trg_key(trace, window_blocks=64),
            trg_key(trace, window_blocks=65),
            trg_key(trace),
        }
        assert len(keys) == 7

    def test_distinct_from_other_key_spaces(self, trace):
        """The same stream must never collide across entry kinds."""
        assert affinity_key(trace, w_max=12) != trg_key(trace)
        assert affinity_key(trace, w_max=12) != memo_key(trace, PAPER_L1I)
        assert affinity_key(trace, w_max=12) != histogram_key(trace, 128)


class TestAffinityMemo:
    def test_hit_returns_identical_artifact(self, trace):
        memo = SimMemo()
        fresh = affinity_coverage(trace, w_max=12)
        first = memo.affinity_coverage(trace, w_max=12)
        hit = memo.affinity_coverage(trace, w_max=12)
        assert first == fresh
        assert hit == fresh
        assert (memo.hits, memo.misses) == (1, 1)

    def test_one_entry_serves_every_coverage_threshold(self, trace):
        """The coverage threshold is applied at query time, so the memo
        key deliberately omits it — one artifact answers all of them."""
        memo = SimMemo()
        covg = memo.affinity_coverage(trace, w_max=12)
        for coverage in (1.0, 0.9, 0.5):
            oracle = AffinityAnalysis(trace, 12, coverage=coverage)
            assert coverage_from_analysis(oracle) == covg
        assert memo.misses == 1

    def test_disk_persistence_across_instances(self, tmp_path, trace):
        fresh = affinity_coverage(trace, w_max=12, time_horizon=40)
        SimMemo(tmp_path).affinity_coverage(trace, w_max=12, time_horizon=40)
        reread = SimMemo(tmp_path)
        assert reread.affinity_coverage(trace, w_max=12, time_horizon=40) == fresh
        assert (reread.hits, reread.misses) == (1, 0)

    def test_corrupt_entry_unlinked_and_recomputed(self, tmp_path, trace):
        memo = SimMemo(tmp_path)
        key = affinity_key(trace, w_max=12)
        fresh = memo.affinity_coverage(trace, w_max=12)
        (tmp_path / f"{key}.json").write_text("{ truncated")
        reread = SimMemo(tmp_path)
        assert reread.affinity_coverage(trace, w_max=12) == fresh
        assert (reread.hits, reread.misses) == (0, 1)
        # the corrupt file was replaced by a valid recomputed entry.
        raw = json.loads((tmp_path / f"{key}.json").read_text())
        assert raw["schema"] == ANALYSIS_SCHEMA

    def test_stale_schema_entry_dropped(self, tmp_path, trace):
        memo = SimMemo(tmp_path)
        key = affinity_key(trace, w_max=12)
        memo.affinity_coverage(trace, w_max=12)
        path = tmp_path / f"{key}.json"
        raw = json.loads(path.read_text())
        raw["schema"] = "repro.perf.memo.analysis.v0"
        path.write_text(json.dumps(raw))
        reread = SimMemo(tmp_path)
        reread.affinity_coverage(trace, w_max=12)
        assert reread.misses == 1
        assert json.loads(path.read_text())["schema"] == ANALYSIS_SCHEMA

    def test_wrong_parameters_under_right_key_rejected(self, tmp_path, trace):
        """Targeted corruption: a *valid* payload computed for different
        parameters sitting under this key must not be served."""
        memo = SimMemo(tmp_path)
        memo.affinity_coverage(trace, w_max=12)
        wrong = affinity_coverage(trace, w_max=8).to_dict()
        key = affinity_key(trace, w_max=12)
        (tmp_path / f"{key}.json").write_text(
            json.dumps({"schema": ANALYSIS_SCHEMA, **wrong})
        )
        reread = SimMemo(tmp_path)
        served = reread.affinity_coverage(trace, w_max=12)
        assert served.w_max == 12
        assert served == affinity_coverage(trace, w_max=12)
        assert reread.misses == 1  # the mismatched entry never hit

    def test_invalidate_covers_analysis_entries(self, tmp_path, trace):
        memo = SimMemo(tmp_path)
        key = affinity_key(trace, w_max=12)
        memo.affinity_coverage(trace, w_max=12)
        assert memo.invalidate(key)
        assert not memo.invalidate(key)
        assert not (tmp_path / f"{key}.json").exists()
        memo.affinity_coverage(trace, w_max=12)
        assert memo.misses == 2  # recomputed after invalidation


class TestTrgMemo:
    def test_hit_matches_scalar_oracle(self, trace):
        memo = SimMemo()
        oracle = build_trg(trace, window_blocks=64)
        first = memo.trg(trace, window_blocks=64)
        hit = memo.trg(trace, window_blocks=64)
        assert first.weights == oracle.weights
        assert first.nodes == oracle.nodes
        assert hit.weights == oracle.weights
        assert (memo.hits, memo.misses) == (1, 1)

    def test_hit_result_is_not_aliased(self, trace):
        """Callers mutate TRGs (reduce_trg consumes them) — every replay
        must hand out a fresh graph."""
        memo = SimMemo()
        a = memo.trg(trace, window_blocks=64)
        a.weights.clear()
        assert memo.trg(trace, window_blocks=64).weights

    def test_disk_persistence_across_instances(self, tmp_path, trace):
        oracle = build_trg(trace, window_blocks=64)
        SimMemo(tmp_path).trg(trace, window_blocks=64)
        reread = SimMemo(tmp_path)
        assert reread.trg(trace, window_blocks=64).weights == oracle.weights
        assert (reread.hits, reread.misses) == (1, 0)


class TestHasAnalysis:
    def test_peek_without_counters(self, tmp_path, trace):
        memo = SimMemo(tmp_path)
        key = affinity_key(trace, w_max=12)
        assert not memo.has_analysis(key)
        memo.affinity_coverage(trace, w_max=12)
        assert memo.has_analysis(key)
        # a fresh instance sees the disk entry; counters stay untouched.
        reread = SimMemo(tmp_path)
        assert reread.has_analysis(key)
        assert (reread.hits, reread.misses) == (0, 0)

    def test_put_analysis_feeds_later_consumption(self, trace):
        """The precompute path: a payload computed elsewhere (a worker)
        is injected and later consumed as a hit."""
        memo = SimMemo()
        key = affinity_key(trace, w_max=12)
        memo.put_analysis(key, affinity_coverage(trace, w_max=12).to_dict())
        assert memo.has_analysis(key)
        served = memo.affinity_coverage(trace, w_max=12)
        assert served == affinity_coverage(trace, w_max=12)
        assert (memo.hits, memo.misses) == (1, 0)
