"""Kernel-backend registry tests (repro.perf.backends).

The contract under test: every registered tier — ``scalar``, ``numpy``,
and (when numba is installed) ``compiled`` — produces **bit-identical**
histograms, affinity coverage tables, and TRGs; resolution degrades
``compiled -> numpy -> scalar`` under ``strict=False``; and backend
choice never enters memo keys, so a memo populated by one tier is a
cache hit for every other.

The ``compiled`` tier's *logic* is pinned here on every machine: its
kernel bodies are plain Python until numba decorates them, so the
parity matrix runs them undecorated even where the tier itself is not
registered.  The CI ``[compiled]`` job proves the same functions JIT.
"""

import numpy as np
import pytest

from repro.perf._numba_kernels import HAVE_NUMBA
from repro.perf.backends import (
    _COMPILED,
    _SCALAR,
    RESOLUTION_ORDER,
    available_backends,
    default_backend,
    resolve_backend,
)

ALL_TIERS = ("scalar", "numpy", "compiled")


def _random_trace(rng, n_syms_hi=60, n_hi=900):
    return rng.integers(0, rng.integers(2, n_syms_hi), rng.integers(1, n_hi))


# -- registry + resolution ----------------------------------------------------


def test_registry_contents():
    names = available_backends()
    assert "numpy" in names and "scalar" in names
    assert names.index("numpy") < names.index("scalar")  # fastest first
    assert ("compiled" in names) == HAVE_NUMBA
    assert tuple(names) == tuple(n for n in RESOLUTION_ORDER if n in names)


def test_default_is_fastest_available():
    assert default_backend() == available_backends()[0]
    assert resolve_backend(None).name == default_backend()
    assert resolve_backend(None, strict=False).name == default_backend()


def test_unknown_backend_always_raises():
    with pytest.raises(ValueError, match="unknown kernel backend"):
        resolve_backend("magic")
    with pytest.raises(ValueError, match="unknown kernel backend"):
        resolve_backend("magic", strict=False)


def test_known_names_resolve_to_themselves_when_available():
    for name in available_backends():
        assert resolve_backend(name).name == name
        assert resolve_backend(name, strict=False).name == name


@pytest.mark.skipif(HAVE_NUMBA, reason="compiled tier is installed here")
def test_unavailable_compiled_strict_vs_degrade():
    with pytest.raises(ValueError, match="not available"):
        resolve_backend("compiled")
    # strict=False walks down the resolution order instead — the worker
    # inheritance path (compiled parent, numba-less worker).
    assert resolve_backend("compiled", strict=False).name == "numpy"


# -- cross-backend parity matrix ----------------------------------------------

def _backend_under_test(name):
    """The tier to exercise, or a skip for a genuinely absent one.

    ``compiled`` is special-cased: when numba is missing its kernel
    bodies still run as plain Python, so its logic is tested everywhere
    via the unregistered ``_COMPILED`` backend object.
    """
    if name in available_backends():
        return resolve_backend(name)
    if name == "compiled":
        return _COMPILED
    pytest.skip(f"backend {name!r} unavailable")  # pragma: no cover


@pytest.mark.parametrize("name", ALL_TIERS)
def test_histogram_parity_matrix(name):
    backend = _backend_under_test(name)
    rng = np.random.default_rng(2014_0731)
    for trial in range(8):
        n_sets = int(rng.choice([1, 2, 8, 128]))
        lines = rng.integers(0, rng.integers(4, 4000), rng.integers(0, 2500))
        assert backend.histogram(lines, n_sets) == _SCALAR.histogram(
            lines, n_sets
        ), (name, trial, n_sets)


@pytest.mark.parametrize("name", ALL_TIERS)
def test_affinity_parity_matrix(name):
    backend = _backend_under_test(name)
    rng = np.random.default_rng(51)
    for trial in range(6):
        trace = _random_trace(rng)
        w_max = int(rng.integers(1, 9))
        horizon = None if rng.random() < 0.5 else int(rng.integers(0, 60))
        got = backend.affinity(trace, w_max=w_max, time_horizon=horizon)
        want = _SCALAR.affinity(trace, w_max=w_max, time_horizon=horizon)
        assert got == want, (name, trial, w_max, horizon)


@pytest.mark.parametrize("name", ALL_TIERS)
def test_trg_parity_matrix(name):
    backend = _backend_under_test(name)
    rng = np.random.default_rng(77)
    for trial in range(6):
        trace = _random_trace(rng)
        window = None if rng.random() < 0.4 else int(rng.integers(1, 24))
        got = backend.trg(trace, window)
        want = _SCALAR.trg(trace, window)
        assert got.weights == want.weights, (name, trial, window)
        assert got.nodes == want.nodes, (name, trial, window)


# -- memo keys are backend-free -----------------------------------------------


def test_cross_backend_memo_hits(tmp_path):
    """A memo populated by one tier replays for every other tier.

    This pins the design decision that backend choice does NOT enter
    memo keys: results are bit-identical by contract, so keying on the
    tier would only fragment the cache.
    """
    from repro.perf.memo import SimMemo

    rng = np.random.default_rng(13)
    stream = rng.integers(0, 700, 3000)
    trace = _random_trace(rng)

    writer = SimMemo(tmp_path)
    hist = writer.histogram(stream, 128, backend=resolve_backend("numpy"))
    covg = writer.affinity_coverage(
        trace, w_max=4, backend=resolve_backend("numpy")
    )
    trg = writer.trg(trace, window_blocks=16, backend=resolve_backend("numpy"))
    assert writer.misses == 3

    # A different tier against the same directory: all hits, no kernels
    # run (the scalar oracle would be the one to notice).
    for other in (_SCALAR, _COMPILED):
        reader = SimMemo(tmp_path)
        assert reader.histogram(stream, 128, backend=other) == hist
        assert reader.affinity_coverage(trace, w_max=4, backend=other) == covg
        replay = reader.trg(trace, window_blocks=16, backend=other)
        assert replay.weights == trg.weights and replay.nodes == trg.nodes
        assert reader.misses == 0 and reader.hits == 3


# -- worker inheritance -------------------------------------------------------


def test_cell_pool_degrades_requested_tier(tmp_path):
    """A pool asked for ``compiled`` on a numba-less machine degrades its
    workers to ``numpy`` and still matches the scalar oracle."""
    from repro.perf.parallel import CellPool, analysis_cells, histogram_cells

    rng = np.random.default_rng(5)
    streams = [rng.integers(0, 900, 2000) for _ in range(4)]
    traces = [_random_trace(rng) for _ in range(2)]
    cells = [(s, 128) for s in streams]
    acells = [("affinity", traces[0], 4, None), ("trg", traces[1], 12)]
    with CellPool(2, kernel_backend="compiled") as pool:
        hists = histogram_cells(cells, pool=pool)
        payloads = analysis_cells(acells, pool=pool)
    for stream, hist in zip(streams, hists):
        assert hist == _SCALAR.histogram(stream, 128)
    assert payloads[0] == _SCALAR.affinity(traces[0], w_max=4).to_dict()
    from repro.core.fastanalysis import trg_to_payload

    assert payloads[1] == trg_to_payload(_SCALAR.trg(traces[1], 12), 12)


def test_lab_threads_backend_through_spawn_config():
    from repro.experiments.pipeline import Lab

    lab = Lab(scale=0.05, kernel_backend="scalar")
    cfg = lab.spawn_config()
    assert cfg["kernel_backend"] == "scalar"
    assert lab.optimizer_config.kernel_backend == "scalar"
    # A worker reconstructs an identical lab from the picklable config.
    clone = Lab(**cfg)
    assert clone.kernel_backend == "scalar"
    # Requesting an uninstalled tier must not blow up a worker: the lab
    # resolves strict=False and degrades.
    degraded = Lab(scale=0.05, kernel_backend="compiled")
    assert degraded._backend.name == default_backend() or HAVE_NUMBA
