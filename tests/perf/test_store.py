"""Zero-copy trace store (repro.perf.store) + store-backed parity.

The contract under test: the store is a transport optimization only.
Publishing streams as mmap-backed entries and shipping StoreRef
descriptors must never change a simulated result, and any damage to the
on-disk entries must surface as a recomputable miss — never as wrong
data.
"""

import io
import pickle
import re
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.experiments import Lab
from repro.experiments.runner import run_suite
from repro.perf import (
    StoreRef,
    TraceStore,
    compare_journal_outcomes,
    histogram_key,
    memo_key,
    trace_digest,
)
from repro.robust import RunJournal

IDS = ["ablation-optimal-gap", "ablation-pruning"]


def _strip_timings(text: str) -> str:
    return re.sub(r"\[\d+\.\d+s(, \d+ attempt\(s\))?\]", "[T]", text)


class TestRoundTrip:
    def test_put_get_roundtrip(self, tmp_path):
        store = TraceStore(tmp_path)
        trace = np.arange(1000, dtype=np.int64) % 37
        key = store.put(trace)
        got = store.get(key)
        np.testing.assert_array_equal(np.asarray(got), trace)
        assert store.puts == 1 and store.hits == 1

    def test_canonicalizes_dtype_and_lists(self, tmp_path):
        store = TraceStore(tmp_path)
        as_i32 = np.array([5, 3, 5, 8], dtype=np.int32)
        as_list = [5, 3, 5, 8]
        key = store.put(as_i32)
        assert store.put(np.asarray(as_list)) == key  # same content, same key
        got = store.get(key)
        assert got.dtype == np.dtype("<i8")
        np.testing.assert_array_equal(np.asarray(got), [5, 3, 5, 8])

    def test_views_are_read_only(self, tmp_path):
        store = TraceStore(tmp_path)
        key = store.put(np.array([1, 2, 3], dtype=np.int64))
        got = store.get(key)
        with pytest.raises((ValueError, TypeError)):
            got[0] = 99

    def test_duplicate_put_is_deduped(self, tmp_path):
        store = TraceStore(tmp_path)
        trace = np.array([7, 7, 7], dtype=np.int64)
        k1 = store.put(trace)
        k2 = store.put(trace.copy())
        assert k1 == k2
        assert store.puts == 1 and store.dup_puts == 1
        assert len(list(tmp_path.glob("*.npy"))) == 1

    def test_missing_key_is_a_miss(self, tmp_path):
        store = TraceStore(tmp_path)
        assert store.get("0" * 64) is None
        assert store.misses == 1 and store.corrupt_dropped == 0


class TestKeyUnification:
    """One digest keys the store entry AND every memo entry."""

    def test_digest_passthrough(self):
        trace = np.array([4, 1, 4, 1], dtype=np.int64)
        digest = trace_digest(trace)
        assert trace_digest(digest) == digest
        assert len(digest) == 64

    def test_store_key_is_the_digest(self, tmp_path):
        store = TraceStore(tmp_path)
        trace = np.arange(64, dtype=np.int64)
        assert store.put(trace) == trace_digest(trace)

    def test_memo_keys_accept_digest(self):
        from repro.cache import PAPER_L1I

        trace = np.array([2, 9, 2, 9, 5], dtype=np.int64)
        digest = trace_digest(trace)
        assert histogram_key(trace, 64) == histogram_key(digest, 64)
        assert memo_key(trace, PAPER_L1I) == memo_key(digest, PAPER_L1I)

    def test_precomputed_key_skips_rehash(self, tmp_path):
        store = TraceStore(tmp_path)
        trace = np.arange(32, dtype=np.int64)
        digest = trace_digest(trace)
        ref = store.ref(trace, key=digest)
        assert ref.key == digest
        assert ref.length == 32
        np.testing.assert_array_equal(np.asarray(store.resolve(ref)), trace)


class TestStoreRef:
    def test_descriptor_is_small(self):
        ref = StoreRef("a" * 64, 10**9)
        assert len(pickle.dumps(ref)) < 200  # descriptor, not payload
        assert ref.nbytes == 8 * 10**9

    def test_resolve_passthrough_for_arrays(self, tmp_path):
        store = TraceStore(tmp_path)
        arr = np.array([1, 2], dtype=np.int64)
        np.testing.assert_array_equal(store.resolve(arr), arr)

    def test_resolve_missing_entry_raises(self, tmp_path):
        store = TraceStore(tmp_path)
        with pytest.raises(KeyError):
            store.resolve(StoreRef("b" * 64, 4))


class TestCorruption:
    def _published(self, tmp_path):
        store = TraceStore(tmp_path)
        key = store.put(np.arange(256, dtype=np.int64))
        return store, key

    def test_garbled_entry_dropped_and_unlinked(self, tmp_path):
        store, key = self._published(tmp_path)
        path = tmp_path / f"{key}.npy"
        path.write_bytes(b"not an npy file at all")
        fresh = TraceStore(tmp_path)  # no warm map cache
        assert fresh.get(key) is None
        assert fresh.corrupt_dropped == 1 and fresh.misses == 1
        assert not path.exists()

    def test_truncated_entry_dropped(self, tmp_path):
        store, key = self._published(tmp_path)
        path = tmp_path / f"{key}.npy"
        path.write_bytes(path.read_bytes()[:100])
        fresh = TraceStore(tmp_path)
        assert fresh.get(key) is None
        assert fresh.corrupt_dropped == 1

    def test_wrong_dtype_rejected(self, tmp_path):
        store = TraceStore(tmp_path)
        key = "c" * 64
        store.root.mkdir(parents=True, exist_ok=True)
        np.save(tmp_path / f"{key}.npy", np.zeros(8, dtype=np.float64))
        assert store.get(key) is None
        assert store.corrupt_dropped == 1

    def test_wrong_shape_rejected(self, tmp_path):
        store = TraceStore(tmp_path)
        key = "d" * 64
        store.root.mkdir(parents=True, exist_ok=True)
        np.save(tmp_path / f"{key}.npy", np.zeros((4, 4), dtype=np.int64))
        assert store.get(key) is None
        assert store.corrupt_dropped == 1

    def test_verify_catches_content_swap(self, tmp_path):
        # A structurally valid .npy whose bytes no longer match the key:
        # invisible to the fast path, caught by the content scrub.
        store, key = self._published(tmp_path)
        np.save(tmp_path / f"{key}.npy", np.arange(9, dtype=np.int64))
        fresh = TraceStore(tmp_path)
        assert fresh.verify(key) is False
        assert not (tmp_path / f"{key}.npy").exists()

    def test_scrub_keeps_good_drops_bad(self, tmp_path):
        store = TraceStore(tmp_path)
        store.put(np.arange(16, dtype=np.int64))
        bad_key = store.put(np.arange(99, dtype=np.int64))
        np.save(tmp_path / f"{bad_key}.npy", np.ones(3, dtype=np.int64))
        (tmp_path / "leftover.npy.tmp").write_bytes(b"killed writer debris")
        fresh = TraceStore(tmp_path)
        assert fresh.scrub() == (1, 1)
        assert not (tmp_path / "leftover.npy.tmp").exists()


def _publish_and_read(root):
    """Cross-process exercise: every process publishes the same streams
    (racing on identical keys) and reads back what it published."""
    store = TraceStore(root)
    rng = np.random.default_rng(7)  # same streams in every process
    out = []
    for _ in range(4):
        trace = rng.integers(0, 500, 3000).astype(np.int64)
        ref = store.ref(trace)
        got = np.asarray(store.resolve(ref))
        out.append((ref.key, int(got.sum())))
    return out


class TestConcurrentAccess:
    def test_racing_publishers_and_readers_agree(self, tmp_path):
        with ProcessPoolExecutor(max_workers=3) as pool:
            results = list(pool.map(_publish_and_read, [str(tmp_path)] * 3))
        # Same content everywhere: identical keys, identical sums, and
        # exactly one on-disk entry per distinct stream.
        assert results[0] == results[1] == results[2]
        keys = {k for run in results for (k, _) in run}
        assert len(list(tmp_path.glob("*.npy"))) == len(keys) == 4


class TestStoreParity:
    """The acceptance gate: store-backed runs change nothing but bytes."""

    CELLS = [
        ("syn-gcc", "baseline", "hw"),
        ("syn-gcc", "baseline", "sim"),
        ("syn-mcf", "baseline", "hw"),
        ("syn-mcf", "baseline", "sim"),
    ]

    def test_lab_cells_match_serial_storeless(self, tmp_path):
        stored = Lab(scale=0.05, jobs=2, store=TraceStore(tmp_path / "store"))
        with stored:
            stored.precompute_solo(self.CELLS)
            plain = Lab(scale=0.05)
            for name, layout, channel in self.CELLS:
                assert stored.solo_miss(name, layout, channel) == plain.solo_miss(
                    name, layout, channel
                ), (name, layout, channel)
        assert stored.counters["store_bytes_shipped"] > 0
        assert stored.store.puts > 0

    def test_ref_bytes_orders_of_magnitude_below_mapped(self, tmp_path):
        lab = Lab(scale=0.05, jobs=2, store=TraceStore(tmp_path / "store"))
        with lab:
            lab.precompute_solo(self.CELLS)
        shipped = lab.counters["store_bytes_shipped"]
        mapped = lab.counters["store_bytes_mapped"]
        assert mapped >= 10 * shipped  # the ISSUE's >=10x reduction gate

    def test_journal_parity_with_store(self, tmp_path):
        def run(tag, *, jobs, store):
            lab = Lab(scale=0.05, noise_sigma=0.0, store=store)
            journal = RunJournal(tmp_path / f"{tag}.jsonl")
            out = io.StringIO()
            with lab:
                outcomes = run_suite(
                    lab, IDS, journal=journal, out=out, jobs=jobs, keep_going=True
                )
            return outcomes, journal, out.getvalue()

        serial, js, text_s = run("serial", jobs=1, store=None)
        stored, jp, text_p = run(
            "stored", jobs=2, store=TraceStore(tmp_path / "store")
        )
        assert _strip_timings(text_s) == _strip_timings(text_p)
        assert [o.status for o in serial] == [o.status for o in stored]
        assert [o.result.to_text() for o in serial] == [
            o.result.to_text() for o in stored
        ]
        assert compare_journal_outcomes(
            [vars(e) for e in js.entries()], [vars(e) for e in jp.entries()]
        ) == []


class TestDriverParity:
    def test_driver_with_store_matches_plain(self, tmp_path):
        from repro.compiler import Driver
        from repro.workloads import build

        prog, module = build("syn-mcf", ref_blocks=8_000, test_blocks=5_000)
        plain = Driver(optimizers=["bb-affinity"]).build(
            module, prog.spec.test_input(), prog.spec.ref_input()
        )
        with Driver(
            optimizers=["bb-affinity"],
            jobs=2,
            store=TraceStore(tmp_path / "store"),
        ) as driver:
            stored = driver.build(
                module, prog.spec.test_input(), prog.spec.ref_input()
            )
        assert stored.miss_ratios == plain.miss_ratios
        assert driver.store.puts > 0  # streams really routed through the store
