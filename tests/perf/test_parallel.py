"""Parallel execution parity (repro.perf.parallel + runner --jobs).

The acceptance contract: a ``--jobs N`` suite run produces byte-identical
outcomes, journal entries, and report text to the serial run, modulo
timing fields — including under injected failures, retries, and resume.
"""

import io
import re

import numpy as np
import pytest

from repro.cache import PAPER_L1I, simulate
from repro.experiments import Lab
from repro.experiments.runner import run_suite
from repro.perf import (
    analysis_cells,
    compare_journal_outcomes,
    histogram_cells,
    rebuild_error,
    simulate_cells,
)
from repro.robust import ProfileError, RunJournal, SimulationError

FAST = "ablation-optimal-gap"
FAST2 = "ablation-pruning"
IDS = [FAST, FAST2]


def _strip_timings(text: str) -> str:
    return re.sub(r"\[\d+\.\d+s(, \d+ attempt\(s\))?\]", "[T]", text)


def _run(tmp_path, tag, *, jobs, **kwargs):
    lab = Lab(scale=0.05, noise_sigma=0.0)
    journal = RunJournal(tmp_path / f"{tag}.jsonl")
    out = io.StringIO()
    outcomes = run_suite(
        lab, IDS, journal=journal, out=out, jobs=jobs, keep_going=True, **kwargs
    )
    return outcomes, journal, out.getvalue()


class TestSuiteParity:
    def test_parallel_matches_serial(self, tmp_path):
        serial, js, text_s = _run(tmp_path, "serial", jobs=1)
        parallel, jp, text_p = _run(tmp_path, "parallel", jobs=2)
        assert _strip_timings(text_s) == _strip_timings(text_p)
        assert [o.status for o in serial] == [o.status for o in parallel]
        assert [o.result.to_text() for o in serial] == [
            o.result.to_text() for o in parallel
        ]
        assert compare_journal_outcomes(
            [vars(e) for e in js.entries()], [vars(e) for e in jp.entries()]
        ) == []

    def test_parallel_failure_parity(self, tmp_path):
        serial, js, text_s = _run(tmp_path, "serial", jobs=1, inject_fault=FAST)
        parallel, jp, text_p = _run(tmp_path, "par", jobs=2, inject_fault=FAST)
        assert _strip_timings(text_s) == _strip_timings(text_p)
        assert isinstance(parallel[0].error, SimulationError)
        assert str(parallel[0].error) == str(serial[0].error)
        assert js.entries()[0].error == jp.entries()[0].error

    def test_parallel_stops_at_first_failure_without_keep_going(self, tmp_path):
        lab = Lab(scale=0.05, noise_sigma=0.0)
        outcomes = run_suite(
            lab, IDS, inject_fault=FAST, out=io.StringIO(), jobs=2
        )
        assert [o.exp_id for o in outcomes] == [FAST]
        assert outcomes[0].status == "failed"

    def test_parallel_resume_skips_completed(self, tmp_path):
        lab = Lab(scale=0.05, noise_sigma=0.0)
        journal = RunJournal(tmp_path / "resume.jsonl")
        run_suite(
            lab, IDS, journal=journal, keep_going=True,
            inject_fault=FAST2, out=io.StringIO(), jobs=2,
        )
        second = run_suite(
            lab, IDS, journal=journal, keep_going=True, resume=True,
            out=io.StringIO(), jobs=2,
        )
        by_id = {o.exp_id: o for o in second}
        assert by_id[FAST].status == "skipped"
        assert by_id[FAST2].status == "ok"
        assert journal.completed() == {FAST, FAST2}

    def test_jobs_validated(self):
        with pytest.raises(ValueError, match="jobs"):
            run_suite(Lab(scale=0.05), [FAST], jobs=0, out=io.StringIO())


class TestPrecomputeSolo:
    """Cell-level fan-out inside the Lab (satellite cross-check)."""

    CELLS = [
        ("syn-gcc", "baseline", "hw"),
        ("syn-gcc", "baseline", "sim"),
        ("syn-mcf", "baseline", "hw"),
        ("syn-mcf", "baseline", "sim"),
    ]

    def test_parallel_cells_match_serial_solo_miss(self):
        fanned = Lab(scale=0.05, jobs=2)
        fanned.precompute_solo(self.CELLS)
        serial = Lab(scale=0.05)
        for name, layout, channel in self.CELLS:
            assert fanned.solo_miss(name, layout, channel) == serial.solo_miss(
                name, layout, channel
            ), (name, layout, channel)

    def test_serial_precompute_equals_lazy(self):
        eager = Lab(scale=0.05)
        eager.precompute_solo(self.CELLS, jobs=1)
        lazy = Lab(scale=0.05)
        for cell in self.CELLS:
            assert eager.solo_miss(*cell) == lazy.solo_miss(*cell)

    def test_rejects_unknown_channel(self):
        with pytest.raises(ValueError, match="unknown channel"):
            Lab(scale=0.05).precompute_solo([("syn-gcc", "baseline", "spectre")])


class TestSimulateCells:
    def test_results_identical_to_serial(self):
        rng = np.random.default_rng(3)
        cells = [
            (rng.integers(0, 600, 4000), PAPER_L1I, bool(i % 2)) for i in range(5)
        ]
        parallel = simulate_cells(cells, jobs=2)
        serial = [simulate(lines, cfg, prefetch=pf) for lines, cfg, pf in cells]
        assert parallel == serial

    def test_empty(self):
        assert simulate_cells([], jobs=2) == []


class TestHistogramCells:
    def test_results_identical_to_serial(self):
        from repro.cache import stack_distance_histogram

        rng = np.random.default_rng(8)
        cells = [(rng.integers(0, 600, 4000), 1 << (i % 3 + 5)) for i in range(5)]
        parallel = histogram_cells(cells, jobs=2)
        serial = [stack_distance_histogram(lines, n_sets) for lines, n_sets in cells]
        assert parallel == serial
        # One histogram per cell answers every associativity.
        from repro.cache import CacheConfig

        lines, n_sets = cells[0]
        cfg = CacheConfig(size_bytes=n_sets * 4 * 64, assoc=4, line_bytes=64)
        assert parallel[0].stats(4) == simulate(lines, cfg)

    def test_empty(self):
        assert histogram_cells([], jobs=2) == []


class TestAnalysisCells:
    def test_results_identical_to_serial(self):
        from repro.core import affinity_coverage, build_trg_fast
        from repro.core.fastanalysis import trg_to_payload

        rng = np.random.default_rng(5)
        traces = [rng.integers(0, 30, 2000) for _ in range(3)]
        cells = [("affinity", t, 8, None) for t in traces] + [
            ("trg", t, 64) for t in traces
        ]
        parallel = analysis_cells(cells, jobs=2)
        serial = analysis_cells(cells, jobs=1)
        assert parallel == serial
        assert parallel[0] == affinity_coverage(traces[0], w_max=8).to_dict()
        assert parallel[3] == trg_to_payload(
            build_trg_fast(traces[0], window_blocks=64), 64
        )

    def test_payloads_feed_the_memo(self):
        """The precompute handshake: worker payloads injected via
        put_analysis replay as artifacts identical to direct kernel runs."""
        from repro.core import affinity_coverage
        from repro.perf import SimMemo, affinity_key

        rng = np.random.default_rng(6)
        trace = rng.integers(0, 30, 2000)
        (payload,) = analysis_cells([("affinity", trace, 8, None)], jobs=1)
        memo = SimMemo()
        memo.put_analysis(affinity_key(trace, w_max=8), payload)
        assert memo.affinity_coverage(trace, w_max=8) == affinity_coverage(
            trace, w_max=8
        )
        assert (memo.hits, memo.misses) == (1, 0)

    def test_empty_and_unknown_kind(self):
        assert analysis_cells([], jobs=2) == []
        with pytest.raises(ValueError, match="unknown analysis cell kind"):
            analysis_cells([("zipf", None)], jobs=1)


class TestRebuildError:
    def test_subclass_context_and_rendering_survive(self):
        original = ProfileError(
            "bad trace", stage="prepare", program="syn-gcc", defect="float dtype"
        )
        payload = {
            "type": "ProfileError",
            "dict": original.to_dict(),
            "rendered": str(original),
        }
        rebuilt = rebuild_error(payload)
        assert isinstance(rebuilt, ProfileError)
        assert str(rebuilt) == str(original)
        assert rebuilt.stage == "prepare"
        assert rebuilt.program == "syn-gcc"

    def test_unknown_type_falls_back_to_simulation_error(self):
        rebuilt = rebuild_error({"type": "Exotic", "dict": {"message": "x"}})
        assert isinstance(rebuilt, SimulationError)
