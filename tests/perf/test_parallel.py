"""Parallel execution parity (repro.perf.parallel + runner --jobs).

The acceptance contract: a ``--jobs N`` suite run produces byte-identical
outcomes, journal entries, and report text to the serial run, modulo
timing fields — including under injected failures, retries, and resume.
"""

import io
import os
import re
import signal

import numpy as np
import pytest

from repro.cache import PAPER_L1I, simulate
from repro.experiments import Lab
from repro.experiments.runner import run_suite
from repro.perf import (
    CellPool,
    ExperimentPool,
    analysis_cells,
    compare_journal_outcomes,
    histogram_cells,
    rebuild_error,
    simulate_cells,
)
from repro.perf.parallel import _pool_map
from repro.robust import ProfileError, RunJournal, SimulationError

FAST = "ablation-optimal-gap"
FAST2 = "ablation-pruning"
IDS = [FAST, FAST2]


def _strip_timings(text: str) -> str:
    return re.sub(r"\[\d+\.\d+s(, \d+ attempt\(s\))?\]", "[T]", text)


def _run(tmp_path, tag, *, jobs, **kwargs):
    lab = Lab(scale=0.05, noise_sigma=0.0)
    journal = RunJournal(tmp_path / f"{tag}.jsonl")
    out = io.StringIO()
    outcomes = run_suite(
        lab, IDS, journal=journal, out=out, jobs=jobs, keep_going=True, **kwargs
    )
    return outcomes, journal, out.getvalue()


class TestSuiteParity:
    def test_parallel_matches_serial(self, tmp_path):
        serial, js, text_s = _run(tmp_path, "serial", jobs=1)
        parallel, jp, text_p = _run(tmp_path, "parallel", jobs=2)
        assert _strip_timings(text_s) == _strip_timings(text_p)
        assert [o.status for o in serial] == [o.status for o in parallel]
        assert [o.result.to_text() for o in serial] == [
            o.result.to_text() for o in parallel
        ]
        assert compare_journal_outcomes(
            [vars(e) for e in js.entries()], [vars(e) for e in jp.entries()]
        ) == []

    def test_parallel_failure_parity(self, tmp_path):
        serial, js, text_s = _run(tmp_path, "serial", jobs=1, inject_fault=FAST)
        parallel, jp, text_p = _run(tmp_path, "par", jobs=2, inject_fault=FAST)
        assert _strip_timings(text_s) == _strip_timings(text_p)
        assert isinstance(parallel[0].error, SimulationError)
        assert str(parallel[0].error) == str(serial[0].error)
        assert js.entries()[0].error == jp.entries()[0].error

    def test_parallel_stops_at_first_failure_without_keep_going(self, tmp_path):
        lab = Lab(scale=0.05, noise_sigma=0.0)
        outcomes = run_suite(
            lab, IDS, inject_fault=FAST, out=io.StringIO(), jobs=2
        )
        assert [o.exp_id for o in outcomes] == [FAST]
        assert outcomes[0].status == "failed"

    def test_parallel_resume_skips_completed(self, tmp_path):
        lab = Lab(scale=0.05, noise_sigma=0.0)
        journal = RunJournal(tmp_path / "resume.jsonl")
        run_suite(
            lab, IDS, journal=journal, keep_going=True,
            inject_fault=FAST2, out=io.StringIO(), jobs=2,
        )
        second = run_suite(
            lab, IDS, journal=journal, keep_going=True, resume=True,
            out=io.StringIO(), jobs=2,
        )
        by_id = {o.exp_id: o for o in second}
        assert by_id[FAST].status == "skipped"
        assert by_id[FAST2].status == "ok"
        assert journal.completed() == {FAST, FAST2}

    def test_jobs_validated(self):
        with pytest.raises(ValueError, match="jobs"):
            run_suite(Lab(scale=0.05), [FAST], jobs=0, out=io.StringIO())


class TestPrecomputeSolo:
    """Cell-level fan-out inside the Lab (satellite cross-check)."""

    CELLS = [
        ("syn-gcc", "baseline", "hw"),
        ("syn-gcc", "baseline", "sim"),
        ("syn-mcf", "baseline", "hw"),
        ("syn-mcf", "baseline", "sim"),
    ]

    def test_parallel_cells_match_serial_solo_miss(self):
        fanned = Lab(scale=0.05, jobs=2)
        fanned.precompute_solo(self.CELLS)
        serial = Lab(scale=0.05)
        for name, layout, channel in self.CELLS:
            assert fanned.solo_miss(name, layout, channel) == serial.solo_miss(
                name, layout, channel
            ), (name, layout, channel)

    def test_serial_precompute_equals_lazy(self):
        eager = Lab(scale=0.05)
        eager.precompute_solo(self.CELLS, jobs=1)
        lazy = Lab(scale=0.05)
        for cell in self.CELLS:
            assert eager.solo_miss(*cell) == lazy.solo_miss(*cell)

    def test_rejects_unknown_channel(self):
        with pytest.raises(ValueError, match="unknown channel"):
            Lab(scale=0.05).precompute_solo([("syn-gcc", "baseline", "spectre")])


class TestSimulateCells:
    def test_results_identical_to_serial(self):
        rng = np.random.default_rng(3)
        cells = [
            (rng.integers(0, 600, 4000), PAPER_L1I, bool(i % 2)) for i in range(5)
        ]
        parallel = simulate_cells(cells, jobs=2)
        serial = [simulate(lines, cfg, prefetch=pf) for lines, cfg, pf in cells]
        assert parallel == serial

    def test_empty(self):
        assert simulate_cells([], jobs=2) == []


class TestHistogramCells:
    def test_results_identical_to_serial(self):
        from repro.cache import stack_distance_histogram

        rng = np.random.default_rng(8)
        cells = [(rng.integers(0, 600, 4000), 1 << (i % 3 + 5)) for i in range(5)]
        parallel = histogram_cells(cells, jobs=2)
        serial = [stack_distance_histogram(lines, n_sets) for lines, n_sets in cells]
        assert parallel == serial
        # One histogram per cell answers every associativity.
        from repro.cache import CacheConfig

        lines, n_sets = cells[0]
        cfg = CacheConfig(size_bytes=n_sets * 4 * 64, assoc=4, line_bytes=64)
        assert parallel[0].stats(4) == simulate(lines, cfg)

    def test_empty(self):
        assert histogram_cells([], jobs=2) == []


class TestAnalysisCells:
    def test_results_identical_to_serial(self):
        from repro.core import affinity_coverage, build_trg_fast
        from repro.core.fastanalysis import trg_to_payload

        rng = np.random.default_rng(5)
        traces = [rng.integers(0, 30, 2000) for _ in range(3)]
        cells = [("affinity", t, 8, None) for t in traces] + [
            ("trg", t, 64) for t in traces
        ]
        parallel = analysis_cells(cells, jobs=2)
        serial = analysis_cells(cells, jobs=1)
        assert parallel == serial
        assert parallel[0] == affinity_coverage(traces[0], w_max=8).to_dict()
        assert parallel[3] == trg_to_payload(
            build_trg_fast(traces[0], window_blocks=64), 64
        )

    def test_payloads_feed_the_memo(self):
        """The precompute handshake: worker payloads injected via
        put_analysis replay as artifacts identical to direct kernel runs."""
        from repro.core import affinity_coverage
        from repro.perf import SimMemo, affinity_key

        rng = np.random.default_rng(6)
        trace = rng.integers(0, 30, 2000)
        (payload,) = analysis_cells([("affinity", trace, 8, None)], jobs=1)
        memo = SimMemo()
        memo.put_analysis(affinity_key(trace, w_max=8), payload)
        assert memo.affinity_coverage(trace, w_max=8) == affinity_coverage(
            trace, w_max=8
        )
        assert (memo.hits, memo.misses) == (1, 0)

    def test_empty_and_unknown_kind(self):
        assert analysis_cells([], jobs=2) == []
        with pytest.raises(ValueError, match="unknown analysis cell kind"):
            analysis_cells([("zipf", None)], jobs=1)


def _probe_worker_breaker():
    """Runs inside an ExperimentPool worker: report its breaker config."""
    from repro.perf import parallel

    lab = parallel._WORKER_LAB
    return (
        lab.memo.breaker.failure_threshold,
        lab.memo.breaker.reset_after_s,
    )


class TestExperimentPoolBreaker:
    """Regression: ExperimentPool must thread breaker_config to workers.

    The initializer accepted ``breaker_config`` all along, but
    ``ExperimentPool.__init__`` silently dropped it from ``initargs`` —
    pool workers ran the memo disk tier with a default breaker instead
    of the configured one.  The probe reads the breaker off the worker's
    own SimMemo, so this fails on the pre-fix code.
    """

    def test_worker_memo_carries_configured_breaker(self, tmp_path):
        lab = Lab(scale=0.05, noise_sigma=0.0)
        with ExperimentPool(
            1,
            lab.spawn_config(),
            memo_dir=str(tmp_path / "memo"),
            breaker_config={"failure_threshold": 7, "reset_after_s": 11.0},
        ) as pool:
            assert pool._executor.submit(_probe_worker_breaker).result(
                timeout=60
            ) == (7, 11.0)


def _crashy_cell(cell):
    """Log one execution, then SIGKILL the worker on the marked cell.

    The parent-pid guard keeps the serial recompute path (which runs
    this same function in the parent) from killing the test process.
    """
    idx, log_path, kill_idx, parent_pid = cell
    with open(log_path, "a") as fh:  # O_APPEND: atomic small writes
        fh.write(f"{idx}\n")
        fh.flush()
        os.fsync(fh.fileno())
    if idx == kill_idx and os.getpid() != parent_pid:
        os.kill(os.getpid(), signal.SIGKILL)
    return idx * 2


def _executions(log_path) -> list[int]:
    with open(log_path) as fh:
        return [int(line) for line in fh.read().split()]


class TestBrokenPoolRecomputesOnlyLostCells:
    """Regression: a pool broken mid-map must not discard completed work.

    The old fallback recomputed *every* cell serially; with individual
    futures, results finished before the crash are kept and only the
    lost tail is recomputed.
    """

    def test_pool_map_keeps_completed_prefix(self, tmp_path):
        log = tmp_path / "runs.log"
        log.touch()
        kill_idx = 2
        cells = [(i, str(log), kill_idx, os.getpid()) for i in range(6)]
        # One worker => deterministic in-order execution: cells 0 and 1
        # complete, the worker dies on 2, and 2..5 are lost.
        results = _pool_map(_crashy_cell, cells, jobs=1)
        assert results == [i * 2 for i in range(6)]
        runs = _executions(log)
        # 0 and 1 ran exactly once (kept, NOT recomputed); the killer
        # cell ran twice (worker + parent retry); the lost tail once.
        assert runs.count(0) == 1
        assert runs.count(1) == 1
        assert runs.count(kill_idx) == 2
        assert all(runs.count(i) == 1 for i in range(3, 6))

    def test_cell_pool_recovers_and_respawns(self, tmp_path):
        log = tmp_path / "runs.log"
        log.touch()
        cells = [(i, str(log), 0, os.getpid()) for i in range(8)]
        with CellPool(2) as pool:
            results = pool.map(_crashy_cell, cells)
            assert results == [i * 2 for i in range(8)]
            assert pool.broken_pools == 1
            assert 1 <= pool.recomputed <= len(cells)
            # Every cell executed somewhere; none more than twice.
            runs = _executions(log)
            assert {i for i in runs} == set(range(8))
            assert all(runs.count(i) <= 2 for i in range(8))
            # The pool respawns workers and keeps serving maps.
            clean = [(i, str(log), -1, os.getpid()) for i in range(4)]
            assert pool.map(_crashy_cell, clean) == [i * 2 for i in range(4)]


class TestCellPoolReuse:
    def test_fanouts_share_one_executor(self):
        rng = np.random.default_rng(11)
        cells = [(rng.integers(0, 600, 2000), PAPER_L1I, False) for _ in range(4)]
        with CellPool(2) as pool:
            first = simulate_cells(cells, pool=pool)
            second = simulate_cells(cells, pool=pool)
        assert first == second == simulate_cells(cells, jobs=1)
        assert pool.maps == 2
        assert pool.reuses == 1  # second fan-out reused the warm workers

    def test_jobs_one_stays_serial(self):
        with CellPool(1) as pool:
            assert pool.map(len, [[1, 2], [3]]) == [2, 1]
            assert pool._executor is None  # never spawned workers


class TestRebuildError:
    def test_subclass_context_and_rendering_survive(self):
        original = ProfileError(
            "bad trace", stage="prepare", program="syn-gcc", defect="float dtype"
        )
        payload = {
            "type": "ProfileError",
            "dict": original.to_dict(),
            "rendered": str(original),
        }
        rebuilt = rebuild_error(payload)
        assert isinstance(rebuilt, ProfileError)
        assert str(rebuilt) == str(original)
        assert rebuilt.stage == "prepare"
        assert rebuilt.program == "syn-gcc"

    def test_unknown_type_falls_back_to_simulation_error(self):
        rebuilt = rebuild_error({"type": "Exotic", "dict": {"message": "x"}})
        assert isinstance(rebuilt, SimulationError)


class TestCurveCells:
    def test_results_identical_to_serial(self):
        from repro.locality.footprint import footprint_curve
        from repro.perf.parallel import curve_cells

        rng = np.random.default_rng(13)
        cells = [(rng.integers(0, 500, 3000),) for _ in range(5)]
        parallel = curve_cells(cells, jobs=2)
        serial = [footprint_curve(lines) for (lines,) in cells]
        assert len(parallel) == len(serial)
        for got, ref in zip(parallel, serial):
            assert got.n == ref.n and got.m == ref.m
            assert (got.fp == ref.fp).all()  # bit-identical across the pool

    def test_store_ref_cells_resolve(self, tmp_path):
        from repro.locality.footprint import footprint_curve
        from repro.perf import TraceStore
        from repro.perf.parallel import curve_cells

        rng = np.random.default_rng(14)
        store = TraceStore(tmp_path)
        traces = [rng.integers(0, 500, 3000) for _ in range(3)]
        cells = [(store.ref(t),) for t in traces]
        with CellPool(2, store=store) as pool:
            got = curve_cells(cells, pool=pool)
        for curve, t in zip(got, traces):
            ref = footprint_curve(t)
            assert (curve.fp == ref.fp).all()

    def test_shared_pool_and_empty(self):
        from repro.perf.parallel import curve_cells

        assert curve_cells([], jobs=2) == []
        rng = np.random.default_rng(15)
        cells = [(rng.integers(0, 200, 1000),) for _ in range(3)]
        with CellPool(2) as pool:
            first = curve_cells(cells, pool=pool)
            second = curve_cells(cells, pool=pool)
        for a, b in zip(first, second):
            assert (a.fp == b.fp).all()
        assert pool.maps == 2
