"""Telemetry / BENCH_perf.json (repro.perf.telemetry) and the perf CLI."""

import io
import json

import pytest

from repro.experiments import Lab
from repro.experiments.runner import main as runner_main
from repro.experiments.runner import run_suite
from repro.perf import BENCH_SCHEMA, Telemetry, compare_journal_outcomes
from repro.perf.__main__ import main as perf_main


class TestTelemetry:
    def test_merging_and_schema(self):
        t = Telemetry(jobs=2, scale=0.1)
        t.merge_stages({"simulate": 1.0, "optimize": 0.5})
        t.merge_stages({"simulate": 0.25})
        t.merge_counters({"sim_accesses": 1000, "sim_seconds": 0.5})
        t.merge_counters({"sim_accesses": 500, "sim_seconds": 0.25})
        t.merge_memo({"hits": 3, "misses": 1, "bypasses": 2})
        t.record_experiment("fig4", "ok", 1.234, 1)
        t.wall_s = 2.0
        d = t.to_dict()
        assert d["schema"] == BENCH_SCHEMA
        assert d["jobs"] == 2 and d["scale"] == 0.1
        assert d["stages"] == {"simulate": 1.25, "optimize": 0.5}
        assert d["simulator"] == {
            "accesses": 1500,
            "seconds": 0.75,
            "accesses_per_s": 2000.0,
        }
        assert d["memo"]["hit_rate"] == 0.75
        assert d["experiments"]["fig4"] == {
            "status": "ok",
            "elapsed_s": 1.234,
            "attempts": 1,
        }

    def test_memo_merge_accumulates_across_workers(self):
        t = Telemetry()
        t.merge_memo({"hits": 1, "misses": 1})
        t.merge_memo({"hits": 3, "misses": 0})
        assert t.memo["hits"] == 4
        assert t.memo["hit_rate"] == 0.8
        t.merge_memo(None)  # workers without a memo ship None
        assert t.memo["hits"] == 4

    def test_empty_telemetry_renders(self):
        d = Telemetry().to_dict()
        assert d["memo"] is None
        assert d["simulator"]["accesses_per_s"] == 0.0

    def test_write_is_valid_json(self, tmp_path):
        path = Telemetry().write(tmp_path / "BENCH_perf.json")
        assert json.loads(path.read_text())["schema"] == BENCH_SCHEMA

    def test_run_suite_populates_telemetry(self):
        # ablation-pruning's measurements are all sim-channel, so with
        # the default kernel routing the scalar counters stay zero and
        # the kernel counters carry the work.
        lab = Lab(scale=0.05, noise_sigma=0.0)
        t = Telemetry(jobs=1, scale=0.05)
        run_suite(lab, ["ablation-pruning"], out=io.StringIO(), telemetry=t)
        assert t.experiments["ablation-pruning"]["status"] == "ok"
        assert t.wall_s > 0
        assert t.kernel_accesses > 0
        assert t.kernel_seconds > 0
        assert t.kernel_passes > 0
        assert t.kernel_cells > 0
        assert t.sim_accesses == 0
        assert "simulate" in t.stages

    def test_run_suite_scalar_counters_without_kernel(self):
        lab = Lab(scale=0.05, noise_sigma=0.0, use_kernel=False)
        t = Telemetry(jobs=1, scale=0.05)
        run_suite(lab, ["ablation-pruning"], out=io.StringIO(), telemetry=t)
        assert t.sim_accesses > 0
        assert t.sim_seconds > 0
        assert t.kernel_accesses == 0

    def test_kernel_counter_merge_and_rendering(self):
        t = Telemetry()
        t.merge_counters(
            {
                "kernel_accesses": 1000,
                "kernel_seconds": 0.5,
                "kernel_passes": 2,
                "kernel_cells": 10,
            }
        )
        t.merge_counters({"kernel_accesses": 500, "kernel_seconds": 0.25})
        d = t.to_dict()["kernel"]
        assert d["accesses"] == 1500
        assert d["seconds"] == 0.75
        assert d["accesses_per_s"] == 2000.0
        assert d["passes"] == 2
        assert d["cells"] == 10
        assert d["cells_per_pass"] == 5.0
        assert Telemetry().to_dict()["kernel"]["cells_per_pass"] == 0.0

    def test_analysis_counter_merge_and_rendering(self):
        """bench.v3: the analysis section aggregates the optimize-stage
        locality-model kernel counters across experiments and workers."""
        t = Telemetry()
        t.merge_counters(
            {
                "analysis_accesses": 2000,
                "analysis_seconds": 0.5,
                "analysis_passes": 2,
                "analysis_cells": 4,
                "analysis_memo_hits": 2,
            }
        )
        t.merge_counters({"analysis_accesses": 1000, "analysis_seconds": 0.5})
        d = t.to_dict()["analysis"]
        assert d["accesses"] == 3000
        assert d["seconds"] == 1.0
        assert d["accesses_per_s"] == 3000.0
        assert d["passes"] == 2
        assert d["cells"] == 4
        assert d["memo_hits"] == 2
        assert Telemetry().to_dict()["analysis"]["accesses_per_s"] == 0.0

    def test_run_suite_populates_analysis_counters(self):
        lab = Lab(scale=0.05, noise_sigma=0.0)
        t = Telemetry(jobs=1, scale=0.05)
        run_suite(lab, ["ablation-pruning"], out=io.StringIO(), telemetry=t)
        assert t.analysis_cells > 0
        assert t.analysis_passes > 0
        assert t.analysis_accesses > 0
        assert t.analysis_seconds > 0
        d = t.to_dict()["analysis"]
        assert d["cells"] == t.analysis_cells
        assert d["accesses_per_s"] > 0

    def test_memo_merge_sums_every_numeric_counter(self):
        """bench.v5: the memo counter key set is owned by SimMemo and has
        grown (breaker, locks); merge must not hardcode it."""
        t = Telemetry()
        t.merge_memo(
            {"hits": 1, "misses": 1, "disk_failures": 2, "breaker_trips": 1,
             "hit_rate": 0.5}
        )
        t.merge_memo({"hits": 1, "misses": 0, "lock_waits": 3, "hit_rate": 1.0})
        assert t.memo["disk_failures"] == 2
        assert t.memo["breaker_trips"] == 1
        assert t.memo["lock_waits"] == 3
        # hit_rate is recomputed from the sums, never summed.
        assert t.memo["hit_rate"] == round(2 / 3, 4)

    def test_resilience_merge_sums_numbers_and_ors_bools(self):
        t = Telemetry()
        t.merge_resilience(
            {"workers_spawned": 2, "worker_crashes": 1, "partial": False}
        )
        t.merge_resilience(
            {"workers_spawned": 3, "worker_crashes": 0, "partial": True}
        )
        t.merge_resilience(None)  # serial paths ship nothing
        assert t.resilience == {
            "workers_spawned": 5,
            "worker_crashes": 1,
            "partial": True,
        }
        assert t.to_dict()["resilience"]["partial"] is True
        assert Telemetry().to_dict()["resilience"] is None


class TestCompareJournalOutcomes:
    A = {"exp_id": "fig4", "status": "ok", "elapsed_s": 1.0, "error": None}

    def test_timing_fields_ignored(self):
        b = dict(self.A, elapsed_s=99.0, finished_at=1.0, timings={"x": 1})
        assert compare_journal_outcomes([self.A], [b]) == []

    def test_outcome_fields_compared(self):
        b = dict(self.A, status="failed")
        diffs = compare_journal_outcomes([self.A], [b])
        assert len(diffs) == 1 and "entry 0" in diffs[0]

    def test_count_mismatch(self):
        assert "entry count differs" in compare_journal_outcomes([self.A], [])[0]

    def test_storage_checksum_always_ignored(self):
        b = dict(self.A, check="deadbeefdeadbeef")
        assert compare_journal_outcomes([self.A], [b]) == []

    def test_ignore_param_tolerates_named_fields(self):
        b = dict(self.A, attempts=3)
        a = dict(self.A, attempts=1)
        assert compare_journal_outcomes([a], [b]) != []
        assert compare_journal_outcomes([a], [b], ignore=("attempts",)) == []


class TestPerfCli:
    def _write_journal(self, tmp_path, name, fault=None):
        path = tmp_path / name
        code = runner_main(
            [
                "--only", "ablation-pruning", "ablation-optimal-gap",
                "--scale", "0.05", "--keep-going",
                "--journal", str(path),
            ]
            + (["--inject-fault", fault] if fault else [])
        )
        return path, code

    def test_compare_journals_agree(self, tmp_path, capsys):
        a, _ = self._write_journal(tmp_path, "a.jsonl")
        b, _ = self._write_journal(tmp_path, "b.jsonl")
        assert perf_main(["compare-journals", str(a), str(b)]) == 0
        assert "journals agree" in capsys.readouterr().out

    def test_compare_journals_differ(self, tmp_path, capsys):
        a, _ = self._write_journal(tmp_path, "a.jsonl")
        b, code = self._write_journal(tmp_path, "b.jsonl", fault="ablation-pruning")
        assert code == 1  # the faulted run exits nonzero
        assert perf_main(["compare-journals", str(a), str(b)]) == 1
        assert "journals differ" in capsys.readouterr().out

    def test_bench_out_written_by_runner(self, tmp_path, capsys):
        bench = tmp_path / "BENCH_perf.json"
        code = runner_main(
            [
                "--only", "ablation-pruning",
                "--scale", "0.05",
                "--memo-dir", str(tmp_path / "memo"),
                "--bench-out", str(bench),
            ]
        )
        assert code == 0
        assert f"bench: {bench}" in capsys.readouterr().out
        report = json.loads(bench.read_text())
        assert report["schema"] == BENCH_SCHEMA
        assert report["experiments"]["ablation-pruning"]["status"] == "ok"
        assert report["kernel"]["accesses"] > 0
        assert report["kernel"]["passes"] > 0
        assert report["memo"]["misses"] > 0
        assert perf_main(["show-bench", str(bench)]) == 0
        out = capsys.readouterr().out
        assert "simulator:" in out
        assert "kernel:" in out

    def test_show_bench_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"schema": "something.else"}))
        assert perf_main(["show-bench", str(path)]) == 2

    def test_kernel_bench_parity_gate(self, tmp_path, capsys):
        bench = tmp_path / "BENCH_perf.json"
        code = perf_main(
            [
                "kernel-bench",
                "--scale", "0.05",
                "--assocs", "1,2,4",
                "--bench", str(bench),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "kernel parity OK" in out
        report = json.loads(bench.read_text())
        kb = report["kernel_bench"]
        assert kb["assocs"] == [1, 2, 4]
        assert kb["n_sets"] == 128
        assert kb["speedup"] > 0
        # The section merges into an existing report and survives show-bench.
        assert perf_main(["show-bench", str(bench)]) == 0
        assert "kernel-bench:" in capsys.readouterr().out

    def test_kernel_bench_min_speedup_enforced(self, capsys):
        code = perf_main(
            ["kernel-bench", "--scale", "0.05", "--min-speedup", "1e9"]
        )
        assert code == 1
        assert "below required" in capsys.readouterr().err

    def test_analysis_bench_parity_gate(self, tmp_path, capsys):
        bench = tmp_path / "BENCH_perf.json"
        out = tmp_path / "BENCH_analysis.json"
        code = perf_main(
            [
                "analysis-bench",
                "--scale", "0.05",
                "--reps", "1",
                "--bench", str(bench),
                "--out", str(out),
            ]
        )
        printed = capsys.readouterr().out
        assert code == 0
        assert "analysis parity OK" in printed
        report = json.loads(bench.read_text())
        ab = report["analysis_bench"]
        assert ab["program"] == "syn-gcc"
        assert ab["w_max"] == 20
        assert ab["window_blocks"] == 256
        assert ab["speedup"] > 0
        assert ab["trace_accesses"] > 0
        standalone = json.loads(out.read_text())
        assert standalone["schema"] == "repro.perf/analysis-bench.v1"
        assert standalone["speedup"] == ab["speedup"]
        # The merged section survives show-bench.
        assert perf_main(["show-bench", str(bench)]) == 0
        assert "analysis-bench:" in capsys.readouterr().out

    def test_analysis_bench_min_speedup_enforced(self, capsys):
        code = perf_main(
            ["analysis-bench", "--scale", "0.05", "--reps", "1",
             "--min-speedup", "1e9"]
        )
        assert code == 1
        assert "below required" in capsys.readouterr().err

    def test_show_bench_accepts_v2_reports(self, tmp_path, capsys):
        path = tmp_path / "old.json"
        path.write_text(
            json.dumps(
                {
                    "schema": "repro.perf/bench.v2",
                    "simulator": {"accesses": 1, "seconds": 0.1},
                }
            )
        )
        assert perf_main(["show-bench", str(path)]) == 0
        assert "simulator:" in capsys.readouterr().out

    def test_no_fast_analysis_journal_parity(self, tmp_path, capsys):
        """The full pipeline output is byte-identical with the locality
        kernels on vs off (modulo timing fields) — the tentpole's
        end-to-end contract for --no-fast-analysis."""
        fast = tmp_path / "fast.jsonl"
        scalar = tmp_path / "scalar.jsonl"
        base = [
            "--only", "ablation-pruning", "fig4",
            "--scale", "0.05", "--journal",
        ]
        assert runner_main(base + [str(fast)]) == 0
        assert runner_main(base + [str(scalar), "--no-fast-analysis"]) == 0
        assert perf_main(["compare-journals", str(fast), str(scalar)]) == 0
        assert "journals agree" in capsys.readouterr().out

    def test_runner_rejects_bad_jobs(self, capsys):
        assert runner_main(["--jobs", "0", "--only", "fig4"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_compare_journals_ignore_attempts_flag(self, tmp_path, capsys):
        import json as _json

        from repro.robust import RunJournal

        a = RunJournal(tmp_path / "a.jsonl")
        b = RunJournal(tmp_path / "b.jsonl")
        a.record("fig4", "ok", attempts=1)
        b.record("fig4", "ok", attempts=3)  # chaos redispatch inflation
        assert perf_main(
            ["compare-journals", str(a.path), str(b.path)]
        ) == 1
        assert perf_main(
            ["compare-journals", str(a.path), str(b.path), "--ignore-attempts"]
        ) == 0
        assert "journals agree" in capsys.readouterr().out

    def test_show_bench_accepts_v4_reports_and_shows_resilience(
        self, tmp_path, capsys
    ):
        old = tmp_path / "v4.json"
        old.write_text(
            json.dumps(
                {
                    "schema": "repro.perf/bench.v4",
                    "simulator": {"accesses": 1, "seconds": 0.1},
                }
            )
        )
        assert perf_main(["show-bench", str(old)]) == 0
        capsys.readouterr()
        new = tmp_path / "v5.json"
        new.write_text(
            json.dumps(
                {
                    "schema": BENCH_SCHEMA,
                    "simulator": {"accesses": 1, "seconds": 0.1},
                    "memo": {
                        "hits": 1, "misses": 1, "hit_rate": 0.5,
                        "disk_failures": 4, "degraded": 2,
                        "breaker_trips": 1, "breaker_recoveries": 1,
                    },
                    "resilience": {
                        "workers_spawned": 4, "workers_replaced": 2,
                        "worker_crashes": 1, "worker_hangs": 1,
                        "redispatches": 2, "partial": False,
                    },
                }
            )
        )
        assert perf_main(["show-bench", str(new)]) == 0
        out = capsys.readouterr().out
        assert "resilience: 4 workers (2 replaced)" in out
        assert "breaker 1 trip(s)" in out

    def test_runner_chaos_requires_parallel_redundancy(self, capsys):
        assert runner_main(["--only", "fig4", "fig5", "--chaos", "1"]) == 2
        assert "--chaos" in capsys.readouterr().err
        assert (
            runner_main(["--only", "fig4", "--chaos", "1", "--jobs", "2"]) == 2
        )


class TestMonotonicElapsed:
    """Satellite bugfix: elapsed_s must survive wall-clock jumps.

    ``run_suite`` used to compute elapsed_s from ``time.time()``; an NTP
    step (or DST adjustment) mid-experiment warped the reported duration.
    All durations now come from ``time.perf_counter``.
    """

    def test_wall_clock_jump_does_not_warp_elapsed(self, monkeypatch):
        import repro.experiments.runner as runner_mod

        real_time = runner_mod.time.time
        calls = iter(range(1, 10_000))

        class JumpyTime:
            """time module facade: every time() call jumps the wall clock
            another hour forward; perf_counter stays real."""

            perf_counter = staticmethod(runner_mod.time.perf_counter)

            @staticmethod
            def time():
                return real_time() + 3600.0 * next(calls)

        monkeypatch.setattr(runner_mod, "time", JumpyTime)
        lab = Lab(scale=0.05, noise_sigma=0.0)
        outcomes = run_suite(lab, ["ablation-pruning"], out=io.StringIO())
        assert outcomes[0].status == "ok"
        # a wall-clock implementation would report >= 3600 here.
        assert 0.0 <= outcomes[0].elapsed_s < 300.0

    def test_journal_finished_at_is_epoch(self, tmp_path):
        import time

        from repro.robust import RunJournal

        journal = RunJournal(tmp_path / "j.jsonl")
        before = time.time()
        run_suite(
            Lab(scale=0.05, noise_sigma=0.0),
            ["ablation-pruning"],
            journal=journal,
            out=io.StringIO(),
        )
        entry = journal.entries()[0]
        assert before - 1 <= entry.finished_at <= time.time() + 1


@pytest.mark.parametrize("bad", [0, -3])
def test_telemetry_tolerates_any_jobs_value(bad):
    # Telemetry is a passive aggregator; validation lives in run_suite/CLI.
    assert Telemetry(jobs=bad).to_dict()["jobs"] == bad


class TestFleetSection:
    """bench.v7: the footprint-curve composition ("fleet") section."""

    def test_schema_is_v8_with_compat_chain(self):
        from repro.perf.telemetry import COMPAT_SCHEMAS

        assert BENCH_SCHEMA == "repro.perf/bench.v8"
        assert "repro.perf/bench.v7" in COMPAT_SCHEMAS
        assert "repro.perf/bench.v6" in COMPAT_SCHEMAS

    def test_section_absent_without_curve_work(self):
        t = Telemetry(jobs=1, scale=0.1)
        assert t.to_dict()["fleet"] is None

    def test_section_aggregates_curve_counters(self):
        t = Telemetry(jobs=2, scale=0.1)
        t.merge_counters(
            {
                "curve_passes": 20,
                "curve_memo_hits": 9,
                "curve_seconds": 1.5,
                "fleet_cells": 111360,
                "fleet_seconds": 2.0,
            }
        )
        t.merge_counters({"curve_passes": 9, "fleet_cells": 640})
        fleet = t.to_dict()["fleet"]
        assert fleet["cells"] == 112000
        assert fleet["curve_passes"] == 29
        assert fleet["curve_memo_hits"] == 9
        assert fleet["curve_seconds"] == 1.5
        assert fleet["cells_per_s"] == round(112000 / 2.0, 1)
        # The reuse ratio the fleet gate asserts: cells >> curve work.
        assert fleet["cells_per_curve"] == round(112000 / 38, 1)

    def test_section_survives_json(self):
        t = Telemetry(jobs=1, scale=1.0)
        t.merge_counters({"curve_passes": 1, "fleet_cells": 10, "fleet_seconds": 0.0})
        raw = json.loads(json.dumps(t.to_dict()))
        assert raw["schema"] == BENCH_SCHEMA
        assert raw["fleet"]["cells"] == 10
        assert raw["fleet"]["cells_per_s"] == 0.0  # no time: rate degrades to 0
