"""The content-addressed simulation memo cache (repro.perf.memo).

The contract under test: a memo hit returns CacheStats identical to a
fresh simulation; keys are sensitive to every simulation input; disk
entries survive process turnover, tolerate corruption, and can be
invalidated.
"""

import json

import numpy as np
import pytest

from repro.cache import CacheConfig, PAPER_L1I, simulate, warm_cache
from repro.perf import SimMemo, memo_key, state_fingerprint


@pytest.fixture
def lines():
    rng = np.random.default_rng(42)
    return rng.integers(0, 700, 5000).astype(np.int32)


class TestMemoKey:
    def test_deterministic(self, lines):
        assert memo_key(lines, PAPER_L1I) == memo_key(lines.copy(), PAPER_L1I)

    def test_dtype_canonicalized(self, lines):
        """The same logical stream keys identically regardless of dtype."""
        assert memo_key(lines, PAPER_L1I) == memo_key(
            lines.astype(np.int64), PAPER_L1I
        )

    def test_sensitive_to_stream(self, lines):
        other = lines.copy()
        other[17] += 1
        assert memo_key(lines, PAPER_L1I) != memo_key(other, PAPER_L1I)

    def test_sensitive_to_geometry_and_prefetch(self, lines):
        small = CacheConfig(size_bytes=16 * 1024, assoc=4, line_bytes=64)
        keys = {
            memo_key(lines, PAPER_L1I),
            memo_key(lines, small),
            memo_key(lines, PAPER_L1I, prefetch=True),
        }
        assert len(keys) == 3

    def test_sensitive_to_warm_state(self, lines):
        warm = warm_cache(np.arange(64), PAPER_L1I)
        assert memo_key(lines, PAPER_L1I) != memo_key(lines, PAPER_L1I, state=warm)
        assert state_fingerprint(None) == "cold"
        assert state_fingerprint(warm) != state_fingerprint(None)


class TestSimMemo:
    def test_hit_returns_identical_stats(self, lines):
        memo = SimMemo()
        fresh = simulate(lines, PAPER_L1I, prefetch=True)
        first = memo.simulate(lines, PAPER_L1I, prefetch=True)
        hit = memo.simulate(lines, PAPER_L1I, prefetch=True)
        assert first == fresh
        assert hit == fresh
        assert (memo.hits, memo.misses) == (1, 1)
        assert memo.hit_rate == 0.5

    def test_hit_result_is_not_aliased(self, lines):
        memo = SimMemo()
        a = memo.simulate(lines, PAPER_L1I)
        a.misses = -1  # caller mutates its copy
        assert memo.simulate(lines, PAPER_L1I).misses != -1

    def test_warm_state_calls_bypass_and_still_mutate(self, lines):
        """A replay cannot reproduce the in-place mutation, so warm-state
        calls must reach the real simulator every time."""
        memo = SimMemo()
        ref = warm_cache(lines, PAPER_L1I)
        state = warm_cache(np.array([], dtype=np.int64), PAPER_L1I)
        stats = memo.simulate(lines, PAPER_L1I, state=state)
        assert memo.bypasses == 1
        assert (memo.hits, memo.misses) == (0, 0)
        assert state.resident_lines() == ref.resident_lines()
        assert stats == simulate(lines, PAPER_L1I)

    def test_disk_persistence_across_instances(self, tmp_path, lines):
        fresh = simulate(lines, PAPER_L1I)
        SimMemo(tmp_path).simulate(lines, PAPER_L1I)
        reread = SimMemo(tmp_path)
        assert reread.simulate(lines, PAPER_L1I) == fresh
        assert (reread.hits, reread.misses) == (1, 0)

    def test_invalidate_key(self, tmp_path, lines):
        memo = SimMemo(tmp_path)
        key = memo_key(lines, PAPER_L1I)
        memo.simulate(lines, PAPER_L1I)
        assert memo.invalidate(key)
        assert not memo.invalidate(key)  # already gone
        assert not list(tmp_path.glob(f"{key}*"))
        memo.simulate(lines, PAPER_L1I)
        assert memo.misses == 2  # recomputed after invalidation

    def test_corrupt_entry_degrades_to_recomputation(self, tmp_path, lines):
        memo = SimMemo(tmp_path)
        key = memo_key(lines, PAPER_L1I)
        fresh = memo.simulate(lines, PAPER_L1I)
        (tmp_path / f"{key}.json").write_text("{ truncated")
        reread = SimMemo(tmp_path)
        assert reread.simulate(lines, PAPER_L1I) == fresh
        assert reread.misses == 1  # corrupt file never served

    def test_stale_schema_entry_dropped(self, tmp_path, lines):
        memo = SimMemo(tmp_path)
        key = memo_key(lines, PAPER_L1I)
        memo.simulate(lines, PAPER_L1I)
        path = tmp_path / f"{key}.json"
        raw = json.loads(path.read_text())
        raw["schema"] = "repro.perf.memo.v0"
        path.write_text(json.dumps(raw))
        reread = SimMemo(tmp_path)
        reread.simulate(lines, PAPER_L1I)
        assert reread.misses == 1
        # the stale file was replaced with a current-schema entry.
        assert json.loads(path.read_text())["schema"] != "repro.perf.memo.v0"

    def test_concurrent_writers_dedup_via_key_lock(self, tmp_path, lines, monkeypatch):
        """Two writers racing on the same key must run ONE simulation:
        the loser blocks on the per-key flock, then replays the winner's
        published entry instead of recomputing (the concurrent-put fix)."""
        import threading

        import repro.perf.memo as memo_mod

        real_simulate = memo_mod.simulate
        calls = []
        started = threading.Barrier(2)

        def slow_simulate(*args, **kwargs):
            calls.append(1)
            import time

            time.sleep(0.3)  # hold the lock long enough to force contention
            return real_simulate(*args, **kwargs)

        monkeypatch.setattr(memo_mod, "simulate", slow_simulate)
        memos = [SimMemo(tmp_path), SimMemo(tmp_path)]
        results = [None, None]

        def worker(i):
            started.wait()
            results[i] = memos[i].simulate(lines, PAPER_L1I)

        threads = [threading.Thread(target=worker, args=(i,)) for i in (0, 1)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert results[0] == results[1] == real_simulate(lines, PAPER_L1I)
        assert len(calls) == 1  # the whole point: one compute, not two
        assert sum(m.lock_waits for m in memos) == 1
        assert sum(m.hits for m in memos) == 1  # the loser replayed

    def test_in_memory_only_mode(self, lines):
        memo = SimMemo()
        memo.simulate(lines, PAPER_L1I)
        memo.simulate(lines, PAPER_L1I)
        assert memo.counters() == {
            "hits": 1,
            "misses": 1,
            "bypasses": 0,
            "disk_failures": 0,
            "degraded": 0,
            "lock_waits": 0,
            "breaker_trips": 0,
            "breaker_recoveries": 0,
            "hit_rate": 0.5,
        }


class TestHistogramMemo:
    """Kernel histograms: coarser keys (stream + n_sets only), same
    degrade-to-recompute storage discipline."""

    def test_key_ignores_assoc_and_line_bytes(self, lines):
        from repro.perf import histogram_key

        key = histogram_key(lines, PAPER_L1I.n_sets)
        assert key == histogram_key(lines.astype(np.int64), PAPER_L1I.n_sets)
        assert key != histogram_key(lines, 64)
        other = lines.copy()
        other[3] += 1
        assert key != histogram_key(other, PAPER_L1I.n_sets)
        # Distinct from the CacheStats key space for the same stream.
        assert key != memo_key(lines, PAPER_L1I)

    def test_histogram_hit_and_simulate_fast(self, lines):
        from repro.cache import stack_distance_histogram

        memo = SimMemo()
        fresh = stack_distance_histogram(lines, PAPER_L1I.n_sets)
        assert memo.histogram(lines, PAPER_L1I.n_sets) == fresh
        assert memo.histogram(lines, PAPER_L1I.n_sets) == fresh
        assert (memo.hits, memo.misses) == (1, 1)
        # One histogram entry answers every associativity of the family.
        for assoc in (1, 2, 4, 8):
            cfg = CacheConfig(
                size_bytes=PAPER_L1I.n_sets * assoc * 64,
                assoc=assoc,
                line_bytes=64,
            )
            assert memo.simulate_fast(lines, cfg) == simulate(lines, cfg)
        assert memo.misses == 1  # no further kernel passes were needed

    def test_histogram_disk_persistence(self, tmp_path, lines):
        from repro.cache import stack_distance_histogram

        fresh = stack_distance_histogram(lines, 128)
        SimMemo(tmp_path).histogram(lines, 128)
        reread = SimMemo(tmp_path)
        assert reread.histogram(lines, 128) == fresh
        assert (reread.hits, reread.misses) == (1, 0)

    def test_corrupt_histogram_entry_recomputed(self, tmp_path, lines):
        from repro.perf import histogram_key

        memo = SimMemo(tmp_path)
        key = histogram_key(lines, 128)
        fresh = memo.histogram(lines, 128)
        (tmp_path / f"{key}.json").write_text("{ nope")
        reread = SimMemo(tmp_path)
        assert reread.histogram(lines, 128) == fresh
        assert reread.misses == 1

    def test_stale_kernel_schema_dropped(self, tmp_path, lines):
        from repro.perf import histogram_key

        memo = SimMemo(tmp_path)
        key = histogram_key(lines, 128)
        memo.histogram(lines, 128)
        path = tmp_path / f"{key}.json"
        raw = json.loads(path.read_text())
        raw["schema"] = "repro.perf.memo.kernel.v0"
        path.write_text(json.dumps(raw))
        reread = SimMemo(tmp_path)
        reread.histogram(lines, 128)
        assert reread.misses == 1
        assert json.loads(path.read_text())["schema"] != "repro.perf.memo.kernel.v0"


class TestCurveMemo:
    """Footprint-curve tier: coarsest keys (stream only), bit-identical
    replay through the JSON wire format."""

    def test_key_depends_on_stream_only(self, lines):
        from repro.perf.memo import curve_key, trace_digest

        key = curve_key(lines)
        assert key == curve_key(lines.astype(np.int64))
        # A digest string keys identically to the stream it digests.
        assert key == curve_key(trace_digest(lines))
        other = lines.copy()
        other[5] += 1
        assert key != curve_key(other)
        assert key != memo_key(lines, PAPER_L1I)

    def test_memoized_curve_is_bit_identical(self, lines):
        from repro.locality.footprint import footprint_curve

        memo = SimMemo()
        fresh = footprint_curve(lines)
        first = memo.footprint_curve(lines)
        hit = memo.footprint_curve(lines)
        assert (memo.hits, memo.misses) == (1, 1)
        for got in (first, hit):
            assert got.n == fresh.n and got.m == fresh.m
            assert (got.fp == fresh.fp).all()

    def test_curve_disk_persistence(self, tmp_path, lines):
        from repro.locality.footprint import footprint_curve

        fresh = footprint_curve(lines)
        SimMemo(tmp_path).footprint_curve(lines)
        reread = SimMemo(tmp_path)
        got = reread.footprint_curve(lines)
        assert (reread.hits, reread.misses) == (1, 0)
        assert (got.fp == fresh.fp).all()  # JSON round trip is exact

    def test_corrupt_curve_entry_recomputed(self, tmp_path, lines):
        from repro.perf.memo import curve_key

        memo = SimMemo(tmp_path)
        memo.footprint_curve(lines)
        (tmp_path / f"{curve_key(lines)}.json").write_text("{ bad")
        reread = SimMemo(tmp_path)
        reread.footprint_curve(lines)
        assert reread.misses == 1

    def test_curve_invalidate(self, tmp_path, lines):
        from repro.perf.memo import curve_key

        memo = SimMemo(tmp_path)
        key = curve_key(lines)
        memo.footprint_curve(lines)
        assert memo.invalidate(key)
        memo.footprint_curve(lines)
        assert memo.misses == 2

    def test_scrub_keeps_current_curve_schema(self, tmp_path, lines):
        import json as _json

        from repro.perf.memo import CURVE_SCHEMA, curve_key

        memo = SimMemo(tmp_path)
        key = curve_key(lines)
        memo.footprint_curve(lines)
        # Plant a stale-schema sibling; scrub must drop it, keep ours.
        stale = tmp_path / ("0" * 64 + ".json")
        stale.write_text(_json.dumps({"schema": "repro.perf.memo.curve.v0"}))
        kept_n, dropped = memo.scrub()
        assert kept_n >= 1 and dropped >= 1
        assert not stale.exists()
        kept = _json.loads((tmp_path / f"{key}.json").read_text())
        assert kept["schema"] == CURVE_SCHEMA
