"""Unit tests for the compilation driver (repro.compiler)."""

import numpy as np
import pytest

from repro.compiler import Driver, load_layout, load_report
from repro.engine import InputSpec, fetch_lines
from repro.ir import LayoutKind


@pytest.fixture
def built(tiny_module, tmp_path):
    driver = Driver(optimizers=["bb-affinity", "function-trg"])
    return driver.build(
        tiny_module,
        InputSpec("test", seed=1, max_blocks=3000),
        InputSpec("ref", seed=2, max_blocks=4000),
        build_dir=tmp_path / "build",
    ), tiny_module, tmp_path


def test_build_produces_requested_layouts(built):
    result, module, _ = built
    assert set(result.layouts) == {"baseline", "bb-affinity", "function-trg"}
    assert result.layouts["bb-affinity"].kind is LayoutKind.BASIC_BLOCK
    assert set(result.miss_ratios) == set(result.layouts)
    assert result.timings["instrument"] > 0
    assert "optimize/bb-affinity" in result.timings


def test_best_layout_is_minimum(built):
    result, _, _ = built
    best = result.best_layout()
    assert result.miss_ratios[best] == min(result.miss_ratios.values())


def test_best_layout_requires_evaluation(tiny_module):
    driver = Driver(optimizers=["function-affinity"])
    result = driver.build(tiny_module, InputSpec("test", seed=1, max_blocks=2000))
    assert result.miss_ratios == {}
    with pytest.raises(ValueError):
        result.best_layout()


def test_build_with_lint_records_reports(tiny_module):
    driver = Driver(optimizers=["bb-affinity"])
    result = driver.build(
        tiny_module, InputSpec("test", seed=1, max_blocks=3000), lint=True
    )
    assert set(result.lint_reports) == {"baseline", "bb-affinity"}
    for report in result.lint_reports.values():
        assert report.ok  # legal layouts never produce L006 errors
        assert report.rules_run == ["L001", "L002", "L003", "L004", "L005", "L006"]
    assert result.timings["lint"] > 0
    rep = result.report()
    assert set(rep["lint"]) == {"baseline", "bb-affinity"}
    assert rep["lint"]["baseline"]["summary"]["errors"] == 0


def test_build_without_lint_skips_reports(tiny_module):
    driver = Driver(optimizers=["bb-affinity"])
    result = driver.build(tiny_module, InputSpec("test", seed=1, max_blocks=2000))
    assert result.lint_reports == {}
    assert "lint" not in result.report()


def test_unknown_optimizer_rejected():
    with pytest.raises(ValueError):
        Driver(optimizers=["magic-layout"])


def test_comparators_accepted(tiny_module):
    driver = Driver(optimizers=["bb-ph", "hotcold-split"])
    result = driver.build(tiny_module, InputSpec("test", seed=1, max_blocks=2000))
    assert "bb-ph" in result.layouts


def test_artifacts_written(built):
    result, _, tmp_path = built
    build = tmp_path / "build"
    assert (build / "trace.npz").exists()
    assert (build / "layout-baseline.json").exists()
    assert (build / "layout-bb-affinity.json").exists()
    report = load_report(build / "report.json")
    assert report["program"] == "tiny"
    assert report["layouts"]["bb-affinity"]["miss_ratio"] is not None


def test_layout_roundtrip_preserves_fetch_stream(built, tiny_bundle):
    result, module, tmp_path = built
    original = result.layouts["bb-affinity"]
    loaded = load_layout(tmp_path / "build" / "layout-bb-affinity.json")
    assert loaded.kind == original.kind
    assert loaded.note == original.note
    assert loaded.added_jumps == original.added_jumps
    a = fetch_lines(tiny_bundle.bb_trace, original.address_map, 64)
    b = fetch_lines(tiny_bundle.bb_trace, loaded.address_map, 64)
    assert np.array_equal(a, b)


def test_cli_main(tmp_path, capsys):
    from repro.compiler.__main__ import main

    rc = main(
        [
            "syn-mcf",
            "--optimizers",
            "function-affinity",
            "--scale",
            "0.05",
            "--build-dir",
            str(tmp_path / "b"),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "best layout:" in out
    assert (tmp_path / "b" / "report.json").exists()


def test_cli_no_evaluate(tmp_path, capsys):
    from repro.compiler.__main__ import main

    rc = main(["syn-mcf", "--optimizers", "function-trg", "--scale", "0.05",
               "--no-evaluate"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "best layout:" not in out
    assert "function-trg" in out


def test_cli_rejects_unknown_optimizer(capsys):
    from repro.compiler.__main__ import main

    with pytest.raises(SystemExit):
        main(["syn-mcf", "--optimizers", "nonsense"])
