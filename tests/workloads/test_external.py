"""Unit tests for external-profile adoption (repro.workloads.external)."""

import numpy as np
import pytest

from repro.cache import PAPER_L1I, simulate
from repro.core import OPTIMIZERS, OptimizerConfig
from repro.engine import fetch_lines
from repro.ir import baseline_layout
from repro.workloads.external import from_profile


def sample_profile():
    # two functions: f0 = blocks 0-2 (main), f1 = blocks 3-4.
    block_bytes = [16, 32, 8, 64, 24]
    func_of_block = [0, 0, 0, 1, 1]
    names = ["main", "helper"]
    rng = np.random.default_rng(0)
    trace = rng.choice([0, 1, 3, 4], size=2000, p=[0.4, 0.3, 0.2, 0.1])
    return trace, block_bytes, func_of_block, names


def test_reconstruction_shapes():
    trace, sizes, fob, names = sample_profile()
    module, bundle = from_profile("ext", trace, sizes, fob, names)
    assert module.n_blocks == 5
    assert module.n_functions == 2
    assert [f.name for f in module.functions] == names
    # gids equal input block ids, sizes preserved (rounded to instructions).
    assert module.block_sizes() == [16, 32, 8, 64, 24]
    assert bundle.program == "ext"
    assert np.array_equal(bundle.bb_trace, trace.astype(np.int32))
    assert bundle.function_names == names


def test_instr_count_estimated_or_given():
    trace, sizes, fob, names = sample_profile()
    _, bundle = from_profile("ext", trace, sizes, fob, names)
    assert bundle.instr_count > 0
    _, bundle2 = from_profile("ext", trace, sizes, fob, names, instr_count=123)
    assert bundle2.instr_count == 123


def test_validation():
    trace, sizes, fob, names = sample_profile()
    with pytest.raises(ValueError, match="align"):
        from_profile("x", trace, sizes, fob[:-1], names)
    with pytest.raises(ValueError, match="unknown block"):
        from_profile("x", np.array([99]), sizes, fob, names)
    with pytest.raises(ValueError, match="contiguous"):
        from_profile("x", trace, sizes, [0, 1, 0, 1, 1], names)
    with pytest.raises(ValueError, match="first-block order"):
        from_profile("x", trace, sizes, [1, 1, 1, 0, 0], names)
    with pytest.raises(ValueError, match="at least one"):
        from_profile("x", trace, [], [], [])


def test_full_pipeline_on_external_profile():
    """The whole point: every optimizer runs on a reconstructed profile
    and produces a legal, evaluable layout."""
    trace, sizes, fob, names = sample_profile()
    module, bundle = from_profile("ext", trace, sizes, fob, names)
    base = baseline_layout(module)
    base_misses = simulate(
        fetch_lines(bundle.bb_trace, base.address_map, 64), PAPER_L1I
    ).misses
    cfg = OptimizerConfig(w_max=6)
    for name, optimizer in OPTIMIZERS.items():
        layout = optimizer(module, bundle, cfg)
        assert sorted(layout.address_map.order) == list(range(5))
        lines = fetch_lines(bundle.bb_trace, layout.address_map, 64)
        stats = simulate(lines, PAPER_L1I)
        assert stats.accesses == lines.shape[0]
    assert base_misses >= 0


def test_empty_trace_allowed():
    _, sizes, fob, names = sample_profile()
    module, bundle = from_profile("ext", np.empty(0, dtype=np.int64), sizes, fob, names)
    assert bundle.n_dynamic_blocks == 0
    assert bundle.instr_count == 0


def test_load_profile_csv(tmp_path):
    from repro.workloads import load_profile_csv

    blocks = tmp_path / "blocks.csv"
    blocks.write_text(
        "block_id,function,bytes\n"
        "0,main,40\n"
        "1,main,24\n"
        "2,util,64\n"
        "3,util,16\n"
    )
    trace_file = tmp_path / "trace.txt"
    trace_file.write_text("0\n1\n2\n0\n1\n3\n")
    module, bundle = load_profile_csv("csvapp", blocks, trace_file)
    assert module.n_functions == 2
    assert module.block_sizes() == [40, 24, 64, 16]
    assert bundle.bb_trace.tolist() == [0, 1, 2, 0, 1, 3]
    assert bundle.function_names == ["main", "util"]


def test_load_profile_csv_rejects_unsorted(tmp_path):
    from repro.workloads import load_profile_csv

    blocks = tmp_path / "blocks.csv"
    blocks.write_text("block_id,function,bytes\n1,main,40\n0,main,24\n")
    trace_file = tmp_path / "trace.txt"
    trace_file.write_text("0\n")
    with pytest.raises(ValueError, match="sorted"):
        load_profile_csv("x", blocks, trace_file)
