"""Unit tests for the 29-program suite (repro.workloads.suite)."""

import pytest

from repro.workloads import (
    ALL_PROGRAMS,
    PROBE_PROGRAMS,
    STUDY_PROGRAMS,
    SUITE,
    build,
    get_program,
)


def test_twenty_nine_programs():
    assert len(SUITE) == 29
    assert len(ALL_PROGRAMS) == 29


def test_study_set_is_papers_eight():
    expected = {
        "syn-perlbench",
        "syn-gcc",
        "syn-mcf",
        "syn-gobmk",
        "syn-povray",
        "syn-sjeng",
        "syn-omnetpp",
        "syn-xalancbmk",
    }
    assert set(STUDY_PROGRAMS) == expected
    for name in STUDY_PROGRAMS:
        assert SUITE[name].study


def test_probes_are_gcc_and_gamess():
    assert PROBE_PROGRAMS == ["syn-gcc", "syn-gamess"]
    for name in PROBE_PROGRAMS:
        assert SUITE[name].probe


def test_bb_reorder_unsupported_for_perlbench_and_povray():
    unsupported = {n for n, p in SUITE.items() if not p.bb_reorder_supported}
    assert unsupported == {"syn-perlbench", "syn-povray"}


def test_get_program_accepts_short_names():
    assert get_program("mcf").name == "syn-mcf"
    assert get_program("syn-mcf").name == "syn-mcf"
    with pytest.raises(KeyError):
        get_program("nonexistent")


def test_build_with_budget_overrides():
    prog, module = build("syn-mcf", ref_blocks=12_345, test_blocks=678)
    assert prog.spec.ref_blocks == 12_345
    assert prog.spec.test_blocks == 678
    assert module.sealed
    # base definition untouched.
    assert SUITE["syn-mcf"].spec.ref_blocks != 12_345


def test_every_program_builds_and_validates():
    from repro.ir import validate_module

    for name in ALL_PROGRAMS:
        _, module = build(name, ref_blocks=5_000, test_blocks=2_000)
        validate_module(module)
        assert module.n_functions > 3


def test_data_cpi_spread():
    values = [SUITE[n].spec.data_cpi for n in ALL_PROGRAMS]
    assert min(values) > 0
    # mcf is the most memory-bound program in the suite.
    assert SUITE["syn-mcf"].spec.data_cpi == max(
        SUITE[n].spec.data_cpi for n in STUDY_PROGRAMS
    )
