"""Unit tests for the synthetic program generator (repro.workloads.generator)."""

import numpy as np
import pytest

from repro.engine import collect_trace
from repro.ir import validate_module
from repro.workloads.generator import WorkloadSpec, _partial_shuffle, build_program


def small_spec(**kw):
    params = dict(
        name="t",
        seed=5,
        n_stages=4,
        leaves_per_stage=3,
        work_blocks=4,
        n_cold_functions=5,
        test_blocks=5_000,
        ref_blocks=8_000,
    )
    params.update(kw)
    return WorkloadSpec(**params)


def test_generated_module_validates():
    module = build_program(small_spec())
    assert validate_module(module) is not None  # no exception
    assert "main" in module
    assert module.n_functions == 1 + 4 + 4 * 3 + 5


def test_deterministic_generation():
    m1 = build_program(small_spec())
    m2 = build_program(small_spec())
    assert [f.name for f in m1.functions] == [f.name for f in m2.functions]
    assert m1.block_sizes() == m2.block_sizes()


def test_different_seeds_differ():
    m1 = build_program(small_spec(seed=1))
    m2 = build_program(small_spec(seed=2))
    assert (
        [f.name for f in m1.functions] != [f.name for f in m2.functions]
        or m1.block_sizes() != m2.block_sizes()
    )


def test_runs_and_stays_within_budget():
    spec = small_spec()
    module = build_program(spec)
    bundle = collect_trace(module, spec.ref_input())
    assert 0 < bundle.n_dynamic_blocks <= spec.ref_blocks


def test_test_and_ref_inputs_differ():
    spec = small_spec()
    module = build_program(spec)
    t = collect_trace(module, spec.test_input())
    r = collect_trace(module, spec.ref_input())
    assert t.n_dynamic_blocks != r.n_dynamic_blocks
    assert spec.test_input().seed != spec.ref_input().seed


def test_phase_split_uses_both_groups():
    spec = small_spec(phase_stage_split=True, phase_period=512, ref_blocks=20_000)
    module = build_program(spec)
    bundle = collect_trace(module, spec.ref_input())
    func_names = set(
        bundle.function_names[i] for i in np.unique(bundle.func_trace)
    )
    # stages from both halves execute.
    assert "stage_0" in func_names
    assert f"stage_{spec.n_stages - 1}" in func_names


def test_zipf_dispatch_popularity_gradient():
    spec = small_spec(dispatch="zipf", zipf_s=1.3, n_stages=6, ref_blocks=40_000)
    module = build_program(spec)
    bundle = collect_trace(module, spec.ref_input())
    names = bundle.function_names
    counts = np.bincount(bundle.func_trace, minlength=len(names))
    by_name = {names[i]: int(counts[i]) for i in range(len(names))}
    # stage_0 is the most popular stage under phase-A weights.
    assert by_name["stage_0"] > by_name[f"stage_{spec.n_stages - 1}"]


def test_no_scramble_keeps_generation_order():
    spec = small_spec(scramble_functions=0.0, scramble_blocks=0.0)
    module = build_program(spec)
    names = [f.name for f in module.functions]
    assert names[0].startswith("leaf_")
    assert names[-1] == "main"


def test_partial_shuffle_properties():
    rng = np.random.default_rng(0)
    seq = list(range(50))
    none = _partial_shuffle(seq, rng, 0.0)
    assert none == seq
    full = _partial_shuffle(seq, np.random.default_rng(1), 1.0)
    assert sorted(full) == seq
    assert full != seq
    half = _partial_shuffle(seq, np.random.default_rng(2), 0.3)
    moved = sum(a != b for a, b in zip(seq, half))
    assert 0 < moved <= 16  # at most k elements displaced


def test_spec_input_properties():
    spec = small_spec(phase_period=900)
    assert spec.test_input().name == "test"
    assert spec.ref_input().phase_offset == 300
    no_phase = small_spec(phase_period=0)
    assert no_phase.ref_input().phase_offset == 0
