"""End-to-end tests of ``python -m repro.lint`` (acceptance: runs on at
least two suite programs and emits the full rule pack as JSON)."""

import json

import pytest

from repro.lint.__main__ import main

FULL_PACK = ["L001", "L002", "L003", "L004", "L005", "L006"]


@pytest.mark.parametrize("program", ["syn-mcf", "syn-sjeng"])
def test_cli_json_end_to_end(program, capsys):
    rc = main([program, "--scale", "0.05", "--format", "json"])
    assert rc in (0, 1)
    data = json.loads(capsys.readouterr().out)
    assert data["program"] == program
    assert data["layout"] == "baseline"
    assert list(data["rules"]) == FULL_PACK
    for rule_id in FULL_PACK:
        assert "metrics" in data["rules"][rule_id]
    # a structurally sound baseline never has errors.
    assert data["summary"]["errors"] == 0
    assert rc == 0


def test_cli_text_output(capsys):
    rc = main(["syn-mcf", "--scale", "0.05"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "lint syn-mcf / baseline" in out
    assert "rule(s)" in out


def test_cli_optimized_layout(capsys):
    rc = main(["syn-mcf", "--scale", "0.05", "--layout", "function-affinity"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "function-affinity" in out


def test_cli_compare(capsys):
    rc = main(["syn-mcf", "--scale", "0.05", "--compare", "baseline", "bb-affinity"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "compare baseline vs bb-affinity" in out
    assert "verdict:" in out


def test_cli_compare_json(capsys):
    rc = main(
        [
            "syn-mcf",
            "--scale",
            "0.05",
            "--compare",
            "baseline",
            "function-trg",
            "--format",
            "json",
        ]
    )
    assert rc == 0
    data = json.loads(capsys.readouterr().out)
    assert data["a"] == "baseline"
    assert data["winner"] in ("baseline", "function-trg", "tie")
    assert data["metrics"]


def test_cli_disable_and_severity(capsys):
    rc = main(
        [
            "syn-mcf",
            "--scale",
            "0.05",
            "--disable",
            "L002",
            "--severity",
            "L004=info",
            "--format",
            "json",
        ]
    )
    assert rc == 0
    data = json.loads(capsys.readouterr().out)
    assert "L002" not in data["rules"]
    l4 = [d for d in data["diagnostics"] if d["rule"] == "L004"]
    assert all(d["severity"] == "info" for d in l4)


def test_cli_list_rules(capsys):
    rc = main(["--list-rules"])
    assert rc == 0
    out = capsys.readouterr().out
    for rule_id in FULL_PACK:
        assert rule_id in out


def test_cli_rejects_unknown_program(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["no-such-program"])
    assert exc.value.code == 2


def test_cli_rejects_unknown_rule(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["syn-mcf", "--disable", "L999"])
    assert exc.value.code == 2


def test_cli_rejects_bad_hot_coverage(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["syn-mcf", "--hot-coverage", "0"])
    assert exc.value.code == 2


def test_cli_requires_program(capsys):
    with pytest.raises(SystemExit) as exc:
        main([])
    assert exc.value.code == 2
