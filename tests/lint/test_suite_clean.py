"""Property: the baseline layout of every suite program is lint-ERROR-free.

Baselines are produced by the same address-assignment machinery as the
optimized layouts, so a structural ERROR (L006) on any suite baseline means
either the generator or the analyzer regressed.  Warnings are expected —
flagging the defects baselines ship with is the analyzer's purpose.
"""

import pytest

from repro.engine import InputSpec, collect_trace
from repro.ir import baseline_layout
from repro.lint import Severity, run_lint
from repro.workloads.suite import ALL_PROGRAMS, build


@pytest.mark.parametrize("name", ALL_PROGRAMS)
def test_baseline_layout_has_no_lint_errors(name):
    prog, module = build(name)
    bundle = collect_trace(
        module, InputSpec("test", seed=prog.spec.seed, max_blocks=4000)
    )
    report = run_lint(module, baseline_layout(module), bundle)
    errors = [d for d in report.diagnostics if d.severity is Severity.ERROR]
    assert errors == [], f"{name}: {[d.message for d in errors]}"
    assert report.rules_run == ["L001", "L002", "L003", "L004", "L005", "L006"]
