"""Validation of the analyzer against the simulator it replaces.

Acceptance: the L001 static set-conflict score rank-correlates (Spearman
rho > 0) with simulated miss ratios across the paper's four optimizers
(plus the baseline) on a suite program.  The analyzer never sees the
simulator — it reasons over addresses, sets and profile heat only — so a
positive rank correlation is evidence the static rules predict the
behaviour the paper measures dynamically.
"""

import numpy as np
import pytest

from repro.compiler import Driver
from repro.lint import conflict_score
from repro.workloads.suite import build


def spearman(x, y) -> float:
    """Spearman rank correlation with average ranks for ties."""

    def rank(values):
        v = np.asarray(values, dtype=float)
        order = np.argsort(v, kind="stable")
        ranks = np.empty(len(v), dtype=float)
        ranks[order] = np.arange(1, len(v) + 1)
        # average ranks of ties
        for val in np.unique(v):
            mask = v == val
            ranks[mask] = ranks[mask].mean()
        return ranks

    rx, ry = rank(x), rank(y)
    rx -= rx.mean()
    ry -= ry.mean()
    denom = np.sqrt((rx * rx).sum() * (ry * ry).sum())
    if denom == 0:
        return 0.0
    return float((rx * ry).sum() / denom)


def test_spearman_helper():
    assert spearman([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)
    assert spearman([1, 2, 3], [30, 20, 10]) == pytest.approx(-1.0)
    assert spearman([1, 1, 1], [3, 2, 1]) == 0.0


@pytest.mark.slow
def test_conflict_score_rank_correlates_with_simulated_misses():
    prog, module = build("syn-sjeng", test_blocks=20_000, ref_blocks=60_000)
    driver = Driver()  # the paper's four optimizers
    result = driver.build(module, prog.spec.test_input(), prog.spec.ref_input())
    assert set(result.layouts) == {
        "baseline",
        "function-affinity",
        "bb-affinity",
        "function-trg",
        "bb-trg",
    }

    names = list(result.layouts)
    scores = [
        conflict_score(module, result.layouts[n], result.profile, driver.cache)
        for n in names
    ]
    misses = [result.miss_ratios[n] for n in names]

    rho = spearman(scores, misses)
    assert rho > 0, f"static conflict score does not rank-correlate: rho={rho}, " \
                    f"scores={dict(zip(names, scores))}, misses={dict(zip(names, misses))}"

    # The baseline is the statically worst layout here and the dynamically
    # worst; the analyzer must agree on the extreme.
    assert scores[names.index("baseline")] == max(scores)
    assert misses[names.index("baseline")] == max(misses)
