"""Unit tests for the diagnostics core (repro.lint.diagnostics, .rules)."""

import json

import pytest

from repro.ir import baseline_layout
from repro.lint import (
    Diagnostic,
    LintConfig,
    LintReport,
    Severity,
    all_rules,
    get_rule,
    render_json,
    render_text,
    run_lint,
)

from .conftest import TINY_CACHE, leaf_module, make_bundle


def test_severity_ordering_and_parse():
    assert Severity.INFO.rank < Severity.WARNING.rank < Severity.ERROR.rank
    assert Severity.parse("Error") is Severity.ERROR
    assert Severity.parse(" warning ") is Severity.WARNING
    with pytest.raises(ValueError, match="unknown severity"):
        Severity.parse("fatal")


def test_diagnostic_format_and_dict():
    d = Diagnostic("L001", Severity.WARNING, "set 3", "too crowded", {"hot_lines": 7})
    text = d.format()
    assert "WARNING" in text and "L001" in text and "set 3" in text
    assert "hot_lines=7" in text
    assert d.to_dict()["severity"] == "warning"


def test_report_counts_and_ok():
    r = LintReport("p", "base", "cache")
    assert r.ok and r.max_severity() is None
    r.extend(
        [
            Diagnostic("L001", Severity.WARNING, "x", "w"),
            Diagnostic("L006", Severity.ERROR, "y", "e"),
        ]
    )
    assert r.n_errors == 1 and r.n_warnings == 1
    assert not r.ok
    assert r.max_severity() is Severity.ERROR
    assert r.by_rule("L006")[0].message == "e"


def test_registry_catalog_is_the_full_rule_pack():
    ids = [r.id for r in all_rules()]
    assert ids == ["L001", "L002", "L003", "L004", "L005", "L006"]
    assert get_rule("L001").name == "set-conflict-hotspot"
    with pytest.raises(KeyError, match="unknown lint rule"):
        get_rule("L999")


def _lint_leafmod(config=None):
    m = leaf_module(4)
    bundle = make_bundle(m, [0, 1, 2, 3] * 8)
    return run_lint(m, baseline_layout(m), bundle, TINY_CACHE, config)


def test_run_lint_reports_every_rule_even_when_clean():
    report = _lint_leafmod()
    assert report.rules_run == ["L001", "L002", "L003", "L004", "L005", "L006"]
    assert set(report.metrics) == set(report.rules_run)
    # metrics are present even for rules with zero diagnostics.
    assert "conflict_score" in report.metrics["L001"]


def test_disable_rule_skips_it():
    report = _lint_leafmod(LintConfig(disabled=frozenset({"L004", "L005"})))
    assert "L004" not in report.rules_run
    assert "L004" not in report.metrics


def test_severity_override_rewrites_rule_diagnostics():
    # leafmod's 4 x 64B hot blocks exceed the 1KB cache's half-capacity
    # threshold?  No — force a deterministic case via L005 on a big module.
    m = leaf_module(20, n_instr=16)  # 20 x 64B = 1280B > 1KB capacity
    bundle = make_bundle(m, list(range(20)) * 4)
    base = run_lint(m, baseline_layout(m), bundle, TINY_CACHE)
    assert any(d.severity is Severity.WARNING for d in base.by_rule("L005"))
    forced = run_lint(
        m,
        baseline_layout(m),
        bundle,
        TINY_CACHE,
        LintConfig(severity_overrides={"L005": Severity.ERROR}),
    )
    assert all(d.severity is Severity.ERROR for d in forced.by_rule("L005"))
    assert not forced.ok


def test_render_text_and_json_roundtrip():
    report = _lint_leafmod()
    text = render_text(report)
    assert "lint leafmod" in text
    assert "rule(s)" in text
    data = json.loads(render_json(report))
    assert data["program"] == "leafmod"
    assert set(data["rules"]) == set(report.rules_run)
    assert data["summary"]["errors"] == 0
