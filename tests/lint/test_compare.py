"""Unit tests for the static layout diff (repro.lint.compare)."""

from repro.ir import baseline_layout
from repro.ir.codegen import place_blocks
from repro.lint import compare_layouts, conflict_score

from .conftest import TINY_CACHE, leaf_module, make_bundle


def _conflicting_and_packed():
    """One module, two layouts: all hot lines on one set vs. spread out."""
    m = leaf_module(4)
    bundle = make_bundle(m, [0, 1, 2, 3] * 10)
    conflicting = place_blocks(m, {0: 0, 1: 512, 2: 1024, 3: 1536})
    packed = baseline_layout(m).address_map
    return m, bundle, conflicting, packed


def test_compare_picks_the_conflict_free_layout():
    m, bundle, conflicting, packed = _conflicting_and_packed()
    cmp = compare_layouts(
        m, bundle, conflicting, packed, TINY_CACHE, name_a="piled", name_b="packed"
    )
    assert cmp.winner == "b"
    assert cmp.winner_name == "packed"
    whys = cmp.explanations()
    assert any("set-conflict score" in w for w in whys)


def test_compare_is_symmetric():
    m, bundle, conflicting, packed = _conflicting_and_packed()
    fwd = compare_layouts(m, bundle, conflicting, packed, TINY_CACHE)
    rev = compare_layouts(m, bundle, packed, conflicting, TINY_CACHE)
    assert fwd.winner == "b" and rev.winner == "a"


def test_compare_identical_layouts_tie():
    m, bundle, _, packed = _conflicting_and_packed()
    cmp = compare_layouts(m, bundle, packed, packed, TINY_CACHE)
    assert cmp.winner == "tie"
    assert cmp.winner_name == "tie"
    assert cmp.explanations() == []


def test_compare_serialization_and_rendering():
    m, bundle, conflicting, packed = _conflicting_and_packed()
    cmp = compare_layouts(
        m, bundle, conflicting, packed, TINY_CACHE, name_a="a1", name_b="b1"
    )
    d = cmp.to_dict()
    assert d["winner"] == "b1"
    assert {m["metric"] for m in d["metrics"]} >= {"conflict_score", "hot_lines"}
    text = cmp.render_text()
    assert "compare a1 vs b1" in text
    assert "verdict: b1" in text


def test_conflict_score_helper_matches_report_metric():
    m, bundle, conflicting, packed = _conflicting_and_packed()
    assert conflict_score(m, conflicting, bundle, TINY_CACHE) == 0.5
    assert conflict_score(m, packed, bundle, TINY_CACHE) == 0.0
