"""Shared helpers for the lint test package: hand-built modules with known
layout defects, synthetic trace bundles with exact heat, and a small cache
geometry that makes set arithmetic easy to reason about."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.config import CacheConfig
from repro.engine.instrument import TraceBundle
from repro.ir import BasicBlock, Exit, Function, Module, Return

#: 1 KB, 2-way, 64 B lines -> 16 lines, 8 sets.  Lines 64 apart in index
#: (bytes 512 apart) collide in the same set.
TINY_CACHE = CacheConfig(size_bytes=1024, assoc=2, line_bytes=64)


def make_bundle(module: Module, trace) -> TraceBundle:
    """Fabricate a TraceBundle with an exact, hand-chosen block trace."""
    function_names = [f.name for f in module.functions]
    fidx = {n: i for i, n in enumerate(function_names)}
    func_of_gid = np.array(
        [fidx[n] for n in module.function_of_gid()], dtype=np.int32
    )
    bb = np.asarray(trace, dtype=np.int64)
    instr = int(sum(module.block_by_gid(int(g)).n_instr for g in bb))
    return TraceBundle(
        program=module.name,
        input_name="synthetic",
        bb_trace=bb,
        func_trace=func_of_gid[bb] if bb.shape[0] else bb.astype(np.int32),
        block_names=[
            f"{b.func}:{b.name}"
            for b in (module.block_by_gid(g) for g in range(module.n_blocks))
        ],
        function_names=function_names,
        func_of_gid=func_of_gid,
        instr_count=instr,
        natural_exit=True,
    )


def leaf_module(n_functions: int, n_instr: int = 16) -> Module:
    """``n_functions`` single-block leaf functions (no calls, no branches).

    Every block is ``n_instr`` instructions (``4 * n_instr`` bytes) with no
    fall-through successor, so explicit placement controls addresses without
    any added-jump interference.
    """
    funcs = [Function("main", [BasicBlock("entry", n_instr, Exit())])]
    for i in range(1, n_functions):
        funcs.append(Function(f"f{i}", [BasicBlock("entry", n_instr, Return())]))
    return Module("leafmod", funcs, entry="main").seal()


@pytest.fixture
def tiny_cache():
    return TINY_CACHE


@pytest.fixture
def lint_report():
    """A hand-built report with several rules/locations, emitted out of
    canonical order (for ordering-invariance tests)."""
    from repro.lint.diagnostics import Diagnostic, LintReport, Severity

    report = LintReport(program="p", layout="baseline", cache="tiny")
    report.rules_run = ["L001", "L002", "L006"]
    report.metrics = {"L001": {"conflict_score": 0.25}, "L002": {}, "L006": {}}
    report.extend(
        [
            Diagnostic("L002", Severity.WARNING, "main:b", "broken fall-through"),
            Diagnostic("L001", Severity.WARNING, "set 7", "overloaded", {"k": 5}),
            Diagnostic("L006", Severity.ERROR, "layout", "overlap", {"bytes": 8}),
            Diagnostic("L001", Severity.WARNING, "set 2", "overloaded", {"k": 3}),
            Diagnostic("L002", Severity.WARNING, "main:a", "broken fall-through"),
        ]
    )
    return report
