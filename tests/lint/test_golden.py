"""Golden-output and determinism regression tests for the lint reports.

The JSON rendering of a report is a public contract consumed by build
tooling: its bytes must be a pure function of (program, layout, config),
never of rule execution order, diagnostic emission order, or hash
randomization.  The golden file pins the full ``--format json`` output
for one suite cell; the shuffle tests pin the canonical
``(rule, location, message)`` ordering directly.

Regenerate the golden after an intentional analyzer change with::

    PYTHONPATH=src python -m repro.lint syn-mcf --scale 0.05 \
        --format json > tests/lint/golden/lint_syn-mcf_baseline.json
"""

from __future__ import annotations

import io
import json
import random
from contextlib import redirect_stdout
from pathlib import Path

from repro.lint.__main__ import main
from repro.lint.diagnostics import render_json, render_text

GOLDEN_DIR = Path(__file__).parent / "golden"


def _run_cli_json(argv: list[str]) -> tuple[int, str]:
    buf = io.StringIO()
    with redirect_stdout(buf):
        rc = main(argv)
    return rc, buf.getvalue()


def test_cli_json_matches_golden():
    rc, out = _run_cli_json(["syn-mcf", "--scale", "0.05", "--format", "json"])
    assert rc == 0
    golden = (GOLDEN_DIR / "lint_syn-mcf_baseline.json").read_text()
    assert out == golden


def test_cli_json_run_to_run_deterministic():
    argv = ["syn-sjeng", "--scale", "0.05", "--format", "json"]
    rc1, out1 = _run_cli_json(argv)
    rc2, out2 = _run_cli_json(argv)
    assert rc1 == rc2 == 0
    assert out1 == out2


def test_report_json_invariant_under_diagnostic_shuffle(lint_report):
    """to_dict()/render paths must not depend on emission order."""
    reference = lint_report.to_dict()
    ref_text = render_text(lint_report)
    ref_json = render_json(lint_report)
    rng = random.Random(1234)
    for _ in range(5):
        rng.shuffle(lint_report.diagnostics)
        assert lint_report.to_dict() == reference
        assert render_text(lint_report) == ref_text
        assert render_json(lint_report) == ref_json


def test_sorted_diagnostics_is_canonical(lint_report):
    keys = [d.sort_key for d in lint_report.sorted_diagnostics()]
    assert keys == sorted(keys)
    # JSON diagnostics array follows the same canonical order.
    emitted = json.loads(render_json(lint_report))["diagnostics"]
    assert [
        (d["rule"], d["location"], d["message"]) for d in emitted
    ] == sorted((d["rule"], d["location"], d["message"]) for d in emitted)
