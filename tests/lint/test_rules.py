"""Per-rule unit tests on hand-built modules with known, planted defects."""

import numpy as np
import pytest

from repro.ir import (
    AddressMap,
    BasicBlock,
    Branch,
    Exit,
    Function,
    Module,
    Return,
    baseline_layout,
    layout_blocks,
)
from repro.ir.codegen import place_blocks
from repro.lint import LintConfig, Severity, run_lint
from repro.lint.integrity import audit_address_map, audit_gid_order

from .conftest import TINY_CACHE, leaf_module, make_bundle


def lint(module, amap, trace, config=None):
    return run_lint(module, amap, make_bundle(module, trace), TINY_CACHE, config)


# -- L001 set-conflict-hotspot ----------------------------------------------


def test_conflict_flags_hot_lines_piled_on_one_set():
    m = leaf_module(4)  # four 64B blocks
    # Byte stride 512 = 8 lines = the full set cycle: all four land in set 0.
    amap = place_blocks(m, {0: 0, 1: 512, 2: 1024, 3: 1536})
    report = lint(m, amap, [0, 1, 2, 3] * 10)
    diags = [d for d in report.by_rule("L001") if d.severity is Severity.WARNING]
    assert len(diags) == 1
    d = diags[0]
    assert d.location == "set 0"
    assert d.measured["hot_lines"] == 4
    assert d.measured["assoc"] == 2
    # two victim lines at 10 fetches each.
    assert d.measured["victim_fetches"] == 20
    assert report.metrics["L001"]["conflict_score"] == pytest.approx(20 / 40)


def test_conflict_clean_when_hot_lines_spread_over_sets():
    m = leaf_module(4)
    amap = place_blocks(m, {0: 0, 1: 64, 2: 128, 3: 192})  # sets 0..3
    report = lint(m, amap, [0, 1, 2, 3] * 10)
    assert report.by_rule("L001") == []
    assert report.metrics["L001"]["conflict_score"] == 0.0


# -- L002 broken-fallthrough -------------------------------------------------


def _branchy():
    blocks = [
        BasicBlock("entry", 4, Branch("a", "b", taken_prob=0.5)),
        BasicBlock("a", 4, Return()),
        BasicBlock("b", 4, Exit()),
    ]
    return Module("ft", [Function("main", blocks)], entry="main").seal()


def test_broken_fallthrough_flagged_for_hot_block():
    m = _branchy()
    gid = {b.name: b.gid for b in m.iter_blocks()}
    # declaration order entry,a,b: entry's fall-through (b) is NOT adjacent.
    amap = layout_blocks(m, [gid["entry"], gid["a"], gid["b"]])
    report = lint(m, amap, [gid["entry"], gid["b"]] * 10)
    diags = [d for d in report.by_rule("L002") if d.severity is Severity.WARNING]
    assert [d.location for d in diags] == ["main:entry"]
    assert diags[0].measured["executions"] == 10
    assert report.metrics["L002"]["dynamic_added_jumps"] == 10
    assert report.metrics["L002"]["n_broken_hot"] == 1


def test_broken_fallthrough_clean_when_adjacent():
    m = _branchy()
    gid = {b.name: b.gid for b in m.iter_blocks()}
    amap = layout_blocks(m, [gid["entry"], gid["b"], gid["a"]])
    report = lint(m, amap, [gid["entry"], gid["b"]] * 10)
    assert report.by_rule("L002") == []
    assert report.metrics["L002"]["n_broken_total"] == 0


def test_broken_fallthrough_cold_blocks_counted_not_reported():
    m = _branchy()
    gid = {b.name: b.gid for b in m.iter_blocks()}
    amap = layout_blocks(m, [gid["entry"], gid["a"], gid["b"]])
    # entry never executes -> broken fall-through exists but is cold.
    report = lint(m, amap, [gid["a"], gid["b"]] * 10)
    assert report.by_rule("L002") == []
    assert report.metrics["L002"]["n_broken_total"] == 1
    assert report.metrics["L002"]["n_broken_hot"] == 0


# -- L003 hot-cold-interleaving ----------------------------------------------


def _hot_cold_module():
    blocks = [
        BasicBlock("h1", 16, Exit()),
        BasicBlock("cold", 4, Return()),  # 16B pocket
        BasicBlock("h2", 16, Return()),
    ]
    return Module("hc", [Function("main", blocks)], entry="main").seal()


def test_interleaved_cold_pocket_flagged():
    m = _hot_cold_module()
    gid = {b.name: b.gid for b in m.iter_blocks()}
    amap = layout_blocks(m, [gid["h1"], gid["cold"], gid["h2"]])
    report = lint(m, amap, [gid["h1"], gid["h2"]] * 10)
    diags = report.by_rule("L003")
    assert len(diags) == 1
    assert diags[0].location == "main:cold"
    assert diags[0].measured["cold_bytes"] == 16
    assert diags[0].measured["prev_hot"] == "main:h1"
    assert diags[0].measured["next_hot"] == "main:h2"


def test_cold_tail_not_flagged():
    m = _hot_cold_module()
    gid = {b.name: b.gid for b in m.iter_blocks()}
    amap = layout_blocks(m, [gid["h1"], gid["h2"], gid["cold"]])
    report = lint(m, amap, [gid["h1"], gid["h2"]] * 10)
    assert report.by_rule("L003") == []


def test_long_cold_run_not_flagged():
    # A cold run of >= interleave_max_cold_lines lines separates two hot
    # regions instead of polluting one.
    blocks = [
        BasicBlock("h1", 16, Exit()),
        BasicBlock("cold", 40, Return()),  # 160B > 2 lines
        BasicBlock("h2", 16, Return()),
    ]
    m = Module("hc2", [Function("main", blocks)], entry="main").seal()
    gid = {b.name: b.gid for b in m.iter_blocks()}
    amap = layout_blocks(m, [gid["h1"], gid["cold"], gid["h2"]])
    report = lint(m, amap, [gid["h1"], gid["h2"]] * 10)
    assert report.by_rule("L003") == []


# -- L004 line-utilization ---------------------------------------------------


def test_fragmented_hot_line_reported():
    m = leaf_module(3, n_instr=4)  # 16B blocks
    # hot block 0 at line 0; cold blocks parked far away on their own lines.
    amap = place_blocks(m, {0: 0, 1: 256, 2: 320})
    report = lint(m, amap, [0] * 10)
    headline = [d for d in report.by_rule("L004") if d.severity is Severity.WARNING]
    assert len(headline) == 1
    assert headline[0].measured["n_fragmented"] == 1
    details = [d for d in report.by_rule("L004") if d.severity is Severity.INFO]
    assert details and details[0].location == "line 0"
    assert details[0].measured["utilization"] == pytest.approx(16 / 64)
    assert report.metrics["L004"]["mean_utilization"] == pytest.approx(0.25)


def test_fully_packed_lines_are_clean():
    m = leaf_module(2, n_instr=16)  # 64B blocks fill their lines exactly
    amap = place_blocks(m, {0: 0, 1: 64})
    report = lint(m, amap, [0, 1] * 10)
    assert report.by_rule("L004") == []
    assert report.metrics["L004"]["mean_utilization"] == pytest.approx(1.0)


# -- L005 footprint-over-capacity --------------------------------------------


def test_footprint_over_capacity_warns():
    m = leaf_module(20)  # 20 x 64B = 20 lines > 16-line capacity
    report = lint(
        m,
        baseline_layout(m).address_map,
        list(range(20)) * 4,
        LintConfig(hot_coverage=1.0),
    )
    diags = report.by_rule("L005")
    assert any(d.severity is Severity.WARNING for d in diags)
    assert report.metrics["L005"]["hot_lines"] == 20
    assert report.metrics["L005"]["footprint_ratio"] == pytest.approx(20 / 16)


def test_half_capacity_defensiveness_info():
    m = leaf_module(10)  # 10 lines: under capacity, over half
    report = lint(m, baseline_layout(m).address_map, list(range(10)) * 4)
    diags = report.by_rule("L005")
    assert len(diags) == 1
    assert diags[0].severity is Severity.INFO
    assert "peer" in diags[0].message


def test_small_footprint_clean():
    m = leaf_module(4)
    report = lint(m, baseline_layout(m).address_map, [0, 1, 2, 3] * 4)
    assert report.by_rule("L005") == []


# -- L006 layout-integrity ---------------------------------------------------


def test_integrity_rejects_non_permutation_order():
    m = leaf_module(3)
    good = baseline_layout(m).address_map
    broken = AddressMap(
        order=[0, 0, 2],  # duplicate + missing
        starts=good.starts.copy(),
        sizes=good.sizes.copy(),
        added_jumps=0,
    )
    report = lint(m, broken, [0, 1, 2] * 5)
    msgs = [d.message for d in report.by_rule("L006")]
    assert any("appears twice" in s for s in msgs)
    assert any("misses" in s for s in msgs)
    assert not report.ok


def test_integrity_rejects_overlap():
    m = leaf_module(3)
    good = baseline_layout(m).address_map
    starts = good.starts.copy()
    starts[2] = int(starts[1]) + 4  # overlaps block 1
    broken = AddressMap(order=[0, 1, 2], starts=starts, sizes=good.sizes.copy(), added_jumps=0)
    report = lint(m, broken, [0, 1, 2] * 5)
    assert any("overlaps" in d.message for d in report.by_rule("L006"))
    assert not report.ok


def test_integrity_reports_gaps_as_info():
    m = leaf_module(3)
    amap = place_blocks(m, {0: 0, 1: 128, 2: 256})  # 64B gap after each block
    report = lint(m, amap, [0, 1, 2] * 5)
    gap = [d for d in report.by_rule("L006") if "gap" in d.message]
    assert len(gap) == 1
    assert gap[0].severity is Severity.INFO
    assert gap[0].measured["gap_bytes"] == 128
    assert report.ok  # gaps are not errors
    assert report.metrics["L006"]["gap_bytes"] == 128


def test_integrity_rejects_impossible_size():
    m = leaf_module(2)
    good = baseline_layout(m).address_map
    sizes = good.sizes.copy()
    sizes[1] = 4  # block has 16 instructions = 64B minimum
    broken = AddressMap(order=[0, 1], starts=good.starts.copy(), sizes=sizes, added_jumps=0)
    report = lint(m, broken, [0, 1] * 5)
    assert any("plausible range" in d.message for d in report.by_rule("L006"))


def test_audit_helpers_match_rule_output():
    m = leaf_module(3)
    assert audit_gid_order(m, [99])[0].message.startswith("gid 99 out of range")
    good = baseline_layout(m).address_map
    assert audit_address_map(m, good) == []


# -- config knobs ------------------------------------------------------------


def test_max_reports_caps_per_finding_diagnostics():
    n = 12
    m = leaf_module(n)
    # Three over-subscribed sets (0, 1, 2), four hot lines each.
    amap = place_blocks(m, {g: g * 512 + (g % 3) * 64 for g in range(n)})
    report = lint(m, amap, list(range(n)) * 4, LintConfig(max_reports=1))
    l1 = report.by_rule("L001")
    warnings = [d for d in l1 if d.severity is Severity.WARNING]
    notes = [d for d in l1 if d.severity is Severity.INFO]
    assert report.metrics["L001"]["n_conflict_sets"] == 3
    assert len(warnings) == 1
    assert len(notes) == 1 and "suppressed" in notes[0].message


def test_hot_coverage_widens_hot_set():
    m = leaf_module(4)
    amap = baseline_layout(m).address_map
    trace = [0] * 97 + [1, 2, 3]
    bundle = make_bundle(m, trace)
    narrow = run_lint(m, amap, bundle, TINY_CACHE, LintConfig(hot_coverage=0.5))
    wide = run_lint(m, amap, bundle, TINY_CACHE, LintConfig(hot_coverage=1.0))
    assert narrow.metrics["L005"]["hot_lines"] == 1
    assert wide.metrics["L005"]["hot_lines"] == 4
