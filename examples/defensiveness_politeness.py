#!/usr/bin/env python3
"""The formal defensiveness/politeness model (paper Sec. II-A), both ways.

* the *model channel*: all-window footprint curves composed through
  ``P(self.miss) = P(self.FP + peer.FP >= C)`` (Eqs. 1-2);
* the *measurement channel*: event-driven shared-cache simulation scored
  with the same three-way classification.

Run:  python examples/defensiveness_politeness.py
"""

from repro.core import score_goals
from repro.experiments import BASELINE, Lab
from repro.locality import classify_benefits, footprint_curve


def main() -> None:
    lab = Lab(scale=0.4, noise_sigma=0.0)
    # mcf is the paper's defensiveness showcase: near-zero solo misses, so
    # a layout change cannot help the solo run — yet it pays off under
    # co-run pressure.
    target, peer, optimizer = "syn-mcf", "syn-gamess", "bb-affinity"
    cache_lines = lab.cache_cfg.n_lines

    # ---- model channel: footprint composition --------------------------
    fp_before = footprint_curve(lab.lines(target, BASELINE))
    fp_after = footprint_curve(lab.lines(target, optimizer))
    fp_peer = footprint_curve(lab.lines(peer, BASELINE))
    report = classify_benefits(fp_before, fp_after, fp_peer, cache_lines)
    print(f"model channel (footprint composition, C = {cache_lines} lines):")
    print(f"  locality      (solo miss-prob delta): {report.locality:+.4f}")
    print(f"  defensiveness (self co-run delta):    {report.defensiveness:+.4f}")
    print(f"  politeness    (peer co-run delta):    {report.politeness:+.4f}")

    # ---- measurement channel: shared-cache simulation -------------------
    solo_b = lab.solo_miss(target, BASELINE, channel="sim").ratio
    solo_a = lab.solo_miss(target, optimizer, channel="sim").ratio
    corun_b = lab.corun_miss((target, BASELINE), (peer, BASELINE), "sim")
    corun_a = lab.corun_miss((target, optimizer), (peer, BASELINE), "sim")
    scores = score_goals(
        solo_b, solo_a,
        corun_b[0].ratio, corun_a[0].ratio,
        corun_b[1].ratio, corun_a[1].ratio,
    )
    print(f"\nmeasurement channel (event-driven simulation, {optimizer}):")
    print(f"  solo miss ratio:   {solo_b:.4%} -> {solo_a:.4%} "
          f"(relative reduction {scores.locality:+.1%})")
    print(f"  co-run self miss:  {corun_b[0].ratio:.4%} -> {corun_a[0].ratio:.4%} "
          f"(defensiveness {scores.defensiveness:+.1%})")
    print(f"  co-run peer miss:  {corun_b[1].ratio:.4%} -> {corun_a[1].ratio:.4%} "
          f"(politeness {scores.politeness:+.1%})")
    solo_pp = solo_b - solo_a
    corun_pp = corun_b[0].ratio - corun_a[0].ratio
    print(f"\nabsolute deltas: solo {solo_pp * 100:+.3f} pp vs "
          f"co-run {corun_pp * 100:+.3f} pp")
    if corun_pp > solo_pp:
        print("The co-run delta dominates — the paper's headline case: an "
              "optimization that barely moves the solo run but defends the "
              "program in shared cache.")


if __name__ == "__main__":
    main()
