#!/usr/bin/env python3
"""Quickstart: optimize a program's code layout and measure the effect.

The 60-second tour of the library:

1. build a synthetic benchmark program (the SPEC stand-in suite),
2. instrument it on its *test* input (the profiling run),
3. run a layout optimizer (here: inter-procedural basic-block reordering
   driven by w-window reference affinity — the paper's best performer),
4. evaluate on the *ref* input in the paper's 32KB/4-way/64B instruction
   cache, solo and co-running against a probe program.

Run:  python examples/quickstart.py
"""

from repro.cache import PAPER_L1I, simulate, simulate_shared
from repro.core import OptimizerConfig, bb_affinity
from repro.engine import collect_trace, fetch_lines
from repro.ir import baseline_layout
from repro.workloads import build


def miss_ratio(misses: float, instructions: int) -> str:
    return f"{misses / instructions:.4%}"


def main() -> None:
    # 1. Build the program and a probe to co-run against.
    prog, module = build("syn-omnetpp")
    probe_prog, probe_module = build("syn-gamess")
    print(f"program: {module.name}  ({module.n_functions} functions, "
          f"{module.n_blocks} blocks, {module.size_bytes / 1024:.0f} KB)")

    # 2. Profile on the test input; evaluate on the ref input.
    profile = collect_trace(module, prog.spec.test_input())
    ref = collect_trace(module, prog.spec.ref_input())
    probe_ref = collect_trace(probe_module, probe_prog.spec.ref_input())

    # 3. Optimize: BB affinity with the paper's defaults (w = 2..20).
    base = baseline_layout(module)
    opt = bb_affinity(module, profile, OptimizerConfig())
    print(f"optimized layout: {opt.note}; added jumps: {opt.added_jumps}")

    # 4. Evaluate.
    probe_lines = fetch_lines(probe_ref.bb_trace, baseline_layout(probe_module).address_map,
                              PAPER_L1I.line_bytes) + (1 << 22)  # disjoint pages
    print(f"\n{'layout':10s} {'solo miss':>12s} {'co-run miss':>12s}")
    for label, layout in (("baseline", base), ("bb-aff", opt)):
        lines = fetch_lines(ref.bb_trace, layout.address_map, PAPER_L1I.line_bytes)
        solo = simulate(lines, PAPER_L1I)
        shared = simulate_shared([lines, probe_lines], PAPER_L1I)
        corun_misses = shared[0].misses * (len(lines) / shared[0].accesses)
        print(f"{label:10s} {miss_ratio(solo.misses, ref.instr_count):>12s} "
              f"{miss_ratio(corun_misses, ref.instr_count):>12s}")

    print("\nThe co-run column is the defensiveness story: the same layout "
          "change buys more when a peer is thrashing the shared cache.")


if __name__ == "__main__":
    main()
