#!/usr/bin/env python3
"""The compilation driver: one call from program to evaluated layouts,
with on-disk artifacts.

Mirrors the paper's system flow ("the output is four optimized binaries"):
instrument on the test input, run all four optimizers plus two classic
baselines, evaluate on the ref input, and persist everything into a build
directory you can reload later.

Run:  python examples/compiler_driver.py
"""

import tempfile
from pathlib import Path

from repro.compiler import Driver, load_layout, load_report
from repro.workloads import build


def main() -> None:
    prog, module = build("syn-sjeng", ref_blocks=80_000, test_blocks=40_000)
    driver = Driver(
        optimizers=[
            "function-affinity",
            "bb-affinity",
            "function-trg",
            "bb-trg",
            "bb-ph",
            "function-coloring",
        ]
    )
    build_dir = Path(tempfile.mkdtemp(prefix="repro-build-"))
    result = driver.build(
        module, prog.spec.test_input(), prog.spec.ref_input(), build_dir=build_dir
    )

    print(f"built {result.program}: {module.n_functions} functions, "
          f"{module.n_blocks} blocks\n")
    print(f"{'layout':20s} {'bytes':>7s} {'jumps':>6s} {'miss/instr':>11s} {'opt time':>9s}")
    for name, layout in result.layouts.items():
        t = result.timings.get(f"optimize/{name}", 0.0)
        print(f"{name:20s} {layout.total_bytes:7d} {layout.added_jumps:6d} "
              f"{result.miss_ratios[name]:10.4%} {t:8.2f}s")
    print(f"\nbest layout: {result.best_layout()}")

    # Artifacts round-trip: the saved layout reproduces the evaluation.
    reloaded = load_layout(build_dir / f"layout-{result.best_layout()}.json")
    assert reloaded.note == result.layouts[result.best_layout()].note
    report = load_report(build_dir / "report.json")
    print(f"artifacts in {build_dir} "
          f"(report lists {len(report['layouts'])} layouts)")


if __name__ == "__main__":
    main()
