#!/usr/bin/env python3
"""Bring your own profile: run the optimizers on external data.

A downstream user has a real binary and a real profiler; they don't have
our synthetic suite.  ``repro.workloads.from_profile`` reconstructs the
library's inputs from the three things any profiler gives you — block
sizes, block-to-function mapping, and a dynamic block trace — after which
the entire pipeline (optimizers, simulators, driver) works unchanged.

This example fakes the "external" data with numpy (imagine it came from
`perf script` post-processing), then optimizes and evaluates it.

Run:  python examples/adopt_external_profile.py
"""

import numpy as np

from repro.cache import CacheConfig, simulate
from repro.core import OPTIMIZERS, OptimizerConfig
from repro.engine import fetch_lines
from repro.ir import baseline_layout
from repro.workloads import from_profile


def fake_profiler_output():
    """Pretend this came from your tooling: 3 functions, 12 blocks."""
    rng = np.random.default_rng(42)
    block_bytes = [40, 72, 24, 36, 88, 28, 52, 44, 120, 64, 36, 30]
    func_of_block = [0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2]
    function_names = ["dispatch", "parse", "emit"]
    # hot path: dispatch block 0 -> parse 4/5 -> emit 8/9, with phases.
    hot_a = [0, 4, 5, 0, 8, 9]
    hot_b = [0, 6, 7, 0, 10, 11]
    trace = []
    for phase in range(40):
        pattern = hot_a if phase % 2 == 0 else hot_b
        for _ in range(120):
            trace.extend(pattern)
            if rng.random() < 0.05:
                trace.append(int(rng.integers(0, 12)))  # occasional cold block
    return np.array(trace), block_bytes, func_of_block, function_names


def main() -> None:
    trace, sizes, fob, names = fake_profiler_output()
    module, bundle = from_profile("yourapp", trace, sizes, fob, names)
    print(f"adopted profile: {module.n_functions} functions, "
          f"{module.n_blocks} blocks, {bundle.n_dynamic_blocks} dynamic blocks\n")

    # The fake app is only ~600 bytes, so evaluate in a doll-house cache;
    # with a real profile you would pass PAPER_L1I instead.
    cache = CacheConfig(size_bytes=512, assoc=2, line_bytes=32)

    base = baseline_layout(module)
    results = {"baseline": base}
    cfg = OptimizerConfig(w_max=10, cache=cache)
    for name in ("bb-affinity", "function-affinity", "bb-trg"):
        results[name] = OPTIMIZERS[name](module, bundle, cfg)

    print(f"{'layout':20s} {'misses':>8s} {'vs baseline':>12s}")
    base_misses = None
    for name, layout in results.items():
        lines = fetch_lines(bundle.bb_trace, layout.address_map, cache.line_bytes)
        misses = simulate(lines, cache).misses
        if base_misses is None:
            base_misses = misses
        delta = (base_misses - misses) / base_misses if base_misses else 0.0
        print(f"{name:20s} {misses:8d} {delta:+11.1%}")

    order = results["bb-affinity"].address_map.order
    print("\nbb-affinity layout (first 8 blocks):",
          " ".join(module.block_by_gid(g).func + ":" + module.block_by_gid(g).name
                   for g in order[:8]))
    print("Note the phase-correlated blocks of different functions packed "
          "together — on your real binary, feed this order to your linker "
          "script or BOLT-style rewriter.")


if __name__ == "__main__":
    main()
