#!/usr/bin/env python3
"""Why a layout wins: line utilization, set balance, phases.

Uses the analysis toolbox (:mod:`repro.analysis`,
:mod:`repro.trace.phases`) to dissect one program's baseline and optimized
layouts — the mechanics behind the miss-ratio tables.

Run:  python examples/layout_anatomy.py
"""

from repro.analysis import analyze_layout
from repro.cache import PAPER_L1I
from repro.core import OPTIMIZERS, OptimizerConfig
from repro.engine import collect_trace
from repro.ir import baseline_layout
from repro.trace import detect_phases
from repro.workloads import build


def main() -> None:
    prog, module = build("syn-gobmk", ref_blocks=80_000, test_blocks=40_000)
    profile = collect_trace(module, prog.spec.test_input())

    print(f"{module.name}: {module.n_blocks} blocks, "
          f"{module.size_bytes / 1024:.0f} KB code\n")

    # --- phase structure --------------------------------------------------
    phases = detect_phases(profile.func_trace, window=2048, threshold=0.35)
    print(f"detected {len(phases)} phases in the profile "
          f"(generator phase period: {prog.spec.phase_period} blocks)")
    for p in phases[:4]:
        hot = ", ".join(profile.function_names[s] for s in p.hot_symbols[:3])
        print(f"  [{p.start:7d}, {p.end:7d})  hot: {hot}")
    if len(phases) > 4:
        print(f"  ... and {len(phases) - 4} more")

    # --- layout quality ----------------------------------------------------
    print(f"\n{'layout':20s} {'hot lines':>9s} {'utilization':>12s} "
          f"{'set imbalance':>14s} {'overcommitted':>14s}")
    layouts = {"baseline": baseline_layout(module)}
    cfg = OptimizerConfig()
    for name in ("function-affinity", "bb-affinity", "bb-trg"):
        layouts[name] = OPTIMIZERS[name](module, profile, cfg)
    for name, layout in layouts.items():
        q = analyze_layout(module, profile, layout.address_map, PAPER_L1I)
        print(f"{name:20s} {q.n_hot_lines:9d} {q.line_utilization:11.1%} "
              f"{q.set_imbalance:14.3f} {q.overcommitted_fraction:13.1%}")

    print("\nReading: the optimizers shrink the hot-line footprint (higher "
          "utilization = less cold code sharing hot lines) and spread it "
          "more evenly over the cache sets.")


if __name__ == "__main__":
    main()
