#!/usr/bin/env python3
"""The paper's two worked examples, executed: Fig. 1 (affinity hierarchy)
and Fig. 2 (TRG reduction).

Run:  python examples/affinity_hierarchy_demo.py
"""

import numpy as np

from repro.core import (
    TRG,
    AffinityAnalysis,
    build_hierarchy,
    hierarchy_levels,
    layout_order,
    reduce_trg,
)


def figure1() -> None:
    print("=== Paper Fig. 1: hierarchical w-window affinity ===")
    trace = np.array([1, 4, 2, 4, 2, 3, 5, 1, 4])  # B1 B4 B2 B4 B2 B3 B5 B1 B4
    names = {i: f"B{i}" for i in range(1, 6)}
    print("trace:", " ".join(names[x] for x in trace))

    analysis = AffinityAnalysis(trace, w_max=6)
    forest = build_hierarchy(analysis)
    for w, groups in sorted(hierarchy_levels(forest).items()):
        rendered = " ".join(
            "(" + ",".join(names[x] for x in g) + ")" for g in groups
        )
        print(f"  w={w}: {rendered}")
    order = layout_order(forest)
    print("output sequence:", " ".join(names[x] for x in order))
    assert order == [1, 4, 2, 3, 5], "must match the paper's published layout"


def figure2() -> None:
    print("\n=== Paper Fig. 2: TRG reduction with 3 code slots ===")
    A, B, C, E, F = 0, 1, 2, 3, 4
    names = {A: "A", B: "B", C: "C", E: "E", F: "F"}
    trg = TRG(nodes=[A, B, C, E, F])
    for (x, y), w in {
        (A, B): 40, (E, F): 31, (C, E): 30,
        (B, E): 20, (B, F): 15, (A, F): 10,
    }.items():
        trg.add_conflict(x, y, w)
        print(f"  edge {names[x]}-{names[y]}: weight {w}")

    result = reduce_trg(trg, n_slots=3)
    for k, slot in enumerate(result.slots, 1):
        print(f"  code slot {k}: {' '.join(names[x] for x in slot)}")
    print("output sequence:", " ".join(names[x] for x in result.order))
    assert result.order == [A, B, E, F, C], "must match the paper's sequence"


if __name__ == "__main__":
    figure1()
    figure2()
