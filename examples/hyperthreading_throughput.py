#!/usr/bin/env python3
"""Hyper-threading throughput and the magnifying effect of layout
optimization (the paper's Fig. 7, on one pair).

Two programs co-run on the hyper-threads of one core.  The co-run
finishes both jobs faster than running them back to back (Fig. 7a); after
function-affinity optimization of one program, the shared instruction
cache is used better and the throughput benefit grows (Fig. 7b).

Run:  python examples/hyperthreading_throughput.py
"""

from repro.experiments import BASELINE, Lab


def main() -> None:
    lab = Lab(scale=0.5)
    a, b = "syn-sjeng", "syn-omnetpp"
    print(f"pair: {a} + {b}\n")

    base = lab.corun_timing((a, BASELINE), (b, BASELINE))
    opt = lab.corun_timing((a, "function-affinity"), (b, BASELINE))

    serial = base.solo_cycles[0] + base.solo_cycles[1]
    thr_base = serial / base.makespan - 1.0
    thr_opt = serial / opt.makespan - 1.0

    print(f"solo cycles:            {base.solo_cycles[0]:>12.0f}  {base.solo_cycles[1]:>12.0f}")
    print(f"baseline co-run cycles: {base.corun_cycles[0]:>12.0f}  {base.corun_cycles[1]:>12.0f}")
    print(f"optimized co-run cycles:{opt.corun_cycles[0]:>12.0f}  {opt.corun_cycles[1]:>12.0f}")
    print(f"\nback-to-back solo time:   {serial:,.0f} cycles")
    print(f"baseline co-run makespan: {base.makespan:,.0f} cycles "
          f"-> throughput +{thr_base:.1%}")
    print(f"optimized co-run makespan:{opt.makespan:,.0f} cycles "
          f"-> throughput +{thr_opt:.1%}")
    print(f"\nmagnification of the hyper-threading benefit: "
          f"{thr_opt / thr_base - 1.0:+.1%}  (paper: avg +7.9%)")

    # The per-thread view: defensiveness (self) and politeness (peer).
    mb = lab.corun_miss((a, BASELINE), (b, BASELINE))
    mo = lab.corun_miss((a, "function-affinity"), (b, BASELINE))
    print(f"\nco-run miss ratios ({a} / {b}):")
    print(f"  baseline : {mb[0].ratio:.4%} / {mb[1].ratio:.4%}")
    print(f"  optimized: {mo[0].ratio:.4%} / {mo[1].ratio:.4%}")
    print("  the second column's drop is politeness — the peer benefits "
          "from our smaller footprint without being recompiled.")


if __name__ == "__main__":
    main()
