#!/usr/bin/env python3
"""The paper's Fig. 3 scenario: inter-procedural basic-block reordering.

main repeatedly calls two functions X and Y.  Each invocation executes
only half of the callee, and the executed halves are correlated (the
global flag in the paper; a phase-locked branch here).  Intra-procedural
layout cannot help — the win requires extracting the co-executed halves
of *different functions* and placing them together, which is exactly what
the BB-affinity optimizer does.

Run:  python examples/interprocedural_reordering.py
"""

from repro.cache import CacheConfig, simulate
from repro.core import OptimizerConfig, bb_affinity
from repro.engine import InputSpec, collect_trace, fetch_lines
from repro.ir import ModuleBuilder, baseline_layout


def build_fig3_program():
    b = ModuleBuilder("fig3")
    f = b.function("main")
    f.block("entry", 2).loop("callx", "done", trips=2000)
    f.block("callx", 1).call("X", return_to="cally")
    f.block("cally", 1).call("Y", return_to="entry")
    f.block("done", 1).exit()
    for name in ("X", "Y"):
        g = b.function(name)
        # "if (b == 1)": within a phase both functions take the same side.
        g.block("head", 2).branch(
            "half1", "half2", taken_prob=1.0, phase_prob=0.0, phase_period=64
        )
        g.block("half1", 14).ret()
        g.block("half2", 14).ret()
    return b.build()


def main() -> None:
    module = build_fig3_program()
    profile = collect_trace(module, InputSpec("test", seed=1, max_blocks=8000))
    ref = collect_trace(module, InputSpec("ref", seed=2, max_blocks=12000))

    # A doll-house cache makes the layout effect visible on 10 blocks.
    cache = CacheConfig(size_bytes=256, assoc=2, line_bytes=32)
    base = baseline_layout(module)
    opt = bb_affinity(module, profile, OptimizerConfig(w_max=8, cache=cache))

    def render(layout):
        blocks = [module.block_by_gid(g) for g in layout.address_map.order]
        return " ".join(f"{blk.func}:{blk.name}" for blk in blocks)

    print("original layout: ", render(base))
    print("optimized layout:", render(opt))

    for label, layout in (("original", base), ("optimized", opt)):
        lines = fetch_lines(ref.bb_trace, layout.address_map, cache.line_bytes)
        stats = simulate(lines, cache)
        print(f"{label:10s} icache misses: {stats.misses:6d} "
              f"(miss/access {stats.miss_ratio:.3f})")

    print("\nNote how X:half1 and Y:half1 (and likewise the half2 pair) sit "
          "together in the optimized order — the paper's (X2 Y2)(X3 Y3) "
          "placement, impossible for an intra-procedural pass.")


if __name__ == "__main__":
    main()
