"""Profile one kernel pass per backend tier: where does the time go?

Runs cProfile over a single stack-distance histogram pass, a single
affinity coverage sweep, and a single TRG build on each registered
backend tier (``scalar``/``numpy``/``compiled``), and writes the top-N
cumulative-time tables to ``artifacts/profile_kernels_<tier>.txt``.
This is the drill-down companion to ``python -m repro.perf
kernel-bench``: the bench says *how much* faster a tier is, the profile
says *which* inner pass the time moved to.

Usage::

    python benchmarks/profile_kernels.py [--scale 0.25] [--top 25]
        [--backend numpy,compiled] [--out-dir artifacts]

Purely observational — no gates, no parity checks (those live in the
bench and in tests/perf/test_backends.py).
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import sys
from pathlib import Path


def _profile(label: str, fn, top: int) -> str:
    prof = cProfile.Profile()
    prof.enable()
    fn()
    prof.disable()
    buf = io.StringIO()
    stats = pstats.Stats(prof, stream=buf)
    stats.sort_stats("cumulative").print_stats(top)
    return f"== {label} ==\n{buf.getvalue()}\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--program", default="syn-gcc", help="suite program")
    parser.add_argument(
        "--scale", type=float, default=0.25, help="trace-budget multiplier"
    )
    parser.add_argument(
        "--n-sets", type=int, default=128, help="histogram geometry family"
    )
    parser.add_argument(
        "--w-max", type=int, default=20, help="affinity sweep upper bound"
    )
    parser.add_argument(
        "--window-blocks", type=int, default=256, help="TRG reuse window"
    )
    parser.add_argument(
        "--top", type=int, default=25, help="rows per cumulative-time table"
    )
    parser.add_argument(
        "--backend",
        default=None,
        metavar="TIERS",
        help="comma-separated tiers to profile (default: every available)",
    )
    parser.add_argument(
        "--out-dir",
        default="artifacts",
        metavar="DIR",
        help="where the profile tables land",
    )
    args = parser.parse_args(argv)

    from repro.core.layout import Granularity
    from repro.core.optimizers import OptimizerConfig, _prepare_trace
    from repro.experiments.pipeline import BASELINE, Lab
    from repro.perf.backends import available_backends, resolve_backend

    if args.backend:
        names = [s.strip() for s in args.backend.split(",") if s.strip()]
    else:
        names = list(available_backends())

    lab = Lab(scale=args.scale)
    stream = lab.lines(args.program, BASELINE)
    prepared = lab.program(args.program)
    trace = _prepare_trace(
        prepared.test_bundle, Granularity("function"), OptimizerConfig()
    )
    print(
        f"profiling {args.program}: {len(stream)} fetch lines, "
        f"{len(trace)} analysis accesses, tiers {names}"
    )

    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    for name in names:
        backend = resolve_backend(name)  # strict: typos fail loudly
        if name == "compiled":  # JIT outside the profile
            backend.histogram(stream, args.n_sets)
            backend.affinity(trace, w_max=args.w_max)
            backend.trg(trace, args.window_blocks)
        report = (
            f"# kernel profile: tier={name} program={args.program} "
            f"scale={args.scale}\n\n"
            + _profile(
                f"histogram (n_sets={args.n_sets})",
                lambda: backend.histogram(stream, args.n_sets),
                args.top,
            )
            + _profile(
                f"affinity (w_max={args.w_max})",
                lambda: backend.affinity(trace, w_max=args.w_max),
                args.top,
            )
            + _profile(
                f"trg (window_blocks={args.window_blocks})",
                lambda: backend.trg(trace, args.window_blocks),
                args.top,
            )
        )
        path = out_dir / f"profile_kernels_{name}.txt"
        path.write_text(report)
        print(f"  {name}: wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
