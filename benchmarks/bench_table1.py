"""Benchmark + regeneration harness for the paper's table1 artifact."""

from conftest import run_and_print


def bench_table1(benchmark, lab):
    result = run_and_print(benchmark, lab, "table1")
    assert result.exp_id == "table1"
