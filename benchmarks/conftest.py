"""Shared benchmark fixtures.

Every paper table/figure has a ``bench_*`` entry that runs its experiment
driver once (``benchmark.pedantic`` — the drivers are full evaluation
matrices, not microseconds-scale kernels) and prints the paper-shaped
table.  Run with::

    pytest benchmarks/ --benchmark-only            # scaled-down, minutes
    REPRO_BENCH_SCALE=1.0 pytest benchmarks/ ...   # full evaluation

``REPRO_BENCH_SCALE`` multiplies every program's trace budgets (default
0.15, keeping the whole suite to a few minutes).  The printed numbers at
any scale preserve the paper's *shapes*; EXPERIMENTS.md records the
full-scale run.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import Lab
from repro.experiments.runner import run_experiment

#: trace-budget multiplier for benchmark runs.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.15"))


@pytest.fixture(scope="session")
def lab() -> Lab:
    """One shared Lab so expensive artefacts (programs, layouts, fetch
    streams) are built once per benchmark session."""
    return Lab(scale=BENCH_SCALE)


def run_and_print(benchmark, lab: Lab, exp_id: str):
    """Benchmark one experiment driver end to end and print its table.

    The first (timed) run usually pays the Lab's cache-fill cost; the
    reported time is the cost of regenerating the artifact from scratch
    within a warm session.
    """
    result = benchmark.pedantic(
        run_experiment, args=(exp_id, lab), rounds=1, iterations=1
    )
    print()
    print(result.to_text())
    return result
