"""Microbenchmarks of the library's hot kernels.

Unlike the per-figure benches (one-shot experiment drivers), these are
classic pytest-benchmark measurements with multiple rounds: the affinity
one-pass analysis, TRG construction + reduction, the cache simulators, the
footprint formula, and the interpreter.  They track the performance claims
in the module docstrings (e.g. ~2M simulated accesses/second).
"""

import numpy as np
import pytest

from repro.cache import PAPER_L1I, simulate, simulate_shared
from repro.core import AffinityAnalysis, build_hierarchy, build_trg, layout_order, reduce_trg
from repro.engine import collect_trace, fetch_lines
from repro.ir import baseline_layout
from repro.locality import footprint_curve, reuse_distances
from repro.trace import trim
from repro.workloads import build


@pytest.fixture(scope="module")
def sjeng():
    prog, module = build("syn-sjeng", ref_blocks=60_000, test_blocks=30_000)
    test = collect_trace(module, prog.spec.test_input())
    ref = collect_trace(module, prog.spec.ref_input())
    layout = baseline_layout(module)
    lines = fetch_lines(ref.bb_trace, layout.address_map, 64)
    return module, test, ref, lines


def bench_interpreter(benchmark):
    prog, module = build("syn-sjeng", ref_blocks=60_000)
    result = benchmark(collect_trace, module, prog.spec.ref_input())
    assert result.n_dynamic_blocks > 0


def bench_affinity_analysis(benchmark, sjeng):
    module, test, _, _ = sjeng
    trimmed = trim(test.bb_trace)

    def run():
        return AffinityAnalysis(trimmed, w_max=20)

    analysis = benchmark(run)
    assert analysis.symbols


def bench_affinity_hierarchy(benchmark, sjeng):
    module, test, _, _ = sjeng
    analysis = AffinityAnalysis(trim(test.bb_trace), w_max=20)
    order = benchmark(lambda: layout_order(build_hierarchy(analysis)))
    assert order


def bench_trg_construction(benchmark, sjeng):
    module, test, _, _ = sjeng
    trimmed = trim(test.bb_trace)
    trg = benchmark(build_trg, trimmed, 512)
    assert trg.n_edges > 0


def bench_trg_reduction(benchmark, sjeng):
    module, test, _, _ = sjeng
    trg = build_trg(trim(test.bb_trace), 512)
    result = benchmark(reduce_trg, trg, 128)
    assert result.order


def bench_cache_simulation(benchmark, sjeng):
    _, _, _, lines = sjeng
    stats = benchmark(simulate, lines, PAPER_L1I)
    assert stats.accesses == lines.shape[0]


def bench_shared_cache_simulation(benchmark, sjeng):
    _, _, _, lines = sjeng
    peer = lines + (1 << 22)
    stats = benchmark(simulate_shared, [lines, peer], PAPER_L1I)
    assert stats[0].accesses >= lines.shape[0]


def bench_fetch_expansion(benchmark, sjeng):
    module, _, ref, _ = sjeng
    amap = baseline_layout(module).address_map
    lines = benchmark(fetch_lines, ref.bb_trace, amap, 64)
    assert lines.shape[0] > 0


def bench_footprint_curve(benchmark, sjeng):
    _, _, _, lines = sjeng
    curve = benchmark(footprint_curve, lines)
    assert curve.m > 0


def bench_reuse_distances(benchmark):
    rng = np.random.default_rng(0)
    trace = rng.integers(0, 512, 50_000)
    d = benchmark(reuse_distances, trace)
    assert d.shape == trace.shape
