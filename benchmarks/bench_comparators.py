"""Benchmark + regeneration harness for the extension comparison
(paper optimizers vs Pettis-Hansen / popularity / hot-cold splitting)."""

from conftest import run_and_print


def bench_comparators(benchmark, lab):
    result = run_and_print(benchmark, lab, "comparators")
    assert result.exp_id == "comparators"
    # the paper's BB affinity should at least match the trivial baselines
    # on average.
    assert result.summary["avg/bb-affinity"] >= result.summary["avg/bb-popularity"]
