"""Benchmarks for the four ablation studies (DESIGN.md A1-A4)."""

from conftest import run_and_print


def bench_trg_window(benchmark, lab):
    result = run_and_print(benchmark, lab, "ablation-trg-window")
    assert "factor_2.0" in result.summary


def bench_affinity_windows(benchmark, lab):
    result = run_and_print(benchmark, lab, "ablation-affinity-windows")
    assert result.rows


def bench_pruning(benchmark, lab):
    result = run_and_print(benchmark, lab, "ablation-pruning")
    # the paper's >90% keep-ratio claim at the top-10k budget.
    assert result.summary["k10000/keep_ratio"] > 0.9


def bench_optimal_gap(benchmark, lab):
    result = run_and_print(benchmark, lab, "ablation-optimal-gap")
    assert result.summary["optimal"] <= result.summary["worst"]


def bench_seed_robustness(benchmark, lab):
    result = run_and_print(benchmark, lab, "ablation-seeds")
    # affinity's worst seed must stay clearly positive (robustness).
    assert result.summary["bb-affinity/min"] > 0.0
