"""Benchmarks for the performance layer (repro.perf): memo cache and
cell fan-out overheads.

These quantify the machinery itself, not the experiments: a memo hit
must be far cheaper than the simulation it replaces, and the parallel
cell path must produce identical stats (timed here at jobs=1 so the
number reflects dispatch overhead, not core count).
"""

import numpy as np

from conftest import BENCH_SCALE

from repro.cache import PAPER_L1I, simulate
from repro.experiments import Lab
from repro.perf import SimMemo, memo_key

_RNG = np.random.default_rng(2014)
_LINES = _RNG.integers(0, 700, int(200_000 * max(BENCH_SCALE, 0.05)))


def bench_simulate_cold(benchmark):
    stats = benchmark(simulate, _LINES, PAPER_L1I)
    assert stats.accesses == len(_LINES)


def bench_memo_hit(benchmark):
    """Replaying a memoized cell; the headline saving of --memo-dir."""
    memo = SimMemo()
    cold = memo.simulate(_LINES, PAPER_L1I)
    hit = benchmark(memo.simulate, _LINES, PAPER_L1I)
    assert hit == cold
    assert memo.hits >= 1


def bench_memo_key(benchmark):
    """Key hashing is the fixed cost a memo miss adds to a simulation."""
    key = benchmark(memo_key, _LINES, PAPER_L1I)
    assert len(key) == 64


def bench_precompute_solo_serial(benchmark):
    """The dedup + batch path at jobs=1: overhead over lazy solo_miss."""
    cells = [
        (name, "baseline", channel)
        for name in ("syn-gcc", "syn-mcf", "syn-sjeng")
        for channel in ("hw", "sim")
    ]

    def run():
        lab = Lab(scale=min(BENCH_SCALE, 0.1))
        lab.precompute_solo(cells, jobs=1)
        return lab

    lab = benchmark.pedantic(run, rounds=1, iterations=1)
    reference = Lab(scale=min(BENCH_SCALE, 0.1))
    assert lab.solo_miss(*cells[0]) == reference.solo_miss(*cells[0])
