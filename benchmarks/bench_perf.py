"""Benchmarks for the performance layer (repro.perf): memo cache and
cell fan-out overheads.

These quantify the machinery itself, not the experiments: a memo hit
must be far cheaper than the simulation it replaces, and the parallel
cell path must produce identical stats (timed here at jobs=1 so the
number reflects dispatch overhead, not core count).
"""

import numpy as np

from conftest import BENCH_SCALE

from repro.cache import PAPER_L1I, CacheConfig, simulate, stack_distance_histogram
from repro.core import (
    AffinityAnalysis,
    affinity_coverage,
    build_trg,
    build_trg_fast,
    coverage_from_analysis,
)
from repro.experiments import Lab
from repro.perf import SimMemo, affinity_key, memo_key

_RNG = np.random.default_rng(2014)
_LINES = _RNG.integers(0, 700, int(200_000 * max(BENCH_SCALE, 0.05)))

#: the paper's L1I geometry family: 128 sets at every associativity.
_SWEEP_ASSOCS = (1, 2, 4, 8, 16)

#: a symbol trace for the locality-model analysis benchmarks (Zipf-ish
#: popularity, like real function traces).
_SYMS = np.sort(_RNG.integers(0, 200, int(40_000 * max(BENCH_SCALE, 0.05))) ** 2 // 200)
_SYMS = _RNG.permutation(_SYMS).astype(np.int64)
_W_MAX = 20
_TRG_WINDOW = 256


def bench_simulate_cold(benchmark):
    stats = benchmark(simulate, _LINES, PAPER_L1I)
    assert stats.accesses == len(_LINES)


def bench_memo_hit(benchmark):
    """Replaying a memoized cell; the headline saving of --memo-dir."""
    memo = SimMemo()
    cold = memo.simulate(_LINES, PAPER_L1I)
    hit = benchmark(memo.simulate, _LINES, PAPER_L1I)
    assert hit == cold
    assert memo.hits >= 1


def bench_memo_key(benchmark):
    """Key hashing is the fixed cost a memo miss adds to a simulation."""
    key = benchmark(memo_key, _LINES, PAPER_L1I)
    assert len(key) == 64


def bench_kernel_pass(benchmark):
    """One stack-distance pass (MTF): answers every associativity at once."""
    hist = benchmark(stack_distance_histogram, _LINES, PAPER_L1I.n_sets)
    assert hist.accesses == len(_LINES)
    assert hist.stats(PAPER_L1I.assoc) == simulate(_LINES, PAPER_L1I)


def bench_kernel_pass_bit(benchmark):
    """The Fenwick-tree reference construction (O(n log n), slower in
    CPython than MTF — kept to document the gap)."""
    hist = benchmark(stack_distance_histogram, _LINES, PAPER_L1I.n_sets, method="bit")
    assert hist == stack_distance_histogram(_LINES, PAPER_L1I.n_sets)


def bench_scalar_assoc_sweep(benchmark):
    """The path the kernel replaces: one scalar LRU run per associativity.

    Compare against ``bench_kernel_pass`` — the ratio is the sweep
    speedup that ``python -m repro.perf kernel-bench`` gates in CI.
    """

    def sweep():
        return {
            a: simulate(
                _LINES,
                CacheConfig(size_bytes=128 * a * 64, assoc=a, line_bytes=64),
            ).misses
            for a in _SWEEP_ASSOCS
        }

    scalar = benchmark(sweep)
    hist = stack_distance_histogram(_LINES, 128)
    assert scalar == {a: hist.misses(a) for a in _SWEEP_ASSOCS}


def bench_affinity_scalar(benchmark):
    """The path the affinity kernel replaces: the one-pass LRU-stack
    oracle over the full ``2..w_max`` sweep."""
    analysis = benchmark(AffinityAnalysis, _SYMS, _W_MAX)
    assert analysis.w_max == _W_MAX


def bench_affinity_kernel(benchmark):
    """Batched affinity kernel: same sweep, vectorized record/credit
    join.  Compare against ``bench_affinity_scalar`` — the ratio is the
    affinity half of ``python -m repro.perf analysis-bench``."""
    covg = benchmark(affinity_coverage, _SYMS, _W_MAX)
    assert covg == coverage_from_analysis(AffinityAnalysis(_SYMS, _W_MAX))


def bench_trg_scalar(benchmark):
    """Scalar TRG construction (per-access window walk)."""
    trg = benchmark(build_trg, _SYMS, window_blocks=_TRG_WINDOW)
    assert trg.weights


def bench_trg_kernel(benchmark):
    """Vectorized TRG construction; the other half of ``analysis-bench``."""
    trg = benchmark(build_trg_fast, _SYMS, window_blocks=_TRG_WINDOW)
    assert trg.weights == build_trg(_SYMS, window_blocks=_TRG_WINDOW).weights


def bench_analysis_memo_hit(benchmark):
    """Replaying a memoized affinity artifact; the saving --memo-dir
    brings to repeated layout builds."""
    memo = SimMemo()
    cold = memo.affinity_coverage(_SYMS, w_max=_W_MAX)
    hit = benchmark(memo.affinity_coverage, _SYMS, w_max=_W_MAX)
    assert hit == cold
    assert memo.has_analysis(affinity_key(_SYMS, w_max=_W_MAX))


def bench_precompute_solo_serial(benchmark):
    """The dedup + batch path at jobs=1: overhead over lazy solo_miss."""
    cells = [
        (name, "baseline", channel)
        for name in ("syn-gcc", "syn-mcf", "syn-sjeng")
        for channel in ("hw", "sim")
    ]

    def run():
        lab = Lab(scale=min(BENCH_SCALE, 0.1))
        lab.precompute_solo(cells, jobs=1)
        return lab

    lab = benchmark.pedantic(run, rounds=1, iterations=1)
    reference = Lab(scale=min(BENCH_SCALE, 0.1))
    assert lab.solo_miss(*cells[0]) == reference.solo_miss(*cells[0])
