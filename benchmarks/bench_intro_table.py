"""Benchmark + regeneration harness for the paper's intro-table artifact."""

from conftest import run_and_print


def bench_intro_table(benchmark, lab):
    result = run_and_print(benchmark, lab, "intro-table")
    assert result.exp_id == "intro-table"
