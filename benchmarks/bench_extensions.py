"""Benchmarks for the extension experiments (unified cache, model
validation)."""

from conftest import run_and_print


def bench_unified(benchmark, lab):
    result = run_and_print(benchmark, lab, "unified")
    assert result.exp_id == "unified"


def bench_model_validation(benchmark, lab):
    result = run_and_print(benchmark, lab, "model-validation")
    # the footprint model must track the simulator's co-run ordering.
    assert result.summary["corun_correlation"] > 0.5


def bench_smt_width(benchmark, lab):
    result = run_and_print(benchmark, lab, "smt-width")
    # contention grows with SMT width.
    assert result.summary["w8/none"] > result.summary["w2/none"]


def bench_cache_sweep(benchmark, lab):
    result = run_and_print(benchmark, lab, "cache-sweep")
    s = result.summary
    # bigger caches melt the solo baseline miss ratio...
    assert s["128kb/syn-gcc/solo_base"] < s["16kb/syn-gcc/solo_base"]
    # ...but co-run pressure persists at least one doubling longer.
    assert s["64kb/syn-gcc/corun_base"] > s["64kb/syn-gcc/solo_base"]


def bench_scheduling(benchmark, lab):
    result = run_and_print(benchmark, lab, "scheduling")
    s = result.summary
    assert s["base_best_cost"] <= s["base_greedy_cost"] <= s["base_worst_cost"]
    # layout optimization composes with scheduling.
    assert s["opt_best_cost"] <= s["base_best_cost"]
