"""Benchmark + regeneration harness for the paper's fig4 artifact."""

from conftest import run_and_print


def bench_fig4(benchmark, lab):
    result = run_and_print(benchmark, lab, "fig4")
    assert result.exp_id == "fig4"
