"""Benchmark + regeneration harness for the paper's optopt artifact."""

from conftest import run_and_print


def bench_optopt(benchmark, lab):
    result = run_and_print(benchmark, lab, "optopt")
    assert result.exp_id == "optopt"
