"""Benchmark + regeneration harness for the paper's fig6 artifact."""

from conftest import run_and_print


def bench_fig6(benchmark, lab):
    result = run_and_print(benchmark, lab, "fig6")
    assert result.exp_id == "fig6"
