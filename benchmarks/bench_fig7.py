"""Benchmark + regeneration harness for the paper's fig7 artifact."""

from conftest import run_and_print


def bench_fig7(benchmark, lab):
    result = run_and_print(benchmark, lab, "fig7")
    assert result.exp_id == "fig7"
