"""Benchmark + regeneration harness for the paper's fig5 artifact."""

from conftest import run_and_print


def bench_fig5(benchmark, lab):
    result = run_and_print(benchmark, lab, "fig5")
    assert result.exp_id == "fig5"
