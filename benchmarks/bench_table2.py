"""Benchmark + regeneration harness for the paper's table2 artifact."""

from conftest import run_and_print


def bench_table2(benchmark, lab):
    result = run_and_print(benchmark, lab, "table2")
    assert result.exp_id == "table2"
