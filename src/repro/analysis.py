"""Layout quality analysis: *why* a layout wins, not just whether.

The experiments report miss ratios; this module explains them through two
static-plus-profile lenses:

* **line utilization** — of the bytes in the cache lines a layout's hot
  path touches, what fraction is actually hot code?  Cold bytes sharing a
  line with hot bytes inflate the instruction footprint (the paper's FP
  terms) without doing work; packing hot blocks together is exactly an
  utilization optimization.
* **set balance** — how evenly the hot lines spread over the cache sets.
  A scrambled layout can pile 10 hot lines onto a 4-way set while leaving
  others idle; conflict misses follow.  We report the normalized imbalance
  (coefficient of variation) and the fraction of hot lines above the
  associativity in their set.

Both metrics take a layout, a profile, and a hotness threshold — no
simulation involved, so they are cheap enough to print alongside every
experiment and to drive tests (an optimizer that claims to help should
improve at least one of them).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .cache.config import CacheConfig
from .engine.instrument import TraceBundle
from .ir.codegen import AddressMap
from .ir.module import Module

__all__ = ["LayoutQuality", "analyze_layout", "hot_blocks"]


@dataclass(frozen=True)
class LayoutQuality:
    """Static quality metrics of one layout under one profile."""

    #: number of hot blocks considered.
    n_hot_blocks: int
    #: distinct cache lines the hot blocks touch.
    n_hot_lines: int
    #: hot bytes divided by the bytes of all touched lines (0..1].
    line_utilization: float
    #: coefficient of variation of hot lines per cache set (0 = perfectly
    #: even).
    set_imbalance: float
    #: fraction of hot lines that exceed their set's associativity
    #: (guaranteed conflict victims if all hot lines are live together).
    overcommitted_fraction: float

    def better_than(self, other: "LayoutQuality") -> bool:
        """Strictly better on utilization and not worse on conflicts."""
        return (
            self.line_utilization > other.line_utilization
            and self.overcommitted_fraction <= other.overcommitted_fraction
        )


def hot_blocks(
    module: Module, bundle: TraceBundle, hot_fraction: float = 0.0005
) -> list[int]:
    """gids of blocks covering at least ``hot_fraction`` of executions."""
    counts = np.bincount(bundle.bb_trace, minlength=module.n_blocks)
    threshold = max(1, int(np.ceil(hot_fraction * counts.sum())))
    return [int(g) for g in np.flatnonzero(counts >= threshold)]


def analyze_layout(
    module: Module,
    bundle: TraceBundle,
    amap: AddressMap,
    cache: CacheConfig,
    hot_fraction: float = 0.0005,
) -> LayoutQuality:
    """Compute :class:`LayoutQuality` for ``amap`` under the profile."""
    hot = hot_blocks(module, bundle, hot_fraction)
    if not hot:
        return LayoutQuality(0, 0, 1.0, 0.0, 0.0)

    line_bytes = cache.line_bytes
    hot_bytes = 0
    touched: set[int] = set()
    for gid in hot:
        start, end = amap.span(gid)
        hot_bytes += end - start
        touched.update(range(start // line_bytes, (end - 1) // line_bytes + 1))

    n_lines = len(touched)
    utilization = hot_bytes / (n_lines * line_bytes)

    per_set = np.zeros(cache.n_sets, dtype=np.int64)
    for line in touched:
        per_set[line & (cache.n_sets - 1)] += 1
    mean = per_set.mean()
    imbalance = float(per_set.std() / mean) if mean > 0 else 0.0
    over = int(np.maximum(per_set - cache.assoc, 0).sum())

    return LayoutQuality(
        n_hot_blocks=len(hot),
        n_hot_lines=n_lines,
        line_utilization=float(min(1.0, utilization)),
        set_imbalance=imbalance,
        overcommitted_fraction=over / n_lines if n_lines else 0.0,
    )
