"""Higher-order theory of locality: footprint -> miss ratio, and
composition in shared cache (Xiang et al., ASPLOS'13; paper Sec. II-A).

The key conversions:

* **fill time** — the window length ``w_c`` at which the average footprint
  reaches the cache capacity ``c``;
* **miss ratio** — the footprint growth rate at the fill time,
  ``mr(c) = fp(w_c + 1) - fp(w_c)``: each additional time step brings that
  many *new* lines into the window, and each new line is a miss;
* **shared-cache composition** — when programs co-run, their footprints
  add (the paper's Eq. 1/2): the shared fill time ``w*`` is the smallest
  window where ``sum_i fp_i(w) >= C``, and each program's co-run miss ratio
  is its own growth rate at ``w*``.

These model-level predictions complement the event-driven simulator in
:mod:`repro.cache`; experiments use the simulator for results and the model
for the formal defensiveness/politeness accounting.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .footprint import FootprintCurve

__all__ = [
    "compose_curves",
    "miss_ratio",
    "miss_ratio_curve",
    "shared_fill_time",
    "shared_fill_time_scalar",
    "shared_miss_ratios",
    "shared_miss_ratios_scalar",
]


def _validate_capacity(capacity: float) -> None:
    """Shared-composition capacity guard: positive and finite.

    NaN compares False against every bound, so without the explicit
    finiteness check it would slip through ``capacity > total_m`` into
    the search and silently answer "no contention".
    """
    if not np.isfinite(capacity):
        raise ValueError(f"capacity must be finite, got {capacity!r}")
    if capacity <= 0:
        raise ValueError("capacity must be positive")


def miss_ratio(curve: FootprintCurve, capacity: float) -> float:
    """Predicted miss ratio of a solo run in a cache of ``capacity`` lines."""
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    w = curve.fill_time(capacity)
    if w > curve.n:
        return 0.0  # whole program fits; only cold misses, amortized to ~0
    return curve.growth(w)


def miss_ratio_curve(curve: FootprintCurve, capacities: Sequence[float]) -> np.ndarray:
    """Vectorized :func:`miss_ratio` over several capacities."""
    return np.array([miss_ratio(curve, c) for c in capacities])


def compose_curves(curves: Sequence[FootprintCurve]) -> FootprintCurve:
    """Aligned sum of co-runners' footprint curves, as one curve.

    Curves from different traces have different lengths; past its own
    ``n`` a finished program holds its whole footprint, so the shorter
    curve clamps at ``m`` (exactly what ``c(w)``'s clamp to ``[0, n]``
    yields probe by probe).  The sum is accumulated curve by curve, in
    sequence order — the same float additions, in the same order, as
    ``sum(float(c(w)) for c in curves)`` at every ``w`` — so every probe
    of the composed curve is **bit-identical** to the scalar per-probe
    sum the oracles compute.

    The composed curve's ``fill_time`` is the shared fill time of the
    group and its ``m`` the combined total footprint; per-program growth
    rates still come from the member curves.
    """
    if not curves:
        raise ValueError("need at least one footprint curve")
    max_n = max(c.n for c in curves)
    fp = np.zeros(max_n + 1, dtype=np.float64)
    for c in curves:
        fp[: c.n + 1] += c.fp
        if c.n < max_n:
            fp[c.n + 1 :] += float(c.m)
    return FootprintCurve(fp=fp, n=max_n, m=sum(c.m for c in curves))


def shared_fill_time(curves: Sequence[FootprintCurve], capacity: float) -> int:
    """Smallest window where the co-run programs' footprints sum to ``capacity``.

    All programs are assumed to progress at the same rate (symmetric SMT
    fetch), matching the paper's formulation.  Returns ``max_n + 1`` when
    the combined footprint never reaches capacity (no contention).

    The capacity boundary follows :meth:`FootprintCurve.fill_time`: a
    capacity within 1e-9 (relative or absolute) of the combined total
    footprint ``sum_i m_i`` is snapped to it, so float drift in the sum
    cannot flip the answer between a valid window and ``max_n + 1``.

    Implementation: the aligned summed curve is built once
    (:func:`compose_curves`) and answered by one ``searchsorted`` —
    :func:`shared_fill_time_scalar` re-summed all *k* curves inside
    every probe of its binary search, O(k log n) Python-level work per
    call.  Results are bit-identical (the parity suite pins it).
    """
    if not curves:
        raise ValueError("need at least one footprint curve")
    _validate_capacity(capacity)
    return compose_curves(curves).fill_time(capacity)


def shared_fill_time_scalar(
    curves: Sequence[FootprintCurve], capacity: float
) -> int:
    """Scalar oracle for :func:`shared_fill_time`: per-probe binary search.

    Re-evaluates ``sum(float(c(mid)) for c in curves)`` at every probe.
    Kept in-tree as the parity reference for the composed/vectorized
    paths (:func:`compose_curves`, :mod:`repro.fleet.compose`); not for
    production use.
    """
    if not curves:
        raise ValueError("need at least one footprint curve")
    _validate_capacity(capacity)
    max_n = max(c.n for c in curves)
    total_m = sum(c.m for c in curves)
    if capacity > total_m:
        if not np.isclose(capacity, total_m, rtol=1e-9, atol=1e-9):
            return max_n + 1
        capacity = float(total_m)
    lo, hi = 0, max_n
    while lo < hi:
        mid = (lo + hi) // 2
        if sum(float(c(mid)) for c in curves) >= capacity:
            hi = mid
        else:
            lo = mid + 1
    return lo


def shared_miss_ratios(curves: Sequence[FootprintCurve], capacity: float) -> list[float]:
    """Per-program co-run miss ratios under shared-cache composition.

    Implements the paper's Eq. 1/2: program *i* misses when
    ``fp_i + sum_{j != i} fp_j >= C``; at the shared fill time each
    program's miss ratio is its own footprint growth rate.
    """
    w = shared_fill_time(curves, capacity)
    return [0.0 if w > c.n else c.growth(w) for c in curves]


def shared_miss_ratios_scalar(
    curves: Sequence[FootprintCurve], capacity: float
) -> list[float]:
    """Scalar oracle for :func:`shared_miss_ratios` (see
    :func:`shared_fill_time_scalar`)."""
    w = shared_fill_time_scalar(curves, capacity)
    return [0.0 if w > c.n else c.growth(w) for c in curves]
