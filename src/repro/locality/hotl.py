"""Higher-order theory of locality: footprint -> miss ratio, and
composition in shared cache (Xiang et al., ASPLOS'13; paper Sec. II-A).

The key conversions:

* **fill time** — the window length ``w_c`` at which the average footprint
  reaches the cache capacity ``c``;
* **miss ratio** — the footprint growth rate at the fill time,
  ``mr(c) = fp(w_c + 1) - fp(w_c)``: each additional time step brings that
  many *new* lines into the window, and each new line is a miss;
* **shared-cache composition** — when programs co-run, their footprints
  add (the paper's Eq. 1/2): the shared fill time ``w*`` is the smallest
  window where ``sum_i fp_i(w) >= C``, and each program's co-run miss ratio
  is its own growth rate at ``w*``.

These model-level predictions complement the event-driven simulator in
:mod:`repro.cache`; experiments use the simulator for results and the model
for the formal defensiveness/politeness accounting.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .footprint import FootprintCurve

__all__ = [
    "miss_ratio",
    "miss_ratio_curve",
    "shared_fill_time",
    "shared_miss_ratios",
]


def miss_ratio(curve: FootprintCurve, capacity: float) -> float:
    """Predicted miss ratio of a solo run in a cache of ``capacity`` lines."""
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    w = curve.fill_time(capacity)
    if w > curve.n:
        return 0.0  # whole program fits; only cold misses, amortized to ~0
    return curve.growth(w)


def miss_ratio_curve(curve: FootprintCurve, capacities: Sequence[float]) -> np.ndarray:
    """Vectorized :func:`miss_ratio` over several capacities."""
    return np.array([miss_ratio(curve, c) for c in capacities])


def shared_fill_time(curves: Sequence[FootprintCurve], capacity: float) -> int:
    """Smallest window where the co-run programs' footprints sum to ``capacity``.

    All programs are assumed to progress at the same rate (symmetric SMT
    fetch), matching the paper's formulation.  Returns ``max_n + 1`` when
    the combined footprint never reaches capacity (no contention).

    The capacity boundary follows :meth:`FootprintCurve.fill_time`: a
    capacity within 1e-9 (relative or absolute) of the combined total
    footprint ``sum_i m_i`` is snapped to it, so float drift in the sum
    cannot flip the answer between a valid window and ``max_n + 1``.
    """
    if not curves:
        raise ValueError("need at least one footprint curve")
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    max_n = max(c.n for c in curves)
    total_m = sum(c.m for c in curves)
    if capacity > total_m:
        if not np.isclose(capacity, total_m, rtol=1e-9, atol=1e-9):
            return max_n + 1
        capacity = float(total_m)
    lo, hi = 0, max_n
    while lo < hi:
        mid = (lo + hi) // 2
        if sum(float(c(mid)) for c in curves) >= capacity:
            hi = mid
        else:
            lo = mid + 1
    return lo


def shared_miss_ratios(curves: Sequence[FootprintCurve], capacity: float) -> list[float]:
    """Per-program co-run miss ratios under shared-cache composition.

    Implements the paper's Eq. 1/2: program *i* misses when
    ``fp_i + sum_{j != i} fp_j >= C``; at the shared fill time each
    program's miss ratio is its own footprint growth rate.
    """
    w = shared_fill_time(curves, capacity)
    return [0.0 if w > c.n else c.growth(w) for c in curves]
