"""Reuse distance (LRU stack distance) measurement.

Reuse distance — the number of distinct symbols accessed between two
consecutive accesses to the same symbol, inclusive — is the classic locality
metric the paper's Sec. II-A starts from:

    ``P(self.miss) = P(self.RD + peer.FP >= C)``

The naive stack simulation costs O(N·M); this module implements the standard
O(N log N) algorithm using a Fenwick tree over trace positions: each symbol
keeps a mark at its most recent position, and the distance of an access is
the number of marks after the previous access of the same symbol.

For a fully-associative LRU cache of capacity ``c``, an access misses iff
its reuse distance exceeds ``c`` (cold accesses always miss) — the basis of
:func:`miss_ratio_curve`.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "COLD",
    "reuse_distances",
    "reuse_distances_naive",
    "distance_histogram",
    "miss_ratio_curve",
]

#: Sentinel distance for cold (first-time) accesses.
COLD = -1


class _Fenwick:
    """Fenwick (binary indexed) tree over 1..n with +/- point updates."""

    __slots__ = ("n", "tree")

    def __init__(self, n: int):
        self.n = n
        self.tree = [0] * (n + 1)

    def add(self, i: int, delta: int) -> None:
        tree = self.tree
        n = self.n
        while i <= n:
            tree[i] += delta
            i += i & (-i)

    def prefix(self, i: int) -> int:
        tree = self.tree
        s = 0
        while i > 0:
            s += tree[i]
            i -= i & (-i)
        return s


def reuse_distances(trace: np.ndarray) -> np.ndarray:
    """Per-access LRU stack distances; :data:`COLD` for first accesses.

    The distance counts distinct symbols accessed in the closed interval
    from the previous access of the symbol to the current access, *including
    the symbol itself* — i.e. the LRU stack depth at which the access hits.
    The minimum distance of a warm access is therefore 1 (immediate repeat).
    """
    n = int(trace.shape[0])
    out = np.empty(n, dtype=np.int64)
    if n == 0:
        return out
    fen = _Fenwick(n)
    last: dict[int, int] = {}
    add = fen.add
    prefix = fen.prefix
    for t in range(1, n + 1):
        x = int(trace[t - 1])
        p = last.get(x)
        if p is None:
            out[t - 1] = COLD
        else:
            # Marks strictly after p are symbols whose latest access lies in
            # (p, t); adding 1 counts x itself.
            out[t - 1] = prefix(t - 1) - prefix(p) + 1
            add(p, -1)
        add(t, 1)
        last[x] = t
    return out


def reuse_distances_naive(trace: np.ndarray) -> np.ndarray:
    """O(N·M) reference implementation (tests only)."""
    n = int(trace.shape[0])
    out = np.empty(n, dtype=np.int64)
    stack: list[int] = []  # MRU last
    for i in range(n):
        x = int(trace[i])
        try:
            pos = len(stack) - 1 - stack[::-1].index(x)
        except ValueError:
            out[i] = COLD
            stack.append(x)
            continue
        out[i] = len(stack) - pos
        del stack[pos]
        stack.append(x)
    return out


def distance_histogram(distances: np.ndarray) -> tuple[np.ndarray, int]:
    """(histogram over distances >= 1, number of cold accesses).

    ``hist[d]`` counts accesses with distance exactly ``d``; ``hist[0]`` is
    unused and zero.
    """
    cold = int(np.count_nonzero(distances == COLD))
    warm = distances[distances != COLD]
    if warm.shape[0] == 0:
        return np.zeros(1, dtype=np.int64), cold
    hist = np.bincount(warm)
    return hist, cold


def miss_ratio_curve(distances: np.ndarray, capacities: np.ndarray) -> np.ndarray:
    """Fully-associative LRU miss ratio at each capacity.

    An access misses at capacity ``c`` iff it is cold or its distance
    exceeds ``c``.
    """
    n = int(distances.shape[0])
    if n == 0:
        return np.zeros(len(capacities))
    hist, cold = distance_histogram(distances)
    cum = np.cumsum(hist)  # cum[d] = warm accesses with distance <= d
    total_warm = int(cum[-1])
    caps = np.asarray(capacities, dtype=np.int64)
    hits = np.where(caps >= hist.shape[0] - 1, total_warm, cum[np.minimum(caps, hist.shape[0] - 1)])
    return (n - hits) / n
