"""Window-footprint *distributions* — the probabilistic reading of Eq. 1/2.

The paper's shared-cache equations are probabilities over time windows:

    ``P(self.miss) = P(self.FP + peer.FP >= C)``

:mod:`repro.locality.footprint` works with the *average* footprint (the
HOTL simplification); this module computes, for a chosen window length w,
the exact **distribution** of the footprint over all n-w+1 windows — and
evaluates the miss probability the way the equation states it: as the
probability that the sum of two independent window-footprint draws reaches
the capacity.

For one window length the sliding-window distinct count is O(n); the
probabilistic composition is a convolution of the two programs' footprint
histograms.  Independence between the co-runners' window positions is the
modeling assumption (they are unsynchronized programs), which is exactly
how the footprint theory treats peers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "WindowFootprintDistribution",
    "window_footprint_distribution",
    "prob_sum_exceeds",
    "miss_probability",
]


@dataclass(frozen=True)
class WindowFootprintDistribution:
    """Distribution of the distinct-count over all windows of one length.

    ``pmf[k]`` is the fraction of windows containing exactly ``k`` distinct
    symbols; ``window`` is the window length; ``n_windows`` the population.
    """

    window: int
    pmf: np.ndarray
    n_windows: int

    @property
    def mean(self) -> float:
        return float((np.arange(self.pmf.shape[0]) * self.pmf).sum())

    @property
    def max_footprint(self) -> int:
        nz = np.flatnonzero(self.pmf)
        return int(nz[-1]) if nz.shape[0] else 0

    def prob_at_least(self, c: float) -> float:
        """P(FP >= c) for one window draw."""
        k = int(np.ceil(c))
        if k >= self.pmf.shape[0]:
            return 0.0
        return float(self.pmf[max(k, 0):].sum())


def window_footprint_distribution(
    trace: np.ndarray, window: int
) -> WindowFootprintDistribution:
    """Exact sliding-window distinct-count distribution in O(n)."""
    n = int(trace.shape[0])
    if not 1 <= window <= n:
        raise ValueError(f"window must be in [1, {n}]")
    counts: dict[int, int] = {}
    distinct = 0
    hist: dict[int, int] = {}
    data = trace.tolist()
    for i, x in enumerate(data):
        c = counts.get(x, 0)
        if c == 0:
            distinct += 1
        counts[x] = c + 1
        if i >= window:
            y = data[i - window]
            counts[y] -= 1
            if counts[y] == 0:
                distinct -= 1
        if i >= window - 1:
            hist[distinct] = hist.get(distinct, 0) + 1
    n_windows = n - window + 1
    pmf = np.zeros(max(hist) + 1 if hist else 1, dtype=np.float64)
    for k, cnt in hist.items():
        pmf[k] = cnt / n_windows
    return WindowFootprintDistribution(window=window, pmf=pmf, n_windows=n_windows)


def prob_sum_exceeds(
    a: WindowFootprintDistribution, b: WindowFootprintDistribution, c: float
) -> float:
    """``P(FP_a + FP_b >= c)`` for independent window draws.

    The distributions may come from different window lengths (e.g. scaled
    by the programs' relative speeds); the convolution does not care.
    """
    conv = np.convolve(a.pmf, b.pmf)
    k = int(np.ceil(c))
    if k >= conv.shape[0]:
        return 0.0
    return float(conv[max(k, 0):].sum())


def miss_probability(
    self_trace: np.ndarray,
    peer_trace: np.ndarray,
    capacity: float,
    window: int,
) -> float:
    """Eq. 2 evaluated literally: P(self.FP + peer.FP >= C) at one window.

    ``window`` is the reuse-time scale of interest (HOTL uses the fill
    time; callers may sweep it).  Both traces are measured at the same
    window length — the symmetric-progress assumption.
    """
    a = window_footprint_distribution(self_trace, min(window, self_trace.shape[0]))
    b = window_footprint_distribution(peer_trace, min(window, peer_trace.shape[0]))
    return prob_sum_exceeds(a, b, capacity)
