"""All-window average footprint (Xiang et al.; paper Sec. II-A).

The *footprint* ``fp(w)`` is the average number of distinct symbols observed
in a time window of length ``w``, averaged over **all** ``n - w + 1``
windows of the trace.  The paper's defensiveness/politeness equations are
stated in terms of footprints:

    ``P(self.miss) = P(self.FP + peer.FP >= C)``                 (Eq. 1)
    ``P(self.icache.miss) = P(self.FP.inst + peer.FP.inst >= C')``  (Eq. 2)

Computing all-window footprints naively is O(n²); the closed form used here
(derivable by counting, per symbol, the windows that *miss* it) is O(n):

    fp(w) = m - (1/(n-w+1)) * sum_over_gaps max(g - w + 1, 0)

where the gaps of a symbol with access times ``t_1 < ... < t_k`` are the
runs it is absent from: ``t_1 - 1`` (front), ``t_{j+1} - t_j - 1`` (between
accesses), and ``n - t_k`` (back).  Grouping gaps into a histogram turns the
whole curve into two suffix sums.

The brute-force sliding-window implementation is retained as the test
oracle for the property-based suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FootprintCurve", "footprint_curve", "footprint_brute", "average_footprint"]


@dataclass
class FootprintCurve:
    """The all-window average footprint of one trace.

    ``fp[w]`` is the average footprint of windows of length ``w`` for
    ``w = 0 .. n`` (``fp[0] = 0``, ``fp[n] = m``).  The curve is
    monotonically non-decreasing (verified by the test suite) and concave
    *in practice* — exact concavity holds only under a condition on the
    reuse-time distribution (Xiang et al.), so the higher-order theory
    conversion in :mod:`repro.locality.hotl` relies on monotonicity alone.
    """

    fp: np.ndarray
    n: int
    m: int

    def __call__(self, w: int | np.ndarray) -> float | np.ndarray:
        """Footprint at window length ``w`` (clamped to ``[0, n]``).

        Any scalar input — Python ``int``, a NumPy integer scalar, or a
        0-d ndarray — yields a Python ``float``; array inputs yield an
        ndarray.  ``np.ndim(w) == 0`` is the discriminator: unlike
        ``np.isscalar`` (False for 0-d arrays, and version-dependent
        for NumPy scalar types) it treats every scalar kind alike.
        """
        w_clamped = np.clip(w, 0, self.n)
        result = self.fp[w_clamped]
        return float(result) if np.ndim(w) == 0 else result

    def fill_time(self, c: float) -> int:
        """Smallest window length whose footprint reaches ``c``.

        Returns ``n + 1`` when the program's total footprint never reaches
        ``c`` (the program fits in the cache with room to spare).

        Boundary: ``fp[n] == m`` exactly, but callers often hold ``c``
        as a float that drifted a hair above ``m`` (unit conversions,
        summed curves).  A capacity within relative/absolute 1e-9 of
        ``m`` is snapped to ``m``, so ``fill_time(m + 1e-9) ==
        fill_time(float(m))`` — without the snap the strict ``c > m``
        comparison would flip the answer from a valid window to
        ``n + 1``.  Capacities meaningfully above ``m`` (beyond the
        tolerance) still return ``n + 1``.

        Non-finite capacities raise ``ValueError``: NaN compares False
        against every bound, so it used to slide past the ``c > m``
        guard into ``np.searchsorted`` and silently answer ``n + 1`` —
        a poisoned input must fail loudly, not look like "fits in
        cache".  A capacity ``c <= 0`` returns 0 (a zero-length window
        already holds zero footprint); :func:`repro.locality.hotl.miss_ratio`
        rejects such capacities before ever asking for a fill time.
        """
        if not np.isfinite(c):
            raise ValueError(f"capacity must be finite, got {c!r}")
        if c > self.m:
            if not np.isclose(c, self.m, rtol=1e-9, atol=1e-9):
                return self.n + 1
            c = float(self.m)
        return int(np.searchsorted(self.fp, c, side="left"))

    def growth(self, w: int) -> float:
        """Discrete footprint growth rate fp(w+1) - fp(w) at ``w``."""
        if w >= self.n:
            return 0.0
        w = max(w, 0)
        return float(self.fp[w + 1] - self.fp[w])

    def to_dict(self) -> dict:
        """JSON-ready payload (memo entries, worker transport).

        ``json`` round-trips Python floats through ``repr`` (shortest
        exact form), so a reloaded curve is bit-identical to the
        original — the composition parity gates rely on that.
        """
        return {"fp": [float(x) for x in self.fp], "n": int(self.n), "m": int(self.m)}

    @classmethod
    def from_dict(cls, raw: dict) -> "FootprintCurve":
        """Rebuild a curve from :meth:`to_dict`; malformed payloads raise
        ``ValueError`` so caches degrade to recomputation."""
        fp = np.asarray(raw["fp"], dtype=np.float64)
        n = int(raw["n"])
        m = int(raw["m"])
        if fp.ndim != 1 or fp.shape[0] != n + 1:
            raise ValueError(f"curve payload has {fp.shape} samples for n={n}")
        return cls(fp=fp, n=n, m=m)


def footprint_curve(trace: np.ndarray) -> FootprintCurve:
    """Compute the full all-window footprint curve in O(n)."""
    n = int(trace.shape[0])
    if n == 0:
        return FootprintCurve(fp=np.zeros(1), n=0, m=0)

    # Per-symbol access positions via a stable sort by symbol.
    order = np.argsort(trace, kind="stable")
    sorted_symbols = trace[order]
    positions = order.astype(np.int64) + 1  # 1-based times, ascending per symbol

    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    np.not_equal(sorted_symbols[1:], sorted_symbols[:-1], out=boundary[1:])
    m = int(boundary.sum())

    # Gap lengths: front gaps (t_1 - 1), internal gaps (t_{j+1} - t_j - 1),
    # back gaps (n - t_k).  A gap of length g removes max(g - w + 1, 0)
    # windows; collect all gaps in one histogram.
    firsts = positions[boundary]
    last_mask = np.roll(boundary, -1)
    last_mask[-1] = True
    lasts = positions[last_mask]

    internal = positions[1:][~boundary[1:]] - positions[:-1][~boundary[1:]] - 1
    gaps = np.concatenate([firsts - 1, lasts * -1 + n, internal])
    gaps = gaps[gaps > 0]

    # S(w) = sum over gaps of max(g - w + 1, 0), for w = 1..n.
    # With histogram h[g]: S(w) = sum_{g >= w} h[g] * (g - w + 1)
    #                          = (sum_{g>=w} g*h[g]) - (w-1) * (sum_{g>=w} h[g]).
    fp = np.empty(n + 1, dtype=np.float64)
    fp[0] = 0.0
    if gaps.shape[0] == 0:
        fp[1:] = m
    else:
        h = np.bincount(gaps, minlength=n + 2).astype(np.float64)
        cnt_ge = np.cumsum(h[::-1])[::-1]  # cnt_ge[g] = number of gaps >= g
        sum_ge = np.cumsum((h * np.arange(h.shape[0]))[::-1])[::-1]
        w = np.arange(1, n + 1)
        s = sum_ge[w] - (w - 1) * cnt_ge[w]
        fp[1:] = m - s / (n - w + 1)

    return FootprintCurve(fp=fp, n=n, m=m)


def footprint_brute(trace: np.ndarray, w: int) -> float:
    """O(n) sliding-window oracle for the average footprint at one ``w``."""
    n = int(trace.shape[0])
    if not 1 <= w <= n:
        raise ValueError(f"w must be in [1, {n}]")
    counts: dict[int, int] = {}
    distinct = 0
    total = 0
    for i in range(n):
        x = int(trace[i])
        c = counts.get(x, 0)
        if c == 0:
            distinct += 1
        counts[x] = c + 1
        if i >= w:
            y = int(trace[i - w])
            counts[y] -= 1
            if counts[y] == 0:
                distinct -= 1
        if i >= w - 1:
            total += distinct
    return total / (n - w + 1)


def average_footprint(trace: np.ndarray, w: int) -> float:
    """Average footprint at a single window length (uses the O(n) curve)."""
    return float(footprint_curve(trace)(w))
