"""Formal defensiveness and politeness model (paper Sec. II-A).

The paper's first contribution is a *formal definition* of the two shared
cache optimization goals, classified through the footprint equations:

1. **Locality** — fewer self misses in solo run:
   ``P(self.miss) = P(self.FP >= C)``;
2. **Defensiveness** — fewer self misses in *co-run*:
   ``P(self.miss) = P(self.FP + peer.FP >= C)`` — an optimization is
   defensive if it lowers this even when the solo term did not change;
3. **Politeness** — fewer *peer* misses in co-run: the peer's miss
   probability evaluated with our footprint as the interference term.

:func:`classify_benefits` takes the footprint curves of a program before
and after an optimization, plus a peer's curve, and returns the three
benefit components.  This is the model channel; the simulation channel
(:mod:`repro.core.goals`) computes the same three numbers from event-driven
cache simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from .footprint import FootprintCurve
from .hotl import miss_ratio, shared_miss_ratios

__all__ = ["BenefitReport", "classify_benefits", "corun_miss_ratios"]


@dataclass
class BenefitReport:
    """Three-way classification of an optimization's shared-cache benefits.

    All values are miss-ratio *deltas* (baseline minus optimized); positive
    means the optimization helps.
    """

    #: self solo-run miss-ratio reduction (conventional locality benefit).
    locality: float
    #: self co-run miss-ratio reduction (defensiveness).
    defensiveness: float
    #: peer co-run miss-ratio reduction caused by our new layout (politeness).
    politeness: float

    #: absolute miss ratios backing the deltas, for reporting.
    self_solo_before: float = 0.0
    self_solo_after: float = 0.0
    self_corun_before: float = 0.0
    self_corun_after: float = 0.0
    peer_corun_before: float = 0.0
    peer_corun_after: float = 0.0


def corun_miss_ratios(
    self_curve: FootprintCurve, peer_curve: FootprintCurve, capacity: float
) -> tuple[float, float]:
    """(self, peer) co-run miss ratios under footprint composition."""
    ratios = shared_miss_ratios([self_curve, peer_curve], capacity)
    return ratios[0], ratios[1]


def classify_benefits(
    before: FootprintCurve,
    after: FootprintCurve,
    peer: FootprintCurve,
    capacity: float,
) -> BenefitReport:
    """Classify the benefits of replacing layout ``before`` with ``after``.

    ``before``/``after`` are the program's instruction-footprint curves at
    cache-line granularity under the two layouts; ``peer`` is the co-runner
    (unchanged).  ``capacity`` is the shared cache capacity in lines.
    """
    solo_b = miss_ratio(before, capacity)
    solo_a = miss_ratio(after, capacity)
    self_b, peer_b = corun_miss_ratios(before, peer, capacity)
    self_a, peer_a = corun_miss_ratios(after, peer, capacity)
    return BenefitReport(
        locality=solo_b - solo_a,
        defensiveness=self_b - self_a,
        politeness=peer_b - peer_a,
        self_solo_before=solo_b,
        self_solo_after=solo_a,
        self_corun_before=self_b,
        self_corun_after=self_a,
        peer_corun_before=peer_b,
        peer_corun_after=peer_a,
    )
