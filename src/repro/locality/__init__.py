"""Locality theory: reuse distance, all-window footprint, HOTL conversion,
and the formal defensiveness/politeness miss model."""

from .footprint import FootprintCurve, average_footprint, footprint_brute, footprint_curve
from .hotl import (
    compose_curves,
    miss_ratio,
    miss_ratio_curve,
    shared_fill_time,
    shared_fill_time_scalar,
    shared_miss_ratios,
    shared_miss_ratios_scalar,
)
from .missmodel import BenefitReport, classify_benefits, corun_miss_ratios
from .windowstats import (
    WindowFootprintDistribution,
    miss_probability,
    prob_sum_exceeds,
    window_footprint_distribution,
)
from .reuse import (
    COLD,
    distance_histogram,
    miss_ratio_curve as lru_miss_ratio_curve,
    reuse_distances,
    reuse_distances_naive,
)

__all__ = [
    "COLD",
    "BenefitReport",
    "FootprintCurve",
    "average_footprint",
    "classify_benefits",
    "compose_curves",
    "corun_miss_ratios",
    "distance_histogram",
    "footprint_brute",
    "footprint_curve",
    "lru_miss_ratio_curve",
    "miss_ratio",
    "miss_ratio_curve",
    "reuse_distances",
    "reuse_distances_naive",
    "shared_fill_time",
    "shared_fill_time_scalar",
    "shared_miss_ratios",
    "shared_miss_ratios_scalar",
    "WindowFootprintDistribution",
    "miss_probability",
    "prob_sum_exceeds",
    "window_footprint_distribution",
]
