"""Extension experiment X7: fleet-scale co-run scheduling.

The paper's composition model (Eq. 1/2) predicts co-run misses for any
group, not just pairs.  This driver exercises it at datacenter posture:
replicate the full workload suite into a fleet of instances, bin-pack
them onto sockets under layout-oblivious (round-robin, random) and
layout-aware (worst-fit on footprint pressure, politeness/
defensiveness-score-aware) policies, and compare total predicted misses
and makespan — every number derived from one footprint curve per model
through the vectorized composition matrix (:mod:`repro.fleet`).

A small exact cross-check rides along: on the eight study programs the
scheduler's exhaustive matcher (:func:`repro.machine.scheduler.best_pairing`)
finds the certified-optimal two-per-socket placement under the same
composed-miss objective, bounding how much the greedy policies leave on
the table.

Expected shape: the aware policies strictly beat the oblivious ones on
total misses (the fleet-bench CI gate asserts the same claim), because
round-robin placement of a model-replicated fleet keeps piling replicas
of the same aggressive program onto one cache while worst-fit spreads
them.
"""

from __future__ import annotations

from ..fleet.placement import AWARE_POLICIES, matched_pairs
from ..fleet.simulator import run_fleet
from ..machine.scheduler import Pairing
from ..workloads.suite import ALL_PROGRAMS, STUDY_PROGRAMS
from .pipeline import BASELINE, Lab
from .report import ExperimentResult, pct, ratio

__all__ = ["run"]

#: the fleet's model population (module-level so tests can shrink it).
PROGRAMS = tuple(ALL_PROGRAMS)

#: instance replicas per model and the socket count of the simulated rack.
REPLICAS = 4
SOCKETS_PER_MODEL = 1

#: capacity sweep points of the co-run pair matrix.
MATRIX_CAPACITIES = 8


def run(lab: Lab) -> ExperimentResult:
    programs = list(PROGRAMS)
    n_models = len(programs)
    result = run_fleet(
        lab,
        n_instances=REPLICAS * n_models,
        n_sockets=max(1, SOCKETS_PER_MODEL * n_models),
        programs=programs,
        matrix_capacities=MATRIX_CAPACITIES,
    )

    baseline = result.placements["round-robin"]
    rows = []
    for name, placement in sorted(result.placements.items()):
        family = "aware" if name in AWARE_POLICIES else "oblivious"
        delta = (
            1.0 - placement.total_misses / baseline.total_misses
            if baseline.total_misses
            else 0.0
        )
        rows.append(
            [
                name,
                family,
                ratio(placement.total_misses / 1e3, 1) + "K",
                ratio(placement.makespan / 1e6, 2) + "M",
                pct(delta),
            ]
        )

    # Exact cross-check on a pair-sized fleet: the study programs, one
    # instance each, two per socket, same composed-miss objective.
    study = [p for p in STUDY_PROGRAMS if p in programs] or programs[:2]
    if len(study) % 2:
        study = study[:-1]
    exact: Pairing | None = None
    if len(study) >= 2:
        small = run_fleet(
            lab,
            n_instances=len(study),
            n_sockets=len(study) // 2,
            programs=study,
            policies=list(AWARE_POLICIES),
            matrix_capacities=1,
        )
        from ..fleet.compose import CurveSet
        from ..fleet.placement import Instance

        curves = [lab.footprint(p, BASELINE) for p in study]
        instances = [
            Instance(name=p, layout=BASELINE, curve_id=i, weight=float(curves[i].n))
            for i, p in enumerate(study)
        ]
        exact = matched_pairs(
            CurveSet(curves), instances, result.capacity, exact=True
        )
        greedy_gap = (
            small.aware_total / exact.cost - 1.0 if exact.cost else 0.0
        )
    else:  # pragma: no cover - degenerate test configurations
        greedy_gap = 0.0

    improvement = (
        1.0 - result.aware_total / result.oblivious_total
        if result.oblivious_total
        else 0.0
    )
    summary = {
        "models": n_models,
        "instances": result.n_instances,
        "sockets": result.n_sockets,
        "matrix_cells": result.matrix_cells,
        "curve_passes": result.curve_passes,
        "curve_memo_hits": result.curve_memo_hits,
        "aware_total_misses": result.aware_total,
        "oblivious_total_misses": result.oblivious_total,
        "aware_beats_oblivious": result.gate,
        "miss_improvement": improvement,
        "greedy_vs_exact_gap": greedy_gap,
        "mean_corun_ratio": result.mean_corun_ratio,
    }
    notes = [
        f"{result.matrix_cells} co-run cells from {result.curve_passes} curve "
        f"passes (+{result.curve_memo_hits} memo hits); layout-aware "
        f"placement cuts predicted misses by {pct(improvement)} vs the best "
        f"oblivious policy",
    ]
    if exact is not None:
        notes.append(
            f"exact matching cross-check on {len(study)} study programs: "
            f"greedy aware placement within {pct(greedy_gap)} of the "
            f"certified optimum"
        )
    return ExperimentResult(
        exp_id="fleet",
        title=f"Extension: fleet co-run scheduling — {result.n_instances} "
        f"instances on {result.n_sockets} shared caches "
        f"(footprint composition, capacity {result.capacity:.0f} lines)",
        headers=["policy", "family", "total misses", "makespan", "vs round-robin"],
        rows=rows,
        summary=summary,
        notes=notes,
    )
