"""Extension experiment X6: co-scheduling meets code layout.

The paper treats the pairing of co-run programs as given and optimizes
layout; the co-scheduling literature it cites (Jiang et al.) treats the
binaries as given and optimizes the pairing.  This driver combines them:
pair the eight study programs onto four SMT cores, minimizing the sum of
per-pair makespans, under three regimes:

* baseline binaries, best pairing vs worst pairing (the scheduling
  headroom);
* function-affinity binaries, best pairing (do the two optimizations
  compose?);
* baseline binaries with the greedy pairing heuristic (how close the
  cheap heuristic gets).

Expected shape: layout optimization shrinks the scheduling headroom (the
polite binaries are less sensitive to who they share with) while the
combination still wins overall — layout and scheduling compose.
"""

from __future__ import annotations

from ..machine.scheduler import all_pairings, best_pairing, greedy_pairing
from ..workloads.suite import STUDY_PROGRAMS
from .pipeline import BASELINE, Lab
from .report import ExperimentResult, pct, ratio

__all__ = ["run"]


def run(lab: Lab) -> ExperimentResult:
    programs = list(STUDY_PROGRAMS)

    def cost(layout_name: str):
        def pair_cost(a: str, b: str) -> float:
            return lab.corun_timing((a, layout_name), (b, layout_name)).makespan

        return pair_cost

    base_cost = cost(BASELINE)
    opt_cost = cost("function-affinity")

    base_best = best_pairing(programs, base_cost)
    base_greedy = greedy_pairing(programs, base_cost)
    base_worst = max(
        (sum(base_cost(a, b) for a, b in pairing) for pairing in all_pairings(programs))
    )
    opt_best = best_pairing(programs, opt_cost)

    headroom = base_worst / base_best.cost - 1.0
    compose = base_best.cost / opt_best.cost - 1.0
    greedy_gap = base_greedy.cost / base_best.cost - 1.0

    def render(p):
        return "; ".join(
            f"{a.replace('syn-', '')}+{b.replace('syn-', '')}" for a, b in p.pairs
        )

    rows = [
        ["baseline, best pairing", ratio(base_best.cost / 1e6, 2) + "M", render(base_best)],
        ["baseline, greedy pairing", ratio(base_greedy.cost / 1e6, 2) + "M", render(base_greedy)],
        ["baseline, worst pairing", ratio(base_worst / 1e6, 2) + "M", "--"],
        ["optimized, best pairing", ratio(opt_best.cost / 1e6, 2) + "M", render(opt_best)],
    ]
    summary = {
        "base_best_cost": base_best.cost,
        "base_greedy_cost": base_greedy.cost,
        "base_worst_cost": base_worst,
        "opt_best_cost": opt_best.cost,
        "scheduling_headroom": headroom,
        "layout_gain_at_best_pairing": compose,
        "greedy_gap": greedy_gap,
    }
    return ExperimentResult(
        exp_id="scheduling",
        title="Extension: co-scheduling x code layout — pairing 8 programs "
        "onto 4 SMT cores (sum of pair makespans, cycles)",
        headers=["regime", "total cost", "pairing"],
        rows=rows,
        summary=summary,
        notes=[
            f"scheduling headroom (worst/best - 1): {pct(headroom)}; "
            f"layout gain at the best pairing: {pct(compose)}; "
            f"greedy vs exact: {pct(greedy_gap)}"
        ],
    )
