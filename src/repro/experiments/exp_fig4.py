"""Figure 4: L1 instruction-cache miss ratios of all 29 programs, solo and
with each probe program co-running.

Three series per program (solo, gcc probe, gamess probe), hardware channel
— the data behind the paper's bar chart.  The reproduction targets: most
programs near zero; a distinct high-miss group of roughly 9 programs; and
co-run bars consistently above solo bars.
"""

from __future__ import annotations

from ..workloads.suite import ALL_PROGRAMS, PROBE_PROGRAMS
from .exp_intro import NONTRIVIAL_MISS_THRESHOLD
from .pipeline import BASELINE, Lab
from .report import ExperimentResult, ascii_bars, pct

__all__ = ["run"]


def run(lab: Lab) -> ExperimentResult:
    probe1, probe2 = PROBE_PROGRAMS
    rows = []
    summary: dict[str, float] = {}
    n_nontrivial = 0
    # 29 independent solo cells; fan them out when the lab has jobs.
    lab.precompute_solo([(name, BASELINE, "hw") for name in ALL_PROGRAMS])
    for name in ALL_PROGRAMS:
        solo = lab.solo_miss(name, BASELINE, channel="hw").ratio
        c1 = lab.corun_miss((name, BASELINE), (probe1, BASELINE))[0].ratio
        c2 = lab.corun_miss((name, BASELINE), (probe2, BASELINE))[0].ratio
        if solo >= NONTRIVIAL_MISS_THRESHOLD:
            n_nontrivial += 1
        rows.append(
            [
                name,
                pct(solo, signed=False),
                pct(c1, signed=False),
                pct(c2, signed=False),
            ]
        )
        summary[f"{name}/solo"] = solo
    rows.sort(key=lambda r: -float(r[1].rstrip("%")))
    summary["n_nontrivial"] = float(n_nontrivial)
    bars = [(r[0], summary[f"{r[0]}/solo"]) for r in rows]
    return ExperimentResult(
        exp_id="fig4",
        title="L1 I-cache miss ratios of the 29-program suite, solo and "
        "under probe co-runs (paper: 9 of 29 non-trivial)",
        headers=["program", "solo", f"{probe1} probe", f"{probe2} probe"],
        rows=rows,
        summary=summary,
        charts=[("Fig. 4 — solo miss ratios (sorted)", ascii_bars(bars))],
    )
