"""Experiment orchestration: the :class:`Lab`.

Every experiment follows the same pipeline:

    build program -> instrument (test + ref inputs) -> run optimizers on the
    test profile -> expand layouts to fetch streams (ref input) -> simulate
    solo / co-run caches -> convert to miss ratios and cycle counts.

The :class:`Lab` owns that pipeline and memoizes every stage, because the
evaluation matrices (8 study programs x 8 probes x 4 optimizers x 2
measurement channels) re-visit the same artefacts hundreds of times.

Two measurement channels, as in the paper (Sec. III-A):

* ``sim``  — clean LRU simulation, no prefetch (the Pin-simulator channel);
* ``hw``   — next-line prefetcher plus seeded counter noise
  (:mod:`repro.machine.counters`, the PAPI channel).  Timing always uses
  this channel, because the paper times real runs.

The ``sim`` channel is exactly the stack-distance kernel's domain (cold
cache, no prefetch, true LRU), so by default the lab routes it through
:mod:`repro.cache.fastsim`: one histogram per (program, layout, n_sets)
answers every associativity, which collapses geometry sweeps.  The
scalar simulator remains the oracle (``use_kernel=False``, also the
runner's ``--no-fastsim``) and the only path for the ``hw`` channel and
co-runs.

``scale`` shrinks every program's test/ref trace budgets; benchmarks run
the full experiment logic at a fraction of the cost.
"""

from __future__ import annotations

import dataclasses
import pickle
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

import numpy as np

from ..cache.config import PAPER_L1I, CacheConfig
from ..cache.fastsim import DistanceHistogram
from ..cache.setassoc import simulate
from ..cache.shared import simulate_shared
from ..cache.stats import CacheStats
from ..core.optimizers import OPTIMIZERS, OptimizerConfig
from ..core.optimizers import optimize as optimize_layout
from ..engine.fetch import fetch_lines
from ..engine.instrument import TraceBundle, collect_trace
from ..ir.module import Module
from ..ir.transforms import LayoutResult, baseline_layout
from ..locality.footprint import FootprintCurve, footprint_curve
from ..machine.counters import measure_corun, measure_solo, reading_from_stats
from ..machine.smt import CoRunTiming, corun_pair
from ..machine.timing import ThreadCost, TimingParams, thread_cost
from ..robust.errors import ProfileError, error_context
from ..staticlint.profile import synthesize_bundle
from ..workloads.suite import SuiteProgram
from ..workloads.suite import build as build_suite_program

__all__ = ["BASELINE", "THREAD_STRIDE", "Lab", "MissRatios", "PreparedProgram"]

#: layout name of the unoptimized (declaration-order) layout.
BASELINE = "baseline"

#: Line-index offset applied to the second co-run thread.  Co-running
#: processes occupy disjoint physical pages, so their fetch streams must
#: not alias in the physically-indexed shared cache — without this, a
#: program co-run with itself would share every line and show zero
#: contention.  The extra 64 lines (one 4 KB page) rotates the set mapping
#: so self-pairs are not pathologically set-aligned either.
THREAD_STRIDE = (1 << 22) + 64


@dataclass
class PreparedProgram:
    """All per-program artefacts the experiments reuse."""

    prog: SuiteProgram
    module: Module
    test_bundle: TraceBundle
    ref_bundle: TraceBundle

    @property
    def name(self) -> str:
        return self.prog.name

    @property
    def instr_count(self) -> int:
        return self.ref_bundle.instr_count

    @property
    def data_cpi(self) -> float:
        return self.prog.spec.data_cpi


@dataclass(frozen=True)
class MissRatios:
    """One program's miss measurement under some configuration."""

    misses: float
    instructions: int

    @property
    def ratio(self) -> float:
        return self.misses / self.instructions if self.instructions else 0.0


class Lab:
    """Caching experiment context.

    Parameters
    ----------
    cache_cfg: cache geometry (paper default 32KB/4-way/64B).
    scale: trace-budget multiplier in (0, 1]; 1.0 = full evaluation.
    optimizer_config: shared knobs for the four optimizers.
    quantum: SMT fetch interleaving granularity, in line accesses.
    noise_sigma: hardware-counter noise (0 disables).
    timing: CPI model constants.
    jobs: worker processes for :meth:`precompute_solo` cell fan-out
        (1 = fully serial; never changes results, only wall-clock time).
    memo: optional :class:`repro.perf.memo.SimMemo` replaying identical
        solo simulations instead of re-running them.
    use_kernel: route sim-channel solo cells through the stack-distance
        kernel (parity-gated bit-identical to the scalar simulator;
        False forces the scalar oracle everywhere).
    use_fast_analysis: route the locality models (affinity coverage, TRG
        construction) through the vectorized kernels in
        :mod:`repro.core.fastanalysis` (also parity-gated bit-identical).
        ``None`` (default) respects ``optimizer_config``; a bool
        overrides its ``use_fast_analysis`` field.
    kernel_backend: requested kernel tier name for the hot analysis
        kernels (see :mod:`repro.perf.backends`).  ``None`` (default)
        resolves to the fastest available tier; an explicit name is
        resolved with ``strict=False`` so a lab reconstructed inside a
        worker without numba degrades ``compiled -> numpy`` with
        bit-identical results.  Also mirrored into
        ``optimizer_config.kernel_backend`` so the analysis kernels the
        optimizers run inherit the same tier.
    store: optional :class:`repro.perf.store.TraceStore`.  When set, the
        cell fan-outs publish each fetch stream once and ship ~100-byte
        :class:`~repro.perf.store.StoreRef` descriptors to workers, which
        attach with zero-copy memmap reads; the stream's content digest
        doubles as the memo-key ingredient, so nothing is hashed twice.
        Purely a transport optimization — results are bit-identical.

    The lab doubles as the telemetry source: :attr:`timings` accumulates
    per-stage wall-clock seconds (monotonic clock) and :attr:`counters`
    tracks simulated line accesses, feeding ``BENCH_perf.json``.
    """

    def __init__(
        self,
        cache_cfg: CacheConfig = PAPER_L1I,
        scale: float = 1.0,
        optimizer_config: Optional[OptimizerConfig] = None,
        quantum: int = 8,
        noise_sigma: float = 0.01,
        timing: TimingParams = TimingParams(),
        jobs: int = 1,
        memo=None,
        use_kernel: bool = True,
        use_fast_analysis: Optional[bool] = None,
        kernel_backend: Optional[str] = None,
        profile_source: str = "trace",
        store=None,
    ):
        if not 0.0 < scale <= 1.0:
            raise ValueError("scale must be in (0, 1]")
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if profile_source not in ("trace", "static"):
            raise ValueError(
                f"unknown profile_source {profile_source!r} "
                "(expected 'trace' or 'static')"
            )
        self.cache_cfg = cache_cfg
        self.scale = scale
        self.optimizer_config = optimizer_config or OptimizerConfig(cache=cache_cfg)
        if use_fast_analysis is not None:
            self.optimizer_config = dataclasses.replace(
                self.optimizer_config, use_fast_analysis=use_fast_analysis
            )
        #: requested kernel tier (travels through spawn_config; workers
        #: re-resolve it against their own environment).
        self.kernel_backend = kernel_backend
        if kernel_backend is not None:
            self.optimizer_config = dataclasses.replace(
                self.optimizer_config, kernel_backend=kernel_backend
            )
        from ..perf.backends import resolve_backend

        self._backend = resolve_backend(kernel_backend, strict=False)
        self.quantum = quantum
        self.noise_sigma = noise_sigma
        self.timing = timing
        self.jobs = jobs
        self.memo = memo
        self.store = store
        #: lazily created persistent CellPool (reused across fan-outs).
        self._cell_pool = None
        self.use_kernel = use_kernel
        #: where the *optimization* profile (test input) comes from:
        #: "trace" instruments a real run; "static" synthesizes the test
        #: bundle from CFG structure alone (no-profile layout builds).
        #: The ref-input measurement channel is always a real trace, so
        #: evaluations measure what the static profile actually bought.
        self.profile_source = profile_source
        # Analysis artifacts always go through a memo so that
        # precompute_layouts can inject parallel-built payloads; without a
        # user-supplied SimMemo it is private and purely in-memory.
        if memo is not None:
            self._analysis_memo = memo
        else:
            from ..perf.memo import SimMemo

            self._analysis_memo = SimMemo()

        #: per-stage wall seconds: prepare / optimize / fetch / simulate.
        self.timings: dict[str, float] = {}
        #: throughput counters: nominal line accesses simulated + seconds,
        #: split scalar (sim_*) vs. stack-distance kernel (kernel_*);
        #: kernel_passes counts histogram computations, kernel_cells the
        #: measurement cells those histograms answered.  The analysis_*
        #: group tracks the locality-model kernels the same way: cells =
        #: analyses consumed by optimizers, passes = fresh kernel runs,
        #: memo_hits = replays.
        self.counters: dict[str, float] = {
            "sim_accesses": 0,
            "sim_seconds": 0.0,
            "kernel_accesses": 0,
            "kernel_seconds": 0.0,
            "kernel_passes": 0,
            "kernel_cells": 0,
            "analysis_accesses": 0,
            "analysis_seconds": 0.0,
            "analysis_passes": 0,
            "analysis_cells": 0,
            "analysis_memo_hits": 0,
            # Footprint-curve composition (repro.fleet): curve_passes =
            # fresh all-window histogram passes, curve_memo_hits =
            # replays, fleet_cells = co-run matrix cells those curves
            # answered.  cells >> passes is the whole point — the
            # fleet-bench gate asserts the ratio.
            "curve_passes": 0,
            "curve_seconds": 0.0,
            "curve_memo_hits": 0,
            "fleet_cells": 0,
            "fleet_seconds": 0.0,
            # Cell-dispatch transport: bytes that crossed the process
            # boundary pickled vs. bytes workers memmapped from the
            # store, plus persistent-pool amortization.
            "store_bytes_shipped": 0,
            "store_bytes_mapped": 0,
            "pool_fanouts": 0,
            "pool_reuses": 0,
        }

        self._programs: dict[str, PreparedProgram] = {}
        self._layouts: dict[tuple[str, str], LayoutResult] = {}
        self._lines: dict[tuple[str, str], np.ndarray] = {}
        self._hists: dict[tuple[str, str, int], "DistanceHistogram"] = {}
        self._curves: dict[tuple[str, str], FootprintCurve] = {}
        self._solo: dict[tuple[str, str, str], MissRatios] = {}
        self._corun: dict[tuple, tuple[MissRatios, MissRatios]] = {}

    # -- telemetry -----------------------------------------------------------

    @contextmanager
    def _stage(
        self, name: str, accesses: int = 0, *, kernel: bool = False
    ) -> Iterator[None]:
        """Accumulate the block's monotonic wall time under ``name``.

        ``accesses`` feed the scalar throughput counters, or the
        ``kernel_*`` pair when the block ran the stack-distance kernel.
        """
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.timings[name] = self.timings.get(name, 0.0) + elapsed
            if accesses:
                prefix = "kernel" if kernel else "sim"
                self.counters[f"{prefix}_accesses"] += accesses
                self.counters[f"{prefix}_seconds"] += elapsed

    def spawn_config(self) -> dict:
        """Picklable constructor kwargs reproducing this lab's behavior.

        Used to build identical labs inside worker processes; memoized
        artefacts and telemetry deliberately do not travel (the ``memo``
        is re-attached from its directory by the worker initializer).
        """
        return {
            "cache_cfg": self.cache_cfg,
            "scale": self.scale,
            "optimizer_config": self.optimizer_config,
            "quantum": self.quantum,
            "noise_sigma": self.noise_sigma,
            "timing": self.timing,
            "use_kernel": self.use_kernel,
            "kernel_backend": self.kernel_backend,
            "profile_source": self.profile_source,
        }

    # -- cell transport ------------------------------------------------------

    def cell_pool(self, jobs: Optional[int] = None):
        """The lab's persistent :class:`~repro.perf.parallel.CellPool`.

        Spawned lazily on first fan-out and reused by every subsequent
        one (``precompute_solo``, ``precompute_layouts``, benchmarks) —
        the workers and their store attachment survive across calls
        instead of being rebuilt per map.  Rebuilt only when a caller
        asks for a different worker count.
        """
        from ..perf.parallel import CellPool

        jobs = self.jobs if jobs is None else jobs
        pool = self._cell_pool
        if pool is None or pool.jobs != jobs:
            if pool is not None:
                pool.shutdown()
            pool = CellPool(
                jobs, store=self.store, kernel_backend=self.kernel_backend
            )
            self._cell_pool = pool
        return pool

    def _ship_stream(self, stream: np.ndarray, digest: Optional[str] = None):
        """Prepare one stream for a worker dispatch.

        With a store attached: publish the stream once (under ``digest``
        when the caller already hashed it for a memo key) and ship its
        ~100-byte :class:`~repro.perf.store.StoreRef`; workers memmap
        the content instead of unpickling it.  Without a store the array
        itself ships.  ``store_bytes_shipped`` accounts what actually
        crosses the process boundary either way, so the telemetry shows
        exactly what the store bought.
        """
        if self.store is not None:
            ref = self.store.ref(stream, key=digest)
            self.counters["store_bytes_shipped"] += len(pickle.dumps(ref))
            self.counters["store_bytes_mapped"] += ref.nbytes
            return ref
        self.counters["store_bytes_shipped"] += int(np.asarray(stream).nbytes)
        return stream

    def _sync_pool_counters(self) -> None:
        """Mirror the persistent pool's amortization counters."""
        if self._cell_pool is not None:
            self.counters["pool_fanouts"] = float(self._cell_pool.maps)
            self.counters["pool_reuses"] = float(self._cell_pool.reuses)

    def close(self) -> None:
        """Release the persistent cell pool (idempotent; the lab stays
        usable and respawns workers on the next fan-out)."""
        if self._cell_pool is not None:
            self._sync_pool_counters()
            self._cell_pool.shutdown()
            self._cell_pool = None

    def __enter__(self) -> "Lab":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- program preparation -------------------------------------------------

    def program(self, name: str) -> PreparedProgram:
        """Build + instrument a suite program (memoized).

        An unknown program name or a module that breaks instrumentation
        raises :class:`~repro.robust.errors.ProfileError` carrying the
        stage and program.
        """
        prepared = self._programs.get(name)
        if prepared is None:
            with self._stage("prepare"), error_context(
                "prepare", program=name, reraise=ProfileError
            ):
                prog, module = build_suite_program(name)
                spec = prog.spec
                ref_blocks = max(10_000, int(spec.ref_blocks * self.scale))
                test_blocks = max(5_000, int(spec.test_blocks * self.scale))
                prog, module = build_suite_program(
                    name, ref_blocks=ref_blocks, test_blocks=test_blocks
                )
                test_input = prog.spec.test_input()
                if self.profile_source == "static":
                    test_bundle = synthesize_bundle(
                        module,
                        max_blocks=test_input.max_blocks,
                        seed=test_input.seed,
                    )
                else:
                    test_bundle = collect_trace(module, test_input)
                prepared = PreparedProgram(
                    prog=prog,
                    module=module,
                    test_bundle=test_bundle,
                    ref_bundle=collect_trace(module, prog.spec.ref_input()),
                )
            self._programs[name] = prepared
        return prepared

    def _note_analysis(self, stats: dict) -> None:
        """Fold an optimizer's ``analysis_*`` counters into the lab's."""
        for key, value in stats.items():
            self.counters[key] = self.counters.get(key, 0) + value

    def layout(self, name: str, layout_name: str) -> LayoutResult:
        """Baseline or one of the four optimizers' layouts (memoized).

        Unknown layout names and optimizer blow-ups raise
        :class:`~repro.robust.errors.SimulationError` (stage ``optimize``).
        """
        key = (name, layout_name)
        result = self._layouts.get(key)
        if result is None:
            prepared = self.program(name)
            with self._stage("optimize"), error_context(
                "optimize", program=name, layout=layout_name
            ):
                if layout_name == BASELINE:
                    result = baseline_layout(prepared.module)
                else:
                    optimizer = OPTIMIZERS[layout_name]
                    stats: dict = {}
                    result = optimizer(
                        prepared.module,
                        prepared.test_bundle,
                        self.optimizer_config,
                        memo=self._analysis_memo,
                        stats=stats,
                    )
                    self._note_analysis(stats)
            self._layouts[key] = result
        return result

    def optimize(self, name: str, granularity, model, config) -> LayoutResult:
        """Run one optimizer with a custom config through the lab.

        The ablation experiments sweep optimizer parameters the four
        named layouts pin down; routing them here (instead of calling
        :func:`repro.core.optimizers.optimize` directly) keeps the lab's
        analysis memo, ``analysis_*`` counters, and the lab-level
        ``use_fast_analysis`` override in force for every layout build
        in a suite run.  Not memoized: sweeps never repeat a config.
        """
        prepared = self.program(name)
        config = dataclasses.replace(
            config, use_fast_analysis=self.optimizer_config.use_fast_analysis
        )
        stats: dict = {}
        with self._stage("optimize"):
            result = optimize_layout(
                prepared.module,
                prepared.test_bundle,
                granularity,
                model,
                config,
                memo=self._analysis_memo,
                stats=stats,
            )
        self._note_analysis(stats)
        return result

    def precompute_layouts(
        self,
        cells: Sequence[tuple[str, str]],
        *,
        jobs: Optional[int] = None,
    ) -> None:
        """Build many ``(program, layout)`` cells' layouts at once.

        The expensive part of a model-driven layout is the analysis pass
        (affinity coverage or TRG); those passes are independent across
        cells, so they fan out across ``jobs`` worker processes and land
        in the analysis memo, after which the (cheap, memo-hitting)
        layout builds run serially.  Results are **bit-identical** to
        calling :meth:`layout` cell by cell — the kernels are
        deterministic and the memo is content-addressed — so this is
        purely a wall-clock optimization, exactly like
        :meth:`precompute_solo`.
        """
        jobs = self.jobs if jobs is None else jobs
        todo = [
            (name, layout_name)
            for name, layout_name in dict.fromkeys(tuple(c) for c in cells)
            if (name, layout_name) not in self._layouts
        ]
        if (
            jobs > 1
            and len(todo) > 1
            and self.optimizer_config.use_fast_analysis
        ):
            from ..core.optimizers import analysis_cell
            from ..perf.memo import affinity_key, trg_key
            from ..perf.parallel import analysis_cells
            from ..perf.store import trace_digest

            tasks: list[tuple] = []
            pending: list[str] = []
            seen: set[str] = set()
            task_accesses = 0
            for name, layout_name in todo:
                prepared = self.program(name)
                cell = analysis_cell(
                    prepared.module,
                    prepared.test_bundle,
                    layout_name,
                    self.optimizer_config,
                )
                if cell is None:
                    continue
                trace = cell[1]
                # The content digest keys both the memo entry and the
                # store entry — hash the trace once, use it twice.
                keysrc = trace_digest(trace) if self.store is not None else trace
                if cell[0] == "affinity":
                    key = affinity_key(keysrc, w_max=cell[2], time_horizon=cell[3])
                else:
                    key = trg_key(keysrc, window_blocks=cell[2])
                if key in seen or self._analysis_memo.has_analysis(key):
                    continue
                seen.add(key)
                shipped = self._ship_stream(
                    trace, keysrc if isinstance(keysrc, str) else None
                )
                tasks.append((cell[0], shipped) + tuple(cell[2:]))
                pending.append(key)
                task_accesses += int(np.asarray(trace).shape[0])
            if tasks:
                with self._stage("optimize"):
                    start = time.perf_counter()
                    payloads = analysis_cells(tasks, pool=self.cell_pool(jobs))
                    self._sync_pool_counters()
                    elapsed = time.perf_counter() - start
                    for key, payload in zip(pending, payloads):
                        self._analysis_memo.put_analysis(key, payload)
                    self.counters["analysis_passes"] += len(tasks)
                    self.counters["analysis_accesses"] += task_accesses
                    self.counters["analysis_seconds"] += elapsed
        for name, layout_name in todo:
            self.layout(name, layout_name)

    def supports(self, name: str, layout_name: str) -> bool:
        """False where the paper reported N/A (BB reordering failures)."""
        if layout_name.startswith("bb-"):
            return self.program(name).prog.bb_reorder_supported
        return True

    def lines(self, name: str, layout_name: str) -> np.ndarray:
        """Ref-input fetch stream of a program under a layout (memoized)."""
        key = (name, layout_name)
        stream = self._lines.get(key)
        if stream is None:
            prepared = self.program(name)
            amap = self.layout(name, layout_name).address_map
            with self._stage("fetch"), error_context(
                "fetch", program=name, layout=layout_name
            ):
                stream = fetch_lines(
                    prepared.ref_bundle.bb_trace, amap, self.cache_cfg.line_bytes
                ).astype(np.int32)
            self._lines[key] = stream
        return stream

    # -- measurements ----------------------------------------------------------

    def histogram(
        self, name: str, layout_name: str, n_sets: Optional[int] = None
    ) -> DistanceHistogram:
        """Stack-distance histogram of a program's fetch stream (memoized).

        One histogram answers the exact cold, prefetch-free LRU miss
        count for *every* associativity at ``n_sets`` (default: the
        lab's geometry) — the sim channel of :meth:`solo_miss` and the
        capacity sweep both read from here.  Distances depend only on
        the stream and ``n_sets``, so the entry is shared across
        ``size_bytes``/``assoc`` variations of the family.
        """
        n_sets = self.cache_cfg.n_sets if n_sets is None else int(n_sets)
        key = (name, layout_name, n_sets)
        hist = self._hists.get(key)
        if hist is None:
            stream = self.lines(name, layout_name)
            with self._stage(
                "simulate", accesses=len(stream), kernel=True
            ), error_context("simulate", program=name, layout=layout_name):
                if self.memo is not None:
                    misses_before = self.memo.misses
                    hist = self.memo.histogram(stream, n_sets, backend=self._backend)
                    if self.memo.misses > misses_before:
                        self.counters["kernel_passes"] += 1
                else:
                    hist = self._backend.histogram(stream, n_sets)
                    self.counters["kernel_passes"] += 1
            self._hists[key] = hist
        return hist

    def footprint(self, name: str, layout_name: str) -> FootprintCurve:
        """All-window footprint curve of a program's fetch stream (memoized).

        The curve depends on the stream alone — no geometry, no peers —
        so one entry answers every capacity and every co-run group the
        program appears in.  This is the reuse unit the fleet scheduler
        (:mod:`repro.fleet`) multiplies: millions of co-run cells, one
        curve pass per distinct (program, layout).
        """
        key = (name, layout_name)
        curve = self._curves.get(key)
        if curve is None:
            stream = self.lines(name, layout_name)
            with self._stage("compose"), error_context(
                "compose", program=name, layout=layout_name
            ):
                start = time.perf_counter()
                if self.memo is not None:
                    misses_before = self.memo.misses
                    curve = self.memo.footprint_curve(stream)
                    if self.memo.misses > misses_before:
                        self.counters["curve_passes"] += 1
                    else:
                        self.counters["curve_memo_hits"] += 1
                else:
                    curve = footprint_curve(stream)
                    self.counters["curve_passes"] += 1
                self.counters["curve_seconds"] += time.perf_counter() - start
            self._curves[key] = curve
        return curve

    def precompute_footprints(
        self,
        cells: Sequence[tuple[str, str]],
        *,
        jobs: Optional[int] = None,
    ) -> None:
        """Fill the footprint-curve memo for many ``(program, layout)``
        cells at once.

        Mirrors :meth:`precompute_layouts`: streams are built serially
        (memoized, cheap), the independent all-window histogram passes
        fan out across ``jobs`` workers, and the resulting curves land
        in the curve memo.  Bit-identical to calling :meth:`footprint`
        cell by cell — curves cross the process boundary in their exact
        float form — so this is purely a wall-clock optimization.
        """
        jobs = self.jobs if jobs is None else jobs
        todo = [
            (name, layout_name)
            for name, layout_name in dict.fromkeys(tuple(c) for c in cells)
            if (name, layout_name) not in self._curves
        ]
        if jobs <= 1 or len(todo) <= 1:
            for name, layout_name in todo:
                self.footprint(name, layout_name)
            return

        from ..perf.memo import curve_key
        from ..perf.parallel import curve_cells
        from ..perf.store import trace_digest

        tasks: list[tuple] = []
        pending: list[tuple[tuple[str, str], str]] = []
        for cell in todo:
            name, layout_name = cell
            stream = self.lines(name, layout_name)
            keysrc = trace_digest(stream) if self.store is not None else stream
            digest = keysrc if isinstance(keysrc, str) else None
            ckey = curve_key(keysrc)
            cached = self.memo.get_curve(ckey) if self.memo is not None else None
            if cached is not None:
                self.counters["curve_memo_hits"] += 1
                self._curves[cell] = cached
            else:
                tasks.append((self._ship_stream(stream, digest),))
                pending.append((cell, ckey))
        if tasks:
            with self._stage("compose"), error_context(
                "compose", program="precompute-footprints"
            ):
                start = time.perf_counter()
                curves = curve_cells(tasks, pool=self.cell_pool(jobs))
                self._sync_pool_counters()
                self.counters["curve_passes"] += len(tasks)
                self.counters["curve_seconds"] += time.perf_counter() - start
            for (cell, ckey), curve in zip(pending, curves):
                if self.memo is not None:
                    self.memo.put_curve(ckey, curve)
                self._curves[cell] = curve

    def solo_miss(self, name: str, layout_name: str, channel: str = "hw") -> MissRatios:
        """Solo miss measurement through the given channel ('hw' or 'sim')."""
        if channel not in ("sim", "hw"):
            raise ValueError(f"unknown channel {channel!r}")
        key = (name, layout_name, channel)
        result = self._solo.get(key)
        if result is None:
            prepared = self.program(name)
            if channel == "sim" and self.use_kernel:
                # The kernel's exact domain: cold cache, no prefetch.
                hist = self.histogram(name, layout_name)
                self.counters["kernel_cells"] += 1
                result = MissRatios(
                    hist.misses(self.cache_cfg.assoc), prepared.instr_count
                )
                self._solo[key] = result
                return result
            stream = self.lines(name, layout_name)
            sim = simulate if self.memo is None else self.memo.simulate
            with self._stage("simulate", accesses=len(stream)), error_context(
                "simulate", program=name, layout=layout_name
            ):
                if channel == "sim":
                    stats = sim(stream, self.cache_cfg, prefetch=False)
                    result = MissRatios(stats.misses, prepared.instr_count)
                else:
                    reading = measure_solo(
                        stream,
                        prepared.instr_count,
                        self.cache_cfg,
                        noise_sigma=self.noise_sigma,
                        measurement_id=f"{name}/{layout_name}",
                        memo=self.memo,
                    )
                    result = MissRatios(reading.icache_misses, reading.instructions)
            self._solo[key] = result
        return result

    def precompute_solo(
        self,
        cells: Sequence[tuple[str, str, str]],
        *,
        jobs: Optional[int] = None,
    ) -> None:
        """Fill the solo-measurement memo for many cells at once.

        Each cell is ``(program, layout, channel)``.  Streams are built
        serially (they are memoized and cheap relative to simulation);
        the independent cache simulations then fan out across ``jobs``
        worker processes (default: the lab's ``jobs``).  Results are
        **bit-identical** to calling :meth:`solo_miss` cell by cell —
        the noise seeding and memo keys are shared with the serial path
        — so this is purely a wall-clock optimization.
        """
        jobs = self.jobs if jobs is None else jobs
        for _, _, channel in cells:
            if channel not in ("sim", "hw"):
                raise ValueError(f"unknown channel {channel!r}")
        todo = [
            (name, layout_name, channel)
            for name, layout_name, channel in dict.fromkeys(tuple(c) for c in cells)
            if (name, layout_name, channel) not in self._solo
        ]
        if jobs <= 1 or len(todo) <= 1:
            for name, layout_name, channel in todo:
                self.solo_miss(name, layout_name, channel)
            return

        from ..perf.memo import histogram_key, memo_key
        from ..perf.parallel import histogram_cells, simulate_cells
        from ..perf.store import trace_digest

        n_sets = self.cache_cfg.n_sets
        kernel_tasks: list[tuple] = []
        kernel_pending: list[tuple[tuple[str, str, str], str]] = []
        kernel_accesses = 0
        tasks: list[tuple] = []
        pending: list[tuple[tuple[str, str, str], str]] = []
        task_accesses = 0
        for cell in todo:
            name, layout_name, channel = cell
            stream = self.lines(name, layout_name)
            # With a store, the content digest is computed once here and
            # keys the memo entry *and* the store entry.
            keysrc = trace_digest(stream) if self.store is not None else stream
            digest = keysrc if isinstance(keysrc, str) else None
            if channel == "sim" and self.use_kernel:
                hkey = histogram_key(keysrc, n_sets)
                hist = self._hists.get((name, layout_name, n_sets))
                if hist is None and self.memo is not None:
                    hist = self.memo.get_histogram(hkey)
                    if hist is not None:
                        self._hists[(name, layout_name, n_sets)] = hist
                if hist is not None:
                    self.counters["kernel_cells"] += 1
                    self._finish_solo_cell(cell, hist.stats(self.cache_cfg.assoc))
                else:
                    kernel_tasks.append((self._ship_stream(stream, digest), n_sets))
                    kernel_pending.append((cell, hkey))
                    kernel_accesses += len(stream)
                continue
            prefetch = channel == "hw"
            key = memo_key(keysrc, self.cache_cfg, prefetch=prefetch)
            cached = self.memo.get(key) if self.memo is not None else None
            if cached is not None:
                self._finish_solo_cell(cell, cached)
            else:
                tasks.append(
                    (self._ship_stream(stream, digest), self.cache_cfg, prefetch)
                )
                pending.append((cell, key))
                task_accesses += len(stream)

        if kernel_tasks:
            with self._stage(
                "simulate",
                accesses=kernel_accesses,
                kernel=True,
            ), error_context("simulate", program="precompute-solo"):
                hists = histogram_cells(kernel_tasks, pool=self.cell_pool(jobs))
                self._sync_pool_counters()
                self.counters["kernel_passes"] += len(kernel_tasks)
            for (cell, hkey), hist in zip(kernel_pending, hists):
                if self.memo is not None:
                    self.memo.put_histogram(hkey, hist)
                name, layout_name, _ = cell
                self._hists[(name, layout_name, n_sets)] = hist
                self.counters["kernel_cells"] += 1
                self._finish_solo_cell(cell, hist.stats(self.cache_cfg.assoc))

        with self._stage(
            "simulate", accesses=task_accesses
        ), error_context("simulate", program="precompute-solo"):
            results = simulate_cells(tasks, pool=self.cell_pool(jobs))
            self._sync_pool_counters()
        for (cell, key), stats in zip(pending, results):
            if self.memo is not None:
                self.memo.put(key, stats)
            self._finish_solo_cell(cell, stats)

    def _finish_solo_cell(self, cell: tuple[str, str, str], stats: CacheStats) -> None:
        """Convert raw cell stats into the memoized MissRatios entry."""
        name, layout_name, channel = cell
        prepared = self.program(name)
        if channel == "sim":
            result = MissRatios(stats.misses, prepared.instr_count)
        else:
            reading = reading_from_stats(
                stats,
                prepared.instr_count,
                self.cache_cfg,
                noise_sigma=self.noise_sigma,
                measurement_id=f"{name}/{layout_name}",
            )
            result = MissRatios(reading.icache_misses, reading.instructions)
        self._solo[cell] = result

    def corun_miss(
        self,
        a: tuple[str, str],
        b: tuple[str, str],
        channel: str = "hw",
    ) -> tuple[MissRatios, MissRatios]:
        """Co-run miss measurement for a pair of (program, layout) threads.

        Per-thread misses are normalized to one pass of each program's ref
        stream, so ratios stay comparable to solo measurements.
        """
        if channel not in ("sim", "hw"):
            raise ValueError(f"unknown channel {channel!r}")
        key = (a, b, channel)
        result = self._corun.get(key)
        if result is not None:
            return result
        # Symmetric cache: reuse the swapped measurement if present.
        swapped = self._corun.get((b, a, channel))
        if swapped is not None:
            result = (swapped[1], swapped[0])
            self._corun[key] = result
            return result

        pa, pb = self.program(a[0]), self.program(b[0])
        sa, sb = self.lines(*a), self.lines(*b) + THREAD_STRIDE
        with self._stage("simulate", accesses=len(sa) + len(sb)), error_context(
            "simulate", program=f"{a[0]}|{b[0]}", layout=f"{a[1]}|{b[1]}"
        ):
            if channel == "sim":
                stats = simulate_shared(
                    [sa, sb], self.cache_cfg, quantum=self.quantum, prefetch=False
                )
                result = (
                    _per_pass(stats[0], len(sa), pa.instr_count),
                    _per_pass(stats[1], len(sb), pb.instr_count),
                )
            else:
                readings = measure_corun(
                    [sa, sb],
                    [pa.instr_count, pb.instr_count],
                    self.cache_cfg,
                    quantum=self.quantum,
                    noise_sigma=self.noise_sigma,
                    measurement_id=f"{a[0]}/{a[1]}|{b[0]}/{b[1]}",
                )
                result = (
                    MissRatios(readings[0].icache_misses, readings[0].instructions),
                    MissRatios(readings[1].icache_misses, readings[1].instructions),
                )
        self._corun[key] = result
        return result

    # -- timing ------------------------------------------------------------------

    def solo_cost(self, name: str, layout_name: str) -> ThreadCost:
        """Cycle cost of a solo run (hw-channel misses, per the paper)."""
        prepared = self.program(name)
        miss = self.solo_miss(name, layout_name, channel="hw")
        return thread_cost(
            prepared.instr_count,
            int(miss.misses),
            prepared.data_cpi,
            self.timing,
        )

    def corun_timing(self, a: tuple[str, str], b: tuple[str, str]) -> CoRunTiming:
        """SMT co-run timing for a pair of (program, layout) threads."""
        miss_a, miss_b = self.corun_miss(a, b, channel="hw")
        pa, pb = self.program(a[0]), self.program(b[0])
        corun_costs = (
            thread_cost(pa.instr_count, int(miss_a.misses), pa.data_cpi, self.timing),
            thread_cost(pb.instr_count, int(miss_b.misses), pb.data_cpi, self.timing),
        )
        solo_costs = (self.solo_cost(*a), self.solo_cost(*b))
        return corun_pair(corun_costs, solo_costs, self.timing)

    def corun_speedup(self, target: str, layout_name: str, probe: str) -> float:
        """Paper Fig. 6 metric: optimized+original co-run vs original+original.

        Both co-runs pair the target with the unmodified probe; the speedup
        is the target's co-run completion-time ratio.
        """
        base = self.corun_timing((target, BASELINE), (probe, BASELINE))
        opt = self.corun_timing((target, layout_name), (probe, BASELINE))
        return base.corun_cycles[0] / opt.corun_cycles[0]


def _per_pass(stats: CacheStats, stream_len: int, instructions: int) -> MissRatios:
    """Normalize wrapped co-run stats to one pass of the stream."""
    scale = stream_len / stats.accesses if stats.accesses else 0.0
    return MissRatios(stats.misses * scale, instructions)
