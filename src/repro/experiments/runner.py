"""Experiment registry and hardened command-line runner.

``python -m repro.experiments`` runs every table/figure reproduction and
prints the paper-shaped output; ``--only fig5 --scale 0.25`` narrows and
shrinks the run.  The same registry backs the pytest-benchmark harness in
``benchmarks/``.

The runner is built for long, messy batch runs:

* every experiment executes in its own isolation boundary — a failure is
  caught, typed (:class:`~repro.robust.errors.SimulationError` et al.),
  and summarized instead of aborting the interpreter with a traceback;
* ``--keep-going`` continues the suite past failures and exits nonzero
  with a failure summary;
* a JSONL run journal (written whenever ``--journal``, ``--keep-going``
  or ``--resume`` is in play) records each outcome crash-safely, and
  ``--resume`` skips experiments the journal already shows completed;
* ``--retries N`` re-attempts a failed experiment up to N extra times —
  mainly useful for the seed-sensitive ablations;
* ``--inject-fault ID`` is a fault-injection drill: it forces that
  experiment to fail so operators (and the test suite) can verify the
  keep-going/journal/resume machinery end to end;
* ``--jobs N`` fans experiments out across N worker processes with
  outcomes, journal, and output identical to the serial run (modulo
  timing fields); ``--memo-dir`` adds a persistent content-addressed
  simulation memo cache; ``--bench-out`` writes a ``BENCH_perf.json``
  telemetry report (see :mod:`repro.perf` and docs/performance.md).

Retries are fault-class aware: a failure is retried only if
:func:`repro.robust.errors.fault_class` calls it transient — permanent
failures (bad input, broken invariants) fail fast no matter the budget —
and backoff follows the deterministic decorrelated-jitter schedule of
:class:`repro.robust.supervisor.RetryPolicy`.  Parallel runs execute
under the :class:`~repro.robust.supervisor.SupervisedPool` self-healing
runtime (heartbeats, hang deadlines, bounded worker respawn), and
``--chaos SEED`` arms the deterministic process-level chaos harness
(worker kills, hangs, memo I/O faults, mid-run corruption — see
docs/robustness.md) whose journal outcomes must match a clean run.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Optional, TextIO

from ..robust.errors import ReproError, SimulationError
from ..robust.journal import RunJournal
from ..robust.supervisor import RetryPolicy
from . import (
    ablations,
    exp_cache_sweep,
    exp_comparators,
    exp_fig4,
    exp_fig5,
    exp_fig6,
    exp_fig7,
    exp_fleet,
    exp_intro,
    exp_model,
    exp_optopt,
    exp_scheduling,
    exp_smt_width,
    exp_staticlint,
    exp_table1,
    exp_table2,
    exp_unified,
)
from .pipeline import Lab
from .report import ExperimentResult

__all__ = [
    "EXPERIMENTS",
    "ExperimentOutcome",
    "UnknownExperimentError",
    "attempt_experiment",
    "run_experiment",
    "run_all",
    "run_suite",
    "main",
]

#: default run-journal path (see ``--journal``).
DEFAULT_JOURNAL = "repro-experiments.jsonl"

#: experiment id -> driver. Drivers take a Lab and return ExperimentResult.
EXPERIMENTS: dict[str, Callable[[Lab], ExperimentResult]] = {
    "intro-table": exp_intro.run,
    "table1": exp_table1.run,
    "fig4": exp_fig4.run,
    "fig5": exp_fig5.run,
    "table2": exp_table2.run,
    "fig6": exp_fig6.run,
    "fig7": exp_fig7.run,
    "optopt": exp_optopt.run,
    "comparators": exp_comparators.run,
    "unified": exp_unified.run,
    "model-validation": exp_model.run,
    "smt-width": exp_smt_width.run,
    "cache-sweep": exp_cache_sweep.run,
    "scheduling": exp_scheduling.run,
    "fleet": exp_fleet.run,
    "staticlint-certify": exp_staticlint.run,
    "ablation-trg-window": ablations.run_trg_window,
    "ablation-affinity-windows": ablations.run_affinity_windows,
    "ablation-pruning": ablations.run_pruning,
    "ablation-optimal-gap": lambda lab: ablations.run_optimal_gap(lab),
    "ablation-seeds": ablations.run_seed_robustness,
}


class UnknownExperimentError(ReproError, KeyError):
    """An experiment id not present in the registry.

    Doubles as :class:`KeyError` for callers that predate the taxonomy.
    """

    def __init__(self, exp_id: str):
        self.exp_id = exp_id
        super().__init__(
            f"unknown experiment {exp_id!r}; known: {', '.join(EXPERIMENTS)}",
            stage="experiment",
            defect=f"unknown id {exp_id!r}",
        )


def run_experiment(exp_id: str, lab: Lab) -> ExperimentResult:
    """Run one experiment by id against a shared lab."""
    try:
        driver = EXPERIMENTS[exp_id]
    except KeyError:
        raise UnknownExperimentError(exp_id) from None
    return driver(lab)


def run_all(lab: Lab, only: list[str] | None = None) -> list[ExperimentResult]:
    ids = only or list(EXPERIMENTS)
    return [run_experiment(i, lab) for i in ids]


# -- hardened suite execution ------------------------------------------------

@dataclass
class ExperimentOutcome:
    """The isolated result of one experiment slot in a suite run."""

    exp_id: str
    #: "ok", "failed", or "skipped" (journal said already complete).
    status: str
    #: monotonic-clock duration of all attempts (never wall-clock jumps).
    elapsed_s: float = 0.0
    attempts: int = 0
    result: Optional[ExperimentResult] = None
    error: Optional[ReproError] = None
    #: per-stage wall seconds this experiment added to the lab's totals.
    timings: dict = field(default_factory=dict)


def _as_repro_error(exp_id: str, err: Exception) -> ReproError:
    """Type any escaped exception; ReproErrors pass through annotated."""
    if isinstance(err, ReproError):
        return err.ensure_context(stage="experiment")
    wrapped = SimulationError(
        f"experiment {exp_id!r} failed",
        stage="experiment",
        defect=type(err).__name__,
        cause=err,
    )
    wrapped.__cause__ = err
    return wrapped


def attempt_experiment(
    lab: Lab,
    exp_id: str,
    *,
    retries: int = 0,
    inject_fault: Optional[str] = None,
    policy: Optional[RetryPolicy] = None,
) -> tuple[ExperimentOutcome, list[str]]:
    """Run one experiment's full attempt loop in isolation.

    The single source of truth for per-experiment semantics — the serial
    suite loop and the ``--jobs`` worker processes both call this, which
    is what makes parallel outcomes provably identical to serial ones.
    Retries follow ``policy`` (default: a :class:`RetryPolicy` granting
    ``retries`` extra attempts): only transient fault classes are
    retried, with deterministic decorrelated-jitter backoff keyed by
    ``exp_id``; permanent failures fail fast.  Durations use the
    monotonic clock (``time.perf_counter``), never wall-clock
    ``time.time`` — an NTP step mid-experiment must not warp
    ``elapsed_s``.  Returns the outcome plus the retry notes to print.
    """
    if policy is None:
        policy = RetryPolicy(max_retries=retries)
    elif retries > policy.max_retries:
        policy = replace(policy, max_retries=retries)
    outcome = ExperimentOutcome(exp_id, "failed")
    notes: list[str] = []
    timings_before = dict(lab.timings)
    start = time.perf_counter()
    attempt = 0
    while True:
        attempt += 1
        outcome.attempts = attempt
        try:
            if inject_fault == exp_id:
                raise SimulationError(
                    f"injected fault in experiment {exp_id!r} (drill)",
                    stage="experiment",
                    defect="injected fault",
                )
            outcome.result = run_experiment(exp_id, lab)
            outcome.status = "ok"
            outcome.error = None
            break
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as err:
            outcome.error = _as_repro_error(exp_id, err)
            if not policy.should_retry(outcome.error, attempt):
                break
            notes.append(
                f"!! {exp_id}: attempt {attempt} failed "
                f"({outcome.error}); retrying"
            )
            policy.sleep_before_retry(exp_id, attempt)
    outcome.elapsed_s = time.perf_counter() - start
    outcome.timings = {
        stage: total - timings_before.get(stage, 0.0)
        for stage, total in lab.timings.items()
        if total - timings_before.get(stage, 0.0) > 0.0
    }
    return outcome, notes


def _emit_outcome(
    outcome: ExperimentOutcome,
    notes: list[str],
    *,
    journal: Optional[RunJournal],
    error_dict: Optional[dict],
    out: TextIO,
) -> None:
    """Journal and print one finished experiment (serial and parallel)."""
    for note in notes:
        print(note, file=out)
    if journal is not None:
        journal.record(
            outcome.exp_id,
            outcome.status,
            elapsed_s=outcome.elapsed_s,
            attempts=outcome.attempts,
            error=error_dict,
            timings=outcome.timings or None,
        )
    if outcome.status == "ok":
        print(outcome.result.to_text(), file=out)
        print(f"  [{outcome.elapsed_s:.1f}s]", file=out)
    else:
        print(f"== {outcome.exp_id}: FAILED ==", file=out)
        print(f"  {outcome.error}", file=out)
        print(
            f"  [{outcome.elapsed_s:.1f}s, {outcome.attempts} attempt(s)]", file=out
        )
    print(file=out)


def run_suite(
    lab: Lab,
    ids: list[str],
    *,
    keep_going: bool = False,
    journal: Optional[RunJournal] = None,
    resume: bool = False,
    retries: int = 0,
    inject_fault: Optional[str] = None,
    out: Optional[TextIO] = None,
    jobs: int = 1,
    telemetry=None,
    policy: Optional[RetryPolicy] = None,
    chaos=None,
    hang_timeout_s: float = 300.0,
    respawn_budget: int = 4,
) -> list[ExperimentOutcome]:
    """Run ``ids`` with per-experiment isolation.

    Each experiment's failure is captured as a typed
    :class:`~repro.robust.errors.ReproError` in its
    :class:`ExperimentOutcome` (and journal entry).  Without
    ``keep_going`` the suite stops after the first failure — but still
    returns outcomes instead of raising, so the caller always gets the
    journal-consistent picture.  ``resume`` skips ids the journal's
    latest entry marks ``ok``.  ``retries`` grants each failing
    experiment that many extra attempts.  ``inject_fault`` forces the
    named experiment to fail (a drill for the failure machinery).

    ``jobs > 1`` fans the experiments out across worker processes (one
    private :class:`Lab` per worker) under the self-healing
    :class:`~repro.robust.supervisor.SupervisedPool` while preserving
    every serial guarantee: isolation, typed errors, journal entries,
    and output in the exact serial order — results and report text are
    identical modulo timing fields.  ``telemetry`` (a
    :class:`repro.perf.telemetry.Telemetry`) collects per-stage wall
    time and throughput counters from whichever path ran.  ``policy``
    overrides the default taxonomy-aware retry schedule; ``chaos`` (a
    :class:`repro.robust.faults.ChaosPlan`) arms the deterministic chaos
    harness on the parallel path; ``hang_timeout_s`` and
    ``respawn_budget`` tune the supervisor.
    """
    out = out or sys.stdout
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        raise UnknownExperimentError(unknown[0])
    if jobs < 1:
        raise ValueError("jobs must be >= 1")

    already_done = journal.completed() if (journal and resume) else set()
    wall_start = time.perf_counter()
    if jobs == 1:
        outcomes = _run_suite_serial(
            lab,
            ids,
            already_done,
            keep_going=keep_going,
            journal=journal,
            retries=retries,
            inject_fault=inject_fault,
            out=out,
            telemetry=telemetry,
            policy=policy,
        )
        if telemetry is not None:
            lab._sync_pool_counters()
            telemetry.merge_stages(lab.timings)
            telemetry.merge_counters(lab.counters)
            if lab.memo is not None:
                telemetry.merge_memo(lab.memo.counters())
            if lab.store is not None:
                telemetry.merge_store(lab.store.counters())
    else:
        outcomes = _run_suite_parallel(
            lab,
            ids,
            already_done,
            keep_going=keep_going,
            journal=journal,
            retries=retries,
            inject_fault=inject_fault,
            out=out,
            jobs=jobs,
            telemetry=telemetry,
            policy=policy,
            chaos=chaos,
            hang_timeout_s=hang_timeout_s,
            respawn_budget=respawn_budget,
        )
    if telemetry is not None:
        telemetry.wall_s += time.perf_counter() - wall_start
        for o in outcomes:
            telemetry.record_experiment(o.exp_id, o.status, o.elapsed_s, o.attempts)
    return outcomes


def _skip_outcome(exp_id: str, out: TextIO) -> ExperimentOutcome:
    print(f"== {exp_id}: skipped (journal: already complete) ==", file=out)
    print(file=out)
    return ExperimentOutcome(exp_id, "skipped")


def _run_suite_serial(
    lab: Lab,
    ids: list[str],
    already_done: set[str],
    *,
    keep_going: bool,
    journal: Optional[RunJournal],
    retries: int,
    inject_fault: Optional[str],
    out: TextIO,
    telemetry,
    policy: Optional[RetryPolicy] = None,
) -> list[ExperimentOutcome]:
    outcomes: list[ExperimentOutcome] = []
    for exp_id in ids:
        if exp_id in already_done:
            outcomes.append(_skip_outcome(exp_id, out))
            continue
        outcome, notes = attempt_experiment(
            lab, exp_id, retries=retries, inject_fault=inject_fault, policy=policy
        )
        _emit_outcome(
            outcome,
            notes,
            journal=journal,
            error_dict=outcome.error.to_dict() if outcome.error else None,
            out=out,
        )
        outcomes.append(outcome)
        if outcome.status == "failed" and not keep_going:
            break
    return outcomes


def _run_suite_parallel(
    lab: Lab,
    ids: list[str],
    already_done: set[str],
    *,
    keep_going: bool,
    journal: Optional[RunJournal],
    retries: int,
    inject_fault: Optional[str],
    out: TextIO,
    jobs: int,
    telemetry,
    policy: Optional[RetryPolicy] = None,
    chaos=None,
    hang_timeout_s: float = 300.0,
    respawn_budget: int = 4,
) -> list[ExperimentOutcome]:
    from ..perf.parallel import rebuild_error
    from ..robust.faults import chaos_corrupt_memo
    from ..robust.supervisor import SupervisedPool

    memo_dir = None
    if lab.memo is not None and lab.memo.cache_dir is not None:
        memo_dir = str(lab.memo.cache_dir)
    store_dir = None
    if lab.store is not None:
        store_dir = str(lab.store.root)
    breaker_config = None
    if chaos is not None:
        # A tight breaker so the chaos soak exercises trip + recovery in
        # seconds: three strikes open it, a quarter-second half-opens it.
        breaker_config = {"failure_threshold": 3, "reset_after_s": 0.25}

    outcomes: list[ExperimentOutcome] = []
    pool = SupervisedPool(
        jobs,
        lab.spawn_config(),
        memo_dir=memo_dir,
        hang_timeout_s=hang_timeout_s,
        respawn_budget=respawn_budget,
        breaker_config=breaker_config,
        store_dir=store_dir,
        chaos=chaos,
    )
    with pool:
        futures = {
            exp_id: pool.submit(
                exp_id, retries=retries, inject_fault=inject_fault, policy=policy
            )
            for exp_id in ids
            if exp_id not in already_done
        }
        # Consume strictly in submission order: output, journal entries,
        # and early-abort behavior match the serial run line for line.
        consumed = 0
        for exp_id in ids:
            if exp_id in already_done:
                outcomes.append(_skip_outcome(exp_id, out))
                continue
            payload = futures[exp_id].result()
            consumed += 1
            if (
                chaos is not None
                and memo_dir is not None
                and consumed == chaos.corrupt_after
            ):
                # Mid-run silent corruption drill: garble one memo entry
                # while workers are still reading the cache.  Readers
                # detect it and degrade to recomputation, so outcomes
                # stay identical to a clean run.
                chaos_corrupt_memo(memo_dir, chaos.seed)
            error_payload = payload["error"]
            outcome = ExperimentOutcome(
                exp_id=payload["exp_id"],
                status=payload["status"],
                elapsed_s=payload["elapsed_s"],
                attempts=payload["attempts"],
                result=payload["result"],
                error=rebuild_error(error_payload) if error_payload else None,
                timings=payload["timings"],
            )
            _emit_outcome(
                outcome,
                payload["notes"],
                journal=journal,
                error_dict=error_payload["dict"] if error_payload else None,
                out=out,
            )
            if telemetry is not None:
                telemetry.merge_stages(payload["timings"])
                telemetry.merge_counters(payload["counters"])
                telemetry.merge_memo(payload["memo"])
                telemetry.merge_store(payload.get("store"))
            outcomes.append(outcome)
            if outcome.status == "failed" and not keep_going:
                break
    if telemetry is not None:
        stats = pool.stats.to_dict()
        stats["breaker_trips"] = telemetry.memo.get("breaker_trips", 0)
        stats["breaker_recoveries"] = telemetry.memo.get("breaker_recoveries", 0)
        telemetry.merge_resilience(stats)
    return outcomes


def _summarize(outcomes: list[ExperimentOutcome], out: TextIO) -> None:
    ok = sum(1 for o in outcomes if o.status == "ok")
    skipped = sum(1 for o in outcomes if o.status == "skipped")
    failed = [o for o in outcomes if o.status == "failed"]
    line = f"suite: {ok} ok, {len(failed)} failed, {skipped} skipped"
    print(line, file=out)
    for o in failed:
        print(f"  FAILED {o.exp_id}: {o.error}", file=out)


def _positive_scale(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"scale must be a number, got {text!r}")
    if not 0.0 < value <= 1.0:
        raise argparse.ArgumentTypeError(f"scale must be in (0, 1], got {value}")
    return value


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument(
        "--scale",
        type=_positive_scale,
        default=1.0,
        help="trace-budget multiplier in (0,1]; smaller = faster",
    )
    parser.add_argument(
        "--only",
        nargs="*",
        default=None,
        help=f"experiment ids to run (default: all). Known: {', '.join(EXPERIMENTS)}",
    )
    parser.add_argument(
        "--keep-going",
        action="store_true",
        help="continue past failed experiments; summarize failures and exit nonzero",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip experiments the run journal already shows completed",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="extra attempts for a failed experiment (for seed-sensitive ablations)",
    )
    parser.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help=f"run-journal path (default {DEFAULT_JOURNAL}; journaling is on "
        "whenever --journal, --keep-going or --resume is given)",
    )
    parser.add_argument(
        "--inject-fault",
        default=None,
        metavar="ID",
        help="fault-injection drill: force this experiment to fail",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the suite (1 = serial; results are "
        "identical at any N, modulo timing fields)",
    )
    parser.add_argument(
        "--memo-dir",
        default=None,
        metavar="DIR",
        help="directory for the content-addressed simulation memo cache "
        "(persisted across runs; see docs/performance.md)",
    )
    parser.add_argument(
        "--store-dir",
        default=None,
        metavar="DIR",
        help="directory for the zero-copy content-addressed trace store: "
        "fetch streams ship to workers as ~100-byte memmap refs instead "
        "of pickled arrays (persisted across runs; see "
        "docs/performance.md)",
    )
    parser.add_argument(
        "--bench-out",
        default=None,
        metavar="PATH",
        help="write a BENCH_perf.json timing/telemetry report here",
    )
    parser.add_argument(
        "--no-fastsim",
        action="store_true",
        help="force the scalar LRU simulator for sim-channel cells instead "
        "of the stack-distance kernel (the kernel is parity-gated "
        "bit-identical; this flag exists for oracle comparison)",
    )
    parser.add_argument(
        "--no-fast-analysis",
        action="store_true",
        help="force the scalar locality models (AffinityAnalysis / "
        "build_trg) instead of the vectorized analysis kernels (also "
        "parity-gated bit-identical; for oracle comparison)",
    )
    parser.add_argument(
        "--kernel-backend",
        default=None,
        choices=("scalar", "numpy", "compiled"),
        metavar="TIER",
        help="force one kernel tier (scalar|numpy|compiled) for the hot "
        "analysis kernels instead of the fastest available; all tiers "
        "are parity-gated bit-identical (see docs/performance.md)",
    )
    parser.add_argument(
        "--chaos",
        type=int,
        default=None,
        metavar="SEED",
        help="arm the deterministic chaos harness with this seed (worker "
        "kill, hang, memo I/O faults, mid-run corruption); requires "
        "--jobs >= 2 and at least two experiments.  Outcomes must match "
        "a clean run — see docs/robustness.md",
    )
    parser.add_argument(
        "--hang-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="supervisor per-task deadline and heartbeat-stall limit "
        "(default 300; chaos runs default to 60 so injected hangs are "
        "detected quickly without outrunning honest slow experiments)",
    )
    parser.add_argument(
        "--respawn-budget",
        type=int,
        default=4,
        metavar="N",
        help="workers the supervisor may replace before giving up and "
        "resolving remaining work as failed (partial-result exit)",
    )
    args = parser.parse_args(argv)

    ids = args.only if args.only is not None else list(EXPERIMENTS)
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(
            f"error: unknown experiment id(s): {', '.join(sorted(unknown))}\n"
            f"known ids: {', '.join(EXPERIMENTS)}",
            file=sys.stderr,
        )
        return 2
    if args.retries < 0:
        print("error: --retries must be >= 0", file=sys.stderr)
        return 2
    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    if args.inject_fault is not None and args.inject_fault not in EXPERIMENTS:
        print(
            f"error: --inject-fault names unknown experiment "
            f"{args.inject_fault!r}\nknown ids: {', '.join(EXPERIMENTS)}",
            file=sys.stderr,
        )
        return 2
    if args.respawn_budget < 0:
        print("error: --respawn-budget must be >= 0", file=sys.stderr)
        return 2
    if args.hang_timeout is not None and args.hang_timeout <= 0:
        print("error: --hang-timeout must be > 0", file=sys.stderr)
        return 2
    if args.kernel_backend is not None:
        from ..perf.backends import resolve_backend

        try:
            # Strict here: a user forcing an uninstalled tier gets a loud
            # error up front.  Workers still resolve with strict=False.
            resolve_backend(args.kernel_backend)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    chaos = None
    if args.chaos is not None:
        if args.jobs < 2 or len(ids) < 2:
            print(
                "error: --chaos needs --jobs >= 2 and at least two "
                "experiments (the harness kills and hangs workers; "
                "redundancy is the point)",
                file=sys.stderr,
            )
            return 2
        from ..robust.faults import ChaosPlan

        # The chaos drill targets the memo disk tier too; give it one.
        if args.memo_dir is None:
            args.memo_dir = ".chaos-memo"
        chaos = ChaosPlan.from_seed(args.chaos, ids)
        print(f"chaos: {chaos.describe()}")
    hang_timeout_s = args.hang_timeout
    if hang_timeout_s is None:
        hang_timeout_s = 60.0 if chaos is not None else 300.0

    journal: Optional[RunJournal] = None
    if args.journal is not None or args.keep_going or args.resume:
        journal = RunJournal(Path(args.journal or DEFAULT_JOURNAL))

    memo = None
    if args.memo_dir is not None:
        from ..perf.memo import SimMemo

        memo = SimMemo(args.memo_dir)

    store = None
    if args.store_dir is not None:
        from ..perf.store import TraceStore

        store = TraceStore(args.store_dir)

    telemetry = None
    if args.bench_out is not None:
        from ..perf.backends import resolve_backend
        from ..perf.telemetry import Telemetry

        telemetry = Telemetry(
            jobs=args.jobs,
            scale=args.scale,
            kernel_backend=resolve_backend(args.kernel_backend, strict=False).name,
        )

    # With several experiments, parallelize across them; with exactly
    # one, spend the workers inside the pipeline (simulation cells)
    # instead — never both at once (no nested pools).
    suite_jobs = args.jobs if len(ids) > 1 else 1
    cell_jobs = args.jobs if len(ids) == 1 else 1
    lab = Lab(
        scale=args.scale,
        jobs=cell_jobs,
        memo=memo,
        store=store,
        use_kernel=not args.no_fastsim,
        use_fast_analysis=False if args.no_fast_analysis else None,
        kernel_backend=args.kernel_backend,
    )
    with lab:
        outcomes = run_suite(
            lab,
            ids,
            keep_going=args.keep_going,
            journal=journal,
            resume=args.resume,
            retries=args.retries,
            inject_fault=args.inject_fault,
            jobs=suite_jobs,
            telemetry=telemetry,
            chaos=chaos,
            hang_timeout_s=hang_timeout_s,
            respawn_budget=args.respawn_budget,
        )
    _summarize(outcomes, sys.stdout)
    if chaos is not None and memo is not None:
        # Leave no partial or corrupt artifact behind: drop every memo
        # entry the chaos run garbled (and any stray lock/tmp files).
        kept, dropped = memo.scrub()
        print(f"chaos scrub: {kept} memo entries kept, {dropped} dropped")
    if journal is not None:
        print(f"journal: {journal.path}")
    if telemetry is not None:
        print(f"bench: {telemetry.write(args.bench_out)}")
    return 1 if any(o.status == "failed" for o in outcomes) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
