"""Experiment registry and command-line runner.

``python -m repro.experiments`` runs every table/figure reproduction and
prints the paper-shaped output; ``--only fig5 --scale 0.25`` narrows and
shrinks the run.  The same registry backs the pytest-benchmark harness in
``benchmarks/``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from . import (
    ablations,
    exp_cache_sweep,
    exp_comparators,
    exp_fig4,
    exp_fig5,
    exp_fig6,
    exp_fig7,
    exp_intro,
    exp_model,
    exp_optopt,
    exp_scheduling,
    exp_smt_width,
    exp_table1,
    exp_table2,
    exp_unified,
)
from .pipeline import Lab
from .report import ExperimentResult

__all__ = ["EXPERIMENTS", "run_experiment", "run_all", "main"]

#: experiment id -> driver. Drivers take a Lab and return ExperimentResult.
EXPERIMENTS: dict[str, Callable[[Lab], ExperimentResult]] = {
    "intro-table": exp_intro.run,
    "table1": exp_table1.run,
    "fig4": exp_fig4.run,
    "fig5": exp_fig5.run,
    "table2": exp_table2.run,
    "fig6": exp_fig6.run,
    "fig7": exp_fig7.run,
    "optopt": exp_optopt.run,
    "comparators": exp_comparators.run,
    "unified": exp_unified.run,
    "model-validation": exp_model.run,
    "smt-width": exp_smt_width.run,
    "cache-sweep": exp_cache_sweep.run,
    "scheduling": exp_scheduling.run,
    "ablation-trg-window": ablations.run_trg_window,
    "ablation-affinity-windows": ablations.run_affinity_windows,
    "ablation-pruning": ablations.run_pruning,
    "ablation-optimal-gap": lambda lab: ablations.run_optimal_gap(lab),
    "ablation-seeds": ablations.run_seed_robustness,
}


def run_experiment(exp_id: str, lab: Lab) -> ExperimentResult:
    """Run one experiment by id against a shared lab."""
    try:
        driver = EXPERIMENTS[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known: {', '.join(EXPERIMENTS)}"
        ) from None
    return driver(lab)


def run_all(lab: Lab, only: list[str] | None = None) -> list[ExperimentResult]:
    ids = only or list(EXPERIMENTS)
    return [run_experiment(i, lab) for i in ids]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="trace-budget multiplier in (0,1]; smaller = faster",
    )
    parser.add_argument(
        "--only",
        nargs="*",
        default=None,
        help=f"experiment ids to run (default: all). Known: {', '.join(EXPERIMENTS)}",
    )
    args = parser.parse_args(argv)

    lab = Lab(scale=args.scale)
    for exp_id in args.only or list(EXPERIMENTS):
        start = time.time()
        result = run_experiment(exp_id, lab)
        elapsed = time.time() - start
        print(result.to_text())
        print(f"  [{elapsed:.1f}s]")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
