"""Extension experiment X5: would a bigger instruction cache obsolete the
optimization?

The paper's Sec. III-A argues the 32 KB L1I size is pinned by the
virtually-indexed-physically-tagged lookup trick and "is unlikely to
increase".  This driver asks the follow-up question the argument invites:
*if* it did increase, how fast would code-layout optimization stop
mattering?

For L1I sizes 16/32/64/128 KB (4-way, 64 B lines), four study programs are
evaluated baseline vs BB-affinity, solo and in co-run with the gamess
probe.  The expected pattern: the optimization's absolute win shrinks as
capacity grows, but the *co-run* win outlives the solo win by one or two
size doublings — sharing halves the effective capacity, so defensiveness
stays relevant one generation longer than locality.
"""

from __future__ import annotations

from ..cache.config import CacheConfig
from ..core.goals import relative_reduction
from .pipeline import BASELINE, Lab
from .report import ExperimentResult, pct

__all__ = ["run", "SWEEP_SIZES_KB", "SWEEP_PROGRAMS"]

SWEEP_SIZES_KB = (16, 32, 64, 128)
SWEEP_PROGRAMS = ("syn-gcc", "syn-gobmk", "syn-sjeng", "syn-omnetpp")
_OPT = "bb-affinity"
_PROBE = "syn-gamess"


def run(lab: Lab) -> ExperimentResult:
    rows = []
    summary: dict[str, float] = {}
    for size_kb in SWEEP_SIZES_KB:
        cfg = CacheConfig(size_bytes=size_kb * 1024, assoc=4, line_bytes=64)
        # Co-runs need a lab at the sweep geometry (shared-cache
        # interleaving depends on the full config); solo sim cells do
        # not — with the kernel they read the parent lab's per-n_sets
        # stack-distance histograms, so the sweep shares one prepared
        # program/layout/stream set (line size is 64 B throughout)
        # instead of rebuilding it per size.
        sub = Lab(
            cache_cfg=cfg,
            scale=lab.scale,
            quantum=lab.quantum,
            noise_sigma=lab.noise_sigma,
            timing=lab.timing,
            use_kernel=lab.use_kernel,
        )
        for name in SWEEP_PROGRAMS:
            if lab.use_kernel:
                instr = lab.program(name).instr_count
                solo_b = lab.histogram(name, BASELINE, cfg.n_sets).misses(cfg.assoc)
                solo_o = lab.histogram(name, _OPT, cfg.n_sets).misses(cfg.assoc)
                solo_b, solo_o = solo_b / instr, solo_o / instr
            else:
                solo_b = sub.solo_miss(name, BASELINE, channel="sim").ratio
                solo_o = sub.solo_miss(name, _OPT, channel="sim").ratio
            corun_b = sub.corun_miss((name, BASELINE), (_PROBE, BASELINE), "sim")[0].ratio
            corun_o = sub.corun_miss((name, _OPT), (_PROBE, BASELINE), "sim")[0].ratio
            solo_red = relative_reduction(solo_b, solo_o)
            corun_red = relative_reduction(corun_b, corun_o)
            rows.append(
                [
                    f"{size_kb}KB",
                    name,
                    pct(solo_b, signed=False),
                    pct(solo_red),
                    pct(corun_b, signed=False),
                    pct(corun_red),
                ]
            )
            key = f"{size_kb}kb/{name}"
            summary[f"{key}/solo_base"] = solo_b
            summary[f"{key}/solo_reduction"] = solo_red
            summary[f"{key}/corun_base"] = corun_b
            summary[f"{key}/corun_reduction"] = corun_red
    return ExperimentResult(
        exp_id="cache-sweep",
        title="Extension: L1I size sweep — how fast would a bigger cache "
        "obsolete layout optimization?",
        headers=[
            "L1I size",
            "program",
            "solo base mr",
            "solo reduction",
            "co-run base mr",
            "co-run reduction",
        ],
        rows=rows,
        summary=summary,
        notes=[f"optimizer: {_OPT}; probe: {_PROBE}; 4-way, 64B lines throughout"],
    )
