"""Table I: characteristics of the 8 study programs.

Columns mirror the paper: dynamic instruction count, static code size, and
L1 I-cache miss ratios solo and in co-run with the two probe programs
(hardware channel).  Absolute magnitudes differ from the paper (our
substrate runs millions, not billions, of instructions); the *relations*
— which programs are large, which miss ratios inflate under co-run — are
the reproduction target.
"""

from __future__ import annotations

from ..workloads.suite import PROBE_PROGRAMS, STUDY_PROGRAMS
from .pipeline import BASELINE, Lab
from .report import ExperimentResult, pct

__all__ = ["run"]


def run(lab: Lab) -> ExperimentResult:
    probe1, probe2 = PROBE_PROGRAMS
    rows = []
    summary: dict[str, float] = {}
    # The solo cells are independent; fan them out when the lab has jobs.
    lab.precompute_solo([(name, BASELINE, "hw") for name in STUDY_PROGRAMS])
    for name in STUDY_PROGRAMS:
        prepared = lab.program(name)
        layout = lab.layout(name, BASELINE)
        solo = lab.solo_miss(name, BASELINE, channel="hw").ratio
        c1 = lab.corun_miss((name, BASELINE), (probe1, BASELINE))[0].ratio
        c2 = lab.corun_miss((name, BASELINE), (probe2, BASELINE))[0].ratio
        rows.append(
            [
                name,
                f"{prepared.instr_count / 1e6:.2f}M",
                f"{layout.total_bytes / 1024:.1f}K",
                pct(solo, signed=False),
                pct(c1, signed=False),
                pct(c2, signed=False),
            ]
        )
        summary[f"{name}/solo"] = solo
        summary[f"{name}/corun_gcc"] = c1
        summary[f"{name}/corun_gamess"] = c2
    return ExperimentResult(
        exp_id="table1",
        title="Characteristics of the 8 study programs "
        "(dynamic instructions, static size, L1I miss ratios)",
        headers=[
            "program",
            "dyn. instr",
            "static size",
            "solo miss",
            f"co-run {probe1}",
            f"co-run {probe2}",
        ],
        rows=rows,
        summary=summary,
    )
