"""Extension experiment X5: how far does a profile-free build carry?

The paper's pipeline is profile-guided: instrument, run the test input,
feed the trace to the layout optimizers.  :mod:`repro.staticlint`
replaces the test run with a purely static frequency estimate
(Ball–Larus-style branch heuristics propagated through a Markov chain).
This experiment quantifies both halves of that substitution per study
program:

* **certification** — Spearman rank agreement between the static
  predictions and the trace-driven simulator: per-line conflict scores
  vs. measured per-line reuse misses, and per-block estimated frequency
  vs. measured execution counts (see :mod:`repro.staticlint.certify`);
* **end-to-end quality** — solo miss ratio of the ``bb-affinity`` layout
  when the optimizer is driven by the static profile instead of the
  trace, against the baseline and trace-driven layouts.  The ``recovered``
  column is the fraction of the trace-driven improvement the profile-free
  build achieves (1.0 = as good as profiling, 0.0 = no better than
  baseline).

Both labs share scale and cache; evaluation always uses the real
ref-input trace, so the comparison isolates the profile source.
"""

from __future__ import annotations

from ..staticlint.certify import certify_program
from ..workloads.suite import STUDY_PROGRAMS
from .pipeline import BASELINE, Lab
from .report import ExperimentResult, ratio

__all__ = ["run"]

#: the optimizer whose profile sensitivity is measured.
_OPT = "bb-affinity"


def run(lab: Lab) -> ExperimentResult:
    static_lab = Lab(
        cache_cfg=lab.cache_cfg,
        scale=lab.scale,
        optimizer_config=lab.optimizer_config,
        quantum=lab.quantum,
        noise_sigma=lab.noise_sigma,
        timing=lab.timing,
        use_kernel=lab.use_kernel,
        profile_source="static",
    )

    rows = []
    summary: dict[str, float] = {}
    rhos, hot_rhos, recovered_fracs = [], [], []
    for name in STUDY_PROGRAMS:
        cert = certify_program(name, lab=lab)

        base = lab.solo_miss(name, BASELINE, channel="sim")
        traced = lab.solo_miss(name, _OPT, channel="sim")
        static = static_lab.solo_miss(name, _OPT, channel="sim")
        base_mr, traced_mr, static_mr = base.ratio, traced.ratio, static.ratio
        gain = base_mr - traced_mr
        recovered = (base_mr - static_mr) / gain if gain > 0 else 1.0

        rows.append(
            [
                name,
                ratio(cert.conflict_rho, 3),
                ratio(cert.hotness_rho, 3),
                ratio(base_mr, 4),
                ratio(traced_mr, 4),
                ratio(static_mr, 4),
                ratio(recovered, 3),
            ]
        )
        summary[f"{name}/conflict_rho"] = cert.conflict_rho
        summary[f"{name}/recovered"] = recovered
        # Degenerate programs (no oversubscribed set -> rho pinned at 0)
        # are excluded from the headline mean, not hidden from the table.
        if cert.n_conflict_lines:
            rhos.append(cert.conflict_rho)
        hot_rhos.append(cert.hotness_rho)
        recovered_fracs.append(recovered)

    summary["mean_conflict_rho"] = sum(rhos) / len(rhos) if rhos else 0.0
    summary["mean_hotness_rho"] = sum(hot_rhos) / len(hot_rhos)
    summary["mean_recovered"] = sum(recovered_fracs) / len(recovered_fracs)

    # Fold the static lab's telemetry into the shared lab so a bench
    # report covers both channels.
    for key, value in static_lab.counters.items():
        lab.counters[key] = lab.counters.get(key, 0) + value
    for stage, seconds in static_lab.timings.items():
        lab.timings[stage] = lab.timings.get(stage, 0.0) + seconds

    return ExperimentResult(
        exp_id="staticlint-certify",
        title=f"Static analysis certification + profile-free {_OPT} quality",
        headers=[
            "program",
            "conflict_rho",
            "hotness_rho",
            "baseline",
            f"{_OPT} (trace)",
            f"{_OPT} (static)",
            "recovered",
        ],
        rows=rows,
        summary=summary,
        notes=[
            "rho: Spearman static-vs-measured (conflict: per-line reuse misses;"
            " hotness: per-block counts)",
            "recovered: fraction of the trace-driven miss-ratio gain kept"
            " without any profiling",
            "mean_conflict_rho excludes programs with no oversubscribed set",
        ],
    )
