"""Section III-F: combining defensiveness and politeness.

The paper selected the three programs that function affinity improves most
and ran them optimized-optimized; compared with optimized-baseline co-runs
it saw "only negligible improvements (but no slowdown)" — optimizing one
side already removes the instruction-cache contention.

This driver picks the top-3 programs by average function-affinity co-run
speedup, then compares optimized+optimized against optimized+baseline for
each ordered pair, reporting the additional speedup of the measured
program.
"""

from __future__ import annotations

from itertools import permutations

from ..workloads.suite import STUDY_PROGRAMS
from .exp_fig7 import FIG7_OPTIMIZER
from .pipeline import BASELINE, Lab
from .report import ExperimentResult, pct

__all__ = ["run", "top_programs"]


def top_programs(lab: Lab, k: int = 3) -> list[str]:
    """The k study programs with the best average function-affinity co-run speedup."""
    averages: list[tuple[float, str]] = []
    for name in STUDY_PROGRAMS:
        values = [
            lab.corun_speedup(name, FIG7_OPTIMIZER, probe) - 1.0
            for probe in STUDY_PROGRAMS
        ]
        averages.append((sum(values) / len(values), name))
    averages.sort(reverse=True)
    return [name for _, name in averages[:k]]


def run(lab: Lab) -> ExperimentResult:
    opt = FIG7_OPTIMIZER
    best = top_programs(lab)
    rows = []
    summary: dict[str, float] = {}
    deltas: list[float] = []
    for a, b in permutations(best, 2):
        # measured program a; peer b either baseline or optimized.
        one_sided = lab.corun_timing((a, opt), (b, BASELINE)).corun_cycles[0]
        both_sided = lab.corun_timing((a, opt), (b, opt)).corun_cycles[0]
        delta = one_sided / both_sided - 1.0
        deltas.append(delta)
        pair = f"{a.replace('syn-', '')} vs {b.replace('syn-', '')}"
        rows.append([pair, pct(delta)])
        summary[f"{pair}/extra_speedup"] = delta
    summary["avg_extra_speedup"] = sum(deltas) / len(deltas) if deltas else 0.0
    summary["max_extra_speedup"] = max(deltas) if deltas else 0.0
    return ExperimentResult(
        exp_id="optopt",
        title="Optimized+optimized vs optimized+baseline co-run "
        "(paper: negligible further improvement, no slowdown)",
        headers=["pair (measured vs peer)", "extra speedup from optimizing peer"],
        rows=rows,
        summary=summary,
        notes=[f"top-3 programs: {', '.join(best)}"],
    )
