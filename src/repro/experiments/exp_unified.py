"""Extension experiment X2: layout benefits in the unified cache (Eq. 1).

The paper's benefit classification (Sec. II-A) distinguishes the
instruction cache (Eq. 2) from the *unified* lower-level cache, where
instruction misses compete with data misses:

    ``P(self.miss) = P(self.FP.(inst+data) + peer.FP.(inst+data) >= C)``

This driver runs merged instruction+data streams through the two-level
hierarchy (split 32 KB L1s over a 256 KB unified L2, all shared by the
hyper-threads) and reports, per study program and layout:

* L1I miss ratio (should match the L1-only experiments),
* self L2 misses per instruction, solo and co-run,
* the *peer's* L2 misses per instruction in the co-run — politeness in
  the unified cache: our instruction misses no longer flood L2, so the
  peer's data keeps its L2 share.
"""

from __future__ import annotations

from ..cache.hierarchy import PAPER_HIERARCHY, simulate_hierarchy, simulate_hierarchy_shared
from ..core.goals import relative_reduction
from ..engine.datastream import merged_stream
from .pipeline import BASELINE, Lab, THREAD_STRIDE
from .report import ExperimentResult, pct, ratio

__all__ = ["run", "UNIFIED_PROGRAMS", "UNIFIED_LAYOUTS"]

#: study subset used for the hierarchy runs (kept small: the two-level
#: simulation is ~2x the L1-only cost per pair).
UNIFIED_PROGRAMS = ("syn-gcc", "syn-sjeng", "syn-omnetpp", "syn-mcf")
UNIFIED_LAYOUTS = (BASELINE, "function-affinity", "bb-affinity")
_PROBE = "syn-gamess"


def _merged(lab: Lab, name: str, layout_name: str):
    prepared = lab.program(name)
    amap = lab.layout(name, layout_name).address_map
    return merged_stream(
        prepared.ref_bundle.bb_trace,
        amap,
        lab.cache_cfg.line_bytes,
        prepared.module,
    )


def run(lab: Lab) -> ExperimentResult:
    rows = []
    summary: dict[str, float] = {}
    probe_lines, probe_data = _merged(lab, _PROBE, BASELINE)
    probe_lines = probe_lines + THREAD_STRIDE

    for name in UNIFIED_PROGRAMS:
        prepared = lab.program(name)
        instr = prepared.instr_count
        base_self_l2 = None
        base_peer_l2 = None
        for layout_name in UNIFIED_LAYOUTS:
            if layout_name.startswith("bb") and not lab.supports(name, "bb-affinity"):
                rows.append([name, layout_name, "N/A", "N/A", "N/A", "N/A"])
                continue
            lines, is_data = _merged(lab, name, layout_name)
            solo = simulate_hierarchy(lines, is_data, PAPER_HIERARCHY)
            shared = simulate_hierarchy_shared(
                [(lines, is_data), (probe_lines, probe_data)],
                PAPER_HIERARCHY,
                quantum=lab.quantum,
            )
            self_st, peer_st = shared[0], shared[1]
            # normalize wrapped passes to one pass each.
            self_scale = lines.shape[0] / max(
                1, self_st.l1i.accesses + self_st.l1d.accesses
            )
            peer_scale = probe_lines.shape[0] / max(
                1, peer_st.l1i.accesses + peer_st.l1d.accesses
            )
            solo_l2 = solo.l2.misses / instr
            corun_self_l2 = self_st.l2.misses * self_scale / instr
            peer_instr = lab.program(_PROBE).instr_count
            corun_peer_l2 = peer_st.l2.misses * peer_scale / peer_instr
            l1i_mr = solo.l1i.misses / instr

            key = f"{name}/{layout_name}"
            summary[f"{key}/l1i"] = l1i_mr
            summary[f"{key}/solo_l2"] = solo_l2
            summary[f"{key}/corun_self_l2"] = corun_self_l2
            summary[f"{key}/corun_peer_l2"] = corun_peer_l2
            if layout_name == BASELINE:
                base_self_l2 = corun_self_l2
                base_peer_l2 = corun_peer_l2
            else:
                if base_self_l2:
                    summary[f"{key}/defensiveness_l2"] = relative_reduction(
                        base_self_l2, corun_self_l2
                    )
                if base_peer_l2:
                    summary[f"{key}/politeness_l2"] = relative_reduction(
                        base_peer_l2, corun_peer_l2
                    )
            rows.append(
                [
                    name,
                    layout_name,
                    pct(l1i_mr, signed=False),
                    ratio(solo_l2, 4),
                    ratio(corun_self_l2, 4),
                    ratio(corun_peer_l2, 4),
                ]
            )
    return ExperimentResult(
        exp_id="unified",
        title="Extension: Eq. 1 in the unified L2 — instruction+data "
        "competition, solo and under co-run",
        headers=[
            "program",
            "layout",
            "L1I miss",
            "solo L2/instr",
            "co-run self L2/instr",
            "co-run peer L2/instr",
        ],
        rows=rows,
        summary=summary,
        notes=[f"probe: {_PROBE}; hierarchy: 32K L1I + 32K L1D + 256K unified L2"],
    )
