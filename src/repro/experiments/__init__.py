"""Evaluation harness: one driver per paper table/figure, plus ablations.

Run everything with ``python -m repro.experiments`` (see
:mod:`repro.experiments.runner`).
"""

from .pipeline import BASELINE, Lab, MissRatios, PreparedProgram
from .report import ExperimentResult, format_table, pct, ratio

__all__ = [
    "BASELINE",
    "ExperimentResult",
    "Lab",
    "MissRatios",
    "PreparedProgram",
    "format_table",
    "pct",
    "ratio",
]
