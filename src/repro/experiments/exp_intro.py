"""Intro table: average I-cache miss ratio, solo vs two hyper-threaded
co-runs (paper Sec. I).

The paper found 9 of 29 SPEC programs with non-trivial instruction miss
ratios; across them the average miss ratio rose from 1.5% solo to 2.5%
(co-run 1) and 3.8% (co-run 2) — +67% and +153%.  This driver selects the
non-trivial-miss programs of the synthetic suite the same way (solo hw
miss ratio above a threshold) and reports the same three averages.
"""

from __future__ import annotations

from ..workloads.suite import ALL_PROGRAMS, PROBE_PROGRAMS
from .pipeline import BASELINE, Lab
from .report import ExperimentResult, pct, ratio

__all__ = ["run", "NONTRIVIAL_MISS_THRESHOLD"]

#: solo miss-per-instruction ratio above which a program counts as having a
#: "non-trivial" instruction-cache miss ratio.  At this threshold the
#: full-scale suite selects 9 of 29 programs, matching the paper's count.
NONTRIVIAL_MISS_THRESHOLD = 0.0012


def run(lab: Lab) -> ExperimentResult:
    probe1, probe2 = PROBE_PROGRAMS
    selected: list[str] = []
    solo_ratios: list[float] = []
    corun1: list[float] = []
    corun2: list[float] = []

    for name in ALL_PROGRAMS:
        solo = lab.solo_miss(name, BASELINE, channel="hw").ratio
        if solo < NONTRIVIAL_MISS_THRESHOLD:
            continue
        selected.append(name)
        solo_ratios.append(solo)
        corun1.append(lab.corun_miss((name, BASELINE), (probe1, BASELINE))[0].ratio)
        corun2.append(lab.corun_miss((name, BASELINE), (probe2, BASELINE))[0].ratio)

    n = len(selected)
    avg_solo = sum(solo_ratios) / n if n else 0.0
    avg_c1 = sum(corun1) / n if n else 0.0
    avg_c2 = sum(corun2) / n if n else 0.0
    inc1 = (avg_c1 - avg_solo) / avg_solo if avg_solo else 0.0
    inc2 = (avg_c2 - avg_solo) / avg_solo if avg_solo else 0.0

    result = ExperimentResult(
        exp_id="intro-table",
        title="Average miss ratio: solo vs hyper-threaded co-runs "
        "(paper: 1.5% / 2.5% / 3.8%; +67% / +153%)",
        headers=["config", "avg. miss ratio", "increase over solo"],
        rows=[
            ["solo", pct(avg_solo, signed=False), "--"],
            [f"co-run 1 ({probe1})", pct(avg_c1, signed=False), pct(inc1)],
            [f"co-run 2 ({probe2})", pct(avg_c2, signed=False), pct(inc2)],
        ],
        summary={
            "n_nontrivial_programs": float(n),
            "avg_solo": avg_solo,
            "avg_corun1": avg_c1,
            "avg_corun2": avg_c2,
            "increase_corun1": inc1,
            "increase_corun2": inc2,
        },
        notes=[f"selected programs: {', '.join(selected)}"],
    )
    return result
