"""Figure 6: per-probe co-run speedups of the three optimizers.

One sub-figure per optimizer; bars are the speedup of the optimized target
co-running with each original probe, normalized to the original+original
co-run.  Reproduction targets: affinity optimizers occasionally lose a
single pairing but improve every program on average; function TRG is
consistently beneficial except on (at least) one program where it
consistently hurts.
"""

from __future__ import annotations

from ..workloads.suite import STUDY_PROGRAMS
from .exp_table2 import TABLE2_OPTIMIZERS
from .pipeline import Lab
from .report import ExperimentResult, pct

__all__ = ["run"]


def run(lab: Lab) -> ExperimentResult:
    probes = list(STUDY_PROGRAMS)
    rows = []
    summary: dict[str, float] = {}
    for opt in TABLE2_OPTIMIZERS:
        for target in STUDY_PROGRAMS:
            if not lab.supports(target, opt):
                rows.append([opt, target] + ["N/A"] * len(probes) + ["N/A"])
                continue
            cells = []
            values = []
            for probe in probes:
                s = lab.corun_speedup(target, opt, probe) - 1.0
                cells.append(pct(s, digits=1))
                values.append(s)
                summary[f"{opt}/{target}/{probe}"] = s
            avg = sum(values) / len(values)
            summary[f"{opt}/{target}/avg"] = avg
            rows.append([opt, target] + cells + [pct(avg, digits=1)])
    short_probes = [p.replace("syn-", "") for p in probes]
    return ExperimentResult(
        exp_id="fig6",
        title="Co-run speedup per (optimizer, target, probe): "
        "optimized+original vs original+original",
        headers=["optimizer", "target"] + short_probes + ["avg"],
        rows=rows,
        summary=summary,
    )
