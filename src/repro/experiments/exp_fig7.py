"""Figure 7: hyper-threading throughput and its magnification by function
affinity.

(a) throughput improvement of the baseline co-run over running both
programs back-to-back solo (paper: 15% to over 30%);
(b) the additional improvement when the *first* program of each pair is
optimized with function affinity, expressed as the ratio of the two
throughput improvements minus one (paper: mean +7.9%, 16/28 pairs over
+5.6%, 9/28 over +10%, max +26%, one degradation of -8% at 453-453).

The paper's Fig. 7 uses 7 of the 8 study programs (gobmk is absent from
its x-axis), i.e. 28 unordered pairs including self-pairs; we reproduce
that selection.
"""

from __future__ import annotations

from itertools import combinations_with_replacement

from ..workloads.suite import STUDY_PROGRAMS
from .pipeline import BASELINE, Lab
from .report import ExperimentResult, ascii_bars, pct

__all__ = ["run", "FIG7_PROGRAMS", "FIG7_OPTIMIZER"]

#: the paper's Fig. 7 program subset (study set minus gobmk): 28 pairs.
FIG7_PROGRAMS = [p for p in STUDY_PROGRAMS if p != "syn-gobmk"]

FIG7_OPTIMIZER = "function-affinity"


def run(lab: Lab) -> ExperimentResult:
    rows = []
    summary: dict[str, float] = {}
    magnifications: list[float] = []
    for a, b in combinations_with_replacement(FIG7_PROGRAMS, 2):
        base = lab.corun_timing((a, BASELINE), (b, BASELINE))
        opt = lab.corun_timing((a, FIG7_OPTIMIZER), (b, BASELINE))
        # Throughput counts finished jobs per unit time, so both co-runs
        # are referenced to the *baseline* solo executions: the optimized
        # binary completes the same jobs, only the makespan changes.
        serial = base.solo_cycles[0] + base.solo_cycles[1]
        thr_base = serial / base.makespan - 1.0
        thr_opt = serial / opt.makespan - 1.0
        magnification = thr_opt / thr_base - 1.0 if thr_base else 0.0
        magnifications.append(magnification)
        pair = f"{a.replace('syn-', '')}-{b.replace('syn-', '')}"
        rows.append(
            [pair, pct(thr_base, signed=False), pct(thr_opt, signed=False), pct(magnification)]
        )
        summary[f"{pair}/base_throughput"] = thr_base
        summary[f"{pair}/opt_throughput"] = thr_opt
        summary[f"{pair}/magnification"] = magnification

    n = len(magnifications)
    summary["n_pairs"] = float(n)
    summary["avg_magnification"] = sum(magnifications) / n
    summary["max_magnification"] = max(magnifications)
    summary["min_magnification"] = min(magnifications)
    summary["frac_over_5.6pct"] = sum(m > 0.056 for m in magnifications) / n
    summary["frac_over_10pct"] = sum(m >= 0.10 for m in magnifications) / n
    summary["n_degradations"] = float(sum(m < 0 for m in magnifications))
    bars_a = [
        (r[0], summary[f"{r[0]}/base_throughput"]) for r in rows
    ]
    bars_b = [
        (r[0], summary[f"{r[0]}/magnification"]) for r in rows
    ]
    return ExperimentResult(
        exp_id="fig7",
        title="Hyper-threading throughput: baseline co-run benefit and "
        "function-affinity magnification (paper avg +7.9%)",
        headers=["pair", "base co-run thr.", "opt co-run thr.", "magnification"],
        rows=rows,
        summary=summary,
        charts=[
            ("Fig. 7a — co-run throughput improvement, baseline", ascii_bars(bars_a)),
            ("Fig. 7b — magnification by function affinity", ascii_bars(bars_b)),
        ],
    )
