"""Figure 5: solo-run effect of the two affinity optimizers.

(a) end-to-end speedup and (b) I-cache miss-ratio reduction (hardware
counters) for function-affinity and BB-affinity reordering across the 8
study programs.  Paper shapes: speedups modest (-1% .. +3%) while miss
reductions are dramatic (up to ~37%) — the data-intensity argument.
Programs whose BB reordering the paper's compiler could not handle
(perlbench, povray) report "N/A".
"""

from __future__ import annotations

from ..core.goals import relative_reduction
from ..workloads.suite import STUDY_PROGRAMS
from .pipeline import BASELINE, Lab
from .report import ExperimentResult, ascii_bars, pct

__all__ = ["run", "AFFINITY_OPTIMIZERS"]

AFFINITY_OPTIMIZERS = ("function-affinity", "bb-affinity")


def run(lab: Lab) -> ExperimentResult:
    rows = []
    summary: dict[str, float] = {}
    # Solo cells for the baseline and both affinity layouts are
    # independent (program, layout) simulations; fan them out.
    lab.precompute_solo(
        [
            (name, layout, "hw")
            for name in STUDY_PROGRAMS
            for layout in (BASELINE, *AFFINITY_OPTIMIZERS)
            if lab.supports(name, layout)
        ]
    )
    for name in STUDY_PROGRAMS:
        base_cost = lab.solo_cost(name, BASELINE)
        base_miss = lab.solo_miss(name, BASELINE, channel="hw").ratio
        row = [name]
        for opt in AFFINITY_OPTIMIZERS:
            if not lab.supports(name, opt):
                row.extend(["N/A", "N/A"])
                continue
            cost = lab.solo_cost(name, opt)
            miss = lab.solo_miss(name, opt, channel="hw").ratio
            speedup = base_cost.total_cycles / cost.total_cycles - 1.0
            reduction = relative_reduction(base_miss, miss)
            row.extend([pct(speedup), pct(reduction)])
            summary[f"{name}/{opt}/speedup"] = speedup
            summary[f"{name}/{opt}/miss_reduction"] = reduction
        rows.append(row)
    speed_bars = [
        (k.split("/")[0].replace("syn-", "") + "/" + k.split("/")[1][:5], v)
        for k, v in summary.items()
        if k.endswith("/speedup")
    ]
    return ExperimentResult(
        exp_id="fig5",
        title="Solo-run effect of the affinity optimizers: speedup and "
        "hw-counter miss reduction (paper: <=3% speedup, up to ~37% misses)",
        headers=[
            "program",
            "f-aff speedup",
            "f-aff miss red.",
            "bb-aff speedup",
            "bb-aff miss red.",
        ],
        rows=rows,
        summary=summary,
        charts=[("Fig. 5a — solo speedups", ascii_bars(speed_bars))],
    )
