"""Ablation studies for the design choices DESIGN.md calls out.

* **A1 — TRG window sensitivity** (paper Sec. III-C: "TRG is sensitive to
  the window size 2C; its improvement is fragile"): sweep the Gloy-Smith
  window factor and watch function-TRG's miss reduction swing.
* **A2 — affinity window range and coverage**: the paper chooses w in
  2..20 and strict coverage; compare against single windows, wider ranges,
  and relaxed coverage thresholds.
* **A3 — trace pruning** (paper Sec. II-F: top-10,000 blocks keep >90% of
  the trace): keep-ratio and downstream effect of the pruning budget.
* **A4 — the Petrank-Rawitz wall** (paper Sec. III-D): on a tiny program,
  exhaustively search all layouts; measure how close affinity and TRG get
  to the true optimum that is NP-hard (and inapproximable) in general.
* **A5 — seed robustness**: the paper calls affinity "robust" and TRG
  "fragile"; regenerate one program template under many structure seeds
  and report each optimizer's mean and spread.
"""

from __future__ import annotations

from itertools import permutations

import numpy as np

from ..cache.config import CacheConfig
from ..cache.fastsim import simulate_fast
from ..cache.setassoc import simulate
from ..core.goals import relative_reduction
from ..core.layout import Granularity
from ..core.optimizers import Model, OptimizerConfig, optimize
from ..engine.fetch import fetch_lines
from ..engine.instrument import collect_trace
from ..engine.state import InputSpec
from ..ir.builder import ModuleBuilder
from ..ir.transforms import reorder_basic_blocks
from ..trace.prune import prune_top_k
from ..trace.trim import trim
from .pipeline import BASELINE, Lab
from .report import ExperimentResult, pct, ratio

__all__ = [
    "run_trg_window",
    "run_affinity_windows",
    "run_pruning",
    "run_optimal_gap",
    "run_seed_robustness",
    "ABLATIONS",
]


def _solo_reduction(lab: Lab, name: str, layout_result, channel: str = "sim") -> float:
    """Solo miss reduction of an ad-hoc layout vs baseline (sim channel)."""
    prepared = lab.program(name)
    base = lab.solo_miss(name, BASELINE, channel=channel).ratio
    stream = fetch_lines(
        prepared.ref_bundle.bb_trace,
        layout_result.address_map,
        lab.cache_cfg.line_bytes,
    )
    if channel == "hw":
        stats = simulate(stream, lab.cache_cfg, prefetch=True)
    elif lab.use_kernel:
        stats = simulate_fast(stream, lab.cache_cfg)
    else:
        stats = simulate(stream, lab.cache_cfg, prefetch=False)
    mr = stats.misses / prepared.instr_count
    return relative_reduction(base, mr)


def run_trg_window(lab: Lab, program: str = "syn-gcc") -> ExperimentResult:
    """A1: function-TRG miss reduction across window factors.

    Sub-capacity windows (0.1C, 0.25C) blind the model to long-range
    conflicts; oversized windows blur phase-local patterns — the sweep
    exposes the fragility the paper attributes to the 2C constant.
    """
    rows = []
    summary: dict[str, float] = {}
    for factor in (0.1, 0.25, 0.5, 1.0, 2.0, 8.0):
        cfg = OptimizerConfig(cache=lab.cache_cfg, trg_window_factor=factor)
        layout = lab.optimize(program, Granularity.FUNCTION, Model.TRG, cfg)
        red = _solo_reduction(lab, program, layout)
        rows.append([f"{factor}C", pct(red)])
        summary[f"factor_{factor}"] = red
    values = list(summary.values())
    summary["spread"] = max(values) - min(values)
    return ExperimentResult(
        exp_id="ablation-trg-window",
        title=f"TRG window-factor sensitivity on {program} "
        "(paper: fragile around the recommended 2C)",
        headers=["window", "solo miss reduction (sim)"],
        rows=rows,
        summary=summary,
    )


def run_affinity_windows(lab: Lab, program: str = "syn-gcc") -> ExperimentResult:
    """A2: affinity w-range and coverage-threshold ablation.

    The expected outcome is *robustness* — the paper's reason for choosing
    w in 2..20 is that the hierarchy is insensitive to the exact range; the
    degenerate configs (w<=3, coverage 0.5) bound how much of the win comes
    from the hierarchy at all.
    """
    rows = []
    summary: dict[str, float] = {}
    configs = [
        ("w=2..20 cov=1.0 (paper)", dict(w_min=2, w_max=20, coverage=1.0)),
        ("w=2..3   cov=1.0", dict(w_min=2, w_max=3, coverage=1.0)),
        ("w=2..8   cov=1.0", dict(w_min=2, w_max=8, coverage=1.0)),
        ("w=8 only cov=1.0", dict(w_min=8, w_max=8, coverage=1.0)),
        ("w=2..40  cov=1.0", dict(w_min=2, w_max=40, coverage=1.0)),
        ("w=2..20 cov=0.9", dict(w_min=2, w_max=20, coverage=0.9)),
        ("w=2..20 cov=0.5", dict(w_min=2, w_max=20, coverage=0.5)),
    ]
    for label, kw in configs:
        cfg = OptimizerConfig(cache=lab.cache_cfg, **kw)
        layout = lab.optimize(program, Granularity.BASIC_BLOCK, Model.AFFINITY, cfg)
        red = _solo_reduction(lab, program, layout)
        rows.append([label, pct(red)])
        summary[label] = red
    return ExperimentResult(
        exp_id="ablation-affinity-window",
        title=f"Affinity window-range / coverage ablation on {program}",
        headers=["config", "solo miss reduction (sim)"],
        rows=rows,
        summary=summary,
    )


def run_pruning(lab: Lab, program: str = "syn-gcc") -> ExperimentResult:
    """A3: popularity-pruning budget: keep ratio and downstream effect."""
    prepared = lab.program(program)
    trimmed = trim(prepared.test_bundle.bb_trace)
    rows = []
    summary: dict[str, float] = {}
    for k in (25, 100, 400, 10_000):
        pruned = prune_top_k(trimmed, k)
        cfg = OptimizerConfig(cache=lab.cache_cfg, prune_k=k)
        layout = lab.optimize(program, Granularity.BASIC_BLOCK, Model.AFFINITY, cfg)
        red = _solo_reduction(lab, program, layout)
        rows.append(
            [str(k), pct(pruned.keep_ratio, signed=False), pct(red)]
        )
        summary[f"k{k}/keep_ratio"] = pruned.keep_ratio
        summary[f"k{k}/reduction"] = red
    return ExperimentResult(
        exp_id="ablation-pruning",
        title=f"Trace-pruning budget on {program} "
        "(paper: top-10k blocks keep >90% of the trace)",
        headers=["top-k", "keep ratio", "bb-affinity miss reduction (sim)"],
        rows=rows,
        summary=summary,
    )


def _tiny_module():
    """A 10-block two-leaf program for exhaustive layout search.

    Deliberately irregular block sizes make line packing matter, so the
    720 leaf-block permutations span a wide miss range in the doll-house
    cache (roughly 1.7x between best and worst).
    """
    sizes = iter((4, 9, 6, 11, 5, 13))
    b = ModuleBuilder("tiny")
    f = b.function("main")
    f.block("entry", 3).loop("callx", "done", trips=400)
    f.block("callx", 2).call("x", return_to="cally")
    f.block("cally", 2).call("y", return_to="entry")
    f.block("done", 1).exit()
    for fname in ("x", "y"):
        g = b.function(fname)
        g.block("e", next(sizes)).branch(
            "a", "b", taken_prob=0.9, phase_prob=0.1, phase_period=48
        )
        g.block("a", next(sizes)).ret()
        g.block("b", next(sizes)).ret()
    return b.build()


def run_optimal_gap(lab: Lab | None = None) -> ExperimentResult:
    """A4: exhaustive optimal layout vs affinity/TRG on a tiny program.

    Uses a doll-house cache (256 B direct-mapped, 16 B lines) so layout
    actually matters at this scale.  ``lab`` is unused (kept for registry
    uniformity).
    """
    module = _tiny_module()
    cache = CacheConfig(size_bytes=128, assoc=1, line_bytes=16)
    spec = InputSpec("ref", seed=11, max_blocks=4_000)
    bundle = collect_trace(module, spec)
    # 720+ cold prefetch-free simulations: the kernel's home turf.
    sim = simulate_fast if lab is None or lab.use_kernel else simulate

    def misses(layout) -> int:
        stream = fetch_lines(bundle.bb_trace, layout.address_map, cache.line_bytes)
        return sim(stream, cache).misses

    # All candidates live in the same stub-charged address space, so the
    # comparison isolates pure ordering (baseline_layout would be 4 bytes
    # smaller per function and not comparable).
    main_gids = [blk.gid for blk in module.function("main").blocks]
    leaf_gids = [
        blk.gid for f in module.functions if f.name != "main" for blk in f.blocks
    ]
    base = misses(reorder_basic_blocks(module, main_gids + leaf_gids))

    cfg = OptimizerConfig(cache=cache, w_max=8)
    aff = misses(
        optimize(module, bundle, Granularity.BASIC_BLOCK, Model.AFFINITY, cfg)
    )
    trg = misses(optimize(module, bundle, Granularity.BASIC_BLOCK, Model.TRG, cfg))

    # Exhaustive search over leaf-block orders (main blocks pinned first).
    best = None
    worst = None
    for perm in permutations(leaf_gids):
        m = misses(reorder_basic_blocks(module, main_gids + list(perm)))
        best = m if best is None else min(best, m)
        worst = m if worst is None else max(worst, m)

    rows = [
        ["source order", str(base), ratio(base / best, 3)],
        ["bb-affinity", str(aff), ratio(aff / best, 3)],
        ["bb-trg", str(trg), ratio(trg / best, 3)],
        ["optimal (exhaustive)", str(best), "1.000"],
        ["worst (exhaustive)", str(worst), ratio(worst / best, 3)],
    ]
    return ExperimentResult(
        exp_id="ablation-optimal-gap",
        title="Petrank-Rawitz wall: heuristics vs the exhaustive optimum "
        "on a tiny program",
        headers=["layout", "misses", "x optimal"],
        rows=rows,
        summary={
            "baseline": float(base),
            "affinity": float(aff),
            "trg": float(trg),
            "optimal": float(best),
            "worst": float(worst),
            "affinity_gap": aff / best - 1.0,
            "trg_gap": trg / best - 1.0,
        },
        notes=[f"searched {720} leaf-block permutations"],
    )


def run_seed_robustness(lab: Lab | None = None, n_seeds: int = 8) -> ExperimentResult:
    """A5: optimizer robustness across program seeds.

    The paper characterizes affinity as "robust" and TRG as "fragile" from
    eight benchmarks; this ablation puts numbers on that claim by
    regenerating one program template under ``n_seeds`` different structure
    seeds and reporting the mean and spread of each optimizer's solo miss
    reduction.  Expectation: affinity's spread is narrow and its minimum
    stays positive; TRG's spread is wide and its minimum dips low or
    negative.
    """
    from ..core.optimizers import OPTIMIZERS
    from ..engine.instrument import collect_trace
    from ..ir.transforms import baseline_layout
    from ..workloads.generator import WorkloadSpec, build_program

    cache = lab.cache_cfg if lab is not None else OptimizerConfig().cache
    scale = lab.scale if lab is not None else 1.0
    sim = simulate_fast if lab is None or lab.use_kernel else simulate
    reductions: dict[str, list[float]] = {name: [] for name in OPTIMIZERS}
    for seed in range(100, 100 + n_seeds):
        spec = WorkloadSpec(
            name=f"seedprog-{seed}",
            seed=seed,
            n_stages=22,
            leaves_per_stage=16,
            work_blocks=9,
            hot_block_instr=(4, 14),
            cold_block_instr=(10, 30),
            p_cold=0.15,
            scramble_functions=0.8,
            scramble_blocks=0.5,
            phase_stage_split=True,
            test_blocks=max(5_000, int(60_000 * scale)),
            ref_blocks=max(10_000, int(150_000 * scale)),
        )
        module = build_program(spec)
        test = collect_trace(module, spec.test_input())
        ref = collect_trace(module, spec.ref_input())
        base_lines = fetch_lines(
            ref.bb_trace, baseline_layout(module).address_map, cache.line_bytes
        )
        base_mr = sim(base_lines, cache).misses / ref.instr_count
        cfg = OptimizerConfig(cache=cache)
        for name, optimizer in OPTIMIZERS.items():
            layout = optimizer(module, test, cfg)
            lines = fetch_lines(ref.bb_trace, layout.address_map, cache.line_bytes)
            mr = sim(lines, cache).misses / ref.instr_count
            reductions[name].append(relative_reduction(base_mr, mr))

    rows = []
    summary: dict[str, float] = {}
    for name, values in reductions.items():
        arr = np.array(values)
        rows.append(
            [
                name,
                pct(float(arr.mean())),
                pct(float(arr.std())),
                pct(float(arr.min())),
                pct(float(arr.max())),
            ]
        )
        summary[f"{name}/mean"] = float(arr.mean())
        summary[f"{name}/std"] = float(arr.std())
        summary[f"{name}/min"] = float(arr.min())
        summary[f"{name}/max"] = float(arr.max())
    return ExperimentResult(
        exp_id="ablation-seeds",
        title=f"Optimizer robustness across {n_seeds} program seeds "
        "(solo miss reduction, sim channel)",
        headers=["optimizer", "mean", "std", "min", "max"],
        rows=rows,
        summary=summary,
    )


#: registry used by benchmarks.
ABLATIONS = {
    "trg-window": run_trg_window,
    "affinity-windows": run_affinity_windows,
    "pruning": run_pruning,
    "optimal-gap": run_optimal_gap,
    "seeds": run_seed_robustness,
}
