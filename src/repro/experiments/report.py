"""Plain-text reporting: tables and series in the paper's shapes.

Every experiment driver returns an :class:`ExperimentResult`; its
``to_text()`` renders the same rows/columns the paper's table or figure
reports, so a terminal run of a benchmark reads like the publication.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = ["ExperimentResult", "ascii_bars", "format_table", "pct", "ratio"]


def pct(x: float, digits: int = 2, signed: bool = True) -> str:
    """Format a fraction as a percentage string ('+7.22%')."""
    sign = "+" if signed and x >= 0 else ""
    return f"{sign}{x * 100:.{digits}f}%"


def ratio(x: float, digits: int = 4) -> str:
    return f"{x:.{digits}f}"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    """Fixed-width table with a header rule."""
    rows = [list(map(str, r)) for r in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(str(c).ljust(w) for c, w in zip(row, widths)).rstrip()
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in rows)
    return "\n".join(lines)


def ascii_bars(
    items: Sequence[tuple[str, float]],
    width: int = 44,
    value_format=pct,
) -> str:
    """Horizontal text bar chart — the terminal rendering of the paper's
    figures.

    Negative values extend left of a shared zero axis, so speedup /
    slowdown charts read like the paper's bar plots.
    """
    if not items:
        return "(no data)"
    label_w = max(len(label) for label, _ in items)
    max_abs = max(abs(v) for _, v in items) or 1.0
    neg_w = max(
        (int(round(width * abs(v) / max_abs)) for _, v in items if v < 0),
        default=0,
    )
    lines = []
    for label, value in items:
        n = int(round(width * abs(value) / max_abs))
        if value >= 0:
            bar = " " * neg_w + "|" + "#" * n
        else:
            bar = " " * (neg_w - n) + "#" * n + "|"
        lines.append(f"{label.ljust(label_w)}  {bar.ljust(neg_w + 1 + width)} {value_format(value)}")
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """A rendered experiment: identity, rows, and derived headline numbers."""

    #: experiment id, e.g. "table2" or "fig7".
    exp_id: str
    #: human title matching the paper artifact.
    title: str
    headers: list[str] = field(default_factory=list)
    rows: list[list[str]] = field(default_factory=list)
    #: headline scalars for EXPERIMENTS.md ("avg_magnification": 0.079, ...).
    summary: dict[str, float] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)
    #: optional rendered charts (titled ASCII bar plots), appended after
    #: the table.
    charts: list[tuple[str, str]] = field(default_factory=list)

    def to_text(self) -> str:
        parts = [f"== {self.exp_id}: {self.title} =="]
        if self.headers:
            parts.append(format_table(self.headers, self.rows))
        for chart_title, chart in self.charts:
            parts.append("")
            parts.append(f"-- {chart_title} --")
            parts.append(chart)
        if self.summary:
            parts.append("")
            for key, value in self.summary.items():
                parts.append(f"  {key} = {value:.4f}")
        for note in self.notes:
            parts.append(f"  note: {note}")
        return "\n".join(parts)
