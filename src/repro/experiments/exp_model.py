"""Extension experiment X3: validating the footprint model against the
simulator.

Section II-A of the paper *derives* shared-cache behaviour from footprint
composition (Eq. 2) but evaluates with hardware and an event simulator.
This driver closes the loop within the reproduction: for every study
program it compares

* the **model**: solo miss ratio from the HOTL conversion of the program's
  all-window line footprint, and co-run miss ratio from two-program
  footprint composition at the shared capacity;
* the **simulator**: the event-driven LRU results (clean channel).

Agreement is reported as the correlation and the mean absolute error of
the per-program miss ratios.  The model is fully associative while the
cache is 4-way, and it assumes symmetric progress, so deviations are
expected — the experiment quantifies how far the paper's analytical story
can carry.
"""

from __future__ import annotations

import numpy as np

from ..locality.footprint import footprint_curve
from ..locality.hotl import miss_ratio, shared_miss_ratios
from ..workloads.suite import STUDY_PROGRAMS
from .pipeline import BASELINE, Lab
from .report import ExperimentResult, ratio

__all__ = ["run"]

_PROBE = "syn-gamess"


def run(lab: Lab) -> ExperimentResult:
    capacity = float(lab.cache_cfg.n_lines)
    probe_curve = footprint_curve(lab.lines(_PROBE, BASELINE))

    rows = []
    summary: dict[str, float] = {}
    model_solo, sim_solo = [], []
    model_corun, sim_corun = [], []
    for name in STUDY_PROGRAMS:
        prepared = lab.program(name)
        lines = lab.lines(name, BASELINE)
        curve = footprint_curve(lines)

        # model channel: per line-access ratios.
        m_solo = miss_ratio(curve, capacity)
        m_corun = shared_miss_ratios([curve, probe_curve], capacity)[0]

        # simulator channel, converted to per line-access ratios for an
        # apples-to-apples comparison.
        s_solo_miss = lab.solo_miss(name, BASELINE, channel="sim")
        s_solo = s_solo_miss.misses / lines.shape[0]
        s_corun_miss = lab.corun_miss(
            (name, BASELINE), (_PROBE, BASELINE), channel="sim"
        )[0]
        s_corun = s_corun_miss.misses / lines.shape[0]

        rows.append(
            [
                name,
                ratio(m_solo, 4),
                ratio(s_solo, 4),
                ratio(m_corun, 4),
                ratio(s_corun, 4),
            ]
        )
        summary[f"{name}/model_solo"] = m_solo
        summary[f"{name}/sim_solo"] = s_solo
        summary[f"{name}/model_corun"] = m_corun
        summary[f"{name}/sim_corun"] = s_corun
        model_solo.append(m_solo)
        sim_solo.append(s_solo)
        model_corun.append(m_corun)
        sim_corun.append(s_corun)

    def corr(a, b) -> float:
        if np.std(a) == 0 or np.std(b) == 0:
            return 0.0
        return float(np.corrcoef(a, b)[0, 1])

    summary["solo_correlation"] = corr(model_solo, sim_solo)
    summary["corun_correlation"] = corr(model_corun, sim_corun)
    summary["solo_mae"] = float(np.mean(np.abs(np.array(model_solo) - sim_solo)))
    summary["corun_mae"] = float(np.mean(np.abs(np.array(model_corun) - sim_corun)))
    return ExperimentResult(
        exp_id="model-validation",
        title="Extension: Eq. 2 footprint composition vs event simulation "
        "(per line-access miss ratios)",
        headers=[
            "program",
            "model solo",
            "sim solo",
            "model co-run",
            "sim co-run",
        ],
        rows=rows,
        summary=summary,
        notes=[
            f"probe: {_PROBE}; model is fully-associative HOTL, simulator "
            f"is {lab.cache_cfg.describe()}"
        ],
    )
