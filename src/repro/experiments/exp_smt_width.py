"""Extension experiment X4: wider SMT — the paper's Sec. III-F conjecture.

The paper closes its defensiveness+politeness section with a conjecture:
"in cases where ... the number of co-run programs is high, combining
defensiveness and politeness should see a synergistic improvement."  The
paper could not test it (Nehalem has 2 hyper-threads); the simulator can
(the paper itself notes Power 7's 4 and Power 8's 8 SMT threads).

For SMT widths 1, 2, 4 and 8 sharing one 32 KB L1I, this driver co-runs
copies of one program (each in its own address space) and reports the
per-thread miss ratio under three policies:

* ``none``      — every copy baseline;
* ``one-sided`` — only the measured copy optimized (defensiveness only);
* ``all``       — every copy optimized (defensiveness + politeness).

The conjecture holds if the gap between ``one-sided`` and ``all`` grows
with the thread count: with one peer, optimizing yourself is enough (the
paper's finding); with many peers, the peers' footprints dominate and only
optimizing *them* too recovers the cache.
"""

from __future__ import annotations

from ..cache.shared import simulate_shared
from ..core.goals import relative_reduction
from .pipeline import BASELINE, Lab, THREAD_STRIDE
from .report import ExperimentResult, pct

__all__ = ["run", "SMT_WIDTHS", "X4_PROGRAM", "X4_OPTIMIZER"]

SMT_WIDTHS = (1, 2, 4, 8)
X4_PROGRAM = "syn-sjeng"
X4_OPTIMIZER = "bb-affinity"


def _miss_ratio_of_thread0(lab: Lab, streams) -> float:
    prepared = lab.program(X4_PROGRAM)
    if len(streams) == 1:
        from ..cache.setassoc import simulate

        stats = simulate(streams[0], lab.cache_cfg)
        return stats.misses / prepared.instr_count
    stats = simulate_shared(streams, lab.cache_cfg, quantum=lab.quantum)
    scale = len(streams[0]) / stats[0].accesses if stats[0].accesses else 0.0
    return stats[0].misses * scale / prepared.instr_count


def run(lab: Lab) -> ExperimentResult:
    base_lines = lab.lines(X4_PROGRAM, BASELINE)
    opt_lines = lab.lines(X4_PROGRAM, X4_OPTIMIZER)

    rows = []
    summary: dict[str, float] = {}
    for width in SMT_WIDTHS:
        def streams(first, peers):
            out = [first]
            for t in range(1, width):
                out.append(peers + t * THREAD_STRIDE)
            return out

        none = _miss_ratio_of_thread0(lab, streams(base_lines, base_lines))
        one_sided = _miss_ratio_of_thread0(lab, streams(opt_lines, base_lines))
        all_opt = _miss_ratio_of_thread0(lab, streams(opt_lines, opt_lines))

        defensiveness = relative_reduction(none, one_sided)
        synergy = relative_reduction(one_sided, all_opt)
        rows.append(
            [
                f"{width}-way",
                pct(none, signed=False),
                pct(one_sided, signed=False),
                pct(all_opt, signed=False),
                pct(defensiveness),
                pct(synergy),
            ]
        )
        summary[f"w{width}/none"] = none
        summary[f"w{width}/one_sided"] = one_sided
        summary[f"w{width}/all"] = all_opt
        summary[f"w{width}/defensiveness"] = defensiveness
        summary[f"w{width}/synergy"] = synergy

    return ExperimentResult(
        exp_id="smt-width",
        title=f"Extension: the Sec. III-F conjecture at SMT widths 1-8 "
        f"({X4_PROGRAM} copies, {X4_OPTIMIZER})",
        headers=[
            "width",
            "all baseline",
            "self optimized",
            "all optimized",
            "defensiveness",
            "peer-opt synergy",
        ],
        rows=rows,
        summary=summary,
        notes=[
            "synergy = further miss reduction from optimizing the peers, "
            "on top of optimizing yourself; the paper conjectures it grows "
            "with the number of co-runners"
        ],
    )
