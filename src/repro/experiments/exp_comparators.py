"""Extension experiment X1: the paper's optimizers vs classic baselines.

The paper compares its two models against each other; a modern reader also
wants them located against prior art and trivial heuristics.  This driver
measures, on the study set (solo, clean simulator channel):

* the paper's ``function-affinity`` / ``bb-affinity`` / ``function-trg``,
* **Pettis-Hansen** chain merging at both granularities (the PLDI'90
  classic behind hfsort/BOLT),
* **popularity** (hot-first frequency sort) at BB granularity,
* **hot/cold splitting** (per-function cold-block exile).

Reading the result: popularity and hot/cold splitting bound how much of
the win is plain hot/cold segregation; Pettis-Hansen bounds what adjacent-
pair profiling achieves; the gap to bb-affinity is the value of windowed
co-occurrence modeling — the paper's actual contribution.
"""

from __future__ import annotations

from ..cache.setassoc import simulate
from ..core.goals import relative_reduction
from ..core.optimizers import COMPARATORS, OPTIMIZERS
from ..engine.fetch import fetch_lines
from ..workloads.suite import STUDY_PROGRAMS
from .pipeline import BASELINE, Lab
from .report import ExperimentResult, pct

__all__ = ["run", "COMPARISON_LAYOUTS"]

#: columns of the comparison, in report order.
COMPARISON_LAYOUTS = (
    "bb-affinity",
    "function-affinity",
    "function-trg",
    "bb-ph",
    "function-ph",
    "bb-popularity",
    "hotcold-split",
    "function-coloring",
)


def _layout_for(lab: Lab, name: str, layout_name: str):
    prepared = lab.program(name)
    if layout_name in OPTIMIZERS:
        return lab.layout(name, layout_name)
    maker = COMPARATORS[layout_name]
    return maker(prepared.module, prepared.test_bundle, lab.optimizer_config)


def run(lab: Lab) -> ExperimentResult:
    rows = []
    summary: dict[str, float] = {}
    per_layout_sums: dict[str, list[float]] = {k: [] for k in COMPARISON_LAYOUTS}
    for name in STUDY_PROGRAMS:
        prepared = lab.program(name)
        base = lab.solo_miss(name, BASELINE, channel="sim").ratio
        row = [name]
        for layout_name in COMPARISON_LAYOUTS:
            if layout_name.startswith("bb") and not lab.supports(name, "bb-affinity"):
                row.append("N/A")
                continue
            layout = _layout_for(lab, name, layout_name)
            stream = fetch_lines(
                prepared.ref_bundle.bb_trace,
                layout.address_map,
                lab.cache_cfg.line_bytes,
            )
            mr = simulate(stream, lab.cache_cfg).misses / prepared.instr_count
            red = relative_reduction(base, mr)
            row.append(pct(red, digits=1))
            summary[f"{name}/{layout_name}"] = red
            per_layout_sums[layout_name].append(red)
        rows.append(row)

    for layout_name, values in per_layout_sums.items():
        if values:
            summary[f"avg/{layout_name}"] = sum(values) / len(values)
    return ExperimentResult(
        exp_id="comparators",
        title="Extension: paper optimizers vs Pettis-Hansen, popularity, "
        "and hot/cold splitting (solo miss reduction, simulator)",
        headers=["program", *COMPARISON_LAYOUTS],
        rows=rows,
        summary=summary,
        notes=[
            "bb-* columns are N/A where the paper's BB pass failed "
            "(perlbench, povray)"
        ],
    )
