"""Table II: average co-run speedup and miss-ratio reduction of the three
effective optimizers (function-affinity, BB-affinity, function-TRG).

For every study program and optimizer, co-runs pair the optimized target
with each unmodified study program as probe (original+optimized vs
original+original).  The table reports, averaged over probes:

* co-run speedup (timing model on hardware-channel misses),
* miss-ratio reduction measured by "hardware counters" (prefetch+noise),
* miss-ratio reduction measured by the clean simulator.

Reproduction targets (paper): BB affinity best and most robust; function
affinity robust but modest; function TRG occasionally spectacular but
counter-productive on miss ratio for several programs; hardware-counted
reductions below simulated ones; N/A where BB reordering failed.
"""

from __future__ import annotations

from ..core.goals import relative_reduction
from ..workloads.suite import STUDY_PROGRAMS
from .pipeline import BASELINE, Lab
from .report import ExperimentResult, pct

__all__ = ["run", "TABLE2_OPTIMIZERS", "corun_averages"]

TABLE2_OPTIMIZERS = ("function-affinity", "bb-affinity", "function-trg")


def corun_averages(
    lab: Lab, target: str, optimizer: str, probes: list[str]
) -> tuple[float, float, float]:
    """(avg speedup, avg hw miss reduction, avg sim miss reduction)."""
    speedups: list[float] = []
    hw_reds: list[float] = []
    sim_reds: list[float] = []
    for probe in probes:
        speedups.append(lab.corun_speedup(target, optimizer, probe) - 1.0)
        base_hw = lab.corun_miss((target, BASELINE), (probe, BASELINE), "hw")[0].ratio
        opt_hw = lab.corun_miss((target, optimizer), (probe, BASELINE), "hw")[0].ratio
        hw_reds.append(relative_reduction(base_hw, opt_hw))
        base_sim = lab.corun_miss((target, BASELINE), (probe, BASELINE), "sim")[0].ratio
        opt_sim = lab.corun_miss((target, optimizer), (probe, BASELINE), "sim")[0].ratio
        sim_reds.append(relative_reduction(base_sim, opt_sim))
    n = len(probes)
    return sum(speedups) / n, sum(hw_reds) / n, sum(sim_reds) / n


def run(lab: Lab) -> ExperimentResult:
    probes = list(STUDY_PROGRAMS)
    rows = []
    summary: dict[str, float] = {}
    for name in STUDY_PROGRAMS:
        row = [name]
        best: tuple[float, str] | None = None
        for opt in TABLE2_OPTIMIZERS:
            if not lab.supports(name, opt):
                row.extend(["N/A", "N/A", "N/A"])
                continue
            speedup, hw_red, sim_red = corun_averages(lab, name, opt, probes)
            row.extend([pct(speedup), pct(hw_red), pct(sim_red)])
            summary[f"{name}/{opt}/speedup"] = speedup
            summary[f"{name}/{opt}/hw_reduction"] = hw_red
            summary[f"{name}/{opt}/sim_reduction"] = sim_red
            if best is None or speedup > best[0]:
                best = (speedup, opt)
        if best is not None:
            row.append(best[1])
        rows.append(row)
    return ExperimentResult(
        exp_id="table2",
        title="Average co-run speedup and miss reduction per optimizer "
        "(hw counters and simulator)",
        headers=[
            "program",
            "f-aff spd", "f-aff hw", "f-aff sim",
            "bb-aff spd", "bb-aff hw", "bb-aff sim",
            "f-trg spd", "f-trg hw", "f-trg sim",
            "best",
        ],
        rows=rows,
        summary=summary,
    )
