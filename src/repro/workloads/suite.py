"""The synthetic SPEC CPU2006 stand-in suite (paper Sec. III-A, Table I,
Fig. 4).

29 named programs mirror the paper's benchmark set.  Parameters are chosen
so the *distribution* of instruction-cache behaviour echoes Fig. 4:

* most programs have hot footprints well under the 32 KB L1I and show
  near-zero solo miss ratios;
* a high-miss group (the paper's study candidates: gobmk, povray,
  perlbench, gcc, xalancbmk, gamess, tonto, sjeng, ...) has hot footprints
  around and above capacity;
* ``syn-mcf`` and ``syn-omnetpp`` fit solo but thrash when the shared
  cache halves their effective capacity — the co-run-sensitive programs
  the paper added to its study set despite low solo miss ratios.

The **study set** is the paper's Table I eight; the **probes** are
``syn-gcc`` and ``syn-gamess``.  The paper's compiler failed to apply BB
reordering to perlbench and povray ("N/A" in Table II); the suite records
that as ``bb_reorder_supported=False`` so the harness reproduces the
published table faithfully.

``data_cpi`` encodes each program's data intensity (memory-bound mcf high,
compute-bound sjeng low), which the timing model turns into the paper's
"large miss reduction, small speedup" relationship.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..ir.module import Module
from .generator import WorkloadSpec, build_program

__all__ = [
    "SuiteProgram",
    "SUITE",
    "STUDY_PROGRAMS",
    "PROBE_PROGRAMS",
    "ALL_PROGRAMS",
    "get_program",
    "build",
]


@dataclass(frozen=True)
class SuiteProgram:
    """One named benchmark: generator parameters plus suite metadata."""

    spec: WorkloadSpec
    #: member of the 8-program study set (paper Table I)?
    study: bool = False
    #: usable as a contention probe (paper: gcc, gamess)?
    probe: bool = False
    #: the paper's BB-reordering pass errored on perlbench and povray.
    bb_reorder_supported: bool = True

    @property
    def name(self) -> str:
        return self.spec.name


def _spec(name: str, seed: int, **kw) -> WorkloadSpec:
    defaults = dict(
        work_blocks=9,
        hot_block_instr=(4, 14),
        cold_block_instr=(10, 30),
        p_cold=0.15,
        scramble_functions=0.8,
        scramble_blocks=0.5,
        test_blocks=120_000,
        ref_blocks=400_000,
    )
    defaults.update(kw)
    return WorkloadSpec(name=name, seed=seed, **defaults)


def _low_miss(name: str, seed: int, data_cpi: float, **kw) -> SuiteProgram:
    """A program whose hot path fits the cache comfortably."""
    params = dict(
        n_stages=5,
        leaves_per_stage=5,
        work_blocks=6,
        n_cold_functions=40,
        data_cpi=data_cpi,
        ref_blocks=250_000,
        test_blocks=80_000,
    )
    params.update(kw)
    return SuiteProgram(spec=_spec(name, seed, **params))


# ---------------------------------------------------------------------------
# The study set (paper Table I) and probes.
# ---------------------------------------------------------------------------

_STUDY: list[SuiteProgram] = [
    # perlbench: high solo miss, BB reordering unsupported in the paper.
    SuiteProgram(
        spec=_spec(
            "syn-perlbench", seed=401,
            n_stages=22, leaves_per_stage=16, n_cold_functions=60,
            phase_stage_split=True, data_cpi=0.45,
        ),
        study=True, bb_reorder_supported=False,
    ),
    # gcc: biggest code, moderate miss; also a probe program.
    SuiteProgram(
        spec=_spec(
            "syn-gcc", seed=403,
            n_stages=26, leaves_per_stage=18, n_cold_functions=160,
            cold_function_blocks=10, phase_stage_split=True, data_cpi=0.55,
        ),
        study=True, probe=True,
    ),
    # mcf: near-zero solo miss but thrashes under sharing; memory bound.
    SuiteProgram(
        spec=_spec(
            "syn-mcf", seed=429,
            n_stages=8, leaves_per_stage=8, n_cold_functions=12,
            cold_function_blocks=5, data_cpi=1.0,
        ),
        study=True,
    ),
    # gobmk: highest solo miss in the study set; strongly phase structured
    # (the paper's biggest function-affinity miss reduction).
    SuiteProgram(
        spec=_spec(
            "syn-gobmk", seed=445,
            n_stages=30, leaves_per_stage=20, n_cold_functions=70,
            phase_stage_split=True, data_cpi=0.55,
        ),
        study=True,
    ),
    # povray: high miss, profile-sensitive (the paper saw a hardware-counter
    # miss *increase* under function affinity); BB reordering unsupported.
    SuiteProgram(
        spec=_spec(
            "syn-povray", seed=453,
            n_stages=24, leaves_per_stage=17, n_cold_functions=50,
            phase_stage_split=True, leaf_phase_bias=0.8, data_cpi=0.5,
        ),
        study=True, bb_reorder_supported=False,
    ),
    # sjeng: modest solo miss, compute bound; the paper's function-TRG
    # standout (+10.23% co-run).
    SuiteProgram(
        spec=_spec(
            "syn-sjeng", seed=458,
            n_stages=16, leaves_per_stage=12, n_cold_functions=35,
            phase_stage_split=True, data_cpi=0.25,
        ),
        study=True,
    ),
    # omnetpp: low solo miss, extreme co-run sensitivity.
    SuiteProgram(
        spec=_spec(
            "syn-omnetpp", seed=471,
            n_stages=14, leaves_per_stage=12, n_cold_functions=40,
            p_cold=0.10, data_cpi=0.6,
        ),
        study=True,
    ),
    # xalancbmk: largest static size, moderate miss.
    SuiteProgram(
        spec=_spec(
            "syn-xalancbmk", seed=483,
            n_stages=24, leaves_per_stage=16, n_cold_functions=220,
            cold_function_blocks=12, phase_stage_split=True, data_cpi=0.55,
        ),
        study=True,
    ),
]

# gamess: Fortran in the paper (not optimized) but a high-contention probe.
_GAMESS = SuiteProgram(
    spec=_spec(
        "syn-gamess", seed=416,
        n_stages=20, leaves_per_stage=16, n_cold_functions=60,
        data_cpi=0.35,
    ),
    probe=True,
)

# ---------------------------------------------------------------------------
# The remaining Fig. 4 programs (low to moderate miss ratios).
# ---------------------------------------------------------------------------

_OTHERS: list[SuiteProgram] = [
    _GAMESS,
    # tonto: Fortran, high miss (excluded from the study set like gamess).
    SuiteProgram(
        spec=_spec(
            "syn-tonto", seed=465,
            n_stages=18, leaves_per_stage=14, n_cold_functions=50, data_cpi=0.4,
        ),
    ),
    _low_miss("syn-bwaves", 410, 0.57, n_stages=3, leaves_per_stage=3),
    _low_miss("syn-hmmer", 456, 0.21, n_stages=6, leaves_per_stage=5),
    _low_miss("syn-bzip2", 1401, 0.33, n_stages=4, leaves_per_stage=4),
    _low_miss("syn-h264ref", 464, 0.24, n_stages=7, leaves_per_stage=6),
    _low_miss("syn-zeusmp", 434, 0.48, n_stages=3, leaves_per_stage=4),
    _low_miss("syn-gromacs", 435, 0.30, n_stages=5, leaves_per_stage=4),
    _low_miss("syn-namd", 444, 0.27, n_stages=3, leaves_per_stage=3),
    _low_miss("syn-cactusADM", 436, 0.51, n_stages=4, leaves_per_stage=3),
    _low_miss("syn-milc", 433, 0.60, n_stages=3, leaves_per_stage=4),
    _low_miss("syn-dealII", 447, 0.36, n_stages=8, leaves_per_stage=6),
    _low_miss("syn-sphinx3", 482, 0.39, n_stages=6, leaves_per_stage=5),
    _low_miss("syn-wrf", 481, 0.45, n_stages=7, leaves_per_stage=5),
    _low_miss("syn-soplex", 450, 0.54, n_stages=5, leaves_per_stage=5),
    _low_miss("syn-lbm", 470, 0.66, n_stages=2, leaves_per_stage=3),
    _low_miss("syn-libquantum", 462, 0.63, n_stages=2, leaves_per_stage=2),
    _low_miss("syn-astar", 473, 0.48, n_stages=4, leaves_per_stage=4),
    _low_miss("syn-GemsFDTD", 459, 0.57, n_stages=4, leaves_per_stage=4),
    _low_miss("syn-calculix", 454, 0.42, n_stages=5, leaves_per_stage=4),
    _low_miss("syn-leslie3d", 437, 0.54, n_stages=3, leaves_per_stage=3),
]

#: all 29 programs, keyed by name.
SUITE: dict[str, SuiteProgram] = {
    p.name: p for p in _STUDY + _OTHERS
}
if len(SUITE) != 29:  # pragma: no cover - suite definition invariant
    raise AssertionError(f"expected 29 programs, have {len(SUITE)}")

#: the paper's Table I study set, in table order.
STUDY_PROGRAMS: list[str] = [p.name for p in _STUDY]

#: contention probes (paper: 403.gcc and 416.gamess).
PROBE_PROGRAMS: list[str] = ["syn-gcc", "syn-gamess"]

#: every program name, suite order.
ALL_PROGRAMS: list[str] = list(SUITE)


def get_program(name: str) -> SuiteProgram:
    """Look up a suite program; accepts names with or without ``syn-``."""
    if name in SUITE:
        return SUITE[name]
    alt = f"syn-{name}"
    if alt in SUITE:
        return SUITE[alt]
    raise KeyError(f"unknown suite program {name!r}")


def build(name: str, *, ref_blocks: int | None = None, test_blocks: int | None = None) -> tuple[SuiteProgram, Module]:
    """Build a suite program's module, optionally overriding trace budgets.

    The overrides let benchmarks run scaled-down versions of every
    experiment without redefining the suite.
    """
    prog = get_program(name)
    spec = prog.spec
    if ref_blocks is not None or test_blocks is not None:
        spec = replace(
            spec,
            ref_blocks=ref_blocks or spec.ref_blocks,
            test_blocks=test_blocks or spec.test_blocks,
        )
        prog = replace(prog, spec=spec)
    return prog, build_program(spec)
