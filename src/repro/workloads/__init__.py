"""Synthetic workload suite: generator and the 29 named SPEC-like programs."""

from .external import from_profile, load_profile_csv
from .generator import WorkloadSpec, build_program
from .suite import (
    ALL_PROGRAMS,
    PROBE_PROGRAMS,
    STUDY_PROGRAMS,
    SUITE,
    SuiteProgram,
    build,
    get_program,
)

__all__ = [
    "ALL_PROGRAMS",
    "PROBE_PROGRAMS",
    "STUDY_PROGRAMS",
    "SUITE",
    "SuiteProgram",
    "WorkloadSpec",
    "build",
    "build_program",
    "from_profile",
    "load_profile_csv",
    "get_program",
]
