"""Parametric synthetic program generator (SPEC CPU2006 stand-in).

The paper evaluates on SPEC CPU2006, which we cannot ship or compile; what
its models actually consume is the programs' *instruction-locality
structure*.  The generator produces IR programs spanning the same
qualitative regimes:

* a **driver loop** in ``main`` calls a chain of *stage* functions
  (program phases);
* each stage runs an inner loop over *work* blocks that branch to rarely
  executed cold blocks and call *leaf* functions;
* **leaf functions** follow the paper's Fig. 3 pattern: a branch selects
  one of two halves per invocation, with *phase-modulated* probabilities,
  so related halves of different leaves execute together — the structure
  that makes inter-procedural basic-block reordering profitable;
* **cold padding functions** (startup/error/bookkeeping code) inflate the
  static code size;
* the **declaration order is scrambled** (hot and cold interleaved, blocks
  within functions shuffled) to model source-order layouts, which is what
  gives layout optimizers their headroom — exactly why such passes exist.

Everything is seeded and deterministic.  The knob with the largest effect
on the solo I-cache miss ratio is ``hot_code_factor``: the ratio of hot
path bytes to cache capacity (< 0.5 fits comfortably; > 1.5 thrashes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..engine.state import InputSpec
from ..ir.builder import ModuleBuilder
from ..ir.module import DataAccess, Module

__all__ = ["WorkloadSpec", "build_program"]


def _partial_shuffle(seq: list, rng: np.random.Generator, strength: float) -> list:
    """Displace a ``strength`` fraction of elements (0 = none, 1 = all)."""
    if strength <= 0 or len(seq) < 2:
        return list(seq)
    out = list(seq)
    k = int(round(len(seq) * min(strength, 1.0)))
    if k < 2:
        return out
    idx = rng.choice(len(seq), size=k, replace=False)
    values = [out[i] for i in idx]
    perm = rng.permutation(k)
    for slot, p in zip(idx, perm):
        out[slot] = values[p]
    return out


@dataclass(frozen=True)
class WorkloadSpec:
    """Full description of one synthetic program.

    The defaults produce a mid-sized, moderately cache-hungry program; the
    suite (:mod:`repro.workloads.suite`) derives 29 named variants.
    """

    name: str
    #: seed for the structure-generation RNG.
    seed: int = 0

    # -- program shape ------------------------------------------------------
    #: number of stage functions called from the driver loop.
    n_stages: int = 6
    #: leaf functions per stage.
    leaves_per_stage: int = 4
    #: work blocks in each stage's inner loop body.
    work_blocks: int = 6
    #: instructions per hot block, (lo, hi).
    hot_block_instr: tuple[int, int] = (6, 24)
    #: instructions per cold block, (lo, hi).
    cold_block_instr: tuple[int, int] = (20, 60)
    #: cold padding functions and their block count.
    n_cold_functions: int = 30
    cold_function_blocks: int = 8

    # -- dynamic behaviour ---------------------------------------------------
    #: inner-loop trip counts per stage, (lo, hi).
    inner_trips: tuple[int, int] = (4, 12)
    #: probability a work block detours to its cold block.
    p_cold: float = 0.03
    #: probability a work block calls a leaf (vs plain fallthrough).
    p_call: float = 0.8
    #: leaf half-selection bias in even phases (odd phases get 1 - bias).
    leaf_phase_bias: float = 0.92
    #: dynamic blocks per phase (0 disables phase modulation).
    phase_period: int = 8192
    #: when True, even phases run the first half of the stages and odd
    #: phases the second half (whole-function phase behaviour — the
    #: structure function-level affinity exploits).  When False, every
    #: iteration runs all stages.
    phase_stage_split: bool = False
    #: how the driver loop visits stages: "chain" calls every stage each
    #: iteration (uniform reuse distances); "zipf" picks one stage per
    #: iteration with Zipf(s)-distributed popularity, producing the smooth
    #: working-set spectrum of real programs (hot stages reused at short
    #: distances, cold ones at long distances).
    dispatch: str = "chain"
    #: Zipf exponent for ``dispatch="zipf"``.
    zipf_s: float = 1.1

    # -- layout scrambling ----------------------------------------------------
    # Real source order is neither optimal nor random: functions appear
    # roughly where the programmer wrote them, with hot and cold
    # interleaved; block order inside a function mostly follows control
    # flow.  The strengths below are the fraction of elements displaced
    # (0 = leave generation order, 1 = full shuffle).
    #: fraction of functions displaced in the declaration order.
    scramble_functions: float = 0.8
    #: fraction of non-entry blocks displaced inside each function.
    scramble_blocks: float = 0.35

    # -- machine characteristics ----------------------------------------------
    #: data-side stall cycles per instruction (program's data intensity).
    data_cpi: float = 1.2
    #: probability a work block streams through memory (vs reusing locals);
    #: drives the program's unified-cache (Eq. 1) data footprint.
    p_stream: float = 0.4
    #: region size (in lines) of streaming data walks.
    stream_region_lines: int = 2048

    # -- inputs ---------------------------------------------------------------
    #: dynamic basic-block budget of the profiling (test) input.
    test_blocks: int = 120_000
    #: dynamic basic-block budget of the evaluation (ref) input.
    ref_blocks: int = 400_000

    def test_input(self) -> InputSpec:
        """The profiling input (different seed and phase from ref)."""
        return InputSpec(
            name="test", seed=self.seed * 7919 + 13, max_blocks=self.test_blocks
        )

    def ref_input(self) -> InputSpec:
        """The evaluation input."""
        return InputSpec(
            name="ref",
            seed=self.seed * 104729 + 71,
            max_blocks=self.ref_blocks,
            phase_offset=self.phase_period // 3 if self.phase_period else 0,
        )


def build_program(spec: WorkloadSpec) -> Module:
    """Generate the IR module described by ``spec``."""
    rng = np.random.default_rng(spec.seed)

    def instr(bounds: tuple[int, int]) -> int:
        return int(rng.integers(bounds[0], bounds[1] + 1))

    builder = ModuleBuilder(spec.name)
    # Function bodies are assembled first; declaration order is decided at
    # the end (scrambling).
    pending: list[tuple[str, list]] = []  # (func name, block specs)

    def leaf_data() -> DataAccess | None:
        """Data behaviour of a leaf half: mostly reused locals."""
        roll = rng.random()
        if roll < 0.70:
            return DataAccess("local", 1, region_lines=16)
        if roll < 0.85:
            return DataAccess("shared", 1, region_lines=8)
        return None

    def work_data() -> DataAccess | None:
        """Data behaviour of a stage work block: locals or streaming."""
        if rng.random() < spec.p_stream:
            return DataAccess("stream", 1, region_lines=spec.stream_region_lines)
        return DataAccess("local", 1, region_lines=32)

    # ---- leaves (Fig. 3 pattern) -------------------------------------------
    leaf_names: list[list[str]] = []
    for s in range(spec.n_stages):
        names = []
        for l in range(spec.leaves_per_stage):
            fname = f"leaf_{s}_{l}"
            names.append(fname)
            bias = spec.leaf_phase_bias
            blocks = [
                (
                    "entry",
                    instr(spec.hot_block_instr) // 2 + 1,
                    (
                        "branch",
                        "half_a",
                        "half_b",
                        bias,
                        (1.0 - bias) if spec.phase_period else None,
                        spec.phase_period,
                    ),
                ),
                ("half_a", instr(spec.hot_block_instr), ("ret",), leaf_data()),
                ("half_b", instr(spec.hot_block_instr), ("ret",), leaf_data()),
            ]
            pending.append((fname, blocks))
        leaf_names.append(names)

    # ---- stages --------------------------------------------------------------
    stage_names = []
    for s in range(spec.n_stages):
        fname = f"stage_{s}"
        stage_names.append(fname)
        trips = int(rng.integers(spec.inner_trips[0], spec.inner_trips[1] + 1))
        blocks: list = [
            ("entry", instr(spec.hot_block_instr) // 2 + 1, ("jump", "loop")),
            ("loop", 1, ("loopbr", "work_0", "ret_blk", trips)),
        ]
        for j in range(spec.work_blocks):
            nxt = f"work_{j + 1}" if j + 1 < spec.work_blocks else "loop"
            leaf_pool = leaf_names[s]
            roll = rng.random()
            if roll < spec.p_call and leaf_pool:
                leaf = leaf_pool[int(rng.integers(len(leaf_pool)))]
                # work block branches to a cold detour, then calls a leaf.
                blocks.append(
                    (
                        f"work_{j}",
                        instr(spec.hot_block_instr),
                        ("branch", f"cold_{j}", f"call_{j}", spec.p_cold, None, 0),
                        work_data(),
                    )
                )
                blocks.append(
                    (f"call_{j}", 2, ("call", leaf, nxt))
                )
                blocks.append(
                    (f"cold_{j}", instr(spec.cold_block_instr), ("jump", f"call_{j}"))
                )
            else:
                blocks.append(
                    (
                        f"work_{j}",
                        instr(spec.hot_block_instr),
                        ("branch", f"cold_{j}", nxt, spec.p_cold, None, 0),
                        work_data(),
                    )
                )
                blocks.append(
                    (f"cold_{j}", instr(spec.cold_block_instr), ("jump", nxt))
                )
        blocks.append(("ret_blk", 1, ("ret",)))
        pending.append((fname, blocks))

    # ---- cold padding functions ----------------------------------------------
    for c in range(spec.n_cold_functions):
        fname = f"cold_fn_{c}"
        blocks = []
        for j in range(spec.cold_function_blocks):
            nxt = (
                f"b{j + 1}"
                if j + 1 < spec.cold_function_blocks
                else None
            )
            bname = f"b{j}" if j else "entry"
            if nxt is None:
                blocks.append((bname, instr(spec.cold_block_instr), ("ret",)))
            else:
                blocks.append((bname, instr(spec.cold_block_instr), ("jump", nxt)))
        pending.append((fname, blocks))

    # ---- main driver -----------------------------------------------------------
    # The driver loop budget is effectively unbounded; runs stop at the
    # input's dynamic block budget, standing in for input size.
    if spec.dispatch == "zipf":
        # Weighted one-stage-per-iteration dispatch: a smooth popularity
        # gradient over stages, optionally phase-reversed.
        ranks = np.arange(1, len(stage_names) + 1, dtype=float)
        weights_a = list(1.0 / ranks**spec.zipf_s)
        weights_b = weights_a[::-1]
        main_blocks = [
            ("entry", 4, ("jump", "loop")),
            ("loop", 1, ("loopbr", "dispatch", "done", 1_000_000)),
        ]
        call_names = [f"call_{s}" for s in range(len(stage_names))]
        if spec.phase_stage_split and spec.phase_period:
            main_blocks.append(
                ("dispatch", 2, ("branch", "sw_a", "sw_b", 0.97, 0.03, spec.phase_period))
            )
            main_blocks.append(("sw_a", 1, ("switch", call_names, weights_a)))
            main_blocks.append(("sw_b", 1, ("switch", call_names, weights_b)))
        else:
            main_blocks.append(("dispatch", 2, ("switch", call_names, weights_a)))
        for s, sname in enumerate(stage_names):
            main_blocks.append((f"call_{s}", 2, ("call", sname, "loop")))
        main_blocks.append(("done", 1, ("exit",)))
    elif spec.phase_stage_split and len(stage_names) >= 2 and spec.phase_period:
        half = len(stage_names) // 2
        group_a = stage_names[:half]
        group_b = stage_names[half:]
        main_blocks: list = [
            ("entry", 4, ("jump", "loop")),
            ("loop", 1, ("loopbr", "dispatch", "done", 1_000_000)),
            # Even phases overwhelmingly run group A, odd phases group B.
            (
                "dispatch",
                2,
                ("branch", "a_0", "b_0", 0.97, 0.03, spec.phase_period),
            ),
        ]
        for prefix, group in (("a", group_a), ("b", group_b)):
            for s, sname in enumerate(group):
                nxt = f"{prefix}_{s + 1}" if s + 1 < len(group) else "loop"
                main_blocks.append((f"{prefix}_{s}", 2, ("call", sname, nxt)))
        main_blocks.append(("done", 1, ("exit",)))
    else:
        main_blocks = [
            ("entry", 4, ("jump", "loop")),
            ("loop", 1, ("loopbr", "call_0", "done", 1_000_000)),
        ]
        for s, sname in enumerate(stage_names):
            nxt = f"call_{s + 1}" if s + 1 < len(stage_names) else "loop"
            main_blocks.append((f"call_{s}", 2, ("call", sname, nxt)))
        main_blocks.append(("done", 1, ("exit",)))
    pending.append(("main", main_blocks))

    # ---- declaration order -----------------------------------------------------
    order = _partial_shuffle(list(range(len(pending))), rng, spec.scramble_functions)
    # main must exist but need not be first; keep whatever order fell out.

    for idx in order:
        fname, blocks = pending[idx]
        block_order = list(range(len(blocks)))
        if spec.scramble_blocks > 0 and len(blocks) > 2:
            block_order = [0] + _partial_shuffle(
                block_order[1:], rng, spec.scramble_blocks
            )
        fb = builder.function(fname)
        for bi in block_order:
            spec_tuple = blocks[bi]
            if len(spec_tuple) == 4:
                bname, n, term, data = spec_tuple
            else:
                bname, n, term = spec_tuple
                data = None
            setter = fb.block(bname, n, data=data)
            kind = term[0]
            if kind == "jump":
                setter.jump(term[1])
            elif kind == "branch":
                _, then, orelse, p, pp, period = term
                setter.branch(then, orelse, taken_prob=p, phase_prob=pp, phase_period=period)
            elif kind == "switch":
                setter.switch(list(term[1]), list(term[2]))
            elif kind == "call":
                setter.call(term[1], return_to=term[2])
            elif kind == "loopbr":
                setter.loop(term[1], term[2], trips=term[3])
            elif kind == "ret":
                setter.ret()
            elif kind == "exit":
                setter.exit()
            else:  # pragma: no cover - generator-internal
                raise ValueError(kind)
    return builder.build()
