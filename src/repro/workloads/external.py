"""Adopting external profiles: build the pipeline's inputs from *your* data.

Everything in this repository runs from two artifacts: a module (block
identities + sizes + structure) and a trace bundle (the dynamic block
sequence).  A downstream user with a real profiler — perf, a Pin tool, an
instrumented runtime — has exactly those: block sizes from the binary and
a block trace from the run.  This module turns them into the library's
types so the four optimizers, the simulators, and the experiment plumbing
work unchanged on real data.

The reconstructed IR is *structural*, not semantic: each function is a
straight chain of its blocks (jump to the lexically next block, return at
the end).  That is sufficient because layout optimization needs only
identities, sizes, and fall-through adjacency; the dynamic behaviour comes
from the supplied trace, never from re-execution.  Re-running the
interpreter on a reconstructed module is meaningless and the bundle
carries the real trace instead.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..engine.instrument import TraceBundle
from ..ir.builder import ModuleBuilder
from ..ir.module import INSTRUCTION_BYTES, Module

__all__ = ["from_profile", "load_profile_csv"]


def from_profile(
    name: str,
    bb_trace: np.ndarray,
    block_bytes: Sequence[int],
    func_of_block: Sequence[int],
    function_names: Sequence[str],
    *,
    instr_count: int | None = None,
) -> tuple[Module, TraceBundle]:
    """Reconstruct (module, bundle) from an external profile.

    Parameters
    ----------
    bb_trace: dynamic block trace; values are block ids in ``[0, B)`` and
        must index ``block_bytes`` / ``func_of_block``.
    block_bytes: encoded size of each block in bytes (rounded up to whole
        instructions).
    func_of_block: owning-function index per block.  Blocks of one function
        must be contiguous and functions numbered in first-block order
        (the usual binary layout); ids index ``function_names``.
    function_names: name per function index.
    instr_count: total dynamic instructions, if known; otherwise estimated
        from the trace and block sizes.

    Returns the module (sealed, gids equal to the input block ids) and a
    :class:`~repro.engine.instrument.TraceBundle` ready for the optimizers.
    """
    n_blocks = len(block_bytes)
    if len(func_of_block) != n_blocks:
        raise ValueError("block_bytes and func_of_block must align")
    if n_blocks == 0:
        raise ValueError("need at least one block")
    trace = np.asarray(bb_trace)
    if trace.size and (trace.min() < 0 or trace.max() >= n_blocks):
        raise ValueError("trace references unknown block ids")

    # validate contiguity and build per-function block lists.
    blocks_of: dict[int, list[int]] = {}
    prev_func = None
    for gid, fi in enumerate(func_of_block):
        if fi not in blocks_of:
            if fi != len(blocks_of):
                raise ValueError(
                    "functions must be numbered in first-block order"
                )
            blocks_of[fi] = []
        elif prev_func != fi:
            raise ValueError(f"blocks of function {fi} are not contiguous")
        blocks_of[fi].append(gid)
        prev_func = fi
    if len(blocks_of) != len(function_names):
        raise ValueError("function_names must cover every function index")

    builder = ModuleBuilder(name, entry=function_names[0])
    for fi, gids in blocks_of.items():
        fb = builder.function(function_names[fi])
        for pos, gid in enumerate(gids):
            n_instr = max(1, -(-int(block_bytes[gid]) // INSTRUCTION_BYTES))
            block_name = f"b{pos}"
            if pos + 1 < len(gids):
                fb.block(block_name, n_instr).jump(f"b{pos + 1}")
            elif fi == 0:
                fb.block(block_name, n_instr).exit()
            else:
                fb.block(block_name, n_instr).ret()
    module = builder.build()

    func_of_gid = np.asarray(func_of_block, dtype=np.int32)
    if instr_count is None:
        per_block_instr = np.array(
            [module.block_by_gid(g).n_instr for g in range(n_blocks)],
            dtype=np.int64,
        )
        instr_count = int(per_block_instr[trace].sum()) if trace.size else 0

    bundle = TraceBundle(
        program=name,
        input_name="external",
        bb_trace=trace.astype(np.int32),
        func_trace=func_of_gid[trace] if trace.size else trace.astype(np.int32),
        block_names=[
            f"{function_names[func_of_block[g]]}:b{g}" for g in range(n_blocks)
        ],
        function_names=list(function_names),
        func_of_gid=func_of_gid,
        instr_count=instr_count,
        natural_exit=True,
    )
    return module, bundle


def load_profile_csv(
    name: str,
    blocks_csv: str,
    trace_csv: str,
) -> tuple[Module, TraceBundle]:
    """Load an external profile from two CSV files.

    ``blocks_csv`` has a header and one row per block, in block-id order::

        block_id,function,bytes
        0,main,40
        1,main,72
        ...

    ``trace_csv`` is one block id per line (no header) — the dynamic trace.

    Functions are numbered by first appearance in the blocks file, which
    matches the "first-block order" requirement of :func:`from_profile`.
    """
    import csv
    from pathlib import Path

    block_bytes: list[int] = []
    func_of_block: list[int] = []
    function_names: list[str] = []
    func_index: dict[str, int] = {}
    with Path(blocks_csv).open(newline="") as fh:
        reader = csv.DictReader(fh)
        for expected_id, row in enumerate(reader):
            if int(row["block_id"]) != expected_id:
                raise ValueError(
                    f"blocks file must be sorted by block_id; saw "
                    f"{row['block_id']} at position {expected_id}"
                )
            func = row["function"]
            if func not in func_index:
                func_index[func] = len(function_names)
                function_names.append(func)
            func_of_block.append(func_index[func])
            block_bytes.append(int(row["bytes"]))

    trace = np.loadtxt(Path(trace_csv), dtype=np.int64, ndmin=1)
    return from_profile(name, trace, block_bytes, func_of_block, function_names)
