"""Adopting external profiles: build the pipeline's inputs from *your* data.

Everything in this repository runs from two artifacts: a module (block
identities + sizes + structure) and a trace bundle (the dynamic block
sequence).  A downstream user with a real profiler — perf, a Pin tool, an
instrumented runtime — has exactly those: block sizes from the binary and
a block trace from the run.  This module turns them into the library's
types so the four optimizers, the simulators, and the experiment plumbing
work unchanged on real data.

The reconstructed IR is *structural*, not semantic: each function is a
straight chain of its blocks (jump to the lexically next block, return at
the end).  That is sufficient because layout optimization needs only
identities, sizes, and fall-through adjacency; the dynamic behaviour comes
from the supplied trace, never from re-execution.  Re-running the
interpreter on a reconstructed module is meaningless and the bundle
carries the real trace instead.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..engine.instrument import TraceBundle
from ..ir.builder import ModuleBuilder
from ..ir.module import INSTRUCTION_BYTES, Module
from ..robust.errors import ProfileError

__all__ = ["from_profile", "load_profile_csv"]

#: columns the blocks CSV must carry.
_BLOCK_COLUMNS = ("block_id", "function", "bytes")


def from_profile(
    name: str,
    bb_trace: np.ndarray,
    block_bytes: Sequence[int],
    func_of_block: Sequence[int],
    function_names: Sequence[str],
    *,
    instr_count: int | None = None,
) -> tuple[Module, TraceBundle]:
    """Reconstruct (module, bundle) from an external profile.

    Parameters
    ----------
    bb_trace: dynamic block trace; values are block ids in ``[0, B)`` and
        must index ``block_bytes`` / ``func_of_block``.
    block_bytes: encoded size of each block in bytes (rounded up to whole
        instructions).
    func_of_block: owning-function index per block.  Blocks of one function
        must be contiguous and functions numbered in first-block order
        (the usual binary layout); ids index ``function_names``.
    function_names: name per function index.
    instr_count: total dynamic instructions, if known; otherwise estimated
        from the trace and block sizes.

    Returns the module (sealed, gids equal to the input block ids) and a
    :class:`~repro.engine.instrument.TraceBundle` ready for the optimizers.
    """
    n_blocks = len(block_bytes)
    if len(func_of_block) != n_blocks:
        raise ProfileError(
            "block_bytes and func_of_block must align",
            stage="ingest",
            program=name,
            defect=f"{n_blocks} block sizes vs {len(func_of_block)} owners",
        )
    if n_blocks == 0:
        raise ProfileError(
            "need at least one block", stage="ingest", program=name, defect="empty block table"
        )
    trace = np.asarray(bb_trace)
    if trace.size and not np.issubdtype(trace.dtype, np.integer):
        raise ProfileError(
            f"trace has non-integer dtype {trace.dtype}; block ids must be "
            "integers (a float trace would be silently truncated)",
            stage="ingest",
            program=name,
            defect=f"trace dtype {trace.dtype}",
        )
    if trace.size and (trace.min() < 0 or trace.max() >= n_blocks):
        raise ProfileError(
            "trace references unknown block ids",
            stage="ingest",
            program=name,
            defect=f"trace ids span [{int(trace.min())}, {int(trace.max())}], "
            f"table has {n_blocks} blocks",
        )

    # validate contiguity and build per-function block lists.
    blocks_of: dict[int, list[int]] = {}
    prev_func = None
    for gid, fi in enumerate(func_of_block):
        if fi not in blocks_of:
            if fi != len(blocks_of):
                raise ProfileError(
                    "functions must be numbered in first-block order",
                    stage="ingest",
                    program=name,
                    defect=f"function {fi} first appears at block {gid}, "
                    f"expected index {len(blocks_of)}",
                )
            blocks_of[fi] = []
        elif prev_func != fi:
            raise ProfileError(
                f"blocks of function {fi} are not contiguous",
                stage="ingest",
                program=name,
                defect=f"function {fi} re-appears at block {gid}",
            )
        blocks_of[fi].append(gid)
        prev_func = fi
    if len(blocks_of) != len(function_names):
        raise ProfileError(
            "function_names must cover every function index",
            stage="ingest",
            program=name,
            defect=f"{len(blocks_of)} functions vs {len(function_names)} names",
        )

    builder = ModuleBuilder(name, entry=function_names[0])
    for fi, gids in blocks_of.items():
        fb = builder.function(function_names[fi])
        for pos, gid in enumerate(gids):
            n_instr = max(1, -(-int(block_bytes[gid]) // INSTRUCTION_BYTES))
            block_name = f"b{pos}"
            if pos + 1 < len(gids):
                fb.block(block_name, n_instr).jump(f"b{pos + 1}")
            elif fi == 0:
                fb.block(block_name, n_instr).exit()
            else:
                fb.block(block_name, n_instr).ret()
    module = builder.build()

    func_of_gid = np.asarray(func_of_block, dtype=np.int32)
    if instr_count is None:
        per_block_instr = np.array(
            [module.block_by_gid(g).n_instr for g in range(n_blocks)],
            dtype=np.int64,
        )
        instr_count = int(per_block_instr[trace].sum()) if trace.size else 0

    bundle = TraceBundle(
        program=name,
        input_name="external",
        bb_trace=trace.astype(np.int32),
        func_trace=func_of_gid[trace] if trace.size else trace.astype(np.int32),
        block_names=[
            f"{function_names[func_of_block[g]]}:b{g}" for g in range(n_blocks)
        ],
        function_names=list(function_names),
        func_of_gid=func_of_gid,
        instr_count=instr_count,
        natural_exit=True,
    )
    return module, bundle


def load_profile_csv(
    name: str,
    blocks_csv: str,
    trace_csv: str,
) -> tuple[Module, TraceBundle]:
    """Load an external profile from two CSV files.

    ``blocks_csv`` has a header and one row per block, in block-id order::

        block_id,function,bytes
        0,main,40
        1,main,72
        ...

    ``trace_csv`` is one block id per line (no header) — the dynamic trace.

    Functions are numbered by first appearance in the blocks file, which
    matches the "first-block order" requirement of :func:`from_profile`.

    Every malformed input — a missing file, renamed or missing columns,
    non-integer or non-positive ``bytes`` values, unsorted block ids,
    non-integer trace lines, an empty trace — raises
    :class:`~repro.robust.errors.ProfileError` naming the file and the
    defect, never a raw ``KeyError`` / ``int()`` / numpy error.
    """
    import csv
    from pathlib import Path

    blocks_path, trace_path = Path(blocks_csv), Path(trace_csv)
    block_bytes: list[int] = []
    func_of_block: list[int] = []
    function_names: list[str] = []
    func_index: dict[str, int] = {}
    try:
        fh = blocks_path.open(newline="")
    except OSError as err:
        raise ProfileError(
            "blocks file is unreadable",
            stage="ingest",
            program=name,
            path=blocks_path,
            cause=err,
        ) from err
    with fh:
        reader = csv.DictReader(fh)
        header = reader.fieldnames or []
        missing = [c for c in _BLOCK_COLUMNS if c not in header]
        if missing:
            raise ProfileError(
                f"blocks file is missing column(s): {', '.join(missing)} "
                f"(header has: {', '.join(header) or 'nothing'})",
                stage="ingest",
                program=name,
                path=blocks_path,
                defect=f"missing columns {missing}",
            )
        for expected_id, row in enumerate(reader):
            lineno = expected_id + 2  # header is line 1
            try:
                block_id = int(row["block_id"])
            except (TypeError, ValueError) as err:
                raise ProfileError(
                    f"blocks file line {lineno}: block_id {row['block_id']!r} "
                    "is not an integer",
                    stage="ingest",
                    program=name,
                    path=blocks_path,
                    defect=f"non-integer block_id at line {lineno}",
                    cause=err,
                ) from err
            if block_id != expected_id:
                raise ProfileError(
                    f"blocks file must be sorted by block_id; saw "
                    f"{row['block_id']} at position {expected_id}",
                    stage="ingest",
                    program=name,
                    path=blocks_path,
                    defect=f"unsorted block_id at line {lineno}",
                )
            func = row["function"]
            if func is None or func == "":
                raise ProfileError(
                    f"blocks file line {lineno}: empty function name",
                    stage="ingest",
                    program=name,
                    path=blocks_path,
                    defect=f"empty function at line {lineno}",
                )
            try:
                size = int(row["bytes"])
            except (TypeError, ValueError) as err:
                raise ProfileError(
                    f"blocks file line {lineno}: bytes value {row['bytes']!r} "
                    "is not an integer",
                    stage="ingest",
                    program=name,
                    path=blocks_path,
                    defect=f"non-integer bytes at line {lineno}",
                    cause=err,
                ) from err
            if size <= 0:
                raise ProfileError(
                    f"blocks file line {lineno}: block size must be positive, "
                    f"got {size}",
                    stage="ingest",
                    program=name,
                    path=blocks_path,
                    defect=f"non-positive bytes at line {lineno}",
                )
            if func not in func_index:
                func_index[func] = len(function_names)
                function_names.append(func)
            func_of_block.append(func_index[func])
            block_bytes.append(size)

    trace = _load_trace_lines(name, trace_path)
    return from_profile(name, trace, block_bytes, func_of_block, function_names)


def _load_trace_lines(name: str, trace_path) -> np.ndarray:
    """Parse the one-id-per-line trace file with typed failure modes."""
    try:
        text = trace_path.read_text()
    except OSError as err:
        raise ProfileError(
            "trace file is unreadable",
            stage="ingest",
            program=name,
            path=trace_path,
            cause=err,
        ) from err
    values: list[int] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        token = line.strip()
        if not token:
            continue
        try:
            values.append(int(token))
        except ValueError as err:
            raise ProfileError(
                f"trace file line {lineno}: {token!r} is not an integer "
                "block id",
                stage="ingest",
                program=name,
                path=trace_path,
                defect=f"non-integer trace entry at line {lineno}",
                cause=err,
            ) from err
    if not values:
        raise ProfileError(
            "trace file holds no block ids (empty profile)",
            stage="ingest",
            program=name,
            path=trace_path,
            defect="empty trace",
        )
    return np.asarray(values, dtype=np.int64)
