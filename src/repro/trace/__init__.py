"""Trace toolkit: trimming, pruning, sampling, stack processing, statistics."""

from .phases import Phase, detect_phases, phase_distance
from .prune import PruneResult, popularity, prune_top_k
from .sample import iter_sample_windows, sample_ratio, window_sample
from .stack import LRUStack
from .stats import TraceStats, summarize
from .trim import is_trimmed, trim, trim_with_counts

__all__ = [
    "LRUStack",
    "Phase",
    "PruneResult",
    "TraceStats",
    "is_trimmed",
    "detect_phases",
    "iter_sample_windows",
    "phase_distance",
    "popularity",
    "prune_top_k",
    "sample_ratio",
    "summarize",
    "trim",
    "trim_with_counts",
    "window_sample",
]
