"""Trace pruning: keep only the most popular code blocks (paper Sec. II-F).

Basic-block traces can be enormous (the paper cites an 8 GB trace for
403.gcc *test*).  The paper prunes by "selecting the 10,000 most frequently
executed basic blocks and keeping only those occurrences", crediting the
popularity-selection idea to Hashemi et al.; pruning "typically keeps over
90% of the original trace".

:func:`prune_top_k` implements exactly that policy and reports the keep
ratio so experiments can assert the >90% property on realistic workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PruneResult", "prune_top_k", "popularity"]


@dataclass
class PruneResult:
    """Outcome of a popularity-based pruning pass."""

    #: pruned trace (occurrences of non-selected symbols removed).
    trace: np.ndarray
    #: the selected symbols, most frequent first.
    kept_symbols: np.ndarray
    #: fraction of original occurrences retained.
    keep_ratio: float
    #: number of distinct symbols before / after.
    n_symbols_before: int
    n_symbols_after: int


def popularity(trace: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Distinct symbols and their occurrence counts, most frequent first.

    Ties are broken by symbol value (ascending) for determinism.
    """
    symbols, counts = np.unique(trace, return_counts=True)
    # lexsort: primary key -counts, secondary key symbol value.
    order = np.lexsort((symbols, -counts))
    return symbols[order], counts[order]


def prune_top_k(trace: np.ndarray, k: int) -> PruneResult:
    """Keep only occurrences of the ``k`` most frequently executed symbols."""
    if k <= 0:
        raise ValueError("k must be positive")
    if trace.shape[0] == 0:
        return PruneResult(trace.copy(), np.empty(0, dtype=trace.dtype), 1.0, 0, 0)
    symbols, counts = popularity(trace)
    kept = symbols[:k]
    mask = np.isin(trace, kept)
    pruned = trace[mask]
    return PruneResult(
        trace=pruned,
        kept_symbols=kept,
        keep_ratio=float(pruned.shape[0]) / float(trace.shape[0]),
        n_symbols_before=int(symbols.shape[0]),
        n_symbols_after=int(min(k, symbols.shape[0])),
    )
