"""Trimmed traces (paper Definition 1).

A *trimmed* basic-block (or function) trace is the original trace with runs
of consecutive identical symbols collapsed to one occurrence.  Both locality
models operate on trimmed traces: repeating the same block back-to-back adds
no locality information (the footprint between the repeats is 1).

All operations are vectorized; trimming a multi-million-entry trace costs a
few milliseconds.
"""

from __future__ import annotations

import numpy as np

__all__ = ["trim", "trim_with_counts", "is_trimmed"]


def trim(trace: np.ndarray) -> np.ndarray:
    """Collapse consecutive duplicate symbols.

    >>> trim(np.array([1, 1, 2, 2, 2, 1]))
    array([1, 2, 1])
    """
    if trace.ndim != 1:
        raise ValueError("trace must be one-dimensional")
    if trace.shape[0] == 0:
        return trace.copy()
    keep = np.empty(trace.shape[0], dtype=bool)
    keep[0] = True
    np.not_equal(trace[1:], trace[:-1], out=keep[1:])
    return trace[keep]


def trim_with_counts(trace: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Trim and also return the run length of each kept occurrence.

    Useful when downstream analyses weight occurrences by dynamic frequency
    (e.g. instruction counting after trimming).
    """
    if trace.ndim != 1:
        raise ValueError("trace must be one-dimensional")
    n = trace.shape[0]
    if n == 0:
        return trace.copy(), np.empty(0, dtype=np.int64)
    keep = np.empty(n, dtype=bool)
    keep[0] = True
    np.not_equal(trace[1:], trace[:-1], out=keep[1:])
    starts = np.flatnonzero(keep)
    counts = np.diff(np.append(starts, n))
    return trace[starts], counts


def is_trimmed(trace: np.ndarray) -> bool:
    """True if no two consecutive symbols are equal."""
    if trace.shape[0] < 2:
        return True
    return bool(np.all(trace[1:] != trace[:-1]))
