"""Program-phase detection from code-block traces.

The evaluation workloads are strongly phased (the generator's
``phase_period`` / ``phase_stage_split``), and phase structure is what
distinguishes the affinity hierarchy's multi-window view from TRG's single
window.  This module makes phases *observable*: it segments a block trace
into stable regions by comparing the code-block usage distribution of
consecutive windows.

Method (a light-weight variant of working-set phase detection):

1. cut the trace into fixed windows of ``window`` dynamic blocks;
2. summarize each window by its normalized block-frequency vector;
3. a *boundary* falls between windows whose distributions differ by more
   than ``threshold`` in total-variation distance (half the L1 distance;
   0 = identical, 1 = disjoint);
4. consecutive windows without a boundary merge into one :class:`Phase`.

The detector is deliberately simple and fully deterministic — it is
analysis tooling, not part of the optimization pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Phase", "detect_phases", "phase_distance"]


@dataclass(frozen=True)
class Phase:
    """One stable region of the trace (positions are block indices)."""

    start: int
    end: int  # exclusive
    #: the region's most executed blocks, most frequent first.
    hot_symbols: tuple[int, ...]

    @property
    def length(self) -> int:
        return self.end - self.start


def phase_distance(hist_a: np.ndarray, hist_b: np.ndarray) -> float:
    """Total-variation distance between two normalized histograms."""
    n = max(hist_a.shape[0], hist_b.shape[0])
    a = np.zeros(n)
    b = np.zeros(n)
    a[: hist_a.shape[0]] = hist_a
    b[: hist_b.shape[0]] = hist_b
    return float(0.5 * np.abs(a - b).sum())


def _window_hist(chunk: np.ndarray, n_symbols: int) -> np.ndarray:
    hist = np.bincount(chunk, minlength=n_symbols).astype(np.float64)
    total = hist.sum()
    return hist / total if total else hist


def detect_phases(
    trace: np.ndarray,
    window: int = 1024,
    threshold: float = 0.5,
    top_k: int = 8,
) -> list[Phase]:
    """Segment ``trace`` into phases.

    Parameters
    ----------
    window: dynamic blocks per comparison window (also the boundary
        resolution).
    threshold: total-variation distance above which consecutive windows
        belong to different phases.
    top_k: how many hot blocks to report per phase.
    """
    if window < 1:
        raise ValueError("window must be positive")
    if not 0.0 <= threshold <= 1.0:
        raise ValueError("threshold must be in [0, 1]")
    n = int(trace.shape[0])
    if n == 0:
        return []
    n_symbols = int(trace.max()) + 1 if n else 0

    starts = list(range(0, n, window))
    hists = [
        _window_hist(trace[s : s + window], n_symbols) for s in starts
    ]

    phases: list[Phase] = []
    phase_start = 0
    acc = hists[0].copy()
    acc_windows = 1
    for i in range(1, len(hists)):
        if phase_distance(hists[i - 1], hists[i]) > threshold:
            phases.append(
                _finish(trace, phase_start, starts[i], acc / acc_windows, top_k)
            )
            phase_start = starts[i]
            acc = hists[i].copy()
            acc_windows = 1
        else:
            acc += hists[i]
            acc_windows += 1
    phases.append(_finish(trace, phase_start, n, acc / acc_windows, top_k))
    return phases


def _finish(
    trace: np.ndarray, start: int, end: int, hist: np.ndarray, top_k: int
) -> Phase:
    order = np.argsort(-hist, kind="stable")
    hot = tuple(int(s) for s in order[:top_k] if hist[s] > 0)
    return Phase(start=start, end=end, hot_symbols=hot)
