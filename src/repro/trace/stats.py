"""Trace summary statistics (feeds Table I and general reporting)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .trim import trim

__all__ = ["TraceStats", "summarize"]


@dataclass
class TraceStats:
    """Summary of one symbol trace."""

    length: int
    trimmed_length: int
    n_symbols: int
    #: Shannon entropy of the symbol distribution, in bits.
    entropy_bits: float
    #: fraction of occurrences covered by the top 10% most popular symbols.
    top_decile_coverage: float

    @property
    def trim_ratio(self) -> float:
        """Trimmed length over raw length (1.0 = no consecutive repeats)."""
        return self.trimmed_length / self.length if self.length else 1.0


def summarize(trace: np.ndarray) -> TraceStats:
    """Compute :class:`TraceStats` for ``trace``."""
    n = int(trace.shape[0])
    if n == 0:
        return TraceStats(0, 0, 0, 0.0, 1.0)
    _, counts = np.unique(trace, return_counts=True)
    probs = counts / n
    entropy = float(-(probs * np.log2(probs)).sum())
    sorted_counts = np.sort(counts)[::-1]
    k = max(1, int(np.ceil(sorted_counts.shape[0] * 0.10)))
    coverage = float(sorted_counts[:k].sum() / n)
    return TraceStats(
        length=n,
        trimmed_length=int(trim(trace).shape[0]),
        n_symbols=int(counts.shape[0]),
        entropy_bits=entropy,
        top_decile_coverage=coverage,
    )
