"""Trace sampling (paper Sec. II-F).

The paper mentions "techniques for trace sampling to refine and extract an
effective sub-trace without losing too much information".  This module
implements periodic *window sampling*: keep windows of ``window`` entries
every ``period`` entries.  Window sampling preserves short-range locality
structure (the co-occurrence windows both models rely on) while discarding a
tunable fraction of the trace.

The boundary between two sampled windows stitches together accesses that
were not adjacent in the original trace; callers that cannot tolerate that
(e.g. exact reuse-distance measurement) should analyse windows separately
via :func:`iter_sample_windows`.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["window_sample", "iter_sample_windows", "sample_ratio"]


def _check(window: int, period: int) -> None:
    if window <= 0:
        raise ValueError("window must be positive")
    if period < window:
        raise ValueError("period must be >= window")


def window_sample(trace: np.ndarray, window: int, period: int) -> np.ndarray:
    """Concatenate one ``window``-long slice from every ``period`` entries."""
    _check(window, period)
    n = trace.shape[0]
    if n == 0:
        return trace.copy()
    starts = np.arange(0, n, period)
    pieces = [trace[s : s + window] for s in starts]
    return np.concatenate(pieces)


def iter_sample_windows(
    trace: np.ndarray, window: int, period: int
) -> Iterator[np.ndarray]:
    """Yield each sampled window separately (no artificial stitching)."""
    _check(window, period)
    n = trace.shape[0]
    for s in range(0, n, period):
        piece = trace[s : s + window]
        if piece.shape[0]:
            yield piece


def sample_ratio(n: int, window: int, period: int) -> float:
    """Fraction of a length-``n`` trace that window sampling keeps."""
    _check(window, period)
    if n == 0:
        return 1.0
    kept = sum(min(window, n - s) for s in range(0, n, period))
    return kept / n
