"""LRU stack with O(1) access, kernel-style hash + linked list
(paper Sec. II-F, "Stack Processing").

Both locality models run a stack simulation of the trace (Mattson et al.).
The paper accelerates stack search the way the Linux kernel manages virtual
pages: a linked list maintains order, a hash table finds entries in O(1).
:class:`LRUStack` is that structure: a doubly-linked list of distinct
symbols in most-recently-used-first order, plus a dict from symbol to node.

Operations
----------
* :meth:`access` — move/insert a symbol to the MRU position, returning its
  previous depth (1 = was already MRU) or ``None`` for a cold access.
* :meth:`top` — iterate the ``k`` most recently used symbols, optionally
  stopping early (the affinity analysis only inspects the top ``w_max``).
* optional *capacity* — bounded stacks evict from the LRU end, which is how
  the TRG construction limits its co-occurrence window to 2C.
"""

from __future__ import annotations

from typing import Hashable, Iterator, Optional

__all__ = ["LRUStack"]


class _Node:
    __slots__ = ("key", "prev", "next")

    def __init__(self, key: Hashable):
        self.key = key
        self.prev: Optional["_Node"] = None
        self.next: Optional["_Node"] = None


class LRUStack:
    """Doubly-linked LRU stack with O(1) membership and move-to-front."""

    def __init__(self, capacity: Optional[int] = None):
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive or None")
        self.capacity = capacity
        self._nodes: dict[Hashable, _Node] = {}
        # Sentinels avoid None checks in the hot path.
        self._head = _Node(None)
        self._tail = _Node(None)
        self._head.next = self._tail
        self._tail.prev = self._head

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._nodes

    def _unlink(self, node: _Node) -> None:
        node.prev.next = node.next  # type: ignore[union-attr]
        node.next.prev = node.prev  # type: ignore[union-attr]

    def _push_front(self, node: _Node) -> None:
        first = self._head.next
        node.prev = self._head
        node.next = first
        self._head.next = node
        first.prev = node  # type: ignore[union-attr]

    def depth(self, key: Hashable) -> Optional[int]:
        """1-based depth of ``key`` (1 = MRU); ``None`` if absent.

        O(depth) — only used by tests and small-scale reference code; the
        production analyses never query arbitrary depths.
        """
        node = self._head.next
        d = 1
        while node is not self._tail:
            if node.key == key:
                return d
            node = node.next
            d += 1
        return None

    def access(self, key: Hashable) -> Optional[int]:
        """Reference ``key``: move it to MRU; return its previous depth.

        The previous depth equals the number of distinct symbols accessed
        since (and including) the previous access to ``key`` — the LRU stack
        distance.  Cold accesses return ``None``.  Computing the depth costs
        O(previous depth); callers that don't need it should use
        :meth:`touch`.
        """
        node = self._nodes.get(key)
        if node is None:
            self._insert_new(key)
            return None
        # Count depth while unlinking.
        d = 1
        cur = self._head.next
        while cur is not node:
            cur = cur.next  # type: ignore[assignment]
            d += 1
        self._unlink(node)
        self._push_front(node)
        return d

    def touch(self, key: Hashable) -> bool:
        """Reference ``key`` without computing depth; True if it was present."""
        node = self._nodes.get(key)
        if node is None:
            self._insert_new(key)
            return False
        self._unlink(node)
        self._push_front(node)
        return True

    def _insert_new(self, key: Hashable) -> None:
        node = _Node(key)
        self._nodes[key] = node
        self._push_front(node)
        if self.capacity is not None and len(self._nodes) > self.capacity:
            lru = self._tail.prev
            assert lru is not None and lru is not self._head
            self._unlink(lru)
            del self._nodes[lru.key]

    def top(self, k: Optional[int] = None) -> Iterator[Hashable]:
        """Iterate symbols from MRU downward, at most ``k`` of them."""
        node = self._head.next
        count = 0
        while node is not self._tail and (k is None or count < k):
            yield node.key
            node = node.next
            count += 1

    def walk_until(self, key: Hashable, limit: Optional[int] = None) -> Optional[list[Hashable]]:
        """Symbols strictly above ``key`` in the stack (MRU side).

        Returns ``None`` if ``key`` is absent or deeper than ``limit``.
        Used by TRG construction: the blocks above X's previous position are
        exactly those interleaved between X's two successive occurrences.
        """
        if key not in self._nodes:
            return None
        out: list[Hashable] = []
        node = self._head.next
        steps = 0
        while node is not self._tail:
            if node.key == key:
                return out
            out.append(node.key)
            steps += 1
            if limit is not None and steps >= limit:
                return None
            node = node.next
        return None  # pragma: no cover - unreachable when key present

    def as_list(self) -> list[Hashable]:
        """Full stack contents, MRU first (for tests)."""
        return list(self.top())
