"""SMT (hyper-threading) co-run throughput model.

Two hyper-threads share one core's issue resources and the L1I cache.  The
cache side is handled by :mod:`repro.cache.shared` (it inflates each
thread's miss count); this module models the *core* side and produces the
numbers behind the paper's Fig. 7:

* a thread's stall cycles overlap with the peer's compute cycles — that
  overlap is hyper-threading's throughput gain (15-30% in the paper);
* two threads demanding issue slots simultaneously serialize — that is the
  co-run slowdown of each individual program.

Model.  For thread *i* let ``c_i`` be compute cycles and ``s_i`` stall
cycles (from :class:`~repro.machine.timing.ThreadCost`, with *co-run* miss
counts).  While both threads run, thread *i*'s effective cost is

    T'_i = c_i * (1 + alpha * u_j) + s_i

where ``u_j`` is the peer's core utilization under co-run — the probability
a compute cycle collides with a peer compute cycle — and ``alpha``
(:attr:`~repro.machine.timing.TimingParams.smt_contention`) is how much of
a collision actually serializes (SMT issue width absorbs part of it).
``u`` depends on the co-run costs themselves, so the pair is solved by
fixed-point iteration (converges in a handful of rounds; monotone and
bounded).

Makespan.  Threads progress concurrently; when the first finishes, the
survivor continues at its *solo* rate.  Throughput improvement of the
co-run over back-to-back solo execution is ``(T1 + T2) / makespan - 1``.
"""

from __future__ import annotations

from dataclasses import dataclass

from .timing import ThreadCost, TimingParams

__all__ = ["CoRunTiming", "corun_pair"]


@dataclass(frozen=True)
class CoRunTiming:
    """Timing outcome of one co-run pair."""

    #: per-thread cycles to finish its work under co-run contention
    #: (as if co-run conditions persisted for its whole execution).
    corun_cycles: tuple[float, float]
    #: per-thread solo cycles (same workload, solo miss counts).
    solo_cycles: tuple[float, float]
    #: wall-clock cycles to finish both programs, co-run then solo tail.
    makespan: float

    @property
    def throughput_improvement(self) -> float:
        """Fig. 7 metric: co-run vs serial solo completion of both programs."""
        serial = self.solo_cycles[0] + self.solo_cycles[1]
        return serial / self.makespan - 1.0

    def corun_slowdown(self, i: int) -> float:
        """How much slower thread ``i`` runs under co-run (>= 1)."""
        return self.corun_cycles[i] / self.solo_cycles[i]


def _fixed_point(
    costs: tuple[ThreadCost, ThreadCost], alpha: float, beta: float
) -> tuple[float, float]:
    """Solve the mutual-contention fixed point; returns co-run cycles.

    ``alpha`` is the issue-slot collision factor; ``beta`` is the shared
    front-end coupling — the fraction of the peer's instruction-miss stall
    cycles that also block this thread's fetch.
    """
    c = (costs[0].compute_cycles, costs[1].compute_cycles)
    s = (costs[0].stall_cycles, costs[1].stall_cycles)
    ic = (costs[0].icache_cycles, costs[1].icache_cycles)
    # Start from solo utilizations.
    t = [c[0] + s[0], c[1] + s[1]]
    for _ in range(20):
        u = [c[0] / t[0] if t[0] else 0.0, c[1] / t[1] if t[1] else 0.0]
        t_new = [
            c[0] * (1.0 + alpha * u[1]) + s[0] + beta * ic[1],
            c[1] * (1.0 + alpha * u[0]) + s[1] + beta * ic[0],
        ]
        if abs(t_new[0] - t[0]) < 1e-9 and abs(t_new[1] - t[1]) < 1e-9:
            t = t_new
            break
        t = t_new
    return t[0], t[1]


def corun_pair(
    corun_costs: tuple[ThreadCost, ThreadCost],
    solo_costs: tuple[ThreadCost, ThreadCost],
    params: TimingParams = TimingParams(),
) -> CoRunTiming:
    """Timing of a co-run pair.

    ``corun_costs`` carry the *shared-cache* miss counts (from
    :func:`repro.cache.shared.simulate_shared`); ``solo_costs`` carry the
    solo miss counts.  Both describe the same instruction streams.
    """
    t1, t2 = _fixed_point(
        corun_costs, params.smt_contention, params.smt_fetch_coupling
    )
    solo1 = solo_costs[0].total_cycles
    solo2 = solo_costs[1].total_cycles

    # Concurrent phase ends when the faster finisher completes.
    if t1 <= t2:
        first, other_corun, other_solo = t1, t2, solo2
    else:
        first, other_corun, other_solo = t2, t1, solo1
    # Survivor has completed fraction first/other_corun of its work; the
    # rest runs at solo speed.
    if other_corun > 0:
        remaining = max(0.0, 1.0 - first / other_corun) * other_solo
    else:
        remaining = 0.0
    makespan = first + remaining
    # Core-capacity floor: one core cannot retire more than one compute
    # cycle per cycle, so two threads' compute demand bounds the makespan
    # from below (binding for compute-saturated pairs, where the
    # probabilistic collision term is too optimistic).
    makespan = max(
        makespan,
        corun_costs[0].compute_cycles + corun_costs[1].compute_cycles,
    )
    return CoRunTiming(
        corun_cycles=(t1, t2),
        solo_cycles=(solo1, solo2),
        makespan=makespan,
    )
