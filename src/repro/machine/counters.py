"""Hardware-performance-counter emulation (PAPI substitute).

The paper measures miss ratios through two channels and reports both:

* **hardware counters** (PAPI on the Xeon) — include every real-machine
  effect; the paper singles out prefetching as the reason hardware-measured
  miss reductions are systematically *smaller* than simulated ones;
* **simulator** (Pin-based) — a clean LRU cache, no prefetch.

This module is the hardware channel: it simulates with the next-line
prefetcher enabled and perturbs the result with small, seeded,
measurement-style noise (run-to-run variation of counter readings).  The
clean channel is plain :func:`repro.cache.setassoc.simulate` — or,
everywhere the experiments route it, the stack-distance kernel
(:mod:`repro.cache.fastsim`), whose domain is exactly that clean cold
prefetch-free cache.  The hardware channel can never use the kernel:
prefetching changes set contents in ways reuse distances do not capture.

Miss *ratios* here follow hardware convention: misses divided by retired
instructions (PAPI ``ICA_MISS / TOT_INS``), not by line accesses.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..cache.config import CacheConfig
from ..cache.setassoc import simulate
from ..cache.shared import simulate_shared

__all__ = ["CounterReading", "measure_solo", "measure_corun", "reading_from_stats"]


@dataclass(frozen=True)
class CounterReading:
    """One hardware-counter measurement.

    Co-run readings also carry the prefetch-help split from
    :class:`repro.cache.shared.SharedCacheStats` (per-pass scaled, no
    noise — these are diagnostic attributions, not noisy counters):
    ``prefetch_help_self`` counts consumed prefetches this thread issued
    itself, ``prefetch_help_cross`` those a co-running peer issued.
    Solo readings leave both at zero.
    """

    instructions: int
    icache_misses: int
    prefetch_help_self: float = 0.0
    prefetch_help_cross: float = 0.0

    @property
    def miss_ratio(self) -> float:
        """Misses per instruction (hardware convention)."""
        return self.icache_misses / self.instructions if self.instructions else 0.0


def _noise_factor(noise_sigma: float, *key_parts: object) -> float:
    """Deterministic pseudo-noise in ``exp(N(0, sigma))`` form.

    Seeded from the measurement identity so repeated "runs" of the same
    configuration reproduce the same reading — the reproducibility knob the
    real machine lacks, which tests rely on.
    """
    if noise_sigma <= 0:
        return 1.0
    digest = hashlib.sha256("|".join(map(str, key_parts)).encode()).digest()
    seed = int.from_bytes(digest[:8], "little")
    draw = np.random.default_rng(seed).normal(0.0, noise_sigma)
    return float(np.exp(draw))


def reading_from_stats(
    stats,
    instructions: int,
    cfg: CacheConfig,
    *,
    noise_sigma: float = 0.01,
    measurement_id: str = "",
) -> CounterReading:
    """Turn raw prefetch-simulation stats into a noisy counter reading.

    Split out of :func:`measure_solo` so callers that obtained the stats
    elsewhere — a memo-cache hit, a worker process — apply the *same*
    seeded noise and get bit-identical readings.
    """
    factor = _noise_factor(noise_sigma, "solo", measurement_id, instructions, cfg)
    misses = int(round(stats.misses * factor))
    return CounterReading(instructions=instructions, icache_misses=misses)


def measure_solo(
    lines: np.ndarray,
    instructions: int,
    cfg: CacheConfig,
    *,
    noise_sigma: float = 0.01,
    measurement_id: str = "",
    memo=None,
) -> CounterReading:
    """Hardware-channel solo measurement: prefetch on, noisy counters.

    ``memo`` (a :class:`repro.perf.memo.SimMemo`) replays an identical
    prior simulation instead of re-running the LRU loop.
    """
    sim = simulate if memo is None else memo.simulate
    stats = sim(lines, cfg, prefetch=True)
    return reading_from_stats(
        stats,
        instructions,
        cfg,
        noise_sigma=noise_sigma,
        measurement_id=measurement_id,
    )


def measure_corun(
    streams: list[np.ndarray],
    instructions: list[int],
    cfg: CacheConfig,
    *,
    quantum: int = 8,
    noise_sigma: float = 0.01,
    measurement_id: str = "",
) -> list[CounterReading]:
    """Hardware-channel co-run measurement for each thread.

    Miss counts are scaled from issued accesses to one nominal pass so the
    ratio denominators (the given per-pass instruction counts) line up even
    when the shared simulation wrapped a stream multiple times.
    """
    if len(streams) != len(instructions):
        raise ValueError("streams and instruction counts must align")
    stats = simulate_shared(streams, cfg, quantum=quantum, prefetch=True)
    readings = []
    for t, (st, instr) in enumerate(zip(stats, instructions)):
        n_stream = len(streams[t])
        scale = n_stream / st.accesses if st.accesses else 0.0
        misses_per_pass = st.misses * scale
        factor = _noise_factor(noise_sigma, "corun", measurement_id, t, instr, cfg)
        readings.append(
            CounterReading(
                instructions=instr,
                icache_misses=int(round(misses_per_pass * factor)),
                prefetch_help_self=st.prefetch_hits_self * scale,
                prefetch_help_cross=st.prefetch_hits_cross * scale,
            )
        )
    return readings
