"""Job co-scheduling: which programs should share a core?

The paper cites Jiang et al. [10] for the complexity of optimal job
co-scheduling on CMPs; its own evaluation fixes the pairings and varies
the layout.  This module closes the loop: given per-pair co-run timings,
find the **pairing** (perfect matching) of 2k programs onto k SMT cores
that minimizes the total makespan.

For the paper's eight study programs the matching space is only
``7!! = 105`` pairings, so exact search is trivial; the module still
exposes a greedy heuristic for larger inputs (and because the exact
algorithm is NP-hard in general — the same structural wall as layout
itself, which is the thematic point).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

__all__ = ["Pairing", "all_pairings", "best_pairing", "greedy_pairing"]


@dataclass(frozen=True)
class Pairing:
    """One assignment of programs to cores (pairs share a core)."""

    pairs: tuple[tuple[str, str], ...]
    #: total cost under the cost function it was searched with (e.g. the
    #: sum of per-pair makespans = time to drain the whole job set on k
    #: cores run in lockstep).
    cost: float


def all_pairings(items: Sequence[str]):
    """Yield every perfect matching of an even-sized item list."""
    items = list(items)
    if len(items) % 2:
        raise ValueError("need an even number of programs")
    if not items:
        yield ()
        return
    first = items[0]
    for i in range(1, len(items)):
        partner = items[i]
        rest = items[1:i] + items[i + 1 :]
        for sub in all_pairings(rest):
            yield ((first, partner),) + sub


def _canonical(pairing: Sequence[tuple[str, str]]) -> tuple[tuple[str, str], ...]:
    """Order-independent normal form: sort within each pair, then sort pairs.

    Both searches assume a symmetric ``pair_cost`` (co-run makespan of a
    shared core does not depend on which member is listed first), so the
    canonical form costs the same as any permutation of it.
    """
    return tuple(sorted(tuple(sorted(p)) for p in pairing))


def best_pairing(
    items: Sequence[str], pair_cost: Callable[[str, str], float]
) -> Pairing:
    """Exact minimum-cost perfect matching by exhaustive search.

    Fine up to ~12 items (10395 matchings); beyond that use
    :func:`greedy_pairing`.

    Ties are broken by the lexicographically smallest canonical pairing
    (pairs sorted within and across), so the result — and every journal
    derived from it — is invariant to the input ordering of ``items``.
    Assumes ``pair_cost`` is symmetric.
    """
    best: Pairing | None = None
    for pairing in all_pairings(items):
        canon = _canonical(pairing)
        cost = sum(pair_cost(a, b) for a, b in canon)
        if best is None or cost < best.cost or (cost == best.cost and canon < best.pairs):
            best = Pairing(pairs=canon, cost=cost)
    if best is None:
        raise ValueError("no pairing found")
    return best


def greedy_pairing(
    items: Sequence[str], pair_cost: Callable[[str, str], float]
) -> Pairing:
    """Greedy matching: repeatedly pair the cheapest remaining couple.

    The classic heuristic for the NP-hard general problem; the test suite
    checks it never beats the exact optimum and usually lands close.

    Candidates are scanned in sorted order and cost ties are broken by
    the lexicographically smallest pair, so the output is invariant to
    the input ordering of ``items`` (assuming symmetric ``pair_cost``).
    """
    remaining = sorted(items)
    if len(remaining) % 2:
        raise ValueError("need an even number of programs")
    pairs: list[tuple[str, str]] = []
    cost = 0.0
    while remaining:
        best_pair = None
        best_cost = None
        for i in range(len(remaining)):
            for j in range(i + 1, len(remaining)):
                pair = (remaining[i], remaining[j])
                c = pair_cost(*pair)
                if best_cost is None or c < best_cost or (c == best_cost and pair < best_pair):
                    best_cost = c
                    best_pair = pair
        assert best_pair is not None
        pairs.append(best_pair)
        cost += best_cost or 0.0
        remaining.remove(best_pair[0])
        remaining.remove(best_pair[1])
    return Pairing(pairs=tuple(pairs), cost=cost)
