"""Real-machine stand-in: CPI timing, SMT throughput, hardware counters."""

from .counters import CounterReading, measure_corun, measure_solo
from .scheduler import Pairing, all_pairings, best_pairing, greedy_pairing
from .smt import CoRunTiming, corun_pair
from .timing import ThreadCost, TimingParams, speedup, thread_cost

__all__ = [
    "CoRunTiming",
    "Pairing",
    "all_pairings",
    "best_pairing",
    "greedy_pairing",
    "CounterReading",
    "ThreadCost",
    "TimingParams",
    "corun_pair",
    "measure_corun",
    "measure_solo",
    "speedup",
    "thread_cost",
]
