"""CPI timing model: turning miss counts into run times.

The paper's headline observation is that large instruction-cache miss
reductions (20-50%) translate into *small* end-to-end speedups (0-3% solo,
up to ~10% co-run), because SPEC programs are data-intensive: instruction
misses are a minor component of CPI.  This module reproduces that
relationship with an explicit, documented cycle accounting:

    cycles = N * base_cpi                 (pipeline work)
           + N * data_cpi                 (data-side stalls; program trait)
           + icache_misses * miss_penalty (instruction-side stalls)

``data_cpi`` is a per-program characteristic set by the workload suite
(data-bound programs like mcf get a large value, compute-bound ones a small
one).  ``miss_penalty`` defaults to an L2-hit latency, the common case for
L1I misses.

The *compute* vs *stall* split also feeds the SMT throughput model
(:mod:`repro.machine.smt`): stall cycles of one hyper-thread overlap with
compute cycles of the other, which is where hyper-threading's throughput
gain comes from.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TimingParams", "ThreadCost", "thread_cost", "speedup"]


@dataclass(frozen=True)
class TimingParams:
    """Core timing constants (identical across programs)."""

    #: cycles of pipeline work per instruction (issue-limited component).
    base_cpi: float = 1.0
    #: L1I miss penalty in cycles (L2 hit latency).
    icache_miss_penalty: float = 14.0
    #: fraction of a peer compute cycle that delays this thread's compute
    #: when both hyper-threads demand issue slots (1.0 = full serialization;
    #: real SMT cores absorb part of the collision in unused issue width).
    smt_contention: float = 1.0
    #: fraction of the peer's instruction-cache stall cycles that also stall
    #: this thread.  Hyper-threads share the fetch/decode front-end and the
    #: L1I miss-handling resources, so a sibling's instruction misses are
    #: not free — this coupling is what lets one program's layout
    #: optimization speed up the *pair* (the paper's Fig. 7 magnification).
    smt_fetch_coupling: float = 1.0


@dataclass(frozen=True)
class ThreadCost:
    """Cycle breakdown of one thread's execution."""

    instructions: int
    #: cycles the thread occupies core issue resources.
    compute_cycles: float
    #: cycles the thread is stalled (data + instruction misses).
    stall_cycles: float
    #: the instruction-cache share of ``stall_cycles`` (couples to the
    #: sibling hyper-thread through the shared front-end).
    icache_cycles: float = 0.0

    @property
    def total_cycles(self) -> float:
        return self.compute_cycles + self.stall_cycles

    @property
    def cpi(self) -> float:
        return self.total_cycles / self.instructions if self.instructions else 0.0

    @property
    def compute_fraction(self) -> float:
        """Fraction of time the thread demands the core (SMT utilization)."""
        total = self.total_cycles
        return self.compute_cycles / total if total else 0.0


def thread_cost(
    instructions: int,
    icache_misses: int,
    data_cpi: float,
    params: TimingParams = TimingParams(),
) -> ThreadCost:
    """Cycle cost of executing ``instructions`` with the given miss count.

    ``data_cpi`` is the program's data-side stall contribution per
    instruction (its "data intensity").
    """
    if instructions < 0 or icache_misses < 0 or data_cpi < 0:
        raise ValueError("negative inputs make no sense")
    icache_cycles = icache_misses * params.icache_miss_penalty
    return ThreadCost(
        instructions=instructions,
        compute_cycles=instructions * params.base_cpi,
        stall_cycles=instructions * data_cpi + icache_cycles,
        icache_cycles=icache_cycles,
    )


def speedup(baseline_cycles: float, optimized_cycles: float) -> float:
    """Relative speedup: 1.02 means the optimized run is 2% faster."""
    if optimized_cycles <= 0:
        raise ValueError("optimized cycles must be positive")
    return baseline_cycles / optimized_cycles
