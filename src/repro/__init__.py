"""repro — reproduction of "Code Layout Optimization for Defensiveness and
Politeness in Shared Cache" (Li, Luo, Ding, Hu, Ye; ICPP 2014).

Subpackages
-----------
- :mod:`repro.ir` — miniature compiler IR, codegen, and the two layout
  transformations (function reordering, inter-procedural BB reordering);
- :mod:`repro.engine` — deterministic interpreter, instrumentation, and the
  instruction-fetch model;
- :mod:`repro.trace` — trimming, pruning, sampling, stack processing;
- :mod:`repro.locality` — reuse distance, all-window footprint, HOTL
  conversion, and the formal defensiveness/politeness miss model;
- :mod:`repro.cache` — set-associative LRU simulation, solo and SMT-shared;
- :mod:`repro.machine` — CPI timing, SMT throughput, hardware-counter
  emulation;
- :mod:`repro.core` — the paper's contribution: w-window affinity, TRG,
  the four optimizers, and goal scoring;
- :mod:`repro.workloads` — the 29-program synthetic SPEC stand-in suite;
- :mod:`repro.experiments` — one driver per paper table/figure, with a
  hardened runner (``--keep-going``, journal + ``--resume``);
- :mod:`repro.lint` — static layout analyzer (rule-based diagnostics);
- :mod:`repro.robust` — error taxonomy, crash-safe artifact IO, run
  journal, and the fault-injection harness.

Quickstart::

    from repro.workloads import build
    from repro.engine import collect_trace
    from repro.core import bb_affinity

    prog, module = build("syn-omnetpp")
    profile = collect_trace(module, prog.spec.test_input())
    layout = bb_affinity(module, profile)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
