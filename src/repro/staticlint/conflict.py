"""Static conflict prediction: closed-form cache geometry over a layout.

Where the trace-driven :class:`~repro.lint.context.LintContext` derives
heat from an instrumented run, :class:`StaticLintContext` derives the same
projections from a :class:`~repro.staticlint.frequency.StaticProfile`:

* **line heat** — expected dynamic fetches of each cache line, the sum of
  the estimated execution counts of the blocks spanning it (a block
  touches each of its lines once per execution);
* **set pressure** — lines map to sets in closed form
  (``set = line mod n_sets``, a bit-mask for the power-of-two geometries
  here), so the hot-line population of every set is a static quantity;
* **conflict scores** — within a set whose *warm* lines (estimated heat
  > 0) number ``k > A`` ways, LRU cannot keep more than the ``A``
  hottest resident; the heat of the remaining lines is unservable
  residency demand.  Each warm line in the set is charged its own heat
  times the set's unservable-demand fraction (overflow heat / total set
  heat) — the static analogue of an LRU set thrashing proportionally to
  how oversubscribed it is, and the quantity the certification mode
  rank-correlates against measured per-line *reuse* misses;
* **footprint bound** — sorting line heats descending bounds the
  footprint curve: the number of distinct lines needed to cover any
  fraction of all fetches, without a trace.
"""

from __future__ import annotations

from functools import cached_property
from typing import TYPE_CHECKING

import numpy as np

from ..cache.config import CacheConfig
from ..engine.fetch import line_spans
from ..ir.module import Module
from .frequency import StaticProfile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..ir.codegen import AddressMap

__all__ = ["StaticLintContext"]


class StaticLintContext:
    """Lazily-derived static facts shared by the S-pack rules."""

    def __init__(
        self,
        module: Module,
        amap: "AddressMap",
        cache: CacheConfig,
        profile: StaticProfile,
        *,
        hot_coverage: float = 0.9,
    ) -> None:
        if not 0.0 < hot_coverage <= 1.0:
            raise ValueError("hot_coverage must be in (0, 1]")
        if profile.module is not module:
            raise ValueError("profile was computed for a different module")
        self.module = module
        self.amap = amap
        self.cache = cache
        self.profile = profile
        self.hot_coverage = hot_coverage

    # -- identity ---------------------------------------------------------

    @property
    def n_blocks(self) -> int:
        return self.module.n_blocks

    def block_name(self, gid: int) -> str:
        b = self.module.block_by_gid(gid)
        return f"{b.func}:{b.name}"

    # -- estimated heat ---------------------------------------------------

    @property
    def block_freq(self) -> np.ndarray:
        """Estimated execution count per gid (float64)."""
        return self.profile.block_freq

    @cached_property
    def hot_gids(self) -> list[int]:
        """Estimated-hot blocks, most frequent first (coverage prefix)."""
        return self.profile.hot_gids(self.hot_coverage)

    @cached_property
    def hot_mask(self) -> np.ndarray:
        mask = np.zeros(self.n_blocks, dtype=bool)
        if self.hot_gids:
            mask[self.hot_gids] = True
        return mask

    def is_hot(self, gid: int) -> bool:
        return bool(self.hot_mask[gid])

    # -- geometry ---------------------------------------------------------

    @cached_property
    def _spans(self) -> tuple[np.ndarray, np.ndarray]:
        return line_spans(self.amap, self.cache.line_bytes)

    @property
    def first_line(self) -> np.ndarray:
        return self._spans[0]

    @property
    def lines_per_block(self) -> np.ndarray:
        return self._spans[1]

    @cached_property
    def position(self) -> dict[int, int]:
        """gid -> index in layout order."""
        return {gid: i for i, gid in enumerate(self.amap.order)}

    @cached_property
    def image_lines(self) -> list[int]:
        """Every line index the image occupies, ascending."""
        first, n_lines = self._spans
        lines: set[int] = set()
        for gid in range(self.n_blocks):
            lo = int(first[gid])
            lines.update(range(lo, lo + int(n_lines[gid])))
        return sorted(lines)

    # -- line-level projections ------------------------------------------

    @cached_property
    def line_heat(self) -> dict[int, float]:
        """line index -> estimated dynamic fetches of that line."""
        heat: dict[int, float] = {}
        freq = self.block_freq
        first, n_lines = self._spans
        for gid in np.nonzero(freq > 0.0)[0]:
            f = float(freq[gid])
            lo = int(first[gid])
            for line in range(lo, lo + int(n_lines[gid])):
                heat[line] = heat.get(line, 0.0) + f
        return heat

    @cached_property
    def hot_lines(self) -> list[int]:
        """Distinct lines touched by estimated-hot blocks."""
        lines: set[int] = set()
        first, n_lines = self._spans
        for gid in self.hot_gids:
            lo = int(first[gid])
            lines.update(range(lo, lo + int(n_lines[gid])))
        return sorted(lines)

    @cached_property
    def hot_line_blocks(self) -> dict[int, list[int]]:
        """line index -> estimated-hot gids spanning it (hottest first)."""
        by_line: dict[int, list[int]] = {}
        first, n_lines = self._spans
        for gid in self.hot_gids:  # already heat-ordered
            lo = int(first[gid])
            for line in range(lo, lo + int(n_lines[gid])):
                by_line.setdefault(line, []).append(gid)
        return by_line

    @cached_property
    def line_hot_bytes(self) -> dict[int, int]:
        """line index -> bytes occupied by estimated-hot blocks."""
        lb = self.cache.line_bytes
        occ: dict[int, int] = {}
        for gid in self.hot_gids:
            start, end = self.amap.span(gid)
            for line in range(start // lb, (end - 1) // lb + 1):
                lo = max(start, line * lb)
                hi = min(end, (line + 1) * lb)
                occ[line] = occ.get(line, 0) + (hi - lo)
        return occ

    # -- set mapping and conflict scores ---------------------------------

    @cached_property
    def hot_lines_by_set(self) -> dict[int, list[int]]:
        """cache set -> hot lines mapped to it (closed-form mapping)."""
        by_set: dict[int, list[int]] = {}
        for line in self.hot_lines:
            by_set.setdefault(self.cache.set_of_line(line), []).append(line)
        return by_set

    @cached_property
    def warm_lines_by_set(self) -> dict[int, list[int]]:
        """cache set -> lines with any estimated heat mapped to it.

        The conflict population: even a line outside the hot coverage
        prefix occupies a way when fetched and participates in LRU
        eviction, so set pressure counts every warm line.
        """
        by_set: dict[int, list[int]] = {}
        for line in self.image_lines:
            if self.line_heat.get(line, 0.0) > 0.0:
                by_set.setdefault(self.cache.set_of_line(line), []).append(line)
        return by_set

    @cached_property
    def conflict_scores(self) -> dict[int, float]:
        """line index -> predicted conflict-miss volume (0 for calm sets).

        Every line of the image gets a score.  For a set whose warm-line
        population exceeds the associativity ``A``, LRU can keep at most
        the ``A`` hottest lines resident; the heat of the rest is
        unservable residency demand.  Each warm line in the set is
        charged its own heat times the set's unservable-demand fraction
        (overflow heat / total set heat).  Lines in calm sets (and
        never-fetched lines) score 0.  Calibrated against measured
        per-line reuse misses by :mod:`repro.staticlint.certify`.
        """
        assoc = self.cache.assoc
        heat = self.line_heat
        scores: dict[int, float] = {line: 0.0 for line in self.image_lines}
        for _set_idx, lines in self.warm_lines_by_set.items():
            if len(lines) <= assoc:
                continue
            heats = sorted((heat[line] for line in lines), reverse=True)
            total = sum(heats)
            if total <= 0.0:
                continue
            overflow = sum(heats[assoc:]) / total
            for line in lines:
                scores[line] = heat[line] * overflow
        return scores

    # -- footprint bound --------------------------------------------------

    @cached_property
    def _heat_curve(self) -> np.ndarray:
        """Line heats sorted descending (the footprint curve's derivative)."""
        if not self.line_heat:
            return np.zeros(0)
        return np.sort(np.array(list(self.line_heat.values())))[::-1]

    def lines_for_coverage(self, fraction: float) -> int:
        """Static bound on the footprint: fewest lines covering
        ``fraction`` of all estimated fetches."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        curve = self._heat_curve
        total = float(curve.sum())
        if total <= 0.0:
            return 0
        cum = np.cumsum(curve)
        return int(np.searchsorted(cum, fraction * total, side="left")) + 1
