"""The static (no-trace) lint rule pack: S001–S005.

Static mirrors of the trace-driven L-pack, driven entirely by the
heuristic :class:`~repro.staticlint.frequency.StaticProfile`:

=====  ==========================  =====================================
id     name                        predicts
=====  ==========================  =====================================
S001   static-set-conflict         conflict misses: estimated-hot lines
                                   piled onto one set beyond its ways
S002   static-footprint-bound      capacity risk: the statically bounded
                                   footprint curve vs. cache capacity
S003   hot-fallthrough-break       fetch discontinuity cost, weighted by
                                   estimated frequency × edge probability
S004   far-hot-call                frequent call edges whose callee is
                                   placed far from the caller
S005   static-layout-integrity     structural breakage (same audits as
                                   L006, relabelled)
=====  ==========================  =====================================

Diagnostics flow through the same :class:`~repro.lint.diagnostics`
machinery as the L-pack, so reports, JSON rendering and comparison all
work unchanged; only the registry instance differs (S-pack ids can never
collide with L-pack ids).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Optional

from ..cache.config import PAPER_L1I, CacheConfig
from ..ir.codegen import AddressMap
from ..ir.module import Module
from ..ir.transforms import LayoutResult
from ..lint.diagnostics import Diagnostic, LintReport, Severity
from ..lint.integrity import audit_address_map
from ..lint.rules import Rule, RuleRegistry
from .conflict import StaticLintContext
from .frequency import FrequencyConfig, StaticProfile, estimate_frequencies

__all__ = [
    "STATIC_REGISTRY",
    "StaticLintConfig",
    "static_rule",
    "all_static_rules",
    "run_static_lint",
]

#: registry of the static rule pack (separate instance from the L-pack).
STATIC_REGISTRY = RuleRegistry()

static_rule = STATIC_REGISTRY.rule


def all_static_rules() -> list[Rule]:
    """Every registered static rule, ordered by id."""
    return STATIC_REGISTRY.all()


@dataclass(frozen=True)
class StaticLintConfig:
    """Per-run policy and tunables for the static pack."""

    #: fraction of estimated executions the hot set must cover.
    hot_coverage: float = 0.9
    #: rule ids to skip entirely.
    disabled: frozenset[str] = frozenset()
    #: rule id -> severity every diagnostic of that rule is forced to.
    severity_overrides: Mapping[str, Severity] = field(default_factory=dict)
    #: cap on per-finding diagnostics a rule emits (aggregates are exempt).
    max_reports: int = 20
    #: branch-heuristic tunables for the frequency estimator.
    frequency: FrequencyConfig = field(default_factory=FrequencyConfig)
    #: S004: calls further than this many cache-sized spans are "far".
    call_distance_cache_spans: float = 1.0
    #: S003/S004: a site below this share of the hottest site is ignored.
    min_site_share: float = 0.01

    def enabled_rules(self) -> list[Rule]:
        return [r for r in all_static_rules() if r.id not in self.disabled]


@static_rule(
    "S001",
    "static-set-conflict",
    "estimated-hot lines mapped to one set beyond its associativity",
    Severity.WARNING,
)
def static_set_conflict(
    ctx: StaticLintContext, cfg: StaticLintConfig
) -> tuple[list[Diagnostic], dict]:
    """Closed-form conflict-miss predictor (no trace).

    The static counterpart of L001: the set population is every *warm*
    line (any estimated heat — even a lukewarm line occupies a way when
    fetched) and the per-line charge is the unservable-demand score of
    :attr:`StaticLintContext.conflict_scores`.  Findings name the hot
    blocks behind the hottest competing lines.
    """
    cache = ctx.cache
    heat = ctx.line_heat
    scores = ctx.conflict_scores
    total_warm_heat = sum(heat.values())

    findings = []
    charged_total = 0.0
    max_pressure = 0.0
    for set_idx, lines in ctx.warm_lines_by_set.items():
        pressure = len(lines) / cache.assoc
        max_pressure = max(max_pressure, pressure)
        if len(lines) <= cache.assoc:
            continue
        charged = sum(scores.get(line, 0.0) for line in lines)
        charged_total += charged
        n_hot = sum(1 for line in lines if line in ctx.hot_line_blocks)
        ranked = sorted(lines, key=lambda line: (-heat.get(line, 0.0), line))
        culprits: list[str] = []
        for line in ranked[: cache.assoc + 2]:
            for gid in ctx.hot_line_blocks.get(line, [])[:1]:
                name = ctx.block_name(gid)
                if name not in culprits:
                    culprits.append(name)
        findings.append(
            (
                charged,
                Diagnostic(
                    "S001",
                    Severity.WARNING,
                    f"set {set_idx}",
                    f"{len(lines)} estimated-warm lines compete for "
                    f"{cache.assoc} ways"
                    + (f" (e.g. {', '.join(culprits[:3])})" if culprits else ""),
                    {
                        "warm_lines": len(lines),
                        "hot_lines": n_hot,
                        "assoc": cache.assoc,
                        "pressure": round(pressure, 3),
                        "predicted_conflict_fetches": round(charged, 1),
                    },
                ),
            )
        )

    findings.sort(key=lambda t: (-t[0], t[1].location))
    diags = [d for _, d in findings[: cfg.max_reports]]
    if len(findings) > cfg.max_reports:
        diags.append(_truncation_note("S001", cfg.max_reports, len(findings)))

    score = charged_total / total_warm_heat if total_warm_heat else 0.0
    metrics = {
        "n_conflict_sets": len(findings),
        "n_sets_used": len(ctx.warm_lines_by_set),
        "max_pressure": round(max_pressure, 4),
        "predicted_conflict_fetches": round(charged_total, 1),
        "conflict_score": round(score, 6),
    }
    return diags, metrics


@static_rule(
    "S002",
    "static-footprint-bound",
    "statically bounded footprint curve vs. cache capacity",
    Severity.WARNING,
)
def static_footprint_bound(
    ctx: StaticLintContext, cfg: StaticLintConfig
) -> tuple[list[Diagnostic], dict]:
    """The paper's defensiveness threshold, bounded without a trace.

    Sorting estimated line heats descending bounds the footprint curve
    from below: covering ``hot_coverage`` of all fetches needs at least
    ``lines_for_coverage(hot_coverage)`` distinct lines.  Compared
    against capacity ``C`` exactly like L005: ``H >= C`` predicts
    capacity misses even solo, ``2H >= C`` predicts thrashing against a
    symmetric peer.
    """
    h = ctx.lines_for_coverage(ctx.hot_coverage) if ctx.line_heat else 0
    c = ctx.cache.n_lines
    ratio = h / c if c else 0.0
    diags: list[Diagnostic] = []
    if h >= c:
        diags.append(
            Diagnostic(
                "S002",
                Severity.WARNING,
                "layout",
                f"bounded hot footprint ({h} lines for "
                f"{ctx.hot_coverage:.0%} coverage) exceeds cache capacity "
                f"({c} lines): capacity misses predicted even solo",
                {"bound_lines": h, "capacity_lines": c, "footprint_ratio": round(ratio, 4)},
            )
        )
    elif 2 * h >= c:
        diags.append(
            Diagnostic(
                "S002",
                Severity.INFO,
                "layout",
                f"bounded hot footprint ({h} lines) exceeds half of capacity "
                f"({c} lines): predicted to thrash against a symmetric peer",
                {"bound_lines": h, "capacity_lines": c, "footprint_ratio": round(ratio, 4)},
            )
        )
    metrics = {
        "bound_lines": h,
        "hot_lines": len(ctx.hot_lines),
        "capacity_lines": c,
        "footprint_ratio": round(ratio, 6),
    }
    return diags, metrics


@static_rule(
    "S003",
    "hot-fallthrough-break",
    "estimated-hot fall-through edges laid out non-adjacently",
    Severity.WARNING,
)
def hot_fallthrough_break(
    ctx: StaticLintContext, cfg: StaticLintConfig
) -> tuple[list[Diagnostic], dict]:
    """Frequency-weighted broken-fall-through cost.

    The static analogue of L002: instead of charging each broken edge
    its measured execution count, it is charged the estimated block
    frequency times the heuristic probability of actually taking the
    fall-through edge — so a loop body's broken fall-through outranks a
    once-per-run one even though both are "broken" statically.
    """
    module, amap, pos = ctx.module, ctx.amap, ctx.position
    freq = ctx.block_freq
    edge_prob = ctx.profile.edge_prob
    broken = []
    n_broken_total = 0
    expected_jumps = 0.0
    for block in module.iter_blocks():
        ft = block.terminator.fallthrough_target()
        if ft is None:
            continue
        gid = block.gid
        target = module.function(block.func).block(ft).gid
        adjacent = (
            pos[target] == pos[gid] + 1
            and int(amap.starts[target]) == int(amap.starts[gid]) + int(amap.sizes[gid])
        )
        if adjacent:
            continue
        n_broken_total += 1
        weight = float(freq[gid]) * edge_prob[gid].get(target, 0.0)
        expected_jumps += weight
        if ctx.is_hot(gid):
            broken.append((weight, gid, target))

    broken.sort(key=lambda t: (-t[0], t[1]))
    cutoff = broken[0][0] * cfg.min_site_share if broken else 0.0
    reportable = [t for t in broken if t[0] >= cutoff]
    diags = [
        Diagnostic(
            "S003",
            Severity.WARNING,
            ctx.block_name(gid),
            f"estimated-hot fall-through to {ctx.block_name(target)} is broken",
            {
                "expected_jumps": round(weight, 1),
                "target": ctx.block_name(target),
            },
        )
        for weight, gid, target in reportable[: cfg.max_reports]
    ]
    if len(reportable) > cfg.max_reports:
        diags.append(_truncation_note("S003", cfg.max_reports, len(reportable)))

    metrics = {
        "n_broken_hot": len(broken),
        "n_broken_total": n_broken_total,
        "added_jumps": int(amap.added_jumps),
        "expected_dynamic_jumps": round(expected_jumps, 1),
    }
    return diags, metrics


@static_rule(
    "S004",
    "far-hot-call",
    "frequent call edges with the callee placed far from the caller",
    Severity.WARNING,
)
def far_hot_call(
    ctx: StaticLintContext, cfg: StaticLintConfig
) -> tuple[list[Diagnostic], dict]:
    """Distance-aware call locality (Codestitcher-style).

    A frequent call whose callee entry lies more than one cache span
    (``size_bytes`` × ``call_distance_cache_spans``) away cannot share
    residency with its caller; the fetch engine ping-pongs between two
    distant regions.  Each far call edge is charged its estimated dynamic
    call count.
    """
    module, amap = ctx.module, ctx.amap
    budget = ctx.cache.size_bytes * cfg.call_distance_cache_spans
    site_freq = ctx.profile.call_site_freq()
    max_freq = max(site_freq.values(), default=0.0)
    cutoff = max_freq * cfg.min_site_share

    findings = []
    n_far = 0
    weighted_cost = 0.0
    max_distance = 0
    for gid, calls in site_freq.items():
        if calls <= 0.0 or calls < cutoff:
            continue
        block = module.block_by_gid(gid)
        callee = block.terminator.callee()
        assert callee is not None
        entry_gid = module.function(callee).entry.gid
        src_start, _ = amap.span(gid)
        dst_start, _ = amap.span(entry_gid)
        distance = abs(dst_start - src_start)
        if distance <= budget:
            continue
        n_far += 1
        over = distance - budget
        weighted_cost += calls * (over / max(1.0, budget))
        max_distance = max(max_distance, distance)
        findings.append(
            (
                calls,
                Diagnostic(
                    "S004",
                    Severity.WARNING,
                    ctx.block_name(gid),
                    f"frequent call to {callee} spans {distance} bytes "
                    f"(> {int(budget)}B cache span)",
                    {
                        "estimated_calls": round(calls, 1),
                        "distance_bytes": int(distance),
                        "budget_bytes": int(budget),
                        "callee": callee,
                    },
                ),
            )
        )

    findings.sort(key=lambda t: (-t[0], t[1].location))
    diags = [d for _, d in findings[: cfg.max_reports]]
    if len(findings) > cfg.max_reports:
        diags.append(_truncation_note("S004", cfg.max_reports, len(findings)))

    metrics = {
        "n_far_calls": n_far,
        "n_call_sites": len(site_freq),
        "max_distance_bytes": int(max_distance),
        "weighted_distance_cost": round(weighted_cost, 1),
    }
    return diags, metrics


@static_rule(
    "S005",
    "static-layout-integrity",
    "permutation, overlap and gap audit of the address map",
    Severity.ERROR,
)
def static_layout_integrity(
    ctx: StaticLintContext, cfg: StaticLintConfig
) -> tuple[list[Diagnostic], dict]:
    """The L006 audits, re-labelled for the static pack.

    Delegates to the exact same audit as the trace-driven L006 rule, so
    both packs report identical structural diagnostics for identical
    breakage (the certification tests pin this parity).
    """
    diags = [replace(d, rule="S005") for d in audit_address_map(ctx.module, ctx.amap)]
    n_errors = sum(1 for d in diags if d.severity is Severity.ERROR)
    gap_bytes = sum(
        int(d.measured.get("gap_bytes", 0)) for d in diags if "gap_bytes" in d.measured
    )
    metrics = {
        "n_errors": n_errors,
        "gap_bytes": gap_bytes,
        "image_bytes": int(ctx.amap.image_bytes),
        "total_bytes": int(ctx.amap.total_bytes),
        "added_jumps": int(ctx.amap.added_jumps),
    }
    return diags, metrics


def _truncation_note(rule_id: str, shown: int, total: int) -> Diagnostic:
    return Diagnostic(
        rule_id,
        Severity.INFO,
        "layout",
        f"{total - shown} further finding(s) suppressed (showing top {shown})",
        {"n_total": total, "n_shown": shown},
    )


def run_static_lint(
    module: Module,
    layout: "LayoutResult | AddressMap",
    cache: CacheConfig = PAPER_L1I,
    config: Optional[StaticLintConfig] = None,
    *,
    profile: Optional[StaticProfile] = None,
    layout_name: str = "",
) -> LintReport:
    """Run every enabled static rule over one concrete layout.

    ``profile`` lets callers that lint several layouts of one module
    reuse the (layout-independent) frequency estimate; when omitted it is
    computed here.
    """
    config = config or StaticLintConfig()
    if isinstance(layout, LayoutResult):
        amap = layout.address_map
        name = layout_name or layout.note or layout.kind.value
    else:
        amap = layout
        name = layout_name or "layout"
    if profile is None:
        profile = estimate_frequencies(module, config.frequency)

    ctx = StaticLintContext(
        module, amap, cache, profile, hot_coverage=config.hot_coverage
    )
    report = LintReport(
        program=module.name, layout=name, cache=cache.describe()
    )
    for r in config.enabled_rules():
        diags, metrics = r.fn(ctx, config)
        override = config.severity_overrides.get(r.id)
        if override is not None:
            diags = [replace(d, severity=override) for d in diags]
        report.extend(diags)
        report.metrics[r.id] = metrics
        report.rules_run.append(r.id)
    return report
