"""Certification mode: cross-check static predictions against simulation.

A heuristic profile is only useful if its *ordering* is right: the
optimizers and lint rules consume relative hotness and relative conflict
pressure, not absolute counts.  Certification therefore scores two
Spearman rank correlations per ``(program, layout)``:

* **conflict** — the static per-line conflict scores of
  :class:`~repro.staticlint.conflict.StaticLintContext` against measured
  per-line LRU *reuse* misses from the stack-distance machinery
  (:func:`repro.cache.fastsim.per_line_misses` minus the one unavoidable
  cold miss per touched line — conflict scores predict capacity/conflict
  evictions, not first touches), over every line of the laid-out image;
* **hotness** — the estimated per-block frequencies against measured
  ref-input execution counts, over every block.

Spearman is computed tie-aware in plain NumPy (average ranks), keeping
``src`` dependency-free beyond NumPy.  The CI gate requires the conflict
correlation to clear a threshold on two synthetic workloads; the
experiments runner reports the full table.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from ..cache.fastsim import per_line_misses
from .conflict import StaticLintContext
from .frequency import estimate_frequencies
from .rulepack import StaticLintConfig, run_static_lint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..experiments.pipeline import Lab

__all__ = ["CertifyResult", "certify_program", "certify_suite", "spearman"]


def _average_ranks(values: np.ndarray) -> np.ndarray:
    """1-based ranks with ties sharing their average rank."""
    _, inverse, counts = np.unique(values, return_inverse=True, return_counts=True)
    # Rank span of each tie group is (csum - count, csum]; its average
    # rank is csum - (count - 1) / 2.
    csum = np.cumsum(counts)
    avg = csum - (counts - 1) / 2.0
    return avg[inverse]


def spearman(x: Sequence[float] | np.ndarray, y: Sequence[float] | np.ndarray) -> float:
    """Tie-aware Spearman rank correlation; 0.0 for degenerate inputs.

    Pearson correlation of average ranks — the standard tie-corrected
    definition.  Returns 0.0 when either side is constant (correlation
    undefined) or the vectors are empty.
    """
    ax = np.asarray(x, dtype=np.float64)
    ay = np.asarray(y, dtype=np.float64)
    if ax.shape != ay.shape:
        raise ValueError(f"shape mismatch: {ax.shape} vs {ay.shape}")
    if ax.size < 2:
        return 0.0
    rx = _average_ranks(ax)
    ry = _average_ranks(ay)
    rx = rx - rx.mean()
    ry = ry - ry.mean()
    denom = float(np.sqrt((rx * rx).sum() * (ry * ry).sum()))
    if denom == 0.0:
        return 0.0
    return float((rx * ry).sum() / denom)


@dataclass(frozen=True)
class CertifyResult:
    """Calibration of the static analyzer on one (program, layout)."""

    program: str
    layout: str
    #: Spearman(static per-line conflict score, measured per-line reuse
    #: misses — total misses minus the cold first touch of each line).
    conflict_rho: float
    #: Spearman(estimated block frequency, measured execution count).
    hotness_rho: float
    #: lines in the laid-out image (the correlation universe).
    n_lines: int
    #: lines with a nonzero static conflict score.
    n_conflict_lines: int
    #: total measured LRU misses of the ref stream.
    measured_misses: int
    #: diagnostics the static pack emitted for this layout.
    diagnostics: int
    #: wall seconds of the static side (profile + lint + scores).
    static_seconds: float
    #: wall seconds of the measured side (per-line simulation).
    sim_seconds: float

    def passes(self, min_conflict_rho: float, min_hotness_rho: float = 0.0) -> bool:
        return (
            self.conflict_rho >= min_conflict_rho
            and self.hotness_rho >= min_hotness_rho
        )

    def to_dict(self) -> dict:
        return {
            "program": self.program,
            "layout": self.layout,
            "conflict_rho": round(self.conflict_rho, 4),
            "hotness_rho": round(self.hotness_rho, 4),
            "n_lines": self.n_lines,
            "n_conflict_lines": self.n_conflict_lines,
            "measured_misses": self.measured_misses,
            "diagnostics": self.diagnostics,
            "static_seconds": round(self.static_seconds, 4),
            "sim_seconds": round(self.sim_seconds, 4),
        }


def certify_program(
    name: str,
    *,
    layout_name: str = "baseline",
    scale: float = 1.0,
    hot_coverage: float = 0.9,
    config: Optional[StaticLintConfig] = None,
    lab: "Optional[Lab]" = None,
) -> CertifyResult:
    """Certify the static analyzer on one suite program.

    Builds (or reuses, via ``lab``) the program and layout, computes the
    static profile + conflict scores, measures per-line misses of the
    ref-input fetch stream, and correlates the two.  Folds its telemetry
    into the lab's ``staticlint_*`` counters.
    """
    from ..experiments.pipeline import Lab

    config = config or StaticLintConfig(hot_coverage=hot_coverage)
    if lab is None:
        lab = Lab(scale=scale)
    prepared = lab.program(name)
    module = prepared.module
    layout = lab.layout(name, layout_name)
    stream = lab.lines(name, layout_name)
    cache = lab.cache_cfg

    t0 = time.perf_counter()
    profile = estimate_frequencies(module, config.frequency)
    ctx = StaticLintContext(
        module, layout.address_map, cache, profile, hot_coverage=config.hot_coverage
    )
    scores = ctx.conflict_scores
    report = run_static_lint(
        module, layout, cache, config, profile=profile, layout_name=layout_name
    )
    static_seconds = time.perf_counter() - t0

    t1 = time.perf_counter()
    measured = per_line_misses(stream, cache)
    sim_seconds = time.perf_counter() - t1

    lines = ctx.image_lines
    static_vec = np.array([scores.get(line, 0.0) for line in lines])
    # Reuse misses: every touched line pays exactly one cold miss that no
    # conflict predictor should be charged with; subtract it so the
    # correlation targets evictions.
    measured_vec = np.array(
        [max(0, measured.get(line, 0) - 1) if line in measured else 0 for line in lines],
        dtype=np.float64,
    )
    conflict_rho = spearman(static_vec, measured_vec)

    exec_counts = np.bincount(
        prepared.ref_bundle.bb_trace, minlength=module.n_blocks
    ).astype(np.float64)
    hotness_rho = spearman(profile.block_freq, exec_counts)

    lab.counters["staticlint_diags"] = (
        lab.counters.get("staticlint_diags", 0) + len(report.diagnostics)
    )
    lab.counters["staticlint_seconds"] = (
        lab.counters.get("staticlint_seconds", 0.0) + static_seconds
    )
    lab.counters["staticlint_certified"] = (
        lab.counters.get("staticlint_certified", 0) + 1
    )

    return CertifyResult(
        program=name,
        layout=layout_name,
        conflict_rho=conflict_rho,
        hotness_rho=hotness_rho,
        n_lines=len(lines),
        n_conflict_lines=int(np.count_nonzero(static_vec)),
        measured_misses=int(sum(measured.values())),
        diagnostics=len(report.diagnostics),
        static_seconds=static_seconds,
        sim_seconds=sim_seconds,
    )


def certify_suite(
    programs: Sequence[str],
    *,
    layout_name: str = "baseline",
    scale: float = 1.0,
    hot_coverage: float = 0.9,
    config: Optional[StaticLintConfig] = None,
    lab: "Optional[Lab]" = None,
) -> list[CertifyResult]:
    """Certify several programs with one shared lab (shared memoization)."""
    from ..experiments.pipeline import Lab

    if lab is None:
        lab = Lab(scale=scale)
    return [
        certify_program(
            name,
            layout_name=layout_name,
            hot_coverage=hot_coverage,
            config=config,
            lab=lab,
        )
        for name in programs
    ]
