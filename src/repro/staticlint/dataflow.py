"""Reusable CFG/call-graph dataflow framework over the IR.

Three classic analyses, computed once per function/module and shared by
every static pass:

* **Dominators** — the Cooper–Harvey–Kennedy iterative algorithm over a
  reverse post-order, ``O(n^2)`` worst case but effectively linear on the
  reducible CFGs the workload generator emits.
* **Natural loops** — one loop per back edge ``u -> h`` (where ``h``
  dominates ``u``); loops sharing a header are merged, and per-block
  nesting depth falls out of body containment.
* **Call-graph SCC condensation** — Tarjan's algorithm (iterative, so
  deep call chains do not hit the recursion limit) plus a topological
  order of the condensation with callers before callees, the order the
  interprocedural frequency propagation needs.

Everything here is purely structural: no trace, no profile, no layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.module import Function, Module

__all__ = [
    "FunctionCFG",
    "Loop",
    "CallGraph",
    "build_cfgs",
]


@dataclass(frozen=True)
class Loop:
    """One natural loop: its header plus the set of body blocks.

    Indices are *local* (positions in ``Function.blocks``).  ``body``
    always contains ``header``.  ``back_edges`` are the ``(tail, header)``
    latch edges that induced the loop; ``exits`` are ``(src, dst)`` edges
    leaving the body.
    """

    header: int
    body: frozenset[int]
    back_edges: tuple[tuple[int, int], ...]
    exits: tuple[tuple[int, int], ...]

    def __contains__(self, idx: int) -> bool:
        return idx in self.body


class FunctionCFG:
    """Intra-procedural CFG of one function with dominator/loop analyses.

    Blocks are addressed by their *local index* (position in
    ``func.blocks``); index 0 is the entry.  Call terminators contribute
    their return-to edge only — callee entries are inter-procedural and
    live on :class:`CallGraph`.
    """

    def __init__(self, func: Function) -> None:
        self.func = func
        self.n = len(func.blocks)
        self.index: dict[str, int] = {b.name: i for i, b in enumerate(func.blocks)}
        self.succs: list[list[int]] = []
        for block in func.blocks:
            out: list[int] = []
            seen: set[int] = set()
            for name in block.terminator.local_targets():
                j = self.index[name]
                if j not in seen:  # Switch may repeat a target
                    seen.add(j)
                    out.append(j)
            self.succs.append(out)
        self.preds: list[list[int]] = [[] for _ in range(self.n)]
        for i, out in enumerate(self.succs):
            for j in out:
                self.preds[j].append(i)
        self.rpo: list[int] = self._reverse_postorder()
        self.rpo_number: list[int] = [-1] * self.n
        for k, i in enumerate(self.rpo):
            self.rpo_number[i] = k
        self.idom: list[int] = self._dominators()
        self.loops: list[Loop] = self._natural_loops()
        self.loop_depth: list[int] = self._loop_depths()

    # -- reachability ------------------------------------------------------

    def _reverse_postorder(self) -> list[int]:
        seen = [False] * self.n
        post: list[int] = []
        # Iterative DFS with an explicit successor cursor per frame.
        stack: list[tuple[int, int]] = [(0, 0)]
        seen[0] = True
        while stack:
            node, cursor = stack.pop()
            out = self.succs[node]
            while cursor < len(out) and seen[out[cursor]]:
                cursor += 1
            if cursor < len(out):
                stack.append((node, cursor + 1))
                nxt = out[cursor]
                seen[nxt] = True
                stack.append((nxt, 0))
            else:
                post.append(node)
        return post[::-1]

    @property
    def reachable(self) -> list[int]:
        """Local indices reachable from the entry, in reverse post-order."""
        return self.rpo

    # -- dominators --------------------------------------------------------

    def _dominators(self) -> list[int]:
        """Immediate dominators (Cooper–Harvey–Kennedy); -1 = unreachable."""
        idom = [-1] * self.n
        idom[0] = 0
        rpo_num = {}
        for k, i in enumerate(self.rpo):
            rpo_num[i] = k

        def intersect(a: int, b: int) -> int:
            while a != b:
                while rpo_num[a] > rpo_num[b]:
                    a = idom[a]
                while rpo_num[b] > rpo_num[a]:
                    b = idom[b]
            return a

        changed = True
        while changed:
            changed = False
            for node in self.rpo:
                if node == 0:
                    continue
                new_idom = -1
                for p in self.preds[node]:
                    if idom[p] == -1:
                        continue  # not yet processed / unreachable
                    new_idom = p if new_idom == -1 else intersect(p, new_idom)
                if new_idom != -1 and idom[node] != new_idom:
                    idom[node] = new_idom
                    changed = True
        return idom

    def dominates(self, a: int, b: int) -> bool:
        """Does block ``a`` dominate block ``b``?  (Both must be reachable.)"""
        if self.idom[b] == -1 or self.idom[a] == -1:
            return False
        while b != 0 and b != a:
            b = self.idom[b]
        return b == a

    # -- natural loops -----------------------------------------------------

    def _natural_loops(self) -> list[Loop]:
        bodies: dict[int, set[int]] = {}
        latches: dict[int, list[tuple[int, int]]] = {}
        for u in self.rpo:
            for h in self.succs[u]:
                if self.dominates(h, u):
                    body = bodies.setdefault(h, {h})
                    latches.setdefault(h, []).append((u, h))
                    # Reverse reachability from the latch, stopping at the
                    # header: the standard natural-loop body construction.
                    stack = [u]
                    while stack:
                        node = stack.pop()
                        if node in body:
                            continue
                        body.add(node)
                        stack.extend(p for p in self.preds[node] if self.idom[p] != -1)
        loops: list[Loop] = []
        for header in sorted(bodies):
            body = bodies[header]
            exits = tuple(
                sorted(
                    (src, dst)
                    for src in body
                    for dst in self.succs[src]
                    if dst not in body
                )
            )
            loops.append(
                Loop(
                    header=header,
                    body=frozenset(body),
                    back_edges=tuple(sorted(latches[header])),
                    exits=exits,
                )
            )
        return loops

    def _loop_depths(self) -> list[int]:
        depth = [0] * self.n
        for loop in self.loops:
            for idx in loop.body:
                depth[idx] += 1
        return depth

    def innermost_loop(self, idx: int) -> Loop | None:
        """The smallest loop containing ``idx``, or ``None``."""
        best: Loop | None = None
        for loop in self.loops:
            if idx in loop.body and (best is None or len(loop.body) < len(best.body)):
                best = loop
        return best

    def is_back_edge(self, src: int, dst: int) -> bool:
        return dst in self.succs[src] and self.dominates(dst, src)

    def is_loop_exit_edge(self, src: int, dst: int) -> bool:
        """Does ``src -> dst`` leave the innermost loop of ``src``?"""
        loop = self.innermost_loop(src)
        return loop is not None and dst not in loop.body


@dataclass
class CallGraph:
    """Interprocedural call graph with SCC condensation.

    ``sccs`` lists strongly connected components of function names;
    ``topo_sccs`` orders them callers-before-callees starting from the
    module entry, which is the processing order for top-down frequency
    propagation.  Functions unreachable from the entry still appear (in
    deterministic order after the reachable part).
    """

    module: Module
    edges: dict[str, list[str]] = field(default_factory=dict)
    sccs: list[tuple[str, ...]] = field(default_factory=list)
    topo_sccs: list[tuple[str, ...]] = field(default_factory=list)
    scc_of: dict[str, int] = field(default_factory=dict)

    @classmethod
    def build(cls, module: Module) -> "CallGraph":
        edges: dict[str, list[str]] = {f.name: [] for f in module.functions}
        for block in module.iter_blocks():
            callee = block.terminator.callee()
            if callee is not None and callee not in edges[block.func]:
                edges[block.func].append(callee)
        graph = cls(module=module, edges=edges)
        graph.sccs = graph._tarjan()
        graph.scc_of = {
            name: i for i, comp in enumerate(graph.sccs) for name in comp
        }
        graph.topo_sccs = graph._topo_condensation()
        return graph

    def _tarjan(self) -> list[tuple[str, ...]]:
        """Iterative Tarjan SCC over function names (deterministic order)."""
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        sccs: list[tuple[str, ...]] = []
        counter = 0

        for root in (f.name for f in self.module.functions):
            if root in index:
                continue
            work: list[tuple[str, int]] = [(root, 0)]
            while work:
                node, cursor = work.pop()
                if cursor == 0:
                    index[node] = low[node] = counter
                    counter += 1
                    stack.append(node)
                    on_stack.add(node)
                recurse = False
                out = self.edges[node]
                while cursor < len(out):
                    succ = out[cursor]
                    cursor += 1
                    if succ not in index:
                        work.append((node, cursor))
                        work.append((succ, 0))
                        recurse = True
                        break
                    if succ in on_stack:
                        low[node] = min(low[node], index[succ])
                if recurse:
                    continue
                if low[node] == index[node]:
                    comp: list[str] = []
                    while True:
                        top = stack.pop()
                        on_stack.discard(top)
                        comp.append(top)
                        if top == node:
                            break
                    sccs.append(tuple(comp))
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
        return sccs

    def _topo_condensation(self) -> list[tuple[str, ...]]:
        """Condensation SCCs, callers before callees (Kahn on SCC edges)."""
        n = len(self.sccs)
        cond_edges: list[set[int]] = [set() for _ in range(n)]
        indeg = [0] * n
        for caller, callees in self.edges.items():
            a = self.scc_of[caller]
            for callee in callees:
                b = self.scc_of[callee]
                if a != b and b not in cond_edges[a]:
                    cond_edges[a].add(b)
                    indeg[b] += 1
        # Deterministic Kahn: process ready SCCs in ascending Tarjan index
        # (Tarjan emits callees first, so higher index ~ closer to roots).
        ready = sorted(i for i in range(n) if indeg[i] == 0)
        order: list[int] = []
        while ready:
            i = ready.pop()  # highest index first: entry SCC early
            order.append(i)
            freed: list[int] = []
            for j in cond_edges[i]:
                indeg[j] -= 1
                if indeg[j] == 0:
                    freed.append(j)
            ready.extend(sorted(freed))
            ready.sort()
        return [self.sccs[i] for i in order]

    def is_recursive(self, name: str) -> bool:
        comp = self.sccs[self.scc_of[name]]
        return len(comp) > 1 or name in self.edges[name]

    def callers_of(self, name: str) -> list[str]:
        return sorted(c for c, callees in self.edges.items() if name in callees)


def build_cfgs(module: Module) -> dict[str, FunctionCFG]:
    """One :class:`FunctionCFG` per function, keyed by function name."""
    return {f.name: FunctionCFG(f) for f in module.functions}
