"""Synthesize a trace bundle from program structure alone.

:func:`synthesize_bundle` performs a seeded walk of the CFG that mirrors
the interpreter's control-flow semantics — per-frame loop counters with
exact :class:`~repro.ir.module.LoopBranch` trip emulation, a call/return
frame stack, termination on natural exit or block budget — but draws
``Branch`` and ``Switch`` outcomes from the *structural* heuristics of
:mod:`repro.staticlint.frequency` instead of the profile-bearing
terminator parameters.  The result is a real
:class:`~repro.engine.instrument.TraceBundle`, so every trace-consuming
component (``optimize``, ``run_lint``, ``fastsim``, footprint models)
works unchanged with no measured profile in the loop.
"""

from __future__ import annotations

import bisect
import random
from itertools import accumulate

import numpy as np

from ..engine.instrument import TraceBundle
from ..ir.module import (
    Branch,
    Call,
    Exit,
    Jump,
    LoopBranch,
    Module,
    Return,
    Switch,
)
from .dataflow import build_cfgs
from .frequency import FrequencyConfig, edge_probabilities

__all__ = ["synthesize_bundle", "STATIC_INPUT_NAME"]

#: ``TraceBundle.input_name`` of synthesized bundles; lets downstream
#: reports distinguish a heuristic profile from a measured one.
STATIC_INPUT_NAME = "static-synthetic"


class _Frame:
    __slots__ = ("return_gid", "loop_counters")

    def __init__(self, return_gid: int) -> None:
        self.return_gid = return_gid
        self.loop_counters: dict[int, int] = {}


def synthesize_bundle(
    module: Module,
    *,
    max_blocks: int,
    seed: int = 0,
    config: FrequencyConfig | None = None,
    input_name: str = STATIC_INPUT_NAME,
) -> TraceBundle:
    """Walk the CFG heuristically and package the result as a bundle.

    ``max_blocks`` is the dynamic block budget (the stand-in for input
    size, same meaning as :class:`~repro.engine.state.InputSpec`); the
    walk also stops early on a natural exit (``Exit`` or a return from
    the entry function's root frame).  Deterministic for a given
    ``(module, max_blocks, seed, config)``.
    """
    if not module.sealed:
        raise ValueError("module must be sealed")
    if max_blocks < 1:
        raise ValueError("max_blocks must be positive")
    config = config or FrequencyConfig()

    n = module.n_blocks
    blocks = [module.block_by_gid(g) for g in range(n)]
    n_instr = [b.n_instr for b in blocks]
    gid_of = {(b.func, b.name): b.gid for b in blocks}

    # Structural edge probabilities, resolved to gids once up front.
    cfgs = build_cfgs(module)
    prob_of: dict[str, list[dict[int, float]]] = {
        name: edge_probabilities(cfg, config) for name, cfg in cfgs.items()
    }

    K_JUMP, K_BRANCH, K_SWITCH, K_CALL, K_RET, K_EXIT, K_LOOP = range(7)
    kind = [0] * n
    op_a = [0] * n  # then-gid / back-gid / callee entry gid / jump target
    op_b = [0] * n  # orelse-gid / exit-gid / return_to gid
    p_then = [0.0] * n
    trips = [0] * n
    sw_targets: list[tuple[int, ...]] = [()] * n
    sw_cum: list[list[float]] = [[]] * n

    for b in blocks:
        t = b.terminator
        g = b.gid
        cfg = cfgs[b.func]
        local = cfg.index[b.name]
        if isinstance(t, Jump):
            kind[g] = K_JUMP
            op_a[g] = gid_of[(b.func, t.target)]
        elif isinstance(t, Branch):
            kind[g] = K_BRANCH
            op_a[g] = gid_of[(b.func, t.then)]
            op_b[g] = gid_of[(b.func, t.orelse)]
            # Heuristic probability of the then side (1.0 if then==orelse).
            probs = prob_of[b.func][local]
            then_local = cfg.index[t.then]
            p = probs.get(then_local, 0.0)
            p_then[g] = 1.0 if op_a[g] == op_b[g] else p
        elif isinstance(t, Switch):
            kind[g] = K_SWITCH
            sw_targets[g] = tuple(gid_of[(b.func, name)] for name in t.targets)
            # Uniform over case slots — weights are runtime profile data.
            share = 1.0 / len(t.targets)
            sw_cum[g] = list(accumulate(share for _ in t.targets))
        elif isinstance(t, Call):
            kind[g] = K_CALL
            op_a[g] = module.function(t.func).entry.gid
            op_b[g] = gid_of[(b.func, t.return_to)]
        elif isinstance(t, Return):
            kind[g] = K_RET
        elif isinstance(t, Exit):
            kind[g] = K_EXIT
        elif isinstance(t, LoopBranch):
            kind[g] = K_LOOP
            op_a[g] = gid_of[(b.func, t.back)]
            op_b[g] = gid_of[(b.func, t.exit_to)]
            trips[g] = t.trips
        else:  # pragma: no cover - exhaustive over IR terminators
            raise TypeError(f"unknown terminator {t!r}")

    rng = random.Random(seed)
    rand = rng.random
    frames: list[_Frame] = [_Frame(-1)]
    loop_counters = frames[-1].loop_counters
    trace = np.empty(max_blocks, dtype=np.int32)
    executed = 0
    instr = 0
    natural = False
    current = module.function(module.entry).entry.gid

    while executed < max_blocks:
        trace[executed] = current
        executed += 1
        instr += n_instr[current]

        k = kind[current]
        if k == K_JUMP:
            current = op_a[current]
        elif k == K_BRANCH:
            current = op_a[current] if rand() < p_then[current] else op_b[current]
        elif k == K_LOOP:
            c = loop_counters.get(current, 0) + 1
            if c < trips[current]:
                loop_counters[current] = c
                current = op_a[current]
            else:
                loop_counters[current] = 0
                current = op_b[current]
        elif k == K_CALL:
            frames.append(_Frame(op_b[current]))
            loop_counters = frames[-1].loop_counters
            current = op_a[current]
        elif k == K_RET:
            frame = frames.pop()
            if not frames:
                natural = True
                break
            loop_counters = frames[-1].loop_counters
            current = frame.return_gid
        elif k == K_SWITCH:
            i = bisect.bisect_left(sw_cum[current], rand())
            targets = sw_targets[current]
            current = targets[min(i, len(targets) - 1)]
        else:  # K_EXIT
            natural = True
            break

    function_names = [f.name for f in module.functions]
    func_index = {name: i for i, name in enumerate(function_names)}
    func_of_gid = np.array(
        [func_index[name] for name in module.function_of_gid()], dtype=np.int32
    )
    bb_trace = trace[:executed].copy()
    return TraceBundle(
        program=module.name,
        input_name=input_name,
        bb_trace=bb_trace,
        func_trace=func_of_gid[bb_trace],
        block_names=[f"{b.func}:{b.name}" for b in blocks],
        function_names=function_names,
        func_of_gid=func_of_gid,
        instr_count=instr,
        natural_exit=natural,
    )
