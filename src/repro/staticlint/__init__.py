"""Profile-free static analysis over the IR (``repro.staticlint``).

The trace-driven linter (:mod:`repro.lint`) needs a simulated execution
before it can say anything; this package makes the same class of layout
judgements from the program text alone.  It is organised as four layers:

* :mod:`~repro.staticlint.dataflow` — a reusable CFG/call-graph dataflow
  framework: dominators, natural loops, loop-nesting depth, and an
  interprocedural call graph with Tarjan SCC condensation;
* :mod:`~repro.staticlint.frequency` — Ball–Larus-style branch heuristics
  plus Markov-chain block-frequency propagation, yielding a
  :class:`~repro.staticlint.frequency.StaticProfile`;
* :mod:`~repro.staticlint.profile` — a seeded structural walk that turns
  the heuristics into a synthetic :class:`~repro.engine.instrument.TraceBundle`
  so every trace-consuming component (``optimize``, ``run_lint``,
  ``fastsim``) works without a real profile;
* :mod:`~repro.staticlint.conflict` / :mod:`~repro.staticlint.rulepack` —
  closed-form cache-set conflict prediction and the S00x lint pack;
* :mod:`~repro.staticlint.certify` — cross-checks static predictions
  against the trace-driven simulator (rank correlations), the CI gate.

Run ``python -m repro.staticlint --help`` for the CLI.
"""

from .certify import CertifyResult, certify_program, spearman
from .conflict import StaticLintContext
from .dataflow import CallGraph, FunctionCFG, Loop
from .frequency import FrequencyConfig, StaticProfile, estimate_frequencies
from .profile import synthesize_bundle
from .rulepack import StaticLintConfig, run_static_lint

__all__ = [
    "CallGraph",
    "CertifyResult",
    "FrequencyConfig",
    "FunctionCFG",
    "Loop",
    "StaticLintConfig",
    "StaticLintContext",
    "StaticProfile",
    "certify_program",
    "estimate_frequencies",
    "run_static_lint",
    "spearman",
    "synthesize_bundle",
]
