"""Static block-frequency estimation (no trace required).

Two classic techniques, composed:

* **Branch heuristics** (Ball–Larus / Wu–Larus flavoured) assign each
  outgoing CFG edge a probability from *structure alone*: back edges are
  very likely taken, edges leaving a loop are avoided, edges into
  program-exit blocks are avoided, and otherwise the fall-through side is
  mildly preferred (compilers lay the common path on the fall-through).
  :class:`~repro.ir.module.LoopBranch` trip counts are compile-time
  constants, so they contribute exact probabilities; the *runtime*
  parameters (``Branch.taken_prob``, ``Switch.weights``, phase modulation)
  are never consulted — they model profile data this analysis must not see.

* **Markov-chain propagation** turns edge probabilities into expected
  block execution counts: with ``P[u][v]`` the edge probability matrix of
  a function, the expected visit counts per function entry solve
  ``(I - Pᵀ) f = e_entry`` — a dense solve per function (CFGs here are
  tiny).  A damped retry handles the singular case of an inescapable
  cycle.  Interprocedurally, entry counts propagate top-down over the
  call-graph SCC condensation; recursive components converge via a
  damped fixpoint.

The result, :class:`StaticProfile`, mirrors the projections the
trace-driven linter derives from real traces (per-gid execution weight,
coverage-prefix hot set) so downstream passes can consume either.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..ir.module import (
    Branch,
    Call,
    Exit,
    Jump,
    LoopBranch,
    Module,
    Switch,
)
from .dataflow import CallGraph, FunctionCFG, build_cfgs

__all__ = [
    "FrequencyConfig",
    "StaticProfile",
    "edge_probabilities",
    "estimate_frequencies",
]


@dataclass(frozen=True)
class FrequencyConfig:
    """Tunable probabilities for the structural branch heuristics."""

    #: probability the back-edge side of a conditional branch is taken.
    backedge_prob: float = 0.88
    #: probability of *staying* in the loop when one side exits it.
    loop_stay_prob: float = 0.85
    #: probability of avoiding a successor that terminates the program.
    noexit_prob: float = 0.9
    #: probability of the fall-through (else) side when no other
    #: heuristic applies — compilers put the common path there.
    fallthrough_prob: float = 0.7
    #: per-round damping inside recursive call-graph SCCs (must be < 1
    #: for the fixpoint to converge on arbitrary recursion).
    recursion_damping: float = 0.5
    #: clamp on per-function entry counts (guards degenerate CFGs).
    max_function_freq: float = 1e15
    #: damping used when a function's flow system is singular (a cycle
    #: with no escape probability).
    singular_damping: float = 0.999


@dataclass
class StaticProfile:
    """Estimated execution frequencies for every block of a module.

    ``block_freq[gid]`` is the expected number of executions of the block
    in one program run (module entry executed once).  ``func_freq`` maps
    function name to expected entry count; statically unreachable
    functions get 0.  ``edge_prob[gid]`` maps successor gids to the
    heuristic probabilities used, for passes that need edge weights
    (e.g. fall-through break costing).
    """

    module: Module
    config: FrequencyConfig
    block_freq: np.ndarray
    func_freq: dict[str, float]
    edge_prob: list[dict[int, float]]
    cfgs: dict[str, FunctionCFG] = field(repr=False)
    callgraph: CallGraph = field(repr=False)

    def weight(self) -> np.ndarray:
        """Frequencies normalised to sum to 1 (all-cold module: zeros)."""
        total = float(self.block_freq.sum())
        if total <= 0.0:
            return np.zeros_like(self.block_freq)
        return self.block_freq / total

    def hot_gids(self, coverage: float = 0.9) -> list[int]:
        """Smallest popularity-ranked gid set covering ``coverage`` of the
        estimated executions — the static analogue of the trace linter's
        hot set (ties broken by ascending gid for determinism)."""
        freq = self.block_freq
        total = float(freq.sum())
        if total <= 0.0:
            return []
        order = np.lexsort((np.arange(len(freq)), -freq))
        csum = np.cumsum(freq[order])
        n_hot = int(np.searchsorted(csum, coverage * total, side="left")) + 1
        hot = order[:n_hot]
        return [int(g) for g in hot if freq[g] > 0.0]

    def call_site_freq(self) -> dict[int, float]:
        """gid of each call block -> estimated dynamic call count."""
        out: dict[int, float] = {}
        for block in self.module.iter_blocks():
            if block.terminator.callee() is not None:
                out[block.gid] = float(self.block_freq[block.gid])
        return out


def edge_probabilities(
    cfg: FunctionCFG, config: FrequencyConfig
) -> list[dict[int, float]]:
    """Per-block successor probabilities (local indices), structure only."""
    func = cfg.func
    probs: list[dict[int, float]] = []
    for u, block in enumerate(func.blocks):
        term = block.terminator
        out: dict[int, float] = {}
        if isinstance(term, Jump):
            out[cfg.index[term.target]] = 1.0
        elif isinstance(term, Call):
            out[cfg.index[term.return_to]] = 1.0
        elif isinstance(term, LoopBranch):
            back = cfg.index[term.back]
            exit_to = cfg.index[term.exit_to]
            trips = max(1, term.trips)
            if back == exit_to:
                out[back] = 1.0
            else:
                out[back] = (trips - 1) / trips
                out[exit_to] = 1.0 / trips
        elif isinstance(term, Switch):
            # Uniform over case slots; a target listed k times gets k/n.
            share = 1.0 / len(term.targets)
            for name in term.targets:
                j = cfg.index[name]
                out[j] = out.get(j, 0.0) + share
        elif isinstance(term, Branch):
            t = cfg.index[term.then]
            o = cfg.index[term.orelse]
            if t == o:
                out[t] = 1.0
            else:
                p_then = _branch_heuristic(cfg, config, u, t, o)
                out[t] = p_then
                out[o] = 1.0 - p_then
        # Return/Exit: no intra-procedural successors; flow leaves here.
        probs.append(out)
    return probs


def _branch_heuristic(
    cfg: FunctionCFG, config: FrequencyConfig, u: int, then: int, orelse: int
) -> float:
    """Probability of the *then* side of ``u``'s conditional branch."""
    back_t = cfg.is_back_edge(u, then)
    back_o = cfg.is_back_edge(u, orelse)
    if back_t != back_o:
        return config.backedge_prob if back_t else 1.0 - config.backedge_prob
    exit_t = cfg.is_loop_exit_edge(u, then)
    exit_o = cfg.is_loop_exit_edge(u, orelse)
    if exit_t != exit_o:
        # Prefer the side that stays inside the loop.
        return 1.0 - config.loop_stay_prob if exit_t else config.loop_stay_prob
    halt_t = isinstance(cfg.func.blocks[then].terminator, Exit)
    halt_o = isinstance(cfg.func.blocks[orelse].terminator, Exit)
    if halt_t != halt_o:
        return 1.0 - config.noexit_prob if halt_t else config.noexit_prob
    # Fall-through (else) side is the compiler's common path.
    return 1.0 - config.fallthrough_prob


def _solve_function(
    cfg: FunctionCFG, probs: list[dict[int, float]], config: FrequencyConfig
) -> np.ndarray:
    """Expected visits per block for one function entry: (I - Pᵀ) f = e."""
    reach = cfg.rpo
    pos = {node: i for i, node in enumerate(reach)}
    m = len(reach)

    def assemble(damping: float) -> np.ndarray:
        a = np.eye(m)
        for u in reach:
            row = probs[u]
            for v, p in row.items():
                if v in pos:
                    a[pos[v], pos[u]] -= p * damping
        return a

    rhs = np.zeros(m)
    rhs[pos[0]] = 1.0
    f: np.ndarray | None
    try:
        f = np.linalg.solve(assemble(1.0), rhs)
    except np.linalg.LinAlgError:
        f = None
    if f is None or not np.all(np.isfinite(f)) or float(f.min()) < -1e-9:
        # Inescapable cycle (probability-1 loop): damp every edge so the
        # spectral radius drops below 1 and the system becomes regular.
        f = np.linalg.solve(assemble(config.singular_damping), rhs)
    full = np.zeros(cfg.n)
    full[np.asarray(reach, dtype=np.intp)] = np.clip(f, 0.0, None)
    return full


def estimate_frequencies(
    module: Module, config: FrequencyConfig | None = None
) -> StaticProfile:
    """Estimate per-block execution frequencies for a sealed module."""
    config = config or FrequencyConfig()
    cfgs = build_cfgs(module)
    callgraph = CallGraph.build(module)

    local_probs: dict[str, list[dict[int, float]]] = {}
    local_freq: dict[str, np.ndarray] = {}
    for name, cfg in cfgs.items():
        probs = edge_probabilities(cfg, config)
        local_probs[name] = probs
        local_freq[name] = _solve_function(cfg, probs, config)

    # Expected calls to each callee per entry of the caller.
    calls_per_entry: dict[str, dict[str, float]] = {}
    for func in module.functions:
        per: dict[str, float] = {}
        freq = local_freq[func.name]
        for idx, block in enumerate(func.blocks):
            callee = block.terminator.callee()
            if callee is not None:
                per[callee] = per.get(callee, 0.0) + float(freq[idx])
        calls_per_entry[func.name] = per

    # Top-down propagation over the SCC condensation.
    cap = config.max_function_freq
    inflow: dict[str, float] = {f.name: 0.0 for f in module.functions}
    inflow[module.entry] = 1.0
    func_freq: dict[str, float] = {}
    for comp in callgraph.topo_sccs:
        members = set(comp)
        if len(comp) == 1 and not callgraph.is_recursive(comp[0]):
            name = comp[0]
            func_freq[name] = min(inflow[name], cap)
        else:
            # Damped fixpoint inside the recursive component: each round
            # pushes the previous round's new mass through internal call
            # edges, attenuated so arbitrary recursion converges.
            totals = {name: inflow[name] for name in comp}
            contrib = dict(totals)
            for _ in range(25):
                nxt: dict[str, float] = {}
                for caller in comp:
                    mass = contrib.get(caller, 0.0)
                    if mass <= 0.0:
                        continue
                    for callee, cpe in calls_per_entry[caller].items():
                        if callee in members:
                            nxt[callee] = nxt.get(callee, 0.0) + (
                                mass * cpe * config.recursion_damping
                            )
                if not nxt or max(nxt.values()) < 1e-9:
                    break
                for name, add in nxt.items():
                    totals[name] = min(totals[name] + add, cap)
                contrib = nxt
            for name in comp:
                func_freq[name] = min(totals[name], cap)
        # Push this component's outflow to downstream components.
        for caller in comp:
            entries = func_freq[caller]
            if entries <= 0.0:
                continue
            for callee, cpe in calls_per_entry[caller].items():
                if callee not in members:
                    inflow[callee] = min(inflow[callee] + entries * cpe, cap)

    block_freq = np.zeros(module.n_blocks)
    edge_prob: list[dict[int, float]] = [dict() for _ in range(module.n_blocks)]
    for func in module.functions:
        cfg = cfgs[func.name]
        entries = func_freq[func.name]
        freq = local_freq[func.name]
        for idx, block in enumerate(func.blocks):
            block_freq[block.gid] = entries * float(freq[idx])
            edge_prob[block.gid] = {
                func.blocks[v].gid: p for v, p in local_probs[func.name][idx].items()
            }

    return StaticProfile(
        module=module,
        config=config,
        block_freq=block_freq,
        func_freq=func_freq,
        edge_prob=edge_prob,
        cfgs=cfgs,
        callgraph=callgraph,
    )
