"""``python -m repro.staticlint`` — profile-free layout analysis CLI.

Subcommands::

    python -m repro.staticlint lint syn-sjeng
    python -m repro.staticlint lint syn-gcc --layout bb-affinity --format json
    python -m repro.staticlint certify --programs syn-gcc syn-gobmk \
        --min-conflict-rho 0.6 --bench BENCH_perf.json
    python -m repro.staticlint list-rules

``lint`` runs the static S-pack over a layout built **without any
trace**: layout optimizers that normally consume an instrumented profile
are fed the synthetic bundle of
:func:`~repro.staticlint.profile.synthesize_bundle` (the lab's
``profile_source="static"`` mode), so the whole pipeline is profile-free.

``certify`` cross-checks the static predictions against the trace-driven
simulator (Spearman rank correlations; see
:mod:`repro.staticlint.certify`) and optionally gates on thresholds —
the CI smoke job runs it on two synthetic workloads.

Exit codes: 0 — success (``lint``: no ERROR diagnostics; ``certify``:
all programs clear the thresholds); 1 — analysis failure (ERROR
diagnostics / threshold missed); 2 — usage error.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..lint.diagnostics import Severity, render_json, render_text
from ..robust.errors import ReproError
from .certify import certify_suite
from .rulepack import StaticLintConfig, all_static_rules, run_static_lint

#: default programs of the certification gate (both have oversubscribed
#: cache sets at full scale; syn-mcf does not and would be degenerate).
DEFAULT_CERTIFY_PROGRAMS = ("syn-gcc", "syn-gobmk")


def _parse_severity_override(text: str) -> tuple[str, Severity]:
    try:
        rule_id, sev = text.split("=", 1)
        return rule_id.strip(), Severity.parse(sev)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"expected RULE=SEVERITY (e.g. S003=error), got {text!r}: {exc}"
        )


def _list_rules() -> int:
    for r in all_static_rules():
        print(f"{r.id}  {r.name:<24} [{r.default_severity.value}]  {r.summary}")
    return 0


def _known_layouts() -> list[str]:
    from ..core.optimizers import COMPARATORS, OPTIMIZERS

    return ["baseline"] + list(OPTIMIZERS) + list(COMPARATORS)


def _run_lint(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from ..experiments.pipeline import Lab

    if not 0 < args.hot_coverage <= 1.0:
        parser.error("--hot-coverage must be in (0, 1]")
    if not 0 < args.scale <= 1.0:
        parser.error("--scale must be in (0, 1]")
    known_ids = {r.id for r in all_static_rules()}
    for rule_id in args.disable:
        if rule_id not in known_ids:
            parser.error(f"--disable: unknown rule {rule_id!r}")
    for rule_id, _ in args.severity:
        if rule_id not in known_ids:
            parser.error(f"--severity: unknown rule {rule_id!r}")

    lab = Lab(scale=args.scale, profile_source="static")
    try:
        prepared = lab.program(args.program)
        layout = lab.layout(args.program, args.layout)
    except (KeyError, ReproError) as exc:
        parser.error(str(exc))

    config = StaticLintConfig(
        hot_coverage=args.hot_coverage,
        disabled=frozenset(args.disable),
        severity_overrides=dict(args.severity),
    )
    report = run_static_lint(
        prepared.module, layout, lab.cache_cfg, config, layout_name=args.layout
    )
    if args.format == "json":
        print(render_json(report))
    else:
        print(render_text(report))
    return 0 if report.ok else 1


def _run_certify(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    if not 0 < args.scale <= 1.0:
        parser.error("--scale must be in (0, 1]")
    if not 0 < args.hot_coverage <= 1.0:
        parser.error("--hot-coverage must be in (0, 1]")

    try:
        results = certify_suite(
            args.programs,
            layout_name=args.layout,
            scale=args.scale,
            hot_coverage=args.hot_coverage,
        )
    except (KeyError, ReproError) as exc:
        parser.error(str(exc))

    failures = [
        r for r in results
        if not r.passes(args.min_conflict_rho, args.min_hotness_rho)
    ]

    if args.format == "json":
        payload = {
            "layout": args.layout,
            "scale": args.scale,
            "min_conflict_rho": args.min_conflict_rho,
            "min_hotness_rho": args.min_hotness_rho,
            "ok": not failures,
            "results": [r.to_dict() for r in results],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        header = (
            f"{'program':<16} {'layout':<12} {'conflict_rho':>12} "
            f"{'hotness_rho':>11} {'lines':>6} {'diags':>5} "
            f"{'static_s':>8} {'sim_s':>7}"
        )
        print(header)
        print("-" * len(header))
        for r in results:
            print(
                f"{r.program:<16} {r.layout:<12} {r.conflict_rho:>12.4f} "
                f"{r.hotness_rho:>11.4f} {r.n_lines:>6} {r.diagnostics:>5} "
                f"{r.static_seconds:>8.3f} {r.sim_seconds:>7.3f}"
            )
        for r in failures:
            print(
                f"FAIL {r.program}: conflict_rho {r.conflict_rho:.4f} "
                f"(need >= {args.min_conflict_rho}) or hotness_rho "
                f"{r.hotness_rho:.4f} (need >= {args.min_hotness_rho})",
                file=sys.stderr,
            )
        if not failures:
            print(
                f"certification OK: {len(results)} program(s) at "
                f"conflict_rho >= {args.min_conflict_rho}"
            )

    if args.bench is not None:
        from ..perf.telemetry import BENCH_SCHEMA
        from ..robust.atomic import atomic_write_text

        try:
            with open(args.bench) as fh:
                bench = json.load(fh)
        except (OSError, ValueError):
            bench = {"schema": BENCH_SCHEMA}
        seconds = sum(r.static_seconds for r in results)
        diags = sum(r.diagnostics for r in results)
        bench["staticlint"] = {
            "certify": [r.to_dict() for r in results],
            "min_conflict_rho": args.min_conflict_rho,
            "ok": not failures,
            "certified": len(results),
            "diagnostics": diags,
            "seconds": round(seconds, 4),
            "diagnostics_per_s": round(diags / max(1e-9, seconds), 1),
        }
        atomic_write_text(args.bench, json.dumps(bench, indent=2, sort_keys=True))
        print(f"staticlint section written to {args.bench}")

    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.staticlint",
        description="Profile-free static layout analysis and certification.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lint_p = sub.add_parser(
        "lint", help="run the static S-pack over a (profile-free) layout"
    )
    lint_p.add_argument("program", help="suite program name (e.g. syn-sjeng)")
    lint_p.add_argument(
        "--layout",
        default="baseline",
        choices=_known_layouts(),
        help="layout to lint, built from the static profile (default: baseline)",
    )
    lint_p.add_argument(
        "--format", choices=["text", "json"], default="text", help="output format"
    )
    lint_p.add_argument(
        "--hot-coverage",
        type=float,
        default=0.9,
        help="fraction of estimated executions the hot set covers (default 0.9)",
    )
    lint_p.add_argument(
        "--disable",
        action="append",
        default=[],
        metavar="RULE",
        help="disable a rule by id (repeatable)",
    )
    lint_p.add_argument(
        "--severity",
        action="append",
        default=[],
        metavar="RULE=LEVEL",
        type=_parse_severity_override,
        help="override a rule's severity, e.g. S003=error (repeatable)",
    )
    lint_p.add_argument(
        "--scale", type=float, default=1.0, help="budget multiplier in (0,1]"
    )

    cert_p = sub.add_parser(
        "certify",
        help="cross-check static predictions against the trace-driven simulator",
    )
    cert_p.add_argument(
        "--programs",
        nargs="+",
        default=list(DEFAULT_CERTIFY_PROGRAMS),
        metavar="PROGRAM",
        help=f"suite programs to certify (default: {' '.join(DEFAULT_CERTIFY_PROGRAMS)})",
    )
    cert_p.add_argument(
        "--layout",
        default="baseline",
        choices=_known_layouts(),
        help="layout to certify against (default: baseline)",
    )
    cert_p.add_argument(
        "--scale", type=float, default=1.0, help="budget multiplier in (0,1]"
    )
    cert_p.add_argument(
        "--hot-coverage", type=float, default=0.9, help="hot-set coverage fraction"
    )
    cert_p.add_argument(
        "--min-conflict-rho",
        type=float,
        default=0.6,
        help="fail (exit 1) if any program's conflict Spearman falls below this",
    )
    cert_p.add_argument(
        "--min-hotness-rho",
        type=float,
        default=0.0,
        help="fail (exit 1) if any program's hotness Spearman falls below this",
    )
    cert_p.add_argument(
        "--format", choices=["text", "json"], default="text", help="output format"
    )
    cert_p.add_argument(
        "--bench",
        default=None,
        metavar="PATH",
        help="merge certification numbers into this BENCH_perf.json",
    )

    sub.add_parser("list-rules", help="print the static rule catalog and exit")

    args = parser.parse_args(argv)

    if args.command == "list-rules":
        return _list_rules()
    if args.command == "lint":
        return _run_lint(args, parser)
    if args.command == "certify":
        return _run_certify(args, parser)
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
