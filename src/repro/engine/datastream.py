"""Data-side access streams (for the unified-cache / Eq. 1 studies).

The paper's benefit classification covers both the instruction cache
(Eq. 2) and the *unified* lower-level cache, where instruction misses and
data misses compete (Eq. 1).  To exercise that path, blocks may carry a
:class:`~repro.ir.module.DataAccess` descriptor; this module expands a
dynamic block trace into the corresponding data-line stream, and into the
merged instruction+data stream a two-level hierarchy consumes.

Address spaces: data lines live far above any code line
(:data:`DATA_SPACE_BASE`), each function gets its own region, and
``shared`` accesses target one global region — so code and data never
alias, and neither do two functions' locals.

All expansions are vectorized per static block (NumPy index arithmetic);
no Python-level loop touches the dynamic trace.
"""

from __future__ import annotations

import numpy as np

from ..ir.codegen import AddressMap
from ..ir.module import Module
from .fetch import line_spans

__all__ = [
    "DATA_SPACE_BASE",
    "SHARED_REGION_BASE",
    "data_lines",
    "merged_stream",
]

#: first line index of the data address space (code stays far below).
DATA_SPACE_BASE = 1 << 28
#: line region used by ``shared``-mode accesses.
SHARED_REGION_BASE = DATA_SPACE_BASE - (1 << 16)
#: line region reserved per function for its local/stream data.
FUNCTION_REGION_LINES = 1 << 14


def _per_gid_tables(module: Module) -> tuple[np.ndarray, list]:
    """(data line count per gid, per-gid descriptor tuples)."""
    n = module.n_blocks
    counts = np.zeros(n, dtype=np.int64)
    descs: list = [None] * n
    func_index = {f.name: i for i, f in enumerate(module.functions)}
    for block in module.iter_blocks():
        if block.data is None:
            continue
        counts[block.gid] = block.data.n_lines
        base = (
            SHARED_REGION_BASE
            if block.data.mode == "shared"
            else DATA_SPACE_BASE + func_index[block.func] * FUNCTION_REGION_LINES
        )
        descs[block.gid] = (block.data.mode, block.data.n_lines, block.data.region_lines, base)
    return counts, descs


def data_lines(trace: np.ndarray, module: Module) -> np.ndarray:
    """Expand a block trace into its data-line access stream.

    Blocks without a descriptor contribute nothing.  ``local`` accesses
    rotate over a small region (high reuse), ``stream`` accesses advance
    linearly per execution (low reuse), ``shared`` accesses hit fixed
    global lines.
    """
    if trace.ndim != 1:
        raise ValueError("trace must be one-dimensional")
    counts, descs = _per_gid_tables(module)
    per_exec = counts[trace]
    total = int(per_exec.sum())
    out = np.empty(total, dtype=np.int64)
    if total == 0:
        return out
    starts = np.cumsum(per_exec) - per_exec  # slot of each execution's 1st line

    for gid, desc in enumerate(descs):
        if desc is None:
            continue
        mode, n_lines, region, base = desc
        idx = np.flatnonzero(trace == gid)
        if idx.shape[0] == 0:
            continue
        occ = np.arange(idx.shape[0], dtype=np.int64)
        slot0 = starts[idx]
        for j in range(n_lines):
            if mode == "local":
                off = (occ + j) % region
            elif mode == "stream":
                off = (occ * n_lines + j) % region
            else:  # shared
                off = np.full_like(occ, j % region)
            out[slot0 + j] = base + off
    return out


def merged_stream(
    trace: np.ndarray, amap: AddressMap, line_bytes: int, module: Module
) -> tuple[np.ndarray, np.ndarray]:
    """(lines, is_data) — the interleaved instruction+data access stream.

    Each dynamic block contributes its fetch lines (in address order)
    followed by its data lines, preserving program order between blocks —
    the ordering a unified L2 observes.
    """
    first, n_ilines = line_spans(amap, line_bytes)
    d_counts, descs = _per_gid_tables(module)

    ci = n_ilines[trace]
    cd = d_counts[trace]
    per_exec = ci + cd
    total = int(per_exec.sum())
    lines = np.empty(total, dtype=np.int64)
    is_data = np.zeros(total, dtype=bool)
    if total == 0:
        return lines, is_data
    starts = np.cumsum(per_exec) - per_exec

    # instruction lines: consecutive from each block's first line.
    i_total = int(ci.sum())
    i_slots = np.repeat(starts, ci) + (
        np.arange(i_total, dtype=np.int64)
        - np.repeat(np.cumsum(ci) - ci, ci)
    )
    lines[i_slots] = np.repeat(first[trace], ci) + (
        np.arange(i_total, dtype=np.int64)
        - np.repeat(np.cumsum(ci) - ci, ci)
    )

    # data lines: per-gid vectorized fill, after the block's fetch lines.
    d_starts = starts + ci
    for gid, desc in enumerate(descs):
        if desc is None:
            continue
        mode, n_lines, region, base = desc
        idx = np.flatnonzero(trace == gid)
        if idx.shape[0] == 0:
            continue
        occ = np.arange(idx.shape[0], dtype=np.int64)
        slot0 = d_starts[idx]
        for j in range(n_lines):
            if mode == "local":
                off = (occ + j) % region
            elif mode == "stream":
                off = (occ * n_lines + j) % region
            else:
                off = np.full_like(occ, j % region)
            lines[slot0 + j] = base + off
            is_data[slot0 + j] = True
    return lines, is_data
