"""Instrumentation facade: program -> traces + index mapping.

The paper instruments LLVM IR, runs the test input, and records (a) the
trace of all functions and basic blocks and (b) a *mapping file* assigning
each code block an index.  Here the interpreter plays the role of the
instrumented run; this module packages its output in the same shape:

* a basic-block trace of dense gids,
* a function trace derived from it (one entry per dynamic block, giving the
  owning function's index — trimming collapses it to the paper's Def. 1
  function trace),
* the index mapping (gid -> qualified name, function index -> name).

Traces can be saved to / loaded from ``.npz`` files, standing in for the
paper's on-disk trace files.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..ir.module import Module
from .interpreter import RunResult, run
from .state import InputSpec

__all__ = ["TraceBundle", "collect_trace", "save_bundle", "load_bundle"]


@dataclass
class TraceBundle:
    """Everything the locality models need from one instrumented run."""

    program: str
    input_name: str
    #: dynamic basic-block trace (gids, execution order).
    bb_trace: np.ndarray
    #: per-dynamic-block owning-function indices (parallel to bb_trace).
    func_trace: np.ndarray
    #: gid -> "function:block"
    block_names: list[str]
    #: function index -> function name (indices follow module order).
    function_names: list[str]
    #: gid -> function index
    func_of_gid: np.ndarray
    #: total dynamic instructions executed.
    instr_count: int
    #: whether the run hit a natural exit (vs the block budget).
    natural_exit: bool

    @property
    def n_dynamic_blocks(self) -> int:
        return int(self.bb_trace.shape[0])

    @property
    def n_static_blocks(self) -> int:
        return len(self.block_names)


def collect_trace(module: Module, spec: InputSpec) -> TraceBundle:
    """Run ``module`` under ``spec`` and package the instrumented output."""
    result: RunResult = run(module, spec)
    function_names = [f.name for f in module.functions]
    func_index = {name: i for i, name in enumerate(function_names)}
    func_of_gid = np.array(
        [func_index[name] for name in module.function_of_gid()], dtype=np.int32
    )
    block_names = [
        f"{b.func}:{b.name}" for b in (module.block_by_gid(g) for g in range(module.n_blocks))
    ]
    return TraceBundle(
        program=module.name,
        input_name=spec.name,
        bb_trace=result.bb_trace,
        func_trace=func_of_gid[result.bb_trace],
        block_names=block_names,
        function_names=function_names,
        func_of_gid=func_of_gid,
        instr_count=result.instr_count,
        natural_exit=result.natural_exit,
    )


def save_bundle(bundle: TraceBundle, path: str | Path) -> None:
    """Persist a bundle as a compressed ``.npz`` archive."""
    np.savez_compressed(
        Path(path),
        program=np.array(bundle.program),
        input_name=np.array(bundle.input_name),
        bb_trace=bundle.bb_trace,
        func_of_gid=bundle.func_of_gid,
        block_names=np.array(bundle.block_names),
        function_names=np.array(bundle.function_names),
        instr_count=np.array(bundle.instr_count),
        natural_exit=np.array(bundle.natural_exit),
    )


def load_bundle(path: str | Path) -> TraceBundle:
    """Load a bundle written by :func:`save_bundle`."""
    with np.load(Path(path), allow_pickle=False) as data:
        bb_trace = data["bb_trace"]
        func_of_gid = data["func_of_gid"]
        return TraceBundle(
            program=str(data["program"]),
            input_name=str(data["input_name"]),
            bb_trace=bb_trace,
            func_trace=func_of_gid[bb_trace],
            block_names=[str(s) for s in data["block_names"]],
            function_names=[str(s) for s in data["function_names"]],
            func_of_gid=func_of_gid,
            instr_count=int(data["instr_count"]),
            natural_exit=bool(data["natural_exit"]),
        )
