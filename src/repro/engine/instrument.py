"""Instrumentation facade: program -> traces + index mapping.

The paper instruments LLVM IR, runs the test input, and records (a) the
trace of all functions and basic blocks and (b) a *mapping file* assigning
each code block an index.  Here the interpreter plays the role of the
instrumented run; this module packages its output in the same shape:

* a basic-block trace of dense gids,
* a function trace derived from it (one entry per dynamic block, giving the
  owning function's index — trimming collapses it to the paper's Def. 1
  function trace),
* the index mapping (gid -> qualified name, function index -> name).

Traces can be saved to / loaded from ``.npz`` files, standing in for the
paper's on-disk trace files.
"""

from __future__ import annotations

import zipfile
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..ir.module import Module
from ..robust.atomic import atomic_write
from ..robust.errors import ArtifactError
from .interpreter import RunResult, run
from .state import InputSpec

__all__ = ["TraceBundle", "collect_trace", "save_bundle", "load_bundle"]

#: arrays a serialized bundle must carry.
_BUNDLE_KEYS = (
    "program",
    "input_name",
    "bb_trace",
    "func_of_gid",
    "block_names",
    "function_names",
    "instr_count",
    "natural_exit",
)


@dataclass
class TraceBundle:
    """Everything the locality models need from one instrumented run."""

    program: str
    input_name: str
    #: dynamic basic-block trace (gids, execution order).
    bb_trace: np.ndarray
    #: per-dynamic-block owning-function indices (parallel to bb_trace).
    func_trace: np.ndarray
    #: gid -> "function:block"
    block_names: list[str]
    #: function index -> function name (indices follow module order).
    function_names: list[str]
    #: gid -> function index
    func_of_gid: np.ndarray
    #: total dynamic instructions executed.
    instr_count: int
    #: whether the run hit a natural exit (vs the block budget).
    natural_exit: bool

    @property
    def n_dynamic_blocks(self) -> int:
        return int(self.bb_trace.shape[0])

    @property
    def n_static_blocks(self) -> int:
        return len(self.block_names)


def collect_trace(module: Module, spec: InputSpec) -> TraceBundle:
    """Run ``module`` under ``spec`` and package the instrumented output."""
    result: RunResult = run(module, spec)
    function_names = [f.name for f in module.functions]
    func_index = {name: i for i, name in enumerate(function_names)}
    func_of_gid = np.array(
        [func_index[name] for name in module.function_of_gid()], dtype=np.int32
    )
    block_names = [
        f"{b.func}:{b.name}" for b in (module.block_by_gid(g) for g in range(module.n_blocks))
    ]
    return TraceBundle(
        program=module.name,
        input_name=spec.name,
        bb_trace=result.bb_trace,
        func_trace=func_of_gid[result.bb_trace],
        block_names=block_names,
        function_names=function_names,
        func_of_gid=func_of_gid,
        instr_count=result.instr_count,
        natural_exit=result.natural_exit,
    )


def save_bundle(bundle: TraceBundle, path: str | Path) -> None:
    """Persist a bundle as a compressed ``.npz`` archive (atomically).

    Writing through :func:`repro.robust.atomic.atomic_write` guarantees a
    killed build leaves the previous ``trace.npz`` or none — never a
    truncated archive that a later :func:`load_bundle` chokes on.
    """
    with atomic_write(Path(path), binary=True) as fh:
        np.savez_compressed(
            fh,
            program=np.array(bundle.program),
            input_name=np.array(bundle.input_name),
            bb_trace=bundle.bb_trace,
            func_of_gid=bundle.func_of_gid,
            block_names=np.array(bundle.block_names),
            function_names=np.array(bundle.function_names),
            instr_count=np.array(bundle.instr_count),
            natural_exit=np.array(bundle.natural_exit),
        )


def load_bundle(path: str | Path) -> TraceBundle:
    """Load and validate a bundle written by :func:`save_bundle`.

    Raises :class:`~repro.robust.errors.ArtifactError` naming the path and
    defect when the archive is missing, truncated, not an npz, missing
    arrays, or internally inconsistent (non-integer trace, gids out of
    range of the mapping) — never a raw ``BadZipFile`` / ``KeyError`` /
    ``IndexError``.
    """
    path = Path(path)
    try:
        data = np.load(path, allow_pickle=False)
    except FileNotFoundError as err:
        raise ArtifactError(
            "trace bundle does not exist", path=path, defect="missing file", cause=err
        ) from err
    except (zipfile.BadZipFile, OSError, ValueError) as err:
        raise ArtifactError(
            "trace bundle is not a readable npz archive (truncated or corrupt)",
            path=path,
            defect="unreadable archive",
            cause=err,
        ) from err
    with data:
        missing = [k for k in _BUNDLE_KEYS if k not in data.files]
        if missing:
            raise ArtifactError(
                f"trace bundle is missing array(s): {', '.join(missing)}",
                path=path,
                defect=f"missing arrays {missing}",
            )
        try:
            bb_trace = data["bb_trace"]
            func_of_gid = data["func_of_gid"]
            program = str(data["program"])
            input_name = str(data["input_name"])
            block_names = [str(s) for s in data["block_names"]]
            function_names = [str(s) for s in data["function_names"]]
            instr_count = int(data["instr_count"])
            natural_exit = bool(data["natural_exit"])
        except (zipfile.BadZipFile, zlib.error, OSError, ValueError, TypeError) as err:
            raise ArtifactError(
                "trace bundle arrays are corrupt",
                path=path,
                defect="undecodable array payload",
                cause=err,
            ) from err
        if not np.issubdtype(bb_trace.dtype, np.integer):
            raise ArtifactError(
                f"trace bundle bb_trace has non-integer dtype {bb_trace.dtype}",
                path=path,
                defect="non-integer trace dtype",
            )
        n_static = int(func_of_gid.shape[0]) if func_of_gid.ndim else 0
        if bb_trace.size and (
            int(bb_trace.min()) < 0 or int(bb_trace.max()) >= n_static
        ):
            raise ArtifactError(
                f"trace bundle bb_trace references gids outside [0, {n_static})",
                path=path,
                defect="trace gid out of range of mapping",
            )
        return TraceBundle(
            program=program,
            input_name=input_name,
            bb_trace=bb_trace,
            func_trace=func_of_gid[bb_trace],
            block_names=block_names,
            function_names=function_names,
            func_of_gid=func_of_gid,
            instr_count=instr_count,
            natural_exit=natural_exit,
        )
