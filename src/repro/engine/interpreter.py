"""Deterministic IR interpreter.

Executes a sealed :class:`~repro.ir.module.Module` under an
:class:`~repro.engine.state.InputSpec`, producing the dynamic basic-block
trace that all locality models consume.  Execution is fully deterministic
given the input seed.

Semantics
---------
* Execution starts at the entry function's entry block with one root frame.
* ``Branch`` draws a Bernoulli outcome with the block's ``taken_prob`` (or
  ``phase_prob`` during odd phases of ``phase_period`` dynamic blocks).
* ``Switch`` draws a target by normalized weight.
* ``LoopBranch`` maintains a per-frame counter: it takes the back edge until
  ``trips`` executions have occurred, then resets and exits, so each visit
  to the loop runs the body exactly ``trips`` times.
* ``Call`` pushes a frame; ``Return`` pops one (returning from the root
  frame terminates the run).  ``Exit`` terminates immediately.
* The run also terminates after ``max_blocks`` dynamic blocks — the budget
  that stands in for input size.

The interpreter is the hot path of workload preparation, so the main loop
avoids attribute lookups and allocates the trace buffer up front (see the
HPC guide: measure, then remove the bottleneck — a dispatch dict on
terminator type plus local variable binding keeps this at roughly a million
blocks per second, ample for the evaluation's trace budgets).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from itertools import accumulate

import numpy as np

from ..ir.module import (
    Branch,
    Call,
    Exit,
    Jump,
    LoopBranch,
    Module,
    Return,
    Switch,
)
from .state import InputSpec, MachineState

__all__ = ["RunResult", "run"]


@dataclass
class RunResult:
    """Outcome of one interpreted execution."""

    #: dynamic basic-block trace as gids, in execution order.
    bb_trace: np.ndarray
    #: total dynamic instruction count (straight-line + terminators).
    instr_count: int
    #: True if the program reached a natural Exit/root-return before the
    #: block budget ran out.
    natural_exit: bool
    #: the input that produced this run.
    spec: InputSpec

    @property
    def n_blocks(self) -> int:
        return int(self.bb_trace.shape[0])


def run(module: Module, spec: InputSpec) -> RunResult:
    """Execute ``module`` under ``spec`` and record its block trace."""
    if not module.sealed:
        raise ValueError("module must be sealed")

    # Pre-resolve per-gid execution tables; the loop then never touches
    # string names or dataclass attribute chains.
    n = module.n_blocks
    blocks = [module.block_by_gid(g) for g in range(n)]
    n_instr = np.array([b.n_instr for b in blocks], dtype=np.int64)
    gid_of: dict[tuple[str, str], int] = {(b.func, b.name): b.gid for b in blocks}

    # Terminator dispatch tables: kind code + operands resolved to gids.
    K_JUMP, K_BRANCH, K_SWITCH, K_CALL, K_RET, K_EXIT, K_LOOP = range(7)
    kind = np.empty(n, dtype=np.int8)
    op_a = [0] * n  # primary target gid / callee entry gid
    op_b = [0] * n  # secondary target gid / return_to gid
    prob = [0.0] * n
    pprob = [None] * n  # phase probability
    pperiod = [0] * n
    trips = [0] * n
    sw_targets: list[tuple[int, ...]] = [()] * n
    sw_cum: list[list[float]] = [[]] * n

    for b in blocks:
        t = b.terminator
        g = b.gid
        if isinstance(t, Jump):
            kind[g] = K_JUMP
            op_a[g] = gid_of[(b.func, t.target)]
        elif isinstance(t, Branch):
            kind[g] = K_BRANCH
            op_a[g] = gid_of[(b.func, t.then)]
            op_b[g] = gid_of[(b.func, t.orelse)]
            prob[g] = t.taken_prob
            pprob[g] = t.phase_prob
            pperiod[g] = t.phase_period
        elif isinstance(t, Switch):
            kind[g] = K_SWITCH
            sw_targets[g] = tuple(gid_of[(b.func, name)] for name in t.targets)
            total = float(sum(t.weights))
            sw_cum[g] = list(accumulate(w / total for w in t.weights))
        elif isinstance(t, Call):
            kind[g] = K_CALL
            op_a[g] = module.function(t.func).entry.gid
            op_b[g] = gid_of[(b.func, t.return_to)]
        elif isinstance(t, Return):
            kind[g] = K_RET
        elif isinstance(t, Exit):
            kind[g] = K_EXIT
        elif isinstance(t, LoopBranch):
            kind[g] = K_LOOP
            op_a[g] = gid_of[(b.func, t.back)]
            op_b[g] = gid_of[(b.func, t.exit_to)]
            trips[g] = t.trips
        else:  # pragma: no cover - exhaustive over IR terminators
            raise TypeError(f"unknown terminator {t!r}")

    state = MachineState(spec)
    state.push(module.entry, None)

    max_blocks = spec.max_blocks
    trace = np.empty(max_blocks, dtype=np.int32)
    rand = state.rng.random
    frames = state.frames
    phase_offset = spec.phase_offset

    executed = 0
    instr = 0
    natural = False
    current = module.function(module.entry).entry.gid
    loop_counters = frames[-1].loop_counters

    while executed < max_blocks:
        trace[executed] = current
        executed += 1
        instr += int(n_instr[current])

        k = kind[current]
        if k == K_JUMP:
            current = op_a[current]
        elif k == K_BRANCH:
            p = prob[current]
            pp = pprob[current]
            if pp is not None and ((executed + phase_offset) // pperiod[current]) & 1:
                p = pp
            current = op_a[current] if rand() < p else op_b[current]
        elif k == K_LOOP:
            c = loop_counters.get(current, 0) + 1
            if c < trips[current]:
                loop_counters[current] = c
                current = op_a[current]
            else:
                loop_counters[current] = 0
                current = op_b[current]
        elif k == K_CALL:
            frames.append(_Frame(blocks[current].func, op_b[current]))
            loop_counters = frames[-1].loop_counters
            current = op_a[current]
        elif k == K_RET:
            frame = frames.pop()
            if not frames:
                natural = True
                break
            loop_counters = frames[-1].loop_counters
            current = frame.return_gid  # type: ignore[assignment]
        elif k == K_SWITCH:
            i = bisect.bisect_left(sw_cum[current], rand())
            targets = sw_targets[current]
            current = targets[min(i, len(targets) - 1)]
        else:  # K_EXIT
            natural = True
            break

    return RunResult(
        bb_trace=trace[:executed].copy(),
        instr_count=instr,
        natural_exit=natural,
        spec=spec,
    )


class _Frame:
    """Minimal frame used inside the hot loop (lighter than state.Frame)."""

    __slots__ = ("func", "return_gid", "loop_counters")

    def __init__(self, func: str, return_gid: int):
        self.func = func
        self.return_gid = return_gid
        self.loop_counters: dict[int, int] = {}
