"""Interpreter machine state.

The interpreter models only what the trace needs: a call stack with per-frame
loop counters, a global dynamic-block counter (which also drives branch phase
behaviour), and a seeded RNG.  There is no data memory — branch outcomes are
driven by probabilities, counted loops, and phases, which is sufficient to
produce traces with the locality structure the paper's models consume
(hot/cold paths, loop nests, phase shifts, call interleavings).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Frame", "MachineState", "InputSpec"]


@dataclass(frozen=True)
class InputSpec:
    """One program input.

    The paper profiles with the SPEC *test* input and evaluates with the
    *ref* input.  Here an input is a seed (branch outcome stream) plus a
    budget of dynamic basic blocks; distinct seeds and budgets reproduce the
    profile-mismatch effect.

    Attributes
    ----------
    name: label ("test", "ref", ...).
    seed: RNG seed for branch outcomes.
    max_blocks: stop after this many dynamic basic blocks (programs whose
        natural exit comes earlier stop there).
    phase_offset: shifts the global phase counter, so the same program can
        present different phase alignment between inputs.
    """

    name: str
    seed: int
    max_blocks: int
    phase_offset: int = 0


@dataclass
class Frame:
    """One call-stack frame."""

    func: str
    #: gid of the block to resume at in the caller (None for the root frame).
    return_gid: Optional[int]
    #: per-frame loop counters, keyed by the LoopBranch block's gid.
    loop_counters: dict[int, int] = field(default_factory=dict)


class MachineState:
    """Mutable interpreter state for one run."""

    __slots__ = ("rng", "frames", "executed_blocks", "executed_instr", "phase_offset")

    def __init__(self, spec: InputSpec):
        # random.Random is several times faster per draw than numpy's
        # Generator for scalar draws, which dominates the interpreter loop.
        self.rng = random.Random(spec.seed)
        self.frames: list[Frame] = []
        self.executed_blocks = 0
        self.executed_instr = 0
        self.phase_offset = spec.phase_offset

    @property
    def depth(self) -> int:
        return len(self.frames)

    @property
    def top(self) -> Frame:
        return self.frames[-1]

    def push(self, func: str, return_gid: Optional[int]) -> None:
        self.frames.append(Frame(func, return_gid))

    def pop(self) -> Frame:
        return self.frames.pop()

    def phase(self, period: int) -> int:
        """Current phase index for a ``period``-block phase cycle."""
        return (self.executed_blocks + self.phase_offset) // period
