"""Instruction-fetch modeling: block traces -> cache-line access streams.

The cache simulator consumes line addresses.  Executing one basic block
fetches its bytes sequentially, touching each cache line it spans exactly
once per execution.  Given a dynamic block trace and an
:class:`~repro.ir.codegen.AddressMap`, this module expands the trace into
the corresponding line-index stream.

The expansion is fully vectorized (``np.repeat`` + cumulative offsets); it
is the single hottest data-preparation step in the evaluation pipeline, so
no Python-level loop touches the trace.
"""

from __future__ import annotations

import numpy as np

from ..ir.codegen import AddressMap

__all__ = ["line_spans", "fetch_lines", "fetch_line_count"]


def line_spans(amap: AddressMap, line_bytes: int) -> tuple[np.ndarray, np.ndarray]:
    """Per-gid ``(first_line, n_lines)`` arrays for a given line size."""
    if line_bytes <= 0 or line_bytes & (line_bytes - 1):
        raise ValueError("line_bytes must be a positive power of two")
    starts = amap.starts
    ends = starts + amap.sizes  # exclusive
    first = starts // line_bytes
    last = (ends - 1) // line_bytes
    return first.astype(np.int64), (last - first + 1).astype(np.int64)


def fetch_lines(
    trace: np.ndarray, amap: AddressMap, line_bytes: int
) -> np.ndarray:
    """Expand a dynamic block trace into its cache-line access stream.

    Each occurrence of block ``g`` contributes the consecutive line indices
    ``first[g] .. first[g] + n_lines[g] - 1``.

    Returns an ``int64`` array of line indices (not byte addresses); the
    cache simulator maps them to sets directly.
    """
    if trace.ndim != 1:
        raise ValueError("trace must be one-dimensional")
    first, n_lines = line_spans(amap, line_bytes)
    counts = n_lines[trace]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # Offsets 0..counts[i]-1 within each block execution:
    # repeat each execution's first line, then add a ramp that resets at
    # each execution boundary.
    starts_rep = np.repeat(first[trace], counts)
    boundaries = np.cumsum(counts) - counts  # start index of each execution
    ramp = np.arange(total, dtype=np.int64) - np.repeat(boundaries, counts)
    return starts_rep + ramp


def fetch_line_count(trace: np.ndarray, amap: AddressMap, line_bytes: int) -> int:
    """Number of line accesses :func:`fetch_lines` would produce (no expansion)."""
    _, n_lines = line_spans(amap, line_bytes)
    return int(n_lines[trace].sum())
