"""Execution substrate: deterministic interpreter, instrumentation, fetch model."""

from .datastream import DATA_SPACE_BASE, data_lines, merged_stream
from .fetch import fetch_line_count, fetch_lines, line_spans
from .instrument import TraceBundle, collect_trace, load_bundle, save_bundle
from .interpreter import RunResult, run
from .state import Frame, InputSpec, MachineState

__all__ = [
    "DATA_SPACE_BASE",
    "Frame",
    "InputSpec",
    "MachineState",
    "RunResult",
    "TraceBundle",
    "collect_trace",
    "data_lines",
    "fetch_line_count",
    "fetch_lines",
    "line_spans",
    "load_bundle",
    "merged_stream",
    "run",
    "save_bundle",
]
