"""The fleet co-run scheduling simulator: N instances onto M sockets.

:func:`run_fleet` is the end-to-end driver behind ``python -m
repro.fleet`` and the ``exp_fleet`` experiment:

1. build the distinct (program, layout) *models* and their footprint
   curves — one curve pass per model, fanned across the lab's
   :class:`~repro.perf.parallel.CellPool` workers and memoized under
   :class:`~repro.perf.memo.SimMemo` curve digests;
2. sweep the **co-run pair matrix**: every unordered model pair
   (self-pairs included) composed once and queried across a capacity
   sweep — hundreds of thousands of cells answered from those few
   curves (the reuse ratio the fleet-bench CI gate asserts);
3. replicate the models into N instances, place them onto M sockets
   under every requested policy, and score each placement with the
   composition model — layout-aware policies must beat the oblivious
   ones on total predicted misses.

Everything is deterministic: curves are content-addressed, the only
randomness is the seeded ``random`` policy, and placements tie-break
lexicographically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

import numpy as np

from ..experiments.pipeline import BASELINE, Lab
from ..workloads.suite import ALL_PROGRAMS
from .compose import CurveSet
from .placement import (
    AWARE_POLICIES,
    OBLIVIOUS_POLICIES,
    POLICIES,
    Instance,
    Placement,
    evaluate_placement,
)

__all__ = ["FleetResult", "run_fleet"]


@dataclass
class FleetResult:
    """One fleet run's models, matrix statistics, and scored placements."""

    n_instances: int
    n_sockets: int
    capacity: float
    models: tuple[tuple[str, str], ...]
    #: policy name -> scored placement.
    placements: dict[str, Placement] = field(default_factory=dict)
    #: pair-matrix sweep statistics.
    matrix_pairs: int = 0
    matrix_capacities: int = 0
    matrix_cells: int = 0
    mean_corun_ratio: float = 0.0
    worst_pair: tuple[str, str] = ("", "")
    worst_pair_ratio: float = 0.0
    curve_passes: int = 0
    curve_memo_hits: int = 0
    seconds: float = 0.0

    def _family_best(self, names: Sequence[str]) -> Optional[Placement]:
        scored = [self.placements[n] for n in names if n in self.placements]
        if not scored:
            return None
        return min(scored, key=lambda p: p.total_misses)

    @property
    def best_aware(self) -> Optional[Placement]:
        return self._family_best(AWARE_POLICIES)

    @property
    def best_oblivious(self) -> Optional[Placement]:
        return self._family_best(OBLIVIOUS_POLICIES)

    @property
    def aware_total(self) -> float:
        best = self.best_aware
        return best.total_misses if best is not None else float("nan")

    @property
    def oblivious_total(self) -> float:
        best = self.best_oblivious
        return best.total_misses if best is not None else float("nan")

    @property
    def gate(self) -> bool:
        """The fleet-bench claim: the best layout-aware placement's
        predicted misses strictly beat the best oblivious placement's."""
        return self.aware_total < self.oblivious_total

    def to_dict(self) -> dict[str, Any]:
        return {
            "n_instances": self.n_instances,
            "n_sockets": self.n_sockets,
            "capacity": self.capacity,
            "models": [list(m) for m in self.models],
            "placements": {
                name: {
                    "total_misses": p.total_misses,
                    "makespan": p.makespan,
                    "groups": [list(g) for g in p.groups],
                }
                for name, p in sorted(self.placements.items())
            },
            "matrix": {
                "pairs": self.matrix_pairs,
                "capacities": self.matrix_capacities,
                "cells": self.matrix_cells,
                "mean_corun_ratio": self.mean_corun_ratio,
                "worst_pair": list(self.worst_pair),
                "worst_pair_ratio": self.worst_pair_ratio,
            },
            "curve_passes": self.curve_passes,
            "curve_memo_hits": self.curve_memo_hits,
            "aware_total": self.aware_total,
            "oblivious_total": self.oblivious_total,
            "gate": self.gate,
            "seconds": round(self.seconds, 4),
        }


def run_fleet(
    lab: Lab,
    *,
    n_instances: int,
    n_sockets: int,
    layouts: Sequence[str] = (BASELINE,),
    programs: Optional[Sequence[str]] = None,
    policies: Optional[Sequence[str]] = None,
    seed: int = 0,
    capacity: Optional[float] = None,
    matrix_capacities: int = 128,
) -> FleetResult:
    """Simulate one fleet: curves -> pair matrix -> placements.

    ``capacity`` defaults to the lab's cache geometry in lines.  The
    instance list replicates the (program x layout) models round-robin
    up to ``n_instances``, each weighted by its trace length, so every
    instance of a model reuses the model's single curve.
    """
    if n_instances < 1:
        raise ValueError("n_instances must be >= 1")
    if n_sockets < 1:
        raise ValueError("n_sockets must be >= 1")
    if matrix_capacities < 1:
        raise ValueError("matrix_capacities must be >= 1")
    programs = list(programs) if programs is not None else list(ALL_PROGRAMS)
    policies = list(policies) if policies is not None else list(POLICIES)
    for name in policies:
        if name not in POLICIES:
            raise ValueError(f"unknown policy {name!r}")
    capacity = float(capacity) if capacity is not None else float(lab.cache_cfg.n_lines)

    start = time.perf_counter()
    models = [(p, layout) for p in programs for layout in layouts]
    passes_before = lab.counters["curve_passes"]
    hits_before = lab.counters["curve_memo_hits"]
    lab.precompute_footprints(models)
    curves = [lab.footprint(p, layout) for (p, layout) in models]
    curve_set = CurveSet(curves)

    # The co-run pair matrix: every unordered model pair (self-pairs
    # included) composed once, answered across the capacity sweep.
    caps = capacity * np.linspace(0.25, 1.5, matrix_capacities)
    n_pairs = 0
    ratio_sum = 0.0
    worst_pair = ("", "")
    worst_ratio = -1.0
    for i in range(len(models)):
        for j in range(i, len(models)):
            grid = curve_set.group([i, j]).miss_ratio_matrix(caps)
            n_pairs += 1
            ratio_sum += float(grid.mean()) * grid.size
            pair_peak = float(grid.mean())
            if pair_peak > worst_ratio:
                worst_ratio = pair_peak
                worst_pair = (f"{models[i][0]}/{models[i][1]}",
                              f"{models[j][0]}/{models[j][1]}")
    matrix_cells = curve_set.cells

    instances = [
        Instance(
            name=models[k % len(models)][0],
            layout=models[k % len(models)][1],
            curve_id=k % len(models),
            weight=float(curves[k % len(models)].n),
        )
        for k in range(n_instances)
    ]
    result = FleetResult(
        n_instances=n_instances,
        n_sockets=n_sockets,
        capacity=capacity,
        models=tuple(models),
        matrix_pairs=n_pairs,
        matrix_capacities=matrix_capacities,
        mean_corun_ratio=ratio_sum / matrix_cells if matrix_cells else 0.0,
        worst_pair=worst_pair,
        worst_pair_ratio=max(worst_ratio, 0.0),
    )
    for name in policies:
        groups = POLICIES[name](
            instances, n_sockets, curve_set=curve_set, capacity=capacity, seed=seed
        )
        result.placements[name] = evaluate_placement(
            curve_set, instances, groups, capacity, lab.timing, policy=name
        )
    result.matrix_cells = matrix_cells
    result.curve_passes = int(lab.counters["curve_passes"] - passes_before)
    result.curve_memo_hits = int(lab.counters["curve_memo_hits"] - hits_before)
    result.seconds = time.perf_counter() - start
    lab.counters["fleet_cells"] += curve_set.cells
    lab.counters["fleet_seconds"] += result.seconds
    return result
