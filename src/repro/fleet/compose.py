"""Vectorized k-way footprint composition for fleet-scale co-run matrices.

The paper's shared-cache prediction (Eq. 1/2) composes footprints by
addition: a group of co-runners misses together once
``sum_i fp_i(w) >= C``, and each member's co-run miss ratio is its own
growth rate at that shared fill time.  The scalar path
(:func:`repro.locality.hotl.shared_fill_time_scalar`) answers one
(group, capacity) question per call, re-summing every member curve
inside each binary-search probe — fine for a pair, hopeless for a fleet
matrix of hundreds of groups x a capacity sweep.

This module answers whole *matrices* per group:

* :class:`CurveSet` holds the distinct per-(program, layout) curves —
  the unit of reuse.  A fleet run computes each curve **once** (usually
  through the :class:`~repro.perf.memo.SimMemo` curve tier) and then
  derives millions of co-run cells from the set; the ``cells`` counter
  feeds the ``fleet`` telemetry section and the CI gate asserting
  cells >> curve passes.
* :class:`ComposedGroup` aligns and sums its members' curves once
  (:func:`repro.locality.hotl.compose_curves`) and answers shared fill
  times for a whole capacity vector with one ``searchsorted``, and the
  full per-member x per-capacity miss-ratio matrix with NumPy gathers —
  no per-probe Python loops.

Every number is **bit-identical** to the scalar oracles: the composed
curve accumulates member values in sequence order (the same IEEE
additions the per-probe ``sum()`` performs), ``searchsorted`` on a
monotone curve is the same binary search, and growth rates are exact
differences of the same ``fp`` arrays.  ``tests/fleet/test_compose.py``
and the ``python -m repro.fleet bench`` gate pin this on randomized
curve sets.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..locality.footprint import FootprintCurve
from ..locality.hotl import compose_curves

__all__ = ["ComposedGroup", "CurveSet"]


def _validate_capacities(caps: np.ndarray) -> None:
    """Vector form of the hotl capacity guard: all finite and positive."""
    if caps.size == 0:
        raise ValueError("need at least one capacity")
    if not np.all(np.isfinite(caps)):
        bad = caps[~np.isfinite(caps)][0]
        raise ValueError(f"capacity must be finite, got {bad!r}")
    if np.any(caps <= 0):
        raise ValueError("capacity must be positive")


class CurveSet:
    """The distinct footprint curves a fleet run composes from.

    One entry per (program, layout) model; every instance of that model
    and every group/capacity cell reuses the same curve object.
    ``cells`` accumulates the number of co-run matrix entries answered —
    the numerator of the cells-per-curve reuse ratio the fleet bench
    gate asserts.
    """

    def __init__(self, curves: Sequence[FootprintCurve]):
        self.curves: tuple[FootprintCurve, ...] = tuple(curves)
        if not self.curves:
            raise ValueError("need at least one footprint curve")
        #: co-run matrix cells answered from this set (one cell = one
        #: member's miss ratio at one capacity in one group).
        self.cells = 0

    def __len__(self) -> int:
        return len(self.curves)

    def group(self, members: Sequence[int]) -> "ComposedGroup":
        """Compose the curves at indices ``members`` into one group."""
        return ComposedGroup(self, members)


class ComposedGroup:
    """One shared cache's co-runners, composed once, queried many times.

    ``members`` are indices into the owning :class:`CurveSet`; the same
    index may appear multiple times (several instances of one model on
    one socket).  Construction pays the aligned sum once; every query
    after that is a vectorized lookup.
    """

    def __init__(self, curve_set: CurveSet, members: Sequence[int]):
        self.set = curve_set
        self.members: tuple[int, ...] = tuple(int(i) for i in members)
        if not self.members:
            raise ValueError("need at least one group member")
        self.curves: tuple[FootprintCurve, ...] = tuple(
            curve_set.curves[i] for i in self.members
        )
        #: the aligned member sum; its fill_time IS the shared fill time.
        self.composed: FootprintCurve = compose_curves(self.curves)

    def fill_time(self, capacity: float) -> int:
        """Scalar shared fill time (bit-identical to
        :func:`repro.locality.hotl.shared_fill_time`)."""
        return int(self.fill_times(np.asarray([float(capacity)]))[0])

    def fill_times(self, capacities: np.ndarray) -> np.ndarray:
        """Shared fill times for a whole capacity vector at once.

        Matches the scalar path probe for probe: capacities within 1e-9
        of the combined total footprint snap to it, capacities beyond
        the tolerance answer ``max_n + 1`` (no contention), everything
        else is one ``side="left"`` ``searchsorted`` — the same binary
        search the scalar oracle runs, against the same summed values.
        """
        caps = np.asarray(capacities, dtype=np.float64)
        _validate_capacities(caps)
        total_m = float(self.composed.m)
        # The composed fp[max_n] equals total_m *exactly* (member fp[n_i]
        # are integer-valued floats; their sequential sum is exact below
        # 2**53), so snapped capacities land on max_n like the oracle.
        ws = np.searchsorted(
            self.composed.fp, np.minimum(caps, total_m), side="left"
        ).astype(np.int64)
        over = caps > self.composed.m
        if np.any(over):
            snap = over & np.isclose(caps, self.composed.m, rtol=1e-9, atol=1e-9)
            ws[over & ~snap] = self.composed.n + 1
        return ws

    def miss_ratio_matrix(self, capacities: np.ndarray) -> np.ndarray:
        """Per-member co-run miss ratios, shape ``(len(members), len(caps))``.

        Row *i* is member *i*'s predicted miss ratio at each capacity:
        its own footprint growth rate at the shared fill time, exactly 0
        past its trace end (Eq. 1/2 applied member-wise).  Growth rates
        are gathered straight from each member's own ``fp`` array, so
        every entry equals the scalar
        :func:`repro.locality.hotl.shared_miss_ratios` value bit for
        bit.  Each entry counts as one cell in the owning set.
        """
        caps = np.asarray(capacities, dtype=np.float64)
        ws = self.fill_times(caps)
        out = np.zeros((len(self.curves), caps.shape[0]), dtype=np.float64)
        for i, curve in enumerate(self.curves):
            if curve.n == 0:
                continue  # empty trace: growth is 0 everywhere
            # growth(w) = fp[w+1] - fp[w] for w < n, else exactly 0.0;
            # clamp the gather indices, then zero the finished entries.
            wc = np.clip(ws, 0, curve.n - 1)
            g = curve.fp[wc + 1] - curve.fp[wc]
            g[ws >= curve.n] = 0.0
            out[i] = g
        self.set.cells += int(out.size)
        return out

    def miss_ratios(self, capacity: float) -> list[float]:
        """Scalar-capacity convenience: one column of the matrix."""
        return [float(x) for x in self.miss_ratio_matrix([float(capacity)])[:, 0]]
