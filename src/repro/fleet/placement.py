"""Placement policies: bin-packing program instances onto shared caches.

A fleet run places N program instances onto M sockets; every socket is
one shared cache, and the instances on it co-run under the paper's
composition model.  Policies come in two families:

* **layout-oblivious** — ``round-robin`` and ``random`` ignore the
  programs' cache behavior entirely (what a scheduler without footprint
  information does);
* **layout-aware** — ``worst-fit`` balances footprint *pressure* (the
  cache space a program actually claims at capacity) across sockets,
  and ``score-aware`` additionally separates aggressive programs from
  sensitive ones using the defensiveness/politeness decomposition: a
  program's *aggressiveness* is the pressure it exerts on cache peers,
  its *sensitivity* is how much its miss ratio grows when effective
  capacity halves.  Greedily assigning each instance to the socket
  where ``aggr_i * sum(sens) + sens_i * sum(aggr)`` is smallest keeps
  bullies and victims apart — O(N·M) scalar work, no compositions
  during packing.

All policies are deterministic for a given seed and instance list:
tie-breaks go to the lowest socket index, and scoring sorts break ties
on the instance's (name, layout, index) key, so placements — and the
journals derived from them — are reproducible across dict-order or
input-order changes.

:func:`evaluate_placement` scores any placement with the composition
matrix (:mod:`repro.fleet.compose`) and the
:mod:`repro.machine.timing` cost model: total predicted misses across
the fleet, and the makespan of the slowest socket.
:func:`matched_pairs` bridges to the exact/greedy matching machinery in
:mod:`repro.machine.scheduler` for pair-sized fleets, using composed
misses as the pair cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from ..locality.hotl import miss_ratio
from ..machine.scheduler import Pairing, best_pairing, greedy_pairing
from ..machine.timing import TimingParams
from .compose import CurveSet

__all__ = [
    "AWARE_POLICIES",
    "OBLIVIOUS_POLICIES",
    "POLICIES",
    "Instance",
    "Placement",
    "evaluate_placement",
    "matched_pairs",
    "random_place",
    "round_robin",
    "score_aware",
    "worst_fit",
]


@dataclass(frozen=True)
class Instance:
    """One program instance to place: a (program, layout) model replica.

    ``curve_id`` indexes the owning :class:`~repro.fleet.compose.CurveSet`
    — thousands of instances of the same model share one curve.
    ``weight`` is the instance's work in line accesses (its trace
    length); misses scale with it, so two replicas of a model cost twice
    one replica.
    """

    name: str
    layout: str
    curve_id: int
    weight: float

    @property
    def key(self) -> tuple[str, str]:
        return (self.name, self.layout)


@dataclass(frozen=True)
class Placement:
    """One policy's scored assignment of instances to sockets.

    ``groups[s]`` lists the instance indices on socket ``s`` (possibly
    empty).  ``total_misses`` is the fleet-wide predicted co-run miss
    count; ``makespan`` the cycle cost of the slowest socket under the
    lab's timing model.
    """

    policy: str
    groups: tuple[tuple[int, ...], ...]
    total_misses: float
    makespan: float


def _pressure(curve_set: CurveSet, capacity: float):
    """Per-curve footprint demand at ``capacity``: the space the program
    holds once the cache fills (its whole footprint if it fits)."""

    def demand(curve_id: int) -> float:
        curve = curve_set.curves[curve_id]
        w = min(curve.fill_time(capacity), curve.n)
        return float(curve(w))

    return demand


def round_robin(
    instances: Sequence[Instance],
    n_sockets: int,
    *,
    curve_set: CurveSet,
    capacity: float,
    seed: int = 0,
) -> list[list[int]]:
    """Layout-oblivious: deal instances to sockets in input order."""
    groups: list[list[int]] = [[] for _ in range(n_sockets)]
    for i in range(len(instances)):
        groups[i % n_sockets].append(i)
    return groups


def random_place(
    instances: Sequence[Instance],
    n_sockets: int,
    *,
    curve_set: CurveSet,
    capacity: float,
    seed: int = 0,
) -> list[list[int]]:
    """Layout-oblivious: deal a seeded random permutation round-robin."""
    rng = np.random.default_rng(seed)
    groups: list[list[int]] = [[] for _ in range(n_sockets)]
    for slot, i in enumerate(rng.permutation(len(instances))):
        groups[slot % n_sockets].append(int(i))
    for g in groups:
        g.sort()
    return groups


def worst_fit(
    instances: Sequence[Instance],
    n_sockets: int,
    *,
    curve_set: CurveSet,
    capacity: float,
    seed: int = 0,
) -> list[list[int]]:
    """Layout-aware: balance footprint pressure across sockets.

    Classic worst-fit decreasing: sort instances by descending pressure
    and put each on the currently least-loaded socket, so no socket
    accumulates a pile of large-footprint programs.
    """
    demand = _pressure(curve_set, capacity)
    order = sorted(
        range(len(instances)),
        key=lambda i: (-demand(instances[i].curve_id), instances[i].key, i),
    )
    groups: list[list[int]] = [[] for _ in range(n_sockets)]
    load = [0.0] * n_sockets
    for i in order:
        s = min(range(n_sockets), key=lambda s: (load[s], s))
        groups[s].append(i)
        load[s] += demand(instances[i].curve_id)
    for g in groups:
        g.sort()
    return groups


def score_aware(
    instances: Sequence[Instance],
    n_sockets: int,
    *,
    curve_set: CurveSet,
    capacity: float,
    seed: int = 0,
) -> list[list[int]]:
    """Layout-aware: separate aggressive programs from sensitive ones.

    The paper's politeness/defensiveness decomposition, as scheduling
    scores: an instance *harms* a socket in proportion to its
    aggressiveness times the residents' summed sensitivity, and *is
    harmed* in proportion to its sensitivity times their summed
    aggressiveness.  An overflow term — the footprint the socket would
    exceed capacity by — keeps mutually-insensitive aggressive programs
    from all stacking onto one cache (their pairwise scores are zero,
    but an overflowing socket thrashes regardless of scores).  Greedy
    assignment (most aggressive first) to the least-harmful socket,
    load as tie-break.
    """
    demand = _pressure(curve_set, capacity)
    n = len(curve_set.curves)
    aggr = [demand(c) for c in range(n)]
    # Sensitivity: miss-ratio growth when a peer claims half the cache.
    sens = [
        max(
            0.0,
            miss_ratio(curve_set.curves[c], capacity / 2.0)
            - miss_ratio(curve_set.curves[c], capacity),
        )
        for c in range(n)
    ]
    order = sorted(
        range(len(instances)),
        key=lambda i: (-aggr[instances[i].curve_id], instances[i].key, i),
    )
    groups: list[list[int]] = [[] for _ in range(n_sockets)]
    sock_aggr = [0.0] * n_sockets
    sock_sens = [0.0] * n_sockets
    load = [0.0] * n_sockets
    for i in order:
        c = instances[i].curve_id
        s = min(
            range(n_sockets),
            key=lambda s: (
                aggr[c] * sock_sens[s]
                + sens[c] * sock_aggr[s]
                + max(0.0, load[s] + aggr[c] - capacity),
                load[s],
                s,
            ),
        )
        groups[s].append(i)
        sock_aggr[s] += aggr[c]
        sock_sens[s] += sens[c]
        load[s] += aggr[c]
    for g in groups:
        g.sort()
    return groups


#: policy registry: name -> callable with the uniform signature.
POLICIES: dict[str, Callable[..., list[list[int]]]] = {
    "round-robin": round_robin,
    "random": random_place,
    "worst-fit": worst_fit,
    "score-aware": score_aware,
}

#: the layout-oblivious family (the fleet gate's losing side).
OBLIVIOUS_POLICIES = ("round-robin", "random")

#: the layout-aware family (must beat every oblivious policy's misses).
AWARE_POLICIES = ("worst-fit", "score-aware")


def evaluate_placement(
    curve_set: CurveSet,
    instances: Sequence[Instance],
    groups: Sequence[Sequence[int]],
    capacity: float,
    timing: Optional[TimingParams] = None,
    policy: str = "?",
) -> Placement:
    """Score a placement with the composition model.

    Each non-empty socket composes its members' curves once and reads
    their co-run miss ratios at ``capacity``; an instance's predicted
    misses are ``ratio * weight``.  Socket cycle cost follows the
    :mod:`repro.machine.timing` model (base CPI on the instance's work
    plus the miss penalty on its predicted misses); the makespan is the
    slowest socket.
    """
    timing = timing if timing is not None else TimingParams()
    total_misses = 0.0
    makespan = 0.0
    for members in groups:
        if not members:
            continue
        grp = curve_set.group([instances[i].curve_id for i in members])
        ratios = grp.miss_ratios(capacity)
        socket_cycles = 0.0
        for idx, ratio in zip(members, ratios):
            inst = instances[idx]
            misses = ratio * inst.weight
            total_misses += misses
            cycles = inst.weight * timing.base_cpi + misses * timing.icache_miss_penalty
            socket_cycles = max(socket_cycles, cycles)
        makespan = max(makespan, socket_cycles)
    return Placement(
        policy=policy,
        groups=tuple(tuple(int(i) for i in members) for members in groups),
        total_misses=total_misses,
        makespan=makespan,
    )


def matched_pairs(
    curve_set: CurveSet,
    instances: Sequence[Instance],
    capacity: float,
    *,
    exact: bool = True,
) -> Pairing:
    """Pair an even instance list via :mod:`repro.machine.scheduler`.

    The pair cost is the composed pair's total predicted misses — the
    same objective :func:`evaluate_placement` totals — so the exact
    matcher gives the certified-optimal two-per-socket placement to
    cross-check the greedy policies against on small fleets.
    """
    items = [str(i) for i in range(len(instances))]

    def pair_cost(a: str, b: str) -> float:
        grp = curve_set.group(
            [instances[int(a)].curve_id, instances[int(b)].curve_id]
        )
        ra, rb = grp.miss_ratios(capacity)
        return ra * instances[int(a)].weight + rb * instances[int(b)].weight

    match = best_pairing if exact else greedy_pairing
    return match(items, pair_cost)
