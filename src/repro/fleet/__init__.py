"""Fleet-scale co-run scheduling on footprint composition (ROADMAP 3).

The paper predicts co-run misses compositionally — ``P(self.FP +
peer.FP >= C)`` — which generalizes past pairs: this package bin-packs
N program instances onto M sockets/shared caches using the k-way
composition kernel (:mod:`repro.fleet.compose`), compares layout-aware
against layout-oblivious placement (:mod:`repro.fleet.placement`), and
scales to hundreds of thousands of co-run cells by reusing one
footprint curve per (program, layout) model
(:mod:`repro.fleet.simulator`).  ``python -m repro.fleet`` is the CLI;
``exp_fleet`` runs it inside the experiment suite.
"""

from .compose import ComposedGroup, CurveSet
from .placement import (
    AWARE_POLICIES,
    OBLIVIOUS_POLICIES,
    POLICIES,
    Instance,
    Placement,
    evaluate_placement,
    matched_pairs,
)
from .simulator import FleetResult, run_fleet

__all__ = [
    "AWARE_POLICIES",
    "ComposedGroup",
    "CurveSet",
    "FleetResult",
    "Instance",
    "OBLIVIOUS_POLICIES",
    "POLICIES",
    "Placement",
    "evaluate_placement",
    "matched_pairs",
    "run_fleet",
]
