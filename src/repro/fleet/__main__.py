"""``python -m repro.fleet`` — fleet co-run scheduling CLI.

Subcommands:

``run``
    Simulate one fleet: build per-model footprint curves, sweep the
    co-run pair matrix, place N instances onto M sockets under every
    policy, and print the layout-aware vs layout-oblivious comparison.

``bench``
    The fleet-bench CI gate.  First a randomized **parity gate**: the
    vectorized composition path (:class:`~repro.fleet.compose.ComposedGroup`)
    must answer bit-identically to the scalar
    :func:`~repro.locality.hotl.shared_fill_time_scalar` /
    :func:`~repro.locality.hotl.shared_miss_ratios_scalar` oracles on
    random curve sets (exit 1 on any divergence).  Then a full fleet
    run with three asserted claims, all read back from the telemetry
    report itself:

    * the co-run matrix resolved at least ``--min-cells`` cells
      (default 100000);
    * those cells came from at most ``--max-curve-passes`` fresh
      footprint-curve computations (default 29 — one per workload
      model);
    * the best layout-aware placement's total predicted misses strictly
      beat the best layout-oblivious placement's.

    ``--out`` writes the full bench telemetry report (with a
    ``fleet_bench`` section) to ``BENCH_fleet.json``; ``--bench``
    merges the section into an existing report instead.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np


def _parity_gate(seed: int, trials: int) -> list[str]:
    """Randomized bit-identity check of the vectorized composition path.

    Random traces of unequal lengths -> real footprint curves -> every
    (group, capacity) answer compared ``==`` (no tolerance) against the
    scalar oracles, including capacities above the combined footprint
    (the no-contention branch) and within snap tolerance of it.
    """
    from ..locality.footprint import footprint_curve
    from ..locality.hotl import (
        shared_fill_time_scalar,
        shared_miss_ratios_scalar,
    )
    from .compose import CurveSet

    rng = np.random.default_rng(seed)
    failures: list[str] = []
    for trial in range(trials):
        k = int(rng.integers(2, 6))
        curves = [
            footprint_curve(
                rng.integers(0, int(rng.integers(4, 40)), size=int(rng.integers(8, 300)))
            )
            for _ in range(k)
        ]
        total_m = sum(c.m for c in curves)
        caps = np.concatenate(
            [
                rng.uniform(0.5, max(total_m * 1.2, 2.0), size=8),
                [float(total_m), total_m + 1e-10, total_m * 2.0],
            ]
        )
        group = CurveSet(curves).group(range(k))
        ws = group.fill_times(caps)
        grid = group.miss_ratio_matrix(caps)
        for ci, cap in enumerate(caps):
            w_ref = shared_fill_time_scalar(curves, float(cap))
            if int(ws[ci]) != w_ref:
                failures.append(
                    f"trial {trial}: fill_time({cap!r}) = {int(ws[ci])}, "
                    f"scalar oracle {w_ref}"
                )
                continue
            ratios_ref = shared_miss_ratios_scalar(curves, float(cap))
            got = [float(x) for x in grid[:, ci]]
            if got != ratios_ref:
                failures.append(
                    f"trial {trial}: miss_ratios({cap!r}) = {got}, "
                    f"scalar oracle {ratios_ref}"
                )
    return failures


def _build_lab(args):
    from ..experiments.pipeline import Lab
    from ..perf.memo import SimMemo
    from ..perf.store import TraceStore

    memo = SimMemo(args.memo_dir) if args.memo_dir is not None else SimMemo()
    store = TraceStore(args.store_dir) if args.store_dir is not None else None
    return Lab(scale=args.scale, jobs=args.jobs, memo=memo, store=store)


def _run_fleet(args):
    from .simulator import run_fleet

    lab = _build_lab(args)
    programs = [p for p in args.programs.split(",") if p] if args.programs else None
    layouts = [name for name in args.layouts.split(",") if name]
    with lab:
        result = run_fleet(
            lab,
            n_instances=args.instances,
            n_sockets=args.sockets,
            layouts=layouts,
            programs=programs,
            seed=args.seed,
            capacity=args.capacity,
            matrix_capacities=args.matrix_capacities,
        )
    return lab, result


def _print_result(result) -> None:
    print(
        f"fleet: {result.n_instances} instances on {result.n_sockets} sockets, "
        f"capacity {result.capacity:.0f} lines, {len(result.models)} models"
    )
    print(
        f"pair matrix: {result.matrix_pairs} pairs x "
        f"{result.matrix_capacities} capacities = {result.matrix_cells} cells "
        f"from {result.curve_passes} curve passes "
        f"(+{result.curve_memo_hits} memo hits); mean co-run ratio "
        f"{result.mean_corun_ratio:.4f}, worst pair "
        f"{result.worst_pair[0]} + {result.worst_pair[1]}"
    )
    for name, placement in sorted(result.placements.items()):
        print(
            f"  {name:>12}: total misses {placement.total_misses:.3e}, "
            f"makespan {placement.makespan:.3e} cycles"
        )
    verdict = "beats" if result.gate else "DOES NOT beat"
    print(
        f"layout-aware {verdict} oblivious: "
        f"{result.aware_total:.3e} vs {result.oblivious_total:.3e} misses"
    )


def _cmd_run(args) -> int:
    _, result = _run_fleet(args)
    _print_result(result)
    return 0


def _cmd_bench(args) -> int:
    from ..perf.telemetry import BENCH_SCHEMA, Telemetry
    from ..robust.atomic import atomic_write_text

    failures = _parity_gate(args.seed, args.parity_trials)
    if failures:
        print("fleet composition parity FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(
        f"fleet composition parity OK: {args.parity_trials} random curve "
        f"sets, vectorized == scalar oracles bit for bit"
    )

    t0 = time.perf_counter()
    lab, result = _run_fleet(args)
    telemetry = Telemetry(jobs=args.jobs, scale=args.scale)
    telemetry.merge_stages(lab.timings)
    telemetry.merge_counters(lab.counters)
    if lab.memo is not None:
        telemetry.merge_memo(lab.memo.counters())
    if lab.store is not None:
        telemetry.merge_store(lab.store.counters())
    telemetry.wall_s = time.perf_counter() - t0
    report = telemetry.to_dict()
    _print_result(result)

    # The gates read from the telemetry report itself — what CI archives
    # is what was asserted.
    fleet = report.get("fleet") or {}
    errors: list[str] = []
    cells = int(fleet.get("cells", 0))
    passes = int(fleet.get("curve_passes", 0))
    if cells < args.min_cells:
        errors.append(
            f"co-run matrix resolved {cells} cells, below required "
            f"{args.min_cells}"
        )
    if passes > args.max_curve_passes:
        errors.append(
            f"{passes} footprint-curve computations, above allowed "
            f"{args.max_curve_passes}"
        )
    if not result.gate:
        errors.append(
            f"layout-aware total misses {result.aware_total!r} do not beat "
            f"oblivious {result.oblivious_total!r}"
        )
    if errors:
        for e in errors:
            print(f"error: {e}", file=sys.stderr)
        return 1
    print(
        f"fleet gate OK: {cells} cells from {passes} curve passes "
        f"({fleet.get('cells_per_curve', 0.0)} cells/curve), aware "
        f"{result.aware_total:.3e} < oblivious {result.oblivious_total:.3e}"
    )

    section = {
        "instances": result.n_instances,
        "sockets": result.n_sockets,
        "models": len(result.models),
        "matrix_cells": cells,
        "curve_passes": passes,
        "curve_memo_hits": int(fleet.get("curve_memo_hits", 0)),
        "cells_per_curve": fleet.get("cells_per_curve", 0.0),
        "aware_total_misses": result.aware_total,
        "oblivious_total_misses": result.oblivious_total,
        "aware_policy": result.best_aware.policy if result.best_aware else None,
        "oblivious_policy": (
            result.best_oblivious.policy if result.best_oblivious else None
        ),
        "seconds": round(result.seconds, 4),
    }
    if args.out is not None:
        report["fleet_bench"] = section
        atomic_write_text(args.out, json.dumps(report, indent=2, sort_keys=True))
        print(f"fleet bench report written to {args.out}")
    if args.bench is not None:
        try:
            with open(args.bench) as fh:
                bench = json.load(fh)
        except (OSError, ValueError):
            bench = {"schema": BENCH_SCHEMA}
        bench["fleet_bench"] = section
        atomic_write_text(args.bench, json.dumps(bench, indent=2, sort_keys=True))
        print(f"fleet_bench section merged into {args.bench}")
    return 0


def _add_fleet_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--programs",
        default=None,
        help="comma-separated suite programs (default: all 29 workload models)",
    )
    p.add_argument(
        "--layouts",
        default="baseline",
        help="comma-separated layout variants per program",
    )
    p.add_argument(
        "--instances", type=int, default=116, help="program instances to place"
    )
    p.add_argument(
        "--sockets", type=int, default=29, help="sockets / shared caches"
    )
    p.add_argument(
        "--scale", type=float, default=0.1, help="trace-budget multiplier"
    )
    p.add_argument("--jobs", type=int, default=1, help="curve fan-out workers")
    p.add_argument(
        "--capacity",
        type=float,
        default=None,
        help="shared-cache capacity in lines (default: the lab geometry)",
    )
    p.add_argument(
        "--matrix-capacities",
        type=int,
        default=128,
        help="capacity sweep points in the co-run pair matrix",
    )
    p.add_argument("--seed", type=int, default=0, help="random-policy seed")
    p.add_argument(
        "--memo-dir",
        default=None,
        metavar="DIR",
        help="persistent SimMemo directory (curves replay across runs)",
    )
    p.add_argument(
        "--store-dir",
        default=None,
        metavar="DIR",
        help="TraceStore directory (zero-copy curve fan-out)",
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.fleet", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="simulate one fleet and print the comparison")
    _add_fleet_args(run_p)

    bench_p = sub.add_parser(
        "bench", help="fleet-bench gate: parity + reuse + aware-beats-oblivious"
    )
    _add_fleet_args(bench_p)
    bench_p.add_argument(
        "--parity-trials",
        type=int,
        default=25,
        help="random curve sets for the composition parity gate",
    )
    bench_p.add_argument(
        "--min-cells",
        type=int,
        default=100_000,
        help="fail unless the co-run matrix resolves at least this many cells",
    )
    bench_p.add_argument(
        "--max-curve-passes",
        type=int,
        default=29,
        help="fail if more fresh footprint-curve computations were needed",
    )
    bench_p.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the full bench telemetry report (BENCH_fleet.json)",
    )
    bench_p.add_argument(
        "--bench",
        default=None,
        metavar="PATH",
        help="merge the fleet_bench section into this BENCH_perf.json",
    )

    args = parser.parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "bench":
        return _cmd_bench(args)
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
