"""Static layout comparison: explain *why* one layout beats another.

Instead of simulating two layouts and reporting a miss-ratio delta, this
module lints both and diffs the rule metrics — the conflict score, the hot
footprint, the fragmentation level, the fall-through bloat — producing an
explanation a build log can print in milliseconds.  The primary ranking
metric is L001's ``conflict_score`` (statically predicted conflict-victim
fetch volume), which the test suite validates against the simulator; the
remaining metrics break ties and furnish the narrative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cache.config import PAPER_L1I, CacheConfig
from ..engine.instrument import TraceBundle
from ..ir.codegen import AddressMap
from ..ir.module import Module
from ..ir.transforms import LayoutResult
from .diagnostics import LintReport
from .rules import LintConfig, run_lint

__all__ = ["MetricDelta", "LayoutComparison", "compare_layouts", "conflict_score"]

#: (rule id, metric key, human label, lower_is_better)
_COMPARED_METRICS: list[tuple[str, str, str, bool]] = [
    ("L001", "conflict_score", "set-conflict score", True),
    ("L001", "n_conflict_sets", "over-subscribed sets", True),
    ("L005", "hot_lines", "static hot footprint (lines)", True),
    ("L004", "mean_utilization", "mean hot-line utilization", False),
    ("L002", "dynamic_added_jumps", "dynamic added-jump fetches", True),
    ("L002", "added_jumps", "static added jumps", True),
    ("L006", "total_bytes", "code bytes", True),
]

#: metrics that decide the verdict, in priority order.
_RANKING: list[tuple[str, str, bool]] = [
    ("L001", "conflict_score", True),
    ("L005", "hot_lines", True),
    ("L002", "dynamic_added_jumps", True),
]


def conflict_score(
    module: Module,
    layout: "LayoutResult | AddressMap",
    bundle: TraceBundle,
    cache: CacheConfig = PAPER_L1I,
    config: Optional[LintConfig] = None,
) -> float:
    """L001's aggregate static conflict score for one layout.

    The fraction of hot-line fetch volume directed at lines that exceed
    their cache set's associativity — the analyzer's single-number layout
    quality predictor (validated against simulated miss ratios in the test
    suite).
    """
    report = run_lint(module, layout, bundle, cache, config)
    return float(report.metrics["L001"]["conflict_score"])


@dataclass(frozen=True)
class MetricDelta:
    """One compared metric across the two layouts."""

    rule: str
    key: str
    label: str
    lower_is_better: bool
    a: float
    b: float

    @property
    def winner(self) -> str:
        if self.a == self.b:
            return "tie"
        return "a" if (self.a < self.b) == self.lower_is_better else "b"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "metric": self.key,
            "label": self.label,
            "a": self.a,
            "b": self.b,
            "winner": self.winner,
        }


@dataclass
class LayoutComparison:
    """Outcome of :func:`compare_layouts`."""

    name_a: str
    name_b: str
    report_a: LintReport
    report_b: LintReport
    deltas: list[MetricDelta]
    #: "a", "b" or "tie" — decided by the ranking metrics in priority order.
    winner: str

    @property
    def winner_name(self) -> str:
        if self.winner == "a":
            return self.name_a
        if self.winner == "b":
            return self.name_b
        return "tie"

    def explanations(self) -> list[str]:
        """One sentence per metric that separates the two layouts."""
        out = []
        for d in self.deltas:
            if d.winner == "tie":
                continue
            better, worse = (self.name_a, self.name_b) if d.winner == "a" else (
                self.name_b,
                self.name_a,
            )
            lo, hi = (d.a, d.b) if d.winner == "a" else (d.b, d.a)
            if d.lower_is_better:
                out.append(
                    f"{better} has lower {d.label} than {worse} "
                    f"({_fmt(lo)} vs {_fmt(hi)})"
                )
            else:
                out.append(
                    f"{better} has higher {d.label} than {worse} "
                    f"({_fmt(hi if d.winner == 'a' else lo)} vs "
                    f"{_fmt(lo if d.winner == 'a' else hi)})"
                )
        return out

    def to_dict(self) -> dict:
        return {
            "a": self.name_a,
            "b": self.name_b,
            "winner": self.winner_name,
            "metrics": [d.to_dict() for d in self.deltas],
            "explanations": self.explanations(),
        }

    def render_text(self) -> str:
        head = f"compare {self.name_a} vs {self.name_b}"
        lines = [head, "-" * len(head)]
        width = max(len(d.label) for d in self.deltas)
        for d in self.deltas:
            mark = {"a": "<", "b": ">", "tie": "="}[d.winner]
            lines.append(
                f"  {d.label:<{width}}  {_fmt(d.a):>12} {mark} {_fmt(d.b):<12} [{d.rule}]"
            )
        if self.winner == "tie":
            lines.append("verdict: statically indistinguishable")
        else:
            lines.append(
                f"verdict: {self.winner_name} is the statically better layout"
            )
            for why in self.explanations()[:3]:
                lines.append(f"  - {why}")
        return "\n".join(lines)


def _fmt(v: float) -> str:
    if v == int(v):
        return str(int(v))
    return f"{v:.4g}"


def _get(report: LintReport, rule: str, key: str) -> float:
    return float(report.metrics.get(rule, {}).get(key, 0.0))


def compare_layouts(
    module: Module,
    bundle: TraceBundle,
    layout_a: "LayoutResult | AddressMap",
    layout_b: "LayoutResult | AddressMap",
    cache: CacheConfig = PAPER_L1I,
    config: Optional[LintConfig] = None,
    *,
    name_a: str = "a",
    name_b: str = "b",
) -> LayoutComparison:
    """Lint two layouts of the same module/profile and diff the metrics."""
    report_a = run_lint(module, layout_a, bundle, cache, config, layout_name=name_a)
    report_b = run_lint(module, layout_b, bundle, cache, config, layout_name=name_b)

    deltas = [
        MetricDelta(rule, key, label, lower, _get(report_a, rule, key), _get(report_b, rule, key))
        for rule, key, label, lower in _COMPARED_METRICS
    ]

    winner = "tie"
    for rule, key, lower in _RANKING:
        a, b = _get(report_a, rule, key), _get(report_b, rule, key)
        if a != b:
            winner = "a" if (a < b) == lower else "b"
            break
    return LayoutComparison(name_a, name_b, report_a, report_b, deltas, winner)
