"""Shared derived facts for lint rules.

Every rule reasons over the same few projections of ``(Module, AddressMap,
TraceBundle, CacheConfig)`` — per-block execution counts, the hot set, the
byte→line→set geometry, per-line heat and hot-byte occupancy.  A
:class:`LintContext` computes each projection once, lazily, and hands it to
all rules, so a full lint run costs one pass over the profile and one pass
over the blocks regardless of how many rules are enabled.

Heat model
----------
A block is **hot** when it belongs to the smallest set of most frequently
executed blocks whose occurrences cover ``hot_coverage`` of the dynamic
trace (the same popularity ordering the paper's pruning step uses,
:func:`repro.trace.prune.popularity`).  Everything else — including code
the profile never reached — is **cold**.  Line *heat* counts dynamic
fetches of the line: one per execution of each block that spans it.
"""

from __future__ import annotations

from functools import cached_property
from typing import TYPE_CHECKING

import numpy as np

from ..cache.config import CacheConfig
from ..engine.fetch import line_spans
from ..ir.module import Module

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.instrument import TraceBundle
    from ..ir.codegen import AddressMap

__all__ = ["LintContext"]


class LintContext:
    """Lazily-derived facts one lint run shares across rules."""

    def __init__(
        self,
        module: Module,
        amap: "AddressMap",
        bundle: "TraceBundle",
        cache: CacheConfig,
        *,
        hot_coverage: float = 0.9,
    ) -> None:
        if not 0.0 < hot_coverage <= 1.0:
            raise ValueError("hot_coverage must be in (0, 1]")
        self.module = module
        self.amap = amap
        self.bundle = bundle
        self.cache = cache
        self.hot_coverage = hot_coverage

    # -- identity ---------------------------------------------------------

    @property
    def n_blocks(self) -> int:
        return self.module.n_blocks

    def block_name(self, gid: int) -> str:
        b = self.module.block_by_gid(gid)
        return f"{b.func}:{b.name}"

    # -- profile heat -----------------------------------------------------

    @cached_property
    def exec_counts(self) -> np.ndarray:
        """Dynamic execution count per gid (int64, indexed by gid)."""
        return np.bincount(
            self.bundle.bb_trace, minlength=self.n_blocks
        ).astype(np.int64)

    @cached_property
    def total_dynamic(self) -> int:
        return int(self.exec_counts.sum())

    @cached_property
    def hot_gids(self) -> list[int]:
        """Hot blocks, most frequently executed first.

        The smallest popularity prefix covering ``hot_coverage`` of all
        dynamic block occurrences (ties broken by gid for determinism).
        """
        counts = self.exec_counts
        if self.total_dynamic == 0:
            return []
        order = np.lexsort((np.arange(self.n_blocks), -counts))
        cum = np.cumsum(counts[order])
        need = self.hot_coverage * self.total_dynamic
        cut = int(np.searchsorted(cum, need)) + 1
        hot = order[:cut]
        return [int(g) for g in hot if counts[g] > 0]

    @cached_property
    def hot_mask(self) -> np.ndarray:
        mask = np.zeros(self.n_blocks, dtype=bool)
        mask[self.hot_gids] = True
        return mask

    def is_hot(self, gid: int) -> bool:
        return bool(self.hot_mask[gid])

    # -- geometry ---------------------------------------------------------

    @cached_property
    def _spans(self) -> tuple[np.ndarray, np.ndarray]:
        return line_spans(self.amap, self.cache.line_bytes)

    @property
    def first_line(self) -> np.ndarray:
        """First cache-line index of each block (indexed by gid)."""
        return self._spans[0]

    @property
    def lines_per_block(self) -> np.ndarray:
        """Number of cache lines each block spans (indexed by gid)."""
        return self._spans[1]

    @cached_property
    def position(self) -> dict[int, int]:
        """gid -> index in layout order."""
        return {gid: i for i, gid in enumerate(self.amap.order)}

    # -- line-level projections ------------------------------------------

    @cached_property
    def line_heat(self) -> dict[int, int]:
        """line index -> dynamic fetches of that line."""
        heat: dict[int, int] = {}
        counts = self.exec_counts
        first, n_lines = self._spans
        for gid in np.nonzero(counts)[0]:
            c = int(counts[gid])
            lo = int(first[gid])
            for line in range(lo, lo + int(n_lines[gid])):
                heat[line] = heat.get(line, 0) + c
        return heat

    @cached_property
    def hot_lines(self) -> list[int]:
        """Distinct cache lines touched by hot blocks — the static hot footprint."""
        lines: set[int] = set()
        first, n_lines = self._spans
        for gid in self.hot_gids:
            lo = int(first[gid])
            lines.update(range(lo, lo + int(n_lines[gid])))
        return sorted(lines)

    @cached_property
    def hot_line_blocks(self) -> dict[int, list[int]]:
        """line index -> hot gids spanning it (hottest first)."""
        by_line: dict[int, list[int]] = {}
        first, n_lines = self._spans
        for gid in self.hot_gids:  # hot_gids is already heat-ordered
            lo = int(first[gid])
            for line in range(lo, lo + int(n_lines[gid])):
                by_line.setdefault(line, []).append(gid)
        return by_line

    @cached_property
    def line_hot_bytes(self) -> dict[int, int]:
        """line index -> bytes of that line occupied by hot blocks."""
        lb = self.cache.line_bytes
        occ: dict[int, int] = {}
        for gid in self.hot_gids:
            start, end = self.amap.span(gid)
            for line in range(start // lb, (end - 1) // lb + 1):
                lo = max(start, line * lb)
                hi = min(end, (line + 1) * lb)
                occ[line] = occ.get(line, 0) + (hi - lo)
        return occ
