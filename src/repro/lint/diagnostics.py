"""Diagnostics core of the static layout analyzer.

A :class:`Diagnostic` is one finding: a rule id, a severity, a location in
the code image (a block, a cache set, a line, or the layout as a whole) and
the measured values that triggered it.  A :class:`LintReport` bundles every
diagnostic one lint run produced together with the per-rule aggregate
metrics, and knows how to render itself for machines (JSON) and humans
(compiler-style text).

Severity semantics mirror the IR verifier's split between hard errors and
warnings:

* ``ERROR`` — the layout is structurally broken (not a permutation,
  overlapping blocks).  The CLI exits non-zero.
* ``WARNING`` — the layout is legal but statically predicted to behave
  badly in the cache (conflict hotspots, blown footprint).
* ``INFO`` — context that explains a warning or quantifies a cost without
  predicting a defect by itself.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Mapping, Optional

__all__ = ["Severity", "Diagnostic", "LintReport", "render_text", "render_json"]


class Severity(str, Enum):
    """Diagnostic severity, ordered ``INFO < WARNING < ERROR``."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return _SEVERITY_RANK[self]

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls(text.strip().lower())
        except ValueError:
            names = ", ".join(s.value for s in cls)
            raise ValueError(f"unknown severity {text!r} (expected one of: {names})")


_SEVERITY_RANK = {Severity.INFO: 0, Severity.WARNING: 1, Severity.ERROR: 2}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one rule.

    ``location`` is a human-oriented anchor: ``"func:block"`` for
    block-level findings, ``"set 17"`` / ``"line 412"`` for geometry-level
    ones, ``"layout"`` for whole-image findings.  ``measured`` carries the
    numbers behind the message so tooling never has to parse prose.
    """

    rule: str
    severity: Severity
    location: str
    message: str
    measured: Mapping[str, object] = field(default_factory=dict)

    @property
    def sort_key(self) -> tuple[str, str, str]:
        """Canonical ordering key: ``(rule, location, message)``.

        Location strings encode the anchor hierarchy (``func:block``,
        ``set N``, ``layout``), so sorting by this key groups findings by
        rule, then by where they point.  Every rendering path sorts by it
        (errors first in text output) so report output is a pure function
        of the finding *set* — independent of rule execution or emission
        order, which keeps report diffs and golden tests stable.
        """
        return (self.rule, self.location, self.message)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "location": self.location,
            "message": self.message,
            "measured": dict(self.measured),
        }

    def format(self) -> str:
        parts = f"{self.severity.value.upper():7s} {self.rule} [{self.location}] {self.message}"
        if self.measured:
            detail = ", ".join(f"{k}={_fmt_value(v)}" for k, v in self.measured.items())
            parts += f"  ({detail})"
        return parts


def _fmt_value(v: object) -> str:
    if isinstance(v, float):
        return f"{v:.4g}"
    return str(v)


@dataclass
class LintReport:
    """Everything one lint run produced for one layout.

    ``metrics`` maps each rule id to that rule's aggregate measurements
    (populated even when the rule found nothing), so downstream consumers —
    :func:`repro.lint.compare.compare_layouts`, the correlation tests — can
    score layouts without re-deriving anything.
    """

    program: str
    layout: str
    cache: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: rule id -> aggregate metric values (always one entry per rule run).
    metrics: dict[str, dict] = field(default_factory=dict)
    #: rule ids that ran, in execution order (includes clean rules).
    rules_run: list[str] = field(default_factory=list)

    def extend(self, diags: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diags)

    def by_rule(self, rule: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.rule == rule]

    def sorted_diagnostics(self) -> list[Diagnostic]:
        """Diagnostics in canonical ``(rule, location, message)`` order."""
        return sorted(self.diagnostics, key=lambda d: d.sort_key)

    def count(self, severity: Severity) -> int:
        return sum(1 for d in self.diagnostics if d.severity is severity)

    @property
    def n_errors(self) -> int:
        return self.count(Severity.ERROR)

    @property
    def n_warnings(self) -> int:
        return self.count(Severity.WARNING)

    @property
    def ok(self) -> bool:
        """True when no ERROR-severity diagnostic was emitted."""
        return self.n_errors == 0

    def max_severity(self) -> Optional[Severity]:
        if not self.diagnostics:
            return None
        return max((d.severity for d in self.diagnostics), key=lambda s: s.rank)

    def summary(self) -> dict:
        """Small JSON-serializable digest (used by build reports)."""
        per_rule = {rule: 0 for rule in self.rules_run}
        for d in self.diagnostics:
            per_rule[d.rule] = per_rule.get(d.rule, 0) + 1
        return {
            "errors": self.n_errors,
            "warnings": self.n_warnings,
            "infos": self.count(Severity.INFO),
            "by_rule": per_rule,
        }

    def to_dict(self) -> dict:
        return {
            "program": self.program,
            "layout": self.layout,
            "cache": self.cache,
            "summary": self.summary(),
            "rules": {
                rule: {
                    "n_diagnostics": len(self.by_rule(rule)),
                    "metrics": self.metrics.get(rule, {}),
                }
                for rule in self.rules_run
            },
            "diagnostics": [d.to_dict() for d in self.sorted_diagnostics()],
        }


def render_json(report: LintReport, *, indent: int = 2) -> str:
    """Machine-readable rendering of a report."""
    return json.dumps(report.to_dict(), indent=indent, sort_keys=False)


def render_text(report: LintReport) -> str:
    """Human-readable, compiler-style rendering of a report."""
    head = f"lint {report.program} / {report.layout} ({report.cache})"
    lines = [head, "-" * len(head)]
    if not report.diagnostics:
        lines.append("clean: no diagnostics")
    else:
        order = sorted(
            report.diagnostics, key=lambda d: (-d.severity.rank, *d.sort_key)
        )
        lines.extend(d.format() for d in order)
    s = report.summary()
    lines.append(
        f"{s['errors']} error(s), {s['warnings']} warning(s), "
        f"{s['infos']} info(s) from {len(report.rules_run)} rule(s)"
    )
    return "\n".join(lines)
