"""The initial lint rule pack (L001–L006).

Each rule statically predicts one cache-behaviour defect of a concrete
layout, in the vocabulary of the paper:

=====  =======================  =========================================
id     name                     predicts
=====  =======================  =========================================
L001   set-conflict-hotspot     conflict misses: hot lines piled onto one
                                cache set beyond its associativity
L002   broken-fallthrough       code bloat + fetch discontinuity from
                                fall-through successors laid out apart
L003   hot-cold-interleaving    wasted fetches: cold code embedded inside
                                hot runs
L004   line-utilization         fragmentation politeness cost: hot lines
                                mostly filled with cold bytes
L005   footprint-over-capacity  capacity/defensiveness risk: static hot
                                footprint vs. the paper's C threshold
L006   layout-integrity         structural breakage (not a permutation,
                                overlaps, impossible sizes)
=====  =======================  =========================================

L001's aggregate ``conflict_score`` — the dynamic fetch volume directed at
lines that exceed their set's associativity, normalized by total hot fetch
volume — doubles as the analyzer's headline quality metric; the test suite
verifies it rank-correlates with simulated miss ratios across the paper's
four optimizers.
"""

from __future__ import annotations

from .context import LintContext
from .diagnostics import Diagnostic, Severity
from .integrity import RULE_INTEGRITY, audit_address_map
from .rules import LintConfig, rule

__all__ = [
    "set_conflict_hotspot",
    "broken_fallthrough",
    "hot_cold_interleaving",
    "line_utilization",
    "footprint_over_capacity",
    "layout_integrity",
]


def _truncation_note(rule_id: str, shown: int, total: int) -> Diagnostic:
    return Diagnostic(
        rule_id,
        Severity.INFO,
        "layout",
        f"{total - shown} further finding(s) suppressed (showing top {shown})",
        {"n_total": total, "n_shown": shown},
    )


@rule(
    "L001",
    "set-conflict-hotspot",
    "hot cache lines mapped to one set beyond its associativity",
    Severity.WARNING,
)
def set_conflict_hotspot(ctx: LintContext, cfg: LintConfig) -> tuple[list[Diagnostic], dict]:
    """Static conflict-miss predictor.

    Maps every hot line to its cache set; a set holding more hot lines than
    ways cannot keep them all resident, so the overflow lines — the coldest
    of the set, under LRU's bias toward heat — are predicted conflict
    victims.  The score charges each victim line its dynamic fetch count.
    """
    cache = ctx.cache
    by_set: dict[int, list[int]] = {}
    for line in ctx.hot_lines:
        by_set.setdefault(cache.set_of_line(line), []).append(line)

    heat = ctx.line_heat
    total_hot_heat = sum(heat.get(line, 0) for line in ctx.hot_lines)
    findings = []
    victim_heat_total = 0
    max_pressure = 0.0
    for set_idx, lines in by_set.items():
        pressure = len(lines) / cache.assoc
        max_pressure = max(max_pressure, pressure)
        if len(lines) <= cache.assoc:
            continue
        ranked = sorted(lines, key=lambda line: (-heat.get(line, 0), line))
        victims = ranked[cache.assoc :]
        victim_heat = sum(heat.get(line, 0) for line in victims)
        victim_heat_total += victim_heat
        culprits = []
        for line in ranked[: cache.assoc + 2]:
            for gid in ctx.hot_line_blocks.get(line, [])[:1]:
                name = ctx.block_name(gid)
                if name not in culprits:
                    culprits.append(name)
        findings.append(
            (
                victim_heat,
                Diagnostic(
                    "L001",
                    Severity.WARNING,
                    f"set {set_idx}",
                    f"{len(lines)} hot lines compete for {cache.assoc} ways"
                    + (f" (e.g. {', '.join(culprits[:3])})" if culprits else ""),
                    {
                        "hot_lines": len(lines),
                        "assoc": cache.assoc,
                        "pressure": round(pressure, 3),
                        "victim_fetches": victim_heat,
                    },
                ),
            )
        )

    findings.sort(key=lambda t: -t[0])
    diags = [d for _, d in findings[: cfg.max_reports]]
    if len(findings) > cfg.max_reports:
        diags.append(_truncation_note("L001", cfg.max_reports, len(findings)))

    score = victim_heat_total / total_hot_heat if total_hot_heat else 0.0
    metrics = {
        "n_conflict_sets": len(findings),
        "n_sets_used": len(by_set),
        "max_pressure": round(max_pressure, 4),
        "victim_fetches": victim_heat_total,
        "conflict_score": round(score, 6),
    }
    return diags, metrics


@rule(
    "L002",
    "broken-fallthrough",
    "fall-through successors not laid out adjacently (added-jump bloat)",
    Severity.WARNING,
)
def broken_fallthrough(ctx: LintContext, cfg: LintConfig) -> tuple[list[Diagnostic], dict]:
    """Attributes the layout's added-jump bloat to individual blocks.

    A block whose fall-through successor is not placed immediately after it
    pays one explicit jump (static bloat) on every execution (dynamic fetch
    discontinuity).  Hot offenders are reported individually; cold ones only
    count toward the aggregate, since cold code keeps its declaration-order
    quirks in any realistic layout.
    """
    module, amap, pos = ctx.module, ctx.amap, ctx.position
    broken_hot = []
    n_broken_total = 0
    dynamic_jumps = 0
    for block in module.iter_blocks():
        ft = block.terminator.fallthrough_target()
        if ft is None:
            continue
        gid = block.gid
        target = module.function(block.func).block(ft).gid
        adjacent = (
            pos[target] == pos[gid] + 1
            and int(amap.starts[target]) == int(amap.starts[gid]) + int(amap.sizes[gid])
        )
        if adjacent:
            continue
        n_broken_total += 1
        execs = int(ctx.exec_counts[gid])
        dynamic_jumps += execs
        if ctx.is_hot(gid):
            broken_hot.append((execs, gid, target))

    broken_hot.sort(key=lambda t: (-t[0], t[1]))
    diags = [
        Diagnostic(
            "L002",
            Severity.WARNING,
            ctx.block_name(gid),
            f"hot fall-through to {ctx.block_name(target)} is broken "
            f"(explicit jump on every execution)",
            {"executions": execs, "target": ctx.block_name(target)},
        )
        for execs, gid, target in broken_hot[: cfg.max_reports]
    ]
    if len(broken_hot) > cfg.max_reports:
        diags.append(_truncation_note("L002", cfg.max_reports, len(broken_hot)))

    metrics = {
        "n_broken_hot": len(broken_hot),
        "n_broken_total": n_broken_total,
        "added_jumps": int(amap.added_jumps),
        "dynamic_added_jumps": dynamic_jumps,
    }
    return diags, metrics


@rule(
    "L003",
    "hot-cold-interleaving",
    "cold blocks embedded inside hot runs, wasting fetched lines",
    Severity.WARNING,
)
def hot_cold_interleaving(ctx: LintContext, cfg: LintConfig) -> tuple[list[Diagnostic], dict]:
    """Flags short cold runs sandwiched between hot blocks.

    A small pocket of cold code inside a hot run shares cache lines with
    the hot code around it and is fetched on its neighbours' coattails —
    pure footprint waste.  Long cold runs merely separate two hot regions
    and are not flagged.
    """
    amap = ctx.amap
    limit_bytes = cfg.interleave_max_cold_lines * ctx.cache.line_bytes
    order = amap.order
    findings = []
    wasted_bytes = 0
    i = 0
    n = len(order)
    while i < n:
        gid = order[i]
        if ctx.is_hot(gid):
            i += 1
            continue
        j = i
        run_bytes = 0
        while j < n and not ctx.is_hot(order[j]):
            run_bytes += int(amap.sizes[order[j]])
            j += 1
        sandwiched = 0 < i and j < n
        if sandwiched and run_bytes < limit_bytes:
            wasted_bytes += run_bytes
            first, last = order[i], order[j - 1]
            loc = (
                ctx.block_name(first)
                if i == j - 1
                else f"{ctx.block_name(first)}..{ctx.block_name(last)}"
            )
            findings.append(
                (
                    run_bytes,
                    Diagnostic(
                        "L003",
                        Severity.WARNING,
                        loc,
                        f"{j - i} cold block(s) ({run_bytes}B) interrupt the hot run "
                        f"between {ctx.block_name(order[i - 1])} and "
                        f"{ctx.block_name(order[j])}",
                        {
                            "cold_blocks": j - i,
                            "cold_bytes": run_bytes,
                            "prev_hot": ctx.block_name(order[i - 1]),
                            "next_hot": ctx.block_name(order[j]),
                        },
                    ),
                )
            )
        i = j
    findings.sort(key=lambda t: -t[0])
    diags = [d for _, d in findings[: cfg.max_reports]]
    if len(findings) > cfg.max_reports:
        diags.append(_truncation_note("L003", cfg.max_reports, len(findings)))
    metrics = {"n_interleavings": len(findings), "interleaved_cold_bytes": wasted_bytes}
    return diags, metrics


@rule(
    "L004",
    "line-utilization",
    "hot-touched cache lines mostly filled with cold bytes",
    Severity.WARNING,
)
def line_utilization(ctx: LintContext, cfg: LintConfig) -> tuple[list[Diagnostic], dict]:
    """Fragmentation politeness cost.

    Every line a hot block touches is fetched whole; bytes of the line not
    occupied by hot code are capacity the program takes from the shared
    cache without using.  Reports the overall utilization of the hot
    footprint and warns when too many lines fall below the threshold.
    """
    lb = ctx.cache.line_bytes
    occ = ctx.line_hot_bytes
    if not occ:
        return [], {
            "n_hot_lines": 0,
            "mean_utilization": 1.0,
            "n_fragmented": 0,
            "fragmented_fraction": 0.0,
        }
    utils = {line: occ[line] / lb for line in occ}
    fragmented = {
        line: u for line, u in utils.items() if u < cfg.line_utilization_threshold
    }
    mean_util = sum(utils.values()) / len(utils)
    frag_fraction = len(fragmented) / len(utils)

    diags: list[Diagnostic] = []
    if frag_fraction > cfg.fragmentation_warn_fraction:
        diags.append(
            Diagnostic(
                "L004",
                Severity.WARNING,
                "layout",
                f"{len(fragmented)} of {len(utils)} hot lines are below "
                f"{cfg.line_utilization_threshold:.0%} hot-byte utilization",
                {
                    "n_fragmented": len(fragmented),
                    "n_hot_lines": len(utils),
                    "fragmented_fraction": round(frag_fraction, 4),
                    "mean_utilization": round(mean_util, 4),
                },
            )
        )
    worst = sorted(fragmented.items(), key=lambda t: (t[1], t[0]))[: min(5, cfg.max_reports)]
    for line, u in worst:
        owners = [ctx.block_name(g) for g in ctx.hot_line_blocks.get(line, [])[:2]]
        diags.append(
            Diagnostic(
                "L004",
                Severity.INFO,
                f"line {line}",
                f"only {occ[line]}B of {lb}B are hot"
                + (f" ({', '.join(owners)})" if owners else ""),
                {"hot_bytes": occ[line], "line_bytes": lb, "utilization": round(u, 4)},
            )
        )

    metrics = {
        "n_hot_lines": len(utils),
        "mean_utilization": round(mean_util, 6),
        "n_fragmented": len(fragmented),
        "fragmented_fraction": round(frag_fraction, 6),
    }
    return diags, metrics


@rule(
    "L005",
    "footprint-over-capacity",
    "static hot footprint at or above the cache-capacity threshold",
    Severity.WARNING,
)
def footprint_over_capacity(ctx: LintContext, cfg: LintConfig) -> tuple[list[Diagnostic], dict]:
    """The paper's defensiveness threshold, evaluated statically.

    A program misses in shared cache when ``self.FP + peer.FP >= C``
    (paper Eq. 1).  With the static hot footprint H as the FP proxy:
    ``H >= C`` predicts capacity misses even solo; ``2H >= C`` predicts
    thrashing against a symmetric peer — the defensiveness risk the
    paper's optimizers exist to reduce.
    """
    h = len(ctx.hot_lines)
    c = ctx.cache.n_lines
    ratio = h / c if c else 0.0
    diags: list[Diagnostic] = []
    if h >= c:
        diags.append(
            Diagnostic(
                "L005",
                Severity.WARNING,
                "layout",
                f"static hot footprint ({h} lines) exceeds cache capacity "
                f"({c} lines): capacity misses even solo",
                {"hot_lines": h, "capacity_lines": c, "footprint_ratio": round(ratio, 4)},
            )
        )
    elif 2 * h >= c:
        diags.append(
            Diagnostic(
                "L005",
                Severity.INFO,
                "layout",
                f"static hot footprint ({h} lines) exceeds half of capacity "
                f"({c} lines): predicted to thrash against a symmetric peer",
                {"hot_lines": h, "capacity_lines": c, "footprint_ratio": round(ratio, 4)},
            )
        )
    metrics = {
        "hot_lines": h,
        "capacity_lines": c,
        "footprint_ratio": round(ratio, 6),
    }
    return diags, metrics


@rule(
    "L006",
    "layout-integrity",
    "permutation, overlap and gap audit of the address map",
    Severity.ERROR,
)
def layout_integrity(ctx: LintContext, cfg: LintConfig) -> tuple[list[Diagnostic], dict]:
    """The post-processing sanity check as a rule.

    Delegates to the same audits :mod:`repro.ir.transforms` applies when a
    layout is constructed, so the linter and the transforms report
    identical diagnostics for identical breakage.
    """
    assert RULE_INTEGRITY == "L006"
    diags = audit_address_map(ctx.module, ctx.amap)
    n_errors = sum(1 for d in diags if d.severity is Severity.ERROR)
    gap_bytes = sum(
        int(d.measured.get("gap_bytes", 0)) for d in diags if "gap_bytes" in d.measured
    )
    metrics = {
        "n_errors": n_errors,
        "gap_bytes": gap_bytes,
        "image_bytes": int(ctx.amap.image_bytes),
        "total_bytes": int(ctx.amap.total_bytes),
        "added_jumps": int(ctx.amap.added_jumps),
    }
    return diags, metrics
