"""``python -m repro.lint`` — statically analyze a suite program's layouts.

Examples::

    python -m repro.lint syn-sjeng
    python -m repro.lint syn-gcc --layout bb-affinity --format json
    python -m repro.lint syn-mcf --compare baseline bb-trg
    python -m repro.lint syn-sjeng --disable L002 --severity L004=error
    python -m repro.lint --list-rules

Exit codes: 0 — no ERROR diagnostics; 1 — at least one ERROR diagnostic;
2 — usage error.
"""

from __future__ import annotations

import argparse
import sys
from typing import TYPE_CHECKING

from ..cache.config import PAPER_L1I
from ..core.optimizers import COMPARATORS, OPTIMIZERS, OptimizerConfig
from ..engine.instrument import collect_trace
from ..ir.transforms import LayoutResult, baseline_layout
from ..workloads.suite import build as build_suite_program
from .compare import compare_layouts
from .diagnostics import Severity, render_json, render_text
from .rules import LintConfig, all_rules, run_lint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache.config import CacheConfig
    from ..engine.instrument import TraceBundle
    from ..ir.module import Module

_KNOWN_LAYOUTS = ["baseline"] + list(OPTIMIZERS) + list(COMPARATORS)


def _parse_severity_override(text: str) -> tuple[str, Severity]:
    try:
        rule_id, sev = text.split("=", 1)
        return rule_id.strip(), Severity.parse(sev)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"expected RULE=SEVERITY (e.g. L004=error), got {text!r}: {exc}"
        )


def _make_layout(
    name: str, module: "Module", bundle: "TraceBundle", cache: "CacheConfig"
) -> LayoutResult:
    if name == "baseline":
        return baseline_layout(module)
    optimizer = OPTIMIZERS.get(name) or COMPARATORS[name]
    return optimizer(module, bundle, OptimizerConfig(cache=cache))


def _list_rules() -> int:
    for r in all_rules():
        print(f"{r.id}  {r.name:<24} [{r.default_severity.value}]  {r.summary}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="Rule-based static analysis of code layouts (no simulation).",
    )
    parser.add_argument(
        "program", nargs="?", help="suite program name (e.g. syn-sjeng)"
    )
    parser.add_argument(
        "--layout",
        default="baseline",
        choices=_KNOWN_LAYOUTS,
        help="layout to lint (default: baseline)",
    )
    parser.add_argument(
        "--compare",
        nargs=2,
        metavar=("A", "B"),
        choices=_KNOWN_LAYOUTS,
        help="lint two layouts and explain which one is statically better",
    )
    parser.add_argument(
        "--format", choices=["text", "json"], default="text", help="output format"
    )
    parser.add_argument(
        "--hot-coverage",
        type=float,
        default=0.9,
        help="fraction of dynamic occurrences the hot set covers (default 0.9)",
    )
    parser.add_argument(
        "--disable",
        action="append",
        default=[],
        metavar="RULE",
        help="disable a rule by id (repeatable)",
    )
    parser.add_argument(
        "--severity",
        action="append",
        default=[],
        metavar="RULE=LEVEL",
        type=_parse_severity_override,
        help="override a rule's severity, e.g. L004=error (repeatable)",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0, help="trace-budget multiplier in (0,1]"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        return _list_rules()
    if args.program is None:
        parser.error("program is required unless --list-rules is given")

    if not 0 < args.hot_coverage <= 1.0:
        parser.error("--hot-coverage must be in (0, 1]")

    known_ids = {r.id for r in all_rules()}
    for rule_id in args.disable:
        if rule_id not in known_ids:
            parser.error(f"--disable: unknown rule {rule_id!r}")
    for rule_id, _ in args.severity:
        if rule_id not in known_ids:
            parser.error(f"--severity: unknown rule {rule_id!r}")

    try:
        prog, module = build_suite_program(args.program)
    except KeyError as exc:
        parser.error(str(exc))
    spec = prog.spec
    if args.scale != 1.0:
        if not 0 < args.scale <= 1.0:
            parser.error("--scale must be in (0, 1]")
        prog, module = build_suite_program(
            args.program,
            test_blocks=max(5_000, int(spec.test_blocks * args.scale)),
        )
        spec = prog.spec

    cache = PAPER_L1I
    bundle = collect_trace(module, spec.test_input())
    config = LintConfig(
        hot_coverage=args.hot_coverage,
        disabled=frozenset(args.disable),
        severity_overrides=dict(args.severity),
    )

    if args.compare:
        name_a, name_b = args.compare
        layout_a = _make_layout(name_a, module, bundle, cache)
        layout_b = _make_layout(name_b, module, bundle, cache)
        cmp = compare_layouts(
            module, bundle, layout_a, layout_b, cache, config,
            name_a=name_a, name_b=name_b,
        )
        if args.format == "json":
            import json

            print(json.dumps(cmp.to_dict(), indent=2))
        else:
            print(cmp.render_text())
        bad = not (cmp.report_a.ok and cmp.report_b.ok)
        return 1 if bad else 0

    layout = _make_layout(args.layout, module, bundle, cache)
    report = run_lint(
        module, layout, bundle, cache, config, layout_name=args.layout
    )
    if args.format == "json":
        print(render_json(report))
    else:
        print(render_text(report))
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
