"""Layout-integrity audits, shared by the linter and the IR transforms.

The paper's post-processing step is "responsible for sanity check, residual
code elimination and other cleanup work"; before this module existed the
sanity checks were scattered across :mod:`repro.ir.transforms` as bare
``ValueError`` strings and ``AssertionError`` guards.  Centralizing them
here gives one source of truth: the transforms call the same audit
functions as the L006 ``layout-integrity`` lint rule, so a bad gid order
produces the *identical* diagnostic text whether it is rejected eagerly by
``reorder_basic_blocks`` or reported lazily by ``python -m repro.lint``.

Only :mod:`repro.ir.module` is imported (never the :mod:`repro.ir` package
itself) so the transforms can import this module while ``repro.ir`` is
still initializing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from ..ir.module import INSTRUCTION_BYTES, Module
from ..robust.errors import ReproError
from .diagnostics import Diagnostic, Severity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..ir.codegen import AddressMap

__all__ = [
    "RULE_INTEGRITY",
    "LayoutError",
    "audit_gid_order",
    "audit_function_order",
    "audit_address_map",
    "raise_on_errors",
]

#: Rule id shared by these audits and the rule-pack registration.
RULE_INTEGRITY = "L006"


class LayoutError(ReproError, ValueError):
    """A layout order or address map violates a structural invariant.

    Part of the :class:`~repro.robust.errors.ReproError` taxonomy (so
    batch pipelines can triage it alongside ``ProfileError`` /
    ``ArtifactError``), and still a :class:`ValueError` so long-standing
    callers that caught the transforms' original bare ``ValueError`` keep
    working.  The triggering lint diagnostics ride along in
    :attr:`diagnostics` and in the machine-readable context.
    """

    def __init__(self, diagnostics: Sequence[Diagnostic]) -> None:
        self.diagnostics = list(diagnostics)
        super().__init__(
            "; ".join(d.message for d in self.diagnostics),
            stage="layout",
            defect=self.diagnostics[0].rule if self.diagnostics else None,
            diagnostics=[d.to_dict() for d in self.diagnostics],
        )


def _diag(severity: Severity, location: str, message: str, **measured: object) -> Diagnostic:
    return Diagnostic(RULE_INTEGRITY, severity, location, message, measured)


def raise_on_errors(diagnostics: Iterable[Diagnostic]) -> None:
    """Raise :class:`LayoutError` if any diagnostic is ERROR severity."""
    errors = [d for d in diagnostics if d.severity is Severity.ERROR]
    if errors:
        raise LayoutError(errors)


def audit_gid_order(
    module: Module, gid_order: Sequence[int], *, require_complete: bool = False
) -> list[Diagnostic]:
    """Audit a gid order against a module.

    Out-of-range and duplicate gids are errors.  When ``require_complete``
    is set (a finished layout, not a partial hot-block prefix), missing
    gids are errors too.
    """
    n = module.n_blocks
    diags: list[Diagnostic] = []
    seen: set[int] = set()
    for gid in gid_order:
        if not 0 <= gid < n:
            diags.append(
                _diag(
                    Severity.ERROR,
                    "layout",
                    f"gid {gid} out of range (module has {n} blocks)",
                    gid=int(gid),
                    n_blocks=n,
                )
            )
            continue
        if gid in seen:
            diags.append(
                _diag(
                    Severity.ERROR,
                    "layout",
                    f"gid {gid} appears twice in layout order",
                    gid=int(gid),
                )
            )
        seen.add(gid)
    if require_complete:
        missing = sorted(set(range(n)) - seen)
        if missing:
            shown = ", ".join(map(str, missing[:8]))
            if len(missing) > 8:
                shown += ", ..."
            diags.append(
                _diag(
                    Severity.ERROR,
                    "layout",
                    f"layout order misses {len(missing)} block(s): gids {shown}",
                    n_missing=len(missing),
                )
            )
    return diags


def audit_function_order(module: Module, func_order: Sequence[str]) -> list[Diagnostic]:
    """Audit a function order: duplicates and unknown names are errors."""
    diags: list[Diagnostic] = []
    seen: set[str] = set()
    for name in func_order:
        if name not in module:
            diags.append(
                _diag(
                    Severity.ERROR,
                    "layout",
                    f"function {name!r} not defined in module",
                    function=name,
                )
            )
            continue
        if name in seen:
            diags.append(
                _diag(
                    Severity.ERROR,
                    "layout",
                    f"function {name!r} appears twice in layout order",
                    function=name,
                )
            )
        seen.add(name)
    return diags


def audit_address_map(module: Module, amap: "AddressMap") -> list[Diagnostic]:
    """Audit a finished address map: the full permutation / overlap / gap check.

    Errors: the order is not a permutation of all gids, a block start is
    negative, two blocks overlap, or a block's encoded size is impossible
    (smaller than its instructions, or larger than instructions plus one
    entry stub and one fall-through jump).  Placement gaps are legal
    (alignment-style optimizers pad deliberately) and reported as INFO with
    the wasted byte total.
    """
    diags = audit_gid_order(module, amap.order, require_complete=True)

    n = module.n_blocks
    starts = np.asarray(amap.starts)
    sizes = np.asarray(amap.sizes)
    if starts.shape[0] != n or sizes.shape[0] != n:
        diags.append(
            _diag(
                Severity.ERROR,
                "layout",
                f"address map covers {starts.shape[0]} blocks, module has {n}",
                n_blocks=n,
            )
        )
        return diags

    for gid in np.nonzero(starts < 0)[0]:
        block = module.block_by_gid(int(gid))
        diags.append(
            _diag(
                Severity.ERROR,
                f"{block.func}:{block.name}",
                f"block gid {int(gid)} has negative start address {int(starts[gid])}",
                start=int(starts[gid]),
            )
        )

    # Size plausibility: base encoding .. base + stub + fall-through jump.
    for block in module.iter_blocks():
        size = int(sizes[block.gid])
        lo = block.size_bytes
        hi = block.size_bytes + 2 * INSTRUCTION_BYTES
        if not lo <= size <= hi:
            diags.append(
                _diag(
                    Severity.ERROR,
                    f"{block.func}:{block.name}",
                    f"encoded size {size}B outside plausible range "
                    f"[{lo}, {hi}]B for {block.n_instr} instructions",
                    size_bytes=size,
                    min_bytes=lo,
                    max_bytes=hi,
                )
            )

    # Overlaps and gaps, in address order.
    idx = np.argsort(starts, kind="stable")
    s = starts[idx]
    e = s + sizes[idx]
    overlap_at = np.nonzero(s[1:] < e[:-1])[0]
    for i in overlap_at[:8]:
        a = module.block_by_gid(int(idx[i]))
        b = module.block_by_gid(int(idx[i + 1]))
        diags.append(
            _diag(
                Severity.ERROR,
                f"{b.func}:{b.name}",
                f"block overlaps predecessor {a.func}:{a.name} "
                f"(starts at {int(s[i + 1])}, predecessor ends at {int(e[i])})",
                start=int(s[i + 1]),
                predecessor_end=int(e[i]),
            )
        )
    if overlap_at.shape[0] > 8:
        diags.append(
            _diag(
                Severity.ERROR,
                "layout",
                f"{overlap_at.shape[0]} overlapping block pairs in total",
                n_overlaps=int(overlap_at.shape[0]),
            )
        )

    gap_bytes = int(np.maximum(s[1:] - e[:-1], 0).sum()) if n > 1 else 0
    if gap_bytes > 0 and not overlap_at.shape[0]:
        diags.append(
            _diag(
                Severity.INFO,
                "layout",
                f"placement leaves {gap_bytes} gap byte(s) between blocks",
                gap_bytes=gap_bytes,
                image_bytes=int(amap.image_bytes),
            )
        )
    return diags
