"""Static layout analyzer: rule-based linting of concrete code layouts.

The simulator answers "how does this layout behave?" by replaying a trace;
the linter answers "what is wrong with this layout?" by inspecting the code
image itself — addresses, cache sets, line packing, profile heat — in
milliseconds.  See ``docs/linting.md`` for the rule catalog.

Public surface:

* :func:`run_lint` — lint one layout, returning a :class:`LintReport`;
* :func:`compare_layouts` / :func:`conflict_score` — static layout diffs;
* :class:`LintConfig`, :func:`all_rules` — policy and the rule registry;
* :mod:`repro.lint.integrity` — the audits shared with the IR transforms;
* ``python -m repro.lint`` — the CLI.

Attributes are resolved lazily (PEP 562): :mod:`repro.ir.transforms` imports
:mod:`repro.lint.integrity` while ``repro.ir`` is still initializing, which
must not drag in the full rule machinery (and its ``repro.engine``
dependency) at that point.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

__all__ = [
    "Diagnostic",
    "LayoutComparison",
    "LayoutError",
    "LintConfig",
    "LintContext",
    "LintReport",
    "Rule",
    "Severity",
    "all_rules",
    "compare_layouts",
    "conflict_score",
    "get_rule",
    "render_json",
    "render_text",
    "run_lint",
]

_EXPORTS = {
    "Diagnostic": ("repro.lint.diagnostics", "Diagnostic"),
    "LintReport": ("repro.lint.diagnostics", "LintReport"),
    "Severity": ("repro.lint.diagnostics", "Severity"),
    "render_json": ("repro.lint.diagnostics", "render_json"),
    "render_text": ("repro.lint.diagnostics", "render_text"),
    "LayoutError": ("repro.lint.integrity", "LayoutError"),
    "LintContext": ("repro.lint.context", "LintContext"),
    "LintConfig": ("repro.lint.rules", "LintConfig"),
    "Rule": ("repro.lint.rules", "Rule"),
    "all_rules": ("repro.lint.rules", "all_rules"),
    "get_rule": ("repro.lint.rules", "get_rule"),
    "run_lint": ("repro.lint.rules", "run_lint"),
    "LayoutComparison": ("repro.lint.compare", "LayoutComparison"),
    "compare_layouts": ("repro.lint.compare", "compare_layouts"),
    "conflict_score": ("repro.lint.compare", "conflict_score"),
}

if TYPE_CHECKING:  # pragma: no cover - static imports for type checkers
    from .compare import LayoutComparison, compare_layouts, conflict_score  # noqa: F401
    from .context import LintContext  # noqa: F401
    from .diagnostics import (  # noqa: F401
        Diagnostic,
        LintReport,
        Severity,
        render_json,
        render_text,
    )
    from .integrity import LayoutError  # noqa: F401
    from .rules import LintConfig, Rule, all_rules, get_rule, run_lint  # noqa: F401


def __getattr__(name: str) -> object:
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
