"""Rule registry and the lint driver.

A *rule* is a function ``(LintContext, LintConfig) -> (diagnostics,
metrics)`` registered under a stable id (``L001`` ...).  The registry keeps
the catalog queryable (`python -m repro.lint --list-rules`), and
:class:`LintConfig` carries the per-run policy: disabled rules, severity
overrides, the heat model's coverage threshold and the rules' tunables.

Rules must emit their findings as :class:`~repro.lint.diagnostics.Diagnostic`
objects and return their aggregate measurements as a plain dict even when
clean, so every report carries the full metric set for layout comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Mapping, Optional

from ..cache.config import PAPER_L1I, CacheConfig
from ..engine.instrument import TraceBundle
from ..ir.codegen import AddressMap
from ..ir.module import Module
from ..ir.transforms import LayoutResult
from .context import LintContext
from .diagnostics import Diagnostic, LintReport, Severity

__all__ = [
    "Rule",
    "RuleRegistry",
    "LintConfig",
    "rule",
    "get_rule",
    "all_rules",
    "run_lint",
]

#: A rule callable: ``(context, config) -> (diagnostics, metrics)``.  The
#: context/config types differ per rule pack (trace-driven rules take
#: ``(LintContext, LintConfig)``, the static pack its own pair), so the
#: registry stays agnostic.
RuleFn = Callable[..., tuple[list[Diagnostic], dict]]


@dataclass(frozen=True)
class Rule:
    """A registered lint rule."""

    id: str
    name: str
    summary: str
    default_severity: Severity
    fn: RuleFn


class RuleRegistry:
    """A catalog of lint rules under stable ids.

    Each rule pack owns one instance (the trace-driven L-pack here, the
    static S-pack in :mod:`repro.staticlint`), so packs can never collide
    on ids and tools can enumerate each catalog independently.  The
    optional ``loader`` is called once before the first query — rule
    packs register themselves on import, and deferring that import keeps
    registry modules import-light and cycle-free.
    """

    def __init__(self, loader: Optional[Callable[[], None]] = None) -> None:
        self._rules: dict[str, Rule] = {}
        self._loader = loader
        self._loaded = loader is None

    def _ensure_loaded(self) -> None:
        if not self._loaded:
            self._loaded = True
            assert self._loader is not None
            self._loader()

    def rule(
        self, id: str, name: str, summary: str, default_severity: Severity
    ) -> Callable[[RuleFn], RuleFn]:
        """Decorator registering a rule function under ``id``."""

        def register(fn: RuleFn) -> RuleFn:
            if id in self._rules:
                raise ValueError(f"rule id {id!r} already registered")
            self._rules[id] = Rule(id, name, summary, default_severity, fn)
            return fn

        return register

    def get(self, rule_id: str) -> Rule:
        self._ensure_loaded()
        try:
            return self._rules[rule_id]
        except KeyError:
            raise KeyError(
                f"unknown lint rule {rule_id!r} (known: {sorted(self._rules)})"
            )

    def all(self) -> list[Rule]:
        """Every registered rule, ordered by id."""
        self._ensure_loaded()
        return [self._rules[k] for k in sorted(self._rules)]

    def ids(self) -> list[str]:
        self._ensure_loaded()
        return sorted(self._rules)


def _ensure_rulepack() -> None:
    # The rule pack registers itself on import; importing it lazily here
    # keeps `rules` import-light and avoids an import cycle with it.
    from . import rulepack  # noqa: F401


#: the trace-driven rule pack's registry (L001...).
_REGISTRY = RuleRegistry(loader=_ensure_rulepack)


def rule(
    id: str, name: str, summary: str, default_severity: Severity
) -> Callable[[RuleFn], RuleFn]:
    """Decorator registering a rule in the trace-driven (L-pack) registry."""
    return _REGISTRY.rule(id, name, summary, default_severity)


def get_rule(rule_id: str) -> Rule:
    return _REGISTRY.get(rule_id)


def all_rules() -> list[Rule]:
    """Every registered trace-driven rule, ordered by id."""
    return _REGISTRY.all()


@dataclass(frozen=True)
class LintConfig:
    """Per-run lint policy and rule tunables."""

    #: fraction of dynamic occurrences the hot set must cover.
    hot_coverage: float = 0.9
    #: rule ids to skip entirely.
    disabled: frozenset[str] = frozenset()
    #: rule id -> severity every diagnostic of that rule is forced to.
    severity_overrides: Mapping[str, Severity] = field(default_factory=dict)
    #: cap on per-finding diagnostics a rule emits (aggregates are exempt).
    max_reports: int = 20
    #: L003: a cold run inside hot code is flagged below this many lines.
    interleave_max_cold_lines: int = 2
    #: L004: a hot-touched line below this hot-byte fraction is fragmented.
    line_utilization_threshold: float = 0.5
    #: L004: warn when more than this fraction of hot lines are fragmented.
    fragmentation_warn_fraction: float = 0.25

    def enabled_rules(self) -> list[Rule]:
        return [r for r in all_rules() if r.id not in self.disabled]

    def severity_for(self, rule_id: str, emitted: Severity) -> Severity:
        return self.severity_overrides.get(rule_id, emitted)

    def with_overrides(self, **kw: object) -> "LintConfig":
        return replace(self, **kw)


def run_lint(
    module: Module,
    layout: "LayoutResult | AddressMap",
    bundle: TraceBundle,
    cache: CacheConfig = PAPER_L1I,
    config: Optional[LintConfig] = None,
    *,
    layout_name: str = "",
) -> LintReport:
    """Run every enabled rule over one concrete layout.

    ``layout`` may be a :class:`~repro.ir.transforms.LayoutResult` (its
    kind/note label the report) or a bare address map.
    """
    config = config or LintConfig()
    if isinstance(layout, LayoutResult):
        amap = layout.address_map
        name = layout_name or layout.note or layout.kind.value
    else:
        amap = layout
        name = layout_name or "layout"

    ctx = LintContext(module, amap, bundle, cache, hot_coverage=config.hot_coverage)
    report = LintReport(
        program=module.name, layout=name, cache=cache.describe()
    )
    for r in config.enabled_rules():
        diags, metrics = r.fn(ctx, config)
        override = config.severity_overrides.get(r.id)
        if override is not None:
            diags = [replace(d, severity=override) for d in diags]
        report.extend(diags)
        report.metrics[r.id] = metrics
        report.rules_run.append(r.id)
    return report
